(* Quickstart: analyze a two-app bundle and print the synthesized
   vulnerabilities and policies.

     dune exec examples/quickstart.exe *)

let () =
  let apks = [ Demo_apps.navigation_app (); Demo_apps.messenger_app () ] in
  Fmt.pr "Analyzing a bundle of %d apps...@.@." (List.length apks);
  let analysis = Separ.analyze apks in
  Fmt.pr "%a@." Separ.pp_analysis analysis;
  Fmt.pr "@.%d vulnerabilities, %d policies synthesized.@."
    (List.length (Separ.vulnerabilities analysis))
    (List.length (Separ.policies analysis))
