(* SEPAR's plugin architecture: registering a user-defined vulnerability
   signature and having the whole pipeline — synthesis, scenario
   decoding, policy derivation — pick it up.

   The plugin below flags *broadcast sniffing surface*: a device
   component broadcasts a sensitive payload with an implicit intent that
   carries a DEFAULT-category, making it trivially interceptable by any
   later-installed receiver (a stricter variant of intent hijack that
   only looks at broadcasts).

     dune exec examples/custom_signature.exe *)

open Separ
open Separ_relog.Ast.Dsl
module Encode = Separ_specs.Encode
module B = Builder

let broadcast_sniffing : Signatures.t =
  {
    Signatures.name = "broadcast_sniffing";
    config = { Encode.with_mal_intent = false; with_mal_filter = true };
    witnesses = [ ("sniffedIntent", Encode.Wintent) ];
    formula =
      (fun env ->
        let i = Encode.witness env "sniffedIntent" in
        let mf = Separ_relog.Ast.Rel env.Encode.r_mal_filter in
        let broadcast_kind =
          Separ_relog.Ast.Rel
            (List.assoc Component.Receiver env.Encode.r_kind_sets)
        in
        i <: Encode.device_intents env
        &&: ((i |. rel env.Encode.r_ikind) <: broadcast_kind)
        &&: no (i |. rel env.Encode.r_target)
        &&: some (i |. rel env.Encode.r_iextras)
        &&: Encode.action_test env i mf
        &&: Encode.category_test env i mf
        &&: Encode.data_test env i mf);
    describe =
      (fun sc ->
        match Scenario.witness1 sc "sniffedIntent" with
        | Some i -> "Broadcast " ^ i ^ " can be sniffed by any receiver."
        | None -> "broadcast sniffing");
  }

(* An app that broadcasts the contact list on the air. *)
let chatty_app () =
  Apk.make
    ~manifest:
      (Manifest.make ~package:"com.example.chatty"
         ~uses_permissions:[ Permission.read_contacts ]
         ~components:
           [ Component.make ~name:"Announcer" ~kind:Component.Activity () ]
         ())
    ~classes:
      [
        B.cls ~name:"Announcer"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                let v = B.get_contacts b in
                let i = B.new_intent b in
                B.set_action b i "com.example.contacts.SYNCED";
                B.put_extra b i ~key:"book" ~value:v;
                B.send_broadcast b i);
          ];
      ]

let () =
  Signatures.register broadcast_sniffing;
  Fmt.pr "registered signature %S (now %d signatures)@.@."
    broadcast_sniffing.Signatures.name
    (List.length (Signatures.all ()));
  let analysis = analyze [ chatty_app () ] in
  List.iter
    (fun v ->
      if v.Ase.v_kind = "broadcast_sniffing" then
        Fmt.pr "plugin finding: %s@." v.Ase.v_scenario.Scenario.sc_description)
    (vulnerabilities analysis);
  assert (
    List.exists
      (fun v -> v.Ase.v_kind = "broadcast_sniffing")
      (vulnerabilities analysis));
  Fmt.pr "@.The plugin's scenarios flow through policy synthesis like any \
          built-in signature.@."
