(* Audit a slice of the synthetic app store: generate apps, partition
   them into device-sized bundles, run the full pipeline on each and
   report per-category vulnerable apps — a small-scale version of the
   paper's RQ2 experiment.

     dune exec examples/store_audit.exe -- [n_bundles] *)

open Separ

let () =
  let n_bundles =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2
  in
  let corpus = Separ_workload.Generator.generate () in
  let bundles = Separ_workload.Generator.bundles ~size:50 corpus in
  let chosen = List.filteri (fun i _ -> i < n_bundles) bundles in
  Fmt.pr "Auditing %d bundle(s) of 50 apps each...@." (List.length chosen);
  let tally : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun bi bundle_apps ->
      let apks =
        List.map (fun g -> g.Separ_workload.Generator.apk) bundle_apps
      in
      let analysis = analyze ~limit_per_sig:40 apks in
      let report = analysis.report in
      Fmt.pr "bundle %d: %d vulnerabilities, %d policies@." bi
        (List.length report.Ase.r_vulnerabilities)
        (List.length analysis.policies);
      List.iter
        (fun v ->
          List.iter
            (fun app -> Hashtbl.replace tally (v.Ase.v_kind ^ "/" ^ app) ())
            (Ase.vulnerable_apps report analysis.bundle v.Ase.v_kind))
        report.Ase.r_vulnerabilities)
    chosen;
  let counts = Hashtbl.create 8 in
  Hashtbl.iter
    (fun key () ->
      let kind = List.hd (String.split_on_char '/' key) in
      Hashtbl.replace counts kind
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind)))
    tally;
  Fmt.pr "@.vulnerable apps by category:@.";
  Hashtbl.iter (fun k n -> Fmt.pr "  %-24s %d@." k n) counts
