(* Policy enforcement in detail: shows the PDP/PEP interaction — policy
   serialization, a consent callback standing in for the user prompt,
   and the effect trace under approve vs refuse decisions.  Also
   demonstrates the attack concretizer: the malicious app is generated
   automatically from a synthesized scenario.

     dune exec examples/enforcement_demo.exe *)

open Separ

let () =
  let apks = [ Demo_apps.navigation_app (); Demo_apps.messenger_app () ] in
  let analysis = analyze apks in

  (* 1. policies survive a serialization round trip (they would be
     shipped to the on-device PDP) *)
  let text = Policy.to_string analysis.policies in
  let restored = Policy.of_string text in
  assert (List.length restored = List.length analysis.policies);
  Fmt.pr "--- synthesized policy store ---@.%s@.@." text;

  (* 2. concretize an attack app from a synthesized scenario *)
  let scenario =
    (List.find
       (fun v -> v.Ase.v_kind = "privilege_escalation")
       (vulnerabilities analysis))
      .Ase.v_scenario
  in
  let attack_apk =
    match Attack.concretize (Bundle.update_passive_targets analysis.bundle) scenario with
    | Some apk -> apk
    | None -> failwith "no attack app for scenario"
  in
  Fmt.pr "--- generated attack app ---@.%s@.@."
    (Asm.disassemble attack_apk);

  let run ~consent =
    let device = Device.create () in
    List.iter (Device.install device) apks;
    Device.install device attack_apk;
    Device.set_policies device restored
      [ "com.example.navigation"; "com.example.messenger" ];
    Device.set_enforcement device true;
    Device.set_consent device (fun _policy _event -> consent);
    Attack.trigger device;
    Device.effects device
  in

  Fmt.pr "--- user refuses the prompt ---@.";
  let refused = run ~consent:false in
  List.iter (fun e -> Fmt.pr "  %a@." Effect.pp e) refused;
  assert (List.exists Effect.is_blocked refused);

  Fmt.pr "@.--- user approves the prompt (informed consent) ---@.";
  let approved = run ~consent:true in
  List.iter (fun e -> Fmt.pr "  %a@." Effect.pp e) approved;
  Fmt.pr "@.Enforcement demo complete.@."
