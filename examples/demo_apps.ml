(* The motivating-example apps live in the library; this module keeps
   the examples' call sites short. *)

let navigation_app = Separ.Demo.navigation_app
let messenger_app () = Separ.Demo.messenger_app ()
let relay_malware = Separ.Demo.relay_malware
