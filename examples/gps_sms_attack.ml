(* The paper's Figure 1 end to end: a malicious relay app hijacks the
   navigation app's location intent and exfiltrates the location by SMS
   through the messenger app's unchecked service — then the same attack
   is replayed under SEPAR's synthesized policies and blocked.

     dune exec examples/gps_sms_attack.exe *)

open Separ

let run ~protected =
  let device = Device.create () in
  Device.install device (Demo_apps.navigation_app ());
  Device.install device (Demo_apps.messenger_app ());
  Device.install device (Demo_apps.relay_malware ());
  if protected then begin
    let analysis =
      analyze [ Demo_apps.navigation_app (); Demo_apps.messenger_app () ]
    in
    protect device analysis
  end;
  (* the user opens the navigation app *)
  Device.start_component device ~pkg:"com.example.navigation"
    ~component:"LocationFinder" ~entry:"onStartCommand";
  Device.effects device

let describe label effects =
  Fmt.pr "=== %s ===@." label;
  List.iter (fun e -> Fmt.pr "  %a@." Effect.pp e) effects;
  let exfiltrated =
    List.exists (Effect.is_sms_with_taint Resource.Location) effects
  in
  Fmt.pr "  => location %s@.@."
    (if exfiltrated then "EXFILTRATED by SMS" else "protected");
  exfiltrated

let () =
  let leaked_unprotected = describe "unprotected device" (run ~protected:false) in
  let leaked_protected = describe "device under SEPAR" (run ~protected:true) in
  assert leaked_unprotected;
  assert (not leaked_protected);
  Fmt.pr "The synthesized policies prevented the Figure-1 exploit.@."
