(* Hierarchical tracing for the SEPAR pipeline.

   A span records a named region of execution: monotonic start time,
   duration, nesting (children are regions entered while the span was
   open), and key/value attributes.  The clock is injectable so tests
   are fully deterministic.

   Cost discipline: when tracing is disabled, [with_span] is a single
   branch around the thunk — no clock reads, no allocation.  [timed]
   always measures (two clock reads) and additionally records a span
   when tracing is on; use it where the caller needs the duration
   regardless of telemetry (the benchmark harness, Table II timing).

   Finished top-level spans live in a bounded ring buffer: a long-lived
   process (the planned [separ serve] daemon) traces forever, so
   unbounded retention would be a slow leak.  When the ring is full the
   oldest root — together with its whole subtree — is dropped and
   counted in [dropped_roots].

   With [set_profile_gc true], enabled spans additionally capture
   [Gc.quick_stat] deltas (minor/major words allocated, collections,
   heap size) as [gc.*] span attributes; top-level spans also fold the
   deltas into [gc.*] metrics (only top-level ones — a parent's delta
   already includes its children's, so summing every span would double
   count). *)

type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  sp_id : int; (* unique within this process; see [current_span_id] *)
  sp_name : string;
  sp_start_us : float; (* microseconds since the clock's epoch *)
  mutable sp_dur_us : float;
  mutable sp_attrs : (string * value) list; (* in attachment order *)
  mutable sp_children : span list; (* reversed while open; in order after *)
}

(* --- global recorder state ------------------------------------------------ *)

let enabled = ref false
let default_clock () = Unix.gettimeofday ()
let clock = ref default_clock

(* Open spans, innermost first. *)
let stack : span list ref = ref []

(* Finished top-level spans: ring of at most [root_cap] roots, oldest
   overwritten first.  [ring_head] indexes the oldest retained root;
   [ring_len] is the number of live entries. *)
let default_root_cap = 4096
let ring : span option array ref = ref (Array.make default_root_cap None)
let ring_head = ref 0
let ring_len = ref 0
let dropped = ref 0
let next_id = ref 0

let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

(* Inject a clock returning seconds (monotone by convention); tests pass
   a counter-backed fake. *)
let set_clock f = clock := f
let use_default_clock () = clock := default_clock
let now_us () = !clock () *. 1e6

(* Drop all recorded spans (open ones included) and zero the
   dropped-root counter.  The clock, the enabled flag and the ring
   capacity are left as they are. *)
let reset () =
  stack := [];
  Array.fill !ring 0 (Array.length !ring) None;
  ring_head := 0;
  ring_len := 0;
  dropped := 0

let push_root sp =
  let a = !ring in
  let cap = Array.length a in
  if !ring_len = cap then begin
    (* full: the write position coincides with the oldest root *)
    a.(!ring_head) <- Some sp;
    ring_head := (!ring_head + 1) mod cap;
    incr dropped
  end
  else begin
    a.((!ring_head + !ring_len) mod cap) <- Some sp;
    incr ring_len
  end

let root_cap () = Array.length !ring
let dropped_roots () = !dropped

(* Resize the ring, keeping the newest roots that still fit; evicted
   ones count as dropped. *)
let set_root_cap n =
  let n = max 1 n in
  let a = !ring in
  let cap = Array.length a in
  let keep = min !ring_len n in
  let fresh = Array.make n None in
  for i = 0 to keep - 1 do
    fresh.(i) <- a.((!ring_head + (!ring_len - keep) + i) mod cap)
  done;
  dropped := !dropped + (!ring_len - keep);
  ring := fresh;
  ring_head := 0;
  ring_len := keep

let attr_int k v = (k, Int v)
let attr_float k v = (k, Float v)
let attr_str k v = (k, Str v)
let attr_bool k v = (k, Bool v)

(* Attach an attribute to the innermost open span (no-op when disabled
   or outside any span). *)
let add_attr key v =
  match !stack with
  | sp :: _ -> sp.sp_attrs <- sp.sp_attrs @ [ (key, v) ]
  | [] -> ()

(* The innermost open span's id, for correlating log events with the
   phase they were emitted from.  Ids are per-process (a worker's ids
   overlap the parent's); cross-process, pid + span id disambiguates. *)
let current_span_id () =
  match !stack with sp :: _ -> Some sp.sp_id | [] -> None

let start_span ?(attrs = []) name =
  incr next_id;
  let sp =
    {
      sp_id = !next_id;
      sp_name = name;
      sp_start_us = now_us ();
      sp_dur_us = 0.0;
      sp_attrs = attrs;
      sp_children = [];
    }
  in
  stack := sp :: !stack;
  sp

let finish_span sp =
  sp.sp_dur_us <- now_us () -. sp.sp_start_us;
  sp.sp_children <- List.rev sp.sp_children;
  (match !stack with
  | top :: rest when top == sp -> stack := rest
  | _ ->
      (* unbalanced finish (an exception unwound through several spans):
         pop down to — and including — this span *)
      let rec pop = function
        | top :: rest when top == sp -> rest
        | _ :: rest -> pop rest
        | [] -> []
      in
      stack := pop !stack);
  match !stack with
  | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
  | [] -> push_root sp

(* --- GC profiling --------------------------------------------------------- *)

let profile_gc = ref false
let set_profile_gc b = profile_gc := b
let is_profiling_gc () = !profile_gc

(* Registered on first use, not at module init: runs that never profile
   GC should not grow every metrics export by five all-zero [gc.*]
   rows. *)
let gc_handles = ref None

let gc_metrics () =
  match !gc_handles with
  | Some handles -> handles
  | None ->
      let handles =
        ( Metrics.counter "gc.minor_words",
          Metrics.counter "gc.major_words",
          Metrics.counter "gc.minor_collections",
          Metrics.counter "gc.major_collections",
          Metrics.gauge "gc.heap_words" )
      in
      gc_handles := Some handles;
      handles

(* What a profiled span captures on entry.  [Gc.quick_stat]'s
   [minor_words] field only advances at minor collections in native
   code, so short spans would read a zero delta from it; the
   [Gc.minor_words] accessor counts the words in the live minor heap
   too and is accurate everywhere. *)
type gc_mark = { gm_minor_words : float; gm_stat : Gc.stat }

let gc_mark () = { gm_minor_words = Gc.minor_words (); gm_stat = Gc.quick_stat () }

(* Attach the GC delta since [m] to [sp]; called with [sp] still on the
   stack, so [!stack = [sp]] identifies a top-level span. *)
let gc_finish sp (m : gc_mark) =
  let g0 = m.gm_stat in
  let g1 = Gc.quick_stat () in
  let minor = Gc.minor_words () -. m.gm_minor_words in
  let major = g1.Gc.major_words -. g0.Gc.major_words in
  let minor_cols = g1.Gc.minor_collections - g0.Gc.minor_collections in
  let major_cols = g1.Gc.major_collections - g0.Gc.major_collections in
  sp.sp_attrs <-
    sp.sp_attrs
    @ [
        ("gc.minor_words", Float minor);
        ("gc.major_words", Float major);
        ("gc.minor_collections", Int minor_cols);
        ("gc.major_collections", Int major_cols);
        ("gc.heap_words", Int g1.Gc.heap_words);
      ];
  match !stack with
  | [ top ] when top == sp ->
      let cmw, cmj, cminc, cmajc, gheap = gc_metrics () in
      Metrics.add cmw (int_of_float minor);
      Metrics.add cmj (int_of_float major);
      Metrics.add cminc minor_cols;
      Metrics.add cmajc major_cols;
      Metrics.set gheap (float_of_int g1.Gc.heap_words)
  | _ -> ()

(* Run [f] inside a span named [name].  The span is recorded even when
   [f] raises, so the trace stays well-formed around failures. *)
let with_span ?attrs name f =
  if not !enabled then f ()
  else if not !profile_gc then begin
    let sp = start_span ?attrs name in
    Fun.protect ~finally:(fun () -> finish_span sp) f
  end
  else begin
    let sp = start_span ?attrs name in
    let m = gc_mark () in
    Fun.protect
      ~finally:(fun () ->
        gc_finish sp m;
        finish_span sp)
      f
  end

(* Like [with_span], but also returns the measured duration in
   milliseconds; the measurement happens whether or not tracing is
   enabled, and when it is, the recorded span duration is the very same
   measurement (no skew between the trace and reported timings). *)
let timed ?attrs name f =
  if not !enabled then begin
    let t0 = !clock () in
    let r = f () in
    (r, (!clock () -. t0) *. 1000.0)
  end
  else begin
    let sp = start_span ?attrs name in
    let m = if !profile_gc then Some (gc_mark ()) else None in
    let r =
      Fun.protect
        ~finally:(fun () ->
          (match m with Some m -> gc_finish sp m | None -> ());
          finish_span sp)
        f
    in
    (r, sp.sp_dur_us /. 1000.0)
  end

(* Finished top-level spans, in completion order (oldest retained
   first). *)
let roots () =
  let a = !ring in
  let cap = Array.length a in
  List.init !ring_len (fun i ->
      match a.((!ring_head + i) mod cap) with
      | Some sp -> sp
      | None -> assert false)

(* Graft span trees recorded elsewhere (typically in a worker process,
   shipped back over a pipe) into the current trace: under the innermost
   open span if there is one, else as top-level roots.  [attrs] — e.g.
   the worker's pid — are appended to each grafted root so merged traces
   stay attributable.  No-op when tracing is disabled. *)
let graft ?(attrs = []) spans =
  if !enabled then
    List.iter
      (fun sp ->
        if attrs <> [] then sp.sp_attrs <- sp.sp_attrs @ attrs;
        match !stack with
        | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
        | [] -> push_root sp)
      spans

let fold_spans f acc =
  let rec go acc sp = List.fold_left go (f acc sp) sp.sp_children in
  List.fold_left go acc (roots ())

(* Total duration (ms) of every finished span with the given name,
   anywhere in the tree. *)
let total_ms name =
  fold_spans
    (fun acc sp -> if sp.sp_name = name then acc +. (sp.sp_dur_us /. 1000.0) else acc)
    0.0

let count name =
  fold_spans (fun acc sp -> if sp.sp_name = name then acc + 1 else acc) 0

let pp_value ppf = function
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%s" s
  | Bool b -> Format.fprintf ppf "%b" b

(* Human-readable span-tree summary (durations in ms), for [--trace]
   users who want the shape without loading chrome://tracing. *)
let pp_summary ppf () =
  let rec pp_span level sp =
    Format.fprintf ppf "%s%-*s %10.3f ms"
      (String.make (2 * level) ' ')
      (max 1 (32 - (2 * level)))
      sp.sp_name
      (sp.sp_dur_us /. 1000.0);
    if sp.sp_attrs <> [] then begin
      Format.fprintf ppf "  {";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Format.fprintf ppf ", ";
          Format.fprintf ppf "%s=%a" k pp_value v)
        sp.sp_attrs;
      Format.fprintf ppf "}"
    end;
    Format.fprintf ppf "@.";
    List.iter (pp_span (level + 1)) sp.sp_children
  in
  List.iter (pp_span 0) (roots ())

let print_summary () = pp_summary Format.err_formatter ()
