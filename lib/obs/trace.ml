(* Hierarchical tracing for the SEPAR pipeline.

   A span records a named region of execution: monotonic start time,
   duration, nesting (children are regions entered while the span was
   open), and key/value attributes.  The clock is injectable so tests
   are fully deterministic.

   Cost discipline: when tracing is disabled, [with_span] is a single
   branch around the thunk — no clock reads, no allocation.  [timed]
   always measures (two clock reads) and additionally records a span
   when tracing is on; use it where the caller needs the duration
   regardless of telemetry (the benchmark harness, Table II timing). *)

type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  sp_name : string;
  sp_start_us : float; (* microseconds since the clock's epoch *)
  mutable sp_dur_us : float;
  mutable sp_attrs : (string * value) list; (* in attachment order *)
  mutable sp_children : span list; (* reversed while open; in order after *)
}

(* --- global recorder state ------------------------------------------------ *)

let enabled = ref false
let default_clock () = Unix.gettimeofday ()
let clock = ref default_clock

(* Open spans, innermost first; finished top-level spans, reversed. *)
let stack : span list ref = ref []
let finished : span list ref = ref []

let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

(* Inject a clock returning seconds (monotone by convention); tests pass
   a counter-backed fake. *)
let set_clock f = clock := f
let use_default_clock () = clock := default_clock
let now_us () = !clock () *. 1e6

(* Drop all recorded spans (open ones included).  The clock and the
   enabled flag are left as they are. *)
let reset () =
  stack := [];
  finished := []

let attr_int k v = (k, Int v)
let attr_float k v = (k, Float v)
let attr_str k v = (k, Str v)
let attr_bool k v = (k, Bool v)

(* Attach an attribute to the innermost open span (no-op when disabled
   or outside any span). *)
let add_attr key v =
  match !stack with
  | sp :: _ -> sp.sp_attrs <- sp.sp_attrs @ [ (key, v) ]
  | [] -> ()

let start_span ?(attrs = []) name =
  let sp =
    {
      sp_name = name;
      sp_start_us = now_us ();
      sp_dur_us = 0.0;
      sp_attrs = attrs;
      sp_children = [];
    }
  in
  stack := sp :: !stack;
  sp

let finish_span sp =
  sp.sp_dur_us <- now_us () -. sp.sp_start_us;
  sp.sp_children <- List.rev sp.sp_children;
  (match !stack with
  | top :: rest when top == sp -> stack := rest
  | _ ->
      (* unbalanced finish (an exception unwound through several spans):
         pop down to — and including — this span *)
      let rec pop = function
        | top :: rest when top == sp -> rest
        | _ :: rest -> pop rest
        | [] -> []
      in
      stack := pop !stack);
  match !stack with
  | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
  | [] -> finished := sp :: !finished

(* Run [f] inside a span named [name].  The span is recorded even when
   [f] raises, so the trace stays well-formed around failures. *)
let with_span ?attrs name f =
  if not !enabled then f ()
  else begin
    let sp = start_span ?attrs name in
    Fun.protect ~finally:(fun () -> finish_span sp) f
  end

(* Like [with_span], but also returns the measured duration in
   milliseconds; the measurement happens whether or not tracing is
   enabled, and when it is, the recorded span duration is the very same
   measurement (no skew between the trace and reported timings). *)
let timed ?attrs name f =
  if not !enabled then begin
    let t0 = !clock () in
    let r = f () in
    (r, (!clock () -. t0) *. 1000.0)
  end
  else begin
    let sp = start_span ?attrs name in
    let r = Fun.protect ~finally:(fun () -> finish_span sp) f in
    (r, sp.sp_dur_us /. 1000.0)
  end

(* Finished top-level spans, in completion order. *)
let roots () = List.rev !finished

(* Graft span trees recorded elsewhere (typically in a worker process,
   shipped back over a pipe) into the current trace: under the innermost
   open span if there is one, else as top-level roots.  [attrs] — e.g.
   the worker's pid — are appended to each grafted root so merged traces
   stay attributable.  No-op when tracing is disabled. *)
let graft ?(attrs = []) spans =
  if !enabled then
    List.iter
      (fun sp ->
        if attrs <> [] then sp.sp_attrs <- sp.sp_attrs @ attrs;
        match !stack with
        | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
        | [] -> finished := sp :: !finished)
      spans

let fold_spans f acc =
  let rec go acc sp = List.fold_left go (f acc sp) sp.sp_children in
  List.fold_left go acc (roots ())

(* Total duration (ms) of every finished span with the given name,
   anywhere in the tree. *)
let total_ms name =
  fold_spans
    (fun acc sp -> if sp.sp_name = name then acc +. (sp.sp_dur_us /. 1000.0) else acc)
    0.0

let count name =
  fold_spans (fun acc sp -> if sp.sp_name = name then acc + 1 else acc) 0

let pp_value ppf = function
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%s" s
  | Bool b -> Format.fprintf ppf "%b" b

(* Human-readable span-tree summary (durations in ms), for [--trace]
   users who want the shape without loading chrome://tracing. *)
let pp_summary ppf () =
  let rec pp_span level sp =
    Format.fprintf ppf "%s%-*s %10.3f ms"
      (String.make (2 * level) ' ')
      (max 1 (32 - (2 * level)))
      sp.sp_name
      (sp.sp_dur_us /. 1000.0);
    if sp.sp_attrs <> [] then begin
      Format.fprintf ppf "  {";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Format.fprintf ppf ", ";
          Format.fprintf ppf "%s=%a" k pp_value v)
        sp.sp_attrs;
      Format.fprintf ppf "}"
    end;
    Format.fprintf ppf "@.";
    List.iter (pp_span (level + 1)) sp.sp_children
  in
  List.iter (pp_span 0) (roots ())

let print_summary () = pp_summary Format.err_formatter ()
