(* The metrics registry: named counters, gauges and fixed-bucket
   histograms.

   Hot-path discipline (cf. the solver's own counter fields): a metric
   handle is looked up (and registered) once, typically in a top-level
   binding of the instrumented module; after that an increment is one
   branch on the enabled flag plus one int-ref store.  Disabled
   telemetry therefore costs exactly one predictable branch per call
   site.

   Naming convention: [subsystem.metric_name], e.g. [sat.conflicts],
   [runtime.hook_latency_us]. *)

type counter = { c_name : string; c_value : int ref }
type gauge = { g_name : string; g_value : float ref }

type histogram = {
  h_name : string;
  h_bounds : float array; (* ascending upper bounds of the buckets *)
  h_counts : int array; (* length = Array.length h_bounds + 1 (overflow) *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

(* --- registry ------------------------------------------------------------- *)

let enabled = ref false
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
  | None ->
      let c = { c_name = name; c_value = ref 0 } in
      Hashtbl.replace registry name (Counter c);
      c

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")
  | None ->
      let g = { g_name = name; g_value = ref 0.0 } in
      Hashtbl.replace registry name (Gauge g);
      g

let default_buckets =
  [| 0.1; 0.5; 1.0; 5.0; 10.0; 50.0; 100.0; 500.0; 1000.0; 5000.0 |]

let histogram ?(buckets = default_buckets) name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")
  | None ->
      let bounds = Array.copy buckets in
      Array.sort compare bounds;
      let h =
        {
          h_name = name;
          h_bounds = bounds;
          h_counts = Array.make (Array.length bounds + 1) 0;
          h_sum = 0.0;
          h_count = 0;
        }
      in
      Hashtbl.replace registry name (Histogram h);
      h

(* --- hot paths ------------------------------------------------------------ *)

let incr c = if !enabled then Stdlib.incr c.c_value
let add c n = if !enabled then c.c_value := !(c.c_value) + n
let set g v = if !enabled then g.g_value := v
let add_to g v = if !enabled then g.g_value := !(g.g_value) +. v

let observe h v =
  if !enabled then begin
    let n = Array.length h.h_bounds in
    let rec bucket i = if i >= n || v <= h.h_bounds.(i) then i else bucket (i + 1) in
    let i = bucket 0 in
    h.h_counts.(i) <- h.h_counts.(i) + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_count <- h.h_count + 1
  end

(* --- reads / export ------------------------------------------------------- *)

let counter_value c = !(c.c_value)
let gauge_value g = !(g.g_value)
let histogram_count h = h.h_count
let histogram_sum h = h.h_sum
let histogram_mean h = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

(* (upper-bound, count) pairs; the final pair is (infinity, overflow). *)
let histogram_buckets h =
  Array.to_list
    (Array.mapi
       (fun i c ->
         ( (if i < Array.length h.h_bounds then h.h_bounds.(i) else infinity),
           c ))
       h.h_counts)

(* All registered metrics, sorted by name for stable export. *)
let all () =
  Hashtbl.fold (fun _ m acc -> m :: acc) registry []
  |> List.sort
       (fun a b ->
         let name = function
           | Counter c -> c.c_name
           | Gauge g -> g.g_name
           | Histogram h -> h.h_name
         in
         compare (name a) (name b))

(* --- snapshots (cross-process merge) -------------------------------------- *)

(* A marshal-safe, handle-free copy of the registry, for shipping a
   worker process's metrics back to the parent over a pipe. *)
type snapshot_entry =
  | Snap_counter of string * int
  | Snap_gauge of string * float
  | Snap_histogram of string * float array * int array * float * int
      (* name, bucket bounds, bucket counts, sum, count *)

type snapshot = snapshot_entry list

let snapshot () =
  List.map
    (function
      | Counter c -> Snap_counter (c.c_name, !(c.c_value))
      | Gauge g -> Snap_gauge (g.g_name, !(g.g_value))
      | Histogram h ->
          Snap_histogram
            (h.h_name, Array.copy h.h_bounds, Array.copy h.h_counts, h.h_sum,
             h.h_count))
    (all ())

(* Fold a worker's snapshot into the live registry: counters and
   histograms are additive; gauges are last-write-wins.  Entries a
   worker never touched (zero counters/counts, 0.0 gauges) are skipped
   so an idle worker neither clobbers parent gauges nor registers noise.
   Unknown names are registered on the fly, so parent and worker need
   not share instrumentation.

   A histogram whose bucket boundaries differ from the registered ones
   cannot be merged meaningfully (adding per-bucket counts across
   different boundaries is nonsense), so it is skipped and its name
   returned; the caller decides how to surface that (the worker pool
   emits a warn log event).  This module cannot log itself — [Log] sits
   above it in the dependency order. *)
let merge snap =
  if not !enabled then []
  else
    List.fold_left
      (fun mismatched entry ->
        match entry with
        | Snap_counter (_, 0) | Snap_gauge (_, 0.0) -> mismatched
        | Snap_histogram (_, _, _, _, 0) -> mismatched
        | Snap_counter (name, v) ->
            add (counter name) v;
            mismatched
        | Snap_gauge (name, v) ->
            set (gauge name) v;
            mismatched
        | Snap_histogram (name, bounds, counts, sum, count) ->
            let h = histogram ~buckets:bounds name in
            if h.h_bounds = bounds && Array.length h.h_counts = Array.length counts
            then begin
              Array.iteri
                (fun i c -> h.h_counts.(i) <- h.h_counts.(i) + c)
                counts;
              h.h_sum <- h.h_sum +. sum;
              h.h_count <- h.h_count + count;
              mismatched
            end
            else mismatched @ [ name ])
      [] snap

(* Zero every registered metric.  Registrations (and the handles already
   held by instrumented modules) stay valid. *)
let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c_value := 0
      | Gauge g -> g.g_value := 0.0
      | Histogram h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_sum <- 0.0;
          h.h_count <- 0)
    registry

let pp ppf () =
  List.iter
    (fun m ->
      match m with
      | Counter c -> Format.fprintf ppf "%-36s %d@." c.c_name !(c.c_value)
      | Gauge g -> Format.fprintf ppf "%-36s %g@." g.g_name !(g.g_value)
      | Histogram h ->
          Format.fprintf ppf "%-36s count=%d sum=%g mean=%g@." h.h_name
            h.h_count h.h_sum (histogram_mean h))
    (all ())

let print () = pp Format.err_formatter ()
