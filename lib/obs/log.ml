(* Structured event log: leveled NDJSON events streamed to a file sink.

   One event = one line of flat JSON with a fixed envelope —
   [ts_us] (clock microseconds, monotone with the injected [Trace]
   clock), [level], [event] (machine-readable [subsystem.event] name),
   [pid], optionally [span] (the innermost open [Trace] span id, for
   correlating events with the phase that emitted them) — plus the
   caller's fields.  The emitter is self-contained (no dependency on
   [Separ_report.Json]: that library sits above this one).

   Cost discipline mirrors [Trace]/[Metrics]: with no sink installed,
   every [info]/[warn]/... call is a single branch.

   Repeated events are rate limited per event name: within a sliding
   window (default 1 s of clock time) only the first [limit] emissions
   of a name are written; the rest are counted and the count rides out
   on the next admitted event of that name as a ["suppressed"] field, so
   a hot loop cannot flood the sink but the loss is still visible.

   Worker processes of [Separ_exec.Pool] must not write to the sink fd
   they inherit (interleaved partial lines from concurrent children
   would corrupt the stream).  Instead a worker switches to capture mode
   ([capture_begin]): events buffer in memory, ship back to the parent
   inside the batch payload (they are plain marshal-safe records), and
   the parent [replay]s them through its own sink — already pid-tagged,
   since the pid is stamped at emission time. *)

type level = Debug | Info | Warn | Error

let level_priority = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type event = {
  ev_ts_us : float;
  ev_level : level;
  ev_event : string; (* machine-readable name, [subsystem.event] *)
  ev_pid : int;
  ev_span : int option; (* innermost open Trace span at emission *)
  ev_fields : (string * Trace.value) list;
  ev_suppressed : int; (* rate-limited repeats dropped before this one *)
}

(* --- sink + state --------------------------------------------------------- *)

let sink : out_channel option ref = ref None
let threshold = ref Info
let capturing = ref false
let captured : event list ref = ref [] (* reversed *)
let emitted = ref 0
let suppressed_total = ref 0

let set_level lvl = threshold := lvl
let level () = !threshold

(* Open [path] for append (append keeps device files like /dev/stderr
   and pre-existing logs well-behaved) and make it the sink. *)
let rec to_file path =
  close ();
  sink := Some (open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path)

and close () =
  match !sink with
  | Some oc ->
      sink := None;
      (try flush oc with Sys_error _ -> ());
      (try close_out oc with Sys_error _ -> ())
  | None -> ()

let is_enabled () = !sink <> None

(* --- rate limiting -------------------------------------------------------- *)

type rl_state = {
  mutable rl_window_start : float; (* us *)
  mutable rl_count : int; (* emissions admitted in the current window *)
  mutable rl_suppressed : int; (* dropped since the last admitted one *)
}

let default_rate_limit = 200
let rate_limit = ref default_rate_limit
let rate_window_us = ref 1e6
let limiters : (string, rl_state) Hashtbl.t = Hashtbl.create 64

(* [n <= 0] disables rate limiting entirely. *)
let set_rate_limit ?(window_s = 1.0) n =
  rate_limit := n;
  rate_window_us := window_s *. 1e6;
  Hashtbl.reset limiters

(* Returns [Some suppressed_before] when the event is admitted. *)
let admit name ts =
  if !rate_limit <= 0 then Some 0
  else begin
    let st =
      match Hashtbl.find_opt limiters name with
      | Some st -> st
      | None ->
          let st = { rl_window_start = ts; rl_count = 0; rl_suppressed = 0 } in
          Hashtbl.replace limiters name st;
          st
    in
    if ts -. st.rl_window_start >= !rate_window_us || ts < st.rl_window_start
    then begin
      st.rl_window_start <- ts;
      st.rl_count <- 0
    end;
    if st.rl_count >= !rate_limit then begin
      st.rl_suppressed <- st.rl_suppressed + 1;
      None
    end
    else begin
      st.rl_count <- st.rl_count + 1;
      let s = st.rl_suppressed in
      st.rl_suppressed <- 0;
      Some s
    end
  end

(* --- NDJSON rendering ------------------------------------------------------ *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else
    let s = Printf.sprintf "%g" f in
    if float_of_string s = f then Buffer.add_string buf s
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let add_value buf = function
  | Trace.Int i -> Buffer.add_string buf (string_of_int i)
  | Trace.Float f -> add_float buf f
  | Trace.Bool b -> Buffer.add_string buf (string_of_bool b)
  | Trace.Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'

let to_ndjson ev =
  let buf = Buffer.create 160 in
  Buffer.add_string buf "{\"ts_us\":";
  add_float buf ev.ev_ts_us;
  Buffer.add_string buf ",\"level\":\"";
  Buffer.add_string buf (level_name ev.ev_level);
  Buffer.add_string buf "\",\"event\":\"";
  add_escaped buf ev.ev_event;
  Buffer.add_string buf "\",\"pid\":";
  Buffer.add_string buf (string_of_int ev.ev_pid);
  (match ev.ev_span with
  | Some id ->
      Buffer.add_string buf ",\"span\":";
      Buffer.add_string buf (string_of_int id)
  | None -> ());
  if ev.ev_suppressed > 0 then begin
    Buffer.add_string buf ",\"suppressed\":";
    Buffer.add_string buf (string_of_int ev.ev_suppressed)
  end;
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      add_escaped buf k;
      Buffer.add_string buf "\":";
      add_value buf v)
    ev.ev_fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* --- emission -------------------------------------------------------------- *)

let write_event oc ev =
  output_string oc (to_ndjson ev);
  output_char oc '\n';
  flush oc

let log lvl ?(fields = []) name =
  match !sink with
  | None -> () (* the disabled path: one branch, nothing else *)
  | Some oc ->
      if level_priority lvl >= level_priority !threshold then begin
        let ts = Trace.now_us () in
        match admit name ts with
        | None ->
            Stdlib.incr suppressed_total
        | Some suppressed ->
            let ev =
              {
                ev_ts_us = ts;
                ev_level = lvl;
                ev_event = name;
                ev_pid = Unix.getpid ();
                ev_span = Trace.current_span_id ();
                ev_fields = fields;
                ev_suppressed = suppressed;
              }
            in
            Stdlib.incr emitted;
            if !capturing then captured := ev :: !captured
            else write_event oc ev
      end

let debug ?fields name = log Debug ?fields name
let info ?fields name = log Info ?fields name
let warn ?fields name = log Warn ?fields name
let error ?fields name = log Error ?fields name

(* --- worker capture / parent replay ---------------------------------------- *)

(* Divert emissions to an in-memory buffer (and clear any previous
   buffer).  A forked worker calls this once per batch: the sink channel
   it inherited belongs to the parent. *)
let capture_begin () =
  capturing := true;
  captured := []

(* Captured events in emission order; the buffer is cleared. *)
let capture_take () =
  let evs = List.rev !captured in
  captured := [];
  evs

let capture_end () =
  capturing := false;
  captured := []

(* Write worker events through this process's sink, preserving their
   original timestamps, pids and span ids. *)
let replay evs =
  match !sink with
  | None -> ()
  | Some oc -> List.iter (fun ev -> write_event oc ev) evs

(* --- accounting / test support --------------------------------------------- *)

(* (events written or captured, events dropped by the rate limiter)
   since the last [reset]. *)
let stats () = (!emitted, !suppressed_total)

(* Clear limiter windows, counters and any captured buffer; the sink,
   level and rate-limit configuration stay as they are. *)
let reset () =
  Hashtbl.reset limiters;
  emitted := 0;
  suppressed_total := 0;
  captured := []
