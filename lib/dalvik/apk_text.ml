(* A textual container format for whole APKs: manifest header followed by
   the smali-like class listing of {!Asm}.  This is what the command-line
   tool reads and writes, and it round-trips. *)

open Separ_android

let print (apk : Apk.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let m = apk.Apk.manifest in
  add ".package %s\n" m.Manifest.package;
  List.iter (add ".uses-permission %s\n") m.Manifest.uses_permissions;
  List.iter
    (fun (c : Component.t) ->
      add ".component %s %s%s%s\n"
        (Component.kind_to_string c.Component.kind)
        c.Component.name
        (match c.Component.exported with
        | Some true -> " exported=true"
        | Some false -> " exported=false"
        | None -> "")
        (match c.Component.permission with
        | Some p -> " permission=" ^ p
        | None -> "");
      List.iter
        (fun (f : Intent_filter.t) ->
          add ".filter %s actions=%s categories=%s types=%s schemes=%s hosts=%s priority=%d\n"
            c.Component.name
            (String.concat "," f.Intent_filter.actions)
            (String.concat "," f.Intent_filter.categories)
            (String.concat "," f.Intent_filter.data_types)
            (String.concat "," f.Intent_filter.data_schemes)
            (String.concat "," f.Intent_filter.data_hosts)
            f.Intent_filter.priority)
        c.Component.intent_filters)
    m.Manifest.components;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Asm.disassemble apk);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let split_csv s =
  if String.trim s = "" then []
  else String.split_on_char ',' s |> List.map String.trim

let parse text : Apk.t =
  let lines = String.split_on_char '\n' text in
  let package = ref None in
  let perms = ref [] in
  (* name -> (kind, exported, permission, filters rev) *)
  let comps : (string, Component.kind * bool option * string option) Hashtbl.t
      =
    Hashtbl.create 8
  in
  let comp_order = ref [] in
  let filters : (string, Intent_filter.t list) Hashtbl.t = Hashtbl.create 8 in
  let class_lines = Buffer.create 1024 in
  let in_classes = ref false in
  let kv_list attrs =
    List.filter_map
      (fun tok ->
        match String.index_opt tok '=' with
        | Some i ->
            Some
              ( String.sub tok 0 i,
                String.sub tok (i + 1) (String.length tok - i - 1) )
        | None -> None)
      attrs
  in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if !in_classes then begin
        Buffer.add_string class_lines raw;
        Buffer.add_char class_lines '\n'
      end
      else if line = "" then ()
      else if String.length line > 7 && String.sub line 0 7 = ".class " then begin
        in_classes := true;
        Buffer.add_string class_lines raw;
        Buffer.add_char class_lines '\n'
      end
      else
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | ".package" :: p :: _ -> package := Some p
        | ".uses-permission" :: p :: _ -> perms := p :: !perms
        | ".component" :: kind :: name :: attrs ->
            let kind =
              match kind with
              | "Activity" -> Component.Activity
              | "Service" -> Component.Service
              | "Receiver" -> Component.Receiver
              | "Provider" -> Component.Provider
              | k -> failwith ("Apk_text.parse: bad component kind " ^ k)
            in
            let kvs = kv_list attrs in
            let exported =
              Option.map bool_of_string (List.assoc_opt "exported" kvs)
            in
            let permission = List.assoc_opt "permission" kvs in
            Hashtbl.replace comps name (kind, exported, permission);
            comp_order := name :: !comp_order
        | ".filter" :: name :: attrs ->
            let kvs = kv_list attrs in
            let get k = split_csv (Option.value ~default:"" (List.assoc_opt k kvs)) in
            let priority =
              match List.assoc_opt "priority" kvs with
              | Some p -> int_of_string p
              | None -> 0
            in
            let f =
              Intent_filter.make ~actions:(get "actions")
                ~categories:(get "categories") ~data_types:(get "types")
                ~data_schemes:(get "schemes") ~data_hosts:(get "hosts")
                ~priority ()
            in
            Hashtbl.replace filters name
              (f :: Option.value ~default:[] (Hashtbl.find_opt filters name))
        | tok :: _ -> failwith ("Apk_text.parse: unexpected line " ^ tok)
        | [] -> ())
    lines;
  let package =
    match !package with
    | Some p -> p
    | None -> failwith "Apk_text.parse: missing .package"
  in
  let components =
    List.rev_map
      (fun name ->
        let kind, exported, permission = Hashtbl.find comps name in
        Component.make ~name ~kind ?exported ?permission
          ~intent_filters:
            (List.rev (Option.value ~default:[] (Hashtbl.find_opt filters name)))
          ())
      !comp_order
  in
  let classes = Asm.assemble (Buffer.contents class_lines) in
  Apk.make
    ~manifest:
      (Manifest.make ~package ~uses_permissions:(List.rev !perms) ~components
         ())
    ~classes

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse s

let save path apk =
  let oc = open_out path in
  output_string oc (print apk);
  close_out oc
