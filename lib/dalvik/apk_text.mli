(** A textual container format for whole APKs: manifest header (package,
    permissions, components, filters) followed by the smali-like class
    listing of {!Asm}.  This is what the command-line tool reads and
    writes; [parse] and [print] round-trip. *)

val print : Apk.t -> string

(** @raise Failure on malformed input. *)
val parse : string -> Apk.t

val load : string -> Apk.t
val save : string -> Apk.t -> unit
