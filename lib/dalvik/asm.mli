(** Textual assembler and disassembler for the IR, in a smali-like
    format.  [assemble] parses exactly what [disassemble] prints (round
    trip). *)

exception Parse_error of string

val disassemble_class : Ir.cls -> string

(** All classes of a package, concatenated. *)
val disassemble : Apk.t -> string

(** Parse one instruction line.
    @raise Parse_error on malformed input. *)
val parse_instr : string -> Ir.instr

(** Parse one or more classes.
    @raise Parse_error on malformed input.
    @raise Failure on IR validation errors. *)
val assemble : string -> Ir.cls list
