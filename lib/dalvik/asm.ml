(* Textual assembler and disassembler for the IR, in a smali-like format.
   [disassemble] and [assemble] round-trip; the format is what
   {!Ir.pp_class} prints. *)

open Separ_android

let disassemble_class c = Fmt.str "%a" Ir.pp_class c

let disassemble (apk : Apk.t) =
  String.concat "\n" (List.map disassemble_class apk.Apk.classes)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_reg s =
  if String.length s < 2 || s.[0] <> 'v' then fail "bad register %S" s
  else
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some r -> r
    | None -> fail "bad register %S" s

let strip_comma s =
  if String.length s > 0 && s.[String.length s - 1] = ',' then
    String.sub s 0 (String.length s - 1)
  else s

let parse_mref s =
  match String.index_opt s '#' with
  | None -> fail "bad method reference %S" s
  | Some i ->
      Api.mref (String.sub s 0 i) (String.sub s (i + 1) (String.length s - i - 1))

let words line =
  String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let parse_instr line =
  let line = String.trim line in
  if String.length line > 0 && line.[0] = ':' then
    Ir.Label (String.sub line 1 (String.length line - 1))
  else
    match words line with
    | [ "nop" ] -> Ir.Nop
    | [ "return-void" ] -> Ir.Return None
    | [ "return"; r ] -> Ir.Return (Some (parse_reg r))
    | [ "move"; a; b ] -> Ir.Move (parse_reg (strip_comma a), parse_reg b)
    | [ "move-result"; r ] -> Ir.Move_result (parse_reg r)
    | [ "new-instance"; r; c ] -> Ir.New_instance (parse_reg (strip_comma r), c)
    | [ "goto"; l ] when String.length l > 1 && l.[0] = ':' ->
        Ir.Goto (String.sub l 1 (String.length l - 1))
    | [ "if-eqz"; r; l ] when String.length l > 1 && l.[0] = ':' ->
        Ir.If_eqz (parse_reg (strip_comma r), String.sub l 1 (String.length l - 1))
    | [ "if-nez"; r; l ] when String.length l > 1 && l.[0] = ':' ->
        Ir.If_nez (parse_reg (strip_comma r), String.sub l 1 (String.length l - 1))
    | [ "iget"; d; o; f ] ->
        Ir.Iget (parse_reg (strip_comma d), parse_reg (strip_comma o), f)
    | [ "iput"; s; o; f ] ->
        Ir.Iput (parse_reg (strip_comma s), parse_reg (strip_comma o), f)
    | [ "sget"; d; f ] -> Ir.Sget (parse_reg (strip_comma d), f)
    | [ "sput"; s; f ] -> Ir.Sput (parse_reg (strip_comma s), f)
    | [ "new-array"; d; n ] ->
        Ir.New_array (parse_reg (strip_comma d), parse_reg n)
    | [ "aget"; d; a; i ] ->
        Ir.Aget
          (parse_reg (strip_comma d), parse_reg (strip_comma a), parse_reg i)
    | [ "aput"; s; a; i ] ->
        Ir.Aput
          (parse_reg (strip_comma s), parse_reg (strip_comma a), parse_reg i)
    | "const" :: r :: rest -> (
        let r = parse_reg (strip_comma r) in
        let payload = String.concat " " rest in
        if payload = "null" then Ir.Const (r, Ir.Cnull)
        else if String.length payload > 0 && payload.[0] = '"' then
          try Scanf.sscanf payload "%S" (fun s -> Ir.Const (r, Ir.Cstr s))
          with Scanf.Scan_failure _ -> fail "bad string constant %S" payload
        else
          match int_of_string_opt payload with
          | Some n -> Ir.Const (r, Ir.Cint n)
          | None -> fail "bad constant %S" payload)
    | kw :: rest
      when kw = "invoke-virtual" || kw = "invoke-static" -> (
        let kind = if kw = "invoke-virtual" then Ir.Virtual else Ir.Static in
        let s = String.concat " " rest in
        match String.index_opt s '(' with
        | None -> fail "bad invoke %S" line
        | Some i ->
            let mref = parse_mref (String.sub s 0 i) in
            let args_s = String.sub s (i + 1) (String.length s - i - 2) in
            let args =
              if String.trim args_s = "" then []
              else
                String.split_on_char ',' args_s
                |> List.map (fun a -> parse_reg (String.trim a))
            in
            Ir.Invoke (kind, mref, args))
    | _ -> fail "unrecognised instruction %S" line

(* Parse one or more classes from assembler text. *)
let assemble text =
  let lines = String.split_on_char '\n' text in
  let classes = ref [] in
  let cur_class = ref None in
  let cur_methods = ref [] in
  let cur_method = ref None in
  let cur_body = ref [] in
  let flush_class () =
    match !cur_class with
    | None -> ()
    | Some name ->
        classes := Ir.{ cname = name; methods = List.rev !cur_methods } :: !classes;
        cur_class := None;
        cur_methods := []
  in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if line = "" then ()
      else if String.length line > 7 && String.sub line 0 7 = ".class " then begin
        flush_class ();
        cur_class := Some (String.trim (String.sub line 7 (String.length line - 7)))
      end
      else if String.length line > 8 && String.sub line 0 8 = ".method " then begin
        match words line with
        | [ ".method"; name; params; regs ] ->
            let get_kv s key =
              match String.split_on_char '=' s with
              | [ k; v ] when k = key -> int_of_string v
              | _ -> fail "bad .method attribute %S" s
            in
            cur_method :=
              Some (name, get_kv params "params", get_kv regs "regs");
            cur_body := []
        | _ -> fail "bad .method line %S" line
      end
      else if line = ".end" then begin
        match !cur_method with
        | None -> fail ".end without .method"
        | Some (name, n_params, n_regs) ->
            let m =
              Ir.{
                mname = name;
                n_params;
                n_regs;
                body = Array.of_list (List.rev !cur_body);
              }
            in
            Ir.validate_method m;
            cur_methods := m :: !cur_methods;
            cur_method := None
      end
      else
        match !cur_method with
        | Some _ -> cur_body := parse_instr line :: !cur_body
        | None -> fail "instruction outside method: %S" line)
    lines;
  (match !cur_method with
  | Some (name, _, _) -> fail "unterminated method %s" name
  | None -> ());
  flush_class ();
  List.rev !classes
