(** The application package: a manifest plus the IR classes implementing
    its components.  A component's implementation is the class with the
    same name; entry points follow the platform lifecycle conventions. *)

open Separ_android

type t = {
  manifest : Manifest.t;
  classes : Ir.cls list;
}

(** Build and validate a package.
    @raise Failure on malformed IR. *)
val make : manifest:Manifest.t -> classes:Ir.cls list -> t

val package : t -> string
val find_class : t -> string -> Ir.cls option
val component_class : t -> Component.t -> Ir.cls option

(** Lifecycle entry points by component kind; each receives the incoming
    intent in register 0. *)
val entry_methods : Component.kind -> string list

(** Which entry point an ICC mechanism invokes on the target. *)
val entry_for_icc : Api.icc_kind -> string

(** The lifecycle callbacks the framework drives, in order, after the
    given entry point (e.g. onCreate -> onStart -> onResume). *)
val lifecycle_after : string -> string list

(** App size in IR instructions (the Figure 5 size metric). *)
val size : t -> int

(** Re-validate classes and entry-point arities.
    @raise Failure on violations. *)
val validate : t -> unit

val pp : Format.formatter -> t -> unit
