(** A register-based intermediate representation modelled on Dalvik
    bytecode: flat instruction arrays over virtual registers, labels for
    branch targets, field and array access, and invoke/move-result
    pairs.  Both the static analyses and the runtime interpreter consume
    this IR. *)

type reg = int
type const = Cstr of string | Cint of int | Cnull
type invoke_kind = Virtual | Static
type label = string

type instr =
  | Const of reg * const
  | Move of reg * reg
  | New_instance of reg * string            (** dst, class *)
  | Invoke of invoke_kind * Separ_android.Api.method_ref * reg list
  | Move_result of reg
  | Iget of reg * reg * string              (** dst, object, field *)
  | Iput of reg * reg * string              (** src, object, field *)
  | Sget of reg * string
  | Sput of reg * string
  | New_array of reg * reg                  (** dst, size *)
  | Aget of reg * reg * reg                 (** dst, array, index *)
  | Aput of reg * reg * reg                 (** src, array, index *)
  | If_eqz of reg * label
  | If_nez of reg * label
  | Goto of label
  | Label of label
  | Return of reg option
  | Nop

type meth = {
  mname : string;
  n_params : int;  (** parameters arrive in registers 0 .. n_params-1 *)
  n_regs : int;
  body : instr array;
}

type cls = {
  cname : string;
  methods : meth list;
}

val find_method : cls -> string -> meth option

(** Label -> instruction index.
    @raise Invalid_argument on duplicate labels. *)
val label_table : meth -> (label, int) Hashtbl.t

(** Registers in range, labels resolved, move-result placement.
    @raise Failure on violations. *)
val validate_method : meth -> unit

val validate_class : cls -> unit
val size_of_method : meth -> int
val size_of_class : cls -> int
val pp_const : Format.formatter -> const -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_method : Format.formatter -> meth -> unit
val pp_class : Format.formatter -> cls -> unit
