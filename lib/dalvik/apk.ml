(* The application package: a manifest plus the IR classes implementing
   its components.  A component's implementation is the class with the
   same name; entry points follow the platform lifecycle conventions. *)

open Separ_android

type t = {
  manifest : Manifest.t;
  classes : Ir.cls list;
}

let make ~manifest ~classes =
  let t = { manifest; classes } in
  List.iter Ir.validate_class classes;
  t

let package t = t.manifest.Manifest.package

let find_class t name =
  List.find_opt (fun c -> c.Ir.cname = name) t.classes

(* The class implementing a declared component, if provided. *)
let component_class t (c : Component.t) = find_class t c.Component.name

(* Lifecycle entry points by component kind.  Each receives the incoming
   intent in register 0. *)
let entry_methods = function
  | Component.Activity ->
      [ "onCreate"; "onStart"; "onResume"; "onPause"; "onStop"; "onDestroy";
        "onActivityResult" ]
  | Component.Service -> [ "onStartCommand"; "onBind"; "onDestroy" ]
  | Component.Receiver -> [ "onReceive" ]
  | Component.Provider -> [ "query"; "insert"; "update"; "delete" ]

(* The lifecycle callbacks the framework drives, in order, after the
   primary entry point has run. *)
let lifecycle_after = function
  | "onCreate" -> [ "onStart"; "onResume" ]
  | "onStartCommand" -> []
  | _ -> []

(* Which entry point an ICC kind invokes on the target component. *)
let entry_for_icc (k : Api.icc_kind) =
  match k with
  | Api.Start_activity -> "onCreate"
  | Api.Start_activity_for_result -> "onCreate"
  | Api.Start_service -> "onStartCommand"
  | Api.Bind_service -> "onBind"
  | Api.Send_broadcast -> "onReceive"
  | Api.Set_result -> "onActivityResult"
  | Api.Provider_query -> "query"
  | Api.Provider_insert -> "insert"
  | Api.Provider_update -> "update"
  | Api.Provider_delete -> "delete"
  | Api.Register_receiver -> "onReceive"

(* App size: total instruction count, the size metric of Figure 5. *)
let size t = List.fold_left (fun acc c -> acc + Ir.size_of_class c) 0 t.classes

let validate t =
  List.iter Ir.validate_class t.classes;
  (* every component entry point that exists must accept one parameter *)
  List.iter
    (fun (comp : Component.t) ->
      match component_class t comp with
      | None -> ()
      | Some cls ->
          List.iter
            (fun entry ->
              match Ir.find_method cls entry with
              | Some m when m.Ir.n_params < 1 ->
                  failwith
                    (Printf.sprintf
                       "Apk.validate: entry %s.%s must take the intent"
                       cls.Ir.cname entry)
              | _ -> ())
            (entry_methods comp.Component.kind))
    t.manifest.Manifest.components

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@,%a@]" Manifest.pp t.manifest
    Fmt.(list ~sep:cut Ir.pp_class)
    t.classes
