(** A DSL for emitting IR method bodies.  Code written against this
    builder reads close to the Java of the paper's listings while
    producing honest register-level IR that the analyses must work to
    understand.  Most emitters allocate and return the result register. *)

open Separ_android

type t

val create : ?params:int -> unit -> t
val emit : t -> Ir.instr -> unit
val fresh_reg : t -> Ir.reg
val fresh_label : t -> Ir.label
val param : t -> int -> Ir.reg

(** {1 Basic instructions} *)

val const_str : t -> string -> Ir.reg
val const_int : t -> int -> Ir.reg
val move : t -> dst:Ir.reg -> src:Ir.reg -> unit
val move_to_fresh : t -> Ir.reg -> Ir.reg
val iput : t -> obj:Ir.reg -> field:string -> src:Ir.reg -> unit
val iget : t -> obj:Ir.reg -> field:string -> Ir.reg
val sput : t -> field:string -> src:Ir.reg -> unit
val sget : t -> field:string -> Ir.reg
val new_array : t -> size:Ir.reg -> Ir.reg
val aput : t -> src:Ir.reg -> arr:Ir.reg -> idx:Ir.reg -> unit
val aget : t -> arr:Ir.reg -> idx:Ir.reg -> Ir.reg
val invoke : t -> ?kind:Ir.invoke_kind -> Api.method_ref -> Ir.reg list -> unit

(** Invoke followed by move-result into a fresh register. *)
val invoke_result :
  t -> ?kind:Ir.invoke_kind -> Api.method_ref -> Ir.reg list -> Ir.reg

val if_eqz : t -> Ir.reg -> Ir.label -> unit
val if_nez : t -> Ir.reg -> Ir.label -> unit
val goto : t -> Ir.label -> unit
val place_label : t -> Ir.label -> unit
val return_void : t -> unit
val return_reg : t -> Ir.reg -> unit
val nop : t -> unit

(** {1 Framework helpers} *)

(** Invoke the source API producing the given resource. *)
val source_call : t -> Resource.t -> Ir.reg

val get_location : t -> Ir.reg
val get_device_id : t -> Ir.reg
val get_contacts : t -> Ir.reg
val send_text_message : t -> number:Ir.reg -> body:Ir.reg -> unit
val http_post : t -> payload:Ir.reg -> unit
val write_log : t -> payload:Ir.reg -> unit
val write_sdcard : t -> payload:Ir.reg -> unit

(** {1 Intents} *)

val new_intent : t -> Ir.reg
val set_action : t -> Ir.reg -> string -> unit
val add_category : t -> Ir.reg -> string -> unit
val set_data_type : t -> Ir.reg -> string -> unit
val set_data_scheme : t -> Ir.reg -> string -> unit

(** setData with a full URI: "scheme://host". *)
val set_data_uri : t -> Ir.reg -> string -> unit
val set_class_name : t -> Ir.reg -> string -> unit
val put_extra : t -> Ir.reg -> key:string -> value:Ir.reg -> unit
val get_string_extra : t -> Ir.reg -> key:string -> Ir.reg
val get_all_extras : t -> Ir.reg -> Ir.reg
val start_activity : t -> Ir.reg -> unit
val start_activity_for_result : t -> Ir.reg -> unit
val start_service : t -> Ir.reg -> unit
val bind_service : t -> Ir.reg -> unit
val send_broadcast : t -> Ir.reg -> unit

(** Priority-ordered delivery; receivers may consume it. *)
val send_ordered_broadcast : t -> Ir.reg -> unit

(** Consume the ordered broadcast being handled. *)
val abort_broadcast : t -> unit
val set_result : t -> Ir.reg -> unit
val provider_op : t -> Api.icc_kind -> Ir.reg -> unit
val register_receiver : t -> Ir.reg -> unit

(** Register a method of the current class as a UI click handler. *)
val set_on_click_listener : t -> handler:string -> unit

(** Returns 1 in the result register iff the calling app holds the
    permission. *)
val check_calling_permission : t -> Permission.t -> Ir.reg

(** {1 App-internal calls (static dispatch by class and name)} *)

val call : t -> cls:string -> name:string -> Ir.reg list -> unit
val call_result : t -> cls:string -> name:string -> Ir.reg list -> Ir.reg

(** {1 Assembly} *)

(** Finish the body into a validated method. *)
val finish : t -> name:string -> Ir.meth

(** A method whose body is built by [f]; appends a return if the body
    does not end in one. *)
val meth : name:string -> ?params:int -> (t -> unit) -> Ir.meth

val cls : name:string -> Ir.meth list -> Ir.cls
