(* A register-based intermediate representation modelled on Dalvik
   bytecode: methods hold a flat instruction array over virtual registers,
   with labels for branch targets, field access, and invoke/move-result
   pairs.  Apps are compiled to this IR by the builder DSL (or assembled
   from text); the static analyses and the runtime interpreter both
   consume it. *)

type reg = int

type const = Cstr of string | Cint of int | Cnull

type invoke_kind = Virtual | Static

type label = string

type instr =
  | Const of reg * const
  | Move of reg * reg
  | New_instance of reg * string           (* dst, class *)
  | Invoke of invoke_kind * Separ_android.Api.method_ref * reg list
  | Move_result of reg
  | Iget of reg * reg * string             (* dst, object, field *)
  | Iput of reg * reg * string             (* src, object, field *)
  | Sget of reg * string                   (* dst, "Class.field" *)
  | Sput of reg * string                   (* src, "Class.field" *)
  | New_array of reg * reg                 (* dst, size *)
  | Aget of reg * reg * reg                (* dst, array, index *)
  | Aput of reg * reg * reg                (* src, array, index *)
  | If_eqz of reg * label
  | If_nez of reg * label
  | Goto of label
  | Label of label
  | Return of reg option
  | Nop

type meth = {
  mname : string;
  n_params : int;     (* parameters arrive in registers 0 .. n_params-1 *)
  n_regs : int;
  body : instr array;
}

type cls = {
  cname : string;
  methods : meth list;
}

let find_method cls name =
  List.find_opt (fun m -> m.mname = name) cls.methods

(* Map label -> instruction index. *)
let label_table (m : meth) =
  let tbl = Hashtbl.create 8 in
  Array.iteri
    (fun i instr ->
      match instr with
      | Label l ->
          if Hashtbl.mem tbl l then
            invalid_arg ("Ir.label_table: duplicate label " ^ l);
          Hashtbl.replace tbl l i
      | _ -> ())
    m.body;
  tbl

(* Static well-formedness: registers in range, labels resolved,
   move-result only after an invoke. *)
let validate_method (m : meth) =
  let labels = label_table m in
  let check_reg r =
    if r < 0 || r >= m.n_regs then
      failwith
        (Printf.sprintf "Ir.validate: register v%d out of range in %s" r
           m.mname)
  in
  let check_label l =
    if not (Hashtbl.mem labels l) then
      failwith
        (Printf.sprintf "Ir.validate: undefined label %s in %s" l m.mname)
  in
  Array.iteri
    (fun i instr ->
      (match instr with
      | Const (r, _) | New_instance (r, _) | Move_result r
      | Sget (r, _) | Sput (r, _) ->
          check_reg r
      | Move (a, b) | Iget (a, b, _) | Iput (a, b, _) | New_array (a, b) ->
          check_reg a;
          check_reg b
      | Aget (a, b, c) | Aput (a, b, c) ->
          check_reg a;
          check_reg b;
          check_reg c
      | Invoke (_, _, args) -> List.iter check_reg args
      | If_eqz (r, l) | If_nez (r, l) ->
          check_reg r;
          check_label l
      | Goto l -> check_label l
      | Return (Some r) -> check_reg r
      | Return None | Label _ | Nop -> ());
      match instr with
      | Move_result _ ->
          if
            i = 0
            || (match m.body.(i - 1) with Invoke _ -> false | _ -> true)
          then
            failwith
              (Printf.sprintf
                 "Ir.validate: move-result not after invoke in %s" m.mname)
      | _ -> ())
    m.body

let validate_class c = List.iter validate_method c.methods

let size_of_method m = Array.length m.body
let size_of_class c =
  List.fold_left (fun acc m -> acc + size_of_method m) 0 c.methods

let pp_const ppf = function
  | Cstr s -> Fmt.pf ppf "%S" s
  | Cint i -> Fmt.int ppf i
  | Cnull -> Fmt.string ppf "null"

let pp_instr ppf = function
  | Const (r, c) -> Fmt.pf ppf "const v%d, %a" r pp_const c
  | Move (a, b) -> Fmt.pf ppf "move v%d, v%d" a b
  | New_instance (r, c) -> Fmt.pf ppf "new-instance v%d, %s" r c
  | Invoke (k, m, args) ->
      Fmt.pf ppf "invoke-%s %s#%s(%a)"
        (match k with Virtual -> "virtual" | Static -> "static")
        m.Separ_android.Api.cls m.Separ_android.Api.mtd
        Fmt.(list ~sep:(any ", ") (fun ppf r -> pf ppf "v%d" r))
        args
  | Move_result r -> Fmt.pf ppf "move-result v%d" r
  | Iget (d, o, f) -> Fmt.pf ppf "iget v%d, v%d, %s" d o f
  | Iput (s, o, f) -> Fmt.pf ppf "iput v%d, v%d, %s" s o f
  | Sget (d, f) -> Fmt.pf ppf "sget v%d, %s" d f
  | Sput (s, f) -> Fmt.pf ppf "sput v%d, %s" s f
  | New_array (d, n) -> Fmt.pf ppf "new-array v%d, v%d" d n
  | Aget (d, a, i) -> Fmt.pf ppf "aget v%d, v%d, v%d" d a i
  | Aput (s, a, i) -> Fmt.pf ppf "aput v%d, v%d, v%d" s a i
  | If_eqz (r, l) -> Fmt.pf ppf "if-eqz v%d, :%s" r l
  | If_nez (r, l) -> Fmt.pf ppf "if-nez v%d, :%s" r l
  | Goto l -> Fmt.pf ppf "goto :%s" l
  | Label l -> Fmt.pf ppf ":%s" l
  | Return (Some r) -> Fmt.pf ppf "return v%d" r
  | Return None -> Fmt.string ppf "return-void"
  | Nop -> Fmt.string ppf "nop"

let pp_method ppf m =
  Fmt.pf ppf "@[<v 2>.method %s params=%d regs=%d@,%a@]@,.end" m.mname
    m.n_params m.n_regs
    Fmt.(array ~sep:cut pp_instr)
    m.body

let pp_class ppf c =
  Fmt.pf ppf "@[<v>.class %s@,%a@]" c.cname
    Fmt.(list ~sep:cut pp_method)
    c.methods
