(* A small DSL for emitting IR method bodies.  Code written against this
   builder reads close to the Java of the paper's listings while producing
   honest register-level IR that the analyses must work to understand. *)

open Separ_android

type t = {
  mutable instrs : Ir.instr list; (* reversed *)
  mutable next_reg : int;
  mutable next_label : int;
  n_params : int;
}

let create ?(params = 0) () =
  { instrs = []; next_reg = params; next_label = 0; n_params = params }

let emit b i = b.instrs <- i :: b.instrs

let fresh_reg b =
  let r = b.next_reg in
  b.next_reg <- r + 1;
  r

let fresh_label b =
  let l = Printf.sprintf "L%d" b.next_label in
  b.next_label <- b.next_label + 1;
  l

let param _b i = i

(* --- basic instructions ------------------------------------------------ *)

let const_str b s =
  let r = fresh_reg b in
  emit b (Ir.Const (r, Ir.Cstr s));
  r

let const_int b n =
  let r = fresh_reg b in
  emit b (Ir.Const (r, Ir.Cint n));
  r

let move b ~dst ~src = emit b (Ir.Move (dst, src))

let move_to_fresh b src =
  let r = fresh_reg b in
  emit b (Ir.Move (r, src));
  r

let iput b ~obj ~field ~src = emit b (Ir.Iput (src, obj, field))

let iget b ~obj ~field =
  let r = fresh_reg b in
  emit b (Ir.Iget (r, obj, field));
  r

let sput b ~field ~src = emit b (Ir.Sput (src, field))

let sget b ~field =
  let r = fresh_reg b in
  emit b (Ir.Sget (r, field));
  r

let new_array b ~size =
  let r = fresh_reg b in
  emit b (Ir.New_array (r, size));
  r

let aput b ~src ~arr ~idx = emit b (Ir.Aput (src, arr, idx))

let aget b ~arr ~idx =
  let r = fresh_reg b in
  emit b (Ir.Aget (r, arr, idx));
  r

let invoke b ?(kind = Ir.Virtual) mref args = emit b (Ir.Invoke (kind, mref, args))

let invoke_result b ?(kind = Ir.Virtual) mref args =
  invoke b ~kind mref args;
  let r = fresh_reg b in
  emit b (Ir.Move_result r);
  r

let if_eqz b r label = emit b (Ir.If_eqz (r, label))
let if_nez b r label = emit b (Ir.If_nez (r, label))
let goto b label = emit b (Ir.Goto label)
let place_label b label = emit b (Ir.Label label)
let return_void b = emit b (Ir.Return None)
let return_reg b r = emit b (Ir.Return (Some r))
let nop b = emit b Ir.Nop

(* --- framework helpers -------------------------------------------------- *)

let source_call b resource =
  let m =
    List.find (fun (_, r) -> r = resource) Api.sources |> fst
  in
  invoke_result b m []

let get_location b = source_call b Resource.Location
let get_device_id b = source_call b Resource.Imei
let get_contacts b = source_call b Resource.Contacts

let send_text_message b ~number ~body =
  invoke b (Api.mref Api.c_sms_manager "sendTextMessage") [ number; body ]

let http_post b ~payload =
  invoke b (Api.mref Api.c_http "post") [ payload ]

let write_log b ~payload = invoke b (Api.mref Api.c_log "i") [ payload ]

let write_sdcard b ~payload =
  invoke b (Api.mref Api.c_storage "writeFile") [ payload ]

(* --- intents ------------------------------------------------------------ *)

let new_intent b =
  let r = fresh_reg b in
  emit b (Ir.New_instance (r, Api.c_intent));
  invoke b (Api.mref Api.c_intent "<init>") [ r ];
  r

let set_action b intent action =
  let a = const_str b action in
  invoke b (Api.mref Api.c_intent "setAction") [ intent; a ]

let add_category b intent category =
  let c = const_str b category in
  invoke b (Api.mref Api.c_intent "addCategory") [ intent; c ]

let set_data_type b intent ty =
  let t = const_str b ty in
  invoke b (Api.mref Api.c_intent "setType") [ intent; t ]

let set_data_scheme b intent scheme =
  let s = const_str b scheme in
  invoke b (Api.mref Api.c_intent "setData") [ intent; s ]

(* setData with a full URI: "scheme://host" *)
let set_data_uri = set_data_scheme

let set_class_name b intent cls =
  let c = const_str b cls in
  invoke b (Api.mref Api.c_intent "setClassName") [ intent; c ]

let put_extra b intent ~key ~value =
  let k = const_str b key in
  invoke b (Api.mref Api.c_intent "putExtra") [ intent; k; value ]

let get_string_extra b intent ~key =
  let k = const_str b key in
  invoke_result b (Api.mref Api.c_intent "getStringExtra") [ intent; k ]

let get_all_extras b intent =
  invoke_result b (Api.mref Api.c_intent "getExtras") [ intent ]

let start_activity b intent =
  invoke b (Api.mref Api.c_context "startActivity") [ intent ]

let start_activity_for_result b intent =
  invoke b (Api.mref Api.c_activity "startActivityForResult") [ intent ]

let start_service b intent =
  invoke b (Api.mref Api.c_context "startService") [ intent ]

let bind_service b intent =
  invoke b (Api.mref Api.c_context "bindService") [ intent ]

let send_broadcast b intent =
  invoke b (Api.mref Api.c_context "sendBroadcast") [ intent ]

let send_ordered_broadcast b intent =
  invoke b (Api.mref Api.c_context "sendOrderedBroadcast") [ intent ]

let abort_broadcast b =
  invoke b (Api.mref Api.c_context "abortBroadcast") []

let set_result b intent =
  invoke b (Api.mref Api.c_activity "setResult") [ intent ]

let provider_op b (op : Api.icc_kind) intent =
  let name =
    match op with
    | Api.Provider_query -> "query"
    | Api.Provider_insert -> "insert"
    | Api.Provider_update -> "update"
    | Api.Provider_delete -> "delete"
    | _ -> invalid_arg "Builder.provider_op"
  in
  invoke b (Api.mref Api.c_resolver name) [ intent ]

let register_receiver b intent =
  (* dynamic receiver registration; the "intent" argument carries the
     filter description at runtime *)
  invoke b (Api.mref Api.c_context "registerReceiver") [ intent ]

(* Register a method of this class as a UI click handler. *)
let set_on_click_listener b ~handler =
  let h = const_str b handler in
  invoke b (Api.mref Api.c_view "setOnClickListener") [ h ]

let check_calling_permission b perm =
  let p = const_str b perm in
  invoke_result b (Api.mref Api.c_context "checkCallingPermission") [ p ]

(* Call a method of this app (static dispatch by class+name). *)
let call b ~cls ~name args =
  invoke b ~kind:Ir.Static (Api.mref cls name) args

let call_result b ~cls ~name args =
  invoke_result b ~kind:Ir.Static (Api.mref cls name) args

(* --- assembly ----------------------------------------------------------- *)

let finish b ~name =
  let body = Array.of_list (List.rev b.instrs) in
  let m =
    Ir.{ mname = name; n_params = b.n_params; n_regs = max b.next_reg 1; body }
  in
  Ir.validate_method m;
  m

(* Convenience: a method whose body is built by [f]. *)
let meth ~name ?(params = 0) f =
  let b = create ~params () in
  f b;
  (* implicit return for bodies that do not end in one *)
  (match b.instrs with
  | Ir.Return _ :: _ -> ()
  | _ -> return_void b);
  finish b ~name

let cls ~name methods = Ir.{ cname = name; methods }
