(* A CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
   analysis with clause learning and learnt-clause minimization, VSIDS-style
   variable activities with a binary heap, clause activities with periodic
   learnt-database reduction, phase saving, and Luby-sequence restarts.
   Incremental use is supported through solve-time assumptions; clauses may
   be added between calls.

   The external interface uses DIMACS conventions: variables are positive
   integers obtained from [new_var], a literal is [+v] or [-v]. *)

type clause = {
  mutable lits : int array; (* internal literal encoding, see {!Lit} *)
  learnt : bool;
  mutable activity : float; (* clause activity; learnt clauses only *)
}

type lbool = LTrue | LFalse | LUndef

type t = {
  mutable clauses : clause Vec.t;          (* problem clauses *)
  mutable learnts : clause Vec.t;          (* learnt clauses *)
  mutable watches : clause Vec.t array;    (* watch list per literal *)
  mutable assigns : lbool array;           (* per var *)
  mutable polarity : bool array;           (* saved phase per var *)
  mutable level : int array;               (* decision level per var *)
  mutable reason : clause option array;    (* antecedent per var *)
  mutable activity : float array;          (* VSIDS activity per var *)
  mutable seen : bool array;               (* scratch for analyze *)
  trail : int Vec.t;                       (* assigned literals, in order *)
  trail_lim : int Vec.t;                   (* decision-level boundaries *)
  mutable qhead : int;                     (* propagation queue head *)
  mutable nvars : int;
  heap : Heap.t;                           (* decision heap, max-activity *)
  mutable var_inc : float;                 (* variable activity increment *)
  mutable cla_inc : float;                 (* clause activity increment *)
  mutable learnt_limit : int;              (* learnt-db capacity; 0 = unset *)
  mutable ok : bool;                       (* false once trivially unsat *)
  mutable model_valid : bool;              (* last operation was a Sat solve *)
  mutable act_live : int;                  (* live activation var, 0 = none *)
  mutable n_act_retired : int;             (* retired activation vars *)
  mutable conflict_core : int array;       (* failed assumptions, internal lits *)
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
  mutable n_reduce_db : int;               (* learnt-db reductions performed *)
  mutable n_learnts_deleted : int;         (* clauses dropped by reduce_db *)
  mutable n_lits_minimized : int;          (* literals removed by ccmin *)
  mutable peak_learnts : int;              (* high-water mark of the db *)
}

let dummy_clause = { lits = [||]; learnt = false; activity = 0.0 }

let create () =
  {
    clauses = Vec.create dummy_clause;
    learnts = Vec.create dummy_clause;
    watches = [||];
    assigns = [||];
    polarity = [||];
    level = [||];
    reason = [||];
    activity = [||];
    seen = [||];
    trail = Vec.create 0;
    trail_lim = Vec.create 0;
    qhead = 0;
    nvars = 0;
    heap = Heap.create ();
    var_inc = 1.0;
    cla_inc = 1.0;
    learnt_limit = 0;
    ok = true;
    model_valid = false;
    act_live = 0;
    n_act_retired = 0;
    conflict_core = [||];
    n_conflicts = 0;
    n_decisions = 0;
    n_propagations = 0;
    n_restarts = 0;
    n_reduce_db = 0;
    n_learnts_deleted = 0;
    n_lits_minimized = 0;
    peak_learnts = 0;
  }

let n_vars t = t.nvars
let n_clauses t = Vec.size t.clauses
let n_conflicts t = t.n_conflicts

let grow_arrays t n =
  let old = Array.length t.assigns in
  if n > old then begin
    let cap = max n (max 16 (2 * old)) in
    let extend a fill =
      let a' = Array.make cap fill in
      Array.blit a 0 a' 0 old;
      a'
    in
    t.assigns <- extend t.assigns LUndef;
    t.polarity <- extend t.polarity false;
    t.level <- extend t.level (-1);
    t.reason <- extend t.reason None;
    t.activity <- extend t.activity 0.0;
    t.seen <- extend t.seen false;
    let w = Array.init (2 * cap) (fun i ->
        if i < Array.length t.watches then t.watches.(i)
        else Vec.create dummy_clause)
    in
    t.watches <- w
  end

(* Allocates a fresh variable and returns its external (1-based) index. *)
let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  grow_arrays t t.nvars;
  Heap.insert t.heap v t.activity.(v);
  v + 1

let value_lit t l =
  match t.assigns.(Lit.var l) with
  | LUndef -> LUndef
  | LTrue -> if Lit.sign l then LTrue else LFalse
  | LFalse -> if Lit.sign l then LFalse else LTrue

let decision_level t = Vec.size t.trail_lim

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100;
    Heap.rescale t.heap 1e-100
  end;
  if Heap.mem t.heap v then Heap.update t.heap v t.activity.(v)

let var_decay t = t.var_inc <- t.var_inc /. 0.95

let cla_bump t (c : clause) =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let cla_decay t = t.cla_inc <- t.cla_inc /. 0.999

(* Enqueue literal [l] as true, with optional antecedent. *)
let enqueue t l reason =
  let v = Lit.var l in
  assert (t.assigns.(v) = LUndef);
  t.assigns.(v) <- (if Lit.sign l then LTrue else LFalse);
  t.polarity.(v) <- Lit.sign l;
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  Vec.push t.trail l

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    for i = Vec.size t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = Lit.var l in
      t.assigns.(v) <- LUndef;
      t.reason.(v) <- None;
      if not (Heap.mem t.heap v) then Heap.insert t.heap v t.activity.(v)
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim lvl;
    t.qhead <- Vec.size t.trail
  end

(* Attach a clause (>= 2 literals) to the watch lists of its first two. *)
let attach t c =
  Vec.push t.watches.(Lit.negate c.lits.(0)) c;
  Vec.push t.watches.(Lit.negate c.lits.(1)) c

(* Remove a clause from the watch lists of its two watched literals. *)
let detach t c =
  let remove_from l =
    let ws = t.watches.(Lit.negate l) in
    let rec find i =
      if i < Vec.size ws then
        if Vec.get ws i == c then Vec.swap_remove ws i else find (i + 1)
    in
    find 0
  in
  remove_from c.lits.(0);
  remove_from c.lits.(1)

(* A clause is locked while it is the antecedent of its asserting literal
   (position 0 holds the implied literal for as long as it is assigned:
   propagation only ever swaps the newly-false literal into position 1). *)
let locked t c =
  Array.length c.lits > 0
  &&
  match t.reason.(Lit.var c.lits.(0)) with
  | Some c' -> c' == c
  | None -> false

(* Record a freshly learnt clause (>= 2 literals) in the database. *)
let new_learnt t lits =
  let c = { lits; learnt = true; activity = 0.0 } in
  cla_bump t c;
  Vec.push t.learnts c;
  if Vec.size t.learnts > t.peak_learnts then
    t.peak_learnts <- Vec.size t.learnts;
  attach t c;
  c

(* Delete the colder half of the learnt database, ordered by clause
   activity.  Locked clauses (current antecedents) and binary learnts are
   never deleted: locked clauses back live trail literals, and binaries
   are cheap to keep and expensive to re-learn. *)
let reduce_db t =
  t.n_reduce_db <- t.n_reduce_db + 1;
  let n = Vec.size t.learnts in
  let arr = Array.init n (Vec.get t.learnts) in
  Array.sort
    (fun (a : clause) (b : clause) -> compare a.activity b.activity)
    arr;
  Vec.clear t.learnts;
  Array.iteri
    (fun i c ->
      if Array.length c.lits <= 2 || locked t c || i >= n / 2 then
        Vec.push t.learnts c
      else begin
        detach t c;
        t.n_learnts_deleted <- t.n_learnts_deleted + 1
      end)
    arr

exception Conflict of clause

(* Unit propagation.  Returns the conflicting clause, if any. *)
let propagate t =
  try
    while t.qhead < Vec.size t.trail do
      let l = Vec.get t.trail t.qhead in
      t.qhead <- t.qhead + 1;
      t.n_propagations <- t.n_propagations + 1;
      let ws = t.watches.(l) in
      let i = ref 0 in
      while !i < Vec.size ws do
        let c = Vec.get ws !i in
        let lits = c.lits in
        (* Ensure the false literal is at position 1. *)
        let nl = Lit.negate l in
        if lits.(0) = nl then begin
          lits.(0) <- lits.(1);
          lits.(1) <- nl
        end;
        if value_lit t lits.(0) = LTrue then incr i
        else begin
          (* Look for a new literal to watch. *)
          let n = Array.length lits in
          let rec find k =
            if k >= n then -1
            else if value_lit t lits.(k) <> LFalse then k
            else find (k + 1)
          in
          let k = find 2 in
          if k >= 0 then begin
            lits.(1) <- lits.(k);
            lits.(k) <- nl;
            Vec.push t.watches.(Lit.negate lits.(1)) c;
            Vec.swap_remove ws !i
          end
          else if value_lit t lits.(0) = LFalse then begin
            t.qhead <- Vec.size t.trail;
            raise (Conflict c)
          end
          else begin
            enqueue t lits.(0) (Some c);
            incr i
          end
        end
      done
    done;
    None
  with Conflict c -> Some c

(* First-UIP conflict analysis.  Returns the learnt clause (with the
   asserting literal first) and the backtrack level.  Before the clause is
   returned it is shortened by self-subsumption (MiniSat's local "ccmin"):
   a literal whose antecedent is fully covered by the remaining clause and
   level-0 facts resolves away without weakening the clause. *)
let analyze t confl =
  let learnt = Vec.create 0 in
  Vec.push learnt 0 (* placeholder for asserting literal *);
  let path = ref 0 in
  let p = ref (-1) in
  let confl = ref (Some confl) in
  let idx = ref (Vec.size t.trail - 1) in
  let continue = ref true in
  while !continue do
    let c =
      match !confl with Some c -> c | None -> assert false
    in
    if c.learnt then cla_bump t c;
    let start = if !p = -1 then 0 else 1 in
    for j = start to Array.length c.lits - 1 do
      let q = c.lits.(j) in
      let v = Lit.var q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        t.seen.(v) <- true;
        var_bump t v;
        if t.level.(v) >= decision_level t then incr path
        else Vec.push learnt q
      end
    done;
    (* Select next literal on the trail to expand. *)
    let rec next i =
      if t.seen.(Lit.var (Vec.get t.trail i)) then i else next (i - 1)
    in
    idx := next !idx;
    let lt = Vec.get t.trail !idx in
    decr idx;
    p := lt;
    t.seen.(Lit.var lt) <- false;
    confl := t.reason.(Lit.var lt);
    decr path;
    if !path <= 0 then continue := false
  done;
  Vec.set learnt 0 (Lit.negate !p);
  (* Self-subsumption pass: at this point [seen] holds exactly the vars of
     learnt.(1..); a literal is redundant iff every other literal of its
     antecedent is already in the clause or false at level 0. *)
  let redundant q =
    match t.reason.(Lit.var q) with
    | None -> false
    | Some c ->
        let ok = ref true in
        for k = 1 to Array.length c.lits - 1 do
          let v = Lit.var c.lits.(k) in
          if (not t.seen.(v)) && t.level.(v) > 0 then ok := false
        done;
        !ok
  in
  let keep = Vec.create 0 in
  Vec.push keep (Vec.get learnt 0);
  for i = 1 to Vec.size learnt - 1 do
    let q = Vec.get learnt i in
    if redundant q then t.n_lits_minimized <- t.n_lits_minimized + 1
    else Vec.push keep q
  done;
  (* Compute backtrack level: the max level among the other literals. *)
  let blevel = ref 0 in
  let swap_pos = ref 1 in
  for i = 1 to Vec.size keep - 1 do
    let lv = t.level.(Lit.var (Vec.get keep i)) in
    if lv > !blevel then begin
      blevel := lv;
      swap_pos := i
    end
  done;
  if Vec.size keep > 1 then begin
    let tmp = Vec.get keep 1 in
    Vec.set keep 1 (Vec.get keep !swap_pos);
    Vec.set keep !swap_pos tmp
  end;
  (* Clear seen flags, including vars of minimized-away literals. *)
  for i = 0 to Vec.size learnt - 1 do
    t.seen.(Lit.var (Vec.get learnt i)) <- false
  done;
  (Array.init (Vec.size keep) (Vec.get keep), !blevel)

(* Final-conflict analysis over assumptions (MiniSat's analyzeFinal).
   Given literals false under the current assignment, walk the trail from
   the top down to the first decision, expanding reasons; reason-less
   trail literals above level 0 are assumption decisions (search only
   calls this while the trail holds assumption levels exclusively), and
   the set of those reached is the subset of failed assumptions — an
   unsat core over the assumption set.  Returns internal literals. *)
let analyze_final_from t false_lits =
  if decision_level t = 0 then []
  else begin
    let marked = Vec.create 0 in
    let mark q =
      let v = Lit.var q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        t.seen.(v) <- true;
        Vec.push marked v
      end
    in
    List.iter mark false_lits;
    let out = ref [] in
    for i = Vec.size t.trail - 1 downto Vec.get t.trail_lim 0 do
      let l = Vec.get t.trail i in
      if t.seen.(Lit.var l) then
        match t.reason.(Lit.var l) with
        | None -> out := l :: !out (* an assumption decision *)
        | Some c -> Array.iter mark c.lits
    done;
    Vec.iter (fun v -> t.seen.(v) <- false) marked;
    !out
  end

(* Add a clause given in internal literal encoding.  Performs top-level
   simplification: removes duplicate/false literals, detects tautologies. *)
let add_clause_internal t lits =
  if t.ok then begin
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (Lit.negate l) lits) lits
    in
    if not tautology then begin
      (* Drop literals already false at level 0; detect satisfied clause. *)
      let lits =
        List.filter
          (fun l ->
            not (value_lit t l = LFalse && t.level.(Lit.var l) = 0))
          lits
      in
      let satisfied =
        List.exists
          (fun l -> value_lit t l = LTrue && t.level.(Lit.var l) = 0)
          lits
      in
      if not satisfied then
        match lits with
        | [] -> t.ok <- false
        | [ l ] ->
            if value_lit t l = LFalse then t.ok <- false
            else if value_lit t l = LUndef then begin
              assert (decision_level t = 0);
              enqueue t l None;
              if propagate t <> None then t.ok <- false
            end
        | _ ->
            let c = { lits = Array.of_list lits; learnt = false; activity = 0.0 } in
            Vec.push t.clauses c;
            attach t c
    end
  end

(* Public clause interface: DIMACS-style signed integers.  Adding a clause
   invalidates the current model: the solver backtracks to the root level
   so the clause can be simplified against level-0 facts only.  Model
   values must be read before clauses are added. *)
let add_clause t lits =
  t.model_valid <- false;
  cancel_until t 0;
  List.iter
    (fun i ->
      let v = abs i in
      if v = 0 then invalid_arg "Solver.add_clause: zero literal";
      while v > t.nvars do
        ignore (new_var t)
      done)
    lits;
  add_clause_internal t (List.map Lit.of_int lits)

(* Activation-literal support for assumption-guarded temporary clauses
   (used by {!Models.minimize}).  At most one activation variable is live;
   retiring it adds the unit clause [-act], permanently satisfying every
   clause it guards, and the next acquisition allocates a fresh one. *)
let activation_var t =
  if t.act_live = 0 then t.act_live <- new_var t;
  t.act_live

let retire_activation t =
  if t.act_live <> 0 then begin
    let act = t.act_live in
    t.act_live <- 0;
    t.n_act_retired <- t.n_act_retired + 1;
    add_clause t [ -act ]
  end

let activation_counts t =
  ((if t.act_live = 0 then 0 else 1), t.n_act_retired)

(* Luby restart sequence, following the classical MiniSat formulation. *)
let luby y x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  y ** float_of_int !seq

let pick_branch_var t =
  let rec go () =
    if Heap.is_empty t.heap then -1
    else
      let v = Heap.remove_max t.heap in
      if t.assigns.(v) = LUndef then v else go ()
  in
  go ()

type result = Sat | Unsat | Unknown

(* A resource budget for one [solve] call.  [None] fields are unlimited;
   exhausting either bound makes the call return [Unknown] (the model, if
   any, is invalidated, but the solver remains usable: learnt clauses are
   kept, and a later unbudgeted call can finish the search). *)
type budget = {
  b_max_conflicts : int option;  (* conflicts this call may spend *)
  b_max_time_ms : float option;  (* wall-clock milliseconds for this call *)
}

let no_budget = { b_max_conflicts = None; b_max_time_ms = None }

exception Unsat_exc
exception Budget_exc

let set_learnt_limit t n = t.learnt_limit <- max 1 n

(* The CDCL search loop.  [assumptions] are internal literals decided first,
   in order; a conflict forcing their negation yields Unsat.  [conflict_cap]
   is an absolute bound on [t.n_conflicts] and [deadline] an absolute
   wall-clock time; crossing either raises [Budget_exc].  The deadline is
   only polled every 64 conflicts to keep the syscall off the hot path. *)
let search t assumptions ~conflict_cap ~deadline =
  let conflicts_budget = ref 100 in
  let restart_count = ref 0 in
  let rec loop () =
    match propagate t with
    | Some confl ->
        t.n_conflicts <- t.n_conflicts + 1;
        if t.n_conflicts >= conflict_cap then raise Budget_exc;
        if
          deadline < infinity
          && t.n_conflicts land 63 = 0
          && Unix.gettimeofday () > deadline
        then raise Budget_exc;
        decr conflicts_budget;
        if decision_level t = 0 then begin
          (* Conflict with no decisions: the clauses alone are unsat, so
             no assumption is to blame — and the solver is unsat forever.
             Marking [ok] here matters: [propagate] drains its queue on
             conflict, so the falsified clause would never be revisited
             and a later solve could wrongly answer Sat. *)
          t.conflict_core <- [||];
          t.ok <- false;
          raise Unsat_exc
        end;
        (* A conflict at or below the assumption prefix means the
           assumptions themselves are inconsistent with the clauses. *)
        let learnt, blevel = analyze t confl in
        let n_assumed =
          (* number of assumption decisions currently on the trail *)
          min (decision_level t) (List.length assumptions)
        in
        cancel_until t blevel;
        let c =
          if Array.length learnt = 1 then None
          else Some (new_learnt t learnt)
        in
        if blevel < n_assumed then begin
          (* The learnt clause is asserting below an assumption level:
             check whether it contradicts the assumptions. *)
          if value_lit t learnt.(0) = LFalse then begin
            t.conflict_core <-
              Array.of_list
                (analyze_final_from t (Array.to_list learnt));
            raise Unsat_exc
          end;
          if value_lit t learnt.(0) = LUndef then enqueue t learnt.(0) c
        end
        else enqueue t learnt.(0) c;
        var_decay t;
        cla_decay t;
        loop ()
    | None ->
        if !conflicts_budget <= 0 then begin
          (* Restart: keep assumptions, drop other decisions. *)
          t.n_restarts <- t.n_restarts + 1;
          incr restart_count;
          conflicts_budget :=
            int_of_float (100.0 *. luby 2.0 !restart_count);
          cancel_until t 0;
          loop ()
        end
        else begin
          (* Learnt-database housekeeping: when the database outgrows its
             (slowly growing) capacity, drop the cold half. *)
          if Vec.size t.learnts - Vec.size t.trail >= t.learnt_limit then begin
            reduce_db t;
            t.learnt_limit <- t.learnt_limit + (t.learnt_limit / 10) + 1
          end;
          (* Re-establish assumptions as the first decisions. *)
          let dl = decision_level t in
          let rec assume i = function
            | [] -> None
            | a :: rest ->
                if i < dl then assume (i + 1) rest
                else begin
                  match value_lit t a with
                  | LTrue ->
                      (* already implied: introduce an empty decision level
                         to keep the prefix aligned *)
                      Vec.push t.trail_lim (Vec.size t.trail);
                      assume (i + 1) rest
                  | LFalse ->
                      (* Assumption [a] already false: the failed set is
                         [a] plus whatever forced its negation. *)
                      t.conflict_core <-
                        Array.of_list (a :: analyze_final_from t [ a ]);
                      raise Unsat_exc
                  | LUndef ->
                      Vec.push t.trail_lim (Vec.size t.trail);
                      enqueue t a None;
                      Some ()
                end
          in
          match assume 0 assumptions with
          | Some () -> loop ()
          | None ->
              let v = pick_branch_var t in
              if v < 0 then Sat
              else begin
                t.n_decisions <- t.n_decisions + 1;
                Vec.push t.trail_lim (Vec.size t.trail);
                enqueue t (Lit.of_var v ~sign:t.polarity.(v)) None;
                loop ()
              end
        end
  in
  loop ()

(* Telemetry bridge: the solver's own counter fields stay the source of
   truth (O(1) plain-int increments on the hot path); after each [solve]
   the deltas are published to the metrics registry, and the per-solve
   conflict count feeds a histogram.  One registry branch per solve, not
   per propagation. *)
module Metrics = Separ_obs.Metrics

let m_solves = Metrics.counter "sat.solves"
let m_unknowns = Metrics.counter "sat.unknowns"
let m_conflicts = Metrics.counter "sat.conflicts"
let m_decisions = Metrics.counter "sat.decisions"
let m_propagations = Metrics.counter "sat.propagations"
let m_restarts = Metrics.counter "sat.restarts"
let m_learnts_deleted = Metrics.counter "sat.learnts_deleted"
let m_lits_minimized = Metrics.counter "sat.lits_minimized"
let m_db_reductions = Metrics.counter "sat.db_reductions"

let m_conflicts_per_solve =
  Metrics.histogram
    ~buckets:[| 0.; 1.; 10.; 100.; 1000.; 10_000.; 100_000. |]
    "sat.conflicts_per_solve"

let solve ?(assumptions = []) ?(budget = no_budget) t =
  t.model_valid <- false;
  t.conflict_core <- [||];
  if not t.ok then begin
    (* trivially unsat at clause-add time: the search never runs, but the
       call still counts as a solve *)
    if Metrics.is_enabled () then begin
      Metrics.incr m_solves;
      Metrics.observe m_conflicts_per_solve 0.0
    end;
    Unsat
  end
  else if
    (* A budget exhausted before the search even starts: answer [Unknown]
       immediately, so a caller passing its (possibly non-positive)
       remaining session budget degrades deterministically. *)
    (match budget.b_max_conflicts with Some c -> c <= 0 | None -> false)
    || (match budget.b_max_time_ms with Some ms -> ms <= 0.0 | None -> false)
  then begin
    if Metrics.is_enabled () then begin
      Metrics.incr m_solves;
      Metrics.incr m_unknowns;
      Metrics.observe m_conflicts_per_solve 0.0
    end;
    Unknown
  end
  else begin
    if t.learnt_limit = 0 then
      t.learnt_limit <- max 100 (Vec.size t.clauses / 3);
    List.iter
      (fun i ->
        let v = abs i in
        if v = 0 then invalid_arg "Solver.solve: zero assumption literal";
        while v > t.nvars do
          ignore (new_var t)
        done)
      assumptions;
    let ext_assumptions = assumptions in
    let assumptions = List.map Lit.of_int assumptions in
    cancel_until t 0;
    let conflicts0 = t.n_conflicts
    and decisions0 = t.n_decisions
    and propagations0 = t.n_propagations
    and restarts0 = t.n_restarts
    and deleted0 = t.n_learnts_deleted
    and minimized0 = t.n_lits_minimized
    and reductions0 = t.n_reduce_db in
    let publish () =
      if Metrics.is_enabled () then begin
        Metrics.incr m_solves;
        Metrics.add m_conflicts (t.n_conflicts - conflicts0);
        Metrics.add m_decisions (t.n_decisions - decisions0);
        Metrics.add m_propagations (t.n_propagations - propagations0);
        Metrics.add m_restarts (t.n_restarts - restarts0);
        Metrics.add m_learnts_deleted (t.n_learnts_deleted - deleted0);
        Metrics.add m_lits_minimized (t.n_lits_minimized - minimized0);
        Metrics.add m_db_reductions (t.n_reduce_db - reductions0);
        Metrics.observe m_conflicts_per_solve
          (float_of_int (t.n_conflicts - conflicts0))
      end
    in
    let conflict_cap =
      match budget.b_max_conflicts with
      | Some c -> t.n_conflicts + c
      | None -> max_int
    in
    let deadline =
      match budget.b_max_time_ms with
      | Some ms -> Unix.gettimeofday () +. (ms /. 1000.0)
      | None -> infinity
    in
    let result =
      match search t assumptions ~conflict_cap ~deadline with
      | Sat ->
          t.model_valid <- true;
          Sat
      | Unsat -> Unsat
      | Unknown -> Unknown (* search never returns this; for exhaustiveness *)
      | exception Unsat_exc ->
          cancel_until t 0;
          (* Normalize the failed-assumption core: restrict the caller's
             assumption list (preserving its order, without duplicates) to
             the literals blamed by the final-conflict analysis. *)
          let core = Array.to_list t.conflict_core in
          let rec restrict kept = function
            | [] -> List.rev kept
            | a :: rest ->
                if List.mem a kept || not (List.mem (Lit.of_int a) core)
                then restrict kept rest
                else restrict (a :: kept) rest
          in
          t.conflict_core <-
            Array.of_list
              (List.map Lit.of_int (restrict [] ext_assumptions));
          Unsat
      | exception Budget_exc ->
          (* Budget exhausted mid-search: drop the partial assignment but
             keep everything learnt, so a later call resumes cheaper. *)
          cancel_until t 0;
          if Metrics.is_enabled () then Metrics.incr m_unknowns;
          Unknown
    in
    publish ();
    result
  end

(* Model access: valid only while the last operation was a [solve] that
   returned [Sat]; adding a clause (which backtracks to the root level)
   or an Unsat solve invalidates the assignment. *)
let value t v =
  if v < 1 || v > t.nvars then invalid_arg "Solver.value";
  if not t.model_valid then
    invalid_arg "Solver.value: no model (last operation was not a Sat solve)";
  match t.assigns.(v - 1) with
  | LTrue -> true
  | LFalse -> false
  | LUndef -> false (* unconstrained variables default to false *)

let model t =
  if not t.model_valid then
    invalid_arg "Solver.model: no model (last operation was not a Sat solve)";
  Array.init t.nvars (fun i -> value t (i + 1))

(* The failed-assumption set of the most recent [solve]: the subset of
   that call's assumption literals (in the order given, deduplicated)
   whose conjunction the solver refuted.  Empty unless the call returned
   [Unsat] under assumptions; empty on an [Unsat] caused by the clauses
   alone. *)
let failed_assumptions t =
  List.map Lit.to_int (Array.to_list t.conflict_core)

type stats_record = {
  s_vars : int;
  s_clauses : int;
  s_learnts : int;
  s_peak_learnts : int;
  s_conflicts : int;
  s_decisions : int;
  s_propagations : int;
  s_restarts : int;
  s_db_reductions : int;
  s_learnts_deleted : int;
  s_lits_minimized : int;
  s_act_live : int;
  s_act_retired : int;
}

let stats_record t =
  let live, retired = activation_counts t in
  {
    s_vars = t.nvars;
    s_clauses = Vec.size t.clauses;
    s_learnts = Vec.size t.learnts;
    s_peak_learnts = t.peak_learnts;
    s_conflicts = t.n_conflicts;
    s_decisions = t.n_decisions;
    s_propagations = t.n_propagations;
    s_restarts = t.n_restarts;
    s_db_reductions = t.n_reduce_db;
    s_learnts_deleted = t.n_learnts_deleted;
    s_lits_minimized = t.n_lits_minimized;
    s_act_live = live;
    s_act_retired = retired;
  }

let empty_stats =
  {
    s_vars = 0;
    s_clauses = 0;
    s_learnts = 0;
    s_peak_learnts = 0;
    s_conflicts = 0;
    s_decisions = 0;
    s_propagations = 0;
    s_restarts = 0;
    s_db_reductions = 0;
    s_learnts_deleted = 0;
    s_lits_minimized = 0;
    s_act_live = 0;
    s_act_retired = 0;
  }

(* Aggregate statistics across solvers: counters add, high-water marks
   take the maximum. *)
let sum_stats a b =
  {
    s_vars = a.s_vars + b.s_vars;
    s_clauses = a.s_clauses + b.s_clauses;
    s_learnts = a.s_learnts + b.s_learnts;
    s_peak_learnts = max a.s_peak_learnts b.s_peak_learnts;
    s_conflicts = a.s_conflicts + b.s_conflicts;
    s_decisions = a.s_decisions + b.s_decisions;
    s_propagations = a.s_propagations + b.s_propagations;
    s_restarts = a.s_restarts + b.s_restarts;
    s_db_reductions = a.s_db_reductions + b.s_db_reductions;
    s_learnts_deleted = a.s_learnts_deleted + b.s_learnts_deleted;
    s_lits_minimized = a.s_lits_minimized + b.s_lits_minimized;
    s_act_live = a.s_act_live + b.s_act_live;
    s_act_retired = a.s_act_retired + b.s_act_retired;
  }

let stats t =
  let s = stats_record t in
  Printf.sprintf
    "vars=%d clauses=%d learnts=%d (peak %d) conflicts=%d decisions=%d \
     props=%d restarts=%d reduce_db=%d deleted=%d minimized_lits=%d \
     act_vars=%d+%d"
    s.s_vars s.s_clauses s.s_learnts s.s_peak_learnts s.s_conflicts
    s.s_decisions s.s_propagations s.s_restarts s.s_db_reductions
    s.s_learnts_deleted s.s_lits_minimized s.s_act_live s.s_act_retired
