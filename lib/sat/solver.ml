(* A CDCL SAT solver: two-watched-literal propagation over a flat clause
   arena, first-UIP conflict analysis with clause learning and
   learnt-clause minimization, VSIDS-style variable activities with a
   binary heap, clause activities with periodic learnt-database
   reduction, phase saving, and Luby-sequence restarts.  Incremental use
   is supported through solve-time assumptions; clauses may be added
   between calls.

   Representation: clause literals live in one packed int array
   ({!Arena}); a clause is an integer offset ("cref").  Watcher lists
   are flat int vectors packing [(cref lsl 31) lor blocker], where the
   blocker is some literal of the clause whose truth lets propagation
   skip the clause without touching the arena.  Binary clauses never
   enter the arena: each literal carries a dedicated list of
   [(other lsl 1) lor learnt] entries and is propagated inline.
   Learnt-clause deletion is lazy (a header mark, filtered out of watch
   lists on sight); the arena is compacted once a quarter of it is dead.

   An optional preprocessing pass ({!preprocess}) runs SatELite-style
   subsumption / strengthening / bounded variable elimination over the
   problem clauses; eliminated variables are reconstructed from the
   elimination stack whenever a model is read, so {!value}/{!model} are
   oblivious to it.  Frozen variables (assumptions, activation literals,
   anything the caller will name later) are never eliminated.

   The external interface uses DIMACS conventions: variables are positive
   integers obtained from [new_var], a literal is [+v] or [-v]. *)

type lbool = LTrue | LFalse | LUndef

(* Reason tags, per assigned variable: [-1] none (decision / assumption /
   level-0 fact), even [c lsl 1] a long-clause antecedent at cref [c],
   odd [(u lsl 1) lor 1] a binary antecedent whose other literal is [u]. *)
let no_reason = -1

let reason_of_cref c = c lsl 1
let reason_of_bin other = (other lsl 1) lor 1

(* Packed watcher for long clauses: [(cref lsl 31) lor blocker].
   Propagation unpacks inline with [lsr 31] / [land 0x7FFFFFFF]. *)
let watcher cref blocker = (cref lsl 31) lor blocker

type t = {
  mutable arena : Arena.t;                 (* all long-clause literals *)
  clauses : int Vec.t;                     (* problem clause crefs *)
  learnts : int Vec.t;                     (* learnt clause crefs (len >= 3) *)
  mutable watches : int Vec.t array;       (* long-clause watchers per literal *)
  mutable bin_watches : int Vec.t array;   (* binary-clause lists per literal *)
  mutable n_bin_problem : int;             (* binary problem clauses *)
  mutable n_bin_learnt : int;              (* binary learnt clauses *)
  mutable cla_act : float array;           (* learnt-clause activities, by slot *)
  mutable cla_act_n : int;                 (* live activity slots *)
  mutable assigns : lbool array;           (* per var *)
  mutable polarity : bool array;           (* saved phase per var *)
  mutable level : int array;               (* decision level per var *)
  mutable reason : int array;              (* antecedent tag per var *)
  mutable activity : float array;          (* VSIDS activity per var *)
  mutable seen : bool array;               (* scratch for analyze *)
  mutable eliminated : bool array;         (* vars removed by preprocessing *)
  mutable recon : bool array;              (* reconstructed values for them *)
  mutable elim_stack : (int * int array list) list; (* newest first *)
  trail : int Vec.t;                       (* assigned literals, in order *)
  trail_lim : int Vec.t;                   (* decision-level boundaries *)
  mutable qhead : int;                     (* propagation queue head *)
  mutable nvars : int;
  heap : Heap.t;                           (* decision heap, max-activity *)
  mutable var_inc : float;                 (* variable activity increment *)
  mutable cla_inc : float;                 (* clause activity increment *)
  mutable learnt_limit : int;              (* learnt-db capacity; 0 = unset *)
  mutable ok : bool;                       (* false once trivially unsat *)
  mutable model_valid : bool;              (* last operation was a Sat solve *)
  mutable act_live : int;                  (* live activation var, 0 = none *)
  mutable n_act_retired : int;             (* retired activation vars *)
  mutable conflict_core : int array;       (* failed assumptions, internal lits *)
  mutable deadline : float;                (* absolute wall clock; infinity = none *)
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
  mutable n_reduce_db : int;               (* learnt-db reductions performed *)
  mutable n_learnts_deleted : int;         (* clauses dropped by reduce_db *)
  mutable n_lits_minimized : int;          (* literals removed by ccmin *)
  mutable peak_learnts : int;              (* high-water mark of the db *)
  mutable n_elim_vars : int;               (* vars eliminated by preprocessing *)
  mutable n_subsumed : int;                (* clauses removed by subsumption *)
  mutable n_strengthened : int;            (* clauses shrunk by self-subsumption *)
}

let create () =
  {
    arena = Arena.create ();
    clauses = Vec.create 0;
    learnts = Vec.create 0;
    watches = [||];
    bin_watches = [||];
    n_bin_problem = 0;
    n_bin_learnt = 0;
    cla_act = [||];
    cla_act_n = 0;
    assigns = [||];
    polarity = [||];
    level = [||];
    reason = [||];
    activity = [||];
    seen = [||];
    eliminated = [||];
    recon = [||];
    elim_stack = [];
    trail = Vec.create 0;
    trail_lim = Vec.create 0;
    qhead = 0;
    nvars = 0;
    heap = Heap.create ();
    var_inc = 1.0;
    cla_inc = 1.0;
    learnt_limit = 0;
    ok = true;
    model_valid = false;
    act_live = 0;
    n_act_retired = 0;
    conflict_core = [||];
    deadline = infinity;
    n_conflicts = 0;
    n_decisions = 0;
    n_propagations = 0;
    n_restarts = 0;
    n_reduce_db = 0;
    n_learnts_deleted = 0;
    n_lits_minimized = 0;
    peak_learnts = 0;
    n_elim_vars = 0;
    n_subsumed = 0;
    n_strengthened = 0;
  }

let n_vars t = t.nvars
let n_clauses t = Vec.size t.clauses + t.n_bin_problem
let n_learnt_clauses t = Vec.size t.learnts + t.n_bin_learnt
let n_conflicts t = t.n_conflicts

let grow_arrays t n =
  let old = Array.length t.assigns in
  if n > old then begin
    let cap = max n (max 16 (2 * old)) in
    let extend a fill =
      let a' = Array.make cap fill in
      Array.blit a 0 a' 0 old;
      a'
    in
    t.assigns <- extend t.assigns LUndef;
    t.polarity <- extend t.polarity false;
    t.level <- extend t.level (-1);
    t.reason <- extend t.reason no_reason;
    t.activity <- extend t.activity 0.0;
    t.seen <- extend t.seen false;
    t.eliminated <- extend t.eliminated false;
    t.recon <- extend t.recon false;
    let extend_watch w =
      Array.init (2 * cap) (fun i ->
          if i < Array.length w then w.(i) else Vec.create ~capacity:4 0)
    in
    t.watches <- extend_watch t.watches;
    t.bin_watches <- extend_watch t.bin_watches
  end

(* Allocates a fresh variable and returns its external (1-based) index. *)
let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  grow_arrays t t.nvars;
  Heap.insert t.heap v t.activity.(v);
  v + 1

let value_lit t l =
  match t.assigns.(Lit.var l) with
  | LUndef -> LUndef
  | LTrue -> if Lit.sign l then LTrue else LFalse
  | LFalse -> if Lit.sign l then LFalse else LTrue

let decision_level t = Vec.size t.trail_lim

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100;
    Heap.rescale t.heap 1e-100
  end;
  if Heap.mem t.heap v then Heap.update t.heap v t.activity.(v)

let var_decay t = t.var_inc <- t.var_inc /. 0.95

let cla_bump t c =
  let s = Arena.act_slot t.arena c in
  t.cla_act.(s) <- t.cla_act.(s) +. t.cla_inc;
  if t.cla_act.(s) > 1e20 then begin
    for i = 0 to t.cla_act_n - 1 do
      t.cla_act.(i) <- t.cla_act.(i) *. 1e-20
    done;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let cla_decay t = t.cla_inc <- t.cla_inc /. 0.999

(* Enqueue literal [l] as true, with its antecedent tag. *)
let enqueue t l reason =
  let v = Lit.var l in
  assert (t.assigns.(v) = LUndef);
  t.assigns.(v) <- (if Lit.sign l then LTrue else LFalse);
  t.polarity.(v) <- Lit.sign l;
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  Vec.push t.trail l

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    for i = Vec.size t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = Lit.var l in
      t.assigns.(v) <- LUndef;
      t.reason.(v) <- no_reason;
      if not (Heap.mem t.heap v) then Heap.insert t.heap v t.activity.(v)
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim lvl;
    t.qhead <- Vec.size t.trail
  end

(* Attach a long clause (>= 3 literals) to the watch lists of its first
   two literals; the initial blocker is the other watched literal. *)
let attach t c =
  let l0 = Arena.lit t.arena c 0 and l1 = Arena.lit t.arena c 1 in
  Vec.push t.watches.(Lit.negate l0) (watcher c l1);
  Vec.push t.watches.(Lit.negate l1) (watcher c l0)

(* Record a binary clause [(a, b)] inline in the binary watch lists: the
   entry under literal [l] describes the clause [(negate l, other)]. *)
let add_binary t ~learnt a b =
  let tag = if learnt then 1 else 0 in
  Vec.push t.bin_watches.(Lit.negate a) ((b lsl 1) lor tag);
  Vec.push t.bin_watches.(Lit.negate b) ((a lsl 1) lor tag);
  if learnt then t.n_bin_learnt <- t.n_bin_learnt + 1
  else t.n_bin_problem <- t.n_bin_problem + 1

(* A clause is locked while it is the antecedent of its asserting literal
   (position 0 holds the implied literal for as long as it is assigned:
   propagation only ever swaps the newly-false literal into position 1). *)
let locked t c = t.reason.(Lit.var (Arena.lit t.arena c 0)) = reason_of_cref c

let ensure_act_slot t =
  if t.cla_act_n >= Array.length t.cla_act then begin
    let cap = max 16 (2 * Array.length t.cla_act) in
    let a = Array.make cap 0.0 in
    Array.blit t.cla_act 0 a 0 t.cla_act_n;
    t.cla_act <- a
  end;
  let s = t.cla_act_n in
  t.cla_act_n <- s + 1;
  t.cla_act.(s) <- 0.0;
  s

(* Record a freshly learnt clause (>= 2 literals) in the database and
   return the reason tag for its asserting literal [lits.(0)]. *)
let new_learnt t lits =
  let r =
    if Array.length lits = 2 then begin
      add_binary t ~learnt:true lits.(0) lits.(1);
      reason_of_bin lits.(1)
    end
    else begin
      let c = Arena.alloc t.arena ~learnt:true ~act:(ensure_act_slot t) lits in
      Vec.push t.learnts c;
      attach t c;
      cla_bump t c;
      reason_of_cref c
    end
  in
  if n_learnt_clauses t > t.peak_learnts then
    t.peak_learnts <- n_learnt_clauses t;
  r

(* Rebuild the long-clause watch lists from scratch (after arena
   compaction; only sound while the propagation queue is empty, since
   watches reset to the first two literals of each clause). *)
let rebuild_watches t =
  for l = 0 to (2 * t.nvars) - 1 do
    Vec.clear t.watches.(l)
  done;
  Vec.iter (fun c -> attach t c) t.clauses;
  Vec.iter (fun c -> attach t c) t.learnts

(* Copy live clauses into a fresh arena and rewrite every cref: the
   clause vectors, and the long-clause reasons of trail literals (locked
   clauses are live by definition, so their forwarding address exists). *)
let compact_arena t =
  let src = t.arena in
  let dst =
    Arena.create ~capacity:(src.Arena.size - src.Arena.wasted + 16) ()
  in
  let remap vec =
    for i = 0 to Vec.size vec - 1 do
      Vec.set vec i (Arena.move ~src ~dst (Vec.get vec i))
    done
  in
  remap t.clauses;
  remap t.learnts;
  Vec.iter
    (fun l ->
      let v = Lit.var l in
      let r = t.reason.(v) in
      if r >= 0 && r land 1 = 0 then
        t.reason.(v) <- reason_of_cref (Arena.forward src (r asr 1)))
    t.trail;
  t.arena <- dst;
  rebuild_watches t

(* Delete the colder half of the learnt database, ordered by clause
   activity.  Locked clauses (current antecedents) are never deleted,
   and binary learnts live outside the database entirely (cheap to keep,
   expensive to re-learn).  Deletion is a header mark; watch lists are
   purged lazily by propagation, and the arena is compacted once a
   quarter of its words are dead. *)
let reduce_db t =
  t.n_reduce_db <- t.n_reduce_db + 1;
  let n = Vec.size t.learnts in
  let arr = Array.init n (Vec.get t.learnts) in
  Array.sort
    (fun a b ->
      compare
        t.cla_act.(Arena.act_slot t.arena a)
        t.cla_act.(Arena.act_slot t.arena b))
    arr;
  Vec.clear t.learnts;
  Array.iteri
    (fun i c ->
      if locked t c || i >= n / 2 then Vec.push t.learnts c
      else begin
        Arena.delete t.arena c;
        t.n_learnts_deleted <- t.n_learnts_deleted + 1
      end)
    arr;
  (* Re-pack activity slots so the slot array tracks the live set. *)
  let m = Vec.size t.learnts in
  let acts = Array.make (max 1 m) 0.0 in
  for i = 0 to m - 1 do
    let c = Vec.get t.learnts i in
    acts.(i) <- t.cla_act.(Arena.act_slot t.arena c);
    Arena.set_act_slot t.arena c i
  done;
  Array.blit acts 0 t.cla_act 0 m;
  t.cla_act_n <- m;
  if Arena.fragmentation t.arena > 0.25 then compact_arena t

(* The outcome of a propagation round. *)
type confl = CNone | CRef of int | CBin of int * int

exception Budget_exc

(* Unit propagation.  Long clauses behind their blocker literals first
   (matching the old kernel's attach-order scan, which the learnt-clause
   trajectory is tuned against), then binary clauses as a flat scan with
   no arena access.  The wall-clock deadline is polled every 256
   propagated literals (only when one is set) so heavy conflict-free
   propagation cannot overrun a time budget unobserved.

   This is the solver's hottest loop: it reads vectors through their
   fields directly (skipping the [Vec.get] bounds asserts) and values
   literals inline.  [lit_val] returns 1 true / -1 false / 0 undef. *)
let propagate t =
  let result = ref CNone in
  let assigns = t.assigns in
  let lit_val l =
    match Array.unsafe_get assigns (l lsr 1) with
    | LUndef -> 0
    | LTrue -> if l land 1 = 0 then 1 else -1
    | LFalse -> if l land 1 = 0 then -1 else 1
  in
  (try
     while t.qhead < t.trail.Vec.size do
       let l = Array.unsafe_get t.trail.Vec.data t.qhead in
       t.qhead <- t.qhead + 1;
       t.n_propagations <- t.n_propagations + 1;
       if
         t.deadline < infinity
         && t.n_propagations land 255 = 0
         && Unix.gettimeofday () > t.deadline
       then raise Budget_exc;
       let nl = Lit.negate l in
       (* Long clauses. *)
       let ws = Array.unsafe_get t.watches l in
       let data = t.arena.Arena.data in
       let i = ref 0 in
       while !i < ws.Vec.size do
         let w = Array.unsafe_get ws.Vec.data !i in
         if lit_val (w land 0x7FFFFFFF) = 1 then incr i
         else begin
           let c = w lsr 31 in
           let hd = Array.unsafe_get data c in
           if hd land 2 <> 0 then
             (* deleted by reduce_db: lazily drop the watcher *)
             Vec.swap_remove ws !i
           else begin
             let base = c + 2 in
             (* Ensure the false literal is at position 1. *)
             if Array.unsafe_get data base = nl then begin
               Array.unsafe_set data base (Array.unsafe_get data (base + 1));
               Array.unsafe_set data (base + 1) nl
             end;
             let first = Array.unsafe_get data base in
             if first <> w land 0x7FFFFFFF && lit_val first = 1 then begin
               (* satisfied: remember the satisfying literal as blocker *)
               Array.unsafe_set ws.Vec.data !i (watcher c first);
               incr i
             end
             else begin
               (* Look for a new literal to watch. *)
               let len = hd lsr 2 in
               let k = ref 2 in
               while
                 !k < len && lit_val (Array.unsafe_get data (base + !k)) = -1
               do
                 incr k
               done;
               if !k < len then begin
                 let nk = Array.unsafe_get data (base + !k) in
                 Array.unsafe_set data (base + 1) nk;
                 Array.unsafe_set data (base + !k) nl;
                 Vec.push t.watches.(Lit.negate nk) (watcher c first);
                 Vec.swap_remove ws !i
               end
               else if lit_val first = -1 then begin
                 t.qhead <- t.trail.Vec.size;
                 result := CRef c;
                 raise Exit
               end
               else begin
                 enqueue t first (reason_of_cref c);
                 incr i
               end
             end
           end
         end
       done;
       (* Binary clauses (negate l, other): inline propagation. *)
       let bw = Array.unsafe_get t.bin_watches l in
       let bd = bw.Vec.data in
       for bi = 0 to bw.Vec.size - 1 do
         let other = Array.unsafe_get bd bi lsr 1 in
         match lit_val other with
         | 1 -> ()
         | 0 -> enqueue t other (reason_of_bin nl)
         | _ ->
             t.qhead <- t.trail.Vec.size;
             result := CBin (other, nl);
             raise Exit
       done
     done
   with Exit -> ());
  !result

(* First-UIP conflict analysis.  Returns the learnt clause (with the
   asserting literal first) and the backtrack level.  Before the clause is
   returned it is shortened by self-subsumption (MiniSat's local "ccmin"):
   a literal whose antecedent is fully covered by the remaining clause and
   level-0 facts resolves away without weakening the clause. *)
let analyze t confl =
  let learnt = Vec.create 0 in
  Vec.push learnt 0 (* placeholder for asserting literal *);
  let path = ref 0 in
  let p = ref (-1) in
  let visit q =
    let v = Lit.var q in
    if (not t.seen.(v)) && t.level.(v) > 0 then begin
      t.seen.(v) <- true;
      var_bump t v;
      if t.level.(v) >= decision_level t then incr path
      else Vec.push learnt q
    end
  in
  (match confl with
  | CBin (l0, l1) ->
      visit l0;
      visit l1
  | CRef c ->
      if Arena.is_learnt t.arena c then cla_bump t c;
      Arena.iter_lits visit t.arena c
  | CNone -> assert false);
  let idx = ref (Vec.size t.trail - 1) in
  let continue_ = ref true in
  while !continue_ do
    (* Select next literal on the trail to expand. *)
    let rec next i =
      if t.seen.(Lit.var (Vec.get t.trail i)) then i else next (i - 1)
    in
    idx := next !idx;
    let lt = Vec.get t.trail !idx in
    decr idx;
    p := lt;
    t.seen.(Lit.var lt) <- false;
    decr path;
    if !path <= 0 then continue_ := false
    else begin
      let r = t.reason.(Lit.var lt) in
      assert (r >= 0);
      if r land 1 = 1 then visit (r asr 1)
      else begin
        let c = r asr 1 in
        if Arena.is_learnt t.arena c then cla_bump t c;
        let len = Arena.len t.arena c in
        for j = 1 to len - 1 do
          visit (Arena.lit t.arena c j)
        done
      end
    end
  done;
  Vec.set learnt 0 (Lit.negate !p);
  (* Self-subsumption pass: at this point [seen] holds exactly the vars of
     learnt.(1..); a literal is redundant iff every other literal of its
     antecedent is already in the clause or false at level 0. *)
  let covered q = t.seen.(Lit.var q) || t.level.(Lit.var q) = 0 in
  let redundant q =
    let r = t.reason.(Lit.var q) in
    if r < 0 then false
    else if r land 1 = 1 then covered (r asr 1)
    else begin
      let c = r asr 1 in
      let len = Arena.len t.arena c in
      let ok = ref true in
      for k = 1 to len - 1 do
        if not (covered (Arena.lit t.arena c k)) then ok := false
      done;
      !ok
    end
  in
  let keep = Vec.create 0 in
  Vec.push keep (Vec.get learnt 0);
  for i = 1 to Vec.size learnt - 1 do
    let q = Vec.get learnt i in
    if redundant q then t.n_lits_minimized <- t.n_lits_minimized + 1
    else Vec.push keep q
  done;
  (* Compute backtrack level: the max level among the other literals. *)
  let blevel = ref 0 in
  let swap_pos = ref 1 in
  for i = 1 to Vec.size keep - 1 do
    let lv = t.level.(Lit.var (Vec.get keep i)) in
    if lv > !blevel then begin
      blevel := lv;
      swap_pos := i
    end
  done;
  if Vec.size keep > 1 then begin
    let tmp = Vec.get keep 1 in
    Vec.set keep 1 (Vec.get keep !swap_pos);
    Vec.set keep !swap_pos tmp
  end;
  (* Clear seen flags, including vars of minimized-away literals. *)
  for i = 0 to Vec.size learnt - 1 do
    t.seen.(Lit.var (Vec.get learnt i)) <- false
  done;
  (Array.init (Vec.size keep) (Vec.get keep), !blevel)

(* Final-conflict analysis over assumptions (MiniSat's analyzeFinal).
   Given literals false under the current assignment, walk the trail from
   the top down to the first decision, expanding reasons; reason-less
   trail literals above level 0 are assumption decisions (search only
   calls this while the trail holds assumption levels exclusively), and
   the set of those reached is the subset of failed assumptions — an
   unsat core over the assumption set.  Returns internal literals. *)
let analyze_final_from t false_lits =
  if decision_level t = 0 then []
  else begin
    let marked = Vec.create 0 in
    let mark q =
      let v = Lit.var q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        t.seen.(v) <- true;
        Vec.push marked v
      end
    in
    List.iter mark false_lits;
    let out = ref [] in
    for i = Vec.size t.trail - 1 downto Vec.get t.trail_lim 0 do
      let l = Vec.get t.trail i in
      if t.seen.(Lit.var l) then begin
        let r = t.reason.(Lit.var l) in
        if r < 0 then out := l :: !out (* an assumption decision *)
        else if r land 1 = 1 then mark (r asr 1)
        else Arena.iter_lits mark t.arena (r asr 1)
      end
    done;
    Vec.iter (fun v -> t.seen.(v) <- false) marked;
    !out
  end

(* Add a clause given in internal literal encoding.  Performs top-level
   simplification: removes duplicate/false literals, detects tautologies. *)
let add_clause_internal t (a : int array) =
  if t.ok then begin
    let n = Array.length a in
    (* In-place insertion sort: problem clauses are short (the translate
       layer emits 2-3 literal Tseitin definitions by the thousand), so
       this beats a polymorphic sort and allocates nothing. *)
    for i = 1 to n - 1 do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done;
    (* One pass over the sorted literals: drop duplicates (adjacent),
       detect tautologies ([l] and [negate l] differ only in bit 0, so
       they are adjacent too), drop literals false at level 0 and detect
       clauses already satisfied there.  Survivors are compacted into the
       prefix [a.(0 .. !w - 1)]. *)
    let w = ref 0 and prev = ref (-1) in
    let taut = ref false and satisfied = ref false in
    let i = ref 0 in
    while (not !taut) && (not !satisfied) && !i < n do
      let l = a.(!i) in
      if l <> !prev then begin
        if l lxor !prev = 1 then taut := true
        else begin
          (match value_lit t l with
          | LTrue when t.level.(Lit.var l) = 0 -> satisfied := true
          | LFalse when t.level.(Lit.var l) = 0 -> ()
          | _ ->
              a.(!w) <- l;
              incr w);
          prev := l
        end
      end;
      incr i
    done;
    if not (!taut || !satisfied) then
      match !w with
      | 0 -> t.ok <- false
      | 1 ->
          let l = a.(0) in
          if value_lit t l = LFalse then t.ok <- false
          else if value_lit t l = LUndef then begin
            assert (decision_level t = 0);
            enqueue t l no_reason;
            if propagate t <> CNone then t.ok <- false
          end
      | 2 -> add_binary t ~learnt:false a.(0) a.(1)
      | w ->
          let lits = if w = n then a else Array.sub a 0 w in
          let c = Arena.alloc t.arena ~learnt:false ~act:0 lits in
          Vec.push t.clauses c;
          attach t c
  end

(* Public clause interface: DIMACS-style signed integers.  Adding a clause
   invalidates the current model: the solver backtracks to the root level
   so the clause can be simplified against level-0 facts only.  Model
   values must be read before clauses are added.  [add_clause_arr] takes
   ownership of its argument (converted to the internal encoding and
   sorted in place) — it exists for the Tseitin emitter, which adds
   thousands of 2-3 literal definitions on the translate hot path. *)
let add_clause_arr t a =
  t.model_valid <- false;
  cancel_until t 0;
  for i = 0 to Array.length a - 1 do
    let s = a.(i) in
    let v = abs s in
    if v = 0 then invalid_arg "Solver.add_clause: zero literal";
    while v > t.nvars do
      ignore (new_var t)
    done;
    if t.eliminated.(v - 1) then
      invalid_arg "Solver.add_clause: variable eliminated by preprocessing";
    a.(i) <- Lit.of_int s
  done;
  add_clause_internal t a

let add_clause t lits = add_clause_arr t (Array.of_list lits)

(* Activation-literal support for assumption-guarded temporary clauses
   (used by {!Models.minimize}).  At most one activation variable is live;
   retiring it adds the unit clause [-act], permanently satisfying every
   clause it guards, and the next acquisition allocates a fresh one. *)
let activation_var t =
  if t.act_live = 0 then t.act_live <- new_var t;
  t.act_live

let retire_activation t =
  if t.act_live <> 0 then begin
    let act = t.act_live in
    t.act_live <- 0;
    t.n_act_retired <- t.n_act_retired + 1;
    add_clause t [ -act ]
  end

let activation_counts t =
  ((if t.act_live = 0 then 0 else 1), t.n_act_retired)

(* --- preprocessing ------------------------------------------------------- *)

(* SatELite-style preprocessing over the problem clauses: subsumption,
   self-subsuming resolution and bounded variable elimination, then a
   rebuild of the kernel state around the surviving CNF.  [frozen] lists
   external variables that must keep their meaning (anything the caller
   will later assume, read, or add clauses over).  The live activation
   variable and all level-0 facts are frozen implicitly.  Learnt clauses
   are dropped (this runs at the translate -> CNF handoff, before any
   search has learnt anything worth keeping).  Eliminated variables are
   reconstructed transparently by {!value}/{!model}. *)
let preprocess ?(frozen = []) t =
  t.model_valid <- false;
  cancel_until t 0;
  if t.ok && propagate t <> CNone then t.ok <- false;
  if t.ok && t.nvars > 0 then begin
    let frozen_arr = Array.make t.nvars false in
    List.iter
      (fun v ->
        if v >= 1 && v <= t.nvars then frozen_arr.(v - 1) <- true)
      frozen;
    if t.act_live <> 0 then frozen_arr.(t.act_live - 1) <- true;
    (* Gather the problem CNF: level-0 facts as units, binaries (each
       stored twice, gathered once), and live long clauses. *)
    let cls = ref [] in
    Vec.iter (fun l -> cls := [| l |] :: !cls) t.trail;
    for l = 0 to (2 * t.nvars) - 1 do
      let bw = t.bin_watches.(l) in
      for i = 0 to Vec.size bw - 1 do
        let e = Vec.get bw i in
        if e land 1 = 0 then begin
          let this = Lit.negate l and other = e lsr 1 in
          if this < other then cls := [| this; other |] :: !cls
        end
      done
    done;
    Vec.iter
      (fun c ->
        if not (Arena.is_deleted t.arena c) then
          cls := Arena.lits_array t.arena c :: !cls)
      t.clauses;
    let res = Simplify.run ~frozen:frozen_arr ~n_vars:t.nvars !cls in
    t.n_elim_vars <- t.n_elim_vars + res.Simplify.r_stats.Simplify.sp_eliminated;
    t.n_subsumed <- t.n_subsumed + res.Simplify.r_stats.Simplify.sp_subsumed;
    t.n_strengthened <-
      t.n_strengthened + res.Simplify.r_stats.Simplify.sp_strengthened;
    if res.Simplify.r_unsat then t.ok <- false
    else begin
      (* Rebuild the kernel around the simplified CNF.  Level-0 trail
         literals stay assigned, but their antecedents pointed into the
         old arena: clear them (facts need no reason). *)
      Vec.iter
        (fun l -> t.reason.(Lit.var l) <- no_reason)
        t.trail;
      t.arena <- Arena.create ();
      Vec.clear t.clauses;
      Vec.clear t.learnts;
      t.n_bin_problem <- 0;
      t.n_bin_learnt <- 0;
      t.cla_act_n <- 0;
      for l = 0 to (2 * t.nvars) - 1 do
        Vec.clear t.watches.(l);
        Vec.clear t.bin_watches.(l)
      done;
      for v = 0 to t.nvars - 1 do
        if res.Simplify.r_eliminated.(v) then t.eliminated.(v) <- true
      done;
      t.elim_stack <- List.rev_append res.Simplify.r_stack t.elim_stack;
      (* [add_clause_internal] sorts and compacts its argument in place;
         the result clauses may be aliased by the reconstruction stack,
         so hand it a copy. *)
      List.iter
        (fun c -> add_clause_internal t (Array.copy c))
        res.Simplify.r_clauses
    end
  end

let simp_stats t = (t.n_elim_vars, t.n_subsumed, t.n_strengthened)

(* Extend the current (surviving-variable) assignment over the
   elimination stack, newest elimination first: each variable's saved
   clauses mention only never-eliminated or later-eliminated variables,
   so every literal consulted is already decided. *)
let reconstruct t =
  if t.elim_stack <> [] then begin
    let lit_true l =
      let v = Lit.var l in
      let b =
        if t.eliminated.(v) then t.recon.(v)
        else match t.assigns.(v) with LTrue -> true | _ -> false
      in
      if Lit.sign l then b else not b
    in
    Simplify.reconstruct ~stack_newest_first:t.elim_stack ~lit_true
      ~set:(fun v b -> t.recon.(v) <- b)
  end

(* Luby restart sequence, following the classical MiniSat formulation. *)
let luby y x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  y ** float_of_int !seq

let pick_branch_var t =
  let rec go () =
    if Heap.is_empty t.heap then -1
    else
      let v = Heap.remove_max t.heap in
      if t.assigns.(v) = LUndef && not t.eliminated.(v) then v else go ()
  in
  go ()

type result = Sat | Unsat | Unknown

(* A resource budget for one [solve] call.  [None] fields are unlimited;
   exhausting either bound makes the call return [Unknown] (the model, if
   any, is invalidated, but the solver remains usable: learnt clauses are
   kept, and a later unbudgeted call can finish the search). *)
type budget = {
  b_max_conflicts : int option;  (* conflicts this call may spend *)
  b_max_time_ms : float option;  (* wall-clock milliseconds for this call *)
}

let no_budget = { b_max_conflicts = None; b_max_time_ms = None }

exception Unsat_exc

let set_learnt_limit t n = t.learnt_limit <- max 1 n

(* The CDCL search loop.  [assumptions] are internal literals decided first,
   in order; a conflict forcing their negation yields Unsat.  [conflict_cap]
   is an absolute bound on [t.n_conflicts]; [t.deadline] an absolute
   wall-clock time.  Crossing either raises [Budget_exc].  The deadline is
   polled every 64 conflicts, every 16 decisions, and (inside [propagate])
   every 256 propagated literals — the decision and propagation polls keep
   a conflict-free but propagation-heavy search from overrunning its time
   budget, while staying off the per-watcher hot path. *)
let search t assumptions ~conflict_cap =
  let conflicts_budget = ref 100 in
  let restart_count = ref 0 in
  let rec loop () =
    match propagate t with
    | (CRef _ | CBin _) as confl ->
        t.n_conflicts <- t.n_conflicts + 1;
        if t.n_conflicts >= conflict_cap then raise Budget_exc;
        if
          t.deadline < infinity
          && t.n_conflicts land 63 = 0
          && Unix.gettimeofday () > t.deadline
        then raise Budget_exc;
        decr conflicts_budget;
        if decision_level t = 0 then begin
          (* Conflict with no decisions: the clauses alone are unsat, so
             no assumption is to blame — and the solver is unsat forever.
             Marking [ok] here matters: [propagate] drains its queue on
             conflict, so the falsified clause would never be revisited
             and a later solve could wrongly answer Sat. *)
          t.conflict_core <- [||];
          t.ok <- false;
          raise Unsat_exc
        end;
        (* A conflict at or below the assumption prefix means the
           assumptions themselves are inconsistent with the clauses. *)
        let learnt, blevel = analyze t confl in
        let n_assumed =
          (* number of assumption decisions currently on the trail *)
          min (decision_level t) (List.length assumptions)
        in
        cancel_until t blevel;
        let r =
          if Array.length learnt = 1 then no_reason else new_learnt t learnt
        in
        if blevel < n_assumed then begin
          (* The learnt clause is asserting below an assumption level:
             check whether it contradicts the assumptions. *)
          if value_lit t learnt.(0) = LFalse then begin
            t.conflict_core <-
              Array.of_list
                (analyze_final_from t (Array.to_list learnt));
            raise Unsat_exc
          end;
          if value_lit t learnt.(0) = LUndef then enqueue t learnt.(0) r
        end
        else enqueue t learnt.(0) r;
        var_decay t;
        cla_decay t;
        loop ()
    | CNone ->
        if !conflicts_budget <= 0 then begin
          (* Restart: keep assumptions, drop other decisions. *)
          t.n_restarts <- t.n_restarts + 1;
          incr restart_count;
          conflicts_budget :=
            int_of_float (100.0 *. luby 2.0 !restart_count);
          cancel_until t 0;
          loop ()
        end
        else begin
          (* Learnt-database housekeeping: when the database outgrows its
             (slowly growing) capacity, drop the cold half. *)
          if Vec.size t.learnts - Vec.size t.trail >= t.learnt_limit then begin
            reduce_db t;
            t.learnt_limit <- t.learnt_limit + (t.learnt_limit / 10) + 1
          end;
          (* Re-establish assumptions as the first decisions. *)
          let dl = decision_level t in
          let rec assume i = function
            | [] -> None
            | a :: rest ->
                if i < dl then assume (i + 1) rest
                else begin
                  match value_lit t a with
                  | LTrue ->
                      (* already implied: introduce an empty decision level
                         to keep the prefix aligned *)
                      Vec.push t.trail_lim (Vec.size t.trail);
                      assume (i + 1) rest
                  | LFalse ->
                      (* Assumption [a] already false: the failed set is
                         [a] plus whatever forced its negation. *)
                      t.conflict_core <-
                        Array.of_list (a :: analyze_final_from t [ a ]);
                      raise Unsat_exc
                  | LUndef ->
                      Vec.push t.trail_lim (Vec.size t.trail);
                      enqueue t a no_reason;
                      Some ()
                end
          in
          match assume 0 assumptions with
          | Some () -> loop ()
          | None ->
              let v = pick_branch_var t in
              if v < 0 then Sat
              else begin
                t.n_decisions <- t.n_decisions + 1;
                if
                  t.deadline < infinity
                  && t.n_decisions land 15 = 0
                  && Unix.gettimeofday () > t.deadline
                then raise Budget_exc;
                Vec.push t.trail_lim (Vec.size t.trail);
                enqueue t (Lit.of_var v ~sign:t.polarity.(v)) no_reason;
                loop ()
              end
        end
  in
  loop ()

(* Telemetry bridge: the solver's own counter fields stay the source of
   truth (O(1) plain-int increments on the hot path); after each [solve]
   the deltas are published to the metrics registry, and the per-solve
   conflict count feeds a histogram.  One registry branch per solve, not
   per propagation. *)
module Metrics = Separ_obs.Metrics

let m_solves = Metrics.counter "sat.solves"
let m_unknowns = Metrics.counter "sat.unknowns"
let m_conflicts = Metrics.counter "sat.conflicts"
let m_decisions = Metrics.counter "sat.decisions"
let m_propagations = Metrics.counter "sat.propagations"
let m_restarts = Metrics.counter "sat.restarts"
let m_learnts_deleted = Metrics.counter "sat.learnts_deleted"
let m_lits_minimized = Metrics.counter "sat.lits_minimized"
let m_db_reductions = Metrics.counter "sat.db_reductions"

let m_conflicts_per_solve =
  Metrics.histogram
    ~buckets:[| 0.; 1.; 10.; 100.; 1000.; 10_000.; 100_000. |]
    "sat.conflicts_per_solve"

let solve ?(assumptions = []) ?(budget = no_budget) t =
  t.model_valid <- false;
  t.conflict_core <- [||];
  if not t.ok then begin
    (* trivially unsat at clause-add time: the search never runs, but the
       call still counts as a solve *)
    if Metrics.is_enabled () then begin
      Metrics.incr m_solves;
      Metrics.observe m_conflicts_per_solve 0.0
    end;
    Unsat
  end
  else if
    (* A budget exhausted before the search even starts: answer [Unknown]
       immediately, so a caller passing its (possibly non-positive)
       remaining session budget degrades deterministically. *)
    (match budget.b_max_conflicts with Some c -> c <= 0 | None -> false)
    || (match budget.b_max_time_ms with Some ms -> ms <= 0.0 | None -> false)
  then begin
    if Metrics.is_enabled () then begin
      Metrics.incr m_solves;
      Metrics.incr m_unknowns;
      Metrics.observe m_conflicts_per_solve 0.0
    end;
    Unknown
  end
  else begin
    if t.learnt_limit = 0 then
      t.learnt_limit <- max 100 (n_clauses t / 3);
    List.iter
      (fun i ->
        let v = abs i in
        if v = 0 then invalid_arg "Solver.solve: zero assumption literal";
        while v > t.nvars do
          ignore (new_var t)
        done;
        if t.eliminated.(v - 1) then
          invalid_arg
            "Solver.solve: assumption on variable eliminated by preprocessing \
             (freeze it)")
      assumptions;
    let ext_assumptions = assumptions in
    let assumptions = List.map Lit.of_int assumptions in
    cancel_until t 0;
    let conflicts0 = t.n_conflicts
    and decisions0 = t.n_decisions
    and propagations0 = t.n_propagations
    and restarts0 = t.n_restarts
    and deleted0 = t.n_learnts_deleted
    and minimized0 = t.n_lits_minimized
    and reductions0 = t.n_reduce_db in
    let publish () =
      if Metrics.is_enabled () then begin
        Metrics.incr m_solves;
        Metrics.add m_conflicts (t.n_conflicts - conflicts0);
        Metrics.add m_decisions (t.n_decisions - decisions0);
        Metrics.add m_propagations (t.n_propagations - propagations0);
        Metrics.add m_restarts (t.n_restarts - restarts0);
        Metrics.add m_learnts_deleted (t.n_learnts_deleted - deleted0);
        Metrics.add m_lits_minimized (t.n_lits_minimized - minimized0);
        Metrics.add m_db_reductions (t.n_reduce_db - reductions0);
        Metrics.observe m_conflicts_per_solve
          (float_of_int (t.n_conflicts - conflicts0))
      end
    in
    let conflict_cap =
      match budget.b_max_conflicts with
      | Some c -> t.n_conflicts + c
      | None -> max_int
    in
    t.deadline <-
      (match budget.b_max_time_ms with
      | Some ms -> Unix.gettimeofday () +. (ms /. 1000.0)
      | None -> infinity);
    let result =
      match search t assumptions ~conflict_cap with
      | Sat ->
          t.model_valid <- true;
          reconstruct t;
          Sat
      | Unsat -> Unsat
      | Unknown -> Unknown (* search never returns this; for exhaustiveness *)
      | exception Unsat_exc ->
          cancel_until t 0;
          (* Normalize the failed-assumption core: restrict the caller's
             assumption list (preserving its order, without duplicates) to
             the literals blamed by the final-conflict analysis. *)
          let core = Array.to_list t.conflict_core in
          let rec restrict kept = function
            | [] -> List.rev kept
            | a :: rest ->
                if List.mem a kept || not (List.mem (Lit.of_int a) core)
                then restrict kept rest
                else restrict (a :: kept) rest
          in
          t.conflict_core <-
            Array.of_list
              (List.map Lit.of_int (restrict [] ext_assumptions));
          Unsat
      | exception Budget_exc ->
          (* Budget exhausted mid-search: drop the partial assignment but
             keep everything learnt, so a later call resumes cheaper. *)
          cancel_until t 0;
          if Metrics.is_enabled () then Metrics.incr m_unknowns;
          Unknown
    in
    t.deadline <- infinity;
    publish ();
    result
  end

(* Model access: valid only while the last operation was a [solve] that
   returned [Sat]; adding a clause (which backtracks to the root level)
   or an Unsat solve invalidates the assignment.  Variables eliminated by
   preprocessing read their reconstructed value. *)
let value t v =
  if v < 1 || v > t.nvars then invalid_arg "Solver.value";
  if not t.model_valid then
    invalid_arg "Solver.value: no model (last operation was not a Sat solve)";
  if t.eliminated.(v - 1) then t.recon.(v - 1)
  else
    match t.assigns.(v - 1) with
    | LTrue -> true
    | LFalse -> false
    | LUndef -> false (* unconstrained variables default to false *)

let model t =
  if not t.model_valid then
    invalid_arg "Solver.model: no model (last operation was not a Sat solve)";
  Array.init t.nvars (fun i -> value t (i + 1))

(* The failed-assumption set of the most recent [solve]: the subset of
   that call's assumption literals (in the order given, deduplicated)
   whose conjunction the solver refuted.  Empty unless the call returned
   [Unsat] under assumptions; empty on an [Unsat] caused by the clauses
   alone. *)
let failed_assumptions t =
  List.map Lit.to_int (Array.to_list t.conflict_core)

type stats_record = {
  s_vars : int;
  s_clauses : int;
  s_learnts : int;
  s_peak_learnts : int;
  s_conflicts : int;
  s_decisions : int;
  s_propagations : int;
  s_restarts : int;
  s_db_reductions : int;
  s_learnts_deleted : int;
  s_lits_minimized : int;
  s_act_live : int;
  s_act_retired : int;
}

let stats_record t =
  let live, retired = activation_counts t in
  {
    s_vars = t.nvars;
    s_clauses = n_clauses t;
    s_learnts = n_learnt_clauses t;
    s_peak_learnts = t.peak_learnts;
    s_conflicts = t.n_conflicts;
    s_decisions = t.n_decisions;
    s_propagations = t.n_propagations;
    s_restarts = t.n_restarts;
    s_db_reductions = t.n_reduce_db;
    s_learnts_deleted = t.n_learnts_deleted;
    s_lits_minimized = t.n_lits_minimized;
    s_act_live = live;
    s_act_retired = retired;
  }

let empty_stats =
  {
    s_vars = 0;
    s_clauses = 0;
    s_learnts = 0;
    s_peak_learnts = 0;
    s_conflicts = 0;
    s_decisions = 0;
    s_propagations = 0;
    s_restarts = 0;
    s_db_reductions = 0;
    s_learnts_deleted = 0;
    s_lits_minimized = 0;
    s_act_live = 0;
    s_act_retired = 0;
  }

(* Aggregate statistics across solvers: counters add, high-water marks
   take the maximum. *)
let sum_stats a b =
  {
    s_vars = a.s_vars + b.s_vars;
    s_clauses = a.s_clauses + b.s_clauses;
    s_learnts = a.s_learnts + b.s_learnts;
    s_peak_learnts = max a.s_peak_learnts b.s_peak_learnts;
    s_conflicts = a.s_conflicts + b.s_conflicts;
    s_decisions = a.s_decisions + b.s_decisions;
    s_propagations = a.s_propagations + b.s_propagations;
    s_restarts = a.s_restarts + b.s_restarts;
    s_db_reductions = a.s_db_reductions + b.s_db_reductions;
    s_learnts_deleted = a.s_learnts_deleted + b.s_learnts_deleted;
    s_lits_minimized = a.s_lits_minimized + b.s_lits_minimized;
    s_act_live = a.s_act_live + b.s_act_live;
    s_act_retired = a.s_act_retired + b.s_act_retired;
  }

let stats t =
  let s = stats_record t in
  Printf.sprintf
    "vars=%d clauses=%d learnts=%d (peak %d) conflicts=%d decisions=%d \
     props=%d restarts=%d reduce_db=%d deleted=%d minimized_lits=%d \
     act_vars=%d+%d"
    s.s_vars s.s_clauses s.s_learnts s.s_peak_learnts s.s_conflicts
    s.s_decisions s.s_propagations s.s_restarts s.s_db_reductions
    s.s_learnts_deleted s.s_lits_minimized s.s_act_live s.s_act_retired
