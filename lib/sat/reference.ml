(* A deliberately naive DPLL solver used as a differential-testing oracle
   for {!Solver}.  Exponential; only for small instances in tests. *)

type clause = int list (* DIMACS-style literals *)

let rec simplify lit clauses =
  (* Assign [lit] true; remove satisfied clauses, shrink the others.
     Returns [None] if an empty clause arises. *)
  match clauses with
  | [] -> Some []
  | c :: rest ->
      if List.mem lit c then simplify lit rest
      else
        let c' = List.filter (fun l -> l <> -lit) c in
        if c' = [] then None
        else
          Option.map (fun rest' -> c' :: rest') (simplify lit rest)

let rec find_unit = function
  | [] -> None
  | [ l ] :: _ -> Some l
  | _ :: rest -> find_unit rest

let rec dpll assignment clauses =
  match clauses with
  | [] -> Some assignment
  | _ -> (
      match find_unit clauses with
      | Some l -> (
          match simplify l clauses with
          | None -> None
          | Some cs -> dpll (l :: assignment) cs)
      | None ->
          let l =
            match clauses with
            | (l :: _) :: _ -> l
            | _ -> assert false
          in
          let branch lit =
            match simplify lit clauses with
            | None -> None
            | Some cs -> dpll (lit :: assignment) cs
          in
          (match branch l with
          | Some m -> Some m
          | None -> branch (-l)))

(* Returns a satisfying assignment as a list of true literals, or None. *)
let solve (clauses : clause list) : int list option =
  if List.exists (( = ) []) clauses then None else dpll [] clauses

let satisfiable clauses = Option.is_some (solve clauses)

(* Checks that [model] (an array indexed by var-1 of booleans) satisfies
   every clause. *)
let check_model model clauses =
  List.for_all
    (fun c ->
      List.exists
        (fun l ->
          let v = abs l in
          v <= Array.length model
          && (if l > 0 then model.(v - 1) else not model.(v - 1)))
        c)
    clauses
