(* Minimal-model search and model enumeration over a designated set of
   variables.  This reproduces the role Aluminum plays for SEPAR: instead
   of an arbitrary satisfying instance, the synthesizer works with
   scenarios that are *minimal* in the tuples they include, so derived
   policies are as specific as possible. *)

(* The current assignment of [soft] variables, partitioned. *)
let split_soft solver soft =
  List.partition (fun v -> Solver.value solver v) soft

(* Re-establishing a model that was just satisfiable must succeed: every
   soft variable is assumed at its model value.  A failure means the
   solver state is inconsistent with the caller's expectations — a typed
   error, not an assertion, because budgeted solves made the [Unknown]
   branch of the enclosing search reachable in release builds. *)
exception Reestablish_failed of Solver.result

(* Given that [solve] just returned [Sat], shrink the model to one that is
   minimal w.r.t. the set of true [soft] variables (no model exists whose
   true-set is a strict subset).  Returns the final true-set.

   All shrink rounds of one call share a single activation literal (from
   the solver's activation session): successive rounds only ever add
   already-falsified variables to the assumption set, so earlier rounds'
   shrink clauses are satisfied by the assumptions and need not be retired
   one by one.  The literal is released (unit [-act]) once the minimum is
   reached, so an enumeration retires exactly one variable per scenario
   instead of one per shrink round.

   [extra] are assumptions to maintain throughout (e.g. blocking
   activation literals from an enclosing enumeration).

   [budget] bounds the whole minimization: each shrink round gets what
   remains of it, and on exhaustion the current (possibly unminimized)
   model is re-established and returned — a budgeted minimize degrades
   to a coarser scenario instead of failing. *)
let minimize ?(extra = []) ?(budget = Solver.no_budget) solver ~soft =
  let conflicts0 = Solver.n_conflicts solver in
  let t0 = Unix.gettimeofday () in
  let remaining () =
    {
      Solver.b_max_conflicts =
        Option.map
          (fun c -> c - (Solver.n_conflicts solver - conflicts0))
          budget.Solver.b_max_conflicts;
      b_max_time_ms =
        Option.map
          (fun ms -> ms -. ((Unix.gettimeofday () -. t0) *. 1000.0))
          budget.Solver.b_max_time_ms;
    }
  in
  let reestablish trues falses =
    (* Retire the activation literal first (it adds a clause, invalidating
       the model), then re-establish the minimal model as the current
       assignment so callers can decode it.  No budget here: with every
       soft variable assumed this is propagation-dominated, and a budgeted
       failure would lose the very model we are falling back to. *)
    Solver.retire_activation solver;
    let assumptions =
      trues @ List.map (fun v -> -v) falses @ extra
    in
    match Solver.solve ~assumptions solver with
    | Solver.Sat -> trues
    | (Solver.Unsat | Solver.Unknown) as r -> raise (Reestablish_failed r)
  in
  let rec shrink trues falses =
    match trues with
    | [] -> reestablish [] falses
    | _ ->
        (* The session activation literal guards the temporary "shrink"
           clause: some currently-true soft variable must turn false. *)
        let act = Solver.activation_var solver in
        Solver.add_clause solver (-act :: List.map (fun v -> -v) trues);
        let assumptions =
          (act :: List.map (fun v -> -v) falses) @ extra
        in
        (match Solver.solve ~assumptions ~budget:(remaining ()) solver with
        | Solver.Sat ->
            let trues', falses' = split_soft solver (trues @ falses) in
            shrink trues' falses'
        | Solver.Unsat -> reestablish trues falses
        | Solver.Unknown ->
            (* budget exhausted mid-shrink: keep the model found so far *)
            reestablish trues falses)
  in
  let trues, falses = split_soft solver soft in
  shrink trues falses

(* Lexicographic minimal-model search: walk [soft] in the order given,
   preferring false at each position.  The result is the unique
   lexicographically-least model under that preference, which is also
   inclusion-minimal: a model whose true-set were a strict subset would
   beat it at the first variable where they differ.

   Unlike [minimize] above, the answer depends only on the constraint
   set, [extra], and the [soft] order — never on the solver's search
   state (learnt clauses, activities, saved phases).  That makes it the
   minimization of choice for the incremental ASE path, where a shared
   base solver must produce byte-identical scenarios to a fresh one.

   Each round keeps a snapshot of the best model found so far; variables
   the snapshot already assigns false are fixed for free, so the number
   of solver calls is bounded by the number of *true* variables in
   intermediate models, not by |soft|.  No activation literal is needed:
   every candidate is expressed purely through assumptions.

   [budget] bounds the whole search; on exhaustion remaining variables
   are fixed at their snapshot values (degrading to a coarser — possibly
   non-minimal — model, like [minimize] does). *)
let minimize_lex ?(extra = []) ?(budget = Solver.no_budget) solver ~soft =
  let conflicts0 = Solver.n_conflicts solver in
  let t0 = Unix.gettimeofday () in
  let remaining () =
    {
      Solver.b_max_conflicts =
        Option.map
          (fun c -> c - (Solver.n_conflicts solver - conflicts0))
          budget.Solver.b_max_conflicts;
      b_max_time_ms =
        Option.map
          (fun ms -> ms -. ((Unix.gettimeofday () -. t0) *. 1000.0))
          budget.Solver.b_max_time_ms;
    }
  in
  (* Soft variables the solver has never seen are unconstrained (hence
     false in the least model); grow the variable table so the snapshot
     and the final model can record them. *)
  List.iter
    (fun v ->
      while Solver.n_vars solver < v do
        ignore (Solver.new_var solver)
      done)
    soft;
  let snapshot = Hashtbl.create 64 in
  let refresh () =
    List.iter
      (fun v -> Hashtbl.replace snapshot v (Solver.value solver v))
      soft
  in
  refresh ();
  (* Invariant: the snapshot model satisfies [extra] and every literal in
     [fixed] — a false variable is fixed only when the snapshot has it
     false, and a true one only when the snapshot has it true. *)
  let fixed = ref [] (* reversed *) in
  List.iter
    (fun v ->
      if not (Hashtbl.find snapshot v) then fixed := -v :: !fixed
      else
        let assumptions = extra @ List.rev (-v :: !fixed) in
        match Solver.solve ~assumptions ~budget:(remaining ()) solver with
        | Solver.Sat ->
            refresh ();
            fixed := -v :: !fixed
        | Solver.Unsat -> fixed := v :: !fixed
        | Solver.Unknown ->
            (* budget exhausted: keep the snapshot's value *)
            fixed := v :: !fixed)
    soft;
  (* Re-establish the minimum as the current assignment (unbudgeted: the
     snapshot model is a witness, so this is propagation-dominated). *)
  let assumptions = extra @ List.rev !fixed in
  match Solver.solve ~assumptions solver with
  | Solver.Sat -> List.filter (fun v -> Solver.value solver v) soft
  | (Solver.Unsat | Solver.Unknown) as r -> raise (Reestablish_failed r)

(* Permanently exclude every model whose true [soft] set is a superset of
   [trues] (Aluminum-style cone blocking). *)
let block_superset solver ~trues =
  match trues with
  | [] -> Solver.add_clause solver [] |> ignore (* only the empty scenario *)
  | _ -> Solver.add_clause solver (List.map (fun v -> -v) trues)

(* Enumerate up to [limit] minimal models, each given as its true [soft]
   set; successive models are not supersets of earlier ones. *)
let enumerate_minimal ?(limit = max_int) solver ~soft =
  let rec go acc n =
    if n >= limit then List.rev acc
    else
      match Solver.solve solver with
      | Solver.Unsat | Solver.Unknown -> List.rev acc
      | Solver.Sat ->
          let trues = minimize solver ~soft in
          block_superset solver ~trues;
          go (trues :: acc) (n + 1)
  in
  go [] 0
