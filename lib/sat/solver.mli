(** A CDCL SAT solver: two-watched-literal propagation, first-UIP clause
    learning, VSIDS decision heuristic, phase saving and Luby restarts.

    The interface uses DIMACS conventions: variables are positive integers
    allocated by {!new_var}; a literal is [+v] or [-v].  The solver is
    incremental: clauses may be added between {!solve} calls, and each
    call may carry assumptions. *)

type t

type result = Sat | Unsat

(** A fresh, empty solver. *)
val create : unit -> t

(** Allocate a fresh variable; returns its (1-based) index. *)
val new_var : t -> int

(** Add a clause of DIMACS literals.  Unknown variables are allocated on
    demand.  Adding a clause backtracks to the root level and invalidates
    the current model; read model values before adding clauses. *)
val add_clause : t -> int list -> unit

(** Decide satisfiability of the clause set, optionally under
    [assumptions] (literals forced true for this call only). *)
val solve : ?assumptions:int list -> t -> result

(** Model value of a variable; meaningful only immediately after {!solve}
    returned {!Sat}.  Unconstrained variables read as [false]. *)
val value : t -> int -> bool

(** The full model, indexed by [var - 1]. *)
val model : t -> bool array

val n_vars : t -> int
val n_clauses : t -> int
val n_conflicts : t -> int

(** One-line statistics summary (variables, clauses, conflicts, ...). *)
val stats : t -> string
