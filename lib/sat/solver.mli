(** A CDCL SAT solver: two-watched-literal propagation, first-UIP clause
    learning with learnt-clause minimization, VSIDS decision heuristic,
    activity-ordered learnt-database reduction, phase saving and Luby
    restarts.

    The interface uses DIMACS conventions: variables are positive integers
    allocated by {!new_var}; a literal is [+v] or [-v].  The solver is
    incremental: clauses may be added between {!solve} calls, and each
    call may carry assumptions. *)

type t

(** [Unknown] is only produced by budgeted {!solve} calls whose resource
    budget ran out before the search decided the instance. *)
type result = Sat | Unsat | Unknown

(** A resource budget for one {!solve} call.  [None] fields are
    unlimited.  A call whose budget is exhausted — including a budget
    that is already non-positive on entry — returns {!Unknown}; the
    solver stays usable and keeps what it learnt, so a later (bigger or
    unbudgeted) call resumes the search cheaper. *)
type budget = {
  b_max_conflicts : int option;  (** conflicts this call may spend *)
  b_max_time_ms : float option;  (** wall-clock milliseconds for this call *)
}

(** The unlimited budget: both fields [None]. *)
val no_budget : budget

(** A fresh, empty solver. *)
val create : unit -> t

(** Allocate a fresh variable; returns its (1-based) index. *)
val new_var : t -> int

(** Add a clause of DIMACS literals.  Unknown variables are allocated on
    demand.  Adding a clause backtracks to the root level and invalidates
    the current model; read model values before adding clauses. *)
val add_clause : t -> int list -> unit

(** [add_clause] on an array of DIMACS literals.  The solver takes
    ownership of the array (it is rewritten in place); callers on hot
    paths use this to skip the list round trip. *)
val add_clause_arr : t -> int array -> unit

(** Decide satisfiability of the clause set, optionally under
    [assumptions] (literals forced true for this call only) and under a
    resource [budget] (default: unlimited).  A budget-exhausted call
    returns {!Unknown} and invalidates the model. *)
val solve : ?assumptions:int list -> ?budget:budget -> t -> result

(** Model value of a variable.  Raises [Invalid_argument] unless the last
    operation on the solver was a {!solve} that returned {!Sat}: adding a
    clause or an Unsat solve invalidates the model.  Unconstrained
    variables read as [false]. *)
val value : t -> int -> bool

(** The full model, indexed by [var - 1].  Raises [Invalid_argument]
    unless the last operation was a {!solve} that returned {!Sat}. *)
val model : t -> bool array

(** The failed-assumption set of the most recent {!solve}: the subset of
    that call's assumption literals (in the order given, deduplicated)
    whose conjunction the solver refuted — an unsat core over the
    assumptions.  Empty unless the call returned {!Unsat} under
    assumptions, and empty when the clauses are unsatisfiable on their
    own (no assumption is to blame).  The set is not guaranteed minimal,
    but assuming it again yields {!Unsat} again. *)
val failed_assumptions : t -> int list

(** The session's activation variable for assumption-guarded temporary
    clauses, allocating one if none is live.  Used by [Models.minimize];
    at most one activation variable is live at a time. *)
val activation_var : t -> int

(** Retire the live activation variable, if any: adds the unit clause
    [-act] (permanently satisfying every clause it guards, and
    invalidating the current model).  The next {!activation_var} call
    allocates a fresh variable. *)
val retire_activation : t -> unit

(** [(live, retired)] activation-variable counts: [live] is 0 or 1. *)
val activation_counts : t -> int * int

(** SatELite-style preprocessing over the current problem clauses:
    subsumption, self-subsuming resolution and bounded variable
    elimination, followed by a rebuild of the kernel state around the
    simplified CNF.  Run it at the encode → solve handoff, before the
    first {!solve}.

    [frozen] lists variables that must survive untouched — anything the
    caller will later pass as an assumption, read through {!value}, or
    mention in a new clause.  The live activation variable and all
    root-level facts are frozen implicitly.  Variables eliminated by the
    pass are reconstructed transparently whenever a model is read, so
    {!value}/{!model} answer for them as if they were never removed;
    naming one in {!add_clause} or as a {!solve} assumption raises
    [Invalid_argument]. *)
val preprocess : ?frozen:int list -> t -> unit

(** [(eliminated_vars, subsumed_clauses, strengthened_clauses)]
    cumulative preprocessing counters. *)
val simp_stats : t -> int * int * int

(** Set the initial learnt-database capacity (before growth); primarily
    for tests and benchmarks.  A tiny limit forces frequent reductions, a
    huge one disables them.  Must be called before the first {!solve} to
    override the default of [max 100 (n_clauses / 3)]. *)
val set_learnt_limit : t -> int -> unit

val n_vars : t -> int
val n_clauses : t -> int
val n_conflicts : t -> int

(** Structured solver statistics. *)
type stats_record = {
  s_vars : int;
  s_clauses : int;           (** problem clauses *)
  s_learnts : int;           (** learnt clauses currently in the database *)
  s_peak_learnts : int;      (** learnt-database high-water mark *)
  s_conflicts : int;
  s_decisions : int;
  s_propagations : int;
  s_restarts : int;
  s_db_reductions : int;     (** times {e reduce_db} fired *)
  s_learnts_deleted : int;   (** learnt clauses deleted by reductions *)
  s_lits_minimized : int;    (** literals removed by learnt minimization *)
  s_act_live : int;          (** live activation variables (0 or 1) *)
  s_act_retired : int;       (** retired activation variables *)
}

val stats_record : t -> stats_record

(** All-zero record, the unit of {!sum_stats}. *)
val empty_stats : stats_record

(** Aggregate two records: counters add, high-water marks take the max. *)
val sum_stats : stats_record -> stats_record -> stats_record

(** One-line statistics summary (variables, clauses, conflicts, ...). *)
val stats : t -> string
