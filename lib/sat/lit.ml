(* Literals are encoded as [2 * var] (positive) or [2 * var + 1] (negative),
   with variables numbered from 0 internally.  The external API of
   {!Solver} speaks in signed DIMACS-style integers ([+v] / [-v], [v >= 1]);
   this module is the internal encoding. *)

type t = int

let of_var v ~sign = (v lsl 1) lor (if sign then 0 else 1)
let var (l : t) = l lsr 1
let sign (l : t) = l land 1 = 0
let negate (l : t) = l lxor 1

(* External (signed, 1-based) to internal and back. *)
let of_int i =
  if i = 0 then invalid_arg "Lit.of_int: zero";
  let v = abs i - 1 in
  of_var v ~sign:(i > 0)

let to_int (l : t) =
  let v = var l + 1 in
  if sign l then v else -v

let pp ppf l = Fmt.int ppf (to_int l)
