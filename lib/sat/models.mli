(** Minimal-model search and model enumeration over a designated set of
    variables — the role Aluminum plays for SEPAR: scenarios that are
    minimal in the tuples they include yield the most specific policies. *)

(** Raised when re-establishing a just-satisfiable model fails — the
    payload is the unexpected solver answer.  Indicates solver-state
    corruption; reachable in principle now that budgeted solves exist,
    hence a typed error instead of an assertion. *)
exception Reestablish_failed of Solver.result

(** Given that [solve] just returned [Sat], shrink the current model to
    one whose set of true [soft] variables is minimal (no model has a
    strict subset).  Returns the final true-set; the solver is left with
    that model established.  [extra] assumptions are maintained
    throughout.

    [budget] bounds the whole minimization (each shrink round receives
    what remains of it); on exhaustion the current — possibly
    unminimized — model is re-established and its true-set returned, so
    a budgeted minimize degrades gracefully instead of failing.

    All shrink rounds of one call share a single solver activation
    literal, which is released (via the unit clause [-act]) once the
    minimum is reached — an enumeration retires one activation variable
    per scenario rather than one per shrink round; see
    {!Solver.activation_counts}.

    @raise Reestablish_failed if the minimal model cannot be
    re-established (solver-state corruption). *)
val minimize :
  ?extra:int list -> ?budget:Solver.budget -> Solver.t -> soft:int list ->
  int list

(** Given that [solve] just returned [Sat], find the lexicographically
    least model of the clause set (under [extra]) w.r.t. the [soft]
    order with false preferred — also an inclusion-minimal model.
    Returns its true-set (in [soft] order); the solver is left with that
    model established.

    Unlike {!minimize}, the answer is {e canonical}: it depends only on
    the constraints, [extra], and the [soft] order, never on solver
    search state — two solvers with logically equivalent constraint sets
    return the same model.  No activation literal is consumed; all
    candidates are expressed through assumptions.

    [budget] bounds the whole search; on exhaustion the remaining
    variables keep the values of the best model found (degrading to a
    coarser, possibly non-minimal and non-canonical, model).

    @raise Reestablish_failed if the minimum cannot be re-established
    (solver-state corruption). *)
val minimize_lex :
  ?extra:int list -> ?budget:Solver.budget -> Solver.t -> soft:int list ->
  int list

(** Permanently exclude every model whose true [soft] set is a superset
    of [trues]. *)
val block_superset : Solver.t -> trues:int list -> unit

(** Enumerate up to [limit] minimal models (as true-sets of [soft]);
    successive models are never supersets of earlier ones. *)
val enumerate_minimal :
  ?limit:int -> Solver.t -> soft:int list -> int list list
