(** Minimal-model search and model enumeration over a designated set of
    variables — the role Aluminum plays for SEPAR: scenarios that are
    minimal in the tuples they include yield the most specific policies. *)

(** Given that [solve] just returned [Sat], shrink the current model to
    one whose set of true [soft] variables is minimal (no model has a
    strict subset).  Returns the final true-set; the solver is left with
    that model established.  [extra] assumptions are maintained
    throughout.

    All shrink rounds of one call share a single solver activation
    literal, which is released (via the unit clause [-act]) once the
    minimum is reached — an enumeration retires one activation variable
    per scenario rather than one per shrink round; see
    {!Solver.activation_counts}. *)
val minimize :
  ?extra:int list -> Solver.t -> soft:int list -> int list

(** Permanently exclude every model whose true [soft] set is a superset
    of [trues]. *)
val block_superset : Solver.t -> trues:int list -> unit

(** Enumerate up to [limit] minimal models (as true-sets of [soft]);
    successive models are never supersets of earlier ones. *)
val enumerate_minimal :
  ?limit:int -> Solver.t -> soft:int list -> int list list
