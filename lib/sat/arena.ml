(* Flat clause arena: every clause's literals live in one growable int
   array, and a clause is addressed by the integer offset of its header
   word ("cref").  Propagation walks contiguous memory instead of chasing
   per-clause record pointers, which is where a CDCL solver spends most
   of its cycles.

   Layout of a clause at offset [c]:

     data.(c)      header: (len lsl 2) lor (deleted lsl 1) lor learnt
     data.(c + 1)  activity slot (index into the solver's clause-activity
                   array) for learnt clauses; unused for problem clauses
     data.(c + 2 + i)  literal i, for 0 <= i < len

   Deletion is a header mark: the words are reclaimed by [move]-based
   compaction (the owner rewrites its crefs via the forwarding address
   left behind), triggered once [wasted] grows past a fraction of
   [size].  Binary clauses never enter the arena — they live inline in
   the solver's dedicated binary watch lists. *)

type t = {
  mutable data : int array;
  mutable size : int;   (* next free word *)
  mutable wasted : int; (* words held by deleted clauses *)
}

let header_words = 2

let create ?(capacity = 1024) () =
  { data = Array.make (max 16 capacity) 0; size = 0; wasted = 0 }

let ensure a n =
  if a.size + n > Array.length a.data then begin
    let cap = max (a.size + n) (2 * Array.length a.data) in
    let data = Array.make cap 0 in
    Array.blit a.data 0 data 0 a.size;
    a.data <- data
  end

(* Allocate a clause; the caller supplies the literal block. *)
let alloc a ~learnt ~act (lits : int array) =
  let len = Array.length lits in
  ensure a (len + header_words);
  let c = a.size in
  a.data.(c) <- (len lsl 2) lor (if learnt then 1 else 0);
  a.data.(c + 1) <- act;
  Array.blit lits 0 a.data (c + header_words) len;
  a.size <- a.size + len + header_words;
  c

let len a c = a.data.(c) lsr 2
let is_learnt a c = a.data.(c) land 1 <> 0
let is_deleted a c = a.data.(c) land 2 <> 0
let act_slot a c = a.data.(c + 1)
let set_act_slot a c s = a.data.(c + 1) <- s
let lit a c i = a.data.(c + header_words + i)

let delete a c =
  if not (is_deleted a c) then begin
    a.wasted <- a.wasted + len a c + header_words;
    a.data.(c) <- a.data.(c) lor 2
  end

(* Fraction of the arena held by deleted clauses; the owner compacts
   when this passes its threshold. *)
let fragmentation a =
  if a.size = 0 then 0.0 else float_of_int a.wasted /. float_of_int a.size

(* Move a live clause from [src] to [dst], leaving a forwarding address
   behind (negative header marks a moved clause; the new cref sits in
   the old activity slot).  Idempotent: moving a forwarded clause just
   returns its forwarding address. *)
let move ~src ~dst c =
  if src.data.(c) < 0 then src.data.(c + 1)
  else begin
    let n = len src c + header_words in
    ensure dst n;
    let c' = dst.size in
    Array.blit src.data c dst.data c' n;
    dst.size <- dst.size + n;
    src.data.(c) <- -1;
    src.data.(c + 1) <- c';
    c'
  end

let forwarded src c = src.data.(c) < 0
let forward src c = src.data.(c + 1)

(* Iterate the literal block of a clause. *)
let iter_lits f a c =
  let n = len a c in
  for i = 0 to n - 1 do
    f a.data.(c + header_words + i)
  done

let lits_array a c = Array.sub a.data (c + header_words) (len a c)
