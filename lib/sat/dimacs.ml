(* Minimal DIMACS CNF reader/writer, used by tests and the CLI tooling. *)

type problem = { n_vars : int; clauses : int list list }

let parse_string s =
  let lines = String.split_on_char '\n' s in
  let n_vars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let handle_tokens toks =
    List.iter
      (fun tok ->
        match int_of_string_opt tok with
        | Some 0 ->
            clauses := List.rev !current :: !clauses;
            current := []
        | Some l ->
            n_vars := max !n_vars (abs l);
            current := l :: !current
        | None -> failwith ("Dimacs.parse: bad token " ^ tok))
      toks
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" then ()
      else if line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match
          String.split_on_char ' ' line
          |> List.filter (fun s -> s <> "")
        with
        | [ "p"; "cnf"; nv; _nc ] -> n_vars := max !n_vars (int_of_string nv)
        | _ -> failwith "Dimacs.parse: bad problem line"
      end
      else
        handle_tokens
          (String.split_on_char ' ' line |> List.filter (fun s -> s <> "")))
    lines;
  if !current <> [] then clauses := List.rev !current :: !clauses;
  { n_vars = !n_vars; clauses = List.rev !clauses }

let to_string { n_vars; clauses } =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" n_vars (List.length clauses));
  List.iter
    (fun c ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) c;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let load_into solver { n_vars; clauses } =
  for _ = 1 to n_vars do
    ignore (Solver.new_var solver)
  done;
  List.iter (Solver.add_clause solver) clauses
