(* Minimal DIMACS CNF reader/writer, used by tests and the CLI tooling. *)

type problem = { n_vars : int; clauses : int list list }

(* Split on runs of any whitespace (space, tab, CR, FF, VT): DIMACS files
   in the wild are frequently tab-separated or CRLF-terminated. *)
let split_ws s =
  let is_ws = function
    | ' ' | '\t' | '\r' | '\012' | '\011' -> true
    | _ -> false
  in
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else if is_ws s.[i] then go (i + 1) acc
    else
      let j = ref i in
      while !j < n && not (is_ws s.[!j]) do incr j done;
      go !j (String.sub s i (!j - i) :: acc)
  in
  go 0 []

let parse_string s =
  let lines = String.split_on_char '\n' s in
  let n_vars = ref 0 in
  let declared_clauses = ref None in
  let clauses = ref [] in
  let current = ref [] in
  let finished = ref false in
  let handle_tokens toks =
    List.iter
      (fun tok ->
        match int_of_string_opt tok with
        | Some 0 ->
            clauses := List.rev !current :: !clauses;
            current := []
        | Some l ->
            n_vars := max !n_vars (abs l);
            current := l :: !current
        | None -> failwith ("Dimacs.parse: bad token " ^ tok))
      toks
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if !finished || line = "" then ()
      else if line.[0] = 'c' then ()
      else if line.[0] = '%' then
        (* SATLIB-format trailer: a "%" line marks end-of-input (the
           conventional "0" line after it must not become an empty
           clause). *)
        finished := true
      else if line.[0] = 'p' then begin
        match split_ws line with
        | [ "p"; "cnf"; nv; nc ] ->
            n_vars := max !n_vars (int_of_string nv);
            declared_clauses := int_of_string_opt nc
        | _ -> failwith "Dimacs.parse: bad problem line"
      end
      else handle_tokens (split_ws line))
    lines;
  if !current <> [] then clauses := List.rev !current :: !clauses;
  let clauses = List.rev !clauses in
  (match !declared_clauses with
  | Some nc when nc <> List.length clauses ->
      Printf.eprintf
        "Dimacs.parse: warning: header declares %d clauses, parsed %d\n%!"
        nc (List.length clauses)
  | _ -> ());
  { n_vars = !n_vars; clauses }

let to_string { n_vars; clauses } =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" n_vars (List.length clauses));
  List.iter
    (fun c ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) c;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let load_into solver { n_vars; clauses } =
  for _ = 1 to n_vars do
    ignore (Solver.new_var solver)
  done;
  List.iter (Solver.add_clause solver) clauses
