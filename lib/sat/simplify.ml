(* SatELite-style CNF preprocessing: subsumption, self-subsuming
   resolution (strengthening), and bounded variable elimination, run
   once at the translate -> CNF handoff before search starts.

   Works on plain clause lists in the *internal* literal encoding of
   [Lit] (lit = var lsl 1 lor sign-bit), independent of the solver so
   it can be tested in isolation and so [Solver.preprocess] stays a
   thin gather / run / rebuild wrapper.

   Soundness contract: variables in [frozen] are never eliminated and
   never touched by resolution, so any literal the caller intends to
   use later — assumptions, activation literals, soft/model variables
   read by the relog decode layer — keeps its meaning.  Eliminated
   variables are returned with the clauses they were resolved out of
   ([r_stack], in elimination order); the solver replays that stack in
   reverse to extend any model of the simplified CNF to a model of the
   original one. *)

type stats = {
  mutable sp_subsumed : int;
  mutable sp_strengthened : int;
  mutable sp_eliminated : int;
  mutable sp_resolvents : int;
  mutable sp_units : int;
}

type result = {
  r_clauses : int array list; (* surviving clauses, incl. derived units *)
  r_stack : (int * int array list) list; (* (var, clauses), elim order *)
  r_eliminated : bool array; (* per internal var *)
  r_unsat : bool;
  r_stats : stats;
}

(* Resolution-environment caps: a variable is only eliminated when both
   occurrence lists are small and doing so does not grow the CNF.  The
   classic SatELite bounds; generous enough to fire on Tseitin
   definitions (x <-> gate), which is where almost all the payoff is. *)
let max_occ = 10
let max_resolvent_len = 40

let lit_sig l = 1 lsl (l mod 63)

type db = {
  n_vars : int;
  frozen : bool array;
  mutable clauses : int array option array; (* None = removed *)
  mutable n_clauses : int;
  sigs : int Vec.t; (* signature per clause id; stale once removed *)
  occ : int Vec.t array; (* per lit: clause ids, may contain stale ids *)
  assign : int array; (* per var: 0 undef / 1 true / 2 false *)
  eliminated : bool array;
  touched : int Vec.t; (* clause ids queued for the subsumption sweep *)
  mutable enqueued : bool array; (* per clause id: already on [touched]? *)
  units : int Vec.t; (* literal queue for unit propagation *)
  mutable stack : (int * int array list) list; (* reversed elim order *)
  mutable unsat : bool;
  st : stats;
}

let value d l =
  match d.assign.(Lit.var l) with
  | 0 -> 0
  | 1 -> if Lit.sign l then 1 else -1
  | _ -> if Lit.sign l then -1 else 1

let clause_sig lits = Array.fold_left (fun s l -> s lor lit_sig l) 0 lits

let ensure_slot d id =
  if id >= Array.length d.clauses then begin
    let cap = max (id + 1) (2 * Array.length d.clauses) in
    let cs = Array.make cap None in
    Array.blit d.clauses 0 cs 0 (Array.length d.clauses);
    d.clauses <- cs;
    let enq = Array.make cap false in
    Array.blit d.enqueued 0 enq 0 (Array.length d.enqueued);
    d.enqueued <- enq
  end

let touch d id =
  if not d.enqueued.(id) then begin
    d.enqueued.(id) <- true;
    Vec.push d.touched id
  end

(* Normalize a literal list under the current assignment: returns
   [None] if the clause is satisfied or tautological, otherwise the
   sorted de-duplicated array of unassigned literals. *)
let normalize d lits =
  let lits = List.sort_uniq compare lits in
  let rec go acc = function
    | [] -> Some (Array.of_list (List.rev acc))
    | l :: rest ->
        if List.mem (Lit.negate l) rest then None (* tautology *)
        else begin
          match value d l with
          | 1 -> None
          | -1 -> go acc rest
          | _ -> go (l :: acc) rest
        end
  in
  go [] lits

let enqueue_unit d l =
  match value d l with
  | 1 -> ()
  | -1 -> d.unsat <- true
  | _ ->
      d.assign.(Lit.var l) <- (if Lit.sign l then 1 else 2);
      d.st.sp_units <- d.st.sp_units + 1;
      Vec.push d.units l

let add_clause d lits =
  match lits with
  | [||] -> d.unsat <- true
  | [| l |] -> enqueue_unit d l
  | _ ->
      let id = d.n_clauses in
      d.n_clauses <- id + 1;
      ensure_slot d id;
      d.clauses.(id) <- Some lits;
      Vec.push d.sigs (clause_sig lits);
      Array.iter (fun l -> Vec.push d.occ.(l) id) lits;
      touch d id

let remove_clause d id =
  d.clauses.(id) <- None (* occ entries go stale; filtered at use *)

(* Live occurrences of [l], compacting the stale ids out of the list. *)
let occs d l =
  let v = d.occ.(l) in
  let out = ref [] in
  let j = ref 0 in
  for i = 0 to Vec.size v - 1 do
    let id = Vec.get v i in
    match d.clauses.(id) with
    | Some c when Array.exists (fun x -> x = l) c ->
        Vec.set v !j id;
        incr j;
        out := (id, c) :: !out
    | _ -> ()
  done;
  Vec.shrink v !j;
  List.rev !out

(* Unit propagation over the occurrence lists: satisfied clauses are
   removed, falsified literals stripped. *)
let propagate_units d =
  while (not d.unsat) && Vec.size d.units > 0 do
    let l = Vec.pop d.units in
    List.iter (fun (id, _) -> remove_clause d id) (occs d l);
    List.iter
      (fun (id, c) ->
        remove_clause d id;
        match normalize d (Array.to_list c) with
        | None -> ()
        | Some c' -> add_clause d c')
      (occs d (Lit.negate l))
  done

(* c subset-of d?  Assumes both sorted. *)
let subset small big =
  let ns = Array.length small and nb = Array.length big in
  let rec go i j =
    if i >= ns then true
    else if j >= nb then false
    else if small.(i) = big.(j) then go (i + 1) (j + 1)
    else if small.(i) > big.(j) then go i (j + 1)
    else false
  in
  ns <= nb && go 0 0

(* subset test for c with literal [flip] considered negated. *)
let subset_except small flip big =
  Array.for_all
    (fun l ->
      if l = flip then Array.exists (fun x -> x = Lit.negate l) big
      else Array.exists (fun x -> x = l) big)
    small

(* One subsumption / self-subsuming-resolution sweep over the queue of
   touched clauses.  Strengthened clauses are re-queued, so the sweep
   runs to fixpoint. *)
let subsumption_sweep d =
  while (not d.unsat) && Vec.size d.touched > 0 do
    let id = Vec.pop d.touched in
    d.enqueued.(id) <- false;
    match d.clauses.(id) with
    | None -> ()
    | Some c ->
        let csig = Vec.get d.sigs id in
        (* pick the literal with the fewest occurrences to scan *)
        let best = ref c.(0) in
        Array.iter
          (fun l ->
            if Vec.size d.occ.(l) < Vec.size d.occ.(!best) then best := l)
          c;
        (* backward subsumption: c subsumes longer (or equal) clauses *)
        List.iter
          (fun (id', c') ->
            if
              id' <> id
              && Array.length c' >= Array.length c
              && csig land lnot (Vec.get d.sigs id') = 0
              && subset c c'
            then begin
              remove_clause d id';
              d.st.sp_subsumed <- d.st.sp_subsumed + 1
            end)
          (occs d !best);
        (* self-subsuming resolution: if (c \ {l}) ∪ {¬l} ⊆ c' then ¬l
           can be stripped from c'. *)
        Array.iter
          (fun l ->
            let csig' = csig lxor lit_sig l lor lit_sig (Lit.negate l) in
            List.iter
              (fun (id', c') ->
                if
                  id' <> id
                  && d.clauses.(id') <> None (* not removed this sweep *)
                  && d.clauses.(id) <> None (* c itself still live *)
                  && Array.length c' >= Array.length c
                  && csig' land lnot (Vec.get d.sigs id') = 0
                  && subset_except c l c'
                then begin
                  remove_clause d id';
                  d.st.sp_strengthened <- d.st.sp_strengthened + 1;
                  let c'' =
                    Array.to_list c'
                    |> List.filter (fun x -> x <> Lit.negate l)
                  in
                  match normalize d c'' with
                  | None -> ()
                  | Some c'' -> add_clause d c''
                end)
              (occs d (Lit.negate l)))
          c
  done;
  propagate_units d

(* Non-tautological resolvent of [cp] (contains pl) and [cn] (contains
   ¬pl) on variable of [pl]; [None] if tautological. *)
let resolvent d pl cp cn =
  let nl = Lit.negate pl in
  let lits =
    List.filter (fun l -> l <> pl) (Array.to_list cp)
    @ List.filter (fun l -> l <> nl) (Array.to_list cn)
  in
  let lits = List.sort_uniq compare lits in
  if List.exists (fun l -> List.mem (Lit.negate l) lits) lits then None
  else
    match normalize d lits with
    | None -> None
    | Some c -> Some c

(* Bounded variable elimination pass; returns true if any variable was
   eliminated. *)
let bve_pass d =
  let changed = ref false in
  for v = 0 to d.n_vars - 1 do
    if
      (not d.unsat) && (not d.frozen.(v)) && (not d.eliminated.(v))
      && d.assign.(v) = 0
    then begin
      let pl = Lit.of_var v ~sign:true and nl = Lit.of_var v ~sign:false in
      let pos = occs d pl and neg = occs d nl in
      let np = List.length pos and nn = List.length neg in
      if np > 0 && nn > 0 && np <= max_occ && nn <= max_occ then begin
        (* count resolvents first; eliminate only if CNF shrinks *)
        let resolvents = ref [] and count = ref 0 and ok = ref true in
        List.iter
          (fun (_, cp) ->
            List.iter
              (fun (_, cn) ->
                if !ok then
                  match resolvent d pl cp cn with
                  | None -> ()
                  | Some r ->
                      if Array.length r > max_resolvent_len then ok := false
                      else begin
                        incr count;
                        if !count > np + nn then ok := false
                        else resolvents := r :: !resolvents
                      end)
              neg)
          pos;
        if !ok then begin
          let saved =
            List.map snd pos @ List.map snd neg
          in
          List.iter (fun (id, _) -> remove_clause d id) pos;
          List.iter (fun (id, _) -> remove_clause d id) neg;
          d.eliminated.(v) <- true;
          d.stack <- (v, saved) :: d.stack;
          d.st.sp_eliminated <- d.st.sp_eliminated + 1;
          List.iter
            (fun r ->
              d.st.sp_resolvents <- d.st.sp_resolvents + 1;
              add_clause d r)
            !resolvents;
          changed := true
        end
      end
      (* pure-literal case (np = 0 or nn = 0, some occurrences): also a
         valid elimination — all clauses containing the pure literal are
         satisfiable by choosing it; reconstruction picks the value. *)
      else if (np = 0) <> (nn = 0) && np + nn <= max_occ then begin
        let side = if np > 0 then pos else neg in
        let saved = List.map snd side in
        List.iter (fun (id, _) -> remove_clause d id) side;
        d.eliminated.(v) <- true;
        d.stack <- (v, saved) :: d.stack;
        d.st.sp_eliminated <- d.st.sp_eliminated + 1;
        changed := true
      end
    end
  done;
  propagate_units d;
  !changed

let max_rounds = 5

let run ~frozen ~n_vars clauses =
  let st =
    {
      sp_subsumed = 0;
      sp_strengthened = 0;
      sp_eliminated = 0;
      sp_resolvents = 0;
      sp_units = 0;
    }
  in
  let d =
    {
      n_vars;
      frozen;
      clauses = Array.make 64 None;
      n_clauses = 0;
      sigs = Vec.create 0;
      occ = Array.init (2 * max 1 n_vars) (fun _ -> Vec.create 0);
      assign = Array.make (max 1 n_vars) 0;
      eliminated = Array.make (max 1 n_vars) false;
      touched = Vec.create 0;
      enqueued = Array.make 64 false;
      units = Vec.create 0;
      stack = [];
      unsat = false;
      st;
    }
  in
  List.iter
    (fun c ->
      if not d.unsat then
        match normalize d (Array.to_list c) with
        | None -> ()
        | Some c' -> add_clause d c')
    clauses;
  propagate_units d;
  let rounds = ref 0 and continue_ = ref true in
  while (not d.unsat) && !continue_ && !rounds < max_rounds do
    incr rounds;
    subsumption_sweep d;
    continue_ := bve_pass d
  done;
  if not d.unsat then subsumption_sweep d;
  let surviving = ref [] in
  if not d.unsat then begin
    for id = d.n_clauses - 1 downto 0 do
      match d.clauses.(id) with
      | Some c -> surviving := c :: !surviving
      | None -> ()
    done;
    (* re-emit level-0 facts as unit clauses *)
    for v = 0 to n_vars - 1 do
      match d.assign.(v) with
      | 1 -> surviving := [| Lit.of_var v ~sign:true |] :: !surviving
      | 2 -> surviving := [| Lit.of_var v ~sign:false |] :: !surviving
      | _ -> ()
    done
  end;
  {
    r_clauses = !surviving;
    r_stack = List.rev d.stack;
    r_eliminated = d.eliminated;
    r_unsat = d.unsat;
    r_stats = st;
  }

(* Model reconstruction: given truth values for surviving vars (as a
   function), extend over the elimination stack.  [stack_newest_first]
   must be reversed elimination order (latest elimination first) so
   each variable's saved clauses only mention already-decided vars.
   Calls [set v b] for each eliminated var. *)
let reconstruct ~stack_newest_first ~lit_true ~set =
  List.iter
    (fun (v, saved) ->
      let pl = Lit.of_var v ~sign:true in
      (* v must be true iff some saved clause containing v positively
         has all its *other* literals false. *)
      let needs_true =
        List.exists
          (fun c ->
            Array.exists (fun l -> l = pl) c
            && not
                 (Array.exists (fun l -> l <> pl && lit_true l) c))
          saved
      in
      set v needs_true)
    stack_newest_first
