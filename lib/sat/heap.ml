(* Binary max-heap over variable indices, ordered by activity.  Supports
   membership testing and in-place priority updates, as required by the
   VSIDS decision heuristic. *)

type t = {
  mutable heap : int array;     (* heap.(i) = variable at heap slot i *)
  mutable pos : int array;      (* pos.(v) = slot of v, or -1 *)
  mutable score : float array;  (* score.(v) = priority of v *)
  mutable size : int;
}

let create () = { heap = [||]; pos = [||]; score = [||]; size = 0 }

let is_empty t = t.size = 0

let ensure t v =
  let n = Array.length t.pos in
  if v >= n then begin
    let cap = max (v + 1) (max 16 (2 * n)) in
    let pos = Array.make cap (-1) in
    Array.blit t.pos 0 pos 0 n;
    t.pos <- pos;
    let score = Array.make cap 0.0 in
    Array.blit t.score 0 score 0 n;
    t.score <- score;
    let heap = Array.make cap 0 in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let mem t v = v < Array.length t.pos && t.pos.(v) >= 0

let swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.pos.(b) <- i;
  t.pos.(a) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.score.(t.heap.(i)) > t.score.(t.heap.(parent)) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.size && t.score.(t.heap.(l)) > t.score.(t.heap.(!best)) then
    best := l;
  if r < t.size && t.score.(t.heap.(r)) > t.score.(t.heap.(!best)) then
    best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let insert t v score =
  ensure t v;
  if not (mem t v) then begin
    t.score.(v) <- score;
    t.heap.(t.size) <- v;
    t.pos.(v) <- t.size;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)
  end

let update t v score =
  ensure t v;
  t.score.(v) <- score;
  if mem t v then begin
    sift_up t t.pos.(v);
    sift_down t t.pos.(v)
  end

let remove_max t =
  assert (t.size > 0);
  let v = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    t.pos.(t.heap.(0)) <- 0
  end;
  t.pos.(v) <- -1;
  if t.size > 0 then sift_down t 0;
  v

let rescale t factor =
  for v = 0 to Array.length t.score - 1 do
    t.score.(v) <- t.score.(v) *. factor
  done
