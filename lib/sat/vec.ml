(* Growable arrays used throughout the solver.  A thin, allocation-conscious
   wrapper over [Array]; elements beyond [size] are garbage. *)

type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

let create ?(capacity = 16) dummy =
  { data = Array.make (max capacity 1) dummy; size = 0; dummy }

let size t = t.size
let is_empty t = t.size = 0

let clear t = t.size <- 0

let grow t n =
  if n > Array.length t.data then begin
    let cap = max n (2 * Array.length t.data) in
    let data = Array.make cap t.dummy in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let push t x =
  grow t (t.size + 1);
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let pop t =
  assert (t.size > 0);
  t.size <- t.size - 1;
  let x = t.data.(t.size) in
  t.data.(t.size) <- t.dummy;
  x

let get t i =
  assert (i >= 0 && i < t.size);
  t.data.(i)

let set t i x =
  assert (i >= 0 && i < t.size);
  t.data.(i) <- x

let last t = get t (t.size - 1)

let shrink t n =
  assert (n <= t.size);
  for i = n to t.size - 1 do
    t.data.(i) <- t.dummy
  done;
  t.size <- n

(* Remove element at [i] by swapping in the last element (order not kept). *)
let swap_remove t i =
  assert (i >= 0 && i < t.size);
  t.data.(i) <- t.data.(t.size - 1);
  t.size <- t.size - 1;
  t.data.(t.size) <- t.dummy

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.size - 1) []
