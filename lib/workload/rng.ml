(* Deterministic splitmix64 PRNG: the workload generator must produce the
   same 4,000 apps on every run so experiments are reproducible. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let float t =
  float_of_int (int t 1_000_000) /. 1_000_000.0

let bool t p = float t < p

let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty"
  | _ -> List.nth xs (int t (List.length xs))

(* Sample approximately log-normally in [lo, hi] (skewed towards lo). *)
let skewed t ~lo ~hi =
  let u = float t in
  let u = u *. u in
  lo + int_of_float (u *. float_of_int (hi - lo))
