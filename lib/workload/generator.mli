(** Synthetic app-store generator for the RQ2 / RQ3 / Figure 5
    experiments.  Deterministic in the seed; every app is a full IR
    program the extractor must genuinely analyze — vulnerabilities are
    injected as code patterns, never as labels. *)

open Separ_dalvik

type vuln_kind = Hijack | Launch | Privesc | Leak

(** A store profile: population size, app-size range and per-category
    injection rates (calibrated against the paper's RQ2 counts). *)
type profile = {
  store : string;
  count : int;
  size_lo : int;
  size_hi : int;
  rate_hijack : float;
  rate_launch : float;
  rate_privesc : float;
  rate_leak : float;
}

(** Google Play (1,600), F-Droid (1,100), Malgenome (1,200), Bazaar
    (100): the paper's 4,000-app corpus. *)
val default_profiles : profile list

type generated = {
  apk : Apk.t;
  store : string;
  injected : vuln_kind list;  (** ground truth of what was injected *)
}

(** Generate a corpus; deterministic in [seed] (default 2016). *)
val generate : ?seed:int -> ?profiles:profile list -> unit -> generated list

(** Partition into bundles of [size] apps (default use: 80 x 50). *)
val bundles : ?size:int -> generated list -> generated list list
