(** Deterministic splitmix64 PRNG: the workload generator must produce
    the same corpus on every run. *)

type t

val create : int -> t
val next_int64 : t -> int64

(** Uniform in [0, bound). *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

(** True with probability [p]. *)
val bool : t -> float -> bool

val choose : t -> 'a list -> 'a

(** Quadratically skewed towards [lo]. *)
val skewed : t -> lo:int -> hi:int -> int
