(* Synthetic app-store generator for the RQ2/RQ3/Figure-5 experiments.

   Real market APKs are not available in this environment, so we generate
   a population of apps whose *architectural statistics* (components per
   app, intent traffic, filter counts, app sizes) and *vulnerability
   rates* are calibrated so the pipeline faces workloads of the same
   shape as the paper's 4,000-app corpus.  Every app is a full IR program
   that AME must genuinely analyze — vulnerabilities are injected as
   code patterns, never as labels. *)

open Separ_android
open Separ_dalvik
module B = Builder

type vuln_kind = Hijack | Launch | Privesc | Leak

(* A store profile: how many apps, their size range and per-category
   vulnerability injection rates (calibrated against RQ2's counts). *)
type profile = {
  store : string;
  count : int;
  size_lo : int;   (* filler instructions *)
  size_hi : int;
  rate_hijack : float;
  rate_launch : float;
  rate_privesc : float;
  rate_leak : float;
}

(* 4,000 apps total: 1,600 Google Play (600 random + 1,000 popular),
   1,100 F-Droid, 1,200 Malgenome, 100 Bazaar.  Rates are tuned so the
   expected vulnerable-app counts match RQ2: ~97 hijack, ~124 launch,
   ~128 leak, ~36 privilege escalation. *)
let default_profiles =
  [
    { store = "play"; count = 1600; size_lo = 120; size_hi = 2400;
      rate_hijack = 0.0153; rate_launch = 0.0160; rate_privesc = 0.0071;
      rate_leak = 0.0274 };
    { store = "fdroid"; count = 1100; size_lo = 60; size_hi = 1200;
      rate_hijack = 0.0180; rate_launch = 0.0179; rate_privesc = 0.0081;
      rate_leak = 0.0320 };
    { store = "malgenome"; count = 1200; size_lo = 80; size_hi = 1600;
      rate_hijack = 0.0299; rate_launch = 0.0292; rate_privesc = 0.0133;
      rate_leak = 0.0526 };
    { store = "bazaar"; count = 100; size_lo = 100; size_hi = 2000;
      rate_hijack = 0.0264; rate_launch = 0.0265; rate_privesc = 0.0099;
      rate_leak = 0.0470 };
  ]

let sensitive_sources =
  [ Resource.Location; Resource.Imei; Resource.Contacts; Resource.Sms_inbox;
    Resource.Accounts; Resource.Call_log; Resource.Browser_history;
    Resource.Calendar ]

(* Filler: benign straight-line work (string constants, moves, field
   traffic, logging of untainted data) that inflates app size and keeps
   the analyses honest. *)
let emit_filler rng b n =
  for k = 1 to n / 4 do
    let r = B.const_str b (Printf.sprintf "cfg_%d" k) in
    let r2 = B.move_to_fresh b r in
    if Rng.bool rng 0.3 then B.sput b ~field:(Printf.sprintf "F%d" (k mod 7)) ~src:r2
    else ignore (B.sget b ~field:(Printf.sprintf "F%d" (k mod 7)))
  done

(* --- component templates -------------------------------------------------- *)

(* Benign UI component: local work only, plus a dead legacy method that
   no entry point calls (real apps carry unused code; only analyses with
   reachability pruning ignore it). *)
let benign_activity rng ~name ~filler =
  let m =
    B.meth ~name:"onCreate" ~params:1 (fun b ->
        emit_filler rng b filler;
        let v = B.const_str b "ready" in
        B.invoke b (Api.mref Api.c_notification "notify") [ v ])
  in
  let dead =
    B.meth ~name:"legacySync" ~params:1 (fun b ->
        let v = B.get_device_id b in
        let i = B.new_intent b in
        B.set_action b i (name ^ ".legacy");
        B.put_extra b i ~key:"dev" ~value:v;
        B.send_broadcast b i)
  in
  (Component.make ~name ~kind:Component.Activity (), B.cls ~name [ m; dead ])

(* Benign public UI entry point: exported activity with a filter. *)
let benign_public_activity rng ~name ~action ~filler =
  let m =
    B.meth ~name:"onCreate" ~params:1 (fun b ->
        emit_filler rng b filler;
        let v = B.const_str b "ready" in
        B.invoke b (Api.mref Api.c_notification "notify") [ v ])
  in
  ( Component.make ~name ~kind:Component.Activity
      ~intent_filters:
        [
          Intent_filter.make ~actions:[ action ]
            ~categories:[ "android.intent.category.DEFAULT" ] ();
        ]
      (),
    B.cls ~name [ m ] )

(* Benign intra-app messaging: explicit intents to a sibling worker. *)
let benign_pair rng ~name ~filler =
  let worker = name ^ "Worker" in
  let m =
    B.meth ~name:"onCreate" ~params:1 (fun b ->
        emit_filler rng b filler;
        let i = B.new_intent b in
        B.set_class_name b i worker;
        let v = B.const_str b "job" in
        B.put_extra b i ~key:"task" ~value:v;
        B.start_service b i;
        let i2 = B.new_intent b in
        B.set_class_name b i2 worker;
        let v2 = B.const_str b "cleanup" in
        B.put_extra b i2 ~key:"task" ~value:v2;
        B.start_service b i2;
        let i3 = B.new_intent b in
        B.set_class_name b i3 worker;
        let v3 = B.const_str b "flush" in
        B.put_extra b i3 ~key:"task" ~value:v3;
        B.start_service b i3)
  in
  let wm =
    B.meth ~name:"onStartCommand" ~params:1 (fun b ->
        let v = B.get_string_extra b 0 ~key:"task" in
        B.invoke b (Api.mref Api.c_notification "notify") [ v ])
  in
  [
    (Component.make ~name ~kind:Component.Activity (), B.cls ~name [ m ]);
    (Component.make ~name:worker ~kind:Component.Service (),
     B.cls ~name:worker [ wm ]);
  ]

(* Benign implicit intra-app messaging: the common pattern the paper's
   motivating example warns about, here with a harmless payload. *)
let benign_implicit_pair rng ~name ~action ~filler =
  let worker = name ^ "Handler" in
  let m =
    B.meth ~name:"onCreate" ~params:1 (fun b ->
        emit_filler rng b filler;
        let i = B.new_intent b in
        B.set_action b i action;
        let v = B.const_str b "refresh" in
        B.put_extra b i ~key:"op" ~value:v;
        B.start_service b i;
        let i2 = B.new_intent b in
        B.set_action b i2 action;
        let v2 = B.const_str b "sync" in
        B.put_extra b i2 ~key:"op" ~value:v2;
        B.start_service b i2)
  in
  let wm =
    (* branch on the received op but surface only constants: no data flow
       from the ICC input to any sink *)
    B.meth ~name:"onStartCommand" ~params:1 (fun b ->
        let v = B.get_string_extra b 0 ~key:"op" in
        let other = B.fresh_label b in
        let fin = B.fresh_label b in
        B.if_eqz b v other;
        let a = B.const_str b "did-refresh" in
        B.invoke b (Api.mref Api.c_notification "notify") [ a ];
        B.goto b fin;
        B.place_label b other;
        let c = B.const_str b "did-sync" in
        B.invoke b (Api.mref Api.c_notification "notify") [ c ];
        B.place_label b fin)
  in
  [
    (Component.make ~name ~kind:Component.Activity (), B.cls ~name [ m ]);
    (Component.make ~name:worker ~kind:Component.Service
       ~intent_filters:[ Intent_filter.make ~actions:[ action ] () ]
       (),
     B.cls ~name:worker [ wm ]);
  ]

(* Hijack-vulnerable: broadcasts a sensitive value with an implicit
   intent (the paper's LocationFinder anti-pattern). *)
let hijackable rng ~name ~action ~resource ~filler =
  let m =
    B.meth ~name:"onCreate" ~params:1 (fun b ->
        emit_filler rng b filler;
        let v = B.source_call b resource in
        let i = B.new_intent b in
        B.set_action b i action;
        B.put_extra b i ~key:"payload" ~value:v;
        B.start_service b i)
  in
  (Component.make ~name ~kind:Component.Activity (), B.cls ~name [ m ])

(* Launch-vulnerable: a public service whose entry point feeds incoming
   data into a no-permission sink (unauthorized task execution).  The
   log sink keeps this pattern disjoint from privilege escalation. *)
let launchable rng ~name ~action ~filler =
  let m =
    B.meth ~name:"onStartCommand" ~params:1 (fun b ->
        emit_filler rng b filler;
        let v = B.get_string_extra b 0 ~key:"cmd" in
        B.write_log b ~payload:v)
  in
  ( Component.make ~name ~kind:Component.Service
      ~intent_filters:[ Intent_filter.make ~actions:[ action ] () ]
      (),
    B.cls ~name [ m ] )

(* Privilege-escalation-vulnerable: public service exercising SEND_SMS on
   behalf of unchecked callers (the paper's MessageSender / Ermete SMS).
   The [guarded] variant adds the permission check and is not
   vulnerable. *)
let sms_service rng ~name ~action ~guarded ~filler =
  let m =
    B.meth ~name:"onStartCommand" ~params:1 (fun b ->
        emit_filler rng b filler;
        let num = B.get_string_extra b 0 ~key:"PHONE_NUM" in
        let msg = B.get_string_extra b 0 ~key:"TEXT_MSG" in
        if guarded then begin
          let res = B.check_calling_permission b Permission.send_sms in
          let deny = B.fresh_label b in
          B.if_eqz b res deny;
          B.send_text_message b ~number:num ~body:msg;
          B.place_label b deny
        end
        else B.send_text_message b ~number:num ~body:msg)
  in
  ( Component.make ~name ~kind:Component.Service
      ~intent_filters:[ Intent_filter.make ~actions:[ action ] () ]
      (),
    B.cls ~name [ m ] )

(* Leak-vulnerable: an intra-app pair — a reader that forwards a
   sensitive value by explicit intent to a private logger component that
   writes it out (the DroidBench pattern, and RQ2's OwnCloud shape).
   Explicit addressing and a private receiver keep this pattern disjoint
   from hijack and launch. *)
let leak_pair rng ~name ~resource ~filler =
  let logger = name ^ "Logger" in
  let m =
    B.meth ~name:"onCreate" ~params:1 (fun b ->
        emit_filler rng b filler;
        let v = B.source_call b resource in
        let i = B.new_intent b in
        B.set_class_name b i logger;
        B.put_extra b i ~key:"data" ~value:v;
        B.start_service b i)
  in
  let lm =
    B.meth ~name:"onStartCommand" ~params:1 (fun b ->
        let v = B.get_string_extra b 0 ~key:"data" in
        B.write_log b ~payload:v)
  in
  [
    (Component.make ~name ~kind:Component.Activity (), B.cls ~name [ m ]);
    (Component.make ~name:logger ~kind:Component.Service (),
     B.cls ~name:logger [ lm ]);
  ]

(* --- app assembly ---------------------------------------------------------- *)

type generated = {
  apk : Apk.t;
  store : string;
  injected : vuln_kind list; (* ground truth of what was injected *)
}

let generate_app rng (profile : profile) idx : generated =
  let pkg = Printf.sprintf "%s.app%04d" profile.store idx in
  let prefix = Printf.sprintf "%s_A%04d" (String.capitalize_ascii profile.store) idx in
  let injected = ref [] in
  let pieces = ref [] in
  let perms = ref [] in
  let filler () = Rng.skewed rng ~lo:(profile.size_lo / 4) ~hi:(profile.size_hi / 4) in
  let uid = ref 0 in
  let fresh_action tag =
    incr uid;
    Printf.sprintf "%s.%s.%s%d" profile.store tag prefix !uid
  in
  let n_units = 2 + Rng.int rng 5 in
  for k = 1 to n_units do
    let name = Printf.sprintf "%s_B%d" prefix k in
    let dice = Rng.float rng in
    if dice < 0.25 then
      pieces :=
        benign_public_activity rng ~name ~action:(fresh_action "main")
          ~filler:(filler ())
        :: !pieces
    else if dice < 0.40 then
      pieces := benign_activity rng ~name ~filler:(filler ()) :: !pieces
    else if dice < 0.70 then
      pieces := benign_pair rng ~name ~filler:(filler ()) @ !pieces
    else
      pieces :=
        benign_implicit_pair rng ~name ~action:(fresh_action "msg")
          ~filler:(filler ())
        @ !pieces
  done;
  if Rng.bool rng profile.rate_hijack then begin
    injected := Hijack :: !injected;
    let r = Rng.choose rng sensitive_sources in
    perms := Option.to_list (Resource.permission r) @ !perms;
    pieces :=
      hijackable rng ~name:(prefix ^ "_Hij") ~action:(fresh_action "hij")
        ~resource:r ~filler:(filler ())
      :: !pieces
  end;
  if Rng.bool rng profile.rate_launch then begin
    injected := Launch :: !injected;
    perms := Permission.write_external_storage :: !perms;
    pieces :=
      launchable rng ~name:(prefix ^ "_Exec") ~action:(fresh_action "exec")
        ~filler:(filler ())
      :: !pieces
  end;
  if Rng.bool rng profile.rate_privesc then begin
    injected := Privesc :: !injected;
    perms := Permission.send_sms :: !perms;
    pieces :=
      sms_service rng ~name:(prefix ^ "_Sms") ~action:(fresh_action "sms")
        ~guarded:false ~filler:(filler ())
      :: !pieces
  end
  else if Rng.bool rng 0.02 then begin
    (* a *guarded* SMS service: superficially similar, not vulnerable *)
    perms := Permission.send_sms :: !perms;
    pieces :=
      sms_service rng ~name:(prefix ^ "_Sms") ~action:(fresh_action "sms")
        ~guarded:true ~filler:(filler ())
      :: !pieces
  end;
  if Rng.bool rng profile.rate_leak then begin
    injected := Leak :: !injected;
    let r = Rng.choose rng sensitive_sources in
    perms := Option.to_list (Resource.permission r) @ !perms;
    pieces :=
      leak_pair rng ~name:(prefix ^ "_Rd") ~resource:r ~filler:(filler ())
      @ !pieces
  end;
  let manifest =
    Manifest.make ~package:pkg
      ~uses_permissions:(List.sort_uniq compare !perms)
      ~components:(List.map fst !pieces)
      ()
  in
  {
    apk = Apk.make ~manifest ~classes:(List.map snd !pieces);
    store = profile.store;
    injected = !injected;
  }

(* Generate a full corpus; deterministic in [seed]. *)
let generate ?(seed = 2016) ?(profiles = default_profiles) () : generated list =
  let rng = Rng.create seed in
  List.concat_map
    (fun profile ->
      List.init profile.count (fun i -> generate_app rng profile i))
    profiles

(* Partition into bundles of [size] apps, as in the paper's 80x50 setup. *)
let bundles ?(size = 50) (apps : generated list) : generated list list =
  let rec go acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
        if n + 1 = size then go (List.rev (x :: current) :: acc) [] 0 rest
        else go acc (x :: current) (n + 1) rest
  in
  go [] [] 0 apps
