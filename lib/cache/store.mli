(** Persistent content-addressed analysis cache.

    A store is a directory of tiers (subdirectories); each entry is one
    file named by the MD5 of its key.  Entries are self-validating — a
    fixed magic string, a format version, the digest of the payload, and
    the marshalled payload — so a truncated, garbled, or
    version-mismatched entry is detected on read, deleted, and reported
    as a miss; the store never raises on a corrupt entry.  Writes go
    through a temporary file in the same directory followed by an atomic
    [Sys.rename], so concurrent writers race benignly: readers see
    either no entry or a complete one.

    Eviction is size-capped LRU: hits touch the entry's access time, and
    after each write the store scans the tiers and removes
    least-recently-used entries until the total payload size is back
    under the cap. *)

type t

(** [open_ ~dir ?max_bytes ()] opens (creating directories as needed) a
    store rooted at [dir].  [max_bytes], when given, caps the total size
    of the store; the cap is enforced after each [store].

    Opening also sweeps orphaned temporary publish files: a process
    killed between writing its [".tmp.*"] file and the atomic rename
    leaks the file, which no reader ever sees and no eviction scan
    counts.  Any tmp file whose embedded owner pid is no longer alive
    (or unparseable) is deleted and counted under ["tmp_swept"];
    in-flight publishes of live processes are left untouched. *)
val open_ : dir:string -> ?max_bytes:int -> unit -> t

val dir : t -> string

(** [find t ~tier ~key] returns the cached value for [key], or [None]
    on a miss (absent, truncated, garbled, or wrong-digest entry — the
    latter kinds are deleted and counted as corrupt).  The value is
    deserialized with [Marshal]; callers must guarantee — via version
    strings folded into [key] — that the stored value has the expected
    type. *)
val find : t -> tier:string -> key:string -> 'a option

(** [store t ~tier ~key v] writes [v] under [key] atomically and then
    enforces the size cap. *)
val store : t -> tier:string -> key:string -> 'a -> unit

(** Counters accumulated by this handle since [open_], as a list sorted
    by name: per-tier ["<tier>.hits"] / ["<tier>.misses"], and global
    ["corrupt"], ["evictions"], ["stores"], ["tmp_swept"]. *)
val stats : t -> (string * int) list

(** Total payload bytes currently on disk (sum of entry file sizes). *)
val size_bytes : t -> int

(** Number of entries in [tier]. *)
val entry_count : t -> tier:string -> int
