(* Content-addressed on-disk store: see store.mli for the contract.

   Entry file layout:

     magic   8 bytes   "SEPARC1\n" — includes the format version, so a
                       layout change invalidates every old entry
     digest 16 bytes   MD5 of the payload that follows
     payload           Marshal.to_string of the cached value

   Anything that fails to parse back — short file, wrong magic, digest
   mismatch, Marshal failure — is deleted and counted as corrupt, and
   the lookup degrades to a miss so the caller recomputes and rewrites. *)

module Metrics = Separ_obs.Metrics

let c_hits = Metrics.counter "cache.hits"
let c_misses = Metrics.counter "cache.misses"
let c_stores = Metrics.counter "cache.stores"
let c_evictions = Metrics.counter "cache.evictions"
let c_corrupt = Metrics.counter "cache.corrupt"
let c_swept = Metrics.counter "cache.tmp_swept"

let magic = "SEPARC1\n"
let magic_len = String.length magic
let digest_len = 16

type t = {
  root : string;
  max_bytes : int option;
  tier_stats : (string, int ref * int ref) Hashtbl.t; (* tier -> hits, misses *)
  mutable stores : int;
  mutable evictions : int;
  mutable corrupt : int;
  mutable tmp_swept : int;
}

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      (try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go path

let remove_noerr path = try Sys.remove path with Sys_error _ -> ()

(* Temporary publish files are named ".tmp.<entry>.<pid>".  A process
   killed between creating one and the atomic rename leaks it forever:
   nothing ever reads it, and nothing would ever delete it.  On open we
   sweep every tmp file whose owning pid is gone (or unparseable);
   in-flight publishes of live processes are left alone. *)
let tmp_prefix = ".tmp."

let is_tmp_name f =
  String.length f >= String.length tmp_prefix
  && String.sub f 0 (String.length tmp_prefix) = tmp_prefix

let tmp_owner_pid f =
  match String.rindex_opt f '.' with
  | None -> None
  | Some i ->
      int_of_string_opt (String.sub f (i + 1) (String.length f - i - 1))

let pid_alive pid =
  pid > 0
  &&
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.EPERM, _, _) -> true (* exists, not ours *)
  | exception Unix.Unix_error _ -> false

let sweep_orphan_tmp t =
  if Sys.file_exists t.root && Sys.is_directory t.root then
    Array.iter
      (fun tier ->
        let tdir = Filename.concat t.root tier in
        if Sys.is_directory tdir then
          Array.iter
            (fun f ->
              if is_tmp_name f then
                let live =
                  match tmp_owner_pid f with
                  | Some pid -> pid_alive pid
                  | None -> false
                in
                if not live then begin
                  remove_noerr (Filename.concat tdir f);
                  t.tmp_swept <- t.tmp_swept + 1;
                  Metrics.incr c_swept
                end)
            (Sys.readdir tdir))
      (Sys.readdir t.root)

let open_ ~dir ?max_bytes () =
  mkdir_p dir;
  let t =
    { root = dir; max_bytes; tier_stats = Hashtbl.create 4;
      stores = 0; evictions = 0; corrupt = 0; tmp_swept = 0 }
  in
  sweep_orphan_tmp t;
  t

let dir t = t.root

let tier_counts t tier =
  match Hashtbl.find_opt t.tier_stats tier with
  | Some c -> c
  | None ->
      let c = (ref 0, ref 0) in
      Hashtbl.add t.tier_stats tier c;
      c

let entry_path t ~tier ~key =
  Filename.concat (Filename.concat t.root tier) (Digest.to_hex (Digest.string key))

(* Every regular non-temporary file in every tier directory.  The
   dot-prefix skip keeps in-flight ".tmp.*" publish files out of the
   size accounting and the eviction scan. *)
let entries t =
  let acc = ref [] in
  if Sys.file_exists t.root && Sys.is_directory t.root then
    Array.iter
      (fun tier ->
        let tdir = Filename.concat t.root tier in
        if Sys.is_directory tdir then
          Array.iter
            (fun f ->
              if not (String.length f > 0 && f.[0] = '.') then
                let path = Filename.concat tdir f in
                match Unix.stat path with
                | { Unix.st_kind = Unix.S_REG; st_size; st_atime; _ } ->
                    acc := (path, st_size, st_atime) :: !acc
                | _ | (exception Unix.Unix_error _) -> ())
            (Sys.readdir tdir))
      (Sys.readdir t.root);
  !acc

let size_bytes t =
  List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 (entries t)

let entry_count t ~tier =
  let tdir = Filename.concat t.root tier in
  if Sys.file_exists tdir && Sys.is_directory tdir then
    Array.fold_left
      (fun acc f -> if String.length f > 0 && f.[0] = '.' then acc else acc + 1)
      0 (Sys.readdir tdir)
  else 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      really_input_string ic (in_channel_length ic))

(* Validate an entry file; [Some payload] iff it parses end to end. *)
let read_entry path =
  match read_file path with
  | exception Sys_error _ -> None
  | raw ->
      if String.length raw < magic_len + digest_len then None
      else if String.sub raw 0 magic_len <> magic then None
      else
        let stored = String.sub raw magic_len digest_len in
        let payload =
          String.sub raw (magic_len + digest_len)
            (String.length raw - magic_len - digest_len)
        in
        if Digest.string payload <> stored then None else Some payload

let find t ~tier ~key =
  let hits, misses = tier_counts t tier in
  let path = entry_path t ~tier ~key in
  let miss ~corrupt =
    if corrupt then begin
      t.corrupt <- t.corrupt + 1;
      Metrics.incr c_corrupt;
      remove_noerr path
    end;
    incr misses;
    Metrics.incr c_misses;
    None
  in
  if not (Sys.file_exists path) then miss ~corrupt:false
  else
    match read_entry path with
    | None -> miss ~corrupt:true
    | Some payload -> (
        match Marshal.from_string payload 0 with
        | exception _ -> miss ~corrupt:true
        | v ->
            (* LRU bookkeeping: refresh the access time on a hit while
               preserving the modification (publish) time — [utimes p 0. 0.]
               hits the both-zero special case that resets {e both} to
               now, clobbering mtime on every read. *)
            (try
               let st = Unix.stat path in
               let atime = Unix.gettimeofday () in
               (* dodge the both-zero special case of [utimes] *)
               let atime =
                 if atime = 0.0 && st.Unix.st_mtime = 0.0 then 1e-6 else atime
               in
               Unix.utimes path atime st.Unix.st_mtime
             with Unix.Unix_error _ -> ());
            incr hits;
            Metrics.incr c_hits;
            Some v)

let evict_to_cap t =
  match t.max_bytes with
  | None -> ()
  | Some cap ->
      let es = entries t in
      let total = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 es in
      if total > cap then begin
        (* Oldest access time first; path as a deterministic tie-break. *)
        let es =
          List.sort
            (fun (p1, _, a1) (p2, _, a2) ->
              match compare (a1 : float) a2 with
              | 0 -> compare (p1 : string) p2
              | c -> c)
            es
        in
        let remaining = ref total in
        List.iter
          (fun (path, sz, _) ->
            if !remaining > cap then begin
              remove_noerr path;
              remaining := !remaining - sz;
              t.evictions <- t.evictions + 1;
              Metrics.incr c_evictions
            end)
          es
      end

let store t ~tier ~key v =
  let tdir = Filename.concat t.root tier in
  mkdir_p tdir;
  let path = entry_path t ~tier ~key in
  let payload = Marshal.to_string v [] in
  let tmp =
    Filename.concat tdir
      (Printf.sprintf ".tmp.%s.%d" (Filename.basename path) (Unix.getpid ()))
  in
  (try
     let oc = open_out_bin tmp in
     Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
         output_string oc magic;
         output_string oc (Digest.string payload);
         output_string oc payload);
     (* Atomic publish: a concurrent reader sees the old entry, no
        entry, or the complete new one — never a partial write. *)
     Sys.rename tmp path
   with Sys_error _ -> remove_noerr tmp);
  t.stores <- t.stores + 1;
  Metrics.incr c_stores;
  evict_to_cap t

let stats t =
  let per_tier =
    Hashtbl.fold
      (fun tier (hits, misses) acc ->
        (tier ^ ".hits", !hits) :: (tier ^ ".misses", !misses) :: acc)
      t.tier_stats []
  in
  List.sort
    (fun (a, _) (b, _) -> compare (a : string) b)
    (("corrupt", t.corrupt) :: ("evictions", t.evictions)
     :: ("stores", t.stores) :: ("tmp_swept", t.tmp_swept) :: per_tier)
