(** The finite universe of atoms a bounded relational problem ranges
    over.  Atoms are interned strings addressed by dense index. *)

type t

(** Build a universe from distinct atom names.
    @raise Invalid_argument on duplicates. *)
val of_atoms : string list -> t

val size : t -> int

(** Name of the atom at an index. *)
val name : t -> int -> string

(** Index of a named atom.
    @raise Invalid_argument if unknown. *)
val atom : t -> string -> int

val mem : t -> string -> bool
val pp : Format.formatter -> t -> unit
