(* Hash-consed boolean circuits with constant folding.  The translation
   from relational logic builds a circuit; {!to_solver} then performs a
   Tseitin encoding into the CDCL solver.  Hash-consing and the local
   simplifications keep the encoding close to what a careful hand
   translation would produce: entries fixed by exact bounds fold away to
   constants and only genuinely unknown tuples reach the solver. *)

type gate = { id : int; node : node }

and node =
  | True
  | False
  | Lit of int          (* a solver variable, positive *)
  | Not of gate
  | And of gate * gate
  | Or of gate * gate

type t = {
  table : (int * int * int, gate) Hashtbl.t; (* structural hash-consing *)
  mutable next_id : int;
  true_g : gate;
  false_g : gate;
  mutable hc_hits : int;   (* hash-cons lookups answered from the table *)
  mutable hc_misses : int; (* lookups that built a fresh gate *)
}

let create () =
  let true_g = { id = 0; node = True } in
  let false_g = { id = 1; node = False } in
  {
    table = Hashtbl.create 1024;
    next_id = 2;
    true_g;
    false_g;
    hc_hits = 0;
    hc_misses = 0;
  }

let tt t = t.true_g
let ff t = t.false_g

let key node =
  match node with
  | True -> (0, 0, 0)
  | False -> (1, 0, 0)
  | Lit v -> (2, v, 0)
  | Not g -> (3, g.id, 0)
  | And (a, b) -> (4, a.id, b.id)
  | Or (a, b) -> (5, a.id, b.id)

let intern t node =
  let k = key node in
  match Hashtbl.find_opt t.table k with
  | Some g ->
      t.hc_hits <- t.hc_hits + 1;
      g
  | None ->
      t.hc_misses <- t.hc_misses + 1;
      let g = { id = t.next_id; node } in
      t.next_id <- t.next_id + 1;
      Hashtbl.add t.table k g;
      g

(* (hits, misses) of the hash-consing table since creation. *)
let hashcons_counts t = (t.hc_hits, t.hc_misses)

let lit t v =
  if v < 1 then invalid_arg "Circuit.lit: non-positive variable";
  intern t (Lit v)

let not_ t g =
  match g.node with
  | True -> t.false_g
  | False -> t.true_g
  | Not g' -> g'
  | _ -> intern t (Not g)

let and_ t a b =
  match (a.node, b.node) with
  | True, _ -> b
  | _, True -> a
  | False, _ | _, False -> t.false_g
  | _ ->
      if a.id = b.id then a
      else if (match a.node with Not x -> x.id = b.id | _ -> false)
              || (match b.node with Not x -> x.id = a.id | _ -> false)
      then t.false_g
      else
        let a, b = if a.id <= b.id then (a, b) else (b, a) in
        intern t (And (a, b))

let or_ t a b =
  match (a.node, b.node) with
  | False, _ -> b
  | _, False -> a
  | True, _ | _, True -> t.true_g
  | _ ->
      if a.id = b.id then a
      else if (match a.node with Not x -> x.id = b.id | _ -> false)
              || (match b.node with Not x -> x.id = a.id | _ -> false)
      then t.true_g
      else
        let a, b = if a.id <= b.id then (a, b) else (b, a) in
        intern t (Or (a, b))

let implies t a b = or_ t (not_ t a) b
let iff t a b = and_ t (implies t a b) (implies t b a)
let big_and t gs = List.fold_left (and_ t) t.true_g gs
let big_or t gs = List.fold_left (or_ t) t.false_g gs

let is_true g = g.node = True
let is_false g = g.node = False

(* Tseitin encoding.  Returns the signed solver literal equivalent to the
   gate; emits defining clauses into [solver] as needed.  [cache] maps
   gate ids to literals across calls for incremental use. *)
type encoder = {
  circuit : t;
  solver : Separ_sat.Solver.t;
  cache : (int, int) Hashtbl.t;
  mutable const_var : int option; (* solver var forced true *)
}

let encoder circuit solver =
  { circuit; solver; cache = Hashtbl.create 1024; const_var = None }

let const_true enc =
  match enc.const_var with
  | Some v -> v
  | None ->
      let v = Separ_sat.Solver.new_var enc.solver in
      Separ_sat.Solver.add_clause enc.solver [ v ];
      enc.const_var <- Some v;
      v

let rec encode enc g =
  match Hashtbl.find_opt enc.cache g.id with
  | Some l -> l
  | None ->
      let l =
        match g.node with
        | True -> const_true enc
        | False -> -const_true enc
        | Lit v -> v
        | Not a -> -encode enc a
        | And (a, b) ->
            let la = encode enc a and lb = encode enc b in
            let v = Separ_sat.Solver.new_var enc.solver in
            Separ_sat.Solver.add_clause_arr enc.solver [| -v; la |];
            Separ_sat.Solver.add_clause_arr enc.solver [| -v; lb |];
            Separ_sat.Solver.add_clause_arr enc.solver [| v; -la; -lb |];
            v
        | Or (a, b) ->
            let la = encode enc a and lb = encode enc b in
            let v = Separ_sat.Solver.new_var enc.solver in
            Separ_sat.Solver.add_clause_arr enc.solver [| -v; la; lb |];
            Separ_sat.Solver.add_clause_arr enc.solver [| v; -la |];
            Separ_sat.Solver.add_clause_arr enc.solver [| v; -lb |];
            v
      in
      Hashtbl.add enc.cache g.id l;
      l

(* Assert a gate as a top-level constraint. *)
let assert_gate enc g =
  match g.node with
  | True -> ()
  | False -> Separ_sat.Solver.add_clause enc.solver []
  | _ -> Separ_sat.Solver.add_clause enc.solver [ encode enc g ]

(* Assert a gate guarded by an activation literal: the constraint holds
   only while [guard] is assumed.  Tseitin definitions emitted by
   [encode] stay unguarded — they merely define fresh variables and are
   satisfiable under any assignment of the inputs — so only the top-level
   assertion clause carries the guard, and gate encodings remain shared
   between guarded and unguarded users. *)
let assert_gate_under enc ~guard g =
  match g.node with
  | True -> ()
  | False -> Separ_sat.Solver.add_clause enc.solver [ -guard ]
  | _ -> Separ_sat.Solver.add_clause enc.solver [ -guard; encode enc g ]

(* Number of distinct gates created so far (translation size metric). *)
let gate_count t = t.next_id
