(* Abstract syntax of the relational logic: first-order logic with
   relational expressions, quantifiers over unary domains, multiplicity
   constraints, and transitive closure — the fragment of Alloy that
   SEPAR's specifications use. *)

type expr =
  | Rel of Relation.t
  | Var of string                  (* bound by a quantifier; arity 1 *)
  | Univ                           (* all atoms *)
  | None_e                         (* empty unary relation *)
  | Iden                           (* binary identity *)
  | Join of expr * expr            (* a.b *)
  | Product of expr * expr         (* a -> b *)
  | Union of expr * expr           (* a + b *)
  | Inter of expr * expr           (* a & b *)
  | Diff of expr * expr            (* a - b *)
  | Transpose of expr              (* ~a *)
  | Closure of expr                (* ^a *)
  | RClosure of expr               (* *a *)

type mult = Mno | Msome | Mlone | Mone

type formula =
  | True_f
  | False_f
  | Subset of expr * expr          (* a in b *)
  | Eq of expr * expr              (* a = b *)
  | Mult of mult * expr            (* no/some/lone/one a *)
  | Not_f of formula
  | And_f of formula * formula
  | Or_f of formula * formula
  | Implies of formula * formula
  | Iff of formula * formula
  | All of string * expr * formula    (* all v: dom | f *)
  | Exists of string * expr * formula (* some v: dom | f *)

(* Arity computation; raises on ill-formed expressions. *)
exception Arity_error of string

let rec arity = function
  | Rel r -> Relation.arity r
  | Var _ -> 1
  | Univ | None_e -> 1
  | Iden -> 2
  | Join (a, b) ->
      let n = arity a + arity b - 2 in
      if n < 1 then raise (Arity_error "join yields arity < 1");
      n
  | Product (a, b) -> arity a + arity b
  | Union (a, b) | Inter (a, b) | Diff (a, b) ->
      let m = arity a and n = arity b in
      if m <> n then raise (Arity_error "set op on different arities");
      m
  | Transpose a ->
      if arity a <> 2 then raise (Arity_error "transpose of non-binary");
      2
  | Closure a | RClosure a ->
      if arity a <> 2 then raise (Arity_error "closure of non-binary");
      2

let rec pp_expr ppf = function
  | Rel r -> Relation.pp ppf r
  | Var v -> Fmt.string ppf v
  | Univ -> Fmt.string ppf "univ"
  | None_e -> Fmt.string ppf "none"
  | Iden -> Fmt.string ppf "iden"
  | Join (a, b) -> Fmt.pf ppf "(%a.%a)" pp_expr a pp_expr b
  | Product (a, b) -> Fmt.pf ppf "(%a->%a)" pp_expr a pp_expr b
  | Union (a, b) -> Fmt.pf ppf "(%a + %a)" pp_expr a pp_expr b
  | Inter (a, b) -> Fmt.pf ppf "(%a & %a)" pp_expr a pp_expr b
  | Diff (a, b) -> Fmt.pf ppf "(%a - %a)" pp_expr a pp_expr b
  | Transpose a -> Fmt.pf ppf "~%a" pp_expr a
  | Closure a -> Fmt.pf ppf "^%a" pp_expr a
  | RClosure a -> Fmt.pf ppf "*%a" pp_expr a

let pp_mult ppf = function
  | Mno -> Fmt.string ppf "no"
  | Msome -> Fmt.string ppf "some"
  | Mlone -> Fmt.string ppf "lone"
  | Mone -> Fmt.string ppf "one"

let rec pp_formula ppf = function
  | True_f -> Fmt.string ppf "true"
  | False_f -> Fmt.string ppf "false"
  | Subset (a, b) -> Fmt.pf ppf "(%a in %a)" pp_expr a pp_expr b
  | Eq (a, b) -> Fmt.pf ppf "(%a = %a)" pp_expr a pp_expr b
  | Mult (m, a) -> Fmt.pf ppf "(%a %a)" pp_mult m pp_expr a
  | Not_f f -> Fmt.pf ppf "!%a" pp_formula f
  | And_f (a, b) -> Fmt.pf ppf "(%a && %a)" pp_formula a pp_formula b
  | Or_f (a, b) -> Fmt.pf ppf "(%a || %a)" pp_formula a pp_formula b
  | Implies (a, b) -> Fmt.pf ppf "(%a => %a)" pp_formula a pp_formula b
  | Iff (a, b) -> Fmt.pf ppf "(%a <=> %a)" pp_formula a pp_formula b
  | All (v, dom, f) ->
      Fmt.pf ppf "(all %s: %a | %a)" v pp_expr dom pp_formula f
  | Exists (v, dom, f) ->
      Fmt.pf ppf "(some %s: %a | %a)" v pp_expr dom pp_formula f

(* Canonical, alpha-invariant rendering.  [Dsl.fresh] draws quantifier
   variable names from a process-global counter, so the same formula
   built twice (or in two processes) prints differently under
   [pp_formula].  Cache fingerprints need a stable text, so bound
   variables are renamed to their binding depth ("v0", "v1", ...) and
   relations print as name/arity (ids are process-global too). *)

let canonical_formula_string formula =
  let buf = Buffer.create 256 in
  let add = Buffer.add_string buf in
  let rec expr env = function
    | Rel r -> add (Printf.sprintf "%s/%d" (Relation.name r) (Relation.arity r))
    | Var v -> (
        match List.assoc_opt v env with
        | Some canon -> add canon
        | None -> add v)
    | Univ -> add "univ"
    | None_e -> add "none"
    | Iden -> add "iden"
    | Join (a, b) -> binop env "." a b
    | Product (a, b) -> binop env "->" a b
    | Union (a, b) -> binop env "+" a b
    | Inter (a, b) -> binop env "&" a b
    | Diff (a, b) -> binop env "-" a b
    | Transpose a -> add "~"; paren env a
    | Closure a -> add "^"; paren env a
    | RClosure a -> add "*"; paren env a
  and binop env op a b = add "("; expr env a; add op; expr env b; add ")"
  and paren env a = add "("; expr env a; add ")" in
  let rec go env depth = function
    | True_f -> add "true"
    | False_f -> add "false"
    | Subset (a, b) -> add "(in "; expr env a; add " "; expr env b; add ")"
    | Eq (a, b) -> add "(= "; expr env a; add " "; expr env b; add ")"
    | Mult (m, a) ->
        add
          (match m with
          | Mno -> "(no "
          | Msome -> "(some "
          | Mlone -> "(lone "
          | Mone -> "(one ");
        expr env a;
        add ")"
    | Not_f f -> add "(! "; go env depth f; add ")"
    | And_f (a, b) -> fbin env depth "&&" a b
    | Or_f (a, b) -> fbin env depth "||" a b
    | Implies (a, b) -> fbin env depth "=>" a b
    | Iff (a, b) -> fbin env depth "<=>" a b
    | All (v, dom, f) -> quant env depth "all" v dom f
    | Exists (v, dom, f) -> quant env depth "some" v dom f
  and fbin env depth op a b =
    add "("; add op; add " "; go env depth a; add " "; go env depth b; add ")"
  and quant env depth q v dom f =
    let canon = Printf.sprintf "v%d" depth in
    add "("; add q; add " "; add canon; add ": ";
    expr env dom;
    add " | ";
    go ((v, canon) :: env) (depth + 1) f;
    add ")"
  in
  go [] 0 formula;
  Buffer.contents buf

(* Relations mentioned by a formula, including those inside quantifier
   domains; [`Univ] is reported separately so callers that slice state
   by relation support can fall back to "everything" when the formula
   touches the whole universe. *)
let support formula =
  let rels = ref [] in
  let univ = ref false in
  let rec expr = function
    | Rel r -> if not (List.memq r !rels) then rels := r :: !rels
    | Var _ | None_e -> ()
    | Univ | Iden -> univ := true
    | Join (a, b) | Product (a, b) | Union (a, b) | Inter (a, b) | Diff (a, b)
      ->
        expr a; expr b
    | Transpose a | Closure a | RClosure a -> expr a
  in
  let rec go = function
    | True_f | False_f -> ()
    | Subset (a, b) | Eq (a, b) -> expr a; expr b
    | Mult (_, a) -> expr a
    | Not_f f -> go f
    | And_f (a, b) | Or_f (a, b) | Implies (a, b) | Iff (a, b) -> go a; go b
    | All (_, dom, f) | Exists (_, dom, f) -> expr dom; go f
  in
  go formula;
  (List.rev !rels, !univ)

(* A readable embedded DSL for writing specifications.  Quantifiers use
   higher-order abstract syntax with generated variable names. *)
module Dsl = struct
  let fresh_counter = ref 0

  let fresh base =
    incr fresh_counter;
    Printf.sprintf "%s_%d" base !fresh_counter

  let rel r = Rel r
  let ( |. ) a b = Join (a, b)        (* navigation: x |. field *)
  let ( --> ) a b = Product (a, b)
  let ( +: ) a b = Union (a, b)
  let ( &: ) a b = Inter (a, b)
  let ( -: ) a b = Diff (a, b)
  let tilde a = Transpose a
  let closure a = Closure a

  let ( <: ) a b = Subset (a, b)       (* a in b *)
  let ( =: ) a b = Eq (a, b)
  let no a = Mult (Mno, a)
  let some a = Mult (Msome, a)
  let lone a = Mult (Mlone, a)
  let one a = Mult (Mone, a)
  let not_ f = Not_f f
  let ( &&: ) a b = And_f (a, b)
  let ( ||: ) a b = Or_f (a, b)
  let ( ==>: ) a b = Implies (a, b)
  let ( <=>: ) a b = Iff (a, b)

  let conj = function [] -> True_f | f :: fs -> List.fold_left ( &&: ) f fs
  let disj = function [] -> False_f | f :: fs -> List.fold_left ( ||: ) f fs

  let all ?(base = "x") dom f =
    let v = fresh base in
    All (v, dom, f (Var v))

  let exists ?(base = "x") dom f =
    let v = fresh base in
    Exists (v, dom, f (Var v))

  (* all disj a, b: dom | f  — the two bound atoms are distinct. *)
  let exists2_disj ?(base = "x") dom f =
    exists ~base dom (fun a ->
        exists ~base dom (fun b -> Not_f (Eq (a, b)) &&: f a b))
end
