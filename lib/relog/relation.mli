(** A relation declaration: name and arity.  Identity is nominal (each
    [make] yields a distinct relation). *)

type t

(** @raise Invalid_argument if arity < 1. *)
val make : string -> int -> t

val name : t -> string
val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
