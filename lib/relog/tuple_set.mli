(** Sets of constant tuples over a universe: sorted, deduplicated, with
    the full relational algebra.  The semantic foundation of both bound
    construction and the ground evaluator. *)

type tuple = int array

type t

(** @raise Invalid_argument on arity mismatches. *)
val of_list : int -> tuple list -> t

val empty : int -> t
val arity : t -> int
val size : t -> int
val is_empty : t -> bool
val to_list : t -> tuple list
val iter : (tuple -> unit) -> t -> unit
val mem : tuple -> t -> bool
val subset : t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool

(** Cartesian product: arities add. *)
val product : t -> t -> t

(** Relational join: drops the matching inner column.
    @raise Invalid_argument if the result would have arity 0. *)
val join : t -> t -> t

(** @raise Invalid_argument unless binary. *)
val transpose : t -> t

(** Transitive closure.
    @raise Invalid_argument unless binary. *)
val closure : t -> t

(** All atoms of an [n]-atom universe, as a unary set. *)
val univ : int -> t

(** The binary identity over an [n]-atom universe. *)
val iden : int -> t

val singleton : tuple -> t
val pp : (int -> string) -> Format.formatter -> t -> unit
