(* A relation declaration: a name and an arity.  Identity is by the
   unique [id], so two relations with the same name are distinct. *)

type t = { id : int; name : string; arity : int }

let counter = ref 0

let make name arity =
  if arity < 1 then invalid_arg "Relation.make: arity must be >= 1";
  incr counter;
  { id = !counter; name; arity }

let name t = t.name
let arity t = t.arity
let compare a b = compare a.id b.id
let equal a b = a.id = b.id
let pp ppf t = Fmt.string ppf t.name

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
