(** Bounds assign each relation a lower bound (tuples it must contain)
    and an upper bound (tuples it may contain).  Exact bounds encode the
    known parts of the problem; the lower/upper gap is the search
    space. *)

type t

val create : Universe.t -> t
val universe : t -> Universe.t

(** Bound a relation.
    @raise Invalid_argument on arity mismatch or [lower] not within
    [upper]. *)
val bound : t -> Relation.t -> lower:Tuple_set.t -> upper:Tuple_set.t -> unit

(** Exact bound: lower = upper. *)
val bound_exact : t -> Relation.t -> Tuple_set.t -> unit

(** The (lower, upper) pair of a relation.
    @raise Invalid_argument if the relation is unbound. *)
val get : t -> Relation.t -> Tuple_set.t * Tuple_set.t

val relations : t -> Relation.t list

(** Build a tuple set from atom-name tuples; arity taken from the first
    tuple. *)
val tuples : t -> string list list -> Tuple_set.t

(** As {!tuples} with an explicit arity (required for empty lists). *)
val tuples_a : t -> int -> string list list -> Tuple_set.t
