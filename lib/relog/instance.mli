(** A satisfying instance: a concrete tuple set for every relation. *)

type t

val make : Universe.t -> (Relation.t * Tuple_set.t) list -> t
val universe : t -> Universe.t

(** Value of a relation (empty if unbound). *)
val value : t -> Relation.t -> Tuple_set.t

val relations : t -> Relation.t list

(** Atom names in a unary relation. *)
val atoms_of : t -> Relation.t -> string list

(** Name pairs in a binary relation. *)
val pairs_of : t -> Relation.t -> (string * string) list

(** The unary image of a named atom under a binary relation. *)
val image : t -> Relation.t -> string -> string list

val pp : Format.formatter -> t -> unit
