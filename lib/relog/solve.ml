(* Orchestration: problem = universe + bounds + constraints.  Translation
   produces CNF; the CDCL solver searches; satisfying assignments are
   decoded into instances.  Minimal-scenario generation (the role of
   Aluminum in the paper) shrinks the set of free tuples before decoding,
   and enumeration blocks supersets of already-seen scenarios.

   Two ways to build a session:

   - [prepare]: fresh solver, full translation — the from-scratch path.
   - [prepare_base] + [attach]: one shared solver/translation per bundle
     (the "base"), with each signature's delta formulas asserted under an
     activation literal and solved as an assumption, so the base encoding
     is paid once and learnt clauses persist across signatures.

   Both paths produce identical instances: minimization is the canonical
   lexicographic search of [Models.minimize_lex], whose answer depends
   only on the constraint set and the soft-variable order — never on
   solver search state — so a shared, learnt-clause-laden base solver
   and a fresh one decode the same scenarios in the same order. *)

type problem = {
  bounds : Bounds.t;
  constraints : Ast.formula list;
}

type stats = {
  translation_ms : float;
  solving_ms : float;
  n_vars : int;
  n_clauses : int;
  n_gates : int;
  (* what this session added on top of what its solver already held;
     for a [prepare] session the deltas are the full counts *)
  delta_vars : int;
  delta_clauses : int;
  delta_gates : int;
  (* sharing during this session's translation *)
  cache_hits : int;   (* translate expression-cache *)
  cache_misses : int;
  hc_hits : int;      (* circuit hash-consing *)
  hc_misses : int;
  (* carried over from earlier sessions on the same solver *)
  reused_clauses : int;
  reused_learnts : int;
  solver : Separ_sat.Solver.stats_record;
}

type session = {
  problem : problem;
  translation : Translate.t;
  solver : Separ_sat.Solver.t;
  soft : int list; (* free tuple variables, for minimization/blocking *)
  act : int option; (* activation literal guarding this session's delta *)
  decode_rels : Relation.t list; (* relations this session decodes *)
  budget : Separ_sat.Solver.budget; (* for the whole session *)
  conflicts0 : int; (* solver conflicts when the session began *)
  started : float; (* session epoch, for the wall-clock budget *)
  mutable stats : stats;
}

(* The enumeration cap shared by [enumerate], ASE's per-signature loop
   and the CLI's [--limit] default — one constant, not three copies. *)
let default_enum_limit = 16

(* What is left of the session budget right now: the conflict allowance
   shrinks with every conflict the session's solver has spent since the
   session began (main solves and minimization alike; on a shared base
   solver, earlier sessions' conflicts don't count), the time allowance
   with the clock. *)
let remaining_budget session =
  {
    Separ_sat.Solver.b_max_conflicts =
      Option.map
        (fun c ->
          c - (Separ_sat.Solver.n_conflicts session.solver
               - session.conflicts0))
        session.budget.Separ_sat.Solver.b_max_conflicts;
    b_max_time_ms =
      Option.map
        (fun ms -> ms -. ((Unix.gettimeofday () -. session.started) *. 1000.0))
        session.budget.Separ_sat.Solver.b_max_time_ms;
  }

(* The assumptions every solve of this session carries: the activation
   literal of an attached session, nothing for a from-scratch one. *)
let session_assumptions session =
  match session.act with Some a -> [ a ] | None -> []

module Trace = Separ_obs.Trace
module Metrics = Separ_obs.Metrics

(* Telemetry handles (lookup-once; see lib/obs/metrics.ml). *)
let g_gates = Metrics.gauge "relog.circuit_gates"
let g_cnf_vars = Metrics.gauge "relog.cnf_vars"
let g_cnf_clauses = Metrics.gauge "relog.cnf_clauses"
let c_translations = Metrics.counter "relog.translations"
let c_attaches = Metrics.counter "relog.attaches"
let c_hc_hits = Metrics.counter "relog.hashcons_hits"
let c_hc_misses = Metrics.counter "relog.hashcons_misses"
let c_cache_hits = Metrics.counter "relog.translate_cache_hits"
let c_cache_misses = Metrics.counter "relog.translate_cache_misses"

(* A snapshot of the sharing counters, for delta accounting around one
   translation phase. *)
let sharing_counts translation =
  let hc_h, hc_m =
    Circuit.hashcons_counts translation.Translate.circuit
  in
  let tc_h, tc_m = Translate.cache_counts translation in
  (hc_h, hc_m, tc_h, tc_m)

let publish_sharing ~before ~after =
  let hc_h0, hc_m0, tc_h0, tc_m0 = before
  and hc_h1, hc_m1, tc_h1, tc_m1 = after in
  if Metrics.is_enabled () then begin
    Metrics.add c_hc_hits (hc_h1 - hc_h0);
    Metrics.add c_hc_misses (hc_m1 - hc_m0);
    Metrics.add c_cache_hits (tc_h1 - tc_h0);
    Metrics.add c_cache_misses (tc_m1 - tc_m0)
  end

(* Deterministic soft-variable order: relations in bound (id) order, each
   relation's free tuples in tuple order.  Both session flavours build
   their soft list this way, so position [i] denotes the same
   (relation, tuple) choice in either — the invariant the canonical
   minimization's cross-path determinism rests on. *)
let soft_of_rels translation rels =
  List.concat_map (Translate.soft_vars_of translation) rels

(* Translation proper, shared by [prepare] and [prepare_base]: bound
   matrices, formula -> circuit, Tseitin encoding, with per-phase trace
   spans. *)
let translate_into solver problem =
  Trace.timed "relog.translate" (fun () ->
      let tr =
        Trace.with_span "relog.bounds" (fun () ->
            Translate.create problem.bounds solver)
      in
      let gates =
        Trace.with_span "relog.circuit" (fun () ->
            List.map (Translate.gate_of_formula tr) problem.constraints)
      in
      Trace.with_span "relog.tseitin" (fun () ->
          List.iter (Translate.assert_gate tr) gates);
      Trace.add_attr "gates"
        (Trace.Int (Circuit.gate_count tr.Translate.circuit));
      Trace.add_attr "cnf_vars"
        (Trace.Int (Separ_sat.Solver.n_vars solver));
      Trace.add_attr "cnf_clauses"
        (Trace.Int (Separ_sat.Solver.n_clauses solver));
      tr)

let publish_sizes translation solver =
  Metrics.set g_gates
    (float_of_int (Circuit.gate_count translation.Translate.circuit));
  Metrics.set g_cnf_vars (float_of_int (Separ_sat.Solver.n_vars solver));
  Metrics.set g_cnf_clauses
    (float_of_int (Separ_sat.Solver.n_clauses solver))

(* Whether [prepare] runs the SatELite-style preprocessing pass at the
   translate -> CNF handoff.  On by default; the toggle exists so parity
   gates (and curious benchmarks) can run the raw kernel.  Only the
   from-scratch path preprocesses: a shared base solver's Tseitin
   definitions are hash-consed across attaches, so a later delta may
   name a variable the pass would have eliminated. *)
let preprocessing = ref true
let set_preprocessing b = preprocessing := b

(* Translation is traced in its three phases: bound-matrix allocation
   (one solver variable per free tuple), formula -> circuit evaluation,
   and Tseitin encoding of the asserted gates into CNF.  [budget], if
   given, bounds the *whole session*: conflicts and wall-clock time are
   metered across every subsequent solve (including minimization), and a
   solve past the budget answers [Unknown]. *)
let prepare ?(budget = Separ_sat.Solver.no_budget) problem =
  let solver = Separ_sat.Solver.create () in
  let translation, translation_ms = translate_into solver problem in
  Metrics.incr c_translations;
  publish_sharing
    ~before:(0, 0, 0, 0)
    ~after:(sharing_counts translation);
  publish_sizes translation solver;
  let decode_rels = Bounds.relations problem.bounds in
  let soft = soft_of_rels translation decode_rels in
  (* Snapshot the as-translated sizes first: the deltas report encoding
     work (Table II construction), which is paid in full whether or not
     the preprocessing pass below shrinks the live clause database. *)
  let translated_vars = Separ_sat.Solver.n_vars solver in
  let translated_clauses = Separ_sat.Solver.n_clauses solver in
  (* Preprocess at the handoff: soft (decode/minimization) variables are
     frozen so blocking clauses, [minimize_lex] assumptions and instance
     decoding keep their meaning; eliminated Tseitin variables are
     reconstructed transparently when the model is read. *)
  if !preprocessing then
    Trace.with_span "sat.preprocess" (fun () ->
        Separ_sat.Solver.preprocess ~frozen:soft solver);
  let hc_hits, hc_misses = Circuit.hashcons_counts translation.Translate.circuit in
  let cache_hits, cache_misses = Translate.cache_counts translation in
  (* ... while n_vars/n_clauses describe the live formula (they are
     refreshed as enumeration grows it, so they must start from the
     post-preprocessing state, not the larger as-translated one). *)
  let n_vars = Separ_sat.Solver.n_vars solver in
  let n_clauses = Separ_sat.Solver.n_clauses solver in
  let n_gates = Circuit.gate_count translation.Translate.circuit in
  {
    problem;
    translation;
    solver;
    soft;
    act = None;
    decode_rels;
    budget;
    conflicts0 = Separ_sat.Solver.n_conflicts solver;
    started = Unix.gettimeofday ();
    stats =
      {
        translation_ms;
        solving_ms = 0.0;
        n_vars;
        n_clauses;
        n_gates;
        delta_vars = translated_vars;
        delta_clauses = translated_clauses;
        delta_gates = n_gates;
        cache_hits;
        cache_misses;
        hc_hits;
        hc_misses;
        reused_clauses = 0;
        reused_learnts = 0;
        solver = Separ_sat.Solver.stats_record solver;
      };
  }

(* --- shared base sessions (the incremental path) -------------------------- *)

(* One solver + translation per bundle, holding the bundle-common bounds
   and constraints.  Signatures then [attach] their delta formulas under
   an activation literal.  The base records the relations (and their
   soft variables) bounded at build time, because later attaches grow
   the shared [Bounds.t] with per-signature witness relations. *)
type base = {
  b_problem : problem;
  b_translation : Translate.t;
  b_solver : Separ_sat.Solver.t;
  b_rels : Relation.t list; (* relations bounded at base-build time *)
  b_soft : int list; (* their free tuple variables, in decode order *)
  b_translation_ms : float;
}

let prepare_base problem =
  let solver = Separ_sat.Solver.create () in
  let translation, b_translation_ms = translate_into solver problem in
  Metrics.incr c_translations;
  publish_sharing
    ~before:(0, 0, 0, 0)
    ~after:(sharing_counts translation);
  publish_sizes translation solver;
  let rels = Bounds.relations problem.bounds in
  {
    b_problem = problem;
    b_translation = translation;
    b_solver = solver;
    b_rels = rels;
    b_soft = soft_of_rels translation rels;
    b_translation_ms;
  }

let base_solver base = base.b_solver
let base_stats base = Separ_sat.Solver.stats_record base.b_solver
let base_translation_ms base = base.b_translation_ms

(* Attach one signature's delta to the base: [rels] are the relations
   the caller bounded into the base's [Bounds.t] since the last attach
   (the signature's witnesses), [constraints] its delta formulas.  The
   deltas are asserted under a fresh activation literal (the solver's
   recycled activation slot), so they hold only while this session's
   assumption is in force; Tseitin definitions stay unguarded and thus
   shared with later signatures.  [detach] retires the literal,
   permanently satisfying every guarded clause.

   At most one attached session per base may be live at a time (the
   solver has a single activation slot). *)
let attach ?(budget = Separ_sat.Solver.no_budget) base ~rels ~constraints =
  let solver = base.b_solver and translation = base.b_translation in
  let vars0 = Separ_sat.Solver.n_vars solver in
  let clauses0 = Separ_sat.Solver.n_clauses solver in
  let gates0 = Circuit.gate_count translation.Translate.circuit in
  let learnts0 = (Separ_sat.Solver.stats_record solver).Separ_sat.Solver.s_learnts in
  let sharing0 = sharing_counts translation in
  let act, translation_ms =
    Trace.timed "relog.attach" (fun () ->
        Trace.with_span "relog.bounds" (fun () ->
            List.iter
              (Translate.add_relation translation base.b_problem.bounds)
              rels);
        let act = Separ_sat.Solver.activation_var solver in
        let gates =
          Trace.with_span "relog.circuit" (fun () ->
              List.map (Translate.gate_of_formula translation) constraints)
        in
        Trace.with_span "relog.tseitin" (fun () ->
            List.iter
              (Translate.assert_gate_under translation ~guard:act)
              gates);
        act)
  in
  Metrics.incr c_attaches;
  publish_sharing ~before:sharing0 ~after:(sharing_counts translation);
  publish_sizes translation solver;
  let hc_h0, hc_m0, tc_h0, tc_m0 = sharing0 in
  let hc_h1, hc_m1, tc_h1, tc_m1 = sharing_counts translation in
  let n_vars = Separ_sat.Solver.n_vars solver in
  let n_clauses = Separ_sat.Solver.n_clauses solver in
  let n_gates = Circuit.gate_count translation.Translate.circuit in
  {
    problem =
      {
        bounds = base.b_problem.bounds;
        constraints = base.b_problem.constraints @ constraints;
      };
    translation;
    solver;
    soft = base.b_soft @ soft_of_rels translation rels;
    act = Some act;
    decode_rels = base.b_rels @ rels;
    budget;
    conflicts0 = Separ_sat.Solver.n_conflicts solver;
    started = Unix.gettimeofday ();
    stats =
      {
        translation_ms;
        solving_ms = 0.0;
        n_vars;
        n_clauses;
        n_gates;
        delta_vars = n_vars - vars0;
        delta_clauses = n_clauses - clauses0;
        delta_gates = n_gates - gates0;
        cache_hits = tc_h1 - tc_h0;
        cache_misses = tc_m1 - tc_m0;
        hc_hits = hc_h1 - hc_h0;
        hc_misses = hc_m1 - hc_m0;
        reused_clauses = clauses0;
        reused_learnts = learnts0;
        solver = Separ_sat.Solver.stats_record solver;
      };
  }

(* End an attached session: retiring the activation literal adds the
   unit clause [-act], permanently satisfying every clause the session
   asserted or blocked, so the next attach starts from a base
   constrained exactly as before (plus inert definitions and whatever
   the solver learnt).  No-op on [prepare] sessions. *)
let detach session =
  match session.act with
  | None -> ()
  | Some _ -> Separ_sat.Solver.retire_activation session.solver

let decode session =
  let bounds = session.problem.bounds in
  let bindings =
    List.map
      (fun rel ->
        (rel, Translate.relation_value session.translation rel bounds))
      session.decode_rels
  in
  Instance.make (Bounds.universe bounds) bindings

type outcome = Unsat | Sat of Instance.t | Unknown

(* Variable/clause counts drift as enumeration adds blocking clauses and
   minimization adds shrink clauses and activation variables; refresh the
   snapshot whenever the session mutates the solver so [stats] reports
   the live formula, not the one frozen at [prepare] time. *)
let refresh_counts session =
  session.stats <-
    {
      session.stats with
      n_vars = Separ_sat.Solver.n_vars session.solver;
      n_clauses = Separ_sat.Solver.n_clauses session.solver;
    }

(* Find the next satisfying instance.  With [minimal] (default), the
   instance is minimized over the free tuple variables first — with the
   canonical lexicographic minimization, so attached and from-scratch
   sessions over equivalent constraints decode identical instances.  A
   session budget that runs out (during either the search or the
   minimization) yields [Unknown]; minimization itself degrades to a
   coarser instance before the session does. *)
let next ?(minimal = true) session =
  let assumptions = session_assumptions session in
  let result, ms =
    Trace.timed "sat.solve" (fun () ->
        let r =
          match
            Separ_sat.Solver.solve ~assumptions
              ~budget:(remaining_budget session)
              session.solver
          with
          | Separ_sat.Solver.Unsat -> Unsat
          | Separ_sat.Solver.Unknown -> Unknown
          | Separ_sat.Solver.Sat ->
              if minimal then
                ignore
                  (Separ_sat.Models.minimize_lex ~extra:assumptions
                     ~budget:(remaining_budget session)
                     session.solver ~soft:session.soft);
              Sat (decode session)
        in
        Trace.add_attr "result"
          (Trace.Str
             (match r with
             | Sat _ -> "sat"
             | Unsat -> "unsat"
             | Unknown -> "unknown"));
        r)
  in
  session.stats <-
    {
      session.stats with
      solving_ms = session.stats.solving_ms +. ms;
      solver = Separ_sat.Solver.stats_record session.solver;
    };
  refresh_counts session;
  result

(* A blocking clause, guarded by the session's activation literal when
   there is one, so an attached session's exclusions die with it. *)
let add_block session trues =
  match session.act with
  | None -> Separ_sat.Models.block_superset session.solver ~trues
  | Some act ->
      Separ_sat.Solver.add_clause session.solver
        (-act :: List.map (fun v -> -v) trues)

(* Exclude all extensions of the current instance's free choices. *)
let block session =
  let trues =
    List.filter (Separ_sat.Solver.value session.solver) session.soft
  in
  add_block session trues;
  refresh_counts session

(* Exclude future instances that repeat the current valuation of the given
   relations' free tuples (coarser blocking: enumeration per distinct
   assignment of these relations, regardless of the rest). *)
let block_on session rels =
  let soft =
    List.concat_map (Translate.soft_vars_of session.translation) rels
  in
  let trues = List.filter (Separ_sat.Solver.value session.solver) soft in
  add_block session trues;
  refresh_counts session

(* One-shot solve. *)
let solve ?(minimal = true) ?budget problem =
  let session = prepare ?budget problem in
  (next ~minimal session, session)

(* Enumerate up to [limit] distinct (minimal) instances.  The returned
   flag is [true] iff enumeration stopped because it hit [limit] — i.e.
   the search space was cut off rather than exhausted (or abandoned on a
   budget-exhausted [Unknown]). *)
let enumerate ?(limit = default_enum_limit) ?(minimal = true) ?budget problem =
  let session = prepare ?budget problem in
  let rec go acc k =
    if k >= limit then (List.rev acc, true)
    else
      match next ~minimal session with
      | Unsat | Unknown -> (List.rev acc, false)
      | Sat inst ->
          block session;
          go (inst :: acc) (k + 1)
  in
  let instances, truncated = go [] 0 in
  (instances, truncated, session)

let stats session = session.stats

(* Sanity: check a decoded instance against the problem constraints with
   the independent ground evaluator. *)
let verify problem inst =
  List.for_all (Eval.check inst) problem.constraints
