(* Orchestration: problem = universe + bounds + constraints.  Translation
   produces CNF; the CDCL solver searches; satisfying assignments are
   decoded into instances.  Minimal-scenario generation (the role of
   Aluminum in the paper) shrinks the set of free tuples before decoding,
   and enumeration blocks supersets of already-seen scenarios. *)

type problem = {
  bounds : Bounds.t;
  constraints : Ast.formula list;
}

type stats = {
  translation_ms : float;
  solving_ms : float;
  n_vars : int;
  n_clauses : int;
  n_gates : int;
  solver : Separ_sat.Solver.stats_record;
}

type session = {
  problem : problem;
  translation : Translate.t;
  solver : Separ_sat.Solver.t;
  soft : int list; (* free tuple variables, for minimization/blocking *)
  budget : Separ_sat.Solver.budget; (* for the whole session *)
  started : float; (* session epoch, for the wall-clock budget *)
  mutable stats : stats;
}

(* The enumeration cap shared by [enumerate], ASE's per-signature loop
   and the CLI's [--limit] default — one constant, not three copies. *)
let default_enum_limit = 16

(* What is left of the session budget right now: the conflict allowance
   shrinks with every conflict the session's solver has spent (main
   solves and minimization alike), the time allowance with the clock. *)
let remaining_budget session =
  {
    Separ_sat.Solver.b_max_conflicts =
      Option.map
        (fun c -> c - Separ_sat.Solver.n_conflicts session.solver)
        session.budget.Separ_sat.Solver.b_max_conflicts;
    b_max_time_ms =
      Option.map
        (fun ms -> ms -. ((Unix.gettimeofday () -. session.started) *. 1000.0))
        session.budget.Separ_sat.Solver.b_max_time_ms;
  }

module Trace = Separ_obs.Trace
module Metrics = Separ_obs.Metrics

(* Telemetry handles (lookup-once; see lib/obs/metrics.ml). *)
let g_gates = Metrics.gauge "relog.circuit_gates"
let g_cnf_vars = Metrics.gauge "relog.cnf_vars"
let g_cnf_clauses = Metrics.gauge "relog.cnf_clauses"
let c_translations = Metrics.counter "relog.translations"

(* Translation is traced in its three phases: bound-matrix allocation
   (one solver variable per free tuple), formula -> circuit evaluation,
   and Tseitin encoding of the asserted gates into CNF.  [budget], if
   given, bounds the *whole session*: conflicts and wall-clock time are
   metered across every subsequent solve (including minimization), and a
   solve past the budget answers [Unknown]. *)
let prepare ?(budget = Separ_sat.Solver.no_budget) problem =
  let solver = Separ_sat.Solver.create () in
  let (translation : Translate.t), translation_ms =
    Trace.timed "relog.translate" (fun () ->
        let tr =
          Trace.with_span "relog.bounds" (fun () ->
              Translate.create problem.bounds solver)
        in
        let gates =
          Trace.with_span "relog.circuit" (fun () ->
              List.map (Translate.gate_of_formula tr) problem.constraints)
        in
        Trace.with_span "relog.tseitin" (fun () ->
            List.iter (Translate.assert_gate tr) gates);
        Trace.add_attr "gates"
          (Trace.Int (Circuit.gate_count tr.Translate.circuit));
        Trace.add_attr "cnf_vars"
          (Trace.Int (Separ_sat.Solver.n_vars solver));
        Trace.add_attr "cnf_clauses"
          (Trace.Int (Separ_sat.Solver.n_clauses solver));
        tr)
  in
  Metrics.incr c_translations;
  Metrics.set g_gates
    (float_of_int (Circuit.gate_count translation.Translate.circuit));
  Metrics.set g_cnf_vars (float_of_int (Separ_sat.Solver.n_vars solver));
  Metrics.set g_cnf_clauses (float_of_int (Separ_sat.Solver.n_clauses solver));
  let soft = Translate.all_soft_vars translation in
  {
    problem;
    translation;
    solver;
    soft;
    budget;
    started = Unix.gettimeofday ();
    stats =
      {
        translation_ms;
        solving_ms = 0.0;
        n_vars = Separ_sat.Solver.n_vars solver;
        n_clauses = Separ_sat.Solver.n_clauses solver;
        n_gates = Circuit.gate_count translation.Translate.circuit;
        solver = Separ_sat.Solver.stats_record solver;
      };
  }

let decode session =
  let bounds = session.problem.bounds in
  let bindings =
    List.map
      (fun rel ->
        (rel, Translate.relation_value session.translation rel bounds))
      (Bounds.relations bounds)
  in
  Instance.make (Bounds.universe bounds) bindings

type outcome = Unsat | Sat of Instance.t | Unknown

(* Variable/clause counts drift as enumeration adds blocking clauses and
   minimization adds shrink clauses and activation variables; refresh the
   snapshot whenever the session mutates the solver so [stats] reports
   the live formula, not the one frozen at [prepare] time. *)
let refresh_counts session =
  session.stats <-
    {
      session.stats with
      n_vars = Separ_sat.Solver.n_vars session.solver;
      n_clauses = Separ_sat.Solver.n_clauses session.solver;
    }

(* Find the next satisfying instance.  With [minimal] (default), the
   instance is minimized over the free tuple variables first.  A session
   budget that runs out (during either the search or the shrink) yields
   [Unknown]; minimization itself degrades to a coarser instance before
   the session does. *)
let next ?(minimal = true) session =
  let result, ms =
    Trace.timed "sat.solve" (fun () ->
        let r =
          match
            Separ_sat.Solver.solve
              ~budget:(remaining_budget session)
              session.solver
          with
          | Separ_sat.Solver.Unsat -> Unsat
          | Separ_sat.Solver.Unknown -> Unknown
          | Separ_sat.Solver.Sat ->
              if minimal then
                ignore
                  (Separ_sat.Models.minimize
                     ~budget:(remaining_budget session)
                     session.solver ~soft:session.soft);
              Sat (decode session)
        in
        Trace.add_attr "result"
          (Trace.Str
             (match r with
             | Sat _ -> "sat"
             | Unsat -> "unsat"
             | Unknown -> "unknown"));
        r)
  in
  session.stats <-
    {
      session.stats with
      solving_ms = session.stats.solving_ms +. ms;
      solver = Separ_sat.Solver.stats_record session.solver;
    };
  refresh_counts session;
  result

(* Exclude all extensions of the current instance's free choices. *)
let block session =
  let trues = List.filter (Separ_sat.Solver.value session.solver) session.soft in
  Separ_sat.Models.block_superset session.solver ~trues;
  refresh_counts session

(* Exclude future instances that repeat the current valuation of the given
   relations' free tuples (coarser blocking: enumeration per distinct
   assignment of these relations, regardless of the rest). *)
let block_on session rels =
  let soft =
    List.concat_map (Translate.soft_vars_of session.translation) rels
  in
  let trues = List.filter (Separ_sat.Solver.value session.solver) soft in
  Separ_sat.Models.block_superset session.solver ~trues;
  refresh_counts session

(* One-shot solve. *)
let solve ?(minimal = true) ?budget problem =
  let session = prepare ?budget problem in
  (next ~minimal session, session)

(* Enumerate up to [limit] distinct (minimal) instances.  The returned
   flag is [true] iff enumeration stopped because it hit [limit] — i.e.
   the search space was cut off rather than exhausted (or abandoned on a
   budget-exhausted [Unknown]). *)
let enumerate ?(limit = default_enum_limit) ?(minimal = true) ?budget problem =
  let session = prepare ?budget problem in
  let rec go acc k =
    if k >= limit then (List.rev acc, true)
    else
      match next ~minimal session with
      | Unsat | Unknown -> (List.rev acc, false)
      | Sat inst ->
          block session;
          go (inst :: acc) (k + 1)
  in
  let instances, truncated = go [] 0 in
  (instances, truncated, session)

let stats session = session.stats

(* Sanity: check a decoded instance against the problem constraints with
   the independent ground evaluator. *)
let verify problem inst =
  List.for_all (Eval.check inst) problem.constraints
