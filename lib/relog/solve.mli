(** Orchestration of the relational-logic engine: a problem is a set of
    bounds plus constraint formulas; solving translates to CNF, runs the
    CDCL solver and decodes satisfying assignments into instances.
    Minimal-scenario generation and superset-blocking enumeration
    reproduce Aluminum's behaviour. *)

type problem = {
  bounds : Bounds.t;
  constraints : Ast.formula list;
}

type stats = {
  translation_ms : float;  (** formula -> CNF time (Table II "construction") *)
  solving_ms : float;      (** cumulative SAT search time *)
  n_vars : int;
  n_clauses : int;
  n_gates : int;
  solver : Separ_sat.Solver.stats_record;
      (** CDCL counters (conflicts, learnt-db reductions, ...), snapshotted
          after each solve *)
}

(** A prepared problem: translation done, solver loaded. *)
type session

(** The enumeration cap shared by {!enumerate}, ASE's per-signature
    loop and the CLI's [--limit] default. *)
val default_enum_limit : int

(** Translate the problem into a solver session.  [budget], if given,
    bounds the whole session: conflicts and wall-clock time are metered
    across all subsequent solves (minimization included), and once
    exhausted {!next} answers {!Unknown}. *)
val prepare : ?budget:Separ_sat.Solver.budget -> problem -> session

(** What remains of the session budget right now (fields of an
    unbudgeted session stay [None]). *)
val remaining_budget : session -> Separ_sat.Solver.budget

type outcome = Unsat | Sat of Instance.t | Unknown

(** Find the next satisfying instance; with [minimal] (default) the free
    tuples are shrunk to a minimal set first.  [Unknown] means the
    session budget ran out before the search decided the instance;
    minimization degrades to a coarser (less minimal) instance before
    the session gives up. *)
val next : ?minimal:bool -> session -> outcome

(** Exclude all extensions of the current instance's free choices. *)
val block : session -> unit

(** Exclude future instances repeating the current valuation of the given
    relations' free tuples (coarser than {!block}). *)
val block_on : session -> Relation.t list -> unit

(** One-shot: prepare and solve. *)
val solve :
  ?minimal:bool -> ?budget:Separ_sat.Solver.budget -> problem ->
  outcome * session

(** Enumerate up to [limit] distinct (minimal) instances.  The boolean is
    [true] iff enumeration was cut off at [limit] (more instances may
    exist), [false] when the search space was exhausted or a budget ran
    out first — reports can tell "complete" from "truncated". *)
val enumerate :
  ?limit:int -> ?minimal:bool -> ?budget:Separ_sat.Solver.budget -> problem ->
  Instance.t list * bool * session

(** Statistics of the session so far.  Variable/clause counts are
    refreshed as enumeration and minimization grow the formula, not
    frozen at {!prepare} time. *)
val stats : session -> stats

(** Re-check an instance against the constraints with the independent
    ground evaluator (a soundness self-test). *)
val verify : problem -> Instance.t -> bool
