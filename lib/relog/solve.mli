(** Orchestration of the relational-logic engine: a problem is a set of
    bounds plus constraint formulas; solving translates to CNF, runs the
    CDCL solver and decodes satisfying assignments into instances.
    Minimal-scenario generation and superset-blocking enumeration
    reproduce Aluminum's behaviour. *)

type problem = {
  bounds : Bounds.t;
  constraints : Ast.formula list;
}

type stats = {
  translation_ms : float;  (** formula -> CNF time (Table II "construction") *)
  solving_ms : float;      (** cumulative SAT search time *)
  n_vars : int;
  n_clauses : int;
  n_gates : int;
  solver : Separ_sat.Solver.stats_record;
      (** CDCL counters (conflicts, learnt-db reductions, ...), snapshotted
          after each solve *)
}

(** A prepared problem: translation done, solver loaded. *)
type session

(** Translate the problem into a solver session. *)
val prepare : problem -> session

type outcome = Unsat | Sat of Instance.t

(** Find the next satisfying instance; with [minimal] (default) the free
    tuples are shrunk to a minimal set first. *)
val next : ?minimal:bool -> session -> outcome

(** Exclude all extensions of the current instance's free choices. *)
val block : session -> unit

(** Exclude future instances repeating the current valuation of the given
    relations' free tuples (coarser than {!block}). *)
val block_on : session -> Relation.t list -> unit

(** One-shot: prepare and solve. *)
val solve : ?minimal:bool -> problem -> outcome * session

(** Enumerate up to [limit] distinct (minimal) instances. *)
val enumerate :
  ?limit:int -> ?minimal:bool -> problem -> Instance.t list * session

val stats : session -> stats

(** Re-check an instance against the constraints with the independent
    ground evaluator (a soundness self-test). *)
val verify : problem -> Instance.t -> bool
