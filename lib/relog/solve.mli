(** Orchestration of the relational-logic engine: a problem is a set of
    bounds plus constraint formulas; solving translates to CNF, runs the
    CDCL solver and decodes satisfying assignments into instances.
    Minimal-scenario generation and superset-blocking enumeration
    reproduce Aluminum's behaviour.

    Sessions come in two flavours with identical observable behaviour:
    {!prepare} translates into a fresh solver, while {!prepare_base} +
    {!attach} share one solver and translation across several delta
    sessions (SEPAR's incremental ASE path: the bundle encoding is paid
    once, signature formulas ride on activation-literal assumptions, and
    CDCL learning persists).  Minimization is canonical — the answer
    depends only on the constraints, never on solver search state — so
    both flavours decode the same instances in the same order. *)

type problem = {
  bounds : Bounds.t;
  constraints : Ast.formula list;
}

type stats = {
  translation_ms : float;  (** formula -> CNF time (Table II "construction") *)
  solving_ms : float;      (** cumulative SAT search time *)
  n_vars : int;
  n_clauses : int;
  n_gates : int;
  delta_vars : int;
      (** variables this session added on top of what its solver already
          held (for a {!prepare} session: all of them) *)
  delta_clauses : int;     (** likewise, problem clauses *)
  delta_gates : int;       (** likewise, circuit gates *)
  cache_hits : int;        (** expression-cache hits during translation *)
  cache_misses : int;
  hc_hits : int;           (** circuit hash-cons hits during translation *)
  hc_misses : int;
  reused_clauses : int;
      (** clauses already in the solver when this session began (0 for
          {!prepare} sessions) *)
  reused_learnts : int;
      (** learnt clauses carried over from earlier sessions on the same
          solver *)
  solver : Separ_sat.Solver.stats_record;
      (** CDCL counters (conflicts, learnt-db reductions, ...), snapshotted
          after each solve *)
}

(** A prepared problem: translation done, solver loaded. *)
type session

(** The enumeration cap shared by {!enumerate}, ASE's per-signature
    loop and the CLI's [--limit] default. *)
val default_enum_limit : int

(** Translate the problem into a solver session.  [budget], if given,
    bounds the whole session: conflicts and wall-clock time are metered
    across all subsequent solves (minimization included), and once
    exhausted {!next} answers {!Unknown}. *)
val prepare : ?budget:Separ_sat.Solver.budget -> problem -> session

(** Toggle the SatELite-style preprocessing pass {!prepare} runs at the
    translate → CNF handoff (default: on).  Soft variables are frozen,
    so instances are identical either way; the toggle exists for parity
    gates and benchmarks of the raw kernel.  {!prepare_base}/{!attach}
    sessions never preprocess: their Tseitin definitions are shared
    across attaches, and a later delta may name a variable the pass
    would have eliminated. *)
val set_preprocessing : bool -> unit

(** What remains of the session budget right now (fields of an
    unbudgeted session stay [None]).  On a shared base solver the meter
    starts at {!attach} time: earlier sessions' work is not charged. *)
val remaining_budget : session -> Separ_sat.Solver.budget

(** A bundle-common encoding shared by several delta sessions: one
    solver and one translation, built once from the common bounds and
    constraints. *)
type base

(** Translate the bundle-common problem once.  Per-signature deltas are
    then layered on with {!attach}. *)
val prepare_base : problem -> base

(** The base's solver (for aggregate statistics). *)
val base_solver : base -> Separ_sat.Solver.t

(** Statistics of the base's solver. *)
val base_stats : base -> Separ_sat.Solver.stats_record

(** Time spent translating the base problem (Table II "construction"). *)
val base_translation_ms : base -> float

(** [attach base ~rels ~constraints] layers one signature's delta on the
    base: [rels] are the relations the caller has bounded into the
    base's [Bounds.t] since the base (or the previous attach) was built
    — typically the signature's witness relations — and [constraints]
    are the delta formulas.  They are asserted under a fresh activation
    literal and every solve of the resulting session assumes it, so the
    delta (and any blocking clauses) holds for this session only, while
    Tseitin definitions and learnt clauses persist for later attaches.

    [budget] bounds this delta session the way {!prepare}'s does,
    metered from the attach.

    At most one attached session per base may be live; call {!detach}
    before the next attach. *)
val attach :
  ?budget:Separ_sat.Solver.budget ->
  base -> rels:Relation.t list -> constraints:Ast.formula list -> session

(** Retire an attached session's activation literal: its delta
    constraints and blocking clauses are permanently satisfied, leaving
    the base (plus learnt clauses) for the next {!attach}.  No-op on
    {!prepare} sessions. *)
val detach : session -> unit

type outcome = Unsat | Sat of Instance.t | Unknown

(** Find the next satisfying instance; with [minimal] (default) the free
    tuples are shrunk to the canonical (lexicographically least, hence
    inclusion-minimal) set first.  [Unknown] means the session budget
    ran out before the search decided the instance; minimization
    degrades to a coarser instance before the session gives up. *)
val next : ?minimal:bool -> session -> outcome

(** Exclude all extensions of the current instance's free choices.  On
    an attached session the exclusion is guarded and dies with it. *)
val block : session -> unit

(** Exclude future instances repeating the current valuation of the given
    relations' free tuples (coarser than {!block}).  Guarded likewise. *)
val block_on : session -> Relation.t list -> unit

(** One-shot: prepare and solve. *)
val solve :
  ?minimal:bool -> ?budget:Separ_sat.Solver.budget -> problem ->
  outcome * session

(** Enumerate up to [limit] distinct (minimal) instances.  The boolean is
    [true] iff enumeration was cut off at [limit] (more instances may
    exist), [false] when the search space was exhausted or a budget ran
    out first — reports can tell "complete" from "truncated". *)
val enumerate :
  ?limit:int -> ?minimal:bool -> ?budget:Separ_sat.Solver.budget -> problem ->
  Instance.t list * bool * session

(** Statistics of the session so far.  Variable/clause counts are
    refreshed as enumeration and minimization grow the formula, not
    frozen at {!prepare} time. *)
val stats : session -> stats

(** Re-check an instance against the constraints with the independent
    ground evaluator (a soundness self-test). *)
val verify : problem -> Instance.t -> bool
