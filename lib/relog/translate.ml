(* Translation of a bounded relational problem to a boolean circuit, in
   the style of Kodkod: each relation becomes a sparse matrix whose cells
   are constant-true (lower-bound tuples), constant-false (outside the
   upper bound) or fresh solver variables; expressions evaluate to
   matrices and formulas to gates. *)

type env = (string * int) list (* quantified variable -> atom *)

type t = {
  circuit : Circuit.t;
  solver : Separ_sat.Solver.t;
  encoder : Circuit.encoder;
  universe : Universe.t;
  n : int;
  mutable rel_matrices : Matrix.t Relation.Map.t;
  (* per relation: the (tuple, solver var) pairs that are free choices *)
  mutable rel_vars : (Tuple_set.tuple * int) list Relation.Map.t;
  (* expression -> matrix memoization, keyed on the structural identity
     of (environment, expression); see [expr] below *)
  expr_cache : (env * Ast.expr, Matrix.t) Hashtbl.t;
  mutable tc_hits : int;
  mutable tc_misses : int;
}

(* Allocate the matrix and free-choice variables of one relation: cells
   in the lower bound are constant-true, remaining upper-bound cells get
   fresh solver variables in tuple order. *)
let alloc_relation circuit solver ~n bounds rel =
  let lower, upper = Bounds.get bounds rel in
  let m = Matrix.create ~n ~arity:(Relation.arity rel) in
  let vars = ref [] in
  Tuple_set.iter
    (fun tup ->
      if Tuple_set.mem tup lower then
        Matrix.set circuit m tup (Circuit.tt circuit)
      else begin
        let v = Separ_sat.Solver.new_var solver in
        vars := (tup, v) :: !vars;
        Matrix.set circuit m tup (Circuit.lit circuit v)
      end)
    upper;
  (m, List.rev !vars)

let create bounds solver =
  let circuit = Circuit.create () in
  let universe = Bounds.universe bounds in
  let n = Universe.size universe in
  let rel_matrices = ref Relation.Map.empty in
  let rel_vars = ref Relation.Map.empty in
  List.iter
    (fun rel ->
      let m, vars = alloc_relation circuit solver ~n bounds rel in
      rel_matrices := Relation.Map.add rel m !rel_matrices;
      rel_vars := Relation.Map.add rel vars !rel_vars)
    (Bounds.relations bounds);
  {
    circuit;
    solver;
    encoder = Circuit.encoder circuit solver;
    universe;
    n;
    rel_matrices = !rel_matrices;
    rel_vars = !rel_vars;
    expr_cache = Hashtbl.create 256;
    tc_hits = 0;
    tc_misses = 0;
  }

(* Extend an existing translation with a relation bounded after [create]
   (the incremental path adds per-signature witness relations to a shared
   base translation this way).  Allocates exactly what [create] would
   have: same matrix cells, fresh variables in the same tuple order. *)
let add_relation t bounds rel =
  if Relation.Map.mem rel t.rel_matrices then
    invalid_arg ("Translate.add_relation: duplicate " ^ Relation.name rel);
  let m, vars = alloc_relation t.circuit t.solver ~n:t.n bounds rel in
  t.rel_matrices <- Relation.Map.add rel m t.rel_matrices;
  t.rel_vars <- Relation.Map.add rel vars t.rel_vars

(* (hits, misses) of the expression->matrix cache since creation. *)
let cache_counts t = (t.tc_hits, t.tc_misses)

let rec expr t (env : env) (e : Ast.expr) : Matrix.t =
  (* Matrices are immutable once built (operations always allocate), and
     hash-consing makes re-translation of equal expressions yield the
     same gates — so memoizing on the structural identity of the
     (environment, expression) pair changes nothing but the cost.
     Quantifiers extend [env], so only the bindings in scope distinguish
     otherwise-equal subterms. *)
  match e with
  | Ast.Rel _ | Ast.Var _ | Ast.Univ | Ast.None_e | Ast.Iden ->
      expr_uncached t env e (* leaves: a lookup is cheaper than a hash *)
  | _ -> (
      let k = (env, e) in
      match Hashtbl.find_opt t.expr_cache k with
      | Some m ->
          t.tc_hits <- t.tc_hits + 1;
          m
      | None ->
          t.tc_misses <- t.tc_misses + 1;
          let m = expr_uncached t env e in
          Hashtbl.add t.expr_cache k m;
          m)

and expr_uncached t (env : env) (e : Ast.expr) : Matrix.t =
  let c = t.circuit in
  match e with
  | Ast.Rel r -> (
      match Relation.Map.find_opt r t.rel_matrices with
      | Some m -> m
      | None ->
          invalid_arg ("Translate.expr: unbound relation " ^ Relation.name r))
  | Ast.Var v -> (
      match List.assoc_opt v env with
      | Some atom -> Matrix.singleton c ~n:t.n [| atom |]
      | None -> invalid_arg ("Translate.expr: unbound variable " ^ v))
  | Ast.Univ -> Matrix.univ c ~n:t.n
  | Ast.None_e -> Matrix.create ~n:t.n ~arity:1
  | Ast.Iden -> Matrix.iden c ~n:t.n
  | Ast.Join (a, b) -> Matrix.join c (expr t env a) (expr t env b)
  | Ast.Product (a, b) -> Matrix.product c (expr t env a) (expr t env b)
  | Ast.Union (a, b) -> Matrix.union c (expr t env a) (expr t env b)
  | Ast.Inter (a, b) -> Matrix.inter c (expr t env a) (expr t env b)
  | Ast.Diff (a, b) -> Matrix.diff c (expr t env a) (expr t env b)
  | Ast.Transpose a -> Matrix.transpose c (expr t env a)
  | Ast.Closure a -> Matrix.closure c (expr t env a)
  | Ast.RClosure a ->
      Matrix.union c (Matrix.closure c (expr t env a)) (Matrix.iden c ~n:t.n)

let subset_gate t a b =
  let c = t.circuit in
  Matrix.fold
    (fun tup g acc ->
      let g' = Matrix.get_or b ~default:(Circuit.ff c) tup in
      Circuit.and_ c acc (Circuit.implies c g g'))
    a (Circuit.tt c)

let lone_gate t m =
  (* at most one member: pairwise exclusion *)
  let c = t.circuit in
  let cells = Matrix.fold (fun _ g acc -> g :: acc) m [] in
  let rec pairs acc = function
    | [] -> acc
    | g :: rest ->
        let acc =
          List.fold_left
            (fun acc g' ->
              Circuit.and_ c acc
                (Circuit.not_ c (Circuit.and_ c g g')))
            acc rest
        in
        pairs acc rest
  in
  pairs (Circuit.tt c) cells

let rec formula t (env : env) (f : Ast.formula) : Circuit.gate =
  let c = t.circuit in
  match f with
  | Ast.True_f -> Circuit.tt c
  | Ast.False_f -> Circuit.ff c
  | Ast.Subset (a, b) -> subset_gate t (expr t env a) (expr t env b)
  | Ast.Eq (a, b) ->
      let ma = expr t env a and mb = expr t env b in
      Circuit.and_ c (subset_gate t ma mb) (subset_gate t mb ma)
  | Ast.Mult (m, e) -> (
      let mat = expr t env e in
      let some_g =
        Matrix.fold (fun _ g acc -> Circuit.or_ c acc g) mat (Circuit.ff c)
      in
      match m with
      | Ast.Mno -> Circuit.not_ c some_g
      | Ast.Msome -> some_g
      | Ast.Mlone -> lone_gate t mat
      | Ast.Mone -> Circuit.and_ c some_g (lone_gate t mat))
  | Ast.Not_f f -> Circuit.not_ c (formula t env f)
  | Ast.And_f (a, b) -> Circuit.and_ c (formula t env a) (formula t env b)
  | Ast.Or_f (a, b) -> Circuit.or_ c (formula t env a) (formula t env b)
  | Ast.Implies (a, b) ->
      Circuit.implies c (formula t env a) (formula t env b)
  | Ast.Iff (a, b) -> Circuit.iff c (formula t env a) (formula t env b)
  | Ast.All (v, dom, body) ->
      let dm = expr t env dom in
      Matrix.fold
        (fun tup g acc ->
          let body_g = formula t ((v, tup.(0)) :: env) body in
          Circuit.and_ c acc (Circuit.implies c g body_g))
        dm (Circuit.tt c)
  | Ast.Exists (v, dom, body) ->
      let dm = expr t env dom in
      Matrix.fold
        (fun tup g acc ->
          let body_g = formula t ((v, tup.(0)) :: env) body in
          Circuit.or_ c acc (Circuit.and_ c g body_g))
        dm (Circuit.ff c)

(* The two halves of constraint assertion, split so the caller can
   trace circuit construction and Tseitin encoding separately. *)
let gate_of_formula t f = formula t [] f
let assert_gate t g = Circuit.assert_gate t.encoder g

(* Assert a gate that holds only while the [guard] literal is assumed;
   see {!Circuit.assert_gate_under}. *)
let assert_gate_under t ~guard g = Circuit.assert_gate_under t.encoder ~guard g

(* Assert a formula as a problem constraint. *)
let assert_formula t f = assert_gate t (gate_of_formula t f)

(* All free tuple variables, for minimization / enumeration. *)
let all_soft_vars t =
  Relation.Map.fold
    (fun _ vars acc -> List.rev_append (List.map snd vars) acc)
    t.rel_vars []

let soft_vars_of t rel =
  match Relation.Map.find_opt rel t.rel_vars with
  | Some vars -> List.map snd vars
  | None -> []

(* Read back the value of a relation from the solver's current model. *)
let relation_value t rel bounds =
  let lower, _upper = Bounds.get bounds rel in
  let free = Relation.Map.find rel t.rel_vars in
  let chosen =
    List.filter_map
      (fun (tup, v) ->
        if Separ_sat.Solver.value t.solver v then Some tup else None)
      free
  in
  Tuple_set.union lower
    (Tuple_set.of_list (Relation.arity rel) chosen)
