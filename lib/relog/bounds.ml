(* Bounds assign each relation a lower bound (tuples it must contain) and
   an upper bound (tuples it may contain).  Exact bounds — lower = upper —
   encode the parts of the problem that are fully known (the extracted app
   models); the gap between lower and upper is the solver's search space
   (the postulated malicious component and its messages). *)

type t = {
  universe : Universe.t;
  mutable map : (Tuple_set.t * Tuple_set.t) Relation.Map.t;
}

let create universe = { universe; map = Relation.Map.empty }

let universe t = t.universe

let bound t rel ~lower ~upper =
  if Tuple_set.arity lower <> Relation.arity rel
     || Tuple_set.arity upper <> Relation.arity rel
  then invalid_arg "Bounds.bound: arity mismatch";
  if not (Tuple_set.subset lower upper) then
    invalid_arg
      (Printf.sprintf "Bounds.bound: lower not within upper for %s"
         (Relation.name rel));
  t.map <- Relation.Map.add rel (lower, upper) t.map

let bound_exact t rel tuples = bound t rel ~lower:tuples ~upper:tuples

let get t rel =
  match Relation.Map.find_opt rel t.map with
  | Some b -> b
  | None ->
      invalid_arg ("Bounds.get: unbound relation " ^ Relation.name rel)

let relations t = List.map fst (Relation.Map.bindings t.map)

(* Convenience: build tuple sets from atom names. *)
let tuples t names_list =
  let u = t.universe in
  match names_list with
  | [] -> invalid_arg "Bounds.tuples: need arity; use tuples_a"
  | first :: _ ->
      Tuple_set.of_list (List.length first)
        (List.map
           (fun names -> Array.of_list (List.map (Universe.atom u) names))
           names_list)

let tuples_a t arity names_list =
  let u = t.universe in
  Tuple_set.of_list arity
    (List.map
       (fun names -> Array.of_list (List.map (Universe.atom u) names))
       names_list)
