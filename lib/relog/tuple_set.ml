(* Sets of constant tuples over a universe.  A tuple of arity [k] is an
   [int array] of atom indices; sets keep tuples sorted lexicographically
   and deduplicated, enabling fast set operations in bound construction
   and in the ground evaluator. *)

type tuple = int array

type t = {
  arity : int;
  tuples : tuple array; (* sorted, deduplicated *)
}

let compare_tuple (a : tuple) (b : tuple) = compare a b

let of_list arity tuples =
  List.iter
    (fun t ->
      if Array.length t <> arity then
        invalid_arg "Tuple_set.of_list: arity mismatch")
    tuples;
  let arr = Array.of_list (List.sort_uniq compare_tuple tuples) in
  { arity; tuples = arr }

let empty arity = { arity; tuples = [||] }
let arity t = t.arity
let size t = Array.length t.tuples
let is_empty t = size t = 0
let to_list t = Array.to_list t.tuples
let iter f t = Array.iter f t.tuples

let mem tup t =
  let rec bisect lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let c = compare_tuple tup t.tuples.(mid) in
      if c = 0 then true
      else if c < 0 then bisect lo mid
      else bisect (mid + 1) hi
  in
  bisect 0 (Array.length t.tuples)

let subset a b =
  a.arity = b.arity && Array.for_all (fun t -> mem t b) a.tuples

(* Both operands are already sorted and deduplicated, so the union is a
   single linear merge; duplicates across the inputs advance both
   cursors.  Either input is returned unchanged when it subsumes the
   result, sparing the allocation on the common [x U empty] case. *)
let union a b =
  if a.arity <> b.arity then invalid_arg "Tuple_set.union: arity mismatch";
  let na = Array.length a.tuples and nb = Array.length b.tuples in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let out = Array.make (na + nb) a.tuples.(0) in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na && !j < nb do
      let c = compare_tuple a.tuples.(!i) b.tuples.(!j) in
      if c < 0 then begin
        out.(!k) <- a.tuples.(!i);
        incr i
      end
      else if c > 0 then begin
        out.(!k) <- b.tuples.(!j);
        incr j
      end
      else begin
        out.(!k) <- a.tuples.(!i);
        incr i;
        incr j
      end;
      incr k
    done;
    while !i < na do
      out.(!k) <- a.tuples.(!i);
      incr i;
      incr k
    done;
    while !j < nb do
      out.(!k) <- b.tuples.(!j);
      incr j;
      incr k
    done;
    if !k = na then a
    else if !k = nb then b
    else { arity = a.arity; tuples = Array.sub out 0 !k }
  end

let inter a b =
  if a.arity <> b.arity then invalid_arg "Tuple_set.inter: arity mismatch";
  of_list a.arity (List.filter (fun t -> mem t b) (to_list a))

let diff a b =
  if a.arity <> b.arity then invalid_arg "Tuple_set.diff: arity mismatch";
  of_list a.arity (List.filter (fun t -> not (mem t b)) (to_list a))

let equal a b = a.arity = b.arity && a.tuples = b.tuples

(* Cartesian product: arity is the sum of arities. *)
let product a b =
  let tuples =
    List.concat_map
      (fun ta -> List.map (fun tb -> Array.append ta tb) (to_list b))
      (to_list a)
  in
  of_list (a.arity + b.arity) tuples

(* Relational join: drop the matching inner column. *)
let join a b =
  if a.arity < 1 || b.arity < 1 then invalid_arg "Tuple_set.join: arity";
  let out_arity = a.arity + b.arity - 2 in
  if out_arity < 1 then invalid_arg "Tuple_set.join: result arity 0";
  let tuples =
    List.concat_map
      (fun ta ->
        let last = ta.(a.arity - 1) in
        List.filter_map
          (fun tb ->
            if tb.(0) = last then
              Some
                (Array.append
                   (Array.sub ta 0 (a.arity - 1))
                   (Array.sub tb 1 (b.arity - 1)))
            else None)
          (to_list b))
      (to_list a)
  in
  of_list out_arity tuples

let transpose a =
  if a.arity <> 2 then invalid_arg "Tuple_set.transpose: arity <> 2";
  of_list 2 (List.map (fun t -> [| t.(1); t.(0) |]) (to_list a))

let closure a =
  if a.arity <> 2 then invalid_arg "Tuple_set.closure: arity <> 2";
  let rec fix r =
    let r' = union r (join r a) in
    if equal r r' then r else fix r'
  in
  fix a

(* Unary set of all atoms of a universe. *)
let univ n = of_list 1 (List.init n (fun i -> [| i |]))

(* Binary identity over a universe. *)
let iden n = of_list 2 (List.init n (fun i -> [| i; i |]))

let singleton tup = of_list (Array.length tup) [ tup ]

let pp names ppf t =
  let pp_tuple ppf tup =
    Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ",") string)
      (Array.map names tup)
  in
  Fmt.pf ppf "{%a}" Fmt.(array ~sep:(any " ") pp_tuple) t.tuples
