(* Ground evaluator: evaluates expressions and formulas against a concrete
   instance.  Used to validate solver output (every returned instance is
   re-checked against the asserted formula) and as the differential oracle
   in property tests. *)

type env = (string * int) list

let rec expr inst (env : env) (e : Ast.expr) : Tuple_set.t =
  let n = Universe.size (Instance.universe inst) in
  match e with
  | Ast.Rel r -> Instance.value inst r
  | Ast.Var v -> (
      match List.assoc_opt v env with
      | Some atom -> Tuple_set.singleton [| atom |]
      | None -> invalid_arg ("Eval.expr: unbound variable " ^ v))
  | Ast.Univ -> Tuple_set.univ n
  | Ast.None_e -> Tuple_set.empty 1
  | Ast.Iden -> Tuple_set.iden n
  | Ast.Join (a, b) -> Tuple_set.join (expr inst env a) (expr inst env b)
  | Ast.Product (a, b) ->
      Tuple_set.product (expr inst env a) (expr inst env b)
  | Ast.Union (a, b) -> Tuple_set.union (expr inst env a) (expr inst env b)
  | Ast.Inter (a, b) -> Tuple_set.inter (expr inst env a) (expr inst env b)
  | Ast.Diff (a, b) -> Tuple_set.diff (expr inst env a) (expr inst env b)
  | Ast.Transpose a -> Tuple_set.transpose (expr inst env a)
  | Ast.Closure a -> Tuple_set.closure (expr inst env a)
  | Ast.RClosure a ->
      Tuple_set.union (Tuple_set.closure (expr inst env a)) (Tuple_set.iden n)

let rec formula inst (env : env) (f : Ast.formula) : bool =
  match f with
  | Ast.True_f -> true
  | Ast.False_f -> false
  | Ast.Subset (a, b) -> Tuple_set.subset (expr inst env a) (expr inst env b)
  | Ast.Eq (a, b) -> Tuple_set.equal (expr inst env a) (expr inst env b)
  | Ast.Mult (m, e) -> (
      let ts = expr inst env e in
      match m with
      | Ast.Mno -> Tuple_set.is_empty ts
      | Ast.Msome -> not (Tuple_set.is_empty ts)
      | Ast.Mlone -> Tuple_set.size ts <= 1
      | Ast.Mone -> Tuple_set.size ts = 1)
  | Ast.Not_f f -> not (formula inst env f)
  | Ast.And_f (a, b) -> formula inst env a && formula inst env b
  | Ast.Or_f (a, b) -> formula inst env a || formula inst env b
  | Ast.Implies (a, b) -> (not (formula inst env a)) || formula inst env b
  | Ast.Iff (a, b) -> formula inst env a = formula inst env b
  | Ast.All (v, dom, body) ->
      let ts = expr inst env dom in
      List.for_all
        (fun tup -> formula inst ((v, tup.(0)) :: env) body)
        (Tuple_set.to_list ts)
  | Ast.Exists (v, dom, body) ->
      let ts = expr inst env dom in
      List.exists
        (fun tup -> formula inst ((v, tup.(0)) :: env) body)
        (Tuple_set.to_list ts)

let check inst f = formula inst [] f
