(* The finite universe of atoms a bounded relational problem ranges over.
   Atoms are interned strings; an atom is referred to by its dense index. *)

type t = {
  names : string array;
  index : (string, int) Hashtbl.t;
}

let of_atoms names =
  let names = Array.of_list names in
  let index = Hashtbl.create (Array.length names) in
  Array.iteri
    (fun i name ->
      if Hashtbl.mem index name then
        invalid_arg ("Universe.of_atoms: duplicate atom " ^ name);
      Hashtbl.add index name i)
    names;
  { names; index }

let size t = Array.length t.names
let name t i = t.names.(i)

let atom t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None -> invalid_arg ("Universe.atom: unknown atom " ^ name)

let mem t name = Hashtbl.mem t.index name

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(array ~sep:(any ", ") string) t.names
