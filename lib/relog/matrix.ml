(* Sparse boolean matrices: the symbolic value of a relational expression
   under translation.  A matrix maps tuples (encoded as single integers in
   mixed radix over the universe size) to circuit gates; absent entries
   are constant-false.  All relational operators are implemented here. *)

type t = {
  arity : int;
  n : int;                                (* universe size *)
  cells : (int, Circuit.gate) Hashtbl.t;  (* only non-false entries *)
}

let create ~n ~arity = { arity; n; cells = Hashtbl.create 16 }

let encode ~n tuple =
  Array.fold_left (fun acc a -> (acc * n) + a) 0 tuple

let decode ~n ~arity code =
  let t = Array.make arity 0 in
  let rec go i code =
    if i >= 0 then begin
      t.(i) <- code mod n;
      go (i - 1) (code / n)
    end
  in
  go (arity - 1) code;
  t

let get m tuple =
  match Hashtbl.find_opt m.cells (encode ~n:m.n tuple) with
  | Some g -> g
  | None -> raise Not_found

let get_or m ~default tuple =
  match Hashtbl.find_opt m.cells (encode ~n:m.n tuple) with
  | Some g -> g
  | None -> default

let set c m tuple g =
  if Circuit.is_false g then
    Hashtbl.remove m.cells (encode ~n:m.n tuple)
  else Hashtbl.replace m.cells (encode ~n:m.n tuple) g;
  ignore c

(* Accumulate [g] into cell [tuple] with disjunction. *)
let add_or c m tuple g =
  if not (Circuit.is_false g) then begin
    let key = encode ~n:m.n tuple in
    match Hashtbl.find_opt m.cells key with
    | None -> Hashtbl.replace m.cells key g
    | Some g0 -> Hashtbl.replace m.cells key (Circuit.or_ c g0 g)
  end

let iter f m =
  Hashtbl.iter
    (fun code g -> f (decode ~n:m.n ~arity:m.arity code) g)
    m.cells

let fold f m acc =
  Hashtbl.fold
    (fun code g acc -> f (decode ~n:m.n ~arity:m.arity code) g acc)
    m.cells acc

let cell_count m = Hashtbl.length m.cells

let of_tuple_set c ~n ts =
  let m = create ~n ~arity:(Tuple_set.arity ts) in
  Tuple_set.iter (fun tup -> set c m tup (Circuit.tt c)) ts;
  m

let union c a b =
  if a.arity <> b.arity then invalid_arg "Matrix.union";
  let m = create ~n:a.n ~arity:a.arity in
  iter (fun t g -> add_or c m t g) a;
  iter (fun t g -> add_or c m t g) b;
  m

let inter c a b =
  if a.arity <> b.arity then invalid_arg "Matrix.inter";
  let m = create ~n:a.n ~arity:a.arity in
  iter
    (fun t g ->
      match Hashtbl.find_opt b.cells (encode ~n:b.n t) with
      | Some g' -> set c m t (Circuit.and_ c g g')
      | None -> ())
    a;
  m

let diff c a b =
  if a.arity <> b.arity then invalid_arg "Matrix.diff";
  let m = create ~n:a.n ~arity:a.arity in
  iter
    (fun t g ->
      match Hashtbl.find_opt b.cells (encode ~n:b.n t) with
      | Some g' -> set c m t (Circuit.and_ c g (Circuit.not_ c g'))
      | None -> set c m t g)
    a;
  m

let product c a b =
  let m = create ~n:a.n ~arity:(a.arity + b.arity) in
  iter
    (fun ta ga ->
      iter
        (fun tb gb ->
          set c m (Array.append ta tb) (Circuit.and_ c ga gb))
        b)
    a;
  m

(* Join, indexed on the first column of [b] to avoid the quadratic scan. *)
let join c a b =
  let out_arity = a.arity + b.arity - 2 in
  if out_arity < 1 then invalid_arg "Matrix.join: result arity 0";
  let m = create ~n:a.n ~arity:out_arity in
  let index : (int, (int array * Circuit.gate) list) Hashtbl.t =
    Hashtbl.create 64
  in
  iter
    (fun tb gb ->
      let k = tb.(0) in
      let rest = Array.sub tb 1 (b.arity - 1) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt index k) in
      Hashtbl.replace index k ((rest, gb) :: prev))
    b;
  iter
    (fun ta ga ->
      let last = ta.(a.arity - 1) in
      let head = Array.sub ta 0 (a.arity - 1) in
      match Hashtbl.find_opt index last with
      | None -> ()
      | Some entries ->
          List.iter
            (fun (rest, gb) ->
              add_or c m (Array.append head rest) (Circuit.and_ c ga gb))
            entries)
    a;
  m

let transpose c a =
  if a.arity <> 2 then invalid_arg "Matrix.transpose";
  let m = create ~n:a.n ~arity:2 in
  iter (fun t g -> set c m [| t.(1); t.(0) |] g) a;
  m

let equal_cells a b =
  cell_count a = cell_count b
  && Hashtbl.fold
       (fun code g acc ->
         acc
         && match Hashtbl.find_opt b.cells code with
            | Some g' -> g.Circuit.id = g'.Circuit.id
            | None -> false)
       a.cells true

(* Transitive closure by iterative squaring; terminates because the
   universe is finite and gates are hash-consed (fixpoint detected by
   structural equality of the sparse matrices). *)
let closure c a =
  if a.arity <> 2 then invalid_arg "Matrix.closure";
  let rec fix r steps =
    if steps > a.n + 1 then r
    else
      let r2 = union c r (join c r r) in
      if equal_cells r r2 then r else fix r2 (steps * 2)
  in
  fix a 1

let iden c ~n =
  let m = create ~n ~arity:2 in
  for i = 0 to n - 1 do
    set c m [| i; i |] (Circuit.tt c)
  done;
  m

let univ c ~n =
  let m = create ~n ~arity:1 in
  for i = 0 to n - 1 do
    set c m [| i |] (Circuit.tt c)
  done;
  m

let singleton c ~n tuple =
  let m = create ~n ~arity:(Array.length tuple) in
  set c m tuple (Circuit.tt c);
  m
