(** Ground evaluator: expressions and formulas against a concrete
    instance.  Validates solver output and serves as the differential
    oracle in property tests. *)

type env = (string * int) list

val expr : Instance.t -> env -> Ast.expr -> Tuple_set.t
val formula : Instance.t -> env -> Ast.formula -> bool
val check : Instance.t -> Ast.formula -> bool
