(* A satisfying instance: a concrete tuple set for every relation. *)

type t = {
  universe : Universe.t;
  map : Tuple_set.t Relation.Map.t;
}

let make universe bindings =
  {
    universe;
    map =
      List.fold_left
        (fun m (r, ts) -> Relation.Map.add r ts m)
        Relation.Map.empty bindings;
  }

let universe t = t.universe

let value t rel =
  match Relation.Map.find_opt rel t.map with
  | Some ts -> ts
  | None -> Tuple_set.empty (Relation.arity rel)

let relations t = List.map fst (Relation.Map.bindings t.map)

(* Atoms (names) in a unary relation. *)
let atoms_of t rel =
  Tuple_set.to_list (value t rel)
  |> List.map (fun tup -> Universe.name t.universe tup.(0))

(* Pairs of names in a binary relation. *)
let pairs_of t rel =
  Tuple_set.to_list (value t rel)
  |> List.map (fun tup ->
         (Universe.name t.universe tup.(0), Universe.name t.universe tup.(1)))

(* The unary image of [atom] under binary relation [rel]: atom.rel *)
let image t rel atom_name =
  let a = Universe.atom t.universe atom_name in
  Tuple_set.to_list (value t rel)
  |> List.filter_map (fun tup ->
         if tup.(0) = a then Some (Universe.name t.universe tup.(1))
         else None)

let pp ppf t =
  Relation.Map.iter
    (fun r ts ->
      Fmt.pf ppf "%s = %a@." (Relation.name r)
        (Tuple_set.pp (Universe.name t.universe))
        ts)
    t.map
