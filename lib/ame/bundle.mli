(** A bundle: the set of app models jointly installed on a device, plus
    the paper's Algorithm 1 (passive-intent target resolution). *)

type t

val of_models : App_model.t list -> t
val apps : t -> App_model.t list

val all_components : t -> (App_model.t * App_model.component_model) list

val all_intents :
  t -> (App_model.t * App_model.component_model * App_model.intent_model) list

val find_component :
  t -> string -> (App_model.t * App_model.component_model) option

(** Does the intent (viewed structurally) resolve to the component?
    Explicit intents match by class name; implicit ones by filter. *)
val resolves_to :
  App_model.intent_model -> App_model.component_model -> bool

(** Algorithm 1: for each passive intent [p], every intent that requests
    a result and targets [p]'s sender contributes its own sender as a
    resolved target of [p]. *)
val update_passive_targets : t -> t

(** Aggregate statistics (the Table II columns). *)
type stats = {
  n_apps : int;
  n_components : int;
  n_intents : int;
  n_intent_filters : int;
  n_paths : int;
}

val stats : t -> stats
val pp : Format.formatter -> t -> unit
