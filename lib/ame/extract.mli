(** AME: the Android Model Extractor.  Runs the static analyses over each
    component's bytecode and assembles the app's architectural model. *)

open Separ_dalvik

(** Extract one component's model plus its dynamic receiver registrations
    (target class, filter).  [k1] selects one-call-site context
    sensitivity (default); [all_methods] disables entry-point
    reachability pruning (baseline-tool behaviour). *)
val extract_component :
  ?k1:bool ->
  ?all_methods:bool ->
  Apk.t ->
  Separ_android.Component.t ->
  App_model.component_model * (string * Separ_android.Intent_filter.t) list

(** Extract the full app model; records wall-clock extraction time and
    app size for the Figure 5 experiment. *)
val extract : ?k1:bool -> ?all_methods:bool -> Apk.t -> App_model.t

(** Extractor version; part of every AME cache key, bumped whenever
    extraction semantics change. *)
val version : string

(** The AME tier name in a {!Separ_cache.Store.t} ("ame"). *)
val cache_tier : string

(** The content-addressed cache key for one app's extraction: digest of
    the APK content, [version], and the analysis flags. *)
val cache_key : k1:bool -> all_methods:bool -> Apk.t -> string

(** {!extract} through a read-through persistent cache: a hit returns
    the stored model without running the static analyses; a miss
    extracts and stores.  [?cache:None] is plain {!extract}. *)
val extract_cached :
  ?cache:Separ_cache.Store.t ->
  ?k1:bool ->
  ?all_methods:bool ->
  Apk.t ->
  App_model.t
