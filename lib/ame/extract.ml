(* AME: the Android Model Extractor.

   Architecture extraction reads the manifest (components, permissions,
   filters, public surface); intent, path and permission extraction run
   the static analyses of {!Separ_static.Interp} over the component's
   bytecode; the facts are assembled into an {!App_model.t}.

   Where the analysis resolves a property to several values (e.g. a
   conditionally assigned action), one intent model is emitted per value,
   as each contributes a distinct event message — the paper's multi-value
   expansion.  Sensitive paths whose sink is dynamically guarded by the
   very permission that protects the sink resource are reported as
   code-enforced permissions of the component rather than as open paths. *)

open Separ_android
open Separ_dalvik
module Interp = Separ_static.Interp

let expansion_cap = 16

(* Expand one intent fact into concrete intent models: cartesian product
   over multi-valued action / data type / data scheme / target, capped. *)
let expand_fact ~pkg ~cmp idx (f : Interp.intent_fact) : App_model.intent_model list
    =
  let options_of unresolved = function
    | [] -> [ None ]
    | vs -> List.map (fun v -> Some v) vs @ if unresolved then [ None ] else []
  in
  let actions =
    match f.Interp.if_actions with
    | None -> [ None ] (* unresolved: single wildcard entity *)
    | Some vs -> options_of false (List.sort_uniq compare vs)
  in
  let actions = match actions with [] -> [ None ] | a -> a in
  let types = options_of false f.Interp.if_data_types in
  let schemes = options_of false f.Interp.if_data_schemes in
  let hosts =
    match f.Interp.if_data_hosts with [] -> [ None ] | hs -> List.map Option.some hs
  in
  let targets =
    match f.Interp.if_targets with [] -> [ None ] | ts -> List.map Option.some ts
  in
  let combos =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun ty ->
            List.concat_map
              (fun sch ->
                List.concat_map
                  (fun h -> List.map (fun tg -> (a, ty, sch, h, tg)) targets)
                  hosts)
              schemes)
          types)
      actions
  in
  let combos =
    if List.length combos > expansion_cap then
      List.filteri (fun i _ -> i < expansion_cap) combos
    else combos
  in
  List.mapi
    (fun j (action, ty, scheme, host, target) ->
      {
        App_model.im_id = Printf.sprintf "%s/%s/intent%d_%d" pkg cmp idx j;
        im_sender = cmp;
        im_target = target;
        im_action = action;
        im_action_unresolved = f.Interp.if_actions = None;
        im_categories = f.Interp.if_categories;
        im_data_type = ty;
        im_data_scheme = scheme;
        im_data_host = (if scheme = None then None else host);
        im_extras = f.Interp.if_extra_taints;
        im_icc = f.Interp.if_icc;
        im_wants_result = f.Interp.if_wants_result;
        im_passive = f.Interp.if_passive;
        im_resolved_targets = [];
      })
    combos

(* Paths: keep open paths; convert correctly-guarded sinks into enforced
   permissions. *)
let split_paths (facts : Interp.facts) =
  List.fold_left
    (fun (open_paths, enforced) (p : Interp.path_fact) ->
      let sink_perm = Resource.permission p.Interp.pf_sink in
      match sink_perm with
      | Some perm when List.mem perm p.Interp.pf_guards ->
          (open_paths, perm :: enforced)
      | _ ->
          ( App_model.{ pm_source = p.Interp.pf_source; pm_sink = p.Interp.pf_sink }
            :: open_paths,
            enforced ))
    ([], []) facts.Interp.paths

(* Returns the component model plus the dynamic receiver registrations
   its code performs (target class, filter). *)
let extract_component ?(k1 = true) ?(all_methods = false) (apk : Apk.t)
    (comp : Component.t) :
    App_model.component_model * (string * Intent_filter.t) list =
  let facts = Interp.analyze_component ~k1 ~all_methods apk comp in
  let pkg = Apk.package apk in
  let open_paths, enforced = split_paths facts in
  let intents =
    List.concat
      (List.mapi
         (fun idx f -> expand_fact ~pkg ~cmp:comp.Component.name idx f)
         facts.Interp.intents)
  in
  let required =
    List.sort_uniq compare
      ((match comp.Component.permission with Some p -> [ p ] | None -> [])
      @ enforced)
  in
  ( {
    App_model.cm_name = comp.Component.name;
    cm_kind = comp.Component.kind;
    cm_public = Component.is_public comp;
    cm_filters = comp.Component.intent_filters;
    cm_required_permissions = required;
    cm_uses_permissions =
      List.filter
        (fun p -> Manifest.has_permission apk.Apk.manifest p)
        facts.Interp.uses_permissions;
    cm_paths = List.rev open_paths;
    cm_intents = intents;
    cm_reads_extras = facts.Interp.reads_extra_keys;
    cm_dynamic_filters = [];
    },
    List.map
      (fun (target, actions) ->
        ( Option.value ~default:comp.Component.name target,
          Intent_filter.make ~actions () ))
      facts.Interp.dynamic_filters )

module Trace = Separ_obs.Trace
module Metrics = Separ_obs.Metrics
module Log = Separ_obs.Log

let c_apps = Metrics.counter "ame.apps_extracted"
let c_components = Metrics.counter "ame.components_extracted"
let c_intents = Metrics.counter "ame.intent_models"
let h_extract_ms = Metrics.histogram "ame.extraction_ms"

(* Extract the full app model; records wall-clock time and app size for
   the Figure 5 experiment.  Each app gets one [ame.extract] span whose
   attributes carry the Figure-5 coordinates (instruction count, number
   of components/intents). *)
let extract ?(k1 = true) ?(all_methods = false) (apk : Apk.t) : App_model.t =
  let model, extraction_ms =
    Trace.timed "ame.extract" (fun () ->
        let extracted =
          List.map
            (extract_component ~k1 ~all_methods apk)
            apk.Apk.manifest.Manifest.components
        in
        (* Dynamic receiver registrations observed anywhere in the app are
           attached to the component class they name (or, failing that, to
           the registering component).  SEPAR's formal encoding ignores this
           field — the paper's documented limitation — but baseline tools
           read it. *)
        let registrations = List.concat_map snd extracted in
        let components =
          List.map
            (fun (cm, _) ->
              let mine =
                List.filter_map
                  (fun (tgt, f) ->
                    if tgt = cm.App_model.cm_name then Some f else None)
                  registrations
              in
              { cm with App_model.cm_dynamic_filters = mine })
            extracted
        in
        let n_intents =
          List.fold_left
            (fun acc cm -> acc + List.length cm.App_model.cm_intents)
            0 components
        in
        Trace.add_attr "package" (Trace.Str (Apk.package apk));
        Trace.add_attr "size" (Trace.Int (Apk.size apk));
        Trace.add_attr "components" (Trace.Int (List.length components));
        Trace.add_attr "intents" (Trace.Int n_intents);
        Metrics.incr c_apps;
        Metrics.add c_components (List.length components);
        Metrics.add c_intents n_intents;
        {
          App_model.am_package = Apk.package apk;
          am_declared_permissions = apk.Apk.manifest.Manifest.uses_permissions;
          am_components = components;
          am_extraction_ms = 0.0;
          am_size = Apk.size apk;
        })
  in
  Metrics.observe h_extract_ms extraction_ms;
  Log.info "ame.extract"
    ~fields:
      [
        ("package", Trace.Str model.App_model.am_package);
        ("components", Trace.Int (List.length model.App_model.am_components));
        ("extraction_ms", Trace.Float extraction_ms);
      ];
  { model with App_model.am_extraction_ms = extraction_ms }

(* Bump whenever extraction semantics change: static-analysis precision,
   multi-value expansion, path/permission splitting, the model record
   itself.  Old cache entries then key under a stale version string and
   degrade to misses. *)
let version = "ame-v1"

let cache_tier = "ame"

(* Content-addressed key for one app's extraction: the APK's bytes (the
   marshalled manifest + classes stand in for the .apk file), the
   extractor version, and the analysis flags.  Any change to the app or
   the extractor yields a fresh key. *)
let cache_key ~k1 ~all_methods (apk : Apk.t) =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s;k1=%b;all_methods=%b;%s" version k1 all_methods
          (Marshal.to_string apk [])))

(* [extract], with a read-through persistent cache.  A hit skips the
   static analyses entirely ([ame.apps_extracted] does not move); the
   stored model's extraction time is preserved, so warm reports still
   carry the Figure-5 coordinates of the original run. *)
let extract_cached ?cache ?(k1 = true) ?(all_methods = false) (apk : Apk.t) :
    App_model.t =
  match cache with
  | None -> extract ~k1 ~all_methods apk
  | Some store -> (
      let key = cache_key ~k1 ~all_methods apk in
      match Separ_cache.Store.find store ~tier:cache_tier ~key with
      | Some (model : App_model.t) -> model
      | None ->
          let model = extract ~k1 ~all_methods apk in
          Separ_cache.Store.store store ~tier:cache_tier ~key model;
          model)
