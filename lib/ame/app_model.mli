(** The architectural model of one app as extracted by AME — the formal
    specification the analysis-and-synthesis engine consumes (the OCaml
    counterpart of the paper's per-app Alloy module, Listing 4). *)

open Separ_android

type intent_model = {
  im_id : string;                    (** unique within the bundle *)
  im_sender : string;                (** component name *)
  im_target : string option;         (** explicit target class *)
  im_action : string option;
  im_action_unresolved : bool;       (** statically unresolvable action *)
  im_categories : string list;
  im_data_type : string option;
  im_data_scheme : string option;
  im_data_host : string option;      (** URI authority *)
  im_extras : Resource.t list;       (** taint of the carried extras *)
  im_icc : Api.icc_kind;
  im_wants_result : bool;
  im_passive : bool;                 (** a setResult reply *)
  im_resolved_targets : string list; (** passive targets (Algorithm 1) *)
}

type path_model = {
  pm_source : Resource.t;
  pm_sink : Resource.t;
}

type component_model = {
  cm_name : string;
  cm_kind : Component.kind;
  cm_public : bool;
  cm_filters : Intent_filter.t list;
  cm_required_permissions : Permission.t list;
      (** enforced on callers: manifest attribute + code-level checks *)
  cm_uses_permissions : Permission.t list;
  cm_paths : path_model list;
  cm_intents : intent_model list;
  cm_reads_extras : string list;
      (** extra keys read from incoming intents *)
  cm_dynamic_filters : Intent_filter.t list;
      (** runtime-registered filters; SEPAR's formal model deliberately
          ignores these (the paper's documented limitation) *)
}

type t = {
  am_package : string;
  am_declared_permissions : Permission.t list;
  am_components : component_model list;
  am_extraction_ms : float;  (** wall-clock extraction time (Figure 5) *)
  am_size : int;             (** app size in IR instructions (Figure 5) *)
}

val component : t -> string -> component_model option
val public_components : t -> component_model list
val all_intents : t -> intent_model list

(** View an extracted intent model structurally, for resolution against
    filters. *)
val to_intent : intent_model -> Intent.t

val pp_intent : Format.formatter -> intent_model -> unit
val pp_component : Format.formatter -> component_model -> unit
val pp : Format.formatter -> t -> unit
