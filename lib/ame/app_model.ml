(* The architectural model of one app, as extracted by AME: the formal
   specification that the analysis and synthesis engine consumes.  This
   is the OCaml counterpart of the per-app Alloy module of the paper's
   Listing 4. *)

open Separ_android

type intent_model = {
  im_id : string;                   (* unique within the bundle *)
  im_sender : string;               (* component name *)
  im_target : string option;        (* explicit target class, if any *)
  im_action : string option;
  im_action_unresolved : bool;      (* statically unresolvable action *)
  im_categories : string list;
  im_data_type : string option;
  im_data_scheme : string option;
  im_data_host : string option;     (* URI authority *)
  im_extras : Resource.t list;      (* taint of the carried extras *)
  im_icc : Api.icc_kind;
  im_wants_result : bool;
  im_passive : bool;                (* a setResult reply: no addressing info *)
  im_resolved_targets : string list; (* passive-intent targets (Algorithm 1) *)
}

type path_model = {
  pm_source : Resource.t;
  pm_sink : Resource.t;
}

type component_model = {
  cm_name : string;
  cm_kind : Component.kind;
  cm_public : bool;
  cm_filters : Intent_filter.t list;
  cm_required_permissions : Permission.t list;
      (* enforced on callers: manifest attribute + code-level checks *)
  cm_uses_permissions : Permission.t list;
      (* app permissions this component actually exercises *)
  cm_paths : path_model list;
  cm_intents : intent_model list;
  cm_reads_extras : string list; (* extra keys read from incoming intents *)
  cm_dynamic_filters : Intent_filter.t list;
      (* filters registered at runtime; SEPAR's formal model deliberately
         ignores these (the paper's documented limitation), but baseline
         tools may consume them *)
}

type t = {
  am_package : string;
  am_declared_permissions : Permission.t list;
  am_components : component_model list;
  am_extraction_ms : float; (* wall-clock extraction time (Figure 5) *)
  am_size : int;            (* app size in IR instructions (Figure 5) *)
}

let component t name =
  List.find_opt (fun c -> c.cm_name = name) t.am_components

let public_components t = List.filter (fun c -> c.cm_public) t.am_components

let all_intents t = List.concat_map (fun c -> c.cm_intents) t.am_components

(* View an extracted intent model as a structural intent, for resolution
   against filters. *)
let to_intent (im : intent_model) : Intent.t =
  Intent.make ?target:im.im_target ?action:im.im_action
    ~categories:im.im_categories ?data_type:im.im_data_type
    ?data_scheme:im.im_data_scheme ?data_host:im.im_data_host
    ~extras:
      (List.map
         (fun r ->
           Intent.{ key = Resource.to_string r; value = ""; taint = [ r ] })
         im.im_extras)
    ~wants_result:im.im_wants_result ()

let pp_intent ppf im =
  Fmt.pf ppf "%s: %s%s via %s extras=[%a]%s" im.im_id
    (match im.im_action with
    | Some a -> "action=" ^ a
    | None -> if im.im_action_unresolved then "action=<?>" else "no action")
    (match im.im_target with Some t -> " target=" ^ t | None -> "")
    (Api.icc_kind_to_string im.im_icc)
    Fmt.(list ~sep:(any ",") Resource.pp)
    im.im_extras
    (if im.im_passive then " (passive)" else "")

let pp_component ppf c =
  Fmt.pf ppf "@[<v 2>%s %s%s@,filters: %d  required-perms: [%a]@,paths: %a@,%a@]"
    (Component.kind_to_string c.cm_kind)
    c.cm_name
    (if c.cm_public then " (public)" else "")
    (List.length c.cm_filters)
    Fmt.(list ~sep:(any ",") Permission.pp)
    c.cm_required_permissions
    Fmt.(
      list ~sep:(any " ") (fun ppf p ->
          pf ppf "%a->%a" Resource.pp p.pm_source Resource.pp p.pm_sink))
    c.cm_paths
    Fmt.(list ~sep:cut pp_intent)
    c.cm_intents

let pp ppf t =
  Fmt.pf ppf "@[<v>app %s (%d instrs, %.1f ms)@,%a@]" t.am_package t.am_size
    t.am_extraction_ms
    Fmt.(list ~sep:cut pp_component)
    t.am_components
