(* A bundle: the set of app models jointly installed on a device.  This
   module also implements the paper's Algorithm 1 — resolving the target
   components of *passive* intents (the reply intents of
   [startActivityForResult]/[setResult] round trips, which carry no
   addressing information of their own). *)

open Separ_android

type t = {
  apps : App_model.t list;
}

let of_models apps = { apps }
let apps t = t.apps

let all_components t =
  List.concat_map
    (fun app ->
      List.map (fun c -> (app, c)) app.App_model.am_components)
    t.apps

let all_intents t =
  List.concat_map
    (fun app ->
      List.concat_map
        (fun c -> List.map (fun i -> (app, c, i)) c.App_model.cm_intents)
        app.App_model.am_components)
    t.apps

let find_component t name =
  List.find_map
    (fun app ->
      Option.map (fun c -> (app, c)) (App_model.component app name))
    t.apps

(* Does intent [im] (viewed structurally) resolve to component [c]?
   Explicit intents match by class name; implicit ones by filter and
   delivery-class compatibility. *)
let resolves_to (im : App_model.intent_model) (c : App_model.component_model) =
  Api.delivery_kind im.App_model.im_icc = c.App_model.cm_kind
  &&
  match im.App_model.im_target with
  | Some target -> target = c.App_model.cm_name
  | None ->
      c.App_model.cm_public
      && (not im.App_model.im_passive)
      && List.exists
           (fun f -> Intent_filter.matches ~intent:(App_model.to_intent im) f)
           c.App_model.cm_filters

(* Algorithm 1 of the paper: for each passive intent p, find the intents
   i that request a result and whose target is p's sender; i's sender
   becomes a resolved target of p. *)
let update_passive_targets t =
  let intents = all_intents t in
  let resolve_passive (_app, cmp, p) =
    if not p.App_model.im_passive then p
    else
      let targets =
        List.filter_map
          (fun (_, sender_cmp, i) ->
            if i.App_model.im_wants_result && resolves_to i cmp then
              Some sender_cmp.App_model.cm_name
            else None)
          intents
      in
      { p with App_model.im_resolved_targets = List.sort_uniq compare targets }
  in
  let apps =
    List.map
      (fun app ->
        let components =
          List.map
            (fun c ->
              let intents =
                List.map
                  (fun i -> resolve_passive (app, c, i))
                  c.App_model.cm_intents
              in
              { c with App_model.cm_intents = intents })
            app.App_model.am_components
        in
        { app with App_model.am_components = components })
      t.apps
  in
  { apps }

(* Aggregate statistics used by the Table II experiment. *)
type stats = {
  n_apps : int;
  n_components : int;
  n_intents : int;
  n_intent_filters : int;
  n_paths : int;
}

let stats t =
  let components = all_components t in
  {
    n_apps = List.length t.apps;
    n_components = List.length components;
    n_intents = List.length (all_intents t);
    n_intent_filters =
      List.fold_left
        (fun acc (_, c) -> acc + List.length c.App_model.cm_filters)
        0 components;
    n_paths =
      List.fold_left
        (fun acc (_, c) -> acc + List.length c.App_model.cm_paths)
        0 components;
  }

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut App_model.pp) t.apps
