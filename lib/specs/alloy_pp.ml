(* Emission of the encoded formal model as Alloy-style text — the
   counterpart of the paper's FreeMarker translation of extracted app
   models into Alloy modules (Listings 3 and 4).  Useful for inspecting
   exactly what the synthesizer sees, and for diffing two encodings. *)

open Separ_android
open Separ_ame

let buf_add = Buffer.add_string

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

(* The fixed framework meta-model: the androidDeclaration module. *)
let meta_model () =
  String.concat "\n"
    [
      "module androidDeclaration";
      "";
      "abstract sig Application { appPermissions: set Permission }";
      "abstract sig Component {";
      "  app: one Application,";
      "  intentFilters: set IntentFilter,";
      "  permissions: set Permission,";
      "  paths: set DetailedPath";
      "}";
      "sig Activity, Service, Receiver, Provider extends Component {}";
      "abstract sig IntentFilter {";
      "  actions: some Action,";
      "  dataType: set DataType,";
      "  dataScheme: set DataScheme,";
      "  dataHost: set DataHost,";
      "  categories: set Category";
      "}";
      "fact IFandComponent { all i: IntentFilter | one i.~intentFilters }";
      "fact NoIFforProviders {";
      "  no i: IntentFilter | i.~intentFilters in Provider";
      "}";
      "abstract sig Intent {";
      "  sender: one Component,";
      "  receiver: lone Component,";
      "  action: lone Action,";
      "  categories: set Category,";
      "  dataType: lone DataType,";
      "  dataScheme: lone DataScheme,";
      "  extra: set Resource";
      "}";
      "abstract sig DetailedPath { source: one Resource, sink: one Resource }";
      "sig Action, Category, DataType, DataScheme, DataHost, Resource, Permission {}";
      "one sig Device { apps: set Application }";
      "";
    ]

let pp_set name = function
  | [] -> Printf.sprintf "  no %s\n" name
  | xs ->
      Printf.sprintf "  %s = %s\n" name
        (String.concat " + " (List.map sanitize xs))

let pp_opt name = function
  | None -> Printf.sprintf "  no %s\n" name
  | Some x -> Printf.sprintf "  %s = %s\n" name (sanitize x)

(* One app model as an Alloy module (the paper's Listing 4 shape). *)
let app_module (app : App_model.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (buf_add buf) fmt in
  add "// module generated from %s\n" app.App_model.am_package;
  add "open androidDeclaration\n\n";
  let app_atom = sanitize ("App_" ^ app.App_model.am_package) in
  add "one sig %s extends Application {}{\n%s}\n\n" app_atom
    (pp_set "appPermissions"
       (List.map Permission.short app.App_model.am_declared_permissions));
  List.iter
    (fun (c : App_model.component_model) ->
      let cname = sanitize c.App_model.cm_name in
      add "one sig %s extends %s {}{\n" cname
        (Component.kind_to_string c.App_model.cm_kind);
      add "  app in %s\n" app_atom;
      if c.App_model.cm_filters = [] then add "  no intentFilters\n"
      else
        add "  intentFilters = %s\n"
          (String.concat " + "
             (List.mapi (fun i _ -> Printf.sprintf "%s_f%d" cname i)
                c.App_model.cm_filters));
      buf_add buf
        (pp_set "permissions"
           (List.map Permission.short c.App_model.cm_required_permissions));
      if c.App_model.cm_paths = [] then add "  no paths\n"
      else
        add "  paths = %s\n"
          (String.concat " + "
             (List.mapi (fun i _ -> Printf.sprintf "path%s%d" cname i)
                c.App_model.cm_paths));
      add "}\n";
      List.iteri
        (fun i (f : Intent_filter.t) ->
          add "one sig %s_f%d extends IntentFilter {}{\n" cname i;
          buf_add buf (pp_set "actions" f.Intent_filter.actions);
          buf_add buf (pp_set "categories" f.Intent_filter.categories);
          buf_add buf (pp_set "dataType" f.Intent_filter.data_types);
          buf_add buf (pp_set "dataScheme" f.Intent_filter.data_schemes);
          buf_add buf (pp_set "dataHost" f.Intent_filter.data_hosts);
          add "}\n")
        c.App_model.cm_filters;
      List.iteri
        (fun i (p : App_model.path_model) ->
          add "one sig path%s%d extends DetailedPath {}{\n" cname i;
          add "  source = %s\n" (Resource.to_string p.App_model.pm_source);
          add "  sink = %s\n" (Resource.to_string p.App_model.pm_sink);
          add "}\n")
        c.App_model.cm_paths;
      List.iter
        (fun (im : App_model.intent_model) ->
          add "one sig %s extends Intent {}{\n" (sanitize im.App_model.im_id);
          add "  sender = %s\n" cname;
          buf_add buf
            (pp_opt "receiver"
               (match
                  (im.App_model.im_target, im.App_model.im_resolved_targets)
                with
               | Some t, _ -> Some t
               | None, t :: _ -> Some t
               | None, [] -> None));
          buf_add buf (pp_opt "action" im.App_model.im_action);
          buf_add buf (pp_set "categories" im.App_model.im_categories);
          buf_add buf (pp_opt "dataType" im.App_model.im_data_type);
          buf_add buf (pp_opt "dataScheme" im.App_model.im_data_scheme);
          buf_add buf
            (pp_set "extra"
               (List.map Resource.to_string im.App_model.im_extras));
          add "}\n")
        c.App_model.cm_intents;
      add "\n")
    app.App_model.am_components;
  Buffer.contents buf

(* The whole bundle: meta-model followed by one module per app. *)
let bundle_spec (bundle : Bundle.t) =
  String.concat "\n"
    (meta_model () :: List.map app_module (Bundle.apps bundle))
