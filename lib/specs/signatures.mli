(** Axiomatized inter-app vulnerability signatures — SEPAR's plugin
    layer.  A signature declares its scope configuration (how much
    malicious machinery the scenario needs), named witness relations, the
    relational-logic formula characterising an exploit, and a description
    renderer.  {!builtin} covers the paper's catalogue; {!register} adds
    user plugins. *)

type t = {
  name : string;
  config : Encode.config;
  witnesses : (string * Encode.witness_domain) list;
  formula : Encode.env -> Separ_relog.Ast.formula;
  describe : Scenario.t -> string;
}

(** Decode a satisfying instance into a scenario (witness bindings plus
    the synthesized malicious intent/filter). *)
val decode : t -> Encode.env -> Separ_relog.Instance.t -> Scenario.t

(** Unauthorized intent receipt of an implicit, extra-carrying intent. *)
val intent_hijack : t

(** A public activity with an ICC-triggered sensitive path. *)
val activity_launch : t

(** A public service with an ICC-triggered sensitive path. *)
val service_launch : t

(** A public component exercising a dangerous permission for unchecked
    callers. *)
val privilege_escalation : t

(** A sensitive resource flows out of one device component inside an
    intent and reaches another that writes it to an observable sink. *)
val information_leakage : t

(** A sensitive resource crosses two ICC hops — source component,
    forwarding component, sink component — before leaking (the paper's
    OwnCloud-style chain). *)
val information_leakage_2hop : t

val builtin : t list

(** Append a user-provided signature to the registry. *)
val register : t -> unit

val all : unit -> t list
val find : string -> t option
