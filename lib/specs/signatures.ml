(* Axiomatized inter-app vulnerability signatures — the plugin layer of
   SEPAR.  Each signature declares its scope configuration (how much
   malicious machinery the scenario needs), its witness relations, the
   relational-logic formula characterising an exploit, and a decoder from
   satisfying instances to domain scenarios.

   The five signatures below cover the paper's catalogue: Intent hijack,
   Activity launch, Service launch, privilege escalation, and
   inter-component information leakage.  Users can register additional
   signatures through {!register}. *)

open Separ_android
open Separ_relog
open Ast.Dsl

type t = {
  name : string;
  config : Encode.config;
  witnesses : (string * Encode.witness_domain) list;
  formula : Encode.env -> Ast.formula;
  describe : Scenario.t -> string;
}

(* --- decoding helpers ---------------------------------------------------- *)

let strip prefix s =
  let n = String.length prefix in
  if String.length s >= n && String.sub s 0 n = prefix then
    String.sub s n (String.length s - n)
  else s

let decode_mal_intent (env : Encode.env) inst =
  let atoms rel = Instance.image inst rel Encode.mal_intent_atom in
  match Instance.atoms_of inst env.Encode.r_mal_intent with
  | [] -> None
  | _ ->
      let target = List.nth_opt (atoms env.Encode.r_target) 0 in
      let action =
        Option.map (strip "act:") (List.nth_opt (atoms env.Encode.r_iaction) 0)
      in
      let delivery =
        match atoms env.Encode.r_ikind with
        | [ "icc:service" ] -> Component.Service
        | [ "icc:receiver" ] -> Component.Receiver
        | [ "icc:provider" ] -> Component.Provider
        | _ -> Component.Activity
      in
      Some
        Scenario.{
          mi_target = target;
          mi_action = action;
          mi_categories = List.map (strip "cat:") (atoms env.Encode.r_icats);
          mi_data_type =
            Option.map (strip "typ:") (List.nth_opt (atoms env.Encode.r_idtype) 0);
          mi_data_scheme =
            Option.map (strip "sch:")
              (List.nth_opt (atoms env.Encode.r_idscheme) 0);
          mi_data_host =
            Option.map (strip "hst:")
              (List.nth_opt (atoms env.Encode.r_idhost) 0);
          mi_extras =
            List.filter_map
              (fun a -> Resource.of_string (strip "res:" a))
              (atoms env.Encode.r_iextras);
          mi_delivery = delivery;
        }

let decode_mal_filter (env : Encode.env) inst =
  let atoms rel = Instance.image inst rel Encode.mal_filter_atom in
  match Instance.atoms_of inst env.Encode.r_mal_filter with
  | [] -> None
  | _ ->
      Some
        Scenario.{
          mf_actions = List.map (strip "act:") (atoms env.Encode.r_if_actions);
          mf_categories = List.map (strip "cat:") (atoms env.Encode.r_if_cats);
          mf_data_types = List.map (strip "typ:") (atoms env.Encode.r_if_types);
          mf_data_schemes =
            List.map (strip "sch:") (atoms env.Encode.r_if_schemes);
          mf_data_hosts = List.map (strip "hst:") (atoms env.Encode.r_if_hosts);
        }

let decode (sig_ : t) (env : Encode.env) inst : Scenario.t =
  let witnesses =
    List.map
      (fun (name, rel) -> (name, Instance.atoms_of inst rel))
      env.Encode.r_witnesses
  in
  let s =
    Scenario.{
      sc_kind = sig_.name;
      sc_witnesses = witnesses;
      sc_mal_intent = decode_mal_intent env inst;
      sc_mal_filter = decode_mal_filter env inst;
      sc_description = "";
    }
  in
  { s with Scenario.sc_description = sig_.describe s }

(* --- the signatures ------------------------------------------------------ *)

(* Unauthorized intent receipt: a device component sends an implicit,
   extra-carrying intent that a filter registered by a not-yet-installed
   component would intercept. *)
let intent_hijack : t =
  {
    name = "intent_hijack";
    config = { Encode.with_mal_intent = false; with_mal_filter = true };
    witnesses = [ ("hijackedIntent", Encode.Wintent) ];
    formula =
      (fun env ->
        let i = Encode.witness env "hijackedIntent" in
        let mf = Ast.Rel env.Encode.r_mal_filter in
        i <: Encode.device_intents env
        &&: no (i |. rel env.Encode.r_target)
        &&: not_ (i <: Ast.Rel env.Encode.r_passive)
        &&: some (i |. rel env.Encode.r_iextras)
        &&: not_ (i <: Ast.Rel env.Encode.r_provider) (* providers excluded *)
        &&: Encode.action_test env i mf
        &&: Encode.category_test env i mf
        &&: Encode.data_test env i mf);
    describe =
      (fun s ->
        match Scenario.witness1 s "hijackedIntent" with
        | Some i ->
            Printf.sprintf
              "A malicious component can register an intent filter that \
               intercepts implicit intent %s and steal its payload."
              i
        | None -> "intent hijack");
  }

(* Activity/Service launch: a public device component with an
   ICC-triggered sensitive path can be driven by a crafted intent from a
   component outside the device. *)
let launch kind_name kind_rel_of : t =
  {
    name = kind_name ^ "_launch";
    config = { Encode.with_mal_intent = true; with_mal_filter = false };
    witnesses =
      [ ("launchedCmp", Encode.Wcomponent); ("triggeredPath", Encode.Wpath) ];
    formula =
      (fun env ->
        let c = Encode.witness env "launchedCmp" in
        let p = Encode.witness env "triggeredPath" in
        let mi = Ast.Rel env.Encode.r_mal_intent in
        c <: Encode.device_components env
        &&: (c <: Ast.Rel (kind_rel_of env))
        &&: (c <: Ast.Rel env.Encode.r_exported)
        &&: (p <: (c |. rel env.Encode.r_cmp_paths))
        &&: ((p |. rel env.Encode.r_path_src)
             =: Encode.resource_const env Resource.Icc)
        &&: some (mi |. rel env.Encode.r_iextras)
        &&: Encode.delivered env mi c);
    describe =
      (fun s ->
        match Scenario.witness1 s "launchedCmp" with
        | Some c ->
            Printf.sprintf
              "A crafted intent can launch exported component %s, whose \
               entry point feeds a sensitive operation."
              c
        | None -> kind_name ^ " launch");
  }

let activity_launch = launch "activity" (fun env -> env.Encode.r_activity)
let service_launch = launch "service" (fun env -> env.Encode.r_service)

(* Privilege escalation: a public device component exercises a dangerous
   permission on behalf of callers without enforcing that permission. *)
let privilege_escalation : t =
  {
    name = "privilege_escalation";
    config = { Encode.with_mal_intent = true; with_mal_filter = false };
    witnesses =
      [
        ("victimCmp", Encode.Wcomponent);
        ("escalatedPath", Encode.Wpath);
        ("escalatedPerm", Encode.Wpermission);
      ];
    formula =
      (fun env ->
        let c = Encode.witness env "victimCmp" in
        let p = Encode.witness env "escalatedPath" in
        let perm = Encode.witness env "escalatedPerm" in
        let mi = Ast.Rel env.Encode.r_mal_intent in
        c <: Encode.device_components env
        &&: (c <: Ast.Rel env.Encode.r_exported)
        &&: (p <: (c |. rel env.Encode.r_cmp_paths))
        &&: ((p |. rel env.Encode.r_path_src)
             =: Encode.resource_const env Resource.Icc)
        &&: (perm =: (p |. rel env.Encode.r_path_snk |. rel env.Encode.r_res_perm))
        &&: (perm <: (c |. rel env.Encode.r_cmp_app |. rel env.Encode.r_app_perms))
        &&: not_ (perm <: (c |. rel env.Encode.r_cmp_req_perms))
        &&: Encode.delivered env mi c);
    describe =
      (fun s ->
        match
          (Scenario.witness1 s "victimCmp", Scenario.witness1 s "escalatedPerm")
        with
        | Some c, Some p ->
            Printf.sprintf
              "Component %s performs an operation requiring %s for any \
               caller, without checking the caller's permission."
              c (strip "perm:" p)
        | _ -> "privilege escalation");
  }

(* Inter-component information leakage: a sensitive resource flows out of
   one device component inside an intent and reaches another device
   component that writes it to an externally observable sink. *)
let information_leakage : t =
  {
    name = "information_leakage";
    config = { Encode.with_mal_intent = false; with_mal_filter = false };
    witnesses =
      [
        ("leakIntent", Encode.Wintent);
        ("receiverCmp", Encode.Wcomponent);
        ("leakedResource", Encode.Wresource);
        ("exitPath", Encode.Wpath);
      ];
    formula =
      (fun env ->
        let i = Encode.witness env "leakIntent" in
        let c2 = Encode.witness env "receiverCmp" in
        let s = Encode.witness env "leakedResource" in
        let p2 = Encode.witness env "exitPath" in
        i <: Encode.device_intents env
        &&: (s <: (i |. rel env.Encode.r_iextras))
        &&: not_ (s =: Encode.resource_const env Resource.Icc)
        &&: (c2 <: Encode.device_components env)
        &&: Encode.delivered env i c2
        &&: (p2 <: (c2 |. rel env.Encode.r_cmp_paths))
        &&: ((p2 |. rel env.Encode.r_path_src)
             =: Encode.resource_const env Resource.Icc)
        &&: disj
              (List.map
                 (fun r ->
                   (p2 |. rel env.Encode.r_path_snk)
                   =: Encode.resource_const env r)
                 [ Resource.Log; Resource.Sdcard; Resource.Network;
                   Resource.Sms; Resource.Display ]));
    describe =
      (fun s ->
        match
          ( Scenario.witness1 s "leakedResource",
            Scenario.witness1 s "receiverCmp" )
        with
        | Some r, Some c ->
            Printf.sprintf
              "Sensitive %s flows through ICC into component %s and leaks \
               to an externally observable sink."
              (strip "res:" r) c
        | _ -> "information leakage");
  }

(* Two-hop leakage: a sensitive resource enters a *forwarding* component
   (ICC in, ICC out) and only reaches the observable sink in a third
   component — the OwnCloud-style "chain of intent message passing" of
   the paper's RQ2 discussion.  The single-hop signature cannot see this
   because each component's taint summary is local. *)
let information_leakage_2hop : t =
  {
    name = "information_leakage_2hop";
    config = { Encode.with_mal_intent = false; with_mal_filter = false };
    witnesses =
      [
        ("leakIntent", Encode.Wintent);      (* c1 -> c2, carries s *)
        ("forwarderCmp", Encode.Wcomponent); (* c2: ICC -> ICC path *)
        ("relayIntent", Encode.Wintent);     (* c2 -> c3, carries ICC taint *)
        ("finalCmp", Encode.Wcomponent);     (* c3: ICC -> sink path *)
        ("leakedResource", Encode.Wresource);
      ];
    formula =
      (fun env ->
        let i1 = Encode.witness env "leakIntent" in
        let c2 = Encode.witness env "forwarderCmp" in
        let i2 = Encode.witness env "relayIntent" in
        let c3 = Encode.witness env "finalCmp" in
        let s = Encode.witness env "leakedResource" in
        let fwd_path =
          exists ~base:"p" (c2 |. rel env.Encode.r_cmp_paths) (fun p ->
              ((p |. rel env.Encode.r_path_src)
               =: Encode.resource_const env Resource.Icc)
              &&: ((p |. rel env.Encode.r_path_snk)
                   =: Encode.resource_const env Resource.Icc))
        in
        let exit_path =
          exists ~base:"p" (c3 |. rel env.Encode.r_cmp_paths) (fun p ->
              ((p |. rel env.Encode.r_path_src)
               =: Encode.resource_const env Resource.Icc)
              &&: disj
                    (List.map
                       (fun r ->
                         (p |. rel env.Encode.r_path_snk)
                         =: Encode.resource_const env r)
                       [ Resource.Log; Resource.Sdcard; Resource.Network;
                         Resource.Sms; Resource.Display ]))
        in
        i1 <: Encode.device_intents env
        &&: (s <: (i1 |. rel env.Encode.r_iextras))
        &&: not_ (s =: Encode.resource_const env Resource.Icc)
        &&: (c2 <: Encode.device_components env)
        &&: Encode.delivered env i1 c2
        &&: fwd_path
        &&: (i2 <: Encode.device_intents env)
        &&: ((i2 |. rel env.Encode.r_sender) =: c2)
        &&: (Encode.resource_const env Resource.Icc
             <: (i2 |. rel env.Encode.r_iextras))
        &&: (c3 <: Encode.device_components env)
        &&: not_ (c3 =: c2)
        &&: Encode.delivered env i2 c3
        &&: exit_path);
    describe =
      (fun sc ->
        match
          ( Scenario.witness1 sc "leakedResource",
            Scenario.witness1 sc "forwarderCmp",
            Scenario.witness1 sc "finalCmp" )
        with
        | Some r, Some c2, Some c3 ->
            Printf.sprintf
              "Sensitive %s crosses two ICC hops (via %s) before %s leaks \
               it to an observable sink."
              (strip "res:" r) c2 c3
        | _ -> "two-hop information leakage");
  }

let builtin =
  [
    intent_hijack;
    activity_launch;
    service_launch;
    privilege_escalation;
    information_leakage;
    information_leakage_2hop;
  ]

(* Plugin registry: user-provided signatures extend the built-in set. *)
let registry : t list ref = ref builtin
let register s = registry := !registry @ [ s ]
let all () = !registry
let find name = List.find_opt (fun s -> s.name = name) (all ())
