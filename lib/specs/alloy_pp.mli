(** Emission of the encoded formal model as Alloy-style text — the
    counterpart of the paper's FreeMarker translation of extracted app
    models into Alloy modules (Listings 3 and 4). *)

val sanitize : string -> string

(** The fixed framework meta-model (the androidDeclaration module). *)
val meta_model : unit -> string

(** One app model as an Alloy module. *)
val app_module : Separ_ame.App_model.t -> string

(** The whole bundle: meta-model followed by one module per app. *)
val bundle_spec : Separ_ame.Bundle.t -> string
