(** Well-formedness facts of the Android framework meta-model (the
    paper's Listing 3), and a machine-checked consistency test of the
    encoder: every invariant is re-verified on the concrete encoding with
    the independent ground evaluator. *)

(** Named invariants over an encoded environment. *)
val wellformedness :
  Encode.env -> (string * Separ_relog.Ast.formula) list

(** The exact-bounds instance of the encoding (free relations at their
    lower bounds). *)
val exact_instance : Encode.env -> Separ_relog.Instance.t

(** Names of violated invariants ([[]] = consistent). *)
val check : Encode.env -> string list
