(* A decoded attack scenario: the output of the synthesis step, in domain
   vocabulary.  The malicious capability description is what gets
   concretized into an attack app; the witness bindings identify the
   victim elements; the policy deriver consumes both. *)

open Separ_android

type mal_intent = {
  mi_target : string option;        (* explicit target component *)
  mi_action : string option;
  mi_categories : string list;
  mi_data_type : string option;
  mi_data_scheme : string option;
  mi_data_host : string option;
  mi_extras : Resource.t list;      (* payload resources *)
  mi_delivery : Component.kind;     (* which ICC mechanism class *)
}

type mal_filter = {
  mf_actions : string list;
  mf_categories : string list;
  mf_data_types : string list;
  mf_data_schemes : string list;
  mf_data_hosts : string list;
}

type t = {
  sc_kind : string;                         (* signature name *)
  sc_witnesses : (string * string list) list; (* witness name -> atoms *)
  sc_mal_intent : mal_intent option;
  sc_mal_filter : mal_filter option;
  sc_description : string;
}

let witness t name =
  Option.value ~default:[] (List.assoc_opt name t.sc_witnesses)

let witness1 t name =
  match witness t name with [ x ] -> Some x | _ -> None

let pp_mal_intent ppf mi =
  Fmt.pf ppf "MalIntent{%s%s cats=[%a] extras=[%a]}"
    (match mi.mi_action with Some a -> "action=" ^ a | None -> "no-action")
    (match mi.mi_target with Some t -> " target=" ^ t | None -> "")
    Fmt.(list ~sep:(any ",") string)
    mi.mi_categories
    Fmt.(list ~sep:(any ",") Resource.pp)
    mi.mi_extras

let pp_mal_filter ppf mf =
  Fmt.pf ppf "MalFilter{actions=[%a] cats=[%a]}"
    Fmt.(list ~sep:(any ",") string)
    mf.mf_actions
    Fmt.(list ~sep:(any ",") string)
    mf.mf_categories

let pp ppf t =
  Fmt.pf ppf "@[<v 2>%s scenario:@,%a%a%a%s@]" t.sc_kind
    Fmt.(
      list ~sep:cut (fun ppf (n, atoms) ->
          pf ppf "%s = %a" n (list ~sep:(any ", ") string) atoms))
    t.sc_witnesses
    Fmt.(option (fun ppf mi -> pf ppf "@,%a" pp_mal_intent mi))
    t.sc_mal_intent
    Fmt.(option (fun ppf mf -> pf ppf "@,%a" pp_mal_filter mf))
    t.sc_mal_filter
    (if t.sc_description = "" then "" else "\n" ^ t.sc_description)
