(* Encoding of the Android framework meta-model and a bundle of extracted
   app models into bounded relational logic — the OCaml counterpart of
   the paper's Listings 3 and 4.

   Everything AME extracted is encoded with *exact* bounds (it is known),
   so it contributes constants, not search space.  The hypothetical
   malicious capability (an app not yet on the device, with one component
   and, depending on the signature's scope configuration, an intent to
   send and/or an intent filter to register) is the only part bounded
   loosely: its relations are the free variables the SAT search fills in.
   This mirrors the paper's automatic scope derivation. *)

open Separ_android
open Separ_relog
open Separ_ame

(* --- atom naming -------------------------------------------------------- *)

let atom_app pkg = "app:" ^ pkg
let atom_action a = "act:" ^ a
let atom_category c = "cat:" ^ c
let atom_dtype t = "typ:" ^ t
let atom_dscheme s = "sch:" ^ s
let atom_dhost h = "hst:" ^ h
let atom_resource r = "res:" ^ Resource.to_string r
let atom_perm p = "perm:" ^ p

let mal_app_atom = "mal:app"
let mal_comp_atom = "mal:cmp"
let mal_intent_atom = "mal:intent"
let mal_filter_atom = "mal:filter"

(* Delivery classes: which component kind an ICC mechanism addresses. *)
let kind_atom = function
  | Component.Activity -> "icc:activity"
  | Component.Service -> "icc:service"
  | Component.Receiver -> "icc:receiver"
  | Component.Provider -> "icc:provider"

let delivery_kind = Api.delivery_kind

(* --- scope configuration ------------------------------------------------ *)

type config = {
  with_mal_intent : bool; (* the adversary sends an intent *)
  with_mal_filter : bool; (* the adversary registers an intent filter *)
}

(* Witness domains: each signature declares named witnesses; their value
   in a satisfying instance identifies the victim elements. *)
type witness_domain = Wcomponent | Wintent | Wpath | Wresource | Wpermission

type env = {
  universe : Universe.t;
  bounds : Bounds.t;
  bundle : Bundle.t;
  (* component atom <-> model *)
  comp_atoms : (string * App_model.component_model) list;
  comp_atom_of : string -> string; (* cm_name -> atom *)
  (* unary sigs *)
  r_application : Relation.t;
  r_component : Relation.t;
  r_activity : Relation.t;
  r_service : Relation.t;
  r_receiver : Relation.t;
  r_provider : Relation.t;
  r_intent : Relation.t;
  r_filter : Relation.t;
  r_action : Relation.t;
  r_category : Relation.t;
  r_dtype : Relation.t;
  r_dscheme : Relation.t;
  r_dhost : Relation.t;
  r_resource : Relation.t;
  r_permission : Relation.t;
  r_path : Relation.t;
  r_installed : Relation.t;  (* device.apps *)
  r_exported : Relation.t;
  r_passive : Relation.t;
  r_wants_result : Relation.t;
  (* binary relations *)
  r_cmp_app : Relation.t;       (* Component -> Application *)
  r_cmp_filters : Relation.t;   (* Component -> IntentFilter *)
  r_cmp_req_perms : Relation.t; (* Component -> Permission (enforced) *)
  r_cmp_paths : Relation.t;     (* Component -> Path *)
  r_app_perms : Relation.t;     (* Application -> Permission (granted) *)
  r_path_src : Relation.t;      (* Path -> Resource *)
  r_path_snk : Relation.t;      (* Path -> Resource *)
  r_sender : Relation.t;        (* Intent -> Component *)
  r_target : Relation.t;        (* Intent -> Component (explicit/resolved) *)
  r_iaction : Relation.t;       (* Intent -> Action *)
  r_icats : Relation.t;         (* Intent -> Category *)
  r_idtype : Relation.t;        (* Intent -> DataType *)
  r_idscheme : Relation.t;      (* Intent -> DataScheme *)
  r_idhost : Relation.t;        (* Intent -> DataHost *)
  r_iextras : Relation.t;       (* Intent -> Resource *)
  r_ikind : Relation.t;         (* Intent -> delivery-kind atom *)
  r_kind_sets : (Component.kind * Relation.t) list; (* constant singletons *)
  r_res_consts : (Resource.t * Relation.t) list;    (* constant singletons *)
  r_if_actions : Relation.t;    (* IntentFilter -> Action *)
  r_if_cats : Relation.t;
  r_if_types : Relation.t;
  r_if_schemes : Relation.t;
  r_if_hosts : Relation.t;
  r_res_perm : Relation.t;      (* Resource -> Permission *)
  r_mal_comp : Relation.t;      (* singleton *)
  r_mal_intent : Relation.t;    (* empty or singleton, per config *)
  r_mal_filter : Relation.t;    (* empty or singleton, per config *)
  (* upper bound of each witness domain, closed over the bundle's atom
     sets so witness relations can be bounded after the fact *)
  witness_upper : witness_domain -> Tuple_set.t;
  r_witnesses : (string * Relation.t) list;
  facts : Ast.formula list;
}

(* --- helpers over app models ------------------------------------------- *)

let uniq xs = List.sort_uniq compare xs

(* The resource vocabulary (sources and sinks), deduplicated once: it is
   consulted several times per encode (vocabulary, atoms, constant
   singletons, the resource->permission map). *)
let all_resources = uniq (Resource.sources @ Resource.sinks)

let intent_of_bundle b =
  List.map (fun (_, _, i) -> i) (Bundle.all_intents b)

(* Collect all vocabulary strings appearing in the bundle. *)
let vocabulary bundle =
  let intents = intent_of_bundle bundle in
  let comps = List.map snd (Bundle.all_components bundle) in
  let filters = List.concat_map (fun c -> c.App_model.cm_filters) comps in
  let actions =
    List.filter_map (fun i -> i.App_model.im_action) intents
    @ List.concat_map (fun f -> f.Intent_filter.actions) filters
  in
  let categories =
    List.concat_map (fun i -> i.App_model.im_categories) intents
    @ List.concat_map (fun f -> f.Intent_filter.categories) filters
  in
  let dtypes =
    List.filter_map (fun i -> i.App_model.im_data_type) intents
    @ List.concat_map (fun f -> f.Intent_filter.data_types) filters
  in
  let dschemes =
    List.filter_map (fun i -> i.App_model.im_data_scheme) intents
    @ List.concat_map (fun f -> f.Intent_filter.data_schemes) filters
  in
  let dhosts =
    List.filter_map (fun i -> i.App_model.im_data_host) intents
    @ List.concat_map (fun f -> f.Intent_filter.data_hosts) filters
  in
  let perms =
    List.concat_map
      (fun app -> app.App_model.am_declared_permissions)
      (Bundle.apps bundle)
    @ List.concat_map (fun c -> c.App_model.cm_required_permissions) comps
    @ List.filter_map Resource.permission all_resources
  in
  (uniq actions, uniq categories, uniq dtypes, uniq dschemes, uniq dhosts,
   uniq perms)

(* --- environment construction ------------------------------------------ *)

(* The bundle-common encoding: everything except the per-signature
   witness relations (and their facts).  [encode_signature] layers those
   on; [build] composes the two for the one-shot path.  Splitting here
   is what lets the incremental ASE path encode the bundle once per
   worker and attach each signature as a delta. *)
let encode_bundle
    ?(config = { with_mal_intent = true; with_mal_filter = true })
    (bundle : Bundle.t) : env =
  let apps = Bundle.apps bundle in
  let comps = Bundle.all_components bundle in
  (* Component atoms: cm_name, disambiguated by package when needed. *)
  let name_counts = Hashtbl.create 16 in
  List.iter
    (fun (_, c) ->
      let n = c.App_model.cm_name in
      Hashtbl.replace name_counts n
        (1 + Option.value ~default:0 (Hashtbl.find_opt name_counts n)))
    comps;
  let comp_atom app c =
    let n = c.App_model.cm_name in
    if Hashtbl.find name_counts n > 1 then app.App_model.am_package ^ "/" ^ n
    else n
  in
  let comp_atoms =
    List.map (fun (app, c) -> (comp_atom app c, c)) comps
  in
  let comp_atom_of name =
    match
      List.find_opt (fun (_, c) -> c.App_model.cm_name = name) comp_atoms
    with
    | Some (a, _) -> a
    | None -> name
  in
  let actions, categories, dtypes, dschemes, dhosts, perms =
    vocabulary bundle
  in
  let intents = Bundle.all_intents bundle in
  let intent_atoms = List.map (fun (_, _, i) -> i.App_model.im_id) intents in
  let filter_atoms =
    List.concat_map
      (fun (app, c) ->
        List.mapi
          (fun i _ -> Printf.sprintf "%s#f%d" (comp_atom app c) i)
          c.App_model.cm_filters)
      comps
  in
  let path_atoms =
    List.concat_map
      (fun (app, c) ->
        List.mapi
          (fun i _ -> Printf.sprintf "%s#p%d" (comp_atom app c) i)
          c.App_model.cm_paths)
      comps
  in
  let resource_atoms = List.map atom_resource all_resources in
  let kind_atoms =
    List.map kind_atom
      [ Component.Activity; Component.Service; Component.Receiver;
        Component.Provider ]
  in
  let atoms =
    List.map (fun a -> atom_app a.App_model.am_package) apps
    @ [ mal_app_atom; mal_comp_atom ]
    @ (if config.with_mal_intent then [ mal_intent_atom ] else [])
    @ (if config.with_mal_filter then [ mal_filter_atom ] else [])
    @ List.map fst comp_atoms
    @ intent_atoms @ filter_atoms @ path_atoms
    @ List.map atom_action actions
    @ List.map atom_category categories
    @ List.map atom_dtype dtypes
    @ List.map atom_dscheme dschemes
    @ List.map atom_dhost dhosts
    @ resource_atoms
    @ List.map atom_perm perms
    @ kind_atoms
  in
  let universe = Universe.of_atoms (uniq atoms) in
  let bounds = Bounds.create universe in
  let ts1 names = Bounds.tuples_a bounds 1 (List.map (fun a -> [ a ]) names) in
  let ts2 pairs = Bounds.tuples_a bounds 2 (List.map (fun (a, b) -> [ a; b ]) pairs) in
  let mk name arity = Relation.make name arity in

  (* unary signatures *)
  let r_application = mk "Application" 1 in
  Bounds.bound_exact bounds r_application
    (ts1 (mal_app_atom :: List.map (fun a -> atom_app a.App_model.am_package) apps));
  let r_installed = mk "InstalledApp" 1 in
  Bounds.bound_exact bounds r_installed
    (ts1 (List.map (fun a -> atom_app a.App_model.am_package) apps));
  let r_component = mk "Component" 1 in
  Bounds.bound_exact bounds r_component
    (ts1 (mal_comp_atom :: List.map fst comp_atoms));
  let by_kind k =
    List.filter_map
      (fun (a, c) -> if c.App_model.cm_kind = k then Some a else None)
      comp_atoms
  in
  let r_activity = mk "Activity" 1 in
  (* the malicious component poses as an Activity, per the paper *)
  Bounds.bound_exact bounds r_activity
    (ts1 (mal_comp_atom :: by_kind Component.Activity));
  let r_service = mk "Service" 1 in
  Bounds.bound_exact bounds r_service (ts1 (by_kind Component.Service));
  let r_receiver = mk "Receiver" 1 in
  Bounds.bound_exact bounds r_receiver (ts1 (by_kind Component.Receiver));
  let r_provider = mk "Provider" 1 in
  Bounds.bound_exact bounds r_provider (ts1 (by_kind Component.Provider));
  let r_intent = mk "Intent" 1 in
  Bounds.bound_exact bounds r_intent
    (ts1 ((if config.with_mal_intent then [ mal_intent_atom ] else []) @ intent_atoms));
  let r_filter = mk "IntentFilter" 1 in
  Bounds.bound_exact bounds r_filter
    (ts1 ((if config.with_mal_filter then [ mal_filter_atom ] else []) @ filter_atoms));
  let r_action = mk "Action" 1 in
  Bounds.bound_exact bounds r_action (ts1 (List.map atom_action actions));
  let r_category = mk "Category" 1 in
  Bounds.bound_exact bounds r_category (ts1 (List.map atom_category categories));
  let r_dtype = mk "DataType" 1 in
  Bounds.bound_exact bounds r_dtype (ts1 (List.map atom_dtype dtypes));
  let r_dscheme = mk "DataScheme" 1 in
  Bounds.bound_exact bounds r_dscheme (ts1 (List.map atom_dscheme dschemes));
  let r_dhost = mk "DataHost" 1 in
  Bounds.bound_exact bounds r_dhost (ts1 (List.map atom_dhost dhosts));
  let r_resource = mk "Resource" 1 in
  Bounds.bound_exact bounds r_resource (ts1 resource_atoms);
  let r_permission = mk "Permission" 1 in
  Bounds.bound_exact bounds r_permission (ts1 (List.map atom_perm perms));
  let r_path = mk "Path" 1 in
  Bounds.bound_exact bounds r_path (ts1 path_atoms);
  let r_exported = mk "exported" 1 in
  Bounds.bound_exact bounds r_exported
    (ts1
       (mal_comp_atom
       :: List.filter_map
            (fun (a, c) -> if c.App_model.cm_public then Some a else None)
            comp_atoms));

  (* intents: exact facts from extraction *)
  let bundle_intent_info =
    List.map
      (fun (app, c, i) -> (i.App_model.im_id, app, comp_atom app c, i))
      intents
  in
  let r_passive = mk "passive" 1 in
  Bounds.bound_exact bounds r_passive
    (ts1
       (List.filter_map
          (fun (id, _, _, i) -> if i.App_model.im_passive then Some id else None)
          bundle_intent_info));
  let r_wants_result = mk "wantsResult" 1 in
  Bounds.bound_exact bounds r_wants_result
    (ts1
       (List.filter_map
          (fun (id, _, _, i) ->
            if i.App_model.im_wants_result then Some id else None)
          bundle_intent_info));

  (* binary relations over known elements *)
  let r_cmp_app = mk "app" 2 in
  Bounds.bound_exact bounds r_cmp_app
    (ts2
       ((mal_comp_atom, mal_app_atom)
       :: List.concat_map
            (fun app ->
              List.map
                (fun c -> (comp_atom app c, atom_app app.App_model.am_package))
                app.App_model.am_components)
            apps));
  let r_cmp_filters = mk "intentFilters" 2 in
  let fixed_cmp_filters =
    List.concat_map
      (fun (app, c) ->
        List.mapi
          (fun i _ ->
            (comp_atom app c, Printf.sprintf "%s#f%d" (comp_atom app c) i))
          c.App_model.cm_filters)
      comps
  in
  if config.with_mal_filter then
    Bounds.bound_exact bounds r_cmp_filters
      (ts2 ((mal_comp_atom, mal_filter_atom) :: fixed_cmp_filters))
  else Bounds.bound_exact bounds r_cmp_filters (ts2 fixed_cmp_filters);
  let r_cmp_req_perms = mk "permissions" 2 in
  Bounds.bound_exact bounds r_cmp_req_perms
    (ts2
       (List.concat_map
          (fun (app, c) ->
            List.map
              (fun p -> (comp_atom app c, atom_perm p))
              c.App_model.cm_required_permissions)
          comps));
  let r_app_perms = mk "appPermissions" 2 in
  Bounds.bound_exact bounds r_app_perms
    (ts2
       (List.concat_map
          (fun app ->
            List.map
              (fun p -> (atom_app app.App_model.am_package, atom_perm p))
              app.App_model.am_declared_permissions)
          apps));
  let r_cmp_paths = mk "paths" 2 in
  Bounds.bound_exact bounds r_cmp_paths
    (ts2
       (List.concat_map
          (fun (app, c) ->
            List.mapi
              (fun i _ ->
                (comp_atom app c, Printf.sprintf "%s#p%d" (comp_atom app c) i))
              c.App_model.cm_paths)
          comps));
  let r_path_src = mk "source" 2 in
  let r_path_snk = mk "sink" 2 in
  let path_pairs f =
    List.concat_map
      (fun (app, c) ->
        List.mapi
          (fun i p ->
            (Printf.sprintf "%s#p%d" (comp_atom app c) i, atom_resource (f p)))
          c.App_model.cm_paths)
      comps
  in
  Bounds.bound_exact bounds r_path_src
    (ts2 (path_pairs (fun p -> p.App_model.pm_source)));
  Bounds.bound_exact bounds r_path_snk
    (ts2 (path_pairs (fun p -> p.App_model.pm_sink)));

  (* intent fields; the malicious intent's fields are free *)
  let all_action_atoms = List.map atom_action actions in
  let all_comp_atoms = List.map fst comp_atoms in
  let bound_intent_field rel fixed_pairs mal_upper =
    let fixed = ts2 fixed_pairs in
    if config.with_mal_intent then
      let upper =
        Tuple_set.union fixed
          (ts2 (List.map (fun x -> (mal_intent_atom, x)) mal_upper))
      in
      Bounds.bound bounds rel ~lower:fixed ~upper
    else Bounds.bound_exact bounds rel fixed
  in
  let r_sender = mk "sender" 2 in
  Bounds.bound_exact bounds r_sender
    (ts2
       ((if config.with_mal_intent then [ (mal_intent_atom, mal_comp_atom) ]
         else [])
       @ List.map (fun (id, _, catom, _) -> (id, catom)) bundle_intent_info));
  let r_target = mk "target" 2 in
  (* An explicit target naming a component that is not installed in the
     bundle is undeliverable — it contributes no target tuple (rather
     than an atom outside the universe). *)
  let installed name =
    List.exists (fun (_, c) -> c.App_model.cm_name = name) comp_atoms
  in
  bound_intent_field r_target
    (List.concat_map
       (fun (id, _, _, i) ->
         (match i.App_model.im_target with
         | Some t when installed t -> [ (id, comp_atom_of t) ]
         | Some _ | None -> [])
         @ List.filter_map
             (fun t ->
               if installed t then Some (id, comp_atom_of t) else None)
             i.App_model.im_resolved_targets)
       bundle_intent_info)
    all_comp_atoms;
  let r_iaction = mk "action" 2 in
  (* unresolved actions get a free bound over the whole vocabulary *)
  let fixed_actions =
    List.concat_map
      (fun (id, _, _, i) ->
        match i.App_model.im_action with
        | Some a -> [ (id, atom_action a) ]
        | None -> [])
      bundle_intent_info
  in
  let unresolved_action_pairs =
    List.concat_map
      (fun (id, _, _, i) ->
        if i.App_model.im_action_unresolved then
          List.map (fun a -> (id, a)) all_action_atoms
        else [])
      bundle_intent_info
  in
  let iaction_lower = ts2 fixed_actions in
  let iaction_upper =
    Tuple_set.union iaction_lower
      (Tuple_set.union
         (ts2 unresolved_action_pairs)
         (if config.with_mal_intent then
            ts2 (List.map (fun a -> (mal_intent_atom, a)) all_action_atoms)
          else Tuple_set.empty 2))
  in
  Bounds.bound bounds r_iaction ~lower:iaction_lower ~upper:iaction_upper;
  let r_icats = mk "categories" 2 in
  bound_intent_field r_icats
    (List.concat_map
       (fun (id, _, _, i) ->
         List.map (fun c -> (id, atom_category c)) i.App_model.im_categories)
       bundle_intent_info)
    (List.map atom_category categories);
  let r_idtype = mk "dataType" 2 in
  bound_intent_field r_idtype
    (List.concat_map
       (fun (id, _, _, i) ->
         match i.App_model.im_data_type with
         | Some t -> [ (id, atom_dtype t) ]
         | None -> [])
       bundle_intent_info)
    (List.map atom_dtype dtypes);
  let r_idscheme = mk "dataScheme" 2 in
  bound_intent_field r_idscheme
    (List.concat_map
       (fun (id, _, _, i) ->
         match i.App_model.im_data_scheme with
         | Some s -> [ (id, atom_dscheme s) ]
         | None -> [])
       bundle_intent_info)
    (List.map atom_dscheme dschemes);
  let r_idhost = mk "dataHost" 2 in
  bound_intent_field r_idhost
    (List.concat_map
       (fun (id, _, _, i) ->
         match i.App_model.im_data_host with
         | Some h -> [ (id, atom_dhost h) ]
         | None -> [])
       bundle_intent_info)
    (List.map atom_dhost dhosts);
  let r_iextras = mk "extra" 2 in
  bound_intent_field r_iextras
    (List.concat_map
       (fun (id, _, _, i) ->
         List.map (fun r -> (id, atom_resource r)) i.App_model.im_extras)
       bundle_intent_info)
    resource_atoms;
  let r_ikind = mk "deliveryKind" 2 in
  bound_intent_field r_ikind
    (List.map
       (fun (id, _, _, i) ->
         (id, kind_atom (delivery_kind i.App_model.im_icc)))
       bundle_intent_info)
    kind_atoms;

  (* constant kind singletons *)
  let r_kind_sets =
    List.map
      (fun k ->
        let r = mk ("K" ^ kind_atom k) 1 in
        Bounds.bound_exact bounds r (ts1 [ kind_atom k ]);
        (k, r))
      [ Component.Activity; Component.Service; Component.Receiver;
        Component.Provider ]
  in

  (* constant resource singletons *)
  let r_res_consts =
    List.map
      (fun r ->
        let rl = mk ("KRes_" ^ Resource.to_string r) 1 in
        Bounds.bound_exact bounds rl (ts1 [ atom_resource r ]);
        (r, rl))
      all_resources
  in

  (* filter fields; the malicious filter's fields are free *)
  let filter_info =
    List.concat_map
      (fun (app, c) ->
        List.mapi
          (fun i f -> (Printf.sprintf "%s#f%d" (comp_atom app c) i, f))
          c.App_model.cm_filters)
      comps
  in
  let bound_filter_field rel fixed mal_upper =
    let fixed = ts2 fixed in
    if config.with_mal_filter then
      Bounds.bound bounds rel ~lower:fixed
        ~upper:
          (Tuple_set.union fixed
             (ts2 (List.map (fun x -> (mal_filter_atom, x)) mal_upper)))
    else Bounds.bound_exact bounds rel fixed
  in
  let r_if_actions = mk "ifActions" 2 in
  bound_filter_field r_if_actions
    (List.concat_map
       (fun (fa, f) ->
         List.map (fun a -> (fa, atom_action a)) f.Intent_filter.actions)
       filter_info)
    all_action_atoms;
  let r_if_cats = mk "ifCategories" 2 in
  bound_filter_field r_if_cats
    (List.concat_map
       (fun (fa, f) ->
         List.map (fun c -> (fa, atom_category c)) f.Intent_filter.categories)
       filter_info)
    (List.map atom_category categories);
  let r_if_types = mk "ifDataTypes" 2 in
  bound_filter_field r_if_types
    (List.concat_map
       (fun (fa, f) ->
         List.map (fun t -> (fa, atom_dtype t)) f.Intent_filter.data_types)
       filter_info)
    (List.map atom_dtype dtypes);
  let r_if_schemes = mk "ifDataSchemes" 2 in
  bound_filter_field r_if_schemes
    (List.concat_map
       (fun (fa, f) ->
         List.map (fun s -> (fa, atom_dscheme s)) f.Intent_filter.data_schemes)
       filter_info)
    (List.map atom_dscheme dschemes);
  let r_if_hosts = mk "ifDataHosts" 2 in
  bound_filter_field r_if_hosts
    (List.concat_map
       (fun (fa, f) ->
         List.map (fun h -> (fa, atom_dhost h)) f.Intent_filter.data_hosts)
       filter_info)
    (List.map atom_dhost dhosts);

  (* static resource -> permission map *)
  let r_res_perm = mk "resourcePermission" 2 in
  Bounds.bound_exact bounds r_res_perm
    (ts2
       (List.filter_map
          (fun r ->
            match Resource.permission r with
            | Some p when List.mem p perms ->
                Some (atom_resource r, atom_perm p)
            | _ -> None)
          all_resources));

  (* the malicious capability *)
  let r_mal_comp = mk "MalComponent" 1 in
  Bounds.bound_exact bounds r_mal_comp (ts1 [ mal_comp_atom ]);
  let r_mal_intent = mk "MalIntent" 1 in
  Bounds.bound_exact bounds r_mal_intent
    (ts1 (if config.with_mal_intent then [ mal_intent_atom ] else []));
  let r_mal_filter = mk "MalFilter" 1 in
  Bounds.bound_exact bounds r_mal_filter
    (ts1 (if config.with_mal_filter then [ mal_filter_atom ] else []));

  (* witness-domain upper bounds, for [encode_signature] *)
  let witness_upper = function
    | Wcomponent -> ts1 (List.map fst comp_atoms)
    | Wintent -> ts1 intent_atoms
    | Wpath -> ts1 path_atoms
    | Wresource -> ts1 resource_atoms
    | Wpermission -> ts1 (List.map atom_perm perms)
  in

  (* well-formedness facts constraining the free (malicious) relations *)
  let open Ast.Dsl in
  let facts = ref [] in
  let add f = facts := f :: !facts in
  if config.with_mal_intent then begin
    let mi = rel r_mal_intent in
    add (lone (mi |. rel r_iaction));
    add (lone (mi |. rel r_target));
    add (lone (mi |. rel r_idtype));
    add (lone (mi |. rel r_idscheme));
    add (lone (mi |. rel r_idhost));
    add (one (mi |. rel r_ikind))
  end;
  if config.with_mal_filter then begin
    let mf = rel r_mal_filter in
    add (some (mf |. rel r_if_actions))
  end;

  {
    universe;
    bounds;
    bundle;
    comp_atoms;
    comp_atom_of;
    r_application;
    r_component;
    r_activity;
    r_service;
    r_receiver;
    r_provider;
    r_intent;
    r_filter;
    r_action;
    r_category;
    r_dtype;
    r_dscheme;
    r_dhost;
    r_resource;
    r_permission;
    r_path;
    r_installed;
    r_exported;
    r_passive;
    r_wants_result;
    r_cmp_app;
    r_cmp_filters;
    r_cmp_req_perms;
    r_cmp_paths;
    r_app_perms;
    r_path_src;
    r_path_snk;
    r_sender;
    r_target;
    r_iaction;
    r_icats;
    r_idtype;
    r_idscheme;
    r_idhost;
    r_iextras;
    r_ikind;
    r_kind_sets;
    r_res_consts;
    r_if_actions;
    r_if_cats;
    r_if_types;
    r_if_schemes;
    r_if_hosts;
    r_res_perm;
    r_mal_comp;
    r_mal_intent;
    r_mal_filter;
    witness_upper;
    r_witnesses = [];
    facts = List.rev !facts;
  }

(* The "one" facts pinning each declared witness to a single tuple. *)
let witness_facts env =
  List.map (fun (_, r) -> Ast.Dsl.one (Ast.Rel r)) env.r_witnesses

(* Layer one signature's witness relations on a bundle encoding: each is
   bounded as a free singleton over its domain (in declaration order,
   after every bundle relation), and the pinning facts are appended.
   The bounds object is shared and mutated — on the incremental path,
   successive signatures keep extending the same base bounds, and each
   decodes only its own witnesses. *)
let encode_signature (env : env) witnesses : env =
  let r_witnesses =
    List.map
      (fun (name, dom) ->
        let r = Relation.make ("W_" ^ name) 1 in
        Bounds.bound env.bounds r ~lower:(Tuple_set.empty 1)
          ~upper:(env.witness_upper dom);
        (name, r))
      witnesses
  in
  let env = { env with r_witnesses } in
  { env with facts = env.facts @ witness_facts env }

(* One-shot construction, as before the bundle/signature split: the
   composition produces exactly the formulas and bounds the fused
   builder did (witness relations created last, facts appended last). *)
let build ?config ?(witnesses = []) (bundle : Bundle.t) : env =
  encode_signature (encode_bundle ?config bundle) witnesses

let witness env name =
  match List.assoc_opt name env.r_witnesses with
  | Some r -> Ast.Rel r
  | None -> invalid_arg ("Encode.witness: undeclared witness " ^ name)

(* --- derived expressions and predicates --------------------------------- *)

open Ast.Dsl

(* Components of the apps installed on the device. *)
let device_components env =
  Ast.Join (Ast.Rel env.r_installed, Ast.Transpose (Ast.Rel env.r_cmp_app))

(* Intents sent by device components (everything bound except MalIntent). *)
let device_intents env = Ast.Diff (Ast.Rel env.r_intent, Ast.Rel env.r_mal_intent)

let kind_set env k = Ast.Rel (List.assoc k env.r_kind_sets)

(* Constant singleton for one resource (e.g. the ICC pseudo-resource). *)
let resource_const env r =
  Ast.Rel (List.assoc r env.r_res_consts)

(* The action test of intent resolution. *)
let action_test env i f =
  let ia = i |. rel env.r_iaction in
  let fa = f |. rel env.r_if_actions in
  (no ia &&: some fa) ||: (some ia &&: (ia <: fa))

let category_test env i f =
  (i |. rel env.r_icats) <: (f |. rel env.r_if_cats)

let data_test env i f =
  let it = i |. rel env.r_idtype and isch = i |. rel env.r_idscheme in
  let ft = f |. rel env.r_if_types and fsch = f |. rel env.r_if_schemes in
  let ih = i |. rel env.r_idhost and fh = f |. rel env.r_if_hosts in
  (* authority refinement: a filter constraining hosts requires a
     matching host in the intent's URI *)
  let host_ok = no fh ||: (some ih &&: (ih <: fh)) in
  ((no it &&: no isch &&: no ft &&: no fsch)
  ||: (no it &&: some isch &&: (isch <: fsch) &&: no ft)
  ||: (some it &&: no isch &&: (it <: ft) &&: no fsch)
  ||: (some it &&: some isch &&: (it <: ft) &&: (isch <: fsch)))
  &&: host_ok

(* Does intent [i] pass some filter of component [c]? *)
let matches_some_filter env i c =
  exists ~base:"f"
    (c |. rel env.r_cmp_filters)
    (fun f -> action_test env i f &&: category_test env i f &&: data_test env i f)

(* Delivery-class compatibility between an intent and a component kind. *)
let kind_compatible env i c =
  let ik = i |. rel env.r_ikind in
  conj
    (List.map
       (fun (k, kr) ->
         let kind_rel =
           match k with
           | Component.Activity -> env.r_activity
           | Component.Service -> env.r_service
           | Component.Receiver -> env.r_receiver
           | Component.Provider -> env.r_provider
         in
         (c <: Ast.Rel kind_rel) ==>: (ik <: Ast.Rel kr))
       env.r_kind_sets)

(* Full resolution: [i] is delivered to [c].  Explicit addressing
   reaches private components only within the sender's own app. *)
let resolves env i c =
  let sender_app_components =
    i |. rel env.r_sender |. rel env.r_cmp_app |. tilde (rel env.r_cmp_app)
  in
  let explicit =
    c <: (i |. rel env.r_target)
    &&: (c <: sender_app_components ||: (c <: Ast.Rel env.r_exported))
  in
  let implicit =
    no (i |. rel env.r_target)
    &&: not_ (i <: Ast.Rel env.r_passive)
    &&: (c <: Ast.Rel env.r_exported)
    &&: kind_compatible env i c
    &&: matches_some_filter env i c
  in
  explicit ||: implicit

(* Permission-checked delivery: the receiving component's required
   permissions must all be granted to the sender's application. *)
let sender_has_required_perms env i c =
  (c |. rel env.r_cmp_req_perms)
  <: (i |. rel env.r_sender |. rel env.r_cmp_app |. rel env.r_app_perms)

let delivered env i c =
  resolves env i c &&: sender_has_required_perms env i c

(* --- cache fingerprints -------------------------------------------------- *)

(* Bump whenever the encoding changes in any way that can alter the
   relational problem for the same bundle: relation vocabulary, bound
   construction, well-formedness facts, helper predicates.  Every cached
   ASE verdict keyed under an older version silently becomes a miss. *)
let version = "encode-v1"

let config_fingerprint (c : config) =
  Printf.sprintf "mal_intent=%b,mal_filter=%b" c.with_mal_intent
    c.with_mal_filter

(* Fingerprint of the encoded problem *restricted to the support* of the
   given constraints: the relations their formulas mention (plus, defensively,
   every relation if any formula touches [univ]/[iden]).  The bundle enters
   the problem exclusively through bounds — [encode_bundle]'s facts only
   constrain the adversary relations — so two bundles whose bounds agree on
   a signature's support relations pose that signature the *same* problem,
   even if they differ elsewhere (e.g. an app gained a sensitive path a
   path-blind signature never looks at).  That slice is what makes
   one-app-changed re-analysis re-solve only the signatures whose support
   the change touches.

   Determinism: relations are rendered name/arity sorted by name, tuples
   via universe atom *names* (atom indices and relation ids are
   process-global), and formulas via the alpha-invariant
   {!Ast.canonical_formula_string}.  Atom names capture cross-relation
   atom identity, so the rendering is faithful to the semantics. *)
let problem_fingerprint (env : env) (constraints : Ast.formula list) : string =
  let supports = List.map Ast.support constraints in
  let touches_univ = List.exists snd supports in
  let support =
    if touches_univ then Bounds.relations env.bounds
    else
      List.fold_left
        (fun acc (rels, _) ->
          List.fold_left
            (fun acc r -> if List.memq r acc then acc else r :: acc)
            acc rels)
        [] supports
  in
  let support =
    List.sort
      (fun a b ->
        compare
          (Relation.name a, Relation.arity a)
          (Relation.name b, Relation.arity b))
      support
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf version;
  Buffer.add_char buf '\n';
  let render_tuples ts =
    let tuples =
      List.map
        (fun tup ->
          String.concat ","
            (List.map (Universe.name env.universe) (Array.to_list tup)))
        (Tuple_set.to_list ts)
    in
    String.concat ";" (List.sort compare tuples)
  in
  List.iter
    (fun r ->
      let lower, upper = Bounds.get env.bounds r in
      Buffer.add_string buf
        (Printf.sprintf "%s/%d[%s][%s]\n" (Relation.name r) (Relation.arity r)
           (render_tuples lower) (render_tuples upper)))
    support;
  List.iter
    (fun f ->
      Buffer.add_string buf (Ast.canonical_formula_string f);
      Buffer.add_char buf '\n')
    constraints;
  Digest.to_hex (Digest.string (Buffer.contents buf))
