(** A decoded attack scenario: the synthesis output in domain vocabulary.
    The malicious-capability description is what the attack concretizer
    turns into a runnable app; the witness bindings identify the victim
    elements; the policy deriver consumes both. *)

open Separ_android

type mal_intent = {
  mi_target : string option;
  mi_action : string option;
  mi_categories : string list;
  mi_data_type : string option;
  mi_data_scheme : string option;
  mi_data_host : string option;
  mi_extras : Resource.t list;
  mi_delivery : Component.kind;  (** which ICC mechanism class *)
}

type mal_filter = {
  mf_actions : string list;
  mf_categories : string list;
  mf_data_types : string list;
  mf_data_schemes : string list;
  mf_data_hosts : string list;
}

type t = {
  sc_kind : string;  (** signature name *)
  sc_witnesses : (string * string list) list;
  sc_mal_intent : mal_intent option;
  sc_mal_filter : mal_filter option;
  sc_description : string;
}

(** Atoms bound to a witness ([[]] if absent). *)
val witness : t -> string -> string list

(** The single atom of a singleton witness. *)
val witness1 : t -> string -> string option

val pp_mal_intent : Format.formatter -> mal_intent -> unit
val pp_mal_filter : Format.formatter -> mal_filter -> unit
val pp : Format.formatter -> t -> unit
