(* Well-formedness facts of the Android framework meta-model (the paper's
   Listing 3), stated as relational formulas over an encoded environment.

   The encoding constructs device relations with exact bounds, so these
   invariants hold by construction — but "by construction" claims rot.
   {!check} re-verifies every invariant on the concrete instance with
   the independent ground evaluator, giving the encoder a machine-checked
   consistency test that tests and CI exercise on every bundle. *)

open Separ_relog
open Ast.Dsl

(* The meta-model facts, quantified over the encoded relations. *)
let wellformedness (env : Encode.env) : (string * Ast.formula) list =
  let cmp = Ast.Rel env.Encode.r_component in
  [
    (* each component belongs to exactly one application *)
    ( "component_has_one_app",
      all ~base:"c" cmp (fun c -> one (c |. rel env.Encode.r_cmp_app)) );
    (* each intent filter belongs to exactly one component *)
    ( "filter_has_one_component",
      all ~base:"f"
        (Ast.Rel env.Encode.r_filter)
        (fun f -> one (f |. tilde (rel env.Encode.r_cmp_filters))) );
    (* no intent filters on content providers *)
    ( "no_filters_on_providers",
      no
        (Ast.Rel env.Encode.r_provider
        |. rel env.Encode.r_cmp_filters) );
    (* every intent has exactly one sender, a component *)
    ( "intent_has_one_sender",
      all ~base:"i"
        (Ast.Rel env.Encode.r_intent)
        (fun i ->
          one (i |. rel env.Encode.r_sender)
          &&: ((i |. rel env.Encode.r_sender) <: cmp)) );
    (* intents carry at most one action, data type and scheme *)
    ( "intent_multiplicities",
      all ~base:"i"
        (Ast.Rel env.Encode.r_intent)
        (fun i ->
          lone (i |. rel env.Encode.r_iaction)
          &&: lone (i |. rel env.Encode.r_idtype)
          &&: lone (i |. rel env.Encode.r_idscheme)) );
    (* every path has exactly one source and one sink, both resources *)
    ( "path_endpoints",
      all ~base:"p"
        (Ast.Rel env.Encode.r_path)
        (fun p ->
          one (p |. rel env.Encode.r_path_src)
          &&: one (p |. rel env.Encode.r_path_snk)
          &&: ((p |. rel env.Encode.r_path_src) <: Ast.Rel env.Encode.r_resource)
          &&: ((p |. rel env.Encode.r_path_snk) <: Ast.Rel env.Encode.r_resource)) );
    (* paths belong to at most one component *)
    ( "path_ownership",
      all ~base:"p"
        (Ast.Rel env.Encode.r_path)
        (fun p -> lone (p |. tilde (rel env.Encode.r_cmp_paths))) );
    (* the four component kinds partition... at least: are components *)
    ( "kinds_are_components",
      Ast.Rel env.Encode.r_activity
      +: Ast.Rel env.Encode.r_service
      +: Ast.Rel env.Encode.r_receiver
      +: Ast.Rel env.Encode.r_provider
      <: cmp );
    (* kinds are pairwise disjoint *)
    ( "kinds_disjoint",
      no (Ast.Rel env.Encode.r_activity &: Ast.Rel env.Encode.r_service)
      &&: no (Ast.Rel env.Encode.r_activity &: Ast.Rel env.Encode.r_receiver)
      &&: no (Ast.Rel env.Encode.r_activity &: Ast.Rel env.Encode.r_provider)
      &&: no (Ast.Rel env.Encode.r_service &: Ast.Rel env.Encode.r_receiver)
      &&: no (Ast.Rel env.Encode.r_service &: Ast.Rel env.Encode.r_provider)
      &&: no (Ast.Rel env.Encode.r_receiver &: Ast.Rel env.Encode.r_provider) );
    (* installed apps are applications *)
    ( "installed_are_apps",
      Ast.Rel env.Encode.r_installed <: Ast.Rel env.Encode.r_application );
    (* exported components are components *)
    ( "exported_are_components", Ast.Rel env.Encode.r_exported <: cmp );
  ]

(* The exact-bounds instance of the encoding (everything known; free
   relations at their lower bounds). *)
let exact_instance (env : Encode.env) : Instance.t =
  Instance.make env.Encode.universe
    (List.map
       (fun rel ->
         let lower, _ = Bounds.get env.Encode.bounds rel in
         (rel, lower))
       (Bounds.relations env.Encode.bounds))

(* Re-verify every invariant on the concrete encoding.  Returns the
   names of violated invariants ([] = consistent). *)
let check (env : Encode.env) : string list =
  let inst = exact_instance env in
  List.filter_map
    (fun (name, f) -> if Eval.check inst f then None else Some name)
    (wellformedness env)
