(** The paper's motivating-example apps (Listings 1-2 and the Figure 1
    malware), shared by examples, tests and benches. *)

(** LocationFinder broadcasts the device location by implicit intent to
    RouteFinder — the unauthorized-intent-receipt anti-pattern. *)
val navigation_app : unit -> Separ_dalvik.Apk.t

(** MessageSender texts whatever its callers ask; with [guarded] it
    checks the caller's SEND_SMS permission first (Listing 2's commented
    check restored). *)
val messenger_app : ?guarded:bool -> unit -> Separ_dalvik.Apk.t

(** The Figure 1 composite malware: hijacks the location intent and
    relays the location through MessageSender.  Requests no
    permissions. *)
val relay_malware : unit -> Separ_dalvik.Apk.t
