(* SEPAR: formal synthesis and automatic enforcement of Android security
   policies — the public facade.

   The full pipeline is three calls:

   {[
     let analysis = Separ.analyze [ apk1; apk2; ... ] in   (* AME + ASE *)
     let device = Device.create () in
     List.iter (Device.install device) apks;
     Separ.protect device analysis                         (* APE *)
   ]}

   [analyze] statically extracts an architectural model of every app,
   encodes the bundle together with the Android framework model and the
   registered vulnerability signatures into bounded relational logic,
   synthesizes minimal exploit scenarios with the SAT-based engine, and
   derives one ECA policy per scenario.  [protect] loads the synthesized
   policies into the device's policy decision point and switches
   enforcement on.

   Submodules re-export the full API of each subsystem. *)

(* Domain model *)
module Permission = Separ_android.Permission
module Resource = Separ_android.Resource
module Intent = Separ_android.Intent
module Intent_filter = Separ_android.Intent_filter
module Component = Separ_android.Component
module Manifest = Separ_android.Manifest
module Api = Separ_android.Api

(* Bytecode substrate *)
module Ir = Separ_dalvik.Ir
module Apk = Separ_dalvik.Apk
module Builder = Separ_dalvik.Builder
module Asm = Separ_dalvik.Asm

(* Analysis stack *)
module App_model = Separ_ame.App_model
module Extract = Separ_ame.Extract
module Bundle = Separ_ame.Bundle
module Scenario = Separ_specs.Scenario
module Signatures = Separ_specs.Signatures
module Ase = Separ_ase.Ase

(* Persistent analysis cache *)
module Cache = Separ_cache.Store

(* App-store analysis service *)
module Serve = Separ_serve.Serve
module Footprint = Separ_serve.Index

(* Policies and enforcement *)
module Policy = Separ_policy.Policy
module Compile = Separ_policy.Compile
module Derive = Separ_policy.Derive
module Device = Separ_runtime.Device
module Effect = Separ_runtime.Effect
module Attack = Separ_runtime.Attack

(* The paper's motivating-example apps, used by examples, tests and
   benches. *)
module Demo = Demo

type analysis = {
  bundle : Bundle.t;
  report : Ase.report;
  policies : Policy.t list;
}

let analyze_models ?signatures ?jobs ?budget ?incremental ?cache
    ~limit_per_sig models : analysis =
  let bundle = Bundle.of_models models in
  let report =
    Ase.analyze ?signatures ~limit_per_sig ?jobs ?budget ?incremental ?cache
      bundle
  in
  let scenarios =
    List.map (fun v -> v.Ase.v_scenario) report.Ase.r_vulnerabilities
  in
  let policies =
    Derive.of_report (Bundle.update_passive_targets bundle) scenarios
  in
  { bundle; report; policies }

(* Run AME and ASE over a bundle of apps and synthesize policies.
   [jobs] widens ASE's worker pool; [budget] bounds each signature's
   solver session (exhausted signatures degrade, see Ase.degraded);
   [incremental] (default true) shares the bundle encoding and solver
   state across signatures (see Ase.analyze); [cache] makes both AME
   extraction and ASE verdicts read-through a persistent store, so
   re-analyzing an unchanged (or barely changed) bundle skips the
   corresponding extraction and solving. *)
let analyze ?(k1 = true) ?signatures
    ?(limit_per_sig = Separ_relog.Solve.default_enum_limit) ?jobs ?budget
    ?incremental ?cache (apks : Apk.t list) : analysis =
  analyze_models ?signatures ?jobs ?budget ?incremental ?cache ~limit_per_sig
    (List.map (Extract.extract_cached ?cache ~k1) apks)

(* Analyze several independent bundles in one go, sharding across
   bundles first (see Ase.analyze_many): one persistent worker pool
   serves every bundle, so a store-scale run at [jobs > 1] pays fork
   startup once — not once per bundle — and each bundle still gets the
   shared-encoding incremental path internally.  Returns one analysis
   per bundle, in order. *)
let analyze_bundles ?(k1 = true) ?signatures
    ?(limit_per_sig = Separ_relog.Solve.default_enum_limit) ?jobs ?budget
    ?incremental ?cache ?shard_bundles (bundles : Apk.t list list) :
    analysis list =
  let bundles =
    List.map
      (fun apks ->
        Bundle.of_models
          (List.map (Extract.extract_cached ?cache ~k1) apks))
      bundles
  in
  let reports =
    Ase.analyze_many ?signatures ~limit_per_sig ?jobs ?budget ?incremental
      ?cache ?shard_bundles bundles
  in
  List.map2
    (fun bundle report ->
      let scenarios =
        List.map (fun v -> v.Ase.v_scenario) report.Ase.r_vulnerabilities
      in
      let policies =
        Derive.of_report (Bundle.update_passive_targets bundle) scenarios
      in
      { bundle; report; policies })
    bundles reports

(* Incremental re-analysis, the paper's Marshmallow scenario: when apps
   change (an update, or the user revoking a permission), only the
   changed apps are re-extracted; the other app models are reused and
   only the synthesis step re-runs over the updated bundle. *)
let reanalyze ?(k1 = true) ?signatures
    ?(limit_per_sig = Separ_relog.Solve.default_enum_limit) ?jobs ?budget
    ?incremental ?cache (previous : analysis) ~(changed : Apk.t list) :
    analysis =
  let changed_pkgs = List.map Apk.package changed in
  let kept =
    List.filter
      (fun m -> not (List.mem m.App_model.am_package changed_pkgs))
      (Bundle.apps previous.bundle)
  in
  analyze_models ?signatures ?jobs ?budget ?incremental ?cache ~limit_per_sig
    (kept @ List.map (Extract.extract_cached ?cache ~k1) changed)

let vulnerabilities analysis = analysis.report.Ase.r_vulnerabilities
let policies analysis = analysis.policies

(* Install the synthesized policies on a device and enable enforcement. *)
let protect device analysis =
  let packages =
    List.map
      (fun m -> m.App_model.am_package)
      (Bundle.apps analysis.bundle)
  in
  Device.set_policies device analysis.policies packages;
  Device.set_enforcement device true

let pp_analysis ppf a =
  Fmt.pf ppf "@[<v>%a@,--- synthesized policies ---@,%a@]" Ase.pp_report
    a.report
    Fmt.(list ~sep:cut Policy.pp)
    a.policies
