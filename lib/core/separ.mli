(** SEPAR: formal synthesis and automatic enforcement of Android security
    policies — the public facade.

    The full pipeline is three calls:

    {[
      let analysis = Separ.analyze [ apk1; apk2 ] in   (* AME + ASE *)
      let device = Separ.Device.create () in
      List.iter (Separ.Device.install device) apks;
      Separ.protect device analysis                    (* APE *)
    ]}

    Submodules re-export the API of each subsystem. *)

(** {1 Domain model} *)

module Permission = Separ_android.Permission
module Resource = Separ_android.Resource
module Intent = Separ_android.Intent
module Intent_filter = Separ_android.Intent_filter
module Component = Separ_android.Component
module Manifest = Separ_android.Manifest
module Api = Separ_android.Api

(** {1 Bytecode substrate} *)

module Ir = Separ_dalvik.Ir
module Apk = Separ_dalvik.Apk
module Builder = Separ_dalvik.Builder
module Asm = Separ_dalvik.Asm

(** {1 Analysis stack} *)

module App_model = Separ_ame.App_model
module Extract = Separ_ame.Extract
module Bundle = Separ_ame.Bundle
module Scenario = Separ_specs.Scenario
module Signatures = Separ_specs.Signatures
module Ase = Separ_ase.Ase

(** {1 Persistent analysis cache} *)

module Cache = Separ_cache.Store

(** {1 App-store analysis service}

    A long-lived store of extracted models with a job queue of
    upload/update/remove events: the {!Footprint} index maps each
    event to the candidate set of affected scope bundles, and only
    those are re-analyzed (through the {!Cache}, over the worker
    pool).  See {!Serve.drain} and {!Serve.full_repair}. *)

module Serve = Separ_serve.Serve
module Footprint = Separ_serve.Index

(** {1 Policies and enforcement} *)

module Policy = Separ_policy.Policy
module Compile = Separ_policy.Compile
module Derive = Separ_policy.Derive
module Device = Separ_runtime.Device
module Effect = Separ_runtime.Effect
module Attack = Separ_runtime.Attack

(** The paper's motivating-example apps (Listings 1-2 and the Figure 1
    malware), used by examples, tests and benches. *)
module Demo : sig
  val navigation_app : unit -> Apk.t
  val messenger_app : ?guarded:bool -> unit -> Apk.t
  val relay_malware : unit -> Apk.t
end

(** The result of the synthesis pipeline: the extracted bundle, the
    vulnerability report, and one ECA policy per exploit scenario. *)
type analysis = {
  bundle : Bundle.t;
  report : Ase.report;
  policies : Policy.t list;
}

(** Run AME and ASE over a bundle of apps and synthesize policies.
    [k1] selects context sensitivity of extraction; [signatures]
    restricts the vulnerability signatures (default: all registered);
    [limit_per_sig] caps scenarios per signature; [jobs] widens ASE's
    fork-based worker pool (default sequential); [budget] bounds each
    signature's solver session — exhausted or crashed signatures degrade
    to {!Ase.degraded} entries in the report instead of failing the
    analysis; [incremental] (default [true]) shares the bundle encoding
    and solver state across signatures (see {!Ase.analyze}) — results
    are identical either way, only the cost differs; [cache] makes AME
    extraction and ASE verdicts read-through a persistent
    {!Cache.t}, so re-analyzing an unchanged (or barely changed)
    bundle skips the corresponding extraction and solving. *)
val analyze :
  ?k1:bool ->
  ?signatures:Signatures.t list ->
  ?limit_per_sig:int ->
  ?jobs:int ->
  ?budget:Separ_sat.Solver.budget ->
  ?incremental:bool ->
  ?cache:Cache.t ->
  Apk.t list ->
  analysis

(** Analyze several independent bundles in one go, sharding across
    bundles first (see {!Ase.analyze_many}): one persistent worker pool
    serves every bundle, so a store-scale run at [jobs > 1] pays fork
    startup once — not once per bundle — while each bundle still shares
    its encoding internally ([incremental]).  [shard_bundles] (default
    [true]) enables the bundle axis; with it off, bundles are analyzed
    sequentially with signature-axis sharding at [jobs].  Returns one
    {!analysis} per bundle, in order. *)
val analyze_bundles :
  ?k1:bool ->
  ?signatures:Signatures.t list ->
  ?limit_per_sig:int ->
  ?jobs:int ->
  ?budget:Separ_sat.Solver.budget ->
  ?incremental:bool ->
  ?cache:Cache.t ->
  ?shard_bundles:bool ->
  Apk.t list list ->
  analysis list

(** Incremental re-analysis, the paper's Marshmallow scenario: only the
    [changed] apps (matched by package) are re-extracted; the remaining
    app models are reused and only the synthesis step re-runs. *)
val reanalyze :
  ?k1:bool ->
  ?signatures:Signatures.t list ->
  ?limit_per_sig:int ->
  ?jobs:int ->
  ?budget:Separ_sat.Solver.budget ->
  ?incremental:bool ->
  ?cache:Cache.t ->
  analysis ->
  changed:Apk.t list ->
  analysis

val vulnerabilities : analysis -> Ase.vulnerability list
val policies : analysis -> Policy.t list

(** Load the synthesized policies into the device's PDP and enable
    enforcement. *)
val protect : Device.t -> analysis -> unit

val pp_analysis : Format.formatter -> analysis -> unit
