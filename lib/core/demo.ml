(* The apps of the paper's motivating example (§II, Listings 1 and 2),
   built against the public API.  Shared by the runnable examples. *)

module B = Separ_dalvik.Builder
open Separ_android
module Apk = Separ_dalvik.Apk
module Api = Separ_android.Api

(* A navigation app: LocationFinder retrieves the device location and
   forwards it by *implicit* intent to RouteFinder — the anti-pattern of
   Listing 1 that enables unauthorized intent receipt. *)
let navigation_app () =
  let location_finder =
    B.meth ~name:"onStartCommand" ~params:1 (fun b ->
        let loc = B.get_location b in
        let i = B.new_intent b in
        B.set_action b i "showLoc";
        B.put_extra b i ~key:"locationInfo" ~value:loc;
        B.start_service b i)
  in
  let route_finder =
    B.meth ~name:"onStartCommand" ~params:1 (fun b ->
        let loc = B.get_string_extra b 0 ~key:"locationInfo" in
        B.invoke b (Api.mref Api.c_notification "notify") [ loc ])
  in
  Apk.make
    ~manifest:
      (Manifest.make ~package:"com.example.navigation"
         ~uses_permissions:[ Permission.access_fine_location ]
         ~components:
           [
             Component.make ~name:"LocationFinder" ~kind:Component.Service ();
             Component.make ~name:"RouteFinder" ~kind:Component.Service
               ~intent_filters:
                 [ Intent_filter.make ~actions:[ "showLoc" ] () ]
               ();
           ]
         ())
    ~classes:
      [
        B.cls ~name:"LocationFinder" [ location_finder ];
        B.cls ~name:"RouteFinder" [ route_finder ];
      ]

(* A messenger app: MessageSender texts whatever its callers ask, without
   checking their permission — Listing 2 with the hasPermission call
   commented out. *)
let messenger_app ?(guarded = false) () =
  let send_text =
    B.meth ~name:"sendText" ~params:2 (fun b ->
        B.send_text_message b ~number:0 ~body:1)
  in
  let on_start =
    B.meth ~name:"onStartCommand" ~params:1 (fun b ->
        let num = B.get_string_extra b 0 ~key:"PHONE_NUM" in
        let msg = B.get_string_extra b 0 ~key:"TEXT_MSG" in
        if guarded then begin
          let res = B.check_calling_permission b Permission.send_sms in
          let deny = B.fresh_label b in
          B.if_eqz b res deny;
          B.call b ~cls:"MessageSender" ~name:"sendText" [ num; msg ];
          B.place_label b deny
        end
        else B.call b ~cls:"MessageSender" ~name:"sendText" [ num; msg ])
  in
  Apk.make
    ~manifest:
      (Manifest.make ~package:"com.example.messenger"
         ~uses_permissions:[ Permission.send_sms ]
         ~components:
           [
             Component.make ~name:"MessageSender" ~kind:Component.Service
               ~intent_filters:[ Intent_filter.make ~actions:[ "sendMsg" ] () ]
               ();
           ]
         ())
    ~classes:[ B.cls ~name:"MessageSender" [ on_start; send_text ] ]

(* The composite malicious app of Figure 1: hijacks the location intent,
   then relays the location through the messenger's unchecked SMS
   service.  Requests no permissions of its own. *)
let relay_malware () =
  let on_start =
    B.meth ~name:"onStartCommand" ~params:1 (fun b ->
        let loc = B.get_string_extra b 0 ~key:"locationInfo" in
        let i = B.new_intent b in
        B.set_class_name b i "MessageSender";
        let num = B.const_str b "+1-900-ATTACKER" in
        B.put_extra b i ~key:"PHONE_NUM" ~value:num;
        B.put_extra b i ~key:"TEXT_MSG" ~value:loc;
        B.start_service b i)
  in
  Apk.make
    ~manifest:
      (Manifest.make ~package:"com.mal.relay" ~uses_permissions:[]
         ~components:
           [
             Component.make ~name:"Relay" ~kind:Component.Service
               ~intent_filters:[ Intent_filter.make ~actions:[ "showLoc" ] () ]
               ();
           ]
         ())
    ~classes:[ B.cls ~name:"Relay" [ on_start ] ]
