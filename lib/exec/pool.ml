(* Fork-based worker pool.

   Concurrency without threads: each task forks a child process, runs
   the thunk there, and writes [Marshal]-ed results back through a pipe.
   The parent multiplexes over the read ends with [select], reading
   incrementally (a result larger than the pipe buffer would deadlock a
   parent that waited for child exit before reading), and reaps each
   child after its pipe reaches EOF.

   Crash isolation is the point: a child that raises reports the
   exception as a [Failed] payload; a child that dies without reporting
   (segfault, [_exit], kill) is detected by its exit status and turned
   into [Failed] too.  The parent never throws because of a task.

   Telemetry: children inherit the parent's trace/metrics state at fork
   time, so each child resets both and records only its own activity;
   the payload carries the child's finished span roots and a metrics
   snapshot, which the parent grafts/merges back — pid-tagged — in task
   order (deterministic merged telemetry regardless of completion
   order). *)

module Trace = Separ_obs.Trace
module Metrics = Separ_obs.Metrics

type 'r result = Done of 'r | Failed of string

(* What a child ships back: the task's outcome plus its telemetry. *)
type 'r payload =
  ('r, string) Stdlib.result * Trace.span list * Metrics.snapshot

(* Wire protocol tag, written by the child ahead of the marshalled
   payload and checked by the parent before unmarshalling.  Marshal
   itself carries no protocol identity: feeding it bytes produced by a
   stale or mismatched worker binary deserializes garbage (or worse) —
   with the tag, the mismatch surfaces as an honest [Failed].  Bump the
   version whenever the payload layout changes. *)
let protocol_tag = "SEPARP1\n"

(* Validate a raw worker payload's leading tag; [Ok offset] is where the
   marshalled bytes start, [Error] the [Failed] message to report. *)
let check_protocol raw =
  let tag_len = String.length protocol_tag in
  if String.length raw < tag_len then Error "worker sent truncated payload"
  else if String.sub raw 0 tag_len <> protocol_tag then
    Error
      (Printf.sprintf "worker protocol mismatch (expected %S, got %S)"
         (String.trim protocol_tag)
         (String.trim (String.sub raw 0 tag_len)))
  else Ok tag_len

let run_task task =
  match task () with
  | v -> Ok v
  | exception e -> Error (Printexc.to_string e)

(* Inline path: no fork, but the same exception containment, so [-j 1]
   and [-j N] agree on results for deterministic tasks. *)
let run_inline tasks =
  List.map
    (fun task ->
      match run_task task with Ok v -> Done v | Error msg -> Failed msg)
    tasks

(* --- forked path ---------------------------------------------------------- *)

let child_main task w =
  (* Only this child's own activity should ship back. *)
  Trace.reset ();
  Metrics.reset ();
  let outcome = run_task task in
  let payload : _ payload = (outcome, Trace.roots (), Metrics.snapshot ()) in
  let status =
    match
      let oc = Unix.out_channel_of_descr w in
      output_string oc protocol_tag;
      Marshal.to_channel oc payload [];
      flush oc
    with
    | () -> 0
    | exception _ -> 2 (* unmarshalable result / broken pipe *)
  in
  (* [_exit], not [exit]: skip at_exit and inherited buffered output —
     a child must not replay the parent's pending stdout. *)
  Unix._exit status

let status_string = function
  | Unix.WEXITED code ->
      Printf.sprintf "worker exited with status %d before reporting" code
  | Unix.WSIGNALED sg -> Printf.sprintf "worker killed by signal %d" sg
  | Unix.WSTOPPED sg -> Printf.sprintf "worker stopped by signal %d" sg

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let rec select_retry fds =
  match Unix.select fds [] [] (-1.0) with
  | ready, _, _ -> ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_retry fds

let spawn task =
  let r, w = Unix.pipe ~cloexec:false () in
  (* Flush before forking or the child inherits (and could replay)
     pending buffered output. *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      child_main task w
  | pid ->
      Unix.close w;
      (pid, r)

type worker = {
  wk_pid : int;
  wk_index : int;
  wk_buf : Buffer.t; (* marshalled payload, accumulated incrementally *)
}

let run_forked ~jobs tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let results = Array.make n (Failed "not run") in
  let telemetry = Array.make n None in
  (* read-fd -> worker, for the live children *)
  let live : (Unix.file_descr, worker) Hashtbl.t = Hashtbl.create jobs in
  let next = ref 0 in
  let launch () =
    if !next < n then begin
      let idx = !next in
      incr next;
      let pid, r = spawn tasks.(idx) in
      Hashtbl.replace live r
        { wk_pid = pid; wk_index = idx; wk_buf = Buffer.create 4096 }
    end
  in
  let finish fd wk =
    Unix.close fd;
    Hashtbl.remove live fd;
    let status = waitpid_retry wk.wk_pid in
    (match status with
    | Unix.WEXITED 0 -> (
        let raw = Buffer.contents wk.wk_buf in
        match check_protocol raw with
        | Error msg -> results.(wk.wk_index) <- Failed msg
        | Ok offset -> (
            match (Marshal.from_string raw offset : _ payload) with
            | Ok v, spans, msnap ->
                results.(wk.wk_index) <- Done v;
                telemetry.(wk.wk_index) <- Some (wk.wk_pid, spans, msnap)
            | Error msg, spans, msnap ->
                results.(wk.wk_index) <- Failed msg;
                telemetry.(wk.wk_index) <- Some (wk.wk_pid, spans, msnap)
            | exception _ ->
                results.(wk.wk_index) <- Failed "worker sent corrupt payload"))
    | status -> results.(wk.wk_index) <- Failed (status_string status));
    launch ()
  in
  let chunk = Bytes.create 65536 in
  for _ = 1 to min jobs n do
    launch ()
  done;
  while Hashtbl.length live > 0 do
    let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) live [] in
    let ready = select_retry fds in
    List.iter
      (fun fd ->
        match Hashtbl.find_opt live fd with
        | None -> ()
        | Some wk -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> finish fd wk
            | k -> Buffer.add_subbytes wk.wk_buf chunk 0 k
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
      ready
  done;
  (* Merge worker telemetry in task order so the combined trace and
     metric totals are deterministic. *)
  Array.iter
    (function
      | None -> ()
      | Some (pid, spans, msnap) ->
          Trace.graft ~attrs:[ Trace.attr_int "pid" pid ] spans;
          Metrics.merge msnap)
    telemetry;
  Array.to_list results

let run ?(jobs = 1) tasks =
  if jobs <= 1 || List.length tasks <= 1 then run_inline tasks
  else run_forked ~jobs tasks

let map ?jobs f xs = run ?jobs (List.map (fun x () -> f x) xs)
