(* Persistent fork-based worker pool.

   Concurrency without threads: [run ~jobs tasks] forks at most [jobs]
   children *once per run* and streams batches of task indices to them
   over pipes.  A worker loops — read a framed batch, run its tasks,
   write back one framed reply carrying the outcomes plus the batch's
   telemetry — until its task pipe reaches EOF, so N tasks cost
   min(jobs, batches) forks, not N: fork + pipe setup is paid once per
   worker, and small (~ms-scale) tasks amortize the Marshal round-trip
   across a whole batch.  Tasks are closures, which never cross the
   process boundary: each child inherits the full task array at fork
   time and the wire carries only indices one way and marshalled
   results the other.

   Wire protocol, both directions: the [protocol_tag] magic/version
   ("SEPARP2\n") followed by one [Marshal] value — [int list] (batch
   indices) parent→worker, ['r payload] (outcomes + telemetry)
   worker→parent.  The parent validates the tag before unmarshalling;
   a stale or garbage-spewing worker surfaces as [Failed], never as a
   deserialization of garbage.

   Crash isolation is the point: a task that raises reports its
   exception inside the batch reply; a worker that dies outright
   (segfault, [_exit], kill) fails *only its in-flight batch* — the
   parent maps those tasks to [Failed], reaps the corpse, and forks a
   replacement to drain the remaining batches.  EPIPE/ECONNRESET on the
   pool's own pipes (SIGPIPE is ignored for the duration of the run)
   are treated as worker death, not parent crashes.

   File-descriptor hygiene: pipes are opened [~cloexec:true] (so an
   exec'ing grandchild drops them), and — because cloexec is invisible
   to plain forks — every child explicitly closes the parent-side ends
   of all sibling pipes it inherited.  Without this, a sibling's
   inherited write end would keep a dead worker's result pipe from ever
   reaching EOF.

   Telemetry: workers reset trace/metrics/log state per batch and ship
   the batch's span roots, metric snapshot and buffered log events in
   the reply; the parent grafts/merges/replays them back — pid-tagged —
   in *batch* order.  Workers never write to the log sink fd they
   inherit (concurrent children interleaving partial lines would
   corrupt the NDJSON stream); they buffer via [Log.capture_begin] and
   the parent replays through its own sink.  Batches are precomputed
   contiguous chunks, so their composition (and hence the merged
   telemetry) is deterministic regardless of which worker ran which
   batch. *)

module Trace = Separ_obs.Trace
module Metrics = Separ_obs.Metrics
module Log = Separ_obs.Log

type 'r result = Done of 'r | Failed of string

(* What a worker ships back per batch: each task's outcome (keyed by
   task index) plus the telemetry recorded while running the batch. *)
type 'r payload =
  (int * ('r, string) Stdlib.result) list
  * Trace.span list
  * Metrics.snapshot
  * Log.event list

(* Wire protocol tag, written ahead of every marshalled message in both
   directions and checked before unmarshalling.  Marshal itself carries
   no protocol identity: feeding it bytes produced by a stale or
   mismatched worker binary deserializes garbage (or worse) — with the
   tag, the mismatch surfaces as an honest [Failed].  Bump the version
   whenever the message layout changes (SEPARP2: log events joined the
   reply payload). *)
let protocol_tag = "SEPARP2\n"
let tag_len = String.length protocol_tag

(* Validate a raw worker payload's leading tag; [Ok offset] is where the
   marshalled bytes start, [Error] the [Failed] message to report. *)
let check_protocol raw =
  if String.length raw < tag_len then Error "worker sent truncated payload"
  else if String.sub raw 0 tag_len <> protocol_tag then
    Error
      (Printf.sprintf "worker protocol mismatch (expected %S, got %S)"
         (String.trim protocol_tag)
         (String.trim (String.sub raw 0 tag_len)))
  else Ok tag_len

(* Introspection: what the last [run] actually did, for benches and
   tests asserting that forks scale with the pool, not the task count. *)
type run_stats = {
  rs_jobs : int; (* pool width the run was allowed *)
  rs_forks : int; (* processes forked, including respawns *)
  rs_respawns : int; (* replacement workers forked after a death *)
  rs_batches : int; (* task batches sent over the wire *)
  rs_batch : int; (* batch size used (tasks per message) *)
}

let inline_stats =
  { rs_jobs = 1; rs_forks = 0; rs_respawns = 0; rs_batches = 0; rs_batch = 1 }

let last_stats = ref inline_stats
let last_run_stats () = !last_stats
let c_forks = Metrics.counter "pool.forks"
let c_respawns = Metrics.counter "pool.respawns"
let c_batches = Metrics.counter "pool.batches"

(* Auto batch size: enough tasks per message that ms-scale tasks
   amortize the framing + Marshal round-trip, yet at least 4 batches
   per worker so a crash loses little and the tail of the run stays
   balanced; capped so one message never hoards a huge slice. *)
let default_batch ~jobs n = max 1 (min 16 (n / (max 1 jobs * 4)))

let run_task task =
  match task () with
  | v -> Ok v
  | exception e -> Error (Printexc.to_string e)

(* Inline path: no fork, but the same exception containment, so [-j 1]
   and [-j N] agree on results for deterministic tasks. *)
let run_inline tasks =
  List.map
    (fun task ->
      match run_task task with Ok v -> Done v | Error msg -> Failed msg)
    tasks

(* --- worker side ---------------------------------------------------------- *)

(* Serve batches until the task pipe reaches EOF (the parent's shutdown
   signal).  Exit statuses: 0 clean, 2 reply write failed or a batch
   blew up outside task containment, 3 protocol mismatch on the task
   pipe. *)
let worker_main tasks task_r result_w =
  let ic = Unix.in_channel_of_descr task_r in
  let oc = Unix.out_channel_of_descr result_w in
  let tag = Bytes.create tag_len in
  let rec serve () =
    match really_input ic tag 0 tag_len with
    | exception End_of_file -> 0
    | () ->
        if Bytes.to_string tag <> protocol_tag then 3
        else begin
          let indices : int list = Marshal.from_channel ic in
          (* Only this batch's own activity should ship back; capture
             mode also keeps this child off the parent's log sink. *)
          Trace.reset ();
          Metrics.reset ();
          Log.capture_begin ();
          let outcomes = List.map (fun i -> (i, run_task tasks.(i))) indices in
          let payload : _ payload =
            (outcomes, Trace.roots (), Metrics.snapshot (), Log.capture_take ())
          in
          output_string oc protocol_tag;
          Marshal.to_channel oc payload [];
          flush oc;
          serve ()
        end
  in
  let status = match serve () with status -> status | exception _ -> 2 in
  (* [_exit], not [exit]: skip at_exit and inherited buffered output —
     a child must not replay the parent's pending stdout. *)
  Unix._exit status

(* --- parent side ---------------------------------------------------------- *)

let status_string = function
  | Unix.WEXITED code ->
      Printf.sprintf "worker exited with status %d mid-batch" code
  | Unix.WSIGNALED sg -> Printf.sprintf "worker killed by signal %d" sg
  | Unix.WSTOPPED sg -> Printf.sprintf "worker stopped by signal %d" sg

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let rec select_retry fds =
  match Unix.select fds [] [] (-1.0) with
  | ready, _, _ -> ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_retry fds

let rec write_retry fd bytes off len =
  if len > 0 then
    match Unix.write fd bytes off len with
    | k -> write_retry fd bytes (off + k) (len - k)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        write_retry fd bytes off len

type worker = {
  wk_pid : int;
  wk_task_w : Unix.file_descr; (* parent -> worker: framed index batches *)
  wk_res_r : Unix.file_descr; (* worker -> parent: framed replies *)
  wk_buf : Buffer.t; (* reply bytes, accumulated incrementally *)
  mutable wk_inflight : int list; (* indices of the batch on the wire *)
  mutable wk_batch_id : int; (* for batch-ordered telemetry merge *)
  mutable wk_closed : bool; (* task pipe closed (shutdown sent) *)
}

let run_forked ~jobs ~batch tasks_list =
  let tasks = Array.of_list tasks_list in
  let n = Array.length tasks in
  let results = Array.make n (Failed "not run") in
  (* Contiguous batches, precomputed up front: their composition does
     not depend on scheduling, only their worker assignment does — so
     results and batch-ordered telemetry are deterministic. *)
  let batches =
    let rec go i acc =
      if i >= n then List.rev acc
      else
        let len = min batch (n - i) in
        go (i + len) (List.init len (fun k -> i + k) :: acc)
    in
    Array.of_list (go 0 [])
  in
  let n_batches = Array.length batches in
  let telemetry = Array.make n_batches None in
  let next_batch = ref 0 in
  let forks = ref 0 and respawns = ref 0 in
  (* Every parent-side pipe end currently open, so each fork can close
     the sibling fds it inherited (cloexec only helps across exec). *)
  let parent_fds : Unix.file_descr list ref = ref [] in
  let close_parent_fd fd =
    parent_fds := List.filter (fun f -> f <> fd) !parent_fds;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  (* read-fd -> worker, for the live children *)
  let live : (Unix.file_descr, worker) Hashtbl.t = Hashtbl.create jobs in
  let spawn () =
    let task_r, task_w = Unix.pipe ~cloexec:true () in
    let res_r, res_w = Unix.pipe ~cloexec:true () in
    (* Flush before forking or the child inherits (and could replay)
       pending buffered output. *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (* Drop every inherited parent-side end: a sibling's write fd
           surviving in this process would hold that sibling's pipes
           open past its death. *)
        List.iter
          (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          !parent_fds;
        Unix.close task_w;
        Unix.close res_r;
        worker_main tasks task_r res_w
    | pid ->
        Unix.close task_r;
        Unix.close res_w;
        parent_fds := task_w :: res_r :: !parent_fds;
        incr forks;
        Metrics.incr c_forks;
        let wk =
          {
            wk_pid = pid;
            wk_task_w = task_w;
            wk_res_r = res_r;
            wk_buf = Buffer.create 4096;
            wk_inflight = [];
            wk_batch_id = -1;
            wk_closed = false;
          }
        in
        Hashtbl.replace live res_r wk;
        wk
  in
  let shutdown wk =
    (* EOF on the task pipe is the worker's signal to exit cleanly. *)
    if not wk.wk_closed then begin
      wk.wk_closed <- true;
      close_parent_fd wk.wk_task_w
    end
  in
  (* Remove a worker and reap it; [failed_inflight] are the task
     indices its death takes down. *)
  let reap wk ~failed_inflight =
    Hashtbl.remove live wk.wk_res_r;
    close_parent_fd wk.wk_res_r;
    shutdown wk;
    let status = waitpid_retry wk.wk_pid in
    (match failed_inflight with
    | [] -> ()
    | idxs ->
        let msg = status_string status in
        List.iter (fun i -> results.(i) <- Failed msg) idxs);
    status
  in
  let try_send wk indices =
    let body = Marshal.to_bytes (indices : int list) [] in
    let msg = Bytes.cat (Bytes.of_string protocol_tag) body in
    match write_retry wk.wk_task_w msg 0 (Bytes.length msg) with
    | () -> true
    | exception Unix.Unix_error _ ->
        (* EPIPE and friends: the worker died before taking delivery.
           SIGPIPE is ignored for the whole run, so this is an error
           return, not a fatal signal. *)
        false
  in
  (* Hand the next batch to an idle worker, or shut it down when the
     queue is drained.  A worker found dead at send time never received
     the batch, so the batch goes to a replacement instead of failing —
     bounded retries in case forked children keep dying instantly. *)
  let rec assign ?(attempts = 0) wk =
    if !next_batch >= n_batches then shutdown wk
    else begin
      let bid = !next_batch in
      if try_send wk batches.(bid) then begin
        incr next_batch;
        wk.wk_inflight <- batches.(bid);
        wk.wk_batch_id <- bid;
        Metrics.incr c_batches
      end
      else begin
        ignore (reap wk ~failed_inflight:[]);
        if attempts >= 2 then begin
          List.iter
            (fun i ->
              results.(i) <- Failed "worker died before receiving batch")
            batches.(bid);
          incr next_batch;
          if !next_batch < n_batches then begin
            incr respawns;
            Metrics.incr c_respawns;
            assign (spawn ())
          end
        end
        else begin
          incr respawns;
          Metrics.incr c_respawns;
          assign ~attempts:(attempts + 1) (spawn ())
        end
      end
    end
  in
  (* A worker died (EOF or read error on its reply pipe).  Its in-flight
     batch — and only that batch — becomes [Failed]; a replacement is
     forked if batches remain. *)
  let on_death wk =
    let inflight = wk.wk_inflight in
    ignore (reap wk ~failed_inflight:inflight);
    if inflight <> [] && !next_batch < n_batches then begin
      incr respawns;
      Metrics.incr c_respawns;
      assign (spawn ())
    end
  in
  (* A worker speaking the wrong protocol (stale binary, corrupt bytes)
     is killed rather than trusted further. *)
  let kill_protocol wk msg =
    let inflight = wk.wk_inflight in
    Hashtbl.remove live wk.wk_res_r;
    close_parent_fd wk.wk_res_r;
    shutdown wk;
    (try Unix.kill wk.wk_pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (waitpid_retry wk.wk_pid);
    List.iter (fun i -> results.(i) <- Failed msg) inflight;
    if !next_batch < n_batches then begin
      incr respawns;
      Metrics.incr c_respawns;
      assign (spawn ())
    end
  in
  (* Try to complete one reply from the worker's buffer.  The exchange
     is strictly ping-pong (one reply per batch, next batch only after
     the reply), so the buffer holds at most one message. *)
  let drain wk =
    let raw = Buffer.contents wk.wk_buf in
    let len = String.length raw in
    if len >= tag_len then begin
      match check_protocol raw with
      | Error msg -> kill_protocol wk msg
      | Ok off ->
          if len >= off + Marshal.header_size then begin
            let header = Bytes.of_string (String.sub raw off Marshal.header_size) in
            let total = off + Marshal.total_size header 0 in
            if len >= total then begin
              match (Marshal.from_string raw off : _ payload) with
              | outcomes, spans, msnap, events ->
                  List.iter
                    (fun (i, outcome) ->
                      results.(i) <-
                        (match outcome with
                        | Ok v -> Done v
                        | Error msg -> Failed msg))
                    outcomes;
                  telemetry.(wk.wk_batch_id) <-
                    Some (wk.wk_pid, spans, msnap, events);
                  wk.wk_inflight <- [];
                  Buffer.clear wk.wk_buf;
                  if len > total then
                    Buffer.add_string wk.wk_buf
                      (String.sub raw total (len - total));
                  assign wk
              | exception _ -> kill_protocol wk "worker sent corrupt payload"
            end
          end
    end
  in
  (* SIGPIPE off for the duration: a worker dying between select and a
     parent write must surface as EPIPE (handled above), not kill the
     whole analysis. *)
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      match prev_sigpipe with
      | Some h -> ( try Sys.set_signal Sys.sigpipe h with _ -> ())
      | None -> ())
    (fun () ->
      for _ = 1 to min jobs n_batches do
        assign (spawn ())
      done;
      let chunk = Bytes.create 65536 in
      while Hashtbl.length live > 0 do
        let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) live [] in
        let ready = select_retry fds in
        List.iter
          (fun fd ->
            match Hashtbl.find_opt live fd with
            | None -> ()
            | Some wk -> (
                match Unix.read fd chunk 0 (Bytes.length chunk) with
                | 0 -> on_death wk
                | k ->
                    Buffer.add_subbytes wk.wk_buf chunk 0 k;
                    drain wk
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | exception Unix.Unix_error (_, _, _) ->
                    (* ECONNRESET/EIO from a dying worker: same as EOF *)
                    on_death wk))
          ready
      done);
  (* Merge worker telemetry in batch order so the combined trace,
     metric totals and replayed log stream are deterministic. *)
  Array.iter
    (function
      | None -> ()
      | Some (pid, spans, msnap, events) ->
          Trace.graft ~attrs:[ Trace.attr_int "pid" pid ] spans;
          List.iter
            (fun name ->
              Log.warn "metrics.merge_mismatch"
                ~fields:
                  [
                    ("metric", Trace.Str name);
                    ("worker_pid", Trace.Int pid);
                  ])
            (Metrics.merge msnap);
          Log.replay events)
    telemetry;
  last_stats :=
    {
      rs_jobs = jobs;
      rs_forks = !forks;
      rs_respawns = !respawns;
      rs_batches = n_batches;
      rs_batch = batch;
    };
  Array.to_list results

let run ?(jobs = 1) ?batch tasks =
  let n = List.length tasks in
  if jobs <= 1 || n <= 1 then begin
    last_stats := inline_stats;
    run_inline tasks
  end
  else
    let batch =
      match batch with
      | Some b -> max 1 b
      | None -> default_batch ~jobs n
    in
    run_forked ~jobs ~batch tasks

let map ?jobs ?batch f xs = run ?jobs ?batch (List.map (fun x () -> f x) xs)
