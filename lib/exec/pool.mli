(** A persistent fork-based worker pool with crash isolation.

    [run ~jobs tasks] forks at most [jobs] worker processes {e once}
    and streams batches of tasks to them over pipes: each worker loops
    — receive a framed batch, run it, reply with the outcomes plus its
    telemetry — until the pool closes its task pipe.  N tasks therefore
    cost [min jobs batches] forks, not N, and ms-scale tasks amortize
    the per-message Marshal round-trip across a whole batch.

    A task that raises reports [Failed] with the exception text; a
    worker process that dies outright (segfault, [exit], OOM-kill)
    fails only the batch it was running — the parent reaps it, maps the
    in-flight tasks to [Failed], and forks a replacement to drain the
    remaining batches — so one pathological signature cannot abort an
    analysis.

    Results are returned in task order regardless of completion order,
    and worker telemetry (trace spans, metric counters, buffered log
    events) is merged back in deterministic batch order, so a run at
    [-j N] is deterministic given deterministic tasks.

    With [jobs <= 1] (or a single task) everything runs inline in the
    parent — same result type, no forking — which keeps [-j 1] exactly
    as debuggable as the sequential code it replaces. *)

(** The outcome of one task: its value, or a description of how it
    failed (the exception it raised, or the worker's exit status). *)
type 'r result = Done of 'r | Failed of string

(** [run ~jobs ?batch tasks] executes every task and returns one result
    per task, in order.  [jobs] defaults to [1] (inline).  [batch] is
    the number of tasks per wire message; it defaults to
    {!default_batch}, which targets several batches per worker so a
    crash loses little and the tail of the run stays balanced.

    Forked tasks must return marshal-safe values: no closures, no
    custom blocks.  Mutations a forked task makes to parent state are
    invisible to the parent (separate address spaces) — tasks
    communicate through their return value only. *)
val run : ?jobs:int -> ?batch:int -> (unit -> 'r) list -> 'r result list

(** [map ~jobs f xs] is [run ~jobs (List.map (fun x () -> f x) xs)]. *)
val map : ?jobs:int -> ?batch:int -> ('a -> 'r) -> 'a list -> 'r result list

(** The auto batch size for [n] tasks at pool width [jobs]: roughly
    [n / (jobs * 4)] clamped to [1, 16]. *)
val default_batch : jobs:int -> int -> int

(** {1 Introspection}

    What the last {!run} in this process actually did.  Benches and
    tests use this to assert that fork count scales with the pool
    width, not the task count, and that crash recovery respawned. *)

type run_stats = {
  rs_jobs : int;  (** pool width the run was allowed *)
  rs_forks : int;  (** processes forked, including respawns *)
  rs_respawns : int;  (** replacement workers forked after a death *)
  rs_batches : int;  (** task batches sent over the wire *)
  rs_batch : int;  (** batch size used (tasks per message) *)
}

(** Stats of the most recent {!run} ([rs_forks = 0] for an inline
    run). *)
val last_run_stats : unit -> run_stats

(** {1 Wire protocol}

    Every message in both directions — parent→worker batches and
    worker→parent replies — is prefixed with a magic/version tag; the
    receiving side refuses to unmarshal bytes that don't carry the
    expected tag (a stale or mismatched worker binary would otherwise
    deserialize garbage), surfacing the mismatch as [Failed]. *)

(** The tag current workers write ("SEPARP" + protocol version). *)
val protocol_tag : string

(** [check_protocol raw] validates a raw payload's leading tag:
    [Ok offset] is where the marshalled bytes start, [Error msg] the
    [Failed] message reported for a truncated or mismatched payload. *)
val check_protocol : string -> (int, string) Stdlib.result
