(** A fork-based worker pool with crash isolation.

    Tasks run in forked child processes (at most [jobs] concurrently);
    each child ships its result — plus its telemetry — back to the
    parent over a pipe via [Marshal].  A task that raises, or whose
    worker process dies outright (segfault, [exit], OOM-kill), yields
    [Failed] instead of taking the whole run down, so one pathological
    signature cannot abort an analysis.

    Results are returned in task order regardless of completion order,
    and worker telemetry (trace spans, metric counters) is merged back
    into the parent in that same order, so a run at [-j N] is
    deterministic given deterministic tasks.

    With [jobs <= 1] (or a single task) everything runs inline in the
    parent — same result type, no forking — which keeps [-j 1] exactly
    as debuggable as the sequential code it replaces. *)

(** The outcome of one task: its value, or a description of how it
    failed (the exception it raised, or the worker's exit status). *)
type 'r result = Done of 'r | Failed of string

(** [run ~jobs tasks] executes every task and returns one result per
    task, in order.  [jobs] defaults to [1] (inline).

    Forked tasks must return marshal-safe values: no closures, no
    custom blocks.  Mutations a forked task makes to parent state are
    invisible to the parent (separate address spaces) — tasks
    communicate through their return value only. *)
val run : ?jobs:int -> (unit -> 'r) list -> 'r result list

(** [map ~jobs f xs] is [run ~jobs (List.map (fun x () -> f x) xs)]. *)
val map : ?jobs:int -> ('a -> 'r) -> 'a list -> 'r result list

(** {1 Wire protocol}

    Each worker prefixes its marshalled payload with a magic/version
    tag; the parent refuses to unmarshal bytes that don't carry the
    expected tag (a stale or mismatched worker binary would otherwise
    deserialize garbage), surfacing the mismatch as [Failed]. *)

(** The tag current workers write ("SEPARP" + protocol version). *)
val protocol_tag : string

(** [check_protocol raw] validates a raw payload's leading tag:
    [Ok offset] is where the marshalled bytes start, [Error msg] the
    [Failed] message reported for a truncated or mismatched payload. *)
val check_protocol : string -> (int, string) Stdlib.result
