(* ASE: the Analysis and Synthesis Engine.

   Given a bundle of extracted app models, ASE builds the relational
   problem for each registered vulnerability signature (framework facts +
   exact app bounds + the signature's exploit formula), asks the solver
   for *minimal* satisfying instances (the Aluminum role), and decodes
   each instance into an attack scenario.  Enumeration blocks supersets
   of already-reported scenarios, so each result is a genuinely distinct
   exploit.

   Signatures are independent problems, so [analyze ~jobs] partitions
   them across a fork-based worker pool; per-signature solve budgets and
   crash isolation mean one pathological signature degrades to a
   recorded [degraded] entry instead of hanging or aborting the run.

   By default ([incremental]) signatures sharing an encoding config also
   share one solver: the bundle-common encoding is built once
   ([Encode.encode_bundle] + [Solve.prepare_base]), and each signature's
   witness relations and exploit formula ride on an activation-literal
   delta session ([Solve.attach]), so Tseitin work is not repeated and
   CDCL learnt clauses persist across signatures.  Minimization is
   canonical (solver-state independent), so the scenarios — and hence
   the stripped report — are byte-identical to the from-scratch path. *)

open Separ_relog
open Separ_ame
open Separ_specs
module Trace = Separ_obs.Trace
module Metrics = Separ_obs.Metrics
module Log = Separ_obs.Log
module Pool = Separ_exec.Pool

let c_scenarios = Metrics.counter "ase.scenarios"
let c_blocked = Metrics.counter "ase.blocked_models"
let c_signatures = Metrics.counter "ase.signatures_run"
let c_degraded = Metrics.counter "ase.degraded_signatures"

type vulnerability = {
  v_kind : string;
  v_scenario : Scenario.t;
  v_components : string list; (* victim components involved *)
}

(* A signature whose analysis did not complete: its solve budget ran
   out, or its worker process died.  Scenarios found before the
   degradation are still reported; the entry records the gap. *)
type degraded = {
  d_kind : string; (* signature name *)
  d_reason : string; (* "budget_exhausted" or "worker_crashed: ..." *)
}

type sig_outcome = Complete | Budget_exhausted

let outcome_name = function
  | Complete -> "complete"
  | Budget_exhausted -> "budget_exhausted"

(* Everything one signature's run produces; returned by value so the
   worker pool can marshal it across the process boundary. *)
type sig_result = {
  sr_scenarios : Scenario.t list;
  sr_truncated : bool; (* enumeration cut off at the limit *)
  sr_outcome : sig_outcome;
  sr_stats : Solve.stats;
}

(* What one signature cost on top of the state its solver already held:
   for an incremental delta session the numbers are genuine increments
   over the shared base; for a from-scratch session they cover the whole
   problem (and [reused_*] are 0). *)
type sig_delta = {
  sd_kind : string; (* signature name *)
  sd_vars : int;
  sd_clauses : int;
  sd_gates : int;
  sd_cache_hits : int; (* translate expr-cache *)
  sd_cache_misses : int;
  sd_hc_hits : int; (* circuit hash-cons *)
  sd_hc_misses : int;
  sd_reused_clauses : int; (* already in the solver at session start *)
  sd_reused_learnts : int; (* learnt clauses carried over *)
  sd_construction_ms : float;
  sd_solving_ms : float;
}

type report = {
  r_stats : Bundle.stats;
  r_vulnerabilities : vulnerability list;
  r_degraded : degraded list; (* in signature order *)
  r_truncated : string list; (* signatures whose enumeration hit the limit *)
  r_construction_ms : float; (* translation to CNF (Table II) *)
  r_solving_ms : float;      (* SAT search (Table II) *)
  r_vars : int;
  r_clauses : int;
  r_solver : Separ_sat.Solver.stats_record;
  (* CDCL counters aggregated over all signatures' solver sessions *)
  r_incremental : bool; (* whether the shared-solver path was used *)
  r_sig_deltas : sig_delta list; (* per signature, in signature order *)
  r_cache : (string * int) list;
  (* persistent-cache counters (hits/misses per tier, stores, evictions,
     corrupt), sorted by name; [] when no cache was used *)
}

(* The device components implicated in a scenario: component witnesses,
   senders of witness intents, and the malicious intent's explicit
   target. *)
let victim_components (bundle : Bundle.t) (s : Scenario.t) =
  let intent_sender id =
    List.find_map
      (fun (_, c, i) ->
        if i.App_model.im_id = id then Some c.App_model.cm_name else None)
      (Bundle.all_intents bundle)
  in
  let of_witness (_name, atoms) =
    List.concat_map
      (fun atom ->
        match Bundle.find_component bundle atom with
        | Some (_, c) -> [ c.App_model.cm_name ]
        | None -> (
            match intent_sender atom with Some c -> [ c ] | None -> []))
      atoms
  in
  let from_mal_target =
    match s.Scenario.sc_mal_intent with
    | Some { Scenario.mi_target = Some t; _ } -> [ t ]
    | _ -> []
  in
  List.sort_uniq compare
    (List.concat_map of_witness s.Scenario.sc_witnesses @ from_mal_target)

(* Enumerate one minimal scenario per distinct witness valuation: the
   witnesses identify the victim elements, so further instances that
   only vary the synthesized payload are redundant for policy
   derivation.  Shared by the from-scratch and incremental paths — the
   session's flavour is invisible here. *)
let enumerate_signature ~limit (sig_ : Signatures.t) (env : Encode.env)
    session =
  let witness_rels = List.map snd env.Encode.r_witnesses in
  let rec go acc k =
    if k >= limit then (List.rev acc, true, Complete)
    else
      match
        Trace.with_span "ase.scenario" (fun () ->
            match Solve.next ~minimal:true session with
            | Solve.Unsat -> None
            | Solve.Unknown -> Some (Error ())
            | Solve.Sat inst ->
                Solve.block_on session witness_rels;
                Metrics.incr c_scenarios;
                Metrics.incr c_blocked;
                Some (Ok (Signatures.decode sig_ env inst)))
      with
      | None -> (List.rev acc, false, Complete)
      | Some (Error ()) -> (List.rev acc, false, Budget_exhausted)
      | Some (Ok sc) -> go (sc :: acc) (k + 1)
  in
  let scenarios, truncated, outcome = go [] 0 in
  (* Emitted here so both the from-scratch and the incremental path get
     one event per signature — inside the [ase.signature] span (and, at
     [-j N], inside the worker, so the event ships back pid-tagged). *)
  Log.info "ase.signature"
    ~fields:
      [
        ("signature", Trace.Str sig_.Signatures.name);
        ("scenarios", Trace.Int (List.length scenarios));
        ("truncated", Trace.Bool truncated);
        ("outcome", Trace.Str (outcome_name outcome));
      ];
  Trace.add_attr "scenarios" (Trace.Int (List.length scenarios));
  if truncated then Trace.add_attr "truncated" (Trace.Bool true);
  if outcome = Budget_exhausted then
    Trace.add_attr "outcome" (Trace.Str "budget_exhausted");
  {
    sr_scenarios = scenarios;
    sr_truncated = truncated;
    sr_outcome = outcome;
    sr_stats = Solve.stats session;
  }

(* Run one signature against a bundle, from scratch: fresh encoding,
   fresh solver.  [budget], if given, bounds the signature's whole
   solver session; exhaustion mid-enumeration keeps the scenarios found
   so far and marks the result [Budget_exhausted]. *)
let run_signature ?(limit = Solve.default_enum_limit) ?budget bundle
    (sig_ : Signatures.t) =
  Trace.with_span "ase.signature"
    ~attrs:[ Trace.attr_str "signature" sig_.Signatures.name ]
    (fun () ->
      Metrics.incr c_signatures;
      let env =
        Trace.with_span "ase.encode" (fun () ->
            Encode.build ~config:sig_.Signatures.config
              ~witnesses:sig_.Signatures.witnesses bundle)
      in
      let problem =
        Solve.
          {
            bounds = env.Encode.bounds;
            constraints = env.Encode.facts @ [ sig_.Signatures.formula env ];
          }
      in
      let session = Solve.prepare ?budget problem in
      enumerate_signature ~limit sig_ env session)

(* --- incremental path ----------------------------------------------------- *)

(* Per-signature outcome inside a shard: kept marshal-safe so a forked
   worker can ship the whole shard's results back in one payload. *)
type item = Computed of sig_result | Crashed of string

type shard_result = {
  sh_items : item list; (* one per signature, in shard order *)
  (* totals of the shard's shared solvers (one per distinct config),
     snapshotted after the last signature — *not* per-signature sums,
     which would double-count the shared base *)
  sh_vars : int;
  sh_clauses : int;
  sh_solver : Separ_sat.Solver.stats_record;
  sh_base_ms : float; (* base translation time, paid once per config *)
}

(* Run a shard of signatures on shared per-config bases.  The bundle
   encoding depends on the signature's [config] (it decides which
   adversary atoms exist), so signatures are grouped by config: the
   first signature of each config pays for [Encode.encode_bundle] and
   [Solve.prepare_base]; the rest attach delta sessions to it.

   A signature that raises is recorded as [Crashed] without poisoning
   the shard: any half-attached delta is retired (its guarded clauses
   become permanently satisfied) and the next signature attaches to a
   clean base. *)
let run_shard ?(limit = Solve.default_enum_limit) ?budget bundle
    (sigs : Signatures.t list) =
  let bases : (Encode.config, Encode.env * Solve.base) Hashtbl.t =
    Hashtbl.create 4
  in
  (* Config creation order: totals below fold over this list, not over
     [Hashtbl.iter], whose order is unspecified — summing floats in
     hash order would make shard timings (and anything derived from
     them) differ run to run. *)
  let base_order : (Encode.env * Solve.base) list ref = ref [] in
  let get_base config =
    match Hashtbl.find_opt bases config with
    | Some eb -> eb
    | None ->
        let env =
          Trace.with_span "ase.encode_base" (fun () ->
              Encode.encode_bundle ~config bundle)
        in
        let base =
          Solve.prepare_base
            Solve.
              { bounds = env.Encode.bounds; constraints = env.Encode.facts }
        in
        Hashtbl.add bases config (env, base);
        base_order := !base_order @ [ (env, base) ];
        (env, base)
  in
  let items =
    List.map
      (fun (sig_ : Signatures.t) ->
        Trace.with_span "ase.signature"
          ~attrs:[ Trace.attr_str "signature" sig_.Signatures.name ]
          (fun () ->
            Metrics.incr c_signatures;
            try
              let base_env, base = get_base sig_.Signatures.config in
              let env =
                Trace.with_span "ase.encode" (fun () ->
                    Encode.encode_signature base_env sig_.Signatures.witnesses)
              in
              let constraints =
                Encode.witness_facts env @ [ sig_.Signatures.formula env ]
              in
              let session =
                Solve.attach ?budget base
                  ~rels:(List.map snd env.Encode.r_witnesses)
                  ~constraints
              in
              let result = enumerate_signature ~limit sig_ env session in
              Solve.detach session;
              Computed result
            with e ->
              (* Best-effort cleanup: retiring the (at most one) live
                 activation literal permanently satisfies whatever this
                 signature managed to assert, so the shard's remaining
                 signatures see an intact base. *)
              List.iter
                (fun (_, b) ->
                  Separ_sat.Solver.retire_activation (Solve.base_solver b))
                !base_order;
              Crashed (Printexc.to_string e)))
      sigs
  in
  let sh_vars = ref 0 and sh_clauses = ref 0 and sh_base_ms = ref 0.0 in
  let sh_solver = ref Separ_sat.Solver.empty_stats in
  List.iter
    (fun (_, b) ->
      let s = Solve.base_solver b in
      sh_vars := !sh_vars + Separ_sat.Solver.n_vars s;
      sh_clauses := !sh_clauses + Separ_sat.Solver.n_clauses s;
      sh_solver := Separ_sat.Solver.sum_stats !sh_solver (Solve.base_stats b);
      sh_base_ms := !sh_base_ms +. Solve.base_translation_ms b)
    !base_order;
  {
    sh_items = items;
    sh_vars = !sh_vars;
    sh_clauses = !sh_clauses;
    sh_solver = !sh_solver;
    sh_base_ms = !sh_base_ms;
  }

(* Split [xs] into at most [k] contiguous, balanced shards (first shards
   get the remainder).  Contiguity keeps flattened shard results in
   original signature order. *)
let partition_contiguous k xs =
  let n = List.length xs in
  let k = max 1 (min k n) in
  let base = n / k and extra = n mod k in
  let rec take i xs acc =
    if i = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> (List.rev acc, [])
      | x :: rest -> take (i - 1) rest (x :: acc)
  in
  let rec go i xs acc =
    if i >= k then List.rev acc
    else
      let sz = base + if i < extra then 1 else 0 in
      let shard, rest = take sz xs [] in
      go (i + 1) rest (shard :: acc)
  in
  go 0 xs []

(* --- persistent verdict cache -------------------------------------------- *)

module Store = Separ_cache.Store

(* Bump when the cached-verdict layout or the enumeration semantics
   change; old entries then key under a stale version and miss. *)
let ase_cache_version = "ase-v1"
let ase_cache_tier = "ase"

(* What a cache hit restores: the signature's scenarios and whether the
   enumeration was cut off at the limit.  Only [Complete] outcomes are
   ever stored — a budget-exhausted run depends on solver state and
   wall-clock, so replaying it from cache would not be deterministic. *)
type cached_verdict = {
  cv_scenarios : Scenario.t list;
  cv_truncated : bool;
}

let zero_solve_stats =
  Solve.
    {
      translation_ms = 0.0;
      solving_ms = 0.0;
      n_vars = 0;
      n_clauses = 0;
      n_gates = 0;
      delta_vars = 0;
      delta_clauses = 0;
      delta_gates = 0;
      cache_hits = 0;
      cache_misses = 0;
      hc_hits = 0;
      hc_misses = 0;
      reused_clauses = 0;
      reused_learnts = 0;
      solver = Separ_sat.Solver.empty_stats;
    }

(* The per-(bundle, signature) cache key: the encoded problem projected
   onto the signature's relation support ({!Encode.problem_fingerprint}),
   plus everything else that can change the verdict — encode + verdict
   versions, encoding config, signature name, enumeration limit.  The
   bundle is expected to have passive targets already resolved. *)
let fingerprint_on ~limit base_env (sig_ : Signatures.t) =
  let env = Encode.encode_signature base_env sig_.Signatures.witnesses in
  let constraints = env.Encode.facts @ [ sig_.Signatures.formula env ] in
  Printf.sprintf "%s;%s;limit=%d;sig=%s;%s" ase_cache_version
    (Encode.config_fingerprint sig_.Signatures.config)
    limit sig_.Signatures.name
    (Encode.problem_fingerprint env constraints)

(* One fingerprint per signature, sharing one bundle encoding per
   distinct config (fingerprinting costs encode time, never solve
   time). *)
let fingerprints ~limit bundle (signatures : Signatures.t list) =
  let envs : (Encode.config, Encode.env) Hashtbl.t = Hashtbl.create 4 in
  let base_env config =
    match Hashtbl.find_opt envs config with
    | Some env -> env
    | None ->
        let env = Encode.encode_bundle ~config bundle in
        Hashtbl.add envs config env;
        env
  in
  List.map
    (fun (sig_ : Signatures.t) ->
      fingerprint_on ~limit (base_env sig_.Signatures.config) sig_)
    signatures

(* Standalone key computation, mirroring what [analyze ?cache] uses
   (passive targets resolved first) — for tests and tooling that reason
   about invalidation. *)
let signature_fingerprint ?(limit = Solve.default_enum_limit) bundle sig_ =
  let bundle = Bundle.update_passive_targets bundle in
  match fingerprints ~limit bundle [ sig_ ] with
  | [ fp ] -> fp
  | _ -> assert false

let delta_of name (st : Solve.stats) =
  {
    sd_kind = name;
    sd_vars = st.Solve.delta_vars;
    sd_clauses = st.Solve.delta_clauses;
    sd_gates = st.Solve.delta_gates;
    sd_cache_hits = st.Solve.cache_hits;
    sd_cache_misses = st.Solve.cache_misses;
    sd_hc_hits = st.Solve.hc_hits;
    sd_hc_misses = st.Solve.hc_misses;
    sd_reused_clauses = st.Solve.reused_clauses;
    sd_reused_learnts = st.Solve.reused_learnts;
    sd_construction_ms = st.Solve.translation_ms;
    sd_solving_ms = st.Solve.solving_ms;
  }

let analyze ?(signatures = Signatures.all ())
    ?(limit_per_sig = Solve.default_enum_limit) ?(jobs = 1) ?budget
    ?(incremental = true) ?cache (bundle : Bundle.t) : report =
  Trace.with_span "ase.analyze"
    ~attrs:
      [
        Trace.attr_int "jobs" jobs;
        Trace.attr_bool "incremental" incremental;
        Trace.attr_bool "cache" (Option.is_some cache);
      ]
    (fun () ->
  Log.info "ase.analyze"
    ~fields:
      [
        ("signatures", Trace.Int (List.length signatures));
        ("jobs", Trace.Int jobs);
        ("incremental", Trace.Bool incremental);
        ("cache", Trace.Bool (Option.is_some cache));
      ];
  (* Resolve passive-intent targets across the bundle first (Algorithm 1). *)
  let bundle =
    Trace.with_span "ase.resolve_targets" (fun () ->
        Bundle.update_passive_targets bundle)
  in
  (* Persistent-cache pre-pass: fingerprint every signature's encoded
     problem (encode work only — no solving), look each up, and keep
     only the misses for the solving pipeline below.  Hits replay the
     stored scenarios with zeroed per-signature stats. *)
  let fps =
    match cache with
    | None -> None
    | Some _ ->
        Some
          (Trace.with_span "ase.cache_fingerprint" (fun () ->
               fingerprints ~limit:limit_per_sig bundle signatures))
  in
  let cached : cached_verdict option list =
    match (cache, fps) with
    | Some store, Some fps ->
        List.map (fun fp -> Store.find store ~tier:ase_cache_tier ~key:fp) fps
    | _ -> List.map (fun _ -> None) signatures
  in
  let to_run =
    List.concat
      (List.map2
         (fun sig_ c -> match c with None -> [ sig_ ] | Some _ -> [])
         signatures cached)
  in
  (* Two dispatch shapes, one merge.  Incremental: one pool task per
     contiguous shard of signatures, sharing per-config solvers within
     the shard.  From-scratch: one task per signature.  Either way the
     pool runs tasks inline at [jobs <= 1] and in forked workers
     otherwise, and results come back in signature order — the merged
     (stripped) report is identical across [-j N] and across the two
     paths, because minimization is canonical.  [shared_totals] carries
     solver-level aggregates the incremental path must take from the
     shards (per-signature sums would double-count the shared base). *)
  let computed_items, shared_totals =
    if incremental then begin
      let shards = partition_contiguous jobs to_run in
      let shard_results =
        Pool.run ~jobs
          (List.map
             (fun shard () -> run_shard ~limit:limit_per_sig ?budget bundle shard)
             shards)
      in
      let items =
        List.concat
          (List.map2
             (fun shard res ->
               match res with
               | Pool.Failed msg ->
                   (* the whole shard's worker died: every signature in
                      it is unaccounted for *)
                   List.map (fun _ -> Crashed msg) shard
               | Pool.Done sh -> sh.sh_items)
             shards shard_results)
      in
      let vars = ref 0 and clauses = ref 0 and base_ms = ref 0.0 in
      let solver = ref Separ_sat.Solver.empty_stats in
      List.iter
        (function
          | Pool.Failed _ -> ()
          | Pool.Done sh ->
              vars := !vars + sh.sh_vars;
              clauses := !clauses + sh.sh_clauses;
              base_ms := !base_ms +. sh.sh_base_ms;
              solver := Separ_sat.Solver.sum_stats !solver sh.sh_solver)
        shard_results;
      (items, Some (!vars, !clauses, !solver, !base_ms))
    end
    else
      let results =
        Pool.run ~jobs
          (List.map
             (fun sig_ () ->
               run_signature ~limit:limit_per_sig ?budget bundle sig_)
             to_run)
      in
      ( List.map
          (function
            | Pool.Failed msg -> Crashed msg
            | Pool.Done sr -> Computed sr)
          results,
        None )
  in
  (* Store the freshly computed verdicts (complete outcomes only — a
     budget-exhausted or crashed signature must be re-attempted next
     run), then splice hits and computed results back into signature
     order. *)
  (match (cache, fps) with
  | Some store, Some fps ->
      let miss_fps =
        List.concat
          (List.map2
             (fun fp c -> match c with None -> [ fp ] | Some _ -> [])
             fps cached)
      in
      List.iter2
        (fun fp item ->
          match item with
          | Computed sr when sr.sr_outcome = Complete ->
              Store.store store ~tier:ase_cache_tier ~key:fp
                {
                  cv_scenarios = sr.sr_scenarios;
                  cv_truncated = sr.sr_truncated;
                }
          | Computed _ | Crashed _ -> ())
        miss_fps computed_items
  | _ -> ());
  let items =
    let rec merge cached computed =
      match cached with
      | [] -> []
      | Some cv :: rest ->
          Computed
            {
              sr_scenarios = cv.cv_scenarios;
              sr_truncated = cv.cv_truncated;
              sr_outcome = Complete;
              sr_stats = zero_solve_stats;
            }
          :: merge rest computed
      | None :: rest -> (
          match computed with
          | item :: more -> item :: merge rest more
          | [] -> assert false)
    in
    merge cached computed_items
  in
  let construction = ref 0.0 and solving = ref 0.0 in
  let vars = ref 0 and clauses = ref 0 in
  let solver_totals = ref Separ_sat.Solver.empty_stats in
  let degraded = ref [] in
  let truncated = ref [] in
  let deltas = ref [] in
  let vulnerabilities =
    List.concat
      (List.map2
         (fun sig_ item ->
           let name = sig_.Signatures.name in
           match item with
           | Crashed msg ->
               Metrics.incr c_degraded;
               Log.warn "ase.degraded"
                 ~fields:
                   [
                     ("signature", Trace.Str name);
                     ("reason", Trace.Str ("worker_crashed: " ^ msg));
                   ];
               degraded :=
                 { d_kind = name; d_reason = "worker_crashed: " ^ msg }
                 :: !degraded;
               []
           | Computed sr ->
               let stats = sr.sr_stats in
               construction := !construction +. stats.Solve.translation_ms;
               solving := !solving +. stats.Solve.solving_ms;
               vars := !vars + stats.Solve.n_vars;
               clauses := !clauses + stats.Solve.n_clauses;
               solver_totals :=
                 Separ_sat.Solver.sum_stats !solver_totals stats.Solve.solver;
               deltas := delta_of name stats :: !deltas;
               if sr.sr_outcome = Budget_exhausted then begin
                 Metrics.incr c_degraded;
                 Log.warn "ase.degraded"
                   ~fields:
                     [
                       ("signature", Trace.Str name);
                       ("reason", Trace.Str "budget_exhausted");
                     ];
                 degraded :=
                   { d_kind = name; d_reason = "budget_exhausted" }
                   :: !degraded
               end;
               if sr.sr_truncated then truncated := name :: !truncated;
               List.map
                 (fun sc ->
                   {
                     v_kind = name;
                     v_scenario = sc;
                     v_components = victim_components bundle sc;
                   })
                 sr.sr_scenarios)
         signatures items)
  in
  Trace.add_attr "vulnerabilities" (Trace.Int (List.length vulnerabilities));
  let degraded = List.rev !degraded in
  if degraded <> [] then
    Trace.add_attr "degraded" (Trace.Int (List.length degraded));
  let r_vars, r_clauses, r_solver, r_construction_ms =
    match shared_totals with
    | Some (v, c, s, base_ms) ->
        (* construction = every base paid once + the per-signature deltas *)
        (v, c, s, base_ms +. !construction)
    | None -> (!vars, !clauses, !solver_totals, !construction)
  in
  {
    r_stats = Bundle.stats bundle;
    r_vulnerabilities = vulnerabilities;
    r_degraded = degraded;
    r_truncated = List.rev !truncated;
    r_construction_ms;
    r_solving_ms = !solving;
    r_vars;
    r_clauses;
    r_solver;
    r_incremental = incremental;
    r_sig_deltas = List.rev !deltas;
    r_cache = (match cache with Some s -> Store.stats s | None -> []);
  })

(* --- bundle-axis sharding -------------------------------------------------- *)

(* The report for a bundle whose entire worker died: nothing was found,
   every signature is degraded, and the gap is recorded per signature
   exactly as a single-bundle run with an all-crashed pool would. *)
let crashed_bundle_report ~signatures ~incremental bundle msg =
  {
    r_stats = Bundle.stats bundle;
    r_vulnerabilities = [];
    r_degraded =
      List.map
        (fun (sig_ : Signatures.t) ->
          {
            d_kind = sig_.Signatures.name;
            d_reason = "worker_crashed: " ^ msg;
          })
        signatures;
    r_truncated = [];
    r_construction_ms = 0.0;
    r_solving_ms = 0.0;
    r_vars = 0;
    r_clauses = 0;
    r_solver = Separ_sat.Solver.empty_stats;
    r_incremental = incremental;
    r_sig_deltas = [];
    r_cache = [];
  }

(* Analyze several independent bundles, sharding across *bundles* first
   and signatures second: with [shard_bundles] (the default) and
   [jobs > 1], each bundle becomes one pool task — one fork set serves
   all of them, batched — and any parallelism left over
   ([jobs / #bundles], at least 1) runs *inside* each worker as the
   usual signature sharding.  Incremental ASE thus still shares one
   base encoding per config within every bundle, while a multi-bundle
   (store-scale) run saturates cores on the bundle axis, where the
   tasks are big enough to pay for transport.

   Results come back in bundle order and each bundle's report is
   byte-identical (stripped) to a [-j 1] run of that bundle: the pool
   merge is deterministic and minimization canonical.  A worker dying
   takes down only the bundles of its in-flight batch, each of which
   degrades to a report with every signature marked [worker_crashed]. *)
let analyze_many ?(signatures = Signatures.all ())
    ?(limit_per_sig = Solve.default_enum_limit) ?(jobs = 1) ?budget
    ?(incremental = true) ?cache ?(shard_bundles = true)
    (bundles : Bundle.t list) : report list =
  let analyze_one ~jobs bundle =
    analyze ~signatures ~limit_per_sig ~jobs ?budget ~incremental ?cache
      bundle
  in
  let n_bundles = List.length bundles in
  if (not shard_bundles) || jobs <= 1 || n_bundles <= 1 then
    List.map (analyze_one ~jobs) bundles
  else begin
    let inner_jobs = max 1 (jobs / n_bundles) in
    let results =
      Pool.run ~jobs
        (List.map (fun bundle () -> analyze_one ~jobs:inner_jobs bundle)
           bundles)
    in
    List.map2
      (fun bundle result ->
        match result with
        | Pool.Done report -> report
        | Pool.Failed msg ->
            crashed_bundle_report ~signatures ~incremental bundle msg)
      bundles results
  end

(* Forget everything about *how* the analysis ran, keeping only what it
   found.  Reports from the incremental and from-scratch paths (at any
   [-j]) must agree after stripping — the test suite and the bench
   [--incremental-smoke] gate assert this byte-for-byte on the
   serialized report. *)
let strip_performance r =
  {
    r with
    r_construction_ms = 0.0;
    r_solving_ms = 0.0;
    r_vars = 0;
    r_clauses = 0;
    r_solver = Separ_sat.Solver.empty_stats;
    r_incremental = false;
    r_sig_deltas = [];
    r_cache = [];
  }

(* Apps having at least one vulnerability of the given kind. *)
let vulnerable_apps report bundle kind =
  let apps_of_cmp name =
    List.filter_map
      (fun app ->
        if List.exists (fun c -> c.App_model.cm_name = name)
             app.App_model.am_components
        then Some app.App_model.am_package
        else None)
      (Bundle.apps bundle)
  in
  List.sort_uniq compare
    (List.concat_map
       (fun v ->
         if v.v_kind = kind then List.concat_map apps_of_cmp v.v_components
         else [])
       report.r_vulnerabilities)

let pp_report ppf r =
  let s = r.r_solver in
  Fmt.pf ppf
    "@[<v>bundle: %d apps, %d components, %d intents, %d filters@,\
     %d vulnerabilities (construction %.1f ms, solving %.1f ms)@,\
     solver: %d conflicts, %d propagations, %d restarts; learnt db: \
     peak %d, %d reductions, %d deleted, %d literals minimized@,%a@]"
    r.r_stats.Bundle.n_apps r.r_stats.Bundle.n_components
    r.r_stats.Bundle.n_intents r.r_stats.Bundle.n_intent_filters
    (List.length r.r_vulnerabilities)
    r.r_construction_ms r.r_solving_ms
    s.Separ_sat.Solver.s_conflicts s.Separ_sat.Solver.s_propagations
    s.Separ_sat.Solver.s_restarts s.Separ_sat.Solver.s_peak_learnts
    s.Separ_sat.Solver.s_db_reductions s.Separ_sat.Solver.s_learnts_deleted
    s.Separ_sat.Solver.s_lits_minimized
    Fmt.(
      list ~sep:cut (fun ppf v ->
          pf ppf "- [%s] %s (components: %a)" v.v_kind
            v.v_scenario.Scenario.sc_description
            (list ~sep:(any ", ") string)
            v.v_components))
    r.r_vulnerabilities;
  if r.r_degraded <> [] then
    Fmt.pf ppf "@.degraded: %a"
      Fmt.(
        list ~sep:(any ", ") (fun ppf d ->
            pf ppf "%s (%s)" d.d_kind d.d_reason))
      r.r_degraded;
  if r.r_truncated <> [] then
    Fmt.pf ppf "@.truncated: %a"
      Fmt.(list ~sep:(any ", ") string)
      r.r_truncated
