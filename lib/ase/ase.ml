(* ASE: the Analysis and Synthesis Engine.

   Given a bundle of extracted app models, ASE builds the relational
   problem for each registered vulnerability signature (framework facts +
   exact app bounds + the signature's exploit formula), asks the solver
   for *minimal* satisfying instances (the Aluminum role), and decodes
   each instance into an attack scenario.  Enumeration blocks supersets
   of already-reported scenarios, so each result is a genuinely distinct
   exploit.

   Signatures are independent problems, so [analyze ~jobs] partitions
   them across a fork-based worker pool; per-signature solve budgets and
   crash isolation mean one pathological signature degrades to a
   recorded [degraded] entry instead of hanging or aborting the run. *)

open Separ_relog
open Separ_ame
open Separ_specs
module Trace = Separ_obs.Trace
module Metrics = Separ_obs.Metrics
module Pool = Separ_exec.Pool

let c_scenarios = Metrics.counter "ase.scenarios"
let c_blocked = Metrics.counter "ase.blocked_models"
let c_signatures = Metrics.counter "ase.signatures_run"
let c_degraded = Metrics.counter "ase.degraded_signatures"

type vulnerability = {
  v_kind : string;
  v_scenario : Scenario.t;
  v_components : string list; (* victim components involved *)
}

(* A signature whose analysis did not complete: its solve budget ran
   out, or its worker process died.  Scenarios found before the
   degradation are still reported; the entry records the gap. *)
type degraded = {
  d_kind : string; (* signature name *)
  d_reason : string; (* "budget_exhausted" or "worker_crashed: ..." *)
}

type sig_outcome = Complete | Budget_exhausted

(* Everything one signature's run produces; returned by value so the
   worker pool can marshal it across the process boundary. *)
type sig_result = {
  sr_scenarios : Scenario.t list;
  sr_truncated : bool; (* enumeration cut off at the limit *)
  sr_outcome : sig_outcome;
  sr_stats : Solve.stats;
}

type report = {
  r_stats : Bundle.stats;
  r_vulnerabilities : vulnerability list;
  r_degraded : degraded list; (* in signature order *)
  r_truncated : string list; (* signatures whose enumeration hit the limit *)
  r_construction_ms : float; (* translation to CNF (Table II) *)
  r_solving_ms : float;      (* SAT search (Table II) *)
  r_vars : int;
  r_clauses : int;
  r_solver : Separ_sat.Solver.stats_record;
  (* CDCL counters aggregated over all signatures' solver sessions *)
}

(* The device components implicated in a scenario: component witnesses,
   senders of witness intents, and the malicious intent's explicit
   target. *)
let victim_components (bundle : Bundle.t) (s : Scenario.t) =
  let intent_sender id =
    List.find_map
      (fun (_, c, i) ->
        if i.App_model.im_id = id then Some c.App_model.cm_name else None)
      (Bundle.all_intents bundle)
  in
  let of_witness (_name, atoms) =
    List.concat_map
      (fun atom ->
        match Bundle.find_component bundle atom with
        | Some (_, c) -> [ c.App_model.cm_name ]
        | None -> (
            match intent_sender atom with Some c -> [ c ] | None -> []))
      atoms
  in
  let from_mal_target =
    match s.Scenario.sc_mal_intent with
    | Some { Scenario.mi_target = Some t; _ } -> [ t ]
    | _ -> []
  in
  List.sort_uniq compare
    (List.concat_map of_witness s.Scenario.sc_witnesses @ from_mal_target)

(* Run one signature against a bundle.  [budget], if given, bounds the
   signature's whole solver session; exhaustion mid-enumeration keeps
   the scenarios found so far and marks the result [Budget_exhausted]. *)
let run_signature ?(limit = Solve.default_enum_limit) ?budget bundle
    (sig_ : Signatures.t) =
  Trace.with_span "ase.signature"
    ~attrs:[ Trace.attr_str "signature" sig_.Signatures.name ]
    (fun () ->
      Metrics.incr c_signatures;
      let env =
        Trace.with_span "ase.encode" (fun () ->
            Encode.build ~config:sig_.Signatures.config
              ~witnesses:sig_.Signatures.witnesses bundle)
      in
      let problem =
        Solve.
          {
            bounds = env.Encode.bounds;
            constraints = env.Encode.facts @ [ sig_.Signatures.formula env ];
          }
      in
      let session = Solve.prepare ?budget problem in
      (* Enumerate one minimal scenario per distinct witness valuation: the
         witnesses identify the victim elements, so further instances that
         only vary the synthesized payload are redundant for policy
         derivation. *)
      let witness_rels = List.map snd env.Encode.r_witnesses in
      let rec go acc k =
        if k >= limit then (List.rev acc, true, Complete)
        else
          match
            Trace.with_span "ase.scenario" (fun () ->
                match Solve.next ~minimal:true session with
                | Solve.Unsat -> None
                | Solve.Unknown -> Some (Error ())
                | Solve.Sat inst ->
                    Solve.block_on session witness_rels;
                    Metrics.incr c_scenarios;
                    Metrics.incr c_blocked;
                    Some (Ok (Signatures.decode sig_ env inst)))
          with
          | None -> (List.rev acc, false, Complete)
          | Some (Error ()) -> (List.rev acc, false, Budget_exhausted)
          | Some (Ok sc) -> go (sc :: acc) (k + 1)
      in
      let scenarios, truncated, outcome = go [] 0 in
      Trace.add_attr "scenarios" (Trace.Int (List.length scenarios));
      if truncated then Trace.add_attr "truncated" (Trace.Bool true);
      if outcome = Budget_exhausted then
        Trace.add_attr "outcome" (Trace.Str "budget_exhausted");
      {
        sr_scenarios = scenarios;
        sr_truncated = truncated;
        sr_outcome = outcome;
        sr_stats = Solve.stats session;
      })

let analyze ?(signatures = Signatures.all ())
    ?(limit_per_sig = Solve.default_enum_limit) ?(jobs = 1) ?budget
    (bundle : Bundle.t) : report =
  Trace.with_span "ase.analyze"
    ~attrs:[ Trace.attr_int "jobs" jobs ]
    (fun () ->
  (* Resolve passive-intent targets across the bundle first (Algorithm 1). *)
  let bundle =
    Trace.with_span "ase.resolve_targets" (fun () ->
        Bundle.update_passive_targets bundle)
  in
  (* One task per signature.  The pool runs them inline at [jobs <= 1]
     and in forked workers otherwise; either way results come back in
     signature order, so the merged report is identical across [-j N]. *)
  let results =
    Pool.run ~jobs
      (List.map
         (fun sig_ () -> run_signature ~limit:limit_per_sig ?budget bundle sig_)
         signatures)
  in
  let construction = ref 0.0 and solving = ref 0.0 in
  let vars = ref 0 and clauses = ref 0 in
  let solver_totals = ref Separ_sat.Solver.empty_stats in
  let degraded = ref [] in
  let truncated = ref [] in
  let vulnerabilities =
    List.concat
      (List.map2
         (fun sig_ result ->
           let name = sig_.Signatures.name in
           match result with
           | Pool.Failed msg ->
               Metrics.incr c_degraded;
               degraded :=
                 { d_kind = name; d_reason = "worker_crashed: " ^ msg }
                 :: !degraded;
               []
           | Pool.Done sr ->
               let stats = sr.sr_stats in
               construction := !construction +. stats.Solve.translation_ms;
               solving := !solving +. stats.Solve.solving_ms;
               vars := !vars + stats.Solve.n_vars;
               clauses := !clauses + stats.Solve.n_clauses;
               solver_totals :=
                 Separ_sat.Solver.sum_stats !solver_totals stats.Solve.solver;
               if sr.sr_outcome = Budget_exhausted then begin
                 Metrics.incr c_degraded;
                 degraded :=
                   { d_kind = name; d_reason = "budget_exhausted" }
                   :: !degraded
               end;
               if sr.sr_truncated then truncated := name :: !truncated;
               List.map
                 (fun sc ->
                   {
                     v_kind = name;
                     v_scenario = sc;
                     v_components = victim_components bundle sc;
                   })
                 sr.sr_scenarios)
         signatures results)
  in
  Trace.add_attr "vulnerabilities" (Trace.Int (List.length vulnerabilities));
  let degraded = List.rev !degraded in
  if degraded <> [] then
    Trace.add_attr "degraded" (Trace.Int (List.length degraded));
  {
    r_stats = Bundle.stats bundle;
    r_vulnerabilities = vulnerabilities;
    r_degraded = degraded;
    r_truncated = List.rev !truncated;
    r_construction_ms = !construction;
    r_solving_ms = !solving;
    r_vars = !vars;
    r_clauses = !clauses;
    r_solver = !solver_totals;
  })

(* Apps having at least one vulnerability of the given kind. *)
let vulnerable_apps report bundle kind =
  let apps_of_cmp name =
    List.filter_map
      (fun app ->
        if List.exists (fun c -> c.App_model.cm_name = name)
             app.App_model.am_components
        then Some app.App_model.am_package
        else None)
      (Bundle.apps bundle)
  in
  List.sort_uniq compare
    (List.concat_map
       (fun v ->
         if v.v_kind = kind then List.concat_map apps_of_cmp v.v_components
         else [])
       report.r_vulnerabilities)

let pp_report ppf r =
  let s = r.r_solver in
  Fmt.pf ppf
    "@[<v>bundle: %d apps, %d components, %d intents, %d filters@,\
     %d vulnerabilities (construction %.1f ms, solving %.1f ms)@,\
     solver: %d conflicts, %d propagations, %d restarts; learnt db: \
     peak %d, %d reductions, %d deleted, %d literals minimized@,%a@]"
    r.r_stats.Bundle.n_apps r.r_stats.Bundle.n_components
    r.r_stats.Bundle.n_intents r.r_stats.Bundle.n_intent_filters
    (List.length r.r_vulnerabilities)
    r.r_construction_ms r.r_solving_ms
    s.Separ_sat.Solver.s_conflicts s.Separ_sat.Solver.s_propagations
    s.Separ_sat.Solver.s_restarts s.Separ_sat.Solver.s_peak_learnts
    s.Separ_sat.Solver.s_db_reductions s.Separ_sat.Solver.s_learnts_deleted
    s.Separ_sat.Solver.s_lits_minimized
    Fmt.(
      list ~sep:cut (fun ppf v ->
          pf ppf "- [%s] %s (components: %a)" v.v_kind
            v.v_scenario.Scenario.sc_description
            (list ~sep:(any ", ") string)
            v.v_components))
    r.r_vulnerabilities;
  if r.r_degraded <> [] then
    Fmt.pf ppf "@.degraded: %a"
      Fmt.(
        list ~sep:(any ", ") (fun ppf d ->
            pf ppf "%s (%s)" d.d_kind d.d_reason))
      r.r_degraded;
  if r.r_truncated <> [] then
    Fmt.pf ppf "@.truncated: %a"
      Fmt.(list ~sep:(any ", ") string)
      r.r_truncated
