(** ASE: the Analysis and Synthesis Engine.  Builds the relational
    problem for each registered vulnerability signature over a bundle of
    extracted app models, asks the solver for minimal satisfying
    instances, and decodes each into an attack scenario.  Enumeration
    yields one scenario per distinct witness valuation.

    Signatures are independent, so {!analyze} can partition them across
    a fork-based worker pool ([jobs]); per-signature solve budgets and
    worker-crash isolation degrade a pathological signature to a
    recorded {!degraded} entry instead of hanging or aborting the
    analysis. *)

open Separ_ame
open Separ_specs

type vulnerability = {
  v_kind : string;                (** signature name *)
  v_scenario : Scenario.t;
  v_components : string list;     (** victim components involved *)
}

(** A signature whose analysis did not complete: its solve budget ran
    out, or its worker process died.  Scenarios found before the
    degradation are still reported. *)
type degraded = {
  d_kind : string;    (** signature name *)
  d_reason : string;  (** ["budget_exhausted"] or ["worker_crashed: ..."] *)
}

type sig_outcome = Complete | Budget_exhausted

(** Everything one signature's run produces (marshal-safe, so the worker
    pool can ship it across the process boundary). *)
type sig_result = {
  sr_scenarios : Scenario.t list;
  sr_truncated : bool;  (** enumeration cut off at the limit *)
  sr_outcome : sig_outcome;
  sr_stats : Separ_relog.Solve.stats;
}

(** What one signature cost on top of the state its solver already held:
    for an incremental delta session the numbers are genuine increments
    over the shared base; for a from-scratch session they cover the
    whole problem (and [sd_reused_*] are 0). *)
type sig_delta = {
  sd_kind : string;        (** signature name *)
  sd_vars : int;
  sd_clauses : int;
  sd_gates : int;
  sd_cache_hits : int;     (** translate expression-cache *)
  sd_cache_misses : int;
  sd_hc_hits : int;        (** circuit hash-cons *)
  sd_hc_misses : int;
  sd_reused_clauses : int; (** already in the solver at session start *)
  sd_reused_learnts : int; (** learnt clauses carried over *)
  sd_construction_ms : float;
  sd_solving_ms : float;
}

type report = {
  r_stats : Bundle.stats;
  r_vulnerabilities : vulnerability list;
  r_degraded : degraded list;  (** in signature order *)
  r_truncated : string list;
      (** signatures whose enumeration hit the per-signature limit *)
  r_construction_ms : float;  (** translation to CNF (Table II) *)
  r_solving_ms : float;       (** SAT search (Table II) *)
  r_vars : int;
  r_clauses : int;
  r_solver : Separ_sat.Solver.stats_record;
      (** CDCL counters (conflicts, learnt-db reductions, minimized
          literals, ...) aggregated over all signatures.  In incremental
          mode the aggregate is over the shared per-config solvers, not
          per-signature sums (which would double-count the base). *)
  r_incremental : bool;  (** whether the shared-solver path was used *)
  r_sig_deltas : sig_delta list;  (** per signature, in signature order *)
  r_cache : (string * int) list;
      (** persistent-cache counters (per-tier hits/misses, stores,
          evictions, corrupt entries), sorted by name; [[]] when no
          cache was used *)
}

(** The device components implicated in a scenario. *)
val victim_components : Bundle.t -> Scenario.t -> string list

(** Run one signature.  [limit] caps enumeration (default
    {!Separ_relog.Solve.default_enum_limit}); [budget] bounds the
    signature's whole solver session — on exhaustion the scenarios found
    so far are kept and the result is marked [Budget_exhausted]. *)
val run_signature :
  ?limit:int ->
  ?budget:Separ_sat.Solver.budget ->
  Bundle.t ->
  Signatures.t ->
  sig_result

(** Run all (or the given) signatures over the bundle, after resolving
    passive-intent targets (Algorithm 1).  [jobs] (default 1) sets the
    worker-pool width: above 1, work runs in forked worker processes,
    [jobs] at a time, and results — including worker trace spans and
    metrics — are merged back in signature order, so the report is
    identical across [jobs] values for deterministic signatures.
    [budget] applies per signature, not to the whole analysis.

    [incremental] (default [true]) shares one solver among the
    signatures of each encoding config within a worker's shard: the
    bundle encoding is translated once, each signature rides on an
    activation-literal delta session, and learnt clauses persist.
    Minimization is canonical, so {!strip_performance} of the report is
    byte-identical to the [~incremental:false] from-scratch path. *)
val analyze :
  ?signatures:Signatures.t list ->
  ?limit_per_sig:int ->
  ?jobs:int ->
  ?budget:Separ_sat.Solver.budget ->
  ?incremental:bool ->
  ?cache:Separ_cache.Store.t ->
  Bundle.t ->
  report

(** Analyze several independent bundles on one worker pool, sharding
    across {e bundles} first and signatures second.  With
    [shard_bundles] (the default) and [jobs > 1], each bundle becomes
    one pool task — one fork set, persistent across batched tasks,
    serves the whole run — and leftover parallelism
    ([jobs / #bundles], at least 1) becomes signature sharding inside
    each worker, so incremental ASE still shares one base encoding per
    config within every bundle.  Reports come back in bundle order and
    are byte-identical (stripped) to per-bundle [-j 1] runs; a worker
    death degrades only its in-flight bundles, each to a report with
    every signature marked [worker_crashed].  With
    [~shard_bundles:false] bundles are analyzed sequentially, each with
    signature-axis sharding at [jobs]. *)
val analyze_many :
  ?signatures:Signatures.t list ->
  ?limit_per_sig:int ->
  ?jobs:int ->
  ?budget:Separ_sat.Solver.budget ->
  ?incremental:bool ->
  ?cache:Separ_cache.Store.t ->
  ?shard_bundles:bool ->
  Bundle.t list ->
  report list

(** The ASE tier name in a {!Separ_cache.Store.t} ("ase"). *)
val ase_cache_tier : string

(** The persistent-cache key [analyze ?cache] uses for one signature
    over one bundle: a digest of the encoded problem projected onto the
    signature's relation support, plus the encode/verdict versions,
    encoding config, signature name and enumeration [limit].  Two
    bundles that agree on the signature's support relations share the
    key — so a change touching only relations a signature never reads
    leaves its verdict cached. *)
val signature_fingerprint : ?limit:int -> Bundle.t -> Signatures.t -> string

(** Zero out every field describing {e how} the analysis ran (timings,
    solver sizes and counters, per-signature deltas, the incremental
    flag), keeping only what it found — for comparing analysis results
    across execution strategies. *)
val strip_performance : report -> report

(** Packages having at least one vulnerability of the given kind. *)
val vulnerable_apps : report -> Bundle.t -> string -> string list

val pp_report : Format.formatter -> report -> unit
