(** ASE: the Analysis and Synthesis Engine.  Builds the relational
    problem for each registered vulnerability signature over a bundle of
    extracted app models, asks the solver for minimal satisfying
    instances, and decodes each into an attack scenario.  Enumeration
    yields one scenario per distinct witness valuation. *)

open Separ_ame
open Separ_specs

type vulnerability = {
  v_kind : string;                (** signature name *)
  v_scenario : Scenario.t;
  v_components : string list;     (** victim components involved *)
}

type report = {
  r_stats : Bundle.stats;
  r_vulnerabilities : vulnerability list;
  r_construction_ms : float;  (** translation to CNF (Table II) *)
  r_solving_ms : float;       (** SAT search (Table II) *)
  r_vars : int;
  r_clauses : int;
  r_solver : Separ_sat.Solver.stats_record;
      (** CDCL counters (conflicts, learnt-db reductions, minimized
          literals, ...) aggregated over all signatures *)
}

(** The device components implicated in a scenario. *)
val victim_components : Bundle.t -> Scenario.t -> string list

(** Run one signature; returns the decoded scenarios and solver stats. *)
val run_signature :
  ?limit:int ->
  Bundle.t ->
  Signatures.t ->
  Scenario.t list * Separ_relog.Solve.stats

(** Run all (or the given) signatures over the bundle, after resolving
    passive-intent targets (Algorithm 1). *)
val analyze :
  ?signatures:Signatures.t list -> ?limit_per_sig:int -> Bundle.t -> report

(** Packages having at least one vulnerability of the given kind. *)
val vulnerable_apps : report -> Bundle.t -> string -> string list

val pp_report : Format.formatter -> report -> unit
