(* Provenance stamped into benchmark artifacts: which code revision,
   which host, how many cores, when.  Timing numbers are meaningless
   for trend analysis without it — BENCH_parallel.json's "single-core
   host" caveat used to live only in prose — so every BENCH_*.json
   snapshot and every BENCH_HISTORY.ndjson entry carries one of
   these. *)

type t = {
  pv_git_commit : string option; (* None outside a git checkout *)
  pv_hostname : string;
  pv_cpu_cores : int;
  pv_timestamp : string; (* ISO 8601, UTC *)
}

(* First line of [git <args>], or [None] if git is unavailable, fails,
   or prints nothing (e.g. not a repository). *)
let git_line args =
  try
    let ic = Unix.open_process_in (Printf.sprintf "git %s 2>/dev/null" args) in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some l when l <> "" -> Some l
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let collect () =
  {
    pv_git_commit = git_line "rev-parse --short=12 HEAD";
    pv_hostname = (try Unix.gethostname () with Unix.Unix_error _ -> "unknown");
    pv_cpu_cores = Domain.recommended_domain_count ();
    pv_timestamp = iso8601 (Unix.time ());
  }

let json p =
  Json.Obj
    [
      ("git_commit", Json.of_option (fun s -> Json.Str s) p.pv_git_commit);
      ("hostname", Json.Str p.pv_hostname);
      ("cpu_cores", Json.Int p.pv_cpu_cores);
      ("timestamp", Json.Str p.pv_timestamp);
    ]
