(* A minimal JSON representation and printer (no external dependencies),
   used for machine-readable analysis reports. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf ~indent ~level t =
  let pad n = if indent then String.make (2 * n) ' ' else "" in
  let nl = if indent then "\n" else "" in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf ("[" ^ nl);
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ("," ^ nl);
          Buffer.add_string buf (pad (level + 1));
          write buf ~indent ~level:(level + 1) item)
        items;
      Buffer.add_string buf (nl ^ pad level ^ "]")
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf ("{" ^ nl);
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ("," ^ nl);
          Buffer.add_string buf (pad (level + 1));
          Buffer.add_string buf ("\"" ^ escape k ^ "\":");
          if indent then Buffer.add_char buf ' ';
          write buf ~indent ~level:(level + 1) v)
        fields;
      Buffer.add_string buf (nl ^ pad level ^ "}")

let to_string ?(indent = true) t =
  let buf = Buffer.create 1024 in
  write buf ~indent ~level:0 t;
  Buffer.contents buf

let of_option f = function None -> Null | Some x -> f x
let strs xs = List (List.map (fun s -> Str s) xs)
