(* A minimal JSON representation and printer (no external dependencies),
   used for machine-readable analysis reports. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf ~indent ~level t =
  let pad n = if indent then String.make (2 * n) ' ' else "" in
  let nl = if indent then "\n" else "" in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else
        (* Shortest representation that round-trips: "%g" only keeps 6
           significant digits, which corrupts microsecond-scale span
           durations and overhead percentages; fall back to "%.17g"
           (always exact for IEEE doubles) when "%g" loses precision. *)
        let s = Printf.sprintf "%g" f in
        if float_of_string s = f then Buffer.add_string buf s
        else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf ("[" ^ nl);
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ("," ^ nl);
          Buffer.add_string buf (pad (level + 1));
          write buf ~indent ~level:(level + 1) item)
        items;
      Buffer.add_string buf (nl ^ pad level ^ "]")
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf ("{" ^ nl);
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ("," ^ nl);
          Buffer.add_string buf (pad (level + 1));
          Buffer.add_string buf ("\"" ^ escape k ^ "\":");
          if indent then Buffer.add_char buf ' ';
          write buf ~indent ~level:(level + 1) v)
        fields;
      Buffer.add_string buf (nl ^ pad level ^ "}")

let to_string ?(indent = true) t =
  let buf = Buffer.create 1024 in
  write buf ~indent ~level:0 t;
  Buffer.contents buf

let of_option f = function None -> Null | Some x -> f x
let strs xs = List (List.map (fun s -> Str s) xs)

(* --- a minimal reader ------------------------------------------------------

   Recursive-descent parser for the subset of JSON this module emits
   (which is plain RFC 8259 minus unicode escapes beyond \uXXXX for
   control characters).  Used by the telemetry tests and the
   [telemetry-smoke] gate to validate exported trace files. *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some ('"' | '\\' | '/') ->
              Buffer.add_char buf s.[!pos];
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* emitted only for control characters, so one byte *)
              Buffer.add_char buf (Char.chr (code land 0xff));
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let lexeme = String.sub s start (!pos - start) in
    if lexeme = "" then fail "expected number";
    match int_of_string_opt lexeme with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lexeme with
        | Some f -> Float f
        | None -> fail ("bad number " ^ lexeme))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* Object-field access helpers for consumers of [parse]. *)
let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None
let to_str = function Str s -> Some s | _ -> None
