(* Shared descriptive statistics for the benchmark harnesses (Fig. 5
   latency tables, RQ4 overhead tables).  One implementation so every
   table reports the same estimator. *)

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Population standard deviation (divides by n): the spread of the data
   itself.  Not the right estimator for confidence intervals over a
   sample — use [sample_stddev] there. *)
let stddev xs =
  let m = mean xs in
  sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) xs))

(* Sample standard deviation (Bessel's correction, divides by n-1): the
   unbiased estimator of the underlying variance, as required by a
   Student-t confidence interval. *)
let sample_stddev xs =
  let n = List.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))

(* Two-sided 95% critical values of Student's t distribution, indexed by
   degrees of freedom.  Between tabulated rows we take the value of the
   nearest tabulated df *below* the requested one — t decreases in df,
   so this rounds the interval conservatively wide.  The z value 1.96 is
   only correct in the df -> infinity limit; for the paper's 33-rep RQ4
   measurement the right multiplier is t(32) ~ 2.04. *)
let t_table_95 =
  [|
    (* df = 1 .. 30 *)
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t_critical_95 ~df =
  if df < 1 then invalid_arg "Stats.t_critical_95: df < 1"
  else if df <= 30 then t_table_95.(df - 1)
  else if df <= 40 then 2.042
  else if df <= 60 then 2.021
  else if df <= 120 then 2.000
  else 1.980 (* -> 1.960 as df -> infinity; 120+ rounded wide *)

(* Half-width of the two-sided 95% confidence interval of the mean of
   [xs]: t(n-1) * s / sqrt n with the sample (n-1) standard deviation. *)
let ci95_halfwidth xs =
  let n = List.length xs in
  if n < 2 then 0.0
  else
    t_critical_95 ~df:(n - 1)
    *. sample_stddev xs
    /. sqrt (float_of_int n)

(* Nearest-rank percentile: the smallest sample x such that at least
   [p * n] samples are <= x, i.e. index [ceil (p * n) - 1] of the sorted
   data.  (Truncating [p * n] instead — the old implementation — selects
   one rank too low whenever [p * n] is not integral, under-reporting
   p95/p99.) *)
let percentile p xs =
  let arr = Array.of_list (List.sort compare xs) in
  let n = Array.length arr in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    arr.(max 0 (min (n - 1) rank))
