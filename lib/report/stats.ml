(* Shared descriptive statistics for the benchmark harnesses (Fig. 5
   latency tables, RQ4 overhead tables).  One implementation so every
   table reports the same estimator. *)

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  let m = mean xs in
  sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) xs))

(* Nearest-rank percentile: the smallest sample x such that at least
   [p * n] samples are <= x, i.e. index [ceil (p * n) - 1] of the sorted
   data.  (Truncating [p * n] instead — the old implementation — selects
   one rank too low whenever [p * n] is not integral, under-reporting
   p95/p99.) *)
let percentile p xs =
  let arr = Array.of_list (List.sort compare xs) in
  let n = Array.length arr in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    arr.(max 0 (min (n - 1) rank))
