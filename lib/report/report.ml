(* Machine-readable reports of analysis results: bundle statistics,
   vulnerabilities with their scenarios, and the synthesized policies,
   as JSON.  Consumed by the CLI's [--format json]. *)

open Separ_android
open Separ_ame
open Separ_specs
module Policy = Separ_policy.Policy
module Ase = Separ_ase.Ase

let of_mal_intent (mi : Scenario.mal_intent) =
  Json.Obj
    [
      ("target", Json.of_option (fun s -> Json.Str s) mi.Scenario.mi_target);
      ("action", Json.of_option (fun s -> Json.Str s) mi.Scenario.mi_action);
      ("categories", Json.strs mi.Scenario.mi_categories);
      ("data_type", Json.of_option (fun s -> Json.Str s) mi.Scenario.mi_data_type);
      ( "data_scheme",
        Json.of_option (fun s -> Json.Str s) mi.Scenario.mi_data_scheme );
      ("data_host", Json.of_option (fun s -> Json.Str s) mi.Scenario.mi_data_host);
      ("extras", Json.strs (List.map Resource.to_string mi.Scenario.mi_extras));
      ( "delivery",
        Json.Str (Component.kind_to_string mi.Scenario.mi_delivery) );
    ]

let of_mal_filter (mf : Scenario.mal_filter) =
  Json.Obj
    [
      ("actions", Json.strs mf.Scenario.mf_actions);
      ("categories", Json.strs mf.Scenario.mf_categories);
      ("data_types", Json.strs mf.Scenario.mf_data_types);
      ("data_schemes", Json.strs mf.Scenario.mf_data_schemes);
      ("data_hosts", Json.strs mf.Scenario.mf_data_hosts);
    ]

let of_scenario (sc : Scenario.t) =
  Json.Obj
    [
      ("kind", Json.Str sc.Scenario.sc_kind);
      ( "witnesses",
        Json.Obj
          (List.map
             (fun (name, atoms) -> (name, Json.strs atoms))
             sc.Scenario.sc_witnesses) );
      ( "malicious_intent",
        Json.of_option of_mal_intent sc.Scenario.sc_mal_intent );
      ( "malicious_filter",
        Json.of_option of_mal_filter sc.Scenario.sc_mal_filter );
      ("description", Json.Str sc.Scenario.sc_description);
    ]

let of_condition c = Json.Str (Policy.condition_to_string c)

let of_policy (p : Policy.t) =
  Json.Obj
    [
      ("id", Json.Str p.Policy.p_id);
      ("event", Json.Str (Policy.event_to_string p.Policy.p_event));
      ("conditions", Json.List (List.map of_condition p.Policy.p_conditions));
      ("action", Json.Str (Policy.action_to_string p.Policy.p_action));
      ("reason", Json.Str p.Policy.p_reason);
    ]

let of_vulnerability (v : Ase.vulnerability) =
  Json.Obj
    [
      ("kind", Json.Str v.Ase.v_kind);
      ("components", Json.strs v.Ase.v_components);
      ("scenario", of_scenario v.Ase.v_scenario);
    ]

(* CDCL solver counters, shared between the analysis report and the
   solver benchmark (BENCH_solver.json). *)
let of_solver_stats (s : Separ_sat.Solver.stats_record) =
  let open Separ_sat.Solver in
  Json.Obj
    [
      ("variables", Json.Int s.s_vars);
      ("clauses", Json.Int s.s_clauses);
      ("learnts", Json.Int s.s_learnts);
      ("peak_learnts", Json.Int s.s_peak_learnts);
      ("conflicts", Json.Int s.s_conflicts);
      ("decisions", Json.Int s.s_decisions);
      ("propagations", Json.Int s.s_propagations);
      ("restarts", Json.Int s.s_restarts);
      ("db_reductions", Json.Int s.s_db_reductions);
      ("learnts_deleted", Json.Int s.s_learnts_deleted);
      ("literals_minimized", Json.Int s.s_lits_minimized);
      ("activation_vars_live", Json.Int s.s_act_live);
      ("activation_vars_retired", Json.Int s.s_act_retired);
    ]

(* What one signature's session cost on top of the state its solver
   already held — per-signature rows plus the aggregated sharing
   counters of the incremental (shared-encoding) ASE path. *)
let of_sig_delta (d : Ase.sig_delta) =
  Json.Obj
    [
      ("kind", Json.Str d.Ase.sd_kind);
      ("vars", Json.Int d.Ase.sd_vars);
      ("clauses", Json.Int d.Ase.sd_clauses);
      ("gates", Json.Int d.Ase.sd_gates);
      ("translate_cache_hits", Json.Int d.Ase.sd_cache_hits);
      ("translate_cache_misses", Json.Int d.Ase.sd_cache_misses);
      ("hashcons_hits", Json.Int d.Ase.sd_hc_hits);
      ("hashcons_misses", Json.Int d.Ase.sd_hc_misses);
      ("reused_clauses", Json.Int d.Ase.sd_reused_clauses);
      ("reused_learnts", Json.Int d.Ase.sd_reused_learnts);
      ("construction_ms", Json.Float d.Ase.sd_construction_ms);
      ("solving_ms", Json.Float d.Ase.sd_solving_ms);
    ]

let of_incremental (report : Ase.report) =
  let sum f =
    List.fold_left (fun acc d -> acc + f d) 0 report.Ase.r_sig_deltas
  in
  Json.Obj
    [
      ("enabled", Json.Bool report.Ase.r_incremental);
      ( "translate_cache_hits",
        Json.Int (sum (fun d -> d.Ase.sd_cache_hits)) );
      ( "translate_cache_misses",
        Json.Int (sum (fun d -> d.Ase.sd_cache_misses)) );
      ("hashcons_hits", Json.Int (sum (fun d -> d.Ase.sd_hc_hits)));
      ("hashcons_misses", Json.Int (sum (fun d -> d.Ase.sd_hc_misses)));
      ("reused_clauses", Json.Int (sum (fun d -> d.Ase.sd_reused_clauses)));
      ("reused_learnts", Json.Int (sum (fun d -> d.Ase.sd_reused_learnts)));
      ( "per_signature",
        Json.List (List.map of_sig_delta report.Ase.r_sig_deltas) );
    ]

(* Persistent-cache counters (per-tier hits/misses, stores, evictions,
   corrupt entries).  [Ase.r_cache] is already sorted by name — JSON key
   order here is deterministic by construction. *)
let of_cache (report : Ase.report) =
  Json.Obj
    (("enabled", Json.Bool (report.Ase.r_cache <> []))
    :: List.map (fun (k, v) -> (k, Json.Int v)) report.Ase.r_cache)

let of_stats (s : Bundle.stats) =
  Json.Obj
    [
      ("apps", Json.Int s.Bundle.n_apps);
      ("components", Json.Int s.Bundle.n_components);
      ("intents", Json.Int s.Bundle.n_intents);
      ("intent_filters", Json.Int s.Bundle.n_intent_filters);
      ("paths", Json.Int s.Bundle.n_paths);
    ]

(* The complete analysis report.  When telemetry was enabled for the
   run, [?telemetry] merges the span tree (per-phase durations) and the
   metrics registry into the report. *)
let of_analysis ?telemetry ~(report : Ase.report) ~(policies : Policy.t list) ()
    =
  Json.Obj
    ([
       ("bundle", of_stats report.Ase.r_stats);
       ( "timing_ms",
         Json.Obj
           [
             ("construction", Json.Float report.Ase.r_construction_ms);
             ("solving", Json.Float report.Ase.r_solving_ms);
           ] );
       ("solver", of_solver_stats report.Ase.r_solver);
       ("incremental", of_incremental report);
       ("cache", of_cache report);
       ( "vulnerabilities",
         Json.List (List.map of_vulnerability report.Ase.r_vulnerabilities) );
       ( "degraded",
         Json.List
           (List.map
              (fun (d : Ase.degraded) ->
                Json.Obj
                  [
                    ("kind", Json.Str d.Ase.d_kind);
                    ("reason", Json.Str d.Ase.d_reason);
                  ])
              report.Ase.r_degraded) );
       ("truncated_signatures", Json.strs report.Ase.r_truncated);
       ("policies", Json.List (List.map of_policy policies));
     ]
    @
    match telemetry with
    | Some t -> [ ("telemetry", t) ]
    | None -> [])

let to_string ?(indent = true) ?telemetry ~report ~policies () =
  Json.to_string ~indent (of_analysis ?telemetry ~report ~policies ())
