(* The bench-trajectory store and regression gate.

   Every benchmark section appends one NDJSON line per run to
   BENCH_HISTORY.ndjson — section name, run mode ("full" or "smoke", so
   a 2-iteration smoke run never compares against a full run), headline
   wall time, provenance, and optional extra fields — instead of only
   overwriting the BENCH_*.json snapshot.  [diff] is the [separ
   benchdiff] gate over that file: per (section, mode) group, the
   latest entry is compared against the median of up to [k] prior
   entries; exceeding the threshold is a regression.

   The median (not the previous single run) is the baseline so one
   noisy historical run cannot mask — or fake — a regression; the
   threshold defaults to 25% because the store mixes runs from
   different hosts (the provenance says which) and wall clocks on
   shared CI machines jitter well above lab-grade noise. *)

type entry = {
  e_section : string;
  e_mode : string; (* "full" | "smoke" — never cross-compared *)
  e_wall_ms : float;
  e_provenance : Json.t;
  e_extra : (string * Json.t) list; (* section-specific detail fields *)
}

let to_json e =
  Json.Obj
    ([
       ("section", Json.Str e.e_section);
       ("mode", Json.Str e.e_mode);
       ("wall_ms", Json.Float e.e_wall_ms);
       ("provenance", e.e_provenance);
     ]
    @ if e.e_extra = [] then [] else [ ("extra", Json.Obj e.e_extra) ])

let of_json j =
  match (Json.member "section" j, Json.member "wall_ms" j) with
  | Some (Json.Str section), Some wall ->
      let wall_ms =
        match wall with
        | Json.Float f -> f
        | Json.Int i -> float_of_int i
        | _ -> nan
      in
      if Float.is_nan wall_ms then None
      else
        Some
          {
            e_section = section;
            e_mode =
              (match Json.member "mode" j with
              | Some (Json.Str m) -> m
              | _ -> "full");
            e_wall_ms = wall_ms;
            e_provenance =
              (match Json.member "provenance" j with
              | Some p -> p
              | None -> Json.Null);
            e_extra =
              (match Json.member "extra" j with
              | Some (Json.Obj fields) -> fields
              | _ -> []);
          }
  | _ -> None

let append ~path e =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path in
  output_string oc (Json.to_string ~indent:false (to_json e));
  output_char oc '\n';
  close_out oc

(* Entries in file order, plus the number of malformed lines skipped
   (a history file survives partial writes and format drift; it should
   degrade to fewer baseline samples, not refuse to load). *)
let load ~path =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let ic = open_in path in
    let entries = ref [] and malformed = ref 0 in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" then
           match Json.parse line with
           | j -> (
               match of_json j with
               | Some e -> entries := e :: !entries
               | None -> incr malformed)
           | exception Json.Parse_error _ -> incr malformed
       done
     with End_of_file -> ());
    close_in ic;
    (List.rev !entries, !malformed)
  end

(* --- the regression gate --------------------------------------------------- *)

let default_k = 5
let default_threshold_pct = 25.0

type status = Ok | Regression | No_baseline

type section_diff = {
  sd_section : string;
  sd_mode : string;
  sd_latest_ms : float;
  sd_baseline_ms : float; (* 0.0 under [No_baseline] *)
  sd_samples : int; (* prior runs the baseline is the median of *)
  sd_delta_pct : float; (* (latest - baseline) / baseline * 100 *)
  sd_status : status;
}

(* First [n] elements of [xs], in order. *)
let first_n n xs =
  let rec go i = function
    | x :: rest when i < n -> x :: go (i + 1) rest
    | _ -> []
  in
  go 0 xs

(* One pass over the history: group entries by (section, mode) into a
   hash table of newest-first lists, keeping the keys in first-seen
   order.  The file grows by one line per section per run forever, so
   this must stay linear — the obvious List.mem / per-key re-filter
   formulation is O(n²) and was measurably slow on a few thousand
   lines. *)
let group_entries entries =
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      let key = (e.e_section, e.e_mode) in
      match Hashtbl.find_opt groups key with
      | Some es -> Hashtbl.replace groups key (e :: es)
      | None ->
          Hashtbl.add groups key [ e ];
          order := key :: !order)
    entries;
  List.rev_map (fun key -> (key, Hashtbl.find groups key)) !order

let diff ?(k = default_k) ?(threshold_pct = default_threshold_pct) entries =
  List.map
    (fun ((section, mode), newest_first) ->
      (* [newest_first] is non-empty by construction: head is the latest
         entry, the next [k] are the baseline pool (the k most recent
         prior runs; the median does not care that they arrive newest
         first). *)
      let latest = List.hd newest_first in
      match first_n k (List.tl newest_first) with
      | [] ->
          {
            sd_section = section;
            sd_mode = mode;
            sd_latest_ms = latest.e_wall_ms;
            sd_baseline_ms = 0.0;
            sd_samples = 0;
            sd_delta_pct = 0.0;
            sd_status = No_baseline;
          }
      | pool ->
          let baseline =
            Stats.percentile 0.5 (List.map (fun e -> e.e_wall_ms) pool)
          in
          let delta_pct =
            if baseline > 0.0 then
              (latest.e_wall_ms -. baseline) /. baseline *. 100.0
            else 0.0
          in
          {
            sd_section = section;
            sd_mode = mode;
            sd_latest_ms = latest.e_wall_ms;
            sd_baseline_ms = baseline;
            sd_samples = List.length pool;
            sd_delta_pct = delta_pct;
            sd_status =
              (if delta_pct > threshold_pct then Regression else Ok);
          })
    (group_entries entries)
