(* Export of the [Separ_obs] telemetry state.

   Three consumers:
   - [trace_json] / [write_trace]: the Chrome trace-event format
     (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
     loadable in chrome://tracing and Perfetto.  Spans are emitted as
     "X" (complete) events with microsecond timestamps, so parent/child
     nesting is encoded by interval containment.
   - [spans_json]: the span tree as nested JSON, merged into
     BENCH_*.json files for per-phase breakdowns.
   - [metrics_json]: the registry contents (counters, gauges,
     histograms), merged into the analysis report under [--metrics]. *)

module Trace = Separ_obs.Trace
module Metrics = Separ_obs.Metrics

let of_value = function
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f
  | Trace.Str s -> Json.Str s
  | Trace.Bool b -> Json.Bool b

let of_attrs attrs = Json.Obj (List.map (fun (k, v) -> (k, of_value v)) attrs)

(* The span's category: the subsystem prefix of its name ("relog" for
   "relog.translate"), which chrome://tracing uses for colouring. *)
let category name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let rec trace_events_of_span acc (sp : Trace.span) =
  let event =
    Json.Obj
      [
        ("name", Json.Str sp.Trace.sp_name);
        ("cat", Json.Str (category sp.Trace.sp_name));
        ("ph", Json.Str "X");
        ("ts", Json.Float sp.Trace.sp_start_us);
        ("dur", Json.Float sp.Trace.sp_dur_us);
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ("args", of_attrs sp.Trace.sp_attrs);
      ]
  in
  List.fold_left trace_events_of_span (event :: acc) sp.Trace.sp_children

let trace_json () =
  let events =
    List.rev (List.fold_left trace_events_of_span [] (Trace.roots ()))
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_trace path =
  let oc = open_out path in
  output_string oc (Json.to_string (trace_json ()));
  output_string oc "\n";
  close_out oc

let rec span_json (sp : Trace.span) =
  Json.Obj
    (("name", Json.Str sp.Trace.sp_name)
     :: ("start_us", Json.Float sp.Trace.sp_start_us)
     :: ("dur_ms", Json.Float (sp.Trace.sp_dur_us /. 1000.0))
     :: (if sp.Trace.sp_attrs = [] then []
         else [ ("attrs", of_attrs sp.Trace.sp_attrs) ])
    @
    if sp.Trace.sp_children = [] then []
    else [ ("children", Json.List (List.map span_json sp.Trace.sp_children)) ])

let spans_json () = Json.List (List.map span_json (Trace.roots ()))

let histogram_json h =
  Json.Obj
    [
      ( "buckets",
        Json.List
          (List.map
             (fun (le, count) ->
               Json.Obj
                 [
                   ( "le",
                     if le = infinity then Json.Str "inf" else Json.Float le );
                   ("count", Json.Int count);
                 ])
             (Metrics.histogram_buckets h)) );
      ("count", Json.Int (Metrics.histogram_count h));
      ("sum", Json.Float (Metrics.histogram_sum h));
      ("mean", Json.Float (Metrics.histogram_mean h));
    ]

let metrics_json () =
  let counters, gauges, histograms =
    List.fold_left
      (fun (cs, gs, hs) m ->
        match m with
        | Metrics.Counter c ->
            ((c.Metrics.c_name, Json.Int (Metrics.counter_value c)) :: cs, gs, hs)
        | Metrics.Gauge g ->
            (cs, (g.Metrics.g_name, Json.Float (Metrics.gauge_value g)) :: gs, hs)
        | Metrics.Histogram h ->
            (cs, gs, (h.Metrics.h_name, histogram_json h) :: hs))
      ([], [], [])
      (List.rev (Metrics.all ()))
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]

(* Everything at once: the shape merged into analysis reports and
   BENCH_*.json files. *)
let telemetry_json () =
  Json.Obj [ ("phases", spans_json ()); ("metrics", metrics_json ()) ]
