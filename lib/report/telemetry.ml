(* Export of the [Separ_obs] telemetry state.

   Three consumers:
   - [trace_json] / [write_trace]: the Chrome trace-event format
     (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
     loadable in chrome://tracing and Perfetto.  Spans are emitted as
     "X" (complete) events with microsecond timestamps, so parent/child
     nesting is encoded by interval containment.
   - [spans_json]: the span tree as nested JSON, merged into
     BENCH_*.json files for per-phase breakdowns.
   - [metrics_json]: the registry contents (counters, gauges,
     histograms), merged into the analysis report under [--metrics]. *)

module Trace = Separ_obs.Trace
module Metrics = Separ_obs.Metrics

let of_value = function
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f
  | Trace.Str s -> Json.Str s
  | Trace.Bool b -> Json.Bool b

let of_attrs attrs = Json.Obj (List.map (fun (k, v) -> (k, of_value v)) attrs)

(* The span's category: the subsystem prefix of its name ("relog" for
   "relog.translate"), which chrome://tracing uses for colouring. *)
let category name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let rec trace_events_of_span acc (sp : Trace.span) =
  let event =
    Json.Obj
      [
        ("name", Json.Str sp.Trace.sp_name);
        ("cat", Json.Str (category sp.Trace.sp_name));
        ("ph", Json.Str "X");
        ("ts", Json.Float sp.Trace.sp_start_us);
        ("dur", Json.Float sp.Trace.sp_dur_us);
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ("args", of_attrs sp.Trace.sp_attrs);
      ]
  in
  List.fold_left trace_events_of_span (event :: acc) sp.Trace.sp_children

let trace_json () =
  let events =
    List.rev (List.fold_left trace_events_of_span [] (Trace.roots ()))
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_trace path =
  let oc = open_out path in
  output_string oc (Json.to_string (trace_json ()));
  output_string oc "\n";
  close_out oc

let rec span_json (sp : Trace.span) =
  Json.Obj
    (("name", Json.Str sp.Trace.sp_name)
     :: ("start_us", Json.Float sp.Trace.sp_start_us)
     :: ("dur_ms", Json.Float (sp.Trace.sp_dur_us /. 1000.0))
     :: (if sp.Trace.sp_attrs = [] then []
         else [ ("attrs", of_attrs sp.Trace.sp_attrs) ])
    @
    if sp.Trace.sp_children = [] then []
    else [ ("children", Json.List (List.map span_json sp.Trace.sp_children)) ])

let spans_json () = Json.List (List.map span_json (Trace.roots ()))

let histogram_json h =
  Json.Obj
    [
      ( "buckets",
        Json.List
          (List.map
             (fun (le, count) ->
               Json.Obj
                 [
                   ( "le",
                     if le = infinity then Json.Str "inf" else Json.Float le );
                   ("count", Json.Int count);
                 ])
             (Metrics.histogram_buckets h)) );
      ("count", Json.Int (Metrics.histogram_count h));
      ("sum", Json.Float (Metrics.histogram_sum h));
      ("mean", Json.Float (Metrics.histogram_mean h));
    ]

let metrics_json () =
  let counters, gauges, histograms =
    List.fold_left
      (fun (cs, gs, hs) m ->
        match m with
        | Metrics.Counter c ->
            ((c.Metrics.c_name, Json.Int (Metrics.counter_value c)) :: cs, gs, hs)
        | Metrics.Gauge g ->
            (cs, (g.Metrics.g_name, Json.Float (Metrics.gauge_value g)) :: gs, hs)
        | Metrics.Histogram h ->
            (cs, gs, (h.Metrics.h_name, histogram_json h) :: hs))
      ([], [], [])
      (List.rev (Metrics.all ()))
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]

(* Everything at once: the shape merged into analysis reports and
   BENCH_*.json files. *)
let telemetry_json () =
  Json.Obj [ ("phases", spans_json ()); ("metrics", metrics_json ()) ]

(* --- OpenMetrics / Prometheus text export ---------------------------------

   The registry rendered in the OpenMetrics text format
   (https://prometheus.io/docs/specs/om/open_metrics_spec/), so a
   future [separ serve] can expose the same bytes on /metrics verbatim.

   Naming: [subsystem.metric_name] becomes [separ_subsystem_metric_name]
   (a "separ_" namespace prefix, every non-[a-zA-Z0-9_] character
   mapped to '_').  Counters get the conventional [_total] suffix.
   Histogram buckets are CUMULATIVE in this format — each [le="x"]
   sample counts every observation <= x, the [le="+Inf"] bucket equals
   [_count] — whereas [Metrics.histogram_buckets] is per-bucket, so the
   exporter folds a running sum. *)

let om_name name =
  let b = Bytes.of_string ("separ_" ^ name) in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  Bytes.to_string b

(* Prometheus-style float rendering; bucket bounds and sums share it so
   the [le] labels are stable strings. *)
let om_float f =
  if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let openmetrics_string () =
  let buf = Buffer.create 4096 in
  let meta name typ =
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s SEPAR metric %s\n# TYPE %s %s\n" name typ
         name typ)
  in
  List.iter
    (fun m ->
      match m with
      | Metrics.Counter c ->
          let n = om_name c.Metrics.c_name in
          meta n "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s_total %d\n" n (Metrics.counter_value c))
      | Metrics.Gauge g ->
          let n = om_name g.Metrics.g_name in
          meta n "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" n (om_float (Metrics.gauge_value g)))
      | Metrics.Histogram h ->
          let n = om_name h.Metrics.h_name in
          meta n "histogram";
          let cumulative = ref 0 in
          List.iter
            (fun (le, count) ->
              cumulative := !cumulative + count;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (om_float le)
                   !cumulative))
            (Metrics.histogram_buckets h);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" n
               (om_float (Metrics.histogram_sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" n (Metrics.histogram_count h)))
    (Metrics.all ());
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let write_openmetrics path =
  let oc = open_out path in
  output_string oc (openmetrics_string ());
  close_out oc

(* Well-formedness check over the exporter's output (used by the
   [--obs-smoke] gate and the CLI after [--metrics-out]): every
   histogram family must have at least one bucket, ascending [le]
   labels, non-decreasing cumulative counts, a final [le="+Inf"] bucket
   equal to its [_count] sample, and a [_sum] sample; the exposition
   must end with [# EOF]. *)
let openmetrics_check text =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' text) in
  let* () =
    match List.rev lines with
    | "# EOF" :: _ -> Ok ()
    | _ -> Error "missing # EOF terminator"
  in
  (* family name -> declared type *)
  let types = Hashtbl.create 32 in
  (* histogram family -> (le string, value) list (reversed), sum?, count? *)
  let hists : (string, (string * float) list ref * float option ref * float option ref)
      Hashtbl.t =
    Hashtbl.create 32
  in
  let hist_of family =
    match Hashtbl.find_opt hists family with
    | Some h -> h
    | None ->
        let h = (ref [], ref None, ref None) in
        Hashtbl.replace hists family h;
        h
  in
  let strip_suffix s suffix =
    let n = String.length s and m = String.length suffix in
    if n >= m && String.sub s (n - m) m = suffix then
      Some (String.sub s 0 (n - m))
    else None
  in
  let parse_sample line =
    (* name[{labels}] value *)
    match String.index_opt line ' ' with
    | None -> Error (Printf.sprintf "sample without value: %S" line)
    | Some i -> (
        let name_part = String.sub line 0 i in
        let value_part = String.sub line (i + 1) (String.length line - i - 1) in
        match float_of_string_opt (String.trim value_part) with
        | None -> Error (Printf.sprintf "unparseable sample value: %S" line)
        | Some v -> (
            match String.index_opt name_part '{' with
            | None -> Ok (name_part, None, v)
            | Some j ->
                let name = String.sub name_part 0 j in
                let labels =
                  String.sub name_part (j + 1) (String.length name_part - j - 2)
                in
                Ok (name, Some labels, v)))
  in
  let le_of_labels labels =
    let prefix = "le=\"" in
    let n = String.length prefix in
    if
      String.length labels > n + 1
      && String.sub labels 0 n = prefix
      && labels.[String.length labels - 1] = '"'
    then Some (String.sub labels n (String.length labels - n - 1))
    else None
  in
  let* () =
    List.fold_left
      (fun acc line ->
        let* () = acc in
        if String.length line > 0 && line.[0] = '#' then begin
          (match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: name :: typ :: _ -> Hashtbl.replace types name typ
          | _ -> ());
          Ok ()
        end
        else
          let* name, labels, v = parse_sample line in
          match strip_suffix name "_bucket" with
          | Some family when Hashtbl.find_opt types family = Some "histogram"
            -> (
              let buckets, _, _ = hist_of family in
              match labels with
              | Some l -> (
                  match le_of_labels l with
                  | Some le ->
                      buckets := (le, v) :: !buckets;
                      Ok ()
                  | None ->
                      Error
                        (Printf.sprintf "%s_bucket sample without le label"
                           family))
              | None ->
                  Error
                    (Printf.sprintf "%s_bucket sample without labels" family))
          | _ -> (
              match strip_suffix name "_sum" with
              | Some family when Hashtbl.find_opt types family = Some "histogram"
                ->
                  let _, sum, _ = hist_of family in
                  sum := Some v;
                  Ok ()
              | _ -> (
                  match strip_suffix name "_count" with
                  | Some family
                    when Hashtbl.find_opt types family = Some "histogram" ->
                      let _, _, count = hist_of family in
                      count := Some v;
                      Ok ()
                  | _ -> Ok ())))
      (Ok ()) lines
  in
  let le_value = function
    | "+Inf" -> Ok infinity
    | s -> (
        match float_of_string_opt s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "unparseable le label %S" s))
  in
  Hashtbl.fold
    (fun family (buckets, sum, count) acc ->
      let* () = acc in
      let buckets = List.rev !buckets in
      let* () =
        if buckets = [] then
          Error (Printf.sprintf "histogram %s has no buckets" family)
        else Ok ()
      in
      let* _ =
        List.fold_left
          (fun acc (le, v) ->
            let* prev_le, prev_v = acc in
            let* le = le_value le in
            if le <= prev_le then
              Error (Printf.sprintf "histogram %s: le labels not ascending"
                       family)
            else if v < prev_v then
              Error
                (Printf.sprintf "histogram %s: bucket counts not cumulative"
                   family)
            else Ok (le, v))
          (Ok (neg_infinity, 0.0))
          buckets
      in
      let last_le, last_v = List.nth buckets (List.length buckets - 1) in
      let* () =
        if last_le <> "+Inf" then
          Error (Printf.sprintf "histogram %s: missing le=\"+Inf\" bucket"
                   family)
        else Ok ()
      in
      let* () =
        match !count with
        | None -> Error (Printf.sprintf "histogram %s: missing _count" family)
        | Some c when c <> last_v ->
            Error
              (Printf.sprintf "histogram %s: +Inf bucket (%g) <> _count (%g)"
                 family last_v c)
        | Some _ -> Ok ()
      in
      match !sum with
      | None -> Error (Printf.sprintf "histogram %s: missing _sum" family)
      | Some _ -> Ok ())
    hists (Ok ())
