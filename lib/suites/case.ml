(* One benchmark case: a set of apps with known ground-truth leaks, plus
   a runtime driver that actually exercises the leak on the simulated
   device (used by tests to validate the ground truth end-to-end). *)

open Separ_android
open Separ_dalvik
module B = Builder
module Finding = Separ_baselines.Finding

type t = {
  name : string;
  group : string; (* "DroidBench" or "ICC-Bench" *)
  apks : Apk.t list;
  truth : Finding.t list;
  run : Separ_runtime.Device.t -> unit; (* drive the scenario *)
}

(* --- building blocks ----------------------------------------------------- *)

(* A component that reads extra [keys] from its incoming intent and
   writes them to the log (the canonical DroidBench sink). *)
let leaker ~name ~kind ~entry ?exported ?(filters = []) ?(keys = [ "secret" ])
    () =
  let m =
    B.meth ~name:entry ~params:1 (fun b ->
        List.iter
          (fun key ->
            let v = B.get_string_extra b 0 ~key in
            B.write_log b ~payload:v)
          keys)
  in
  ( Component.make ~name ~kind ?exported ~intent_filters:filters (),
    B.cls ~name [ m ] )

(* A component that reads [resources], stores them as extras and sends
   one intent configured by [setup].  [via] performs the ICC call. *)
let sender ~name ~kind ~entry ~resources ~setup ~via () =
  let m =
    B.meth ~name:entry ~params:1 (fun b ->
        let i = B.new_intent b in
        setup b i;
        List.iteri
          (fun idx r ->
            let v = B.source_call b r in
            let key = if idx = 0 then "secret" else Printf.sprintf "secret%d" idx in
            B.put_extra b i ~key ~value:v)
          resources;
        via b i)
  in
  (Component.make ~name ~kind (), B.cls ~name [ m ])

let app ~pkg ?(perms = []) pieces =
  Apk.make
    ~manifest:
      (Manifest.make ~package:pkg ~uses_permissions:perms
         ~components:(List.map fst pieces) ())
    ~classes:(List.map snd pieces)

(* Permissions required to read the given resources. *)
let perms_for resources =
  List.sort_uniq compare (List.filter_map Resource.permission resources)

let start device ~pkg ~component ~entry =
  Separ_runtime.Device.start_component device ~pkg ~component ~entry

(* The standard one-app, source-component-to-leak-component case.
   [decoy_filters], when given, add a second leak-capable component whose
   filters do NOT really match the intent (they differ in the data test):
   tools that skip the data test report a spurious leak into it. *)
let intra_app_case ~name ~pkg ~resources ~sender_kind ~sender_entry ~setup
    ~via ~leaker_kind ~leaker_entry ?leaker_exported ?(leaker_filters = [])
    ?(leak_keys = [ "secret" ]) ?(decoy_filters = []) () =
  let src_name = name ^ "_Src" and dst_name = name ^ "_Leak" in
  let s =
    sender ~name:src_name ~kind:sender_kind ~entry:sender_entry ~resources
      ~setup ~via ()
  in
  let l =
    leaker ~name:dst_name ~kind:leaker_kind ~entry:leaker_entry
      ?exported:leaker_exported ~filters:leaker_filters ~keys:leak_keys ()
  in
  let decoys =
    if decoy_filters = [] then []
    else
      [
        leaker ~name:(name ^ "_Decoy") ~kind:leaker_kind ~entry:leaker_entry
          ~filters:decoy_filters ~keys:leak_keys ();
      ]
  in
  {
    name;
    group = "DroidBench";
    apks = [ app ~pkg ~perms:(perms_for resources) ([ s; l ] @ decoys) ];
    truth =
      List.map
        (fun r -> Finding.{ src = src_name; dst = dst_name; resource = r })
        resources;
    run =
      (fun d -> start d ~pkg ~component:(name ^ "_Src") ~entry:sender_entry);
  }
