(* Reconstruction of the 9 ICC-Bench cases of Table I: the spectrum of
   intent-resolution tests (explicit, action, category, data type, data
   scheme, mixes) plus the two dynamically-registered-receiver cases that
   define SEPAR's known false negatives. *)

open Separ_android
open Separ_dalvik
module B = Builder
module Finding = Separ_baselines.Finding
open Case

let mk ?(decoys = []) ~name ~pkg ~setup ~filters () =
  let c =
    intra_app_case ~name ~pkg ~resources:[ Resource.Imei ]
      ~sender_kind:Component.Activity ~sender_entry:"onCreate" ~setup
      ~via:B.start_activity ~leaker_kind:Component.Activity
      ~leaker_entry:"onCreate" ~leaker_filters:filters ~decoy_filters:decoys ()
  in
  { c with group = "ICC-Bench" }

let explicit_src_sink () =
  let c =
    intra_app_case ~name:"Explicit_Src_Sink" ~pkg:"icb.exp"
      ~resources:[ Resource.Imei ] ~sender_kind:Component.Activity
      ~sender_entry:"onCreate"
      ~setup:(fun b i -> B.set_class_name b i "Explicit_Src_Sink_Leak")
      ~via:B.start_activity ~leaker_kind:Component.Activity
      ~leaker_entry:"onCreate" ()
  in
  { c with group = "ICC-Bench" }

let implicit_action () =
  mk ~name:"Implicit_Action" ~pkg:"icb.act"
    ~setup:(fun b i -> B.set_action b i "icb.action")
    ~filters:[ Intent_filter.make ~actions:[ "icb.action" ] () ]
    ()

let implicit_category () =
  mk ~name:"Implicit_Category" ~pkg:"icb.cat"
    ~setup:(fun b i ->
      B.set_action b i "icb.cat.action";
      B.add_category b i "icb.cat.extra")
    ~filters:
      [
        Intent_filter.make ~actions:[ "icb.cat.action" ]
          ~categories:[ "icb.cat.extra"; "icb.cat.other" ] ();
      ]
    ()

let implicit_data1 () =
  mk ~name:"Implicit_Data1" ~pkg:"icb.dt1"
    ~setup:(fun b i ->
      B.set_action b i "icb.dt1.action";
      B.set_data_type b i "text/plain")
    ~filters:
      [
        Intent_filter.make ~actions:[ "icb.dt1.action" ]
          ~data_types:[ "text/plain" ] ();
      ]
    ~decoys:
      [
        Intent_filter.make ~actions:[ "icb.dt1.action" ]
          ~data_types:[ "image/jpeg" ] ();
      ]
    ()

let implicit_data2 () =
  mk ~name:"Implicit_Data2" ~pkg:"icb.dt2"
    ~setup:(fun b i ->
      B.set_action b i "icb.dt2.action";
      B.set_data_scheme b i "https")
    ~filters:
      [
        Intent_filter.make ~actions:[ "icb.dt2.action" ]
          ~data_schemes:[ "https" ] ();
      ]
    ()

let implicit_mix1 () =
  mk ~name:"Implicit_Mix1" ~pkg:"icb.mx1"
    ~setup:(fun b i ->
      B.set_action b i "icb.mx1.action";
      B.add_category b i "icb.mx1.cat";
      B.set_data_type b i "image/png")
    ~filters:
      [
        Intent_filter.make ~actions:[ "icb.mx1.action" ]
          ~categories:[ "icb.mx1.cat" ] ~data_types:[ "image/png" ] ();
      ]
    ()

let implicit_mix2 () =
  mk ~name:"Implicit_Mix2" ~pkg:"icb.mx2"
    ~setup:(fun b i ->
      B.set_action b i "icb.mx2.action";
      B.set_data_scheme b i "file")
    ~filters:
      [
        Intent_filter.make ~actions:[ "icb.mx2.other" ] ();
        Intent_filter.make ~actions:[ "icb.mx2.action" ]
          ~data_schemes:[ "file"; "content" ] ();
      ]
    ~decoys:
      [ Intent_filter.make ~actions:[ "icb.mx2.action" ] ~data_schemes:[ "ftp" ] () ]
    ()

(* A receiver registered in code.  The registration is statically
   resolvable, so tools that model dynamic registration (AmanDroid) find
   the leak; SEPAR's extractor deliberately does not, and misses it. *)
let dyn_registered_receiver1 () =
  let pkg = "icb.dyn1" in
  let reg = "DynReg1_Registrar"
  and recv = "DynReg1_Leak"
  and send = "DynReg1_Src" in
  let registrar =
    B.meth ~name:"onCreate" ~params:1 (fun b ->
        let i = B.new_intent b in
        B.set_class_name b i recv;
        B.set_action b i "dyn1.event";
        B.register_receiver b i)
  in
  let pieces =
    [
      (Component.make ~name:reg ~kind:Component.Activity (),
       B.cls ~name:reg [ registrar ]);
      leaker ~name:recv ~kind:Component.Receiver ~entry:"onReceive"
        ~exported:false ();
      sender ~name:send ~kind:Component.Activity ~entry:"onCreate"
        ~resources:[ Resource.Imei ]
        ~setup:(fun b i -> B.set_action b i "dyn1.event")
        ~via:B.send_broadcast ();
    ]
  in
  {
    name = "DynRegisteredReceiver1";
    group = "ICC-Bench";
    apks = [ app ~pkg ~perms:(perms_for [ Resource.Imei ]) pieces ];
    truth = [ Finding.{ src = send; dst = recv; resource = Resource.Imei } ];
    run =
      (fun d ->
        start d ~pkg ~component:reg ~entry:"onCreate";
        start d ~pkg ~component:send ~entry:"onCreate");
  }

(* The registered action comes from the triggering intent: statically
   unresolvable, so every static tool misses the leak. *)
let dyn_registered_receiver2 () =
  let pkg = "icb.dyn2" in
  let reg = "DynReg2_Registrar"
  and recv = "DynReg2_Leak"
  and send = "DynReg2_Src" in
  let registrar =
    B.meth ~name:"onCreate" ~params:1 (fun b ->
        let action = B.get_string_extra b 0 ~key:"which_action" in
        let i = B.new_intent b in
        B.set_class_name b i recv;
        B.invoke b (Api.mref Api.c_intent "setAction") [ i; action ];
        B.register_receiver b i)
  in
  let pieces =
    [
      (Component.make ~name:reg ~kind:Component.Activity (),
       B.cls ~name:reg [ registrar ]);
      leaker ~name:recv ~kind:Component.Receiver ~entry:"onReceive"
        ~exported:false ();
      sender ~name:send ~kind:Component.Activity ~entry:"onCreate"
        ~resources:[ Resource.Imei ]
        ~setup:(fun b i -> B.set_action b i "dyn2.event")
        ~via:B.send_broadcast ();
    ]
  in
  {
    name = "DynRegisteredReceiver2";
    group = "ICC-Bench";
    apks = [ app ~pkg ~perms:(perms_for [ Resource.Imei ]) pieces ];
    truth = [ Finding.{ src = send; dst = recv; resource = Resource.Imei } ];
    run =
      (fun d ->
        let intent =
          Intent.make
            ~extras:
              [ Intent.{ key = "which_action"; value = "dyn2.event"; taint = [] } ]
            ()
        in
        Separ_runtime.Device.start_component d ~pkg ~component:reg
          ~entry:"onCreate" ~intent;
        start d ~pkg ~component:send ~entry:"onCreate");
  }

let all () =
  [
    explicit_src_sink (); implicit_action (); implicit_category ();
    implicit_data1 (); implicit_data2 (); implicit_mix1 (); implicit_mix2 ();
    dyn_registered_receiver1 (); dyn_registered_receiver2 ();
  ]

(* --- extended cases beyond the paper's nine: URI authorities ------------- *)

(* The data URI names an authority and the filter constrains hosts: a
   real leak that requires the full host test to resolve. *)
let implicit_authority () =
  let c =
    mk ~name:"Implicit_Authority" ~pkg:"icb.auth"
      ~setup:(fun b i ->
        B.set_action b i "icb.auth.view";
        B.set_data_uri b i "content://books.provider")
      ~filters:
        [
          Intent_filter.make ~actions:[ "icb.auth.view" ]
            ~data_schemes:[ "content" ] ~data_hosts:[ "books.provider" ] ();
        ]
      ()
  in
  { c with group = "Extended" }

(* The filter's host does not match the intent's authority: no leak; a
   tool skipping the data test reports one. *)
let authority_mismatch () =
  let c =
    mk ~name:"Authority_Mismatch" ~pkg:"icb.authx"
      ~setup:(fun b i ->
        B.set_action b i "icb.authx.view";
        B.set_data_uri b i "content://books.provider")
      ~filters:
        [
          Intent_filter.make ~actions:[ "icb.authx.view" ]
            ~data_schemes:[ "content" ] ~data_hosts:[ "other.provider" ] ();
        ]
      ()
  in
  { c with group = "Extended"; truth = [] }

let extended () = [ implicit_authority (); authority_mismatch () ]
