(* Reconstruction of the 23 DroidBench 2.0 ICC/IAC cases of the paper's
   Table I.  Each case reproduces the *semantics* that made the original
   APK interesting — which ICC mechanism, implicit vs explicit
   addressing, data filters, result intents, reachability, providers —
   so each analysis tool's verdict is forced by its capability profile,
   not hard-coded. *)

open Separ_android
open Separ_dalvik
module B = Builder
module Finding = Separ_baselines.Finding
open Case

let cat_default = "android.intent.category.DEFAULT"

(* -- bound services ------------------------------------------------------ *)

let bind_service1 () =
  intra_app_case ~name:"ICC_bindService1" ~pkg:"db.bs1"
    ~resources:[ Resource.Imei ] ~sender_kind:Component.Activity
    ~sender_entry:"onCreate"
    ~setup:(fun b i -> B.set_action b i "bs1.bind")
    ~via:B.bind_service ~leaker_kind:Component.Service ~leaker_entry:"onBind"
    ~leaker_filters:[ Intent_filter.make ~actions:[ "bs1.bind" ] () ]
    ()

let bind_service2 () =
  intra_app_case ~name:"ICC_bindService2" ~pkg:"db.bs2"
    ~resources:[ Resource.Imei ] ~sender_kind:Component.Activity
    ~sender_entry:"onCreate"
    ~setup:(fun b i -> B.set_class_name b i "ICC_bindService2_Leak")
    ~via:B.bind_service ~leaker_kind:Component.Service ~leaker_entry:"onBind"
    ()

(* The intent is built in a helper method: the link is only visible to an
   inter-procedural analysis. *)
let bind_service3 () =
  let pkg = "db.bs3" in
  let src_name = "ICC_bindService3_Src" and dst_name = "ICC_bindService3_Leak" in
  let helper =
    B.meth ~name:"buildAndBind" ~params:1 (fun b ->
        let i = B.new_intent b in
        B.set_action b i "bs3.bind";
        B.put_extra b i ~key:"secret" ~value:0;
        B.bind_service b i)
  in
  let entry =
    B.meth ~name:"onCreate" ~params:1 (fun b ->
        let v = B.source_call b Resource.Imei in
        B.call b ~cls:src_name ~name:"buildAndBind" [ v ])
  in
  let src =
    (Component.make ~name:src_name ~kind:Component.Activity (),
     B.cls ~name:src_name [ entry; helper ])
  in
  let l =
    leaker ~name:dst_name ~kind:Component.Service ~entry:"onBind"
      ~filters:[ Intent_filter.make ~actions:[ "bs3.bind" ] () ]
      ()
  in
  {
    name = "ICC_bindService3";
    group = "DroidBench";
    apks = [ app ~pkg ~perms:(perms_for [ Resource.Imei ]) [ src; l ] ];
    truth = [ Finding.{ src = src_name; dst = dst_name; resource = Resource.Imei } ];
    run = (fun d -> start d ~pkg ~component:src_name ~entry:"onCreate");
  }

(* Two distinct sensitive resources leak through the same binding. *)
let bind_service4 () =
  intra_app_case ~name:"ICC_bindService4" ~pkg:"db.bs4"
    ~resources:[ Resource.Imei; Resource.Location ]
    ~sender_kind:Component.Activity ~sender_entry:"onCreate"
    ~setup:(fun b i -> B.set_action b i "bs4.bind")
    ~via:B.bind_service ~leaker_kind:Component.Service ~leaker_entry:"onBind"
    ~leaker_filters:[ Intent_filter.make ~actions:[ "bs4.bind" ] () ]
    ~leak_keys:[ "secret"; "secret1" ] ()

(* -- broadcasts ----------------------------------------------------------- *)

let send_broadcast1 () =
  intra_app_case ~name:"ICC_sendBroadcast1" ~pkg:"db.sb1"
    ~resources:[ Resource.Imei ] ~sender_kind:Component.Activity
    ~sender_entry:"onCreate"
    ~setup:(fun b i -> B.set_action b i "sb1.event")
    ~via:B.send_broadcast ~leaker_kind:Component.Receiver
    ~leaker_entry:"onReceive"
    ~leaker_filters:[ Intent_filter.make ~actions:[ "sb1.event" ] () ]
    ()

(* -- activities ----------------------------------------------------------- *)

let start_activity1 () =
  intra_app_case ~name:"ICC_startActivity1" ~pkg:"db.sa1"
    ~resources:[ Resource.Imei ] ~sender_kind:Component.Activity
    ~sender_entry:"onCreate"
    ~setup:(fun b i ->
      B.set_action b i "sa1.show";
      B.add_category b i cat_default)
    ~via:B.start_activity ~leaker_kind:Component.Activity
    ~leaker_entry:"onCreate"
    ~leaker_filters:
      [ Intent_filter.make ~actions:[ "sa1.show" ] ~categories:[ cat_default ] () ]
    ()

(* Data-scheme constrained resolution. *)
let start_activity2 () =
  intra_app_case ~name:"ICC_startActivity2" ~pkg:"db.sa2"
    ~resources:[ Resource.Imei ] ~sender_kind:Component.Activity
    ~sender_entry:"onCreate"
    ~setup:(fun b i ->
      B.set_action b i "sa2.view";
      B.set_data_scheme b i "content")
    ~via:B.start_activity ~leaker_kind:Component.Activity
    ~leaker_entry:"onCreate"
    ~leaker_filters:
      [ Intent_filter.make ~actions:[ "sa2.view" ] ~data_schemes:[ "content" ] () ]
    ~decoy_filters:
      [ Intent_filter.make ~actions:[ "sa2.view" ] ~data_schemes:[ "http" ] () ]
    ()

(* The action is assigned in one of two branches: multi-value resolution. *)
let start_activity3 () =
  let pkg = "db.sa3" in
  let src_name = "ICC_startActivity3_Src" and dst_name = "ICC_startActivity3_Leak" in
  let entry =
    B.meth ~name:"onCreate" ~params:1 (fun b ->
        let v = B.source_call b Resource.Imei in
        let i = B.new_intent b in
        let cond = B.get_string_extra b 0 ~key:"which" in
        let l_else = B.fresh_label b in
        let l_end = B.fresh_label b in
        B.if_eqz b cond l_else;
        B.set_action b i "sa3.a";
        B.goto b l_end;
        B.place_label b l_else;
        B.set_action b i "sa3.b";
        B.place_label b l_end;
        B.put_extra b i ~key:"secret" ~value:v;
        B.start_activity b i)
  in
  let src =
    (Component.make ~name:src_name ~kind:Component.Activity (),
     B.cls ~name:src_name [ entry ])
  in
  let l =
    leaker ~name:dst_name ~kind:Component.Activity ~entry:"onCreate"
      ~filters:[ Intent_filter.make ~actions:[ "sa3.b" ] () ]
      ()
  in
  {
    name = "ICC_startActivity3";
    group = "DroidBench";
    apks = [ app ~pkg ~perms:(perms_for [ Resource.Imei ]) [ src; l ] ];
    truth = [ Finding.{ src = src_name; dst = dst_name; resource = Resource.Imei } ];
    run = (fun d -> start d ~pkg ~component:src_name ~entry:"onCreate");
  }

(* The leaking code sits in a method no entry point ever calls: there is
   no real leak; tools without reachability pruning report one. *)
let unreachable_case ~name ~pkg ~action =
  let src_name = name ^ "_Src" and dst_name = name ^ "_Leak" in
  let dead =
    B.meth ~name:"neverCalled" ~params:1 (fun b ->
        let v = B.source_call b Resource.Imei in
        let i = B.new_intent b in
        B.set_action b i action;
        B.put_extra b i ~key:"secret" ~value:v;
        B.start_activity b i)
  in
  let entry =
    B.meth ~name:"onCreate" ~params:1 (fun b -> B.nop b)
  in
  let src =
    (Component.make ~name:src_name ~kind:Component.Activity (),
     B.cls ~name:src_name [ entry; dead ])
  in
  let l =
    leaker ~name:dst_name ~kind:Component.Activity ~entry:"onCreate"
      ~filters:[ Intent_filter.make ~actions:[ action ] () ]
      ()
  in
  {
    name;
    group = "DroidBench";
    apks = [ app ~pkg ~perms:(perms_for [ Resource.Imei ]) [ src; l ] ];
    truth = [];
    run = (fun d -> start d ~pkg ~component:src_name ~entry:"onCreate");
  }

let start_activity4 () =
  unreachable_case ~name:"ICC_startActivity4" ~pkg:"db.sa4" ~action:"sa4.show"

let start_activity5 () =
  unreachable_case ~name:"ICC_startActivity5" ~pkg:"db.sa5" ~action:"sa5.show"

(* -- startActivityForResult: the passive-intent cases --------------------- *)

(* [origin] starts [responder] for a result; the responder reads a source
   and ships it back via setResult; the origin leaks it in
   onActivityResult.  Only Algorithm 1 (passive-intent target update)
   connects the reply to the origin. *)
let for_result_case ~name ~pkg ~resources ?(via_helper = false) () =
  let origin = name ^ "_Origin" and responder = name ^ "_Resp" in
  let action = String.lowercase_ascii name ^ ".request" in
  let origin_create =
    B.meth ~name:"onCreate" ~params:1 (fun b ->
        let i = B.new_intent b in
        B.set_action b i action;
        B.start_activity_for_result b i)
  in
  let origin_result =
    B.meth ~name:"onActivityResult" ~params:1 (fun b ->
        List.iteri
          (fun idx _ ->
            let key = if idx = 0 then "secret" else Printf.sprintf "secret%d" idx in
            let v = B.get_string_extra b 0 ~key in
            B.write_log b ~payload:v)
          resources)
  in
  let respond b =
    let i = B.new_intent b in
    List.iteri
      (fun idx r ->
        let v = B.source_call b r in
        let key = if idx = 0 then "secret" else Printf.sprintf "secret%d" idx in
        B.put_extra b i ~key ~value:v)
      resources;
    B.set_result b i
  in
  let responder_methods =
    if via_helper then
      [
        B.meth ~name:"onCreate" ~params:1 (fun b ->
            B.call b ~cls:responder ~name:"reply" [ 0 ]);
        B.meth ~name:"reply" ~params:1 respond;
      ]
    else [ B.meth ~name:"onCreate" ~params:1 (fun b -> respond b) ]
  in
  let pieces =
    [
      (Component.make ~name:origin ~kind:Component.Activity (),
       B.cls ~name:origin [ origin_create; origin_result ]);
      (Component.make ~name:responder ~kind:Component.Activity
         ~intent_filters:[ Intent_filter.make ~actions:[ action ] () ]
         (),
       B.cls ~name:responder responder_methods);
    ]
  in
  {
    name;
    group = "DroidBench";
    apks = [ app ~pkg ~perms:(perms_for resources) pieces ];
    truth =
      List.map
        (fun r -> Finding.{ src = responder; dst = origin; resource = r })
        resources;
    run = (fun d -> start d ~pkg ~component:origin ~entry:"onCreate");
  }

let for_result1 () =
  for_result_case ~name:"ICC_startActivityForResult1" ~pkg:"db.afr1"
    ~resources:[ Resource.Imei ] ()

let for_result2 () =
  for_result_case ~name:"ICC_startActivityForResult2" ~pkg:"db.afr2"
    ~resources:[ Resource.Location ] ()

let for_result3 () =
  for_result_case ~name:"ICC_startActivityForResult3" ~pkg:"db.afr3"
    ~resources:[ Resource.Imei ] ~via_helper:true ()

let for_result4 () =
  for_result_case ~name:"ICC_startActivityForResult4" ~pkg:"db.afr4"
    ~resources:[ Resource.Imei; Resource.Location ] ()

(* -- services -------------------------------------------------------------- *)

let start_service1 () =
  intra_app_case ~name:"ICC_startService1" ~pkg:"db.ss1"
    ~resources:[ Resource.Imei ] ~sender_kind:Component.Activity
    ~sender_entry:"onCreate"
    ~setup:(fun b i -> B.set_action b i "ss1.go")
    ~via:B.start_service ~leaker_kind:Component.Service
    ~leaker_entry:"onStartCommand"
    ~leaker_filters:[ Intent_filter.make ~actions:[ "ss1.go" ] () ]
    ()

let start_service2 () =
  intra_app_case ~name:"ICC_startService2" ~pkg:"db.ss2"
    ~resources:[ Resource.Imei ] ~sender_kind:Component.Activity
    ~sender_entry:"onCreate"
    ~setup:(fun b i -> B.set_class_name b i "ICC_startService2_Leak")
    ~via:B.start_service ~leaker_kind:Component.Service
    ~leaker_entry:"onStartCommand" ()

(* -- content providers ------------------------------------------------------ *)

let provider_case ~name ~pkg ~op ~entry =
  let src_name = name ^ "_Src" and dst_name = name ^ "_Leak" in
  let s =
    sender ~name:src_name ~kind:Component.Activity ~entry:"onCreate"
      ~resources:[ Resource.Contacts ]
      ~setup:(fun b i -> B.set_class_name b i dst_name)
      ~via:(fun b i -> B.provider_op b op i)
      ()
  in
  let l =
    leaker ~name:dst_name ~kind:Component.Provider ~entry ~exported:true ()
  in
  {
    name;
    group = "DroidBench";
    apks = [ app ~pkg ~perms:(perms_for [ Resource.Contacts ]) [ s; l ] ];
    truth =
      [ Finding.{ src = src_name; dst = dst_name; resource = Resource.Contacts } ];
    run = (fun d -> start d ~pkg ~component:src_name ~entry:"onCreate");
  }

let delete1 () =
  provider_case ~name:"ICC_delete1" ~pkg:"db.del1" ~op:Api.Provider_delete
    ~entry:"delete"

let insert1 () =
  provider_case ~name:"ICC_insert1" ~pkg:"db.ins1" ~op:Api.Provider_insert
    ~entry:"insert"

let query1 () =
  provider_case ~name:"ICC_query1" ~pkg:"db.qry1" ~op:Api.Provider_query
    ~entry:"query"

let update1 () =
  provider_case ~name:"ICC_update1" ~pkg:"db.upd1" ~op:Api.Provider_update
    ~entry:"update"

(* -- inter-app cases --------------------------------------------------------- *)

let iac_case ~name ~pkg1 ~pkg2 ~via ~leaker_kind ~leaker_entry ~action =
  let src_name = name ^ "_Src" and dst_name = name ^ "_Leak" in
  let s =
    sender ~name:src_name ~kind:Component.Activity ~entry:"onCreate"
      ~resources:[ Resource.Imei ]
      ~setup:(fun b i -> B.set_action b i action)
      ~via ()
  in
  let l =
    leaker ~name:dst_name ~kind:leaker_kind ~entry:leaker_entry
      ~filters:[ Intent_filter.make ~actions:[ action ] () ]
      ()
  in
  {
    name;
    group = "DroidBench";
    apks =
      [
        app ~pkg:pkg1 ~perms:(perms_for [ Resource.Imei ]) [ s ];
        app ~pkg:pkg2 [ l ];
      ];
    truth =
      [ Finding.{ src = src_name; dst = dst_name; resource = Resource.Imei } ];
    run = (fun d -> start d ~pkg:pkg1 ~component:src_name ~entry:"onCreate");
  }

let iac_start_activity1 () =
  iac_case ~name:"IAC_startActivity1" ~pkg1:"db.iacsa.a" ~pkg2:"db.iacsa.b"
    ~via:B.start_activity ~leaker_kind:Component.Activity
    ~leaker_entry:"onCreate" ~action:"iac.sa1.show"

let iac_start_service1 () =
  iac_case ~name:"IAC_startService1" ~pkg1:"db.iacss.a" ~pkg2:"db.iacss.b"
    ~via:B.start_service ~leaker_kind:Component.Service
    ~leaker_entry:"onStartCommand" ~action:"iac.ss1.go"

let iac_send_broadcast1 () =
  iac_case ~name:"IAC_sendBroadcast1" ~pkg1:"db.iacsb.a" ~pkg2:"db.iacsb.b"
    ~via:B.send_broadcast ~leaker_kind:Component.Receiver
    ~leaker_entry:"onReceive" ~action:"iac.sb1.event"

let all () =
  [
    bind_service1 (); bind_service2 (); bind_service3 (); bind_service4 ();
    send_broadcast1 ();
    start_activity1 (); start_activity2 (); start_activity3 ();
    start_activity4 (); start_activity5 ();
    for_result1 (); for_result2 (); for_result3 (); for_result4 ();
    start_service1 (); start_service2 ();
    delete1 (); insert1 (); query1 (); update1 ();
    iac_start_activity1 (); iac_start_service1 (); iac_send_broadcast1 ();
  ]
