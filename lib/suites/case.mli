(** One benchmark case: apps with known ground-truth leaks, plus a
    runtime driver that exercises the leak on the simulated device (the
    tests validate the truth labels end-to-end). *)

open Separ_android
open Separ_dalvik
module Finding = Separ_baselines.Finding

type t = {
  name : string;
  group : string;  (** "DroidBench", "ICC-Bench" or "Extended" *)
  apks : Apk.t list;
  truth : Finding.t list;
  run : Separ_runtime.Device.t -> unit;
}

(** {1 Building blocks for case definitions} *)

(** A component that reads extra [keys] from its incoming intent and logs
    them (the canonical DroidBench sink). *)
val leaker :
  name:string ->
  kind:Component.kind ->
  entry:string ->
  ?exported:bool ->
  ?filters:Intent_filter.t list ->
  ?keys:string list ->
  unit ->
  Component.t * Ir.cls

(** A component that reads [resources], stores them as extras ("secret",
    "secret1", ...) and sends one intent configured by [setup] via the
    ICC call [via]. *)
val sender :
  name:string ->
  kind:Component.kind ->
  entry:string ->
  resources:Resource.t list ->
  setup:(Builder.t -> Ir.reg -> unit) ->
  via:(Builder.t -> Ir.reg -> unit) ->
  unit ->
  Component.t * Ir.cls

val app :
  pkg:string -> ?perms:Permission.t list -> (Component.t * Ir.cls) list -> Apk.t

val perms_for : Resource.t list -> Permission.t list

val start :
  Separ_runtime.Device.t -> pkg:string -> component:string -> entry:string -> unit

(** The standard one-app source-to-leak case.  [decoy_filters] add a
    second leak-capable component whose filters differ only in the data
    test: tools skipping that test report a spurious leak into it. *)
val intra_app_case :
  name:string ->
  pkg:string ->
  resources:Resource.t list ->
  sender_kind:Component.kind ->
  sender_entry:string ->
  setup:(Builder.t -> Ir.reg -> unit) ->
  via:(Builder.t -> Ir.reg -> unit) ->
  leaker_kind:Component.kind ->
  leaker_entry:string ->
  ?leaker_exported:bool ->
  ?leaker_filters:Intent_filter.t list ->
  ?leak_keys:string list ->
  ?decoy_filters:Intent_filter.t list ->
  unit ->
  t
