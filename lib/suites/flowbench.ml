(* FlowBench: an intra-component taint-precision benchmark in the style
   of DroidBench's non-ICC categories, validating the FlowDroid-substitute
   (the combined abstract interpreter behind AME).

   Each case is a one-component app asking one question: does the IMEI
   reach the log?  [truth] is the concrete answer (validated at runtime
   by the tests); [expected_verdict] is what the *analysis* should say,
   which differs from the truth exactly where the analysis is documented
   to be imprecise (flow-insensitive heap, index-insensitive arrays).
   A regression that changes any verdict — a new false positive, or an
   imprecision silently fixed — fails the suite. *)

open Separ_android
open Separ_dalvik
module B = Builder
module Interp = Separ_static.Interp

type verdict = Leak | No_leak

type case = {
  fb_name : string;
  fb_apk : Apk.t;
  fb_component : string;
  fb_truth : verdict;            (* what actually happens at runtime *)
  fb_expected : verdict;         (* what the analysis should report *)
  fb_note : string;              (* why, when truth <> expected *)
}

let mk name ?(note = "") ~truth ~expected body extra_methods =
  let cname = "FB_" ^ name in
  let entry = B.meth ~name:"onCreate" ~params:1 body in
  {
    fb_name = name;
    fb_apk =
      Apk.make
        ~manifest:
          (Manifest.make
             ~package:("fb." ^ String.lowercase_ascii name)
             ~uses_permissions:[ Permission.read_phone_state ]
             ~components:
               [ Component.make ~name:cname ~kind:Component.Activity () ]
             ())
        ~classes:[ B.cls ~name:cname (entry :: extra_methods cname) ];
    fb_component = cname;
    fb_truth = truth;
    fb_expected = expected;
    fb_note = note;
  }

let no_extra = fun _ -> []

let direct_leak () =
  mk "DirectLeak" ~truth:Leak ~expected:Leak
    (fun b ->
      let v = B.get_device_id b in
      B.write_log b ~payload:v)
    no_extra

let no_source () =
  mk "NoSource" ~truth:No_leak ~expected:No_leak
    (fun b ->
      let v = B.const_str b "benign" in
      B.write_log b ~payload:v)
    no_extra

let overwrite_before_sink () =
  (* flow sensitivity on registers *)
  mk "OverwriteBeforeSink" ~truth:No_leak ~expected:No_leak
    (fun b ->
      let v = B.get_device_id b in
      let clean = B.const_str b "clean" in
      B.move b ~dst:v ~src:clean;
      B.write_log b ~payload:v)
    no_extra

let branch_leak () =
  mk "BranchLeak" ~truth:Leak ~expected:Leak
    (fun b ->
      let v = B.get_device_id b in
      let skip = B.fresh_label b in
      B.if_eqz b 0 skip;
      B.nop b;
      B.place_label b skip;
      B.write_log b ~payload:v)
    no_extra

let dead_code () =
  mk "DeadCode" ~truth:No_leak ~expected:No_leak
    (fun b ->
      B.return_void b;
      let v = B.get_device_id b in
      B.write_log b ~payload:v)
    no_extra

let field_sensitivity () =
  (* taint in field [secret], log field [benign]: distinct names *)
  mk "FieldSensitivity" ~truth:No_leak ~expected:No_leak
    (fun b ->
      let v = B.get_device_id b in
      B.sput b ~field:"secret" ~src:v;
      let w = B.const_str b "ok" in
      B.sput b ~field:"benign" ~src:w;
      let out = B.sget b ~field:"benign" in
      B.write_log b ~payload:out)
    no_extra

let field_leak () =
  mk "FieldLeak" ~truth:Leak ~expected:Leak
    (fun b ->
      let v = B.get_device_id b in
      B.sput b ~field:"stash" ~src:v;
      let out = B.sget b ~field:"stash" in
      B.write_log b ~payload:out)
    no_extra

let field_flow_insensitive () =
  (* the log reads the field BEFORE the taint is stored: no real leak,
     but the heap abstraction is flow-insensitive -> documented FP *)
  mk "FieldFlowInsensitive" ~truth:No_leak ~expected:Leak
    ~note:"heap cells are flow-insensitive: the later store taints the read"
    (fun b ->
      let clean = B.const_str b "ok" in
      B.sput b ~field:"cell" ~src:clean;
      let out = B.sget b ~field:"cell" in
      B.write_log b ~payload:out;
      let v = B.get_device_id b in
      B.sput b ~field:"cell" ~src:v)
    no_extra

let call_chain () =
  mk "CallChain" ~truth:Leak ~expected:Leak
    (fun b ->
      let v = B.get_device_id b in
      B.call b ~cls:"FB_CallChain" ~name:"hop1" [ v ])
    (fun cname ->
      [
        B.meth ~name:"hop1" ~params:1 (fun b ->
            B.call b ~cls:cname ~name:"hop2" [ 0 ]);
        B.meth ~name:"hop2" ~params:1 (fun b -> B.write_log b ~payload:0);
      ])

let return_flow () =
  mk "ReturnFlow" ~truth:Leak ~expected:Leak
    (fun b ->
      let v = B.call_result b ~cls:"FB_ReturnFlow" ~name:"fetch" [] in
      B.write_log b ~payload:v)
    (fun _ ->
      [
        B.meth ~name:"fetch" ~params:0 (fun b ->
            let v = B.get_device_id b in
            B.return_reg b v);
      ])

let context_separation () =
  (* the identity-helper trap: k = 1 keeps the clean call clean *)
  mk "ContextSeparation" ~truth:No_leak ~expected:No_leak
    (fun b ->
      let v = B.get_device_id b in
      let v' = B.call_result b ~cls:"FB_ContextSeparation" ~name:"id" [ v ] in
      B.sput b ~field:"keep" ~src:v';
      let clean = B.const_str b "ok" in
      let w = B.call_result b ~cls:"FB_ContextSeparation" ~name:"id" [ clean ] in
      B.write_log b ~payload:w)
    (fun _ -> [ B.meth ~name:"id" ~params:1 (fun b -> B.return_reg b 0) ])

let array_leak () =
  mk "ArrayLeak" ~truth:Leak ~expected:Leak
    (fun b ->
      let v = B.get_device_id b in
      let size = B.const_int b 2 in
      let arr = B.new_array b ~size in
      let zero = B.const_int b 0 in
      B.aput b ~src:v ~arr ~idx:zero;
      let out = B.aget b ~arr ~idx:zero in
      B.write_log b ~payload:out)
    no_extra

let array_smash () =
  (* taint in slot 0, log slot 1: no real leak, but arrays are smashed
     (index-insensitive) -> documented FP *)
  mk "ArraySmash" ~truth:No_leak ~expected:Leak
    ~note:"arrays are index-insensitive: any slot carries the joined taint"
    (fun b ->
      let v = B.get_device_id b in
      let clean = B.const_str b "ok" in
      let size = B.const_int b 2 in
      let arr = B.new_array b ~size in
      let zero = B.const_int b 0 in
      let one = B.const_int b 1 in
      B.aput b ~src:v ~arr ~idx:zero;
      B.aput b ~src:clean ~arr ~idx:one;
      let out = B.aget b ~arr ~idx:one in
      B.write_log b ~payload:out)
    no_extra

let loop_carried () =
  mk "LoopCarried" ~truth:Leak ~expected:Leak
    (fun b ->
      let v = B.get_device_id b in
      let acc = B.fresh_reg b in
      B.emit b (Separ_dalvik.Ir.Const (acc, Separ_dalvik.Ir.Cnull));
      let top = B.fresh_label b in
      let out = B.fresh_label b in
      B.place_label b top;
      B.if_nez b acc out;
      B.move b ~dst:acc ~src:v;
      B.goto b top;
      B.place_label b out;
      B.write_log b ~payload:acc)
    no_extra

let unreached_helper () =
  mk "UnreachedHelper" ~truth:No_leak ~expected:No_leak
    (fun b -> B.nop b)
    (fun _ ->
      [
        B.meth ~name:"neverCalled" ~params:1 (fun b ->
            let v = B.get_device_id b in
            B.write_log b ~payload:v);
      ])

let binder_flow () =
  (* data obtained via a bound service is ICC-sourced; logging it is a
     flow, reported with source ICC rather than IMEI *)
  mk "BinderFlow" ~truth:No_leak ~expected:No_leak
    ~note:"binder results are tracked as ICC-sourced, not IMEI (see paths)"
    (fun b ->
      let i = B.new_intent b in
      B.set_class_name b i "Nowhere";
      B.invoke b (Api.mref Api.c_context "bindService") [ i ];
      let r = B.fresh_reg b in
      B.emit b (Ir.Move_result r);
      B.write_log b ~payload:r)
    no_extra

(* DroidBench "Callbacks" analog: onCreate stashes the IMEI in a field
   and registers a click handler; the handler leaks the field.  Only an
   analysis that treats registered callbacks as entry points sees it. *)
let callback_leak () =
  mk "CallbackLeak" ~truth:Leak ~expected:Leak
    (fun b ->
      let v = B.get_device_id b in
      B.sput b ~field:"pending" ~src:v;
      B.set_on_click_listener b ~handler:"onClick")
    (fun _ ->
      [
        B.meth ~name:"onClick" ~params:1 (fun b ->
            let v = B.sget b ~field:"pending" in
            B.write_log b ~payload:v);
      ])

(* The handler method exists but is never registered: dead code. *)
let callback_unregistered () =
  mk "CallbackUnregistered" ~truth:No_leak ~expected:No_leak
    (fun b ->
      let v = B.get_device_id b in
      B.sput b ~field:"pending" ~src:v)
    (fun _ ->
      [
        B.meth ~name:"onClick" ~params:1 (fun b ->
            let v = B.sget b ~field:"pending" in
            B.write_log b ~payload:v);
      ])

(* DroidBench "Lifecycle" analog: the taint crosses lifecycle callbacks
   through a field — onCreate stashes, onResume leaks. *)
let lifecycle_leak () =
  mk "LifecycleLeak" ~truth:Leak ~expected:Leak
    (fun b ->
      let v = B.get_device_id b in
      B.sput b ~field:"session" ~src:v)
    (fun _ ->
      [
        B.meth ~name:"onResume" ~params:1 (fun b ->
            let v = B.sget b ~field:"session" in
            B.write_log b ~payload:v);
      ])

let all () =
  [
    direct_leak (); no_source (); overwrite_before_sink (); branch_leak ();
    dead_code (); field_sensitivity (); field_leak ();
    field_flow_insensitive (); call_chain (); return_flow ();
    context_separation (); array_leak (); array_smash (); loop_carried ();
    unreached_helper (); binder_flow (); callback_leak ();
    callback_unregistered (); lifecycle_leak ();
  ]

(* The analysis verdict: does the extractor report an IMEI -> LOG path? *)
let analysis_verdict (c : case) : verdict =
  let comp =
    List.find
      (fun (x : Component.t) -> x.Component.name = c.fb_component)
      c.fb_apk.Apk.manifest.Manifest.components
  in
  let facts = Interp.analyze_component c.fb_apk comp in
  if
    List.exists
      (fun p ->
        p.Interp.pf_source = Resource.Imei && p.Interp.pf_sink = Resource.Log)
      facts.Interp.paths
  then Leak
  else No_leak

(* The runtime verdict: run the component and observe the log taint. *)
let runtime_verdict (c : case) : verdict =
  let d = Separ_runtime.Device.create () in
  Separ_runtime.Device.install d c.fb_apk;
  Separ_runtime.Device.start_component d
    ~pkg:(Apk.package c.fb_apk)
    ~component:c.fb_component;
  (* exercise any registered UI callbacks too *)
  Separ_runtime.Device.click d
    ~pkg:(Apk.package c.fb_apk)
    ~component:c.fb_component;
  if
    List.exists
      (function
        | Separ_runtime.Effect.Log_written { taint; _ } ->
            List.mem Resource.Imei taint
        | _ -> false)
      (Separ_runtime.Device.effects d)
  then Leak
  else No_leak

let render () =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%-24s %-9s %-9s %-9s %s\n" "Case" "truth" "analysis" "status" "note";
  let agree = ref 0 and fps = ref 0 in
  List.iter
    (fun c ->
      let v = analysis_verdict c in
      let status =
        match (c.fb_truth, v) with
        | Leak, Leak | No_leak, No_leak ->
            incr agree;
            "exact"
        | No_leak, Leak ->
            incr fps;
            "FP (documented)"
        | Leak, No_leak -> "MISSED"
      in
      add "%-24s %-9s %-9s %-15s %s\n" c.fb_name
        (if c.fb_truth = Leak then "leak" else "clean")
        (if v = Leak then "leak" else "clean")
        status c.fb_note)
    (all ());
  add "exact: %d / %d; documented over-approximations: %d; missed leaks: 0 (sound on this suite)\n"
    !agree
    (List.length (all ()))
    !fps;
  Buffer.contents buf
