(* The Table I experiment: run DidFail, AmanDroid and SEPAR over every
   DroidBench and ICC-Bench case, score each against ground truth, and
   render the comparison with per-tool precision / recall / F-measure. *)

module Finding = Separ_baselines.Finding

type tool = {
  tool_name : string;
  tool_run : Separ_dalvik.Apk.t list -> Finding.t list;
}

let tools =
  [
    { tool_name = "DidFail"; tool_run = Separ_baselines.Didfail.analyze };
    { tool_name = "AmanDroid"; tool_run = Separ_baselines.Amandroid.analyze };
    { tool_name = "SEPAR"; tool_run = Separ_baselines.Separ_tool.analyze };
  ]

type row = {
  case : Case.t;
  cells : (string * Finding.score) list; (* per tool *)
}

let run_case (c : Case.t) : row =
  {
    case = c;
    cells =
      List.map
        (fun tool ->
          let found = tool.tool_run c.Case.apks in
          (tool.tool_name, Finding.score ~truth:c.Case.truth ~found))
        tools;
  }

let all_cases () =
  Droidbench.all () @ Icc_bench.all () @ Icc_bench.extended ()

let run () = List.map run_case (all_cases ())

let totals rows =
  List.map
    (fun tool ->
      let s =
        List.fold_left
          (fun acc row -> Finding.add acc (List.assoc tool.tool_name row.cells))
          Finding.zero rows
      in
      (tool.tool_name, s))
    tools

let cell_string (s : Finding.score) =
  let part n sym = if n = 0 then "" else String.concat "" (List.init n (fun _ -> sym)) in
  let str = part s.Finding.tp "O" ^ part s.Finding.fp "!" ^ part s.Finding.fn "x" in
  if str = "" then "-" else str

(* Render the table; O = true positive, ! = false positive, x = false
   negative, - = nothing to report (matching the paper's symbols). *)
let render rows =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%-32s %-10s %-10s %-10s\n" "Test Case" "DidFail" "AmanDroid" "SEPAR";
  let current_group = ref "" in
  List.iter
    (fun row ->
      if row.case.Case.group <> !current_group then begin
        current_group := row.case.Case.group;
        add "--- %s ---\n" !current_group
      end;
      add "%-32s %-10s %-10s %-10s\n" row.case.Case.name
        (cell_string (List.assoc "DidFail" row.cells))
        (cell_string (List.assoc "AmanDroid" row.cells))
        (cell_string (List.assoc "SEPAR" row.cells)))
    rows;
  let t = totals rows in
  let metric name f =
    add "%-32s" name;
    List.iter (fun (_, s) -> add " %-10s" (Printf.sprintf "%.0f%%" (100.0 *. f s))) t;
    add "\n"
  in
  add "%s\n" (String.make 64 '-');
  metric "Precision" Finding.precision;
  metric "Recall" Finding.recall;
  metric "F-measure" Finding.f_measure;
  Buffer.contents buf
