(** The Table I experiment: run DidFail, AmanDroid and SEPAR over every
    DroidBench / ICC-Bench / Extended case, score against ground truth,
    and render the comparison with precision / recall / F-measure. *)

module Finding = Separ_baselines.Finding

type tool = {
  tool_name : string;
  tool_run : Separ_dalvik.Apk.t list -> Finding.t list;
}

val tools : tool list

type row = {
  case : Case.t;
  cells : (string * Finding.score) list;  (** per tool *)
}

val run_case : Case.t -> row
val all_cases : unit -> Case.t list
val run : unit -> row list
val totals : row list -> (string * Finding.score) list
val cell_string : Finding.score -> string

(** Render the table; O = true positive, ! = false positive, x = false
    negative, - = nothing to report. *)
val render : row list -> string
