(** FlowBench: an intra-component taint-precision benchmark in the style
    of DroidBench's non-ICC categories, validating the
    FlowDroid-substitute.  Each case declares its runtime [truth] and the
    analysis verdict [expected] — which differ exactly where the analysis
    is documented to be imprecise. *)

open Separ_dalvik

type verdict = Leak | No_leak

type case = {
  fb_name : string;
  fb_apk : Apk.t;
  fb_component : string;
  fb_truth : verdict;     (** what actually happens at runtime *)
  fb_expected : verdict;  (** what the analysis should report *)
  fb_note : string;
}

val all : unit -> case list

(** Does the extractor report an IMEI -> LOG path? *)
val analysis_verdict : case -> verdict

(** Run the component (and its callbacks) and observe the log taint. *)
val runtime_verdict : case -> verdict

val render : unit -> string
