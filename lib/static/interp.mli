(** The combined whole-component abstract interpreter behind AME.

    For one component, starting from its lifecycle entry points (the
    incoming intent in register 0), this runs an inter-procedural, flow-
    and field-sensitive fixpoint over {!Absval}: string constant
    propagation, intent allocation-site tracking, taint propagation and
    permission-check tracking in a single pass, with optional
    one-call-site context sensitivity (k = 1, the default). *)

open Separ_android
open Separ_dalvik

(** One intent the component can send, with resolved properties. *)
type intent_fact = {
  if_actions : string list option;  (** [None]: statically unresolved *)
  if_categories : string list;
  if_data_types : string list;
  if_data_schemes : string list;
  if_data_hosts : string list;      (** URI authorities *)
  if_targets : string list;
  if_extra_keys : string list;
  if_extra_taints : Resource.t list;
  if_icc : Api.icc_kind;
  if_wants_result : bool;
  if_passive : bool;                (** a [setResult] reply *)
  if_forwards_incoming : bool;      (** re-sends the received intent *)
}

(** One sensitive data-flow path, with the permissions whose dynamic
    checks guard the sink. *)
type path_fact = {
  pf_source : Resource.t;
  pf_sink : Resource.t;
  pf_guards : Permission.t list;
}

type facts = {
  intents : intent_fact list;
  paths : path_fact list;
  uses_permissions : Permission.t list;
  registers_dynamic_receiver : bool;
  dynamic_filters : (string option * string list) list;
      (** (receiver class, actions) of resolvable dynamic registrations *)
  reads_extra_keys : string list;
      (** extra keys read from the incoming intent *)
  analyzed_methods : int;
}

val empty_facts : facts

(** Analyze one component.  [k1] selects one-call-site context
    sensitivity (default true); [all_methods] treats every method of the
    component class as a root — i.e. no entry-point reachability pruning,
    the behaviour of baseline tools. *)
val analyze_component :
  ?k1:bool -> ?all_methods:bool -> Apk.t -> Component.t -> facts
