(* The combined whole-component abstract interpreter.

   For one component of an app, starting from its lifecycle entry points
   (the incoming intent in register 0), this module runs an
   inter-procedural, flow- and field-sensitive fixpoint over the abstract
   domain of {!Absval}: string constant propagation, intent
   allocation-site tracking, taint propagation and permission-check
   tracking happen in a single pass, with optional one-call-site context
   sensitivity (k = 1, the default; k = 0 joins all call sites).

   Two kinds of results are produced:
   - intent facts: every intent the component can send, with its resolved
     action/category/data/target properties, carried extras and their
     taint, the ICC method used, and whether it is a passive result
     intent ([setResult]);
   - path facts: sensitive data-flow paths [source resource -> sink
     resource], including ICC as a source (data read from the incoming
     intent) and as a sink (tainted data attached to an outgoing intent),
     together with the permissions whose dynamic checks guard the sink
     (the basis for code-level permission enforcement detection). *)

open Separ_dalvik
open Separ_android
module SS = Absval.SS
module RS = Absval.RS
module IS = Absval.IS

type key = { kcls : string; kmtd : string; kctx : int }

module KeyH = Hashtbl

(* Mutable per-site intent properties, grown monotonically during the
   fixpoint. *)
type site_props = {
  mutable actions : SS.t;
  mutable actions_top : bool;
  mutable categories : SS.t;
  mutable data_types : SS.t;
  mutable data_schemes : SS.t;
  mutable data_hosts : SS.t;  (* URI authorities from setData *)
  mutable targets : SS.t; (* explicit component class names *)
  mutable extra_keys : SS.t;
  mutable extra_taints : RS.t;
}

let fresh_props () =
  {
    actions = SS.empty;
    actions_top = false;
    categories = SS.empty;
    data_types = SS.empty;
    data_schemes = SS.empty;
    data_hosts = SS.empty;
    targets = SS.empty;
    extra_keys = SS.empty;
    extra_taints = RS.empty;
  }

type state = { regs : Absval.t array; result : Absval.t; reach : bool }

(* Facts reported per component. *)
type intent_fact = {
  if_actions : string list option; (* None: statically unresolved *)
  if_categories : string list;
  if_data_types : string list;
  if_data_schemes : string list;
  if_data_hosts : string list;     (* URI authorities *)
  if_targets : string list;        (* explicit targets, usually <= 1 *)
  if_extra_keys : string list;
  if_extra_taints : Resource.t list;
  if_icc : Api.icc_kind;
  if_wants_result : bool;
  if_passive : bool;               (* a setResult reply *)
  if_forwards_incoming : bool;     (* re-sends the received intent *)
}

type path_fact = {
  pf_source : Resource.t;
  pf_sink : Resource.t;
  pf_guards : Permission.t list; (* permissions whose check guards the sink *)
}

type facts = {
  intents : intent_fact list;
  paths : path_fact list;
  uses_permissions : Permission.t list;
  registers_dynamic_receiver : bool;
  dynamic_filters : (string option * string list) list;
      (* (receiver class, actions) of resolvable dynamic registrations *)
  reads_extra_keys : string list; (* keys read from the incoming intent *)
  analyzed_methods : int;
}

type t = {
  apk : Apk.t;
  k1 : bool;
  site_ids : (key * int, int) Hashtbl.t;
  mutable n_sites : int;
  props : (int, site_props) Hashtbl.t;
  fields : (string, Absval.t) Hashtbl.t;
  entries : (key, Absval.t array) KeyH.t;
  rets : (key, Absval.t) KeyH.t;
  mutable call_sites : ((string * string) * int, int) Hashtbl.t;
      (* static call-site numbering: (caller class, method), instr index *)
  mutable n_call_sites : int;
  arr_cells : (int, Absval.t) Hashtbl.t;
      (* index-insensitive summary cell per array allocation site *)
  mutable read_keys : SS.t; (* extra keys read from the incoming intent *)
  mutable changed : bool;
}

let create ?(k1 = true) apk =
  {
    apk;
    k1;
    site_ids = Hashtbl.create 32;
    n_sites = 0;
    props = Hashtbl.create 32;
    fields = Hashtbl.create 32;
    entries = KeyH.create 32;
    rets = KeyH.create 32;
    call_sites = Hashtbl.create 32;
    n_call_sites = 0;
    arr_cells = Hashtbl.create 16;
    read_keys = SS.empty;
    changed = false;
  }

let site_id t key idx =
  match Hashtbl.find_opt t.site_ids (key, idx) with
  | Some s -> s
  | None ->
      let s = t.n_sites in
      t.n_sites <- s + 1;
      Hashtbl.replace t.site_ids (key, idx) s;
      Hashtbl.replace t.props s (fresh_props ());
      s

(* Array summary cells: one abstract value per allocation site (arrays
   are smashed — index-insensitive, like standard Android analyses). *)
let arr_get t sid =
  Option.value ~default:Absval.bot (Hashtbl.find_opt t.arr_cells sid)

let arr_put t sid v =
  let merged = Absval.join (arr_get t sid) v in
  if not (Absval.equal (arr_get t sid) merged) then begin
    Hashtbl.replace t.arr_cells sid merged;
    t.changed <- true
  end

let props_of t s = Hashtbl.find t.props s

(* Context = static call site (caller location, not caller context), so
   k = 1 call-site sensitivity stays bounded even under recursion. *)
let call_site_id t key idx =
  let site = ((key.kcls, key.kmtd), idx) in
  match Hashtbl.find_opt t.call_sites site with
  | Some c -> c
  | None ->
      let c = t.n_call_sites + 1 in
      t.n_call_sites <- c;
      Hashtbl.replace t.call_sites site c;
      c

(* Monotone set-growing helpers that record whether anything changed. *)
let grow_ss t get set items =
  List.iter
    (fun x ->
      if not (SS.mem x (get ())) then begin
        set (SS.add x (get ()));
        t.changed <- true
      end)
    items

let grow_rs t get set items =
  List.iter
    (fun x ->
      if not (RS.mem x (get ())) then begin
        set (RS.add x (get ()));
        t.changed <- true
      end)
    items

(* Merge the possible strings of [v] into a property set; an unresolvable
   value flips the property's top flag instead. *)
let update_strings t ~top_setter ~get ~set v =
  match Absval.strings v with
  | Some ss -> grow_ss t get set ss
  | None -> if not (top_setter ()) then t.changed <- true

let field_get t f =
  Option.value ~default:Absval.bot (Hashtbl.find_opt t.fields f)

let field_put t f v =
  let old = field_get t f in
  let merged = Absval.join old v in
  if not (Absval.equal old merged) then begin
    Hashtbl.replace t.fields f merged;
    t.changed <- true
  end

let join_ret t key v =
  let old = Option.value ~default:Absval.bot (KeyH.find_opt t.rets key) in
  let merged = Absval.join old v in
  if not (Absval.equal old merged) then begin
    KeyH.replace t.rets key merged;
    t.changed <- true
  end

let ret_of t key =
  Option.value ~default:Absval.bot (KeyH.find_opt t.rets key)

let is_internal t cls = Apk.find_class t.apk cls <> None

let find_internal_method t cls mtd =
  match Apk.find_class t.apk cls with
  | None -> None
  | Some c -> Ir.find_method c mtd

(* Register (or grow) the entry state of an internal method. *)
let join_entry t key (args : Absval.t list) n_params n_regs =
  let arr =
    match KeyH.find_opt t.entries key with
    | Some a -> a
    | None ->
        let a = Array.make (max n_regs 1) Absval.bot in
        KeyH.replace t.entries key a;
        t.changed <- true;
        a
  in
  List.iteri
    (fun i v ->
      if i < n_params && i < Array.length arr then begin
        let merged = Absval.join arr.(i) v in
        if not (Absval.equal arr.(i) merged) then begin
          arr.(i) <- merged;
          t.changed <- true
        end
      end)
    args

(* --- the transfer function -------------------------------------------- *)

let get_reg s r = s.regs.(r)

let set_reg s r v =
  let regs = Array.copy s.regs in
  regs.(r) <- v;
  { s with regs }

let handle_intent_op t s op (args : int list) =
  let arg n = get_reg s (List.nth args n) in
  let sites v = IS.elements v.Absval.sites in
  match op with
  | Api.New_intent -> { s with result = Absval.bot }
  | Api.Get_intent -> { s with result = Absval.incoming_intent }
  | Api.Set_action ->
      let intent = arg 0 and a = arg 1 in
      List.iter
        (fun sid ->
          let p = props_of t sid in
          update_strings t
            ~top_setter:(fun () ->
              let was = p.actions_top in
              p.actions_top <- true;
              was)
            ~get:(fun () -> p.actions)
            ~set:(fun v -> p.actions <- v)
            a)
        (sites intent);
      s
  | Api.Add_category ->
      let intent = arg 0 and c = arg 1 in
      List.iter
        (fun sid ->
          let p = props_of t sid in
          match Absval.strings c with
          | Some ss ->
              grow_ss t (fun () -> p.categories) (fun v -> p.categories <- v) ss
          | None -> ())
        (sites intent);
      s
  | Api.Set_data_type ->
      let intent = arg 0 and d = arg 1 in
      List.iter
        (fun sid ->
          let p = props_of t sid in
          match Absval.strings d with
          | Some ss ->
              grow_ss t (fun () -> p.data_types) (fun v -> p.data_types <- v) ss
          | None -> ())
        (sites intent);
      s
  | Api.Set_data_scheme ->
      (* setData takes a URI: split "scheme://host" into its parts *)
      let intent = arg 0 and d = arg 1 in
      List.iter
        (fun sid ->
          let p = props_of t sid in
          match Absval.strings d with
          | Some ss ->
              List.iter
                (fun uri ->
                  let scheme, host = Intent.split_uri uri in
                  grow_ss t
                    (fun () -> p.data_schemes)
                    (fun v -> p.data_schemes <- v)
                    [ scheme ];
                  match host with
                  | Some h ->
                      grow_ss t
                        (fun () -> p.data_hosts)
                        (fun v -> p.data_hosts <- v)
                        [ h ]
                  | None -> ())
                ss
          | None -> ())
        (sites intent);
      s
  | Api.Set_class_name ->
      let intent = arg 0 and c = arg 1 in
      List.iter
        (fun sid ->
          let p = props_of t sid in
          match Absval.strings c with
          | Some ss -> grow_ss t (fun () -> p.targets) (fun v -> p.targets <- v) ss
          | None -> ())
        (sites intent);
      s
  | Api.Put_extra ->
      let intent = arg 0 and k = arg 1 and v = arg 2 in
      List.iter
        (fun sid ->
          let p = props_of t sid in
          (match Absval.strings k with
          | Some ss ->
              grow_ss t (fun () -> p.extra_keys) (fun v -> p.extra_keys <- v) ss
          | None -> ());
          grow_rs t
            (fun () -> p.extra_taints)
            (fun x -> p.extra_taints <- x)
            (Absval.taint_list v))
        (sites intent);
      s
  | Api.Get_extra | Api.Get_all_extras ->
      let intent = arg 0 in
      (if intent.Absval.incoming && List.length args > 1 then
         match Absval.strings (arg 1) with
         | Some keys ->
             List.iter
               (fun k ->
                 if not (SS.mem k t.read_keys) then begin
                   t.read_keys <- SS.add k t.read_keys;
                   t.changed <- true
                 end)
               keys
         | None -> ());
      let taints =
        List.fold_left
          (fun acc sid -> RS.union acc (props_of t sid).extra_taints)
          RS.empty (sites intent)
      in
      let taints =
        if intent.Absval.incoming then RS.add Resource.Icc taints else taints
      in
      { s with result = { Absval.str_top = true;
                          strs = SS.empty;
                          sites = IS.empty;
                          incoming = false;
                          taints;
                          perm_checks = SS.empty } }

let handle_invoke t key s idx (mref : Api.method_ref) (args : int list) =
  let arg_vals = List.map (get_reg s) args in
  match Api.classify mref with
  | Api.Source r ->
      { s with result = { (Absval.of_taints [ r ]) with Absval.str_top = true } }
  | Api.Sink _ -> { s with result = Absval.bot }
  | Api.Icc (Api.Bind_service | Api.Provider_query) ->
      (* binder- and cursor-mediated results: data produced by another
         component, i.e. ICC-sourced *)
      {
        s with
        result =
          { (Absval.of_taints [ Resource.Icc ]) with Absval.str_top = true };
      }
  | Api.Icc _ -> { s with result = Absval.bot }
  | Api.Intent_op op -> handle_intent_op t s op args
  | Api.Callback_reg ->
      (* the named methods of this class become additional roots: the
         framework may invoke them on user interaction *)
      (match args with
      | h :: _ -> (
          match Absval.strings (get_reg s h) with
          | Some handlers ->
              List.iter
                (fun mtd ->
                  match find_internal_method t key.kcls mtd with
                  | Some m ->
                      let cb_key = { kcls = key.kcls; kmtd = mtd; kctx = 0 } in
                      join_entry t cb_key [] m.Ir.n_params m.Ir.n_regs
                  | None -> ())
                handlers
          | None -> ())
      | [] -> ());
      { s with result = Absval.bot }
  | Api.Broadcast_abort -> { s with result = Absval.bot }
  | Api.Permission_check -> (
      match args with
      | [] -> { s with result = Absval.bot }
      | p :: _ -> (
          match Absval.strings (get_reg s p) with
          | Some perms ->
              {
                s with
                result =
                  List.fold_left
                    (fun acc perm -> Absval.join acc (Absval.of_perm_check perm))
                    Absval.bot perms;
              }
          | None -> { s with result = Absval.bot }))
  | Api.Other ->
      if is_internal t mref.Api.cls then begin
        match find_internal_method t mref.Api.cls mref.Api.mtd with
        | None -> { s with result = Absval.bot }
        | Some m ->
            let ctx = if t.k1 then call_site_id t key idx else 0 in
            let callee =
              { kcls = mref.Api.cls; kmtd = mref.Api.mtd; kctx = ctx }
            in
            join_entry t callee arg_vals m.Ir.n_params m.Ir.n_regs;
            { s with result = ret_of t callee }
      end
      else { s with result = Absval.bot }

let transfer t key _i instr (s : state) : state =
  if not s.reach then s
  else
    match instr with
    | Ir.Const (r, Ir.Cstr str) -> set_reg s r (Absval.of_string str)
    | Ir.Const (r, _) -> set_reg s r Absval.bot
    | Ir.Move (d, src) -> set_reg s d (get_reg s src)
    | Ir.New_instance (r, cls) when cls = Api.c_intent ->
        set_reg s r (Absval.of_site (site_id t key _i))
    | Ir.New_instance (r, _) -> set_reg s r Absval.bot
    | Ir.Invoke (_, mref, args) -> handle_invoke t key s _i mref args
    | Ir.Move_result r -> set_reg s r s.result
    | Ir.Iget (d, _o, f) -> set_reg s d (field_get t f)
    | Ir.Iput (src, _o, f) ->
        field_put t f (get_reg s src);
        s
    | Ir.Sget (d, f) -> set_reg s d (field_get t f)
    | Ir.Sput (src, f) ->
        field_put t f (get_reg s src);
        s
    | Ir.New_array (r, _) -> set_reg s r (Absval.of_site (site_id t key _i))
    | Ir.Aput (src, arr, _) ->
        IS.iter (fun sid -> arr_put t sid (get_reg s src)) (get_reg s arr).Absval.sites;
        s
    | Ir.Aget (d, arr, _) ->
        set_reg s d
          (IS.fold
             (fun sid acc -> Absval.join acc (arr_get t sid))
             (get_reg s arr).Absval.sites Absval.bot)
    | Ir.If_eqz _ | Ir.If_nez _ | Ir.Goto _ | Ir.Label _ | Ir.Nop -> s
    | Ir.Return (Some r) ->
        join_ret t key (get_reg s r);
        s
    | Ir.Return None -> s

(* --- fixpoint over all registered methods ------------------------------ *)

let state_lattice n_regs : state Dataflow.lattice =
  {
    bot = { regs = Array.make (max n_regs 1) Absval.bot;
            result = Absval.bot;
            reach = false };
    join =
      (fun a b ->
        if not a.reach then b
        else if not b.reach then a
        else
          {
            regs = Array.init (Array.length a.regs)
                     (fun i -> Absval.join a.regs.(i) b.regs.(i));
            result = Absval.join a.result b.result;
            reach = true;
          });
    equal =
      (fun a b ->
        a.reach = b.reach
        && (not a.reach
           || (Absval.equal a.result b.result
              && Array.for_all2 Absval.equal a.regs b.regs)));
  }

let analyze_method t key (m : Ir.meth) entry_regs : state array =
  let cfg = Cfg.make m in
  let lat = state_lattice m.Ir.n_regs in
  let entry =
    {
      regs =
        Array.init (max m.Ir.n_regs 1) (fun i ->
            if i < Array.length entry_regs then entry_regs.(i) else Absval.bot);
      result = Absval.bot;
      reach = true;
    }
  in
  Dataflow.forward lat ~entry ~transfer:(transfer t key) cfg

(* Run the global fixpoint from the given roots.  Returns the final
   in-states per method key. *)
let run t (roots : (key * Ir.meth * Absval.t array) list) =
  List.iter
    (fun (key, m, entry_regs) ->
      join_entry t key (Array.to_list entry_regs) m.Ir.n_params m.Ir.n_regs)
    roots;
  let states = KeyH.create 16 in
  let rounds = ref 0 in
  let continue = ref true in
  while !continue && !rounds < 100 do
    incr rounds;
    t.changed <- false;
    let keys = KeyH.fold (fun k _ acc -> k :: acc) t.entries [] in
    List.iter
      (fun key ->
        match find_internal_method t key.kcls key.kmtd with
        | None -> ()
        | Some m ->
            let entry_regs = KeyH.find t.entries key in
            let st = analyze_method t key m entry_regs in
            KeyH.replace states key st)
      keys;
    if not t.changed then continue := false
  done;
  states

(* --- post-pass: fact extraction ---------------------------------------- *)

(* Permissions whose dynamic check guards instruction [idx]: cutting the
   "granted" edges of every conditional branching on that permission's
   check result makes [idx] unreachable. *)
let guards_of_instr (states : state array) (cfg : Cfg.t) idx =
  let n = Cfg.n_instrs cfg in
  let perms = ref SS.empty in
  for i = 0 to n - 1 do
    match Cfg.instr cfg i with
    | Ir.If_eqz (r, _) | Ir.If_nez (r, _) ->
        if states.(i).reach then
          perms := SS.union !perms states.(i).regs.(r).Absval.perm_checks
    | _ -> ()
  done;
  SS.fold
    (fun perm acc ->
      let labels = Ir.label_table cfg.Cfg.meth in
      let cut i j =
        match Cfg.instr cfg i with
        | Ir.If_eqz (r, _) when SS.mem perm states.(i).regs.(r).Absval.perm_checks
          ->
            (* jumps away when denied; granted path is the fall-through *)
            j = i + 1
        | Ir.If_nez (r, l) when SS.mem perm states.(i).regs.(r).Absval.perm_checks
          ->
            (* jumps when granted *)
            j = Hashtbl.find labels l
        | _ -> false
      in
      let reach = Cfg.reachable ~cut cfg in
      if not reach.(idx) then SS.add perm acc else acc)
    !perms SS.empty

let intent_fact_of_site p icc =
  {
    if_actions = (if p.actions_top then None else Some (SS.elements p.actions));
    if_categories = SS.elements p.categories;
    if_data_types = SS.elements p.data_types;
    if_data_schemes = SS.elements p.data_schemes;
    if_data_hosts = SS.elements p.data_hosts;
    if_targets = SS.elements p.targets;
    if_extra_keys = SS.elements p.extra_keys;
    if_extra_taints = RS.elements p.extra_taints;
    if_icc = icc;
    if_wants_result = icc = Api.Start_activity_for_result;
    if_passive = icc = Api.Set_result;
    if_forwards_incoming = false;
  }

let forwarded_intent_fact icc =
  {
    if_actions = None;
    if_categories = [];
    if_data_types = [];
    if_data_schemes = [];
    if_data_hosts = [];
    if_targets = [];
    if_extra_keys = [];
    if_extra_taints = [ Resource.Icc ];
    if_icc = icc;
    if_wants_result = icc = Api.Start_activity_for_result;
    if_passive = icc = Api.Set_result;
    if_forwards_incoming = true;
  }

let extract_facts t (states : (key, state array) KeyH.t) : facts =
  let intents = ref [] in
  let paths = ref [] in
  let uses = ref SS.empty in
  let dyn = ref false in
  let dyn_filters = ref [] in
  let add_path src snk guards =
    let fact = { pf_source = src; pf_sink = snk; pf_guards = guards } in
    if not (List.mem fact !paths) then paths := fact :: !paths
  in
  (* With k = 1, each context corresponds to a unique call site, so the
     permission checks guarding the call site also guard everything in the
     callee: propagate them transitively into the callee's facts. *)
  let callers = Hashtbl.create 16 in
  Hashtbl.iter
    (fun ((ccls, cmtd), idx) ctx ->
      Hashtbl.replace callers ctx (ccls, cmtd, idx))
    t.call_sites;
  let caller_keys_of ccls cmtd =
    KeyH.fold
      (fun k _ acc -> if k.kcls = ccls && k.kmtd = cmtd then k :: acc else acc)
      states []
  in
  let entry_guard_memo = Hashtbl.create 16 in
  let rec entry_guards key =
    match Hashtbl.find_opt entry_guard_memo key with
    | Some g -> g
    | None ->
        Hashtbl.replace entry_guard_memo key SS.empty (* break cycles *);
        let g =
          if key.kctx = 0 then SS.empty
          else
            match Hashtbl.find_opt callers key.kctx with
            | None -> SS.empty
            | Some (ccls, cmtd, idx) -> (
                match find_internal_method t ccls cmtd with
                | None -> SS.empty
                | Some m ->
                    let cfg = Cfg.make m in
                    (* the callee is guarded only if every calling context
                       guards the call site *)
                    let caller_keys = caller_keys_of ccls cmtd in
                    List.fold_left
                      (fun acc ck ->
                        let here =
                          match KeyH.find_opt states ck with
                          | Some st ->
                              SS.union
                                (guards_of_instr st cfg idx)
                                (entry_guards ck)
                          | None -> SS.empty
                        in
                        match acc with
                        | None -> Some here
                        | Some g -> Some (SS.inter g here))
                      None caller_keys
                    |> Option.value ~default:SS.empty)
        in
        Hashtbl.replace entry_guard_memo key g;
        g
  in
  KeyH.iter
    (fun key st ->
      match find_internal_method t key.kcls key.kmtd with
      | None -> ()
      | Some m ->
          let cfg = Cfg.make m in
          Array.iteri
            (fun idx instr ->
              if idx < Array.length st && st.(idx).reach then
                match instr with
                | Ir.Invoke (_, mref, args) -> (
                    (match Api.permission_of mref with
                    | Some p -> uses := SS.add p !uses
                    | None -> ());
                    match Api.classify mref with
                    | Api.Sink r ->
                        let guards =
                          SS.elements
                            (SS.union
                               (guards_of_instr st cfg idx)
                               (entry_guards key))
                        in
                        List.iter
                          (fun a ->
                            List.iter
                              (fun taint -> add_path taint r guards)
                              (Absval.taint_list (get_reg st.(idx) a)))
                          args
                    | Api.Icc Api.Register_receiver ->
                        dyn := true;
                        (match args with
                        | intent_reg :: _ ->
                            let v = get_reg st.(idx) intent_reg in
                            IS.iter
                              (fun sid ->
                                let p = props_of t sid in
                                if not p.actions_top then
                                  dyn_filters :=
                                    ( (match SS.elements p.targets with
                                      | [ tgt ] -> Some tgt
                                      | _ -> None),
                                      SS.elements p.actions )
                                    :: !dyn_filters)
                              v.Absval.sites
                        | [] -> ())
                    | Api.Icc icc -> (
                        match args with
                        | [] -> ()
                        | intent_reg :: _ ->
                            let v = get_reg st.(idx) intent_reg in
                            let guards =
                              SS.elements
                                (SS.union
                                   (guards_of_instr st cfg idx)
                                   (entry_guards key))
                            in
                            IS.iter
                              (fun sid ->
                                let p = props_of t sid in
                                intents :=
                                  intent_fact_of_site p icc :: !intents;
                                (* tainted extras leaving via ICC *)
                                RS.iter
                                  (fun taint ->
                                    add_path taint Resource.Icc guards)
                                  p.extra_taints)
                              v.Absval.sites;
                            if v.Absval.incoming then begin
                              intents := forwarded_intent_fact icc :: !intents;
                              add_path Resource.Icc Resource.Icc guards
                            end)
                    | _ -> ())
                | _ -> ())
            m.Ir.body)
    states;
  {
    intents = List.rev !intents;
    paths = List.rev !paths;
    uses_permissions = SS.elements !uses;
    registers_dynamic_receiver = !dyn;
    dynamic_filters = List.rev !dyn_filters;
    reads_extra_keys = SS.elements t.read_keys;
    analyzed_methods = KeyH.length states;
  }

let empty_facts =
  {
    intents = [];
    paths = [];
    uses_permissions = [];
    registers_dynamic_receiver = false;
    dynamic_filters = [];
    reads_extra_keys = [];
    analyzed_methods = 0;
  }

(* Analyze one component of the app: run the fixpoint from its lifecycle
   entry points and extract facts.  With [all_methods], every method of
   the component class is treated as a root — i.e. no entry-point
   reachability pruning, the behaviour of baseline tools that analyze
   whole classes (facts in dead code are then reported). *)
let analyze_component ?(k1 = true) ?(all_methods = false) apk
    (comp : Component.t) : facts =
  let t = create ~k1 apk in
  match Apk.component_class apk comp with
  | None -> empty_facts
  | Some cls ->
      let root_of (m : Ir.meth) =
        let key = { kcls = cls.Ir.cname; kmtd = m.Ir.mname; kctx = 0 } in
        let entry_regs = Array.make (max m.Ir.n_regs 1) Absval.bot in
        if m.Ir.n_params >= 1 then entry_regs.(0) <- Absval.incoming_intent;
        (key, m, entry_regs)
      in
      let roots =
        if all_methods then List.map root_of cls.Ir.methods
        else
          List.filter_map
            (fun entry -> Option.map root_of (Ir.find_method cls entry))
            (Apk.entry_methods comp.Component.kind)
      in
      let states = run t roots in
      extract_facts t states
