(** A generic forward worklist dataflow engine over the instruction-level
    CFG.  Returns the state *before* each instruction. *)

type 'a lattice = {
  bot : 'a;
  join : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
}

(** [forward lat ~entry ~transfer cfg]: [entry] is the state before
    instruction 0; [transfer i instr s] the state after executing
    [instr] at index [i] in state [s]. *)
val forward :
  'a lattice ->
  entry:'a ->
  transfer:(int -> Separ_dalvik.Ir.instr -> 'a -> 'a) ->
  Cfg.t ->
  'a array
