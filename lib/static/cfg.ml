(* Instruction-level control-flow graph of an IR method: successor lists
   over instruction indices, plus reachability with optional edge cuts
   (used by the permission-guard analysis, which asks whether a protected
   call remains reachable when the "granted" branches are removed). *)

open Separ_dalvik

type t = {
  meth : Ir.meth;
  succs : int list array;
}

let successors_of (m : Ir.meth) =
  let labels = Ir.label_table m in
  let n = Array.length m.Ir.body in
  Array.init n (fun i ->
      match m.Ir.body.(i) with
      | Ir.Goto l -> [ Hashtbl.find labels l ]
      | Ir.If_eqz (_, l) | Ir.If_nez (_, l) ->
          let fall = if i + 1 < n then [ i + 1 ] else [] in
          Hashtbl.find labels l :: fall
      | Ir.Return _ -> []
      | _ -> if i + 1 < n then [ i + 1 ] else [])

let make meth = { meth; succs = successors_of meth }

let n_instrs t = Array.length t.meth.Ir.body
let instr t i = t.meth.Ir.body.(i)
let succs t i = t.succs.(i)

(* Reachable instruction indices from the entry, not traversing edges for
   which [cut] holds ([cut] receives source and destination index). *)
let reachable ?(cut = fun _ _ -> false) t =
  let n = n_instrs t in
  let seen = Array.make n false in
  let rec go i =
    if i < n && not seen.(i) then begin
      seen.(i) <- true;
      List.iter (fun j -> if not (cut i j) then go j) t.succs.(i)
    end
  in
  if n > 0 then go 0;
  seen

(* Predecessor lists, computed on demand. *)
let preds t =
  let n = n_instrs t in
  let p = Array.make n [] in
  Array.iteri (fun i js -> List.iter (fun j -> p.(j) <- i :: p.(j)) js) t.succs;
  p
