(** The abstract value domain of the combined analysis: each register and
    heap cell simultaneously tracks possible string constants (with a top
    element), intent/array allocation sites, whether it may be the
    component's incoming intent, its taint set, and the permission checks
    whose result it may hold.  All facets join by union; the product is a
    finite-height lattice. *)

module SS : Set.S with type elt = string

module RS : Set.S with type elt = Separ_android.Resource.t

module IS : Set.S with type elt = int

(** Cap on tracked string sets before collapsing to top. *)
val max_strings : int

type t = {
  strs : SS.t;
  str_top : bool;
  sites : IS.t;
  incoming : bool;
  taints : RS.t;
  perm_checks : SS.t;
}

val bot : t
val of_string : string -> t
val str_top : t
val of_site : int -> t
val incoming_intent : t
val of_taints : Separ_android.Resource.t list -> t
val of_perm_check : string -> t
val join : t -> t -> t
val equal : t -> t -> bool

(** Resolved strings; [None] when statically unknown. *)
val strings : t -> string list option

val add_taints : t -> Separ_android.Resource.t list -> t
val taint_list : t -> Separ_android.Resource.t list
val is_bot : t -> bool
