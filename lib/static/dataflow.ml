(* A generic forward worklist dataflow engine over the instruction-level
   CFG.  The client supplies the lattice (bottom, join, equality) and the
   transfer function; the engine iterates to a fixpoint and returns the
   state *before* each instruction. *)

type 'a lattice = {
  bot : 'a;
  join : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
}

(* [entry] is the state before instruction 0.  [transfer i instr s] is the
   state after executing [instr] (at index [i]) in state [s]. *)
let forward (lat : 'a lattice) ~entry ~transfer (cfg : Cfg.t) : 'a array =
  let n = Cfg.n_instrs cfg in
  if n = 0 then [||]
  else begin
    let inb = Array.make n lat.bot in
    inb.(0) <- entry;
    let dirty = Array.make n false in
    dirty.(0) <- true;
    let queue = Queue.create () in
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let i = Queue.take queue in
      dirty.(i) <- false;
      let out = transfer i (Cfg.instr cfg i) inb.(i) in
      List.iter
        (fun j ->
          let merged = lat.join inb.(j) out in
          if not (lat.equal merged inb.(j)) then begin
            inb.(j) <- merged;
            if not dirty.(j) then begin
              dirty.(j) <- true;
              Queue.add j queue
            end
          end)
        (Cfg.succs cfg i)
    done;
    inb
  end
