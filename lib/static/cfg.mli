(** Instruction-level control-flow graph of an IR method, with
    reachability under optional edge cuts (the permission-guard analysis
    asks whether a protected call survives removing "granted" edges). *)

open Separ_dalvik

type t = { meth : Ir.meth; succs : int list array }

val successors_of : Ir.meth -> int list array
val make : Ir.meth -> t
val n_instrs : t -> int
val instr : t -> int -> Ir.instr
val succs : t -> int -> int list

(** Reachable instructions from entry, skipping edges for which [cut src
    dst] holds. *)
val reachable : ?cut:(int -> int -> bool) -> t -> bool array

val preds : t -> int list array
