(* The abstract value domain of the combined analysis: for each register
   (and heap location) we track, simultaneously,

   - the set of string constants it may hold (string constant propagation,
     with a top element for unbounded sets),
   - the intent allocation sites it may point to,
   - whether it may be the component's *incoming* intent,
   - the taint set: the sensitive resources its contents derive from, and
   - the permission checks whose result it may hold (feeding the
     permission-guard analysis).

   All facets join by union, so the product is a finite-height lattice
   (strings are capped at [max_strings]). *)

module SS = Set.Make (String)

module RS = Set.Make (struct
  type t = Separ_android.Resource.t

  let compare = Separ_android.Resource.compare
end)

module IS = Set.Make (Int)

let max_strings = 8

type t = {
  strs : SS.t;
  str_top : bool;
  sites : IS.t;        (* intent allocation sites (global numbering) *)
  incoming : bool;     (* may be the intent that started the component *)
  taints : RS.t;
  perm_checks : SS.t;  (* permission names whose check result this holds *)
}

let bot =
  {
    strs = SS.empty;
    str_top = false;
    sites = IS.empty;
    incoming = false;
    taints = RS.empty;
    perm_checks = SS.empty;
  }

let of_string s = { bot with strs = SS.singleton s }
let str_top = { bot with str_top = true }
let of_site i = { bot with sites = IS.singleton i }
let incoming_intent = { bot with incoming = true }
let of_taints rs = { bot with taints = RS.of_list rs }
let of_perm_check p = { bot with perm_checks = SS.singleton p }

let join a b =
  let strs = SS.union a.strs b.strs in
  let overflow = SS.cardinal strs > max_strings in
  {
    strs = (if overflow then SS.empty else strs);
    str_top = a.str_top || b.str_top || overflow;
    sites = IS.union a.sites b.sites;
    incoming = a.incoming || b.incoming;
    taints = RS.union a.taints b.taints;
    perm_checks = SS.union a.perm_checks b.perm_checks;
  }

let equal a b =
  SS.equal a.strs b.strs && a.str_top = b.str_top
  && IS.equal a.sites b.sites
  && a.incoming = b.incoming
  && RS.equal a.taints b.taints
  && SS.equal a.perm_checks b.perm_checks

(* The resolved strings: [None] when the value is statically unknown. *)
let strings v = if v.str_top then None else Some (SS.elements v.strs)

let add_taints v rs = { v with taints = RS.union v.taints (RS.of_list rs) }
let taint_list v = RS.elements v.taints
let is_bot v = equal v bot
