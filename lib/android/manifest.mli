(** The application manifest: package identity, requested permissions and
    component declarations — the architectural information AME reads
    first. *)

type t = {
  package : string;
  uses_permissions : Permission.t list;
  components : Component.t list;
}

(** @raise Invalid_argument on duplicate component names. *)
val make :
  package:string ->
  ?uses_permissions:Permission.t list ->
  ?components:Component.t list ->
  unit ->
  t

val component : t -> string -> Component.t option
val has_permission : t -> Permission.t -> bool
val public_components : t -> Component.t list
val pp : Format.formatter -> t -> unit
