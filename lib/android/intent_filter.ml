(* Intent filters and the intent resolution test.  The matching rules
   follow the Android framework documentation: an implicit intent is
   delivered to a component iff one of its filters passes the action,
   category and data tests. *)

type t = {
  actions : string list;       (* non-empty for a useful filter *)
  categories : string list;
  data_types : string list;
  data_schemes : string list;
  data_hosts : string list;    (* URI authorities; meaningful with schemes *)
  priority : int;              (* ordered-broadcast delivery priority *)
}

let make ?(actions = []) ?(categories = []) ?(data_types = [])
    ?(data_schemes = []) ?(data_hosts = []) ?(priority = 0) () =
  { actions; categories; data_types; data_schemes; data_hosts; priority }

(* Action test: the intent's action must be listed by the filter; an
   intent with no action passes as long as the filter has some action. *)
let action_test (intent : Intent.t) t =
  match intent.Intent.action with
  | None -> t.actions <> []
  | Some a -> List.mem a t.actions

(* Category test: every category in the intent must appear in the
   filter (the filter may list more). *)
let category_test (intent : Intent.t) t =
  List.for_all (fun c -> List.mem c t.categories) intent.Intent.categories

(* Authority test: a filter listing hosts only accepts intents whose URI
   names one of them; a filter without hosts accepts any authority. *)
let host_test (intent : Intent.t) t =
  t.data_hosts = []
  ||
  match intent.Intent.data_host with
  | Some h -> List.mem h t.data_hosts
  | None -> false

(* Data test, per the four cases of the framework documentation, refined
   by the authority test when the filter constrains hosts.  The
   authority table is only consulted for intents that actually carry a
   URI: a MIME-type-only intent (and the no-data case) never reaches it,
   so a filter listing hosts must not reject such intents on the host
   constraint alone. *)
let data_test (intent : Intent.t) t =
  let uri_present =
    intent.Intent.data_scheme <> None || intent.Intent.data_host <> None
  in
  (match (intent.Intent.data_scheme, intent.Intent.data_type) with
  | None, None -> t.data_schemes = [] && t.data_types = []
  | Some s, None -> List.mem s t.data_schemes && t.data_types = []
  | None, Some ty -> List.mem ty t.data_types && t.data_schemes = []
  | Some s, Some ty -> List.mem s t.data_schemes && List.mem ty t.data_types)
  && ((not uri_present) || host_test intent t)

let matches ~(intent : Intent.t) t =
  action_test intent t && category_test intent t && data_test intent t

let pp ppf t =
  Fmt.pf ppf "Filter{actions=[%a] categories=[%a]}"
    Fmt.(list ~sep:(any ",") string)
    t.actions
    Fmt.(list ~sep:(any ",") string)
    t.categories
