(* The application manifest: package identity, requested permissions and
   component declarations — the architectural information AME reads
   first. *)

type t = {
  package : string;
  uses_permissions : Permission.t list; (* permissions the app requests *)
  components : Component.t list;
}

let make ~package ?(uses_permissions = []) ?(components = []) () =
  let names = List.map (fun c -> c.Component.name) components in
  let dup =
    List.exists
      (fun n -> List.length (List.filter (( = ) n) names) > 1)
      names
  in
  if dup then invalid_arg ("Manifest.make: duplicate component in " ^ package);
  { package; uses_permissions; components }

let component t name =
  List.find_opt (fun c -> c.Component.name = name) t.components

let has_permission t p = List.mem p t.uses_permissions

let public_components t = List.filter Component.is_public t.components

let pp ppf t =
  Fmt.pf ppf "@[<v>package %s@,permissions: %a@,%a@]" t.package
    Fmt.(list ~sep:(any ", ") Permission.pp)
    t.uses_permissions
    Fmt.(list ~sep:cut Component.pp)
    t.components
