(* Application components, the four Android kinds.  Whether a component
   is public (reachable by other apps) follows the platform rule: the
   [exported] attribute if set, otherwise the presence of an intent
   filter.  Content providers cannot declare intent filters. *)

type kind = Activity | Service | Receiver | Provider

let kind_to_string = function
  | Activity -> "Activity"
  | Service -> "Service"
  | Receiver -> "Receiver"
  | Provider -> "Provider"

type t = {
  name : string;                        (* class name, unique in the app *)
  kind : kind;
  exported : bool option;               (* manifest attribute *)
  permission : Permission.t option;     (* required of callers *)
  intent_filters : Intent_filter.t list;
}

let make ~name ~kind ?exported ?permission ?(intent_filters = []) () =
  (match kind with
  | Provider when intent_filters <> [] ->
      invalid_arg "Component.make: content providers cannot declare filters"
  | _ -> ());
  { name; kind; exported; permission; intent_filters }

(* The platform default: exported iff the attribute says so, else iff the
   component declares at least one intent filter. *)
let is_public t =
  match t.exported with
  | Some b -> b
  | None -> t.intent_filters <> []

let pp ppf t =
  Fmt.pf ppf "%s %s%s" (kind_to_string t.kind) t.name
    (if is_public t then " (public)" else "")
