(* Intents: Android's application-level messages.  This is the structural
   representation shared by the manifest model, the extractor and the
   simulated runtime; extra values carry a taint set of the resources
   their contents were derived from, which is what both the analysis and
   the enforcement layer reason about. *)

type extra = {
  key : string;
  value : string;
  taint : Resource.t list; (* resources this value is derived from *)
}

type t = {
  target : string option; (* explicit target: component class name *)
  action : string option;
  categories : string list;
  data_type : string option;   (* MIME type *)
  data_scheme : string option; (* URI scheme *)
  data_host : string option;   (* URI authority; requires a scheme *)
  extras : extra list;
  wants_result : bool;         (* sent via startActivityForResult *)
}

let make ?target ?action ?(categories = []) ?data_type ?data_scheme ?data_host
    ?(extras = []) ?(wants_result = false) () =
  {
    target; action; categories; data_type; data_scheme; data_host; extras;
    wants_result;
  }

(* Parse a data URI of the form "scheme://host" (or a bare scheme). *)
let split_uri uri =
  match String.index_opt uri ':' with
  | Some i
    when i + 2 < String.length uri
         && String.sub uri i 3 = "://" ->
      let scheme = String.sub uri 0 i in
      let rest = String.sub uri (i + 3) (String.length uri - i - 3) in
      let host =
        match String.index_opt rest '/' with
        | Some j -> String.sub rest 0 j
        | None -> rest
      in
      (scheme, if host = "" then None else Some host)
  | _ -> (uri, None)

let empty = make ()

let is_explicit t = t.target <> None
let is_implicit t = t.target = None

let put_extra t ~key ~value ~taint =
  { t with extras = { key; value; taint } :: t.extras }

let get_extra t key = List.find_opt (fun e -> e.key = key) t.extras

(* All resources carried by the intent's extras. *)
let carried_resources t =
  List.sort_uniq Resource.compare (List.concat_map (fun e -> e.taint) t.extras)

let pp ppf t =
  Fmt.pf ppf "Intent{%a%a%a extras=[%a]}"
    Fmt.(option (fun ppf -> pf ppf "target=%s "))
    t.target
    Fmt.(option (fun ppf -> pf ppf "action=%s "))
    t.action
    Fmt.(list ~sep:(any ",") string)
    t.categories
    Fmt.(list ~sep:(any ";") (fun ppf e -> pf ppf "%s" e.key))
    t.extras
