(** Android permission identifiers (plain strings, as in the platform)
    and their protection levels. *)

type t = string

val pp : Format.formatter -> t -> unit

(** {1 Dangerous permissions} *)

val access_fine_location : t
val read_phone_state : t
val read_contacts : t
val read_calendar : t
val read_sms : t
val send_sms : t
val write_sms : t
val read_call_log : t
val camera : t
val record_audio : t
val get_accounts : t
val read_history_bookmarks : t
val read_external_storage : t
val write_external_storage : t

(** {1 Normal permissions} *)

val internet : t
val vibrate : t
val wake_lock : t
val access_network_state : t

type protection = Normal | Dangerous | Signature

val dangerous : t list
val normal : t list

(** Unknown permissions classify as [Signature]. *)
val protection : t -> protection

val all : t list

(** Short name, e.g. ["SEND_SMS"]. *)
val short : t -> string
