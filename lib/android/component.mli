(** Application components.  Whether a component is public follows the
    platform rule: the [exported] attribute if set, otherwise the
    presence of an intent filter. *)

type kind = Activity | Service | Receiver | Provider

val kind_to_string : kind -> string

type t = {
  name : string;                    (** class name, unique in the app *)
  kind : kind;
  exported : bool option;           (** manifest attribute *)
  permission : Permission.t option; (** required of callers *)
  intent_filters : Intent_filter.t list;
}

(** @raise Invalid_argument if a provider declares intent filters. *)
val make :
  name:string ->
  kind:kind ->
  ?exported:bool ->
  ?permission:Permission.t ->
  ?intent_filters:Intent_filter.t list ->
  unit ->
  t

(** Reachable by other apps. *)
val is_public : t -> bool

val pp : Format.formatter -> t -> unit
