(** Canonical permission-required resources, after Holavanalli et al.'s
    flow-permission taxonomy: thirteen sensitive sources, five observable
    destinations, and the ICC pseudo-resource that augments both sets. *)

type t =
  | Location
  | Imei
  | Phone_number
  | Contacts
  | Calendar
  | Sms_inbox
  | Call_log
  | Camera_data
  | Microphone
  | Accounts
  | Browser_history
  | Sdcard_data
  | Device_info
  | Network
  | Sms
  | Sdcard
  | Log
  | Display
  | Icc

(** The thirteen sources plus [Icc]. *)
val sources : t list

(** The five destinations plus [Icc]. *)
val sinks : t list

(** Every resource exactly once, in declaration order. *)
val all : t list

(** [List.length all]. *)
val count : int

(** Dense index in [0 .. count-1] (declaration order), small enough
    that a set of resources fits in one [int] bitset. *)
val index : t -> int

val is_source : t -> bool
val is_sink : t -> bool
val to_string : t -> string
val of_string : string -> t option
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** The permission guarding direct access, if any. *)
val permission : t -> Permission.t option
