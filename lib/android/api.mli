(** The framework API surface recognised by the analyses: (class, method)
    pairs classified as sources, sinks, ICC entry points, intent
    construction helpers, permission checks or callback registrations,
    plus the PScout-style API → permission map.  AME, the taint analysis
    and the simulated runtime all dispatch on this registry, so the three
    layers agree on what each call means. *)

type method_ref = { cls : string; mtd : string }

val mref : string -> string -> method_ref

type icc_kind =
  | Start_activity
  | Start_activity_for_result
  | Start_service
  | Bind_service
  | Send_broadcast
  | Set_result            (** reply to startActivityForResult *)
  | Provider_query
  | Provider_insert
  | Provider_update
  | Provider_delete
  | Register_receiver     (** dynamic broadcast-receiver registration *)

val icc_kind_to_string : icc_kind -> string

type intent_op =
  | New_intent
  | Set_action
  | Add_category
  | Set_data_type
  | Set_data_scheme
  | Set_class_name
  | Put_extra
  | Get_extra
  | Get_all_extras
  | Get_intent

type kind =
  | Source of Resource.t
  | Sink of Resource.t
  | Icc of icc_kind
  | Intent_op of intent_op
  | Permission_check
  | Callback_reg  (** registering a UI event handler by method name *)
  | Broadcast_abort  (** consume an ordered broadcast *)
  | Other

(** {1 Framework class names} *)

val c_context : string
val c_activity : string
val c_intent : string
val c_location : string
val c_telephony : string
val c_sms_manager : string
val c_contacts : string
val c_calendar : string
val c_sms_reader : string
val c_call_log : string
val c_camera : string
val c_audio : string
val c_accounts : string
val c_browser : string
val c_storage : string
val c_build : string
val c_http : string
val c_log : string
val c_notification : string
val c_resolver : string
val c_view : string

(** {1 The registry} *)

val sources : (method_ref * Resource.t) list
val sinks : (method_ref * Resource.t) list
val icc_methods : (method_ref * icc_kind) list
val intent_ops : (method_ref * intent_op) list
val permission_checks : method_ref list
val callback_registrations : method_ref list
val broadcast_aborts : method_ref list

val classify : method_ref -> kind

(** The permission required to invoke the API, if any. *)
val permission_of : method_ref -> Permission.t option

(** Whether an app holding [perms] may invoke the API directly. *)
val allowed : Permission.t list -> method_ref -> bool

val is_icc : method_ref -> bool

(** Which component kind an ICC mechanism addresses. *)
val delivery_kind : icc_kind -> Component.kind
val pp_method : Format.formatter -> method_ref -> unit
