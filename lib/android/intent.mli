(** Intents: Android's application-level messages.  Extra values carry a
    taint set — the sensitive resources their contents derive from —
    which both the analysis and the enforcement layer reason about. *)

type extra = {
  key : string;
  value : string;
  taint : Resource.t list;
}

type t = {
  target : string option;       (** explicit target component class *)
  action : string option;
  categories : string list;
  data_type : string option;    (** MIME type *)
  data_scheme : string option;  (** URI scheme *)
  data_host : string option;    (** URI authority; requires a scheme *)
  extras : extra list;
  wants_result : bool;          (** sent via startActivityForResult *)
}

val make :
  ?target:string ->
  ?action:string ->
  ?categories:string list ->
  ?data_type:string ->
  ?data_scheme:string ->
  ?data_host:string ->
  ?extras:extra list ->
  ?wants_result:bool ->
  unit ->
  t

(** Parse a data URI "scheme://host[/...]" into (scheme, host); a bare
    token is a scheme with no host. *)
val split_uri : string -> string * string option

val empty : t
val is_explicit : t -> bool
val is_implicit : t -> bool
val put_extra : t -> key:string -> value:string -> taint:Resource.t list -> t
val get_extra : t -> string -> extra option

(** All resources carried by the intent's extras, deduplicated. *)
val carried_resources : t -> Resource.t list

val pp : Format.formatter -> t -> unit
