(* The framework API surface recognised by the analyses: a registry of
   (class, method) pairs classified as sensitive sources, sinks, ICC
   entry points, intent construction helpers or permission checks, plus
   the PScout-style API → permission map.  AME, the taint analysis and
   the simulated runtime all dispatch on this registry, so the three
   layers agree on what each call means. *)

type method_ref = { cls : string; mtd : string }

let mref cls mtd = { cls; mtd }

type icc_kind =
  | Start_activity
  | Start_activity_for_result
  | Start_service
  | Bind_service
  | Send_broadcast
  | Set_result           (* reply to startActivityForResult *)
  | Provider_query
  | Provider_insert
  | Provider_update
  | Provider_delete
  | Register_receiver    (* dynamic broadcast-receiver registration *)

let icc_kind_to_string = function
  | Start_activity -> "startActivity"
  | Start_activity_for_result -> "startActivityForResult"
  | Start_service -> "startService"
  | Bind_service -> "bindService"
  | Send_broadcast -> "sendBroadcast"
  | Set_result -> "setResult"
  | Provider_query -> "query"
  | Provider_insert -> "insert"
  | Provider_update -> "update"
  | Provider_delete -> "delete"
  | Register_receiver -> "registerReceiver"

(* Intent-object manipulation recognised by the extractor. *)
type intent_op =
  | New_intent
  | Set_action
  | Add_category
  | Set_data_type
  | Set_data_scheme
  | Set_class_name       (* explicit target *)
  | Put_extra
  | Get_extra
  | Get_all_extras       (* all extras, concatenated *)
  | Get_intent           (* retrieve the intent that started the component *)

type kind =
  | Source of Resource.t
  | Sink of Resource.t
  | Icc of icc_kind
  | Intent_op of intent_op
  | Permission_check
  | Callback_reg  (* registering a UI event handler by method name *)
  | Broadcast_abort (* consume an ordered broadcast *)
  | Other

(* Class names for the mini framework. *)
let c_context = "android.content.Context"
let c_activity = "android.app.Activity"
let c_intent = "android.content.Intent"
let c_location = "android.location.LocationManager"
let c_telephony = "android.telephony.TelephonyManager"
let c_sms_manager = "android.telephony.SmsManager"
let c_contacts = "android.provider.ContactsReader"
let c_calendar = "android.provider.CalendarReader"
let c_sms_reader = "android.provider.SmsReader"
let c_call_log = "android.provider.CallLogReader"
let c_camera = "android.hardware.Camera"
let c_audio = "android.media.AudioRecord"
let c_accounts = "android.accounts.AccountManager"
let c_browser = "android.provider.Browser"
let c_storage = "android.os.ExternalStorage"
let c_build = "android.os.Build"
let c_http = "java.net.HttpClient"
let c_log = "android.util.Log"
let c_notification = "android.app.NotificationManager"
let c_resolver = "android.content.ContentResolver"
let c_view = "android.view.View"

let sources =
  [
    (mref c_location "getLastKnownLocation", Resource.Location);
    (mref c_telephony "getDeviceId", Resource.Imei);
    (mref c_telephony "getLine1Number", Resource.Phone_number);
    (mref c_contacts "getContacts", Resource.Contacts);
    (mref c_calendar "getEvents", Resource.Calendar);
    (mref c_sms_reader "getInbox", Resource.Sms_inbox);
    (mref c_call_log "getCalls", Resource.Call_log);
    (mref c_camera "takePicture", Resource.Camera_data);
    (mref c_audio "record", Resource.Microphone);
    (mref c_accounts "getAccounts", Resource.Accounts);
    (mref c_browser "getHistory", Resource.Browser_history);
    (mref c_storage "readFile", Resource.Sdcard_data);
    (mref c_build "getSerial", Resource.Device_info);
  ]

let sinks =
  [
    (mref c_sms_manager "sendTextMessage", Resource.Sms);
    (mref c_http "post", Resource.Network);
    (mref c_http "connect", Resource.Network);
    (mref c_storage "writeFile", Resource.Sdcard);
    (mref c_log "i", Resource.Log);
    (mref c_log "d", Resource.Log);
    (mref c_log "e", Resource.Log);
    (mref c_notification "notify", Resource.Display);
  ]

let icc_methods =
  [
    (mref c_context "startActivity", Start_activity);
    (mref c_activity "startActivityForResult", Start_activity_for_result);
    (mref c_context "startService", Start_service);
    (mref c_context "bindService", Bind_service);
    (mref c_context "sendBroadcast", Send_broadcast);
    (mref c_context "sendOrderedBroadcast", Send_broadcast);
    (mref c_activity "setResult", Set_result);
    (mref c_resolver "query", Provider_query);
    (mref c_resolver "insert", Provider_insert);
    (mref c_resolver "update", Provider_update);
    (mref c_resolver "delete", Provider_delete);
    (mref c_context "registerReceiver", Register_receiver);
  ]

let intent_ops =
  [
    (mref c_intent "<init>", New_intent);
    (mref c_intent "setAction", Set_action);
    (mref c_intent "addCategory", Add_category);
    (mref c_intent "setType", Set_data_type);
    (mref c_intent "setData", Set_data_scheme);
    (mref c_intent "setClassName", Set_class_name);
    (mref c_intent "putExtra", Put_extra);
    (mref c_intent "getStringExtra", Get_extra);
    (mref c_intent "getExtras", Get_all_extras);
    (mref c_context "getIntent", Get_intent);
  ]

let callback_registrations = [ mref c_view "setOnClickListener" ]
let broadcast_aborts = [ mref c_context "abortBroadcast" ]

let permission_checks =
  [
    mref c_context "checkCallingPermission";
    mref c_context "enforceCallingPermission";
  ]

let classify (m : method_ref) : kind =
  match List.assoc_opt m sources with
  | Some r -> Source r
  | None -> (
      match List.assoc_opt m sinks with
      | Some r -> Sink r
      | None -> (
          match List.assoc_opt m icc_methods with
          | Some k -> Icc k
          | None -> (
              match List.assoc_opt m intent_ops with
              | Some op -> Intent_op op
              | None ->
                  if List.mem m permission_checks then Permission_check
                  else if List.mem m callback_registrations then Callback_reg
                  else if List.mem m broadcast_aborts then Broadcast_abort
                  else Other)))

(* PScout-style permission map: the permission required to invoke an API
   method, if any. *)
let permission_of (m : method_ref) : Permission.t option =
  match classify m with
  | Source r -> Resource.permission r
  | Sink r -> Resource.permission r
  | _ -> None

(* Whether an app holding [perms] may invoke [m] directly. *)
let allowed perms m =
  match permission_of m with None -> true | Some p -> List.mem p perms

let is_icc m = match classify m with Icc _ -> true | _ -> false

(* Which component kind an ICC mechanism addresses. *)
let delivery_kind (k : icc_kind) : Component.kind =
  match k with
  | Start_activity | Start_activity_for_result | Set_result ->
      Component.Activity
  | Start_service | Bind_service -> Component.Service
  | Send_broadcast | Register_receiver -> Component.Receiver
  | Provider_query | Provider_insert | Provider_update | Provider_delete ->
      Component.Provider

let pp_method ppf m = Fmt.pf ppf "%s#%s" m.cls m.mtd
