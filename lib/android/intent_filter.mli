(** Intent filters and the intent resolution test, following the Android
    framework rules: an implicit intent is delivered to a component iff
    one of its filters passes the action, category and data tests. *)

type t = {
  actions : string list;
  categories : string list;
  data_types : string list;
  data_schemes : string list;
  data_hosts : string list;
  priority : int;  (** ordered-broadcast delivery priority *)
}

val make :
  ?actions:string list ->
  ?categories:string list ->
  ?data_types:string list ->
  ?data_schemes:string list ->
  ?data_hosts:string list ->
  ?priority:int ->
  unit ->
  t

(** A filter listing hosts only accepts intents whose URI names one. *)
val host_test : Intent.t -> t -> bool

(** The intent's action must be listed by the filter; an intent with no
    action passes as long as the filter has some action. *)
val action_test : Intent.t -> t -> bool

(** Every category in the intent must appear in the filter. *)
val category_test : Intent.t -> t -> bool

(** The four-case data test of the framework documentation, refined by
    {!host_test} only when the intent carries a URI — a MIME-type-only
    intent never reaches the authority table. *)
val data_test : Intent.t -> t -> bool

(** All three tests. *)
val matches : intent:Intent.t -> t -> bool

val pp : Format.formatter -> t -> unit
