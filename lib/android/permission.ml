(* Android permission identifiers and protection levels.  Permissions are
   plain strings (as in the platform); this module provides the constants
   used across the framework model and a protection-level classification
   mirroring the platform's [normal]/[dangerous]/[signature] scheme. *)

type t = string

let pp = Fmt.string

(* Dangerous (user-granted) permissions. *)
let access_fine_location = "android.permission.ACCESS_FINE_LOCATION"
let read_phone_state = "android.permission.READ_PHONE_STATE"
let read_contacts = "android.permission.READ_CONTACTS"
let read_calendar = "android.permission.READ_CALENDAR"
let read_sms = "android.permission.READ_SMS"
let send_sms = "android.permission.SEND_SMS"
let write_sms = "android.permission.WRITE_SMS"
let read_call_log = "android.permission.READ_CALL_LOG"
let camera = "android.permission.CAMERA"
let record_audio = "android.permission.RECORD_AUDIO"
let get_accounts = "android.permission.GET_ACCOUNTS"
let read_history_bookmarks = "com.android.browser.permission.READ_HISTORY_BOOKMARKS"
let read_external_storage = "android.permission.READ_EXTERNAL_STORAGE"
let write_external_storage = "android.permission.WRITE_EXTERNAL_STORAGE"

(* Normal permissions. *)
let internet = "android.permission.INTERNET"
let vibrate = "android.permission.VIBRATE"
let wake_lock = "android.permission.WAKE_LOCK"
let access_network_state = "android.permission.ACCESS_NETWORK_STATE"

type protection = Normal | Dangerous | Signature

let dangerous =
  [
    access_fine_location; read_phone_state; read_contacts; read_calendar;
    read_sms; send_sms; write_sms; read_call_log; camera; record_audio;
    get_accounts; read_history_bookmarks; read_external_storage;
    write_external_storage;
  ]

let normal = [ internet; vibrate; wake_lock; access_network_state ]

let protection p =
  if List.mem p dangerous then Dangerous
  else if List.mem p normal then Normal
  else Signature

let all = dangerous @ normal

(* Short name, e.g. "SEND_SMS". *)
let short p =
  match String.rindex_opt p '.' with
  | Some i -> String.sub p (i + 1) (String.length p - i - 1)
  | None -> p
