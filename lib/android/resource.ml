(* Canonical permission-required resources, after Holavanalli et al.'s
   flow-permission taxonomy as adopted by the paper: thirteen resources
   act as sources of sensitive data, five as destinations, and the ICC
   mechanism augments both sets. *)

type t =
  (* sources *)
  | Location
  | Imei
  | Phone_number
  | Contacts
  | Calendar
  | Sms_inbox
  | Call_log
  | Camera_data
  | Microphone
  | Accounts
  | Browser_history
  | Sdcard_data
  | Device_info
  (* destinations *)
  | Network
  | Sms
  | Sdcard
  | Log
  | Display
  (* both: inter-component communication *)
  | Icc

let sources =
  [
    Location; Imei; Phone_number; Contacts; Calendar; Sms_inbox; Call_log;
    Camera_data; Microphone; Accounts; Browser_history; Sdcard_data;
    Device_info; Icc;
  ]

let sinks = [ Network; Sms; Sdcard; Log; Display; Icc ]

(* Every resource exactly once, in declaration order. *)
let all =
  [
    Location; Imei; Phone_number; Contacts; Calendar; Sms_inbox; Call_log;
    Camera_data; Microphone; Accounts; Browser_history; Sdcard_data;
    Device_info; Network; Sms; Sdcard; Log; Display; Icc;
  ]

let count = List.length all

(* A dense index for bitset membership tests: [0 .. count-1], in
   declaration order.  [count] fits comfortably in an OCaml int, so a
   set of resources is a single immediate word. *)
let index = function
  | Location -> 0
  | Imei -> 1
  | Phone_number -> 2
  | Contacts -> 3
  | Calendar -> 4
  | Sms_inbox -> 5
  | Call_log -> 6
  | Camera_data -> 7
  | Microphone -> 8
  | Accounts -> 9
  | Browser_history -> 10
  | Sdcard_data -> 11
  | Device_info -> 12
  | Network -> 13
  | Sms -> 14
  | Sdcard -> 15
  | Log -> 16
  | Display -> 17
  | Icc -> 18

let is_source r = List.mem r sources
let is_sink r = List.mem r sinks

let to_string = function
  | Location -> "LOCATION"
  | Imei -> "IMEI"
  | Phone_number -> "PHONE_NUMBER"
  | Contacts -> "CONTACTS"
  | Calendar -> "CALENDAR"
  | Sms_inbox -> "SMS_INBOX"
  | Call_log -> "CALL_LOG"
  | Camera_data -> "CAMERA_DATA"
  | Microphone -> "MICROPHONE"
  | Accounts -> "ACCOUNTS"
  | Browser_history -> "BROWSER_HISTORY"
  | Sdcard_data -> "SDCARD_DATA"
  | Device_info -> "DEVICE_INFO"
  | Network -> "NETWORK"
  | Sms -> "SMS"
  | Sdcard -> "SDCARD"
  | Log -> "LOG"
  | Display -> "DISPLAY"
  | Icc -> "ICC"

let of_string s =
  match List.find_opt (fun r -> to_string r = s) all with
  | Some r -> Some r
  | None -> None

let compare = Stdlib.compare
let equal = ( = )
let pp ppf r = Fmt.string ppf (to_string r)

(* The permission guarding direct access to each resource, if any. *)
let permission = function
  | Location -> Some Permission.access_fine_location
  | Imei | Phone_number | Device_info -> Some Permission.read_phone_state
  | Contacts -> Some Permission.read_contacts
  | Calendar -> Some Permission.read_calendar
  | Sms_inbox -> Some Permission.read_sms
  | Call_log -> Some Permission.read_call_log
  | Camera_data -> Some Permission.camera
  | Microphone -> Some Permission.record_audio
  | Accounts -> Some Permission.get_accounts
  | Browser_history -> Some Permission.read_history_bookmarks
  | Sdcard_data -> Some Permission.read_external_storage
  | Network -> Some Permission.internet
  | Sms -> Some Permission.send_sms
  | Sdcard -> Some Permission.write_external_storage
  | Log | Display | Icc -> None
