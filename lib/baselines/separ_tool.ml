(* SEPAR itself, viewed through the same finding interface as the
   baselines, for the Table I comparison: run the full
   extraction-encoding-synthesis pipeline and project the information-
   leakage scenarios onto (src, dst, resource) findings. *)

open Separ_android
open Separ_ame
open Separ_specs

let strip_res atom =
  if String.length atom > 4 && String.sub atom 0 4 = "res:" then
    String.sub atom 4 (String.length atom - 4)
  else atom

let analyze ?(k1 = true) (apks : Separ_dalvik.Apk.t list) : Finding.t list =
  let models = List.map (Extract.extract ~k1) apks in
  let bundle = Bundle.of_models models in
  let report =
    Separ_ase.Ase.analyze
      ~signatures:
        (List.filter
           (fun s -> s.Signatures.name = "information_leakage")
           (Signatures.all ()))
      ~limit_per_sig:64 bundle
  in
  let bundle = Bundle.update_passive_targets bundle in
  let intent_sender id =
    List.find_map
      (fun (_, c, i) ->
        if i.App_model.im_id = id then Some c.App_model.cm_name else None)
      (Bundle.all_intents bundle)
  in
  List.filter_map
    (fun v ->
      let sc = v.Separ_ase.Ase.v_scenario in
      match
        ( Option.bind (Scenario.witness1 sc "leakIntent") intent_sender,
          Scenario.witness1 sc "receiverCmp",
          Option.bind
            (Scenario.witness1 sc "leakedResource")
            (fun a -> Resource.of_string (strip_res a)) )
      with
      | Some src, Some dst, Some resource ->
          Some Finding.{ src; dst; resource }
      | _ -> None)
    report.Separ_ase.Ase.r_vulnerabilities
  |> List.sort_uniq Finding.compare
