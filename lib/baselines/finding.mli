(** A leak finding — sensitive [resource] flows from component [src] into
    component [dst], which writes it to an observable sink — and
    precision/recall scoring against ground truth.  All compared tools
    and the benchmark suites speak this type. *)

open Separ_android

type t = {
  src : string;
  dst : string;
  resource : Resource.t;
}

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type score = { tp : int; fp : int; fn : int }

val score : truth:t list -> found:t list -> score
val add : score -> score -> score
val zero : score
val precision : score -> float
val recall : score -> float
val f_measure : score -> float
