(* An AmanDroid-like compositional taint analyzer, faithful to that
   tool's documented capability profile (Wei et al., CCS'14, as
   characterised in the SEPAR paper):

   - precise entry-point-based analysis with full intent-resolution tests
     (action, category and data), explicit intents included;
   - handles dynamically registered broadcast receivers when the
     registration is statically resolvable;
   - does not support content providers, bound services, or the
     result-intent side of [startActivityForResult] (passive intents). *)

open Separ_android
open Separ_ame

let supported_icc = function
  | Api.Start_activity | Api.Start_activity_for_result | Api.Start_service
  | Api.Send_broadcast ->
      true
  | Api.Bind_service | Api.Set_result | Api.Provider_query
  | Api.Provider_insert | Api.Provider_update | Api.Provider_delete
  | Api.Register_receiver ->
      false

let leak_sinks =
  [ Resource.Log; Resource.Sdcard; Resource.Network; Resource.Sms;
    Resource.Display ]

let has_exit_path (c : App_model.component_model) =
  List.exists
    (fun p ->
      p.App_model.pm_source = Resource.Icc
      && List.mem p.App_model.pm_sink leak_sinks)
    c.App_model.cm_paths

let kind_compatible (im : App_model.intent_model)
    (c : App_model.component_model) =
  Separ_specs.Encode.delivery_kind im.App_model.im_icc = c.App_model.cm_kind

let resolves (im : App_model.intent_model) (c : App_model.component_model) =
  match im.App_model.im_target with
  | Some t -> t = c.App_model.cm_name
  | None ->
      let intent = App_model.to_intent im in
      (not im.App_model.im_passive)
      && kind_compatible im c
      && ((c.App_model.cm_public
          && List.exists
               (fun f -> Intent_filter.matches ~intent f)
               c.App_model.cm_filters)
         (* a dynamically registered receiver is reachable regardless of
            its manifest export status *)
         || List.exists
              (fun f -> Intent_filter.matches ~intent f)
              c.App_model.cm_dynamic_filters)

let analyze (apks : Separ_dalvik.Apk.t list) : Finding.t list =
  let models = List.map (Extract.extract ~all_methods:false) apks in
  let bundle = Bundle.of_models models in
  let components = Bundle.all_components bundle in
  let findings = ref [] in
  List.iter
    (fun (_, _, im) ->
      if supported_icc im.App_model.im_icc then
        List.iter
          (fun s ->
            if s <> Resource.Icc then
              List.iter
                (fun (_, c2) ->
                  if
                    c2.App_model.cm_kind <> Component.Provider
                    && resolves im c2 && has_exit_path c2
                  then
                    findings :=
                      Finding.{
                        src = im.App_model.im_sender;
                        dst = c2.App_model.cm_name;
                        resource = s;
                      }
                      :: !findings)
                components)
          im.App_model.im_extras)
    (Bundle.all_intents bundle);
  List.sort_uniq Finding.compare !findings
