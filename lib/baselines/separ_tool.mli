(** SEPAR itself, viewed through the same finding interface as the
    baselines for the Table I comparison: runs the full pipeline and
    projects information-leakage scenarios onto (src, dst, resource)
    findings.  [k1] selects the context sensitivity of extraction. *)

val analyze : ?k1:bool -> Separ_dalvik.Apk.t list -> Finding.t list
