(** An AmanDroid-like compositional taint analyzer, faithful to that
    tool's documented capability profile: precise entry-based analysis
    with full intent resolution (explicit included) and resolvable
    dynamic receivers, but no content providers, bound services or
    result (passive) intents. *)

val analyze : Separ_dalvik.Apk.t list -> Finding.t list
