(** A DidFail-like compositional taint analyzer, faithful to that tool's
    documented capability profile: Epicc-style implicit-only intent
    matching without the data test, whole-class analysis without
    reachability pruning, no bound services, providers, result intents or
    dynamic receivers. *)

val analyze : Separ_dalvik.Apk.t list -> Finding.t list
