(* A leak finding: sensitive [resource] flows from component [src] into
   component [dst], which writes it to an externally observable sink.
   All tools under comparison (the two baselines and SEPAR itself) report
   findings in this form, and the benchmark suites express their ground
   truth in it, so precision/recall are computed uniformly. *)

open Separ_android

type t = {
  src : string;       (* component where the sensitive data originates *)
  dst : string;       (* component that leaks it *)
  resource : Resource.t;
}

let compare = Stdlib.compare
let equal = ( = )

let pp ppf f =
  Fmt.pf ppf "%s -> %s [%a]" f.src f.dst Resource.pp f.resource

(* Score a tool's output against ground truth. *)
type score = { tp : int; fp : int; fn : int }

let score ~truth ~found =
  let found = List.sort_uniq compare found in
  let truth = List.sort_uniq compare truth in
  let tp = List.length (List.filter (fun f -> List.mem f truth) found) in
  {
    tp;
    fp = List.length found - tp;
    fn = List.length (List.filter (fun f -> not (List.mem f found)) truth);
  }

let add a b = { tp = a.tp + b.tp; fp = a.fp + b.fp; fn = a.fn + b.fn }
let zero = { tp = 0; fp = 0; fn = 0 }

let precision s =
  if s.tp + s.fp = 0 then 1.0
  else float_of_int s.tp /. float_of_int (s.tp + s.fp)

let recall s =
  if s.tp + s.fn = 0 then 1.0
  else float_of_int s.tp /. float_of_int (s.tp + s.fn)

let f_measure s =
  let p = precision s and r = recall s in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)
