(* A DidFail-like compositional taint analyzer, faithful to that tool's
   documented capability profile (Klieber et al., SOAP'14, as
   characterised in the SEPAR paper):

   - builds on Epicc-style intent analysis: implicit intents only —
     explicit intents are not connected, and the data scheme/type test is
     not modelled (the action and category tests decide matching);
   - analyzes whole classes without entry-point reachability pruning, so
     flows in dead code are reported;
   - no bound services, no content providers, no result (passive)
     intents, no dynamically registered receivers. *)

open Separ_android
open Separ_ame

let supported_icc = function
  | Api.Start_activity | Api.Start_activity_for_result | Api.Start_service
  | Api.Send_broadcast ->
      true
  | Api.Bind_service | Api.Set_result | Api.Provider_query
  | Api.Provider_insert | Api.Provider_update | Api.Provider_delete
  | Api.Register_receiver ->
      false

(* Action + category tests only: Epicc does not cover the data fields. *)
let filter_matches (im : App_model.intent_model) (f : Intent_filter.t) =
  (match im.App_model.im_action with
  | None -> f.Intent_filter.actions <> []
  | Some a -> List.mem a f.Intent_filter.actions)
  && List.for_all
       (fun c -> List.mem c f.Intent_filter.categories)
       im.App_model.im_categories

let leak_sinks =
  [ Resource.Log; Resource.Sdcard; Resource.Network; Resource.Sms;
    Resource.Display ]

let has_exit_path (c : App_model.component_model) =
  List.exists
    (fun p ->
      p.App_model.pm_source = Resource.Icc
      && List.mem p.App_model.pm_sink leak_sinks)
    c.App_model.cm_paths

let analyze (apks : Separ_dalvik.Apk.t list) : Finding.t list =
  (* whole-class extraction: no reachability pruning *)
  let models = List.map (Extract.extract ~all_methods:true) apks in
  let bundle = Bundle.of_models models in
  let components = Bundle.all_components bundle in
  let findings = ref [] in
  List.iter
    (fun (_, _, im) ->
      if
        im.App_model.im_target = None
        && (not im.App_model.im_passive)
        && supported_icc im.App_model.im_icc
      then
        List.iter
          (fun s ->
            if s <> Resource.Icc then
              List.iter
                (fun (_, c2) ->
                  if
                    c2.App_model.cm_public
                    && c2.App_model.cm_kind <> Component.Provider
                    && List.exists (filter_matches im) c2.App_model.cm_filters
                    && has_exit_path c2
                  then
                    findings :=
                      Finding.{
                        src = im.App_model.im_sender;
                        dst = c2.App_model.cm_name;
                        resource = s;
                      }
                      :: !findings)
                components)
          im.App_model.im_extras)
    (Bundle.all_intents bundle);
  List.sort_uniq Finding.compare !findings
