(* The compiled PDP: a policy store turned once into a decision
   structure so that a check costs what the *matched* part of the store
   costs, not the whole store.

   Index shape (per event kind):

     dispatch ─ d_by_action  : action value -> shelf   (policies pinning
              │                                         that [Action_is])
              └ d_any_action : shelf                   (action-free)

     shelf    ─ s_by_receiver  : component -> entries  (policies pinning
              │                                         that [Receiver_is])
              └ s_any_receiver : entries               (receiver-free)

   A check consults at most four entry arrays: (event action, event
   receiver), (event action, any receiver), (any action, event
   receiver), (any action, any receiver).  Each entry carries the
   residual conditions — everything the dispatch did not already
   discharge — pre-lowered into forms a precomputed {!Policy.view}
   answers in O(1): all [Extras_include] of a policy fold into one
   required-bits mask, [Receiver_not_in] becomes an array membership
   scan, permissions hit the view's hash set.

   Identity preservation: [Allow] policies never decide under the
   most-restrictive-action rule, so they are not indexed at all.  Every
   indexed entry remembers its position in the original store
   ([e_idx]); the decision procedure returns the matching Deny with the
   smallest index, else the matching Prompt with the smallest index —
   exactly the policy the reference [Policy.decide] would name, so
   enforcement reports stay byte-identical. *)

open Separ_android

(* A residual condition, lowered for view evaluation. *)
type rcond =
  | K_receiver_is of string
  | K_receiver_not_in of string array
  | K_sender_is of string
  | K_sender_not_installed
  | K_action_is of string  (* a second, conflicting pin — never dispatched *)
  | K_implicit
  | K_extras_mask of int   (* all Extras_include folded: required bits *)
  | K_sender_lacks of Permission.t

type entry = {
  e_idx : int;  (* position in the original store: first-match identity *)
  e_policy : Policy.t;
  e_deny : bool;
  e_conds : rcond array;
}

type shelf = {
  s_by_receiver : (string, entry array) Hashtbl.t;
  s_any_receiver : entry array;
}

type dispatch = {
  d_by_action : (string, shelf) Hashtbl.t;
  d_any_action : shelf;
}

type t = {
  c_send : dispatch;
  c_receive : dispatch;
  c_entries : int;  (* indexed (non-Allow) policies *)
  c_total : int;    (* store size it was compiled from *)
}

type stats = {
  st_entries : int;
  st_total : int;
  st_action_buckets : int;
  st_receiver_buckets : int;
}

(* --- compilation ----------------------------------------------------------- *)

let compile (policies : Policy.t list) : t =
  (* Per kind: (action pin, receiver pin) -> entries, newest first. *)
  let tbl_send : (string option * string option, entry list ref) Hashtbl.t =
    Hashtbl.create 16
  and tbl_recv : (string option * string option, entry list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let add tbl key e =
    match Hashtbl.find_opt tbl key with
    | Some l -> l := e :: !l
    | None -> Hashtbl.add tbl key (ref [ e ])
  in
  let entries = ref 0 in
  List.iteri
    (fun idx (p : Policy.t) ->
      if p.Policy.p_action <> Policy.Allow then begin
        incr entries;
        let action_pin = ref None and receiver_pin = ref None in
        let mask = ref 0 in
        let residual = ref [] in
        List.iter
          (fun c ->
            match c with
            | Policy.Action_is a when !action_pin = None -> action_pin := Some a
            | Policy.Receiver_is r when !receiver_pin = None ->
                receiver_pin := Some r
            | Policy.Extras_include r ->
                mask := !mask lor (1 lsl Resource.index r)
            | Policy.Action_is a -> residual := K_action_is a :: !residual
            | Policy.Receiver_is r -> residual := K_receiver_is r :: !residual
            | Policy.Receiver_not_in cs ->
                residual := K_receiver_not_in (Array.of_list cs) :: !residual
            | Policy.Sender_is c -> residual := K_sender_is c :: !residual
            | Policy.Sender_app_not_installed ->
                residual := K_sender_not_installed :: !residual
            | Policy.Implicit -> residual := K_implicit :: !residual
            | Policy.Sender_lacks_permission pm ->
                residual := K_sender_lacks pm :: !residual)
          p.Policy.p_conditions;
        let conds = List.rev !residual in
        let conds =
          if !mask <> 0 then K_extras_mask !mask :: conds else conds
        in
        let e =
          {
            e_idx = idx;
            e_policy = p;
            e_deny = p.Policy.p_action = Policy.Deny;
            e_conds = Array.of_list conds;
          }
        in
        let tbl =
          if p.Policy.p_event = Policy.Icc_send then tbl_send else tbl_recv
        in
        add tbl (!action_pin, !receiver_pin) e
      end)
    policies;
  let assemble tbl =
    (* Intermediate shelf builders, then frozen arrays (ascending e_idx:
       entries were prepended, so reverse). *)
    let shelf_b () :
        (string, entry list ref) Hashtbl.t * entry list ref =
      (Hashtbl.create 8, ref [])
    in
    let wild = shelf_b () in
    let by_action : (string, (string, entry list ref) Hashtbl.t * entry list ref)
        Hashtbl.t =
      Hashtbl.create 8
    in
    Hashtbl.iter
      (fun (aopt, ropt) l ->
        let (by_recv, any_recv) =
          match aopt with
          | None -> wild
          | Some a -> (
              match Hashtbl.find_opt by_action a with
              | Some sb -> sb
              | None ->
                  let sb = shelf_b () in
                  Hashtbl.add by_action a sb;
                  sb)
        in
        let ascending = List.rev !l in
        match ropt with
        | None -> any_recv := !any_recv @ ascending
        | Some r -> (
            match Hashtbl.find_opt by_recv r with
            | Some existing -> existing := !existing @ ascending
            | None -> Hashtbl.add by_recv r (ref ascending)))
      tbl;
    let freeze_shelf (by_recv, any_recv) =
      let s_by_receiver = Hashtbl.create (max 8 (Hashtbl.length by_recv)) in
      Hashtbl.iter
        (fun r l -> Hashtbl.replace s_by_receiver r (Array.of_list !l))
        by_recv;
      { s_by_receiver; s_any_receiver = Array.of_list !any_recv }
    in
    let d_by_action = Hashtbl.create (max 8 (Hashtbl.length by_action)) in
    Hashtbl.iter
      (fun a sb -> Hashtbl.replace d_by_action a (freeze_shelf sb))
      by_action;
    { d_by_action; d_any_action = freeze_shelf wild }
  in
  {
    c_send = assemble tbl_send;
    c_receive = assemble tbl_recv;
    c_entries = !entries;
    c_total = List.length policies;
  }

let stats c =
  let shelf_receivers s = Hashtbl.length s.s_by_receiver in
  let dispatch_stats d =
    let actions = Hashtbl.length d.d_by_action in
    let receivers =
      Hashtbl.fold
        (fun _ s acc -> acc + shelf_receivers s)
        d.d_by_action
        (shelf_receivers d.d_any_action)
    in
    (actions, receivers)
  in
  let sa, sr = dispatch_stats c.c_send and ra, rr = dispatch_stats c.c_receive in
  {
    st_entries = c.c_entries;
    st_total = c.c_total;
    st_action_buckets = sa + ra;
    st_receiver_buckets = sr + rr;
  }

(* --- decision -------------------------------------------------------------- *)

let holds (vw : Policy.view) = function
  | K_receiver_is c -> String.equal vw.Policy.vw_ev.Policy.ev_receiver_component c
  | K_receiver_not_in cs ->
      let r = vw.Policy.vw_ev.Policy.ev_receiver_component in
      not (Array.exists (String.equal r) cs)
  | K_sender_is c -> String.equal vw.Policy.vw_ev.Policy.ev_sender_component c
  | K_sender_not_installed ->
      not vw.Policy.vw_ev.Policy.ev_sender_installed_at_analysis
  | K_action_is a -> (
      match vw.Policy.vw_action with
      | Some a' -> String.equal a a'
      | None -> false)
  | K_implicit -> vw.Policy.vw_implicit
  | K_extras_mask m -> vw.Policy.vw_extras_bits land m = m
  | K_sender_lacks p -> not (Hashtbl.mem vw.Policy.vw_perms p)

let entry_matches vw e = Array.for_all (holds vw) e.e_conds

(* Scan the (at most four) candidate entry arrays, tracking the matching
   Deny with the smallest store index and, failing that, the matching
   Prompt with the smallest store index.  Each array is ascending in
   [e_idx], so a scan can stop at the first index that can no longer
   improve the outcome: past the best deny nothing matters (a later deny
   loses to it, and any matched deny silences prompts); a matching deny
   ends its own array immediately. *)
let decide_dispatch (d : dispatch) (vw : Policy.view) : Policy.decision =
  let receiver = vw.Policy.vw_ev.Policy.ev_receiver_component in
  let best_deny = ref max_int and deny_p = ref None in
  let best_prompt = ref max_int and prompt_p = ref None in
  let scan_array arr =
    let n = Array.length arr in
    let i = ref 0 and stop = ref false in
    while (not !stop) && !i < n do
      let e = arr.(!i) in
      if e.e_idx >= !best_deny then stop := true
      else begin
        if e.e_deny then begin
          if entry_matches vw e then begin
            best_deny := e.e_idx;
            deny_p := Some e.e_policy;
            stop := true
          end
        end
        else if
          !best_deny = max_int
          && e.e_idx < !best_prompt
          && entry_matches vw e
        then begin
          best_prompt := e.e_idx;
          prompt_p := Some e.e_policy
        end;
        incr i
      end
    done
  in
  let scan_shelf s =
    (match Hashtbl.find_opt s.s_by_receiver receiver with
    | Some arr -> scan_array arr
    | None -> ());
    scan_array s.s_any_receiver
  in
  (match vw.Policy.vw_action with
  | Some a -> (
      match Hashtbl.find_opt d.d_by_action a with
      | Some s -> scan_shelf s
      | None -> ())
  | None -> ());
  scan_shelf d.d_any_action;
  match !deny_p with
  | Some p -> Policy.Denied p
  | None -> (
      match !prompt_p with Some p -> Policy.Prompted p | None -> Policy.Allowed)

let dispatch_for c = function
  | Policy.Icc_send -> c.c_send
  | Policy.Icc_receive -> c.c_receive

let decide_view c (vw : Policy.view) =
  decide_dispatch (dispatch_for c vw.Policy.vw_ev.Policy.ev_kind) vw

let decide c ev = decide_view c (Policy.view_of_event ev)

(* Single-pass-equivalent send+receive evaluation on one view: the
   event's own kind decides first; only if it allows do the
   flipped-kind rules apply — same resolution order as
   {!Policy.decide_both}. *)
let decide_full_view c (vw : Policy.view) =
  let primary_kind = vw.Policy.vw_ev.Policy.ev_kind in
  match decide_dispatch (dispatch_for c primary_kind) vw with
  | Policy.Allowed ->
      let other =
        match primary_kind with
        | Policy.Icc_send -> c.c_receive
        | Policy.Icc_receive -> c.c_send
      in
      decide_dispatch other vw
  | d -> d

let decide_full c ev = decide_full_view c (Policy.view_of_event ev)
