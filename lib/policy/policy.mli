(** Event-condition-action security policies: the output of the synthesis
    pipeline, the input of the runtime enforcer.  The paper's §VI example

    {v { event: ICC received,
        condition: [{Intent.extra: LOCATION}, {Intent.receiver: MessageSender}],
        action: user prompt } v}

    is [{ p_event = Icc_receive;
          p_conditions = [Extras_include Location; Receiver_is "MessageSender"];
          p_action = Prompt; _ }]. *)

open Separ_android

type event_kind = Icc_send | Icc_receive

type condition =
  | Receiver_is of string
  | Receiver_not_in of string list  (** receiver outside the known set *)
  | Sender_is of string
  | Sender_app_not_installed
      (** sender app absent from the analyzed bundle *)
  | Action_is of string
  | Implicit  (** the intent names no explicit target *)
  | Extras_include of Resource.t
  | Sender_lacks_permission of Permission.t

type action = Allow | Deny | Prompt

type t = {
  p_id : string;
  p_event : event_kind;
  p_conditions : condition list;  (** conjunction *)
  p_action : action;
  p_reason : string;  (** the vulnerability this guards against *)
}

(** The runtime context of an ICC delivery, as seen by the PEP. *)
type icc_event = {
  ev_kind : event_kind;
  ev_sender_component : string;
  ev_sender_app : string;
  ev_sender_installed_at_analysis : bool;
  ev_sender_permissions : Permission.t list;
  ev_intent : Intent.t;
  ev_receiver_component : string;
  ev_receiver_app : string;
}

(** The per-check preprocessing of an event: extras tainted resources as
    a bitset, sender permissions as a hash set, the intent action and
    implicitness pulled out — built once per check with
    {!view_of_event} and shared across every policy evaluated against
    the event.  Conditions never consult [ev_kind], so one view answers
    for both the send- and receive-side reading of a delivery.  The
    record is read-only ([private]): build one with {!view_of_event}. *)
type view = private {
  vw_ev : icc_event;
  vw_action : string option;  (** [ev_intent.action] *)
  vw_implicit : bool;
  vw_extras_bits : int;  (** bitset over [Resource.index] of tainted extras *)
  vw_perms : (Permission.t, unit) Hashtbl.t;  (** sender's permissions *)
}

val view_of_event : icc_event -> view
val condition_holds : icc_event -> condition -> bool
val condition_holds_view : view -> condition -> bool
val matches : t -> icc_event -> bool
val matches_view : t -> view -> bool

(** PDP verdict: the most restrictive action among matching policies
    (Deny > Prompt > Allow), with the deciding policy. *)
type decision = Allowed | Prompted of t | Denied of t

val decide : t list -> icc_event -> decision
val decide_view : t list -> view -> decision

(** Receive- and send-side rules evaluated in one pass over the store:
    the event's own kind decides first (Deny, then Prompt); only if it
    allows do the flipped-kind rules apply.  Equivalent to [decide]
    followed by [decide] on the kind-flipped event, at one scan and one
    view.  This is what the in-process runtime hook calls — no
    marshalling. *)
val decide_both : t list -> icc_event -> decision

val decide_both_view : t list -> view -> decision

(** As {!decide_both}, but the event crosses the process boundary to the
    PDP app (marshalled both ways, counted in the
    [policy.serializations] metric).  The runtime's opt-in IPC mode
    calls this. *)
val decide_remote : t list -> icc_event -> decision

(** {1 Serialization} *)

val event_to_string : event_kind -> string
val event_of_string : string -> event_kind
val action_to_string : action -> string
val action_of_string : string -> action
val condition_to_string : condition -> string
val condition_of_string : string -> condition

(** One policy per line. *)
val to_line : t -> string

val of_line : string -> t
val to_string : t list -> string
val of_string : string -> t list

(** [subsumes a b]: [a] matches every event [b] matches (same event
    kind, conservatively implied conditions) with an action at least as
    restrictive — [b] is then redundant. *)
val subsumes : t -> t -> bool

(** Drop policies subsumed by another policy in the store; decisions are
    unchanged for every event. *)
val minimize_store : t list -> t list

(** Marshalled form of an ICC event (the PDP IPC payload). *)
val event_to_line : icc_event -> string

val event_of_line : string -> icc_event
val pp : Format.formatter -> t -> unit
