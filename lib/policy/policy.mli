(** Event-condition-action security policies: the output of the synthesis
    pipeline, the input of the runtime enforcer.  The paper's §VI example

    {v { event: ICC received,
        condition: [{Intent.extra: LOCATION}, {Intent.receiver: MessageSender}],
        action: user prompt } v}

    is [{ p_event = Icc_receive;
          p_conditions = [Extras_include Location; Receiver_is "MessageSender"];
          p_action = Prompt; _ }]. *)

open Separ_android

type event_kind = Icc_send | Icc_receive

type condition =
  | Receiver_is of string
  | Receiver_not_in of string list  (** receiver outside the known set *)
  | Sender_is of string
  | Sender_app_not_installed
      (** sender app absent from the analyzed bundle *)
  | Action_is of string
  | Implicit  (** the intent names no explicit target *)
  | Extras_include of Resource.t
  | Sender_lacks_permission of Permission.t

type action = Allow | Deny | Prompt

type t = {
  p_id : string;
  p_event : event_kind;
  p_conditions : condition list;  (** conjunction *)
  p_action : action;
  p_reason : string;  (** the vulnerability this guards against *)
}

(** The runtime context of an ICC delivery, as seen by the PEP. *)
type icc_event = {
  ev_kind : event_kind;
  ev_sender_component : string;
  ev_sender_app : string;
  ev_sender_installed_at_analysis : bool;
  ev_sender_permissions : Permission.t list;
  ev_intent : Intent.t;
  ev_receiver_component : string;
  ev_receiver_app : string;
}

val condition_holds : icc_event -> condition -> bool
val matches : t -> icc_event -> bool

(** PDP verdict: the most restrictive action among matching policies
    (Deny > Prompt > Allow), with the deciding policy. *)
type decision = Allowed | Prompted of t | Denied of t

val decide : t list -> icc_event -> decision

(** As {!decide}, but the event crosses the process boundary to the PDP
    app (marshalled both ways), and both receive- and send-side rules are
    evaluated in the one round trip.  This is what the runtime hooks
    call. *)
val decide_remote : t list -> icc_event -> decision

(** {1 Serialization} *)

val event_to_string : event_kind -> string
val event_of_string : string -> event_kind
val action_to_string : action -> string
val action_of_string : string -> action
val condition_to_string : condition -> string
val condition_of_string : string -> condition

(** One policy per line. *)
val to_line : t -> string

val of_line : string -> t
val to_string : t list -> string
val of_string : string -> t list

(** [subsumes a b]: [a] matches every event [b] matches (same event
    kind, conservatively implied conditions) with an action at least as
    restrictive — [b] is then redundant. *)
val subsumes : t -> t -> bool

(** Drop policies subsumed by another policy in the store; decisions are
    unchanged for every event. *)
val minimize_store : t list -> t list

(** Marshalled form of an ICC event (the PDP IPC payload). *)
val event_to_line : icc_event -> string

val event_of_line : string -> icc_event
val pp : Format.formatter -> t -> unit
