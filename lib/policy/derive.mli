(** Policy derivation: translate each synthesized attack scenario into a
    fine-grained ECA rule that prevents exactly that exploit class while
    leaving legitimate traffic untouched.

    - intent hijack: prompt on sending the hijackable implicit intent to
      any receiver outside the bundle's legitimate matches;
    - activity/service launch: prompt on delivery to the launchable
      component from apps unknown at analysis time;
    - privilege escalation: prompt on delivery to the victim from senders
      lacking the escalated permission;
    - information leakage: prompt on delivery of the leaked resource to
      the leaking component (the paper's §VI example shape). *)

open Separ_ame
open Separ_specs

(** Components the intent legitimately resolves to within the bundle. *)
val legitimate_receivers :
  Bundle.t -> App_model.intent_model -> string list

(** Policies for one scenario (usually one). *)
val of_scenario : Bundle.t -> Scenario.t -> Policy.t list

(** Policies for a full report, deduplicated. *)
val of_report : Bundle.t -> Scenario.t list -> Policy.t list
