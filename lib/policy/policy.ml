(* Event-condition-action security policies, the output of the synthesis
   pipeline and the input of the runtime enforcer.  A policy matches ICC
   events (intent deliveries observed by the PEP hooks); when every
   condition holds, the policy's action applies.  The paper's §VI example

     { event: ICC received,
       condition: [{Intent.extra: LOCATION}, {Intent.receiver: MessageSender}],
       action: user prompt }

   corresponds to [{ p_event = Icc_receive;
                     p_conditions = [Extras_include Location;
                                     Receiver_is "MessageSender"];
                     p_action = Prompt }]. *)

open Separ_android
module Metrics = Separ_obs.Metrics

(* Every event marshalled across the PDP process boundary, in either
   direction.  The in-process fast path must leave this at zero. *)
let c_serializations = Metrics.counter "policy.serializations"

type event_kind = Icc_send | Icc_receive

type condition =
  | Receiver_is of string
  | Receiver_not_in of string list  (* receiver outside the known set *)
  | Sender_is of string
  | Sender_app_not_installed        (* sender app absent from the analyzed bundle *)
  | Action_is of string
  | Implicit                        (* the intent names no explicit target *)
  | Extras_include of Resource.t
  | Sender_lacks_permission of Permission.t

type action = Allow | Deny | Prompt

type t = {
  p_id : string;
  p_event : event_kind;
  p_conditions : condition list; (* conjunction *)
  p_action : action;
  p_reason : string;             (* the vulnerability this guards against *)
}

(* The runtime context of an ICC delivery, as seen by the PEP. *)
type icc_event = {
  ev_kind : event_kind;
  ev_sender_component : string;
  ev_sender_app : string;
  ev_sender_installed_at_analysis : bool;
  ev_sender_permissions : Permission.t list;
  ev_intent : Intent.t;
  ev_receiver_component : string;
  ev_receiver_app : string;
}

(* --- event views ----------------------------------------------------------- *)

(* The per-check preprocessing of an event: the pieces a condition needs
   to consult, turned into O(1)-lookup form once and then shared across
   every policy evaluated against the event.  Without this, each
   [Extras_include] re-walks (and re-sorts) the intent's extras and each
   [Sender_lacks_permission] re-scans the permission list — per
   condition, per policy, per check. *)
type view = {
  vw_ev : icc_event;
  vw_action : string option;           (* ev_intent.action *)
  vw_implicit : bool;
  vw_extras_bits : int;                (* bitset over [Resource.index] *)
  vw_perms : (Permission.t, unit) Hashtbl.t;  (* sender's permissions *)
}

let view_of_event (ev : icc_event) : view =
  let bits =
    List.fold_left
      (fun acc (e : Intent.extra) ->
        List.fold_left (fun acc r -> acc lor (1 lsl Resource.index r)) acc e.Intent.taint)
      0 ev.ev_intent.Intent.extras
  in
  let perms = Hashtbl.create (max 4 (List.length ev.ev_sender_permissions)) in
  List.iter (fun p -> Hashtbl.replace perms p ()) ev.ev_sender_permissions;
  {
    vw_ev = ev;
    vw_action = ev.ev_intent.Intent.action;
    vw_implicit = Intent.is_implicit ev.ev_intent;
    vw_extras_bits = bits;
    vw_perms = perms;
  }

(* Conditions never consult [ev_kind], so one view answers for both the
   send- and receive-side reading of the same delivery. *)
let condition_holds_view (vw : view) = function
  | Receiver_is c -> vw.vw_ev.ev_receiver_component = c
  | Receiver_not_in cs -> not (List.mem vw.vw_ev.ev_receiver_component cs)
  | Sender_is c -> vw.vw_ev.ev_sender_component = c
  | Sender_app_not_installed -> not vw.vw_ev.ev_sender_installed_at_analysis
  | Action_is a -> (
      match vw.vw_action with Some a' -> String.equal a a' | None -> false)
  | Implicit -> vw.vw_implicit
  | Extras_include r -> vw.vw_extras_bits land (1 lsl Resource.index r) <> 0
  | Sender_lacks_permission p -> not (Hashtbl.mem vw.vw_perms p)

let condition_holds (ev : icc_event) = function
  | Receiver_is c -> ev.ev_receiver_component = c
  | Receiver_not_in cs -> not (List.mem ev.ev_receiver_component cs)
  | Sender_is c -> ev.ev_sender_component = c
  | Sender_app_not_installed -> not ev.ev_sender_installed_at_analysis
  | Action_is a -> ev.ev_intent.Intent.action = Some a
  | Implicit -> Intent.is_implicit ev.ev_intent
  | Extras_include r -> List.mem r (Intent.carried_resources ev.ev_intent)
  | Sender_lacks_permission p -> not (List.mem p ev.ev_sender_permissions)

let matches (p : t) (ev : icc_event) =
  p.p_event = ev.ev_kind && List.for_all (condition_holds ev) p.p_conditions

let matches_view (p : t) (vw : view) =
  p.p_event = vw.vw_ev.ev_kind
  && List.for_all (condition_holds_view vw) p.p_conditions

(* PDP decision: the most restrictive action among matching policies
   (Deny > Prompt > Allow), with the deciding policy. *)
type decision = Allowed | Prompted of t | Denied of t

(* One pass over the store, in store order, sharing [vw] across every
   policy: the first matching Deny wins immediately; otherwise the first
   matching Prompt; Allow policies never decide and are skipped without
   evaluating their conditions.  Output-identical to filtering the whole
   store and then searching it (the original formulation). *)
let decide_view (policies : t list) (vw : view) : decision =
  let kind = vw.vw_ev.ev_kind in
  let rec scan prompt = function
    | [] -> ( match prompt with Some p -> Prompted p | None -> Allowed)
    | p :: rest -> (
        match p.p_action with
        | Allow -> scan prompt rest
        | Deny | Prompt ->
            if
              p.p_event = kind
              && List.for_all (condition_holds_view vw) p.p_conditions
            then
              if p.p_action = Deny then Denied p
              else scan (if prompt = None then Some p else prompt) rest
            else scan prompt rest)
  in
  scan None policies

let decide (policies : t list) (ev : icc_event) : decision =
  decide_view policies (view_of_event ev)

(* Evaluate the receive- and send-side rules in ONE pass over the store.
   Resolution order replicates the sequential protocol (decide on the
   event's own kind; only if Allowed, decide again with the kind
   flipped): primary-kind Deny > primary Prompt > flipped Deny > flipped
   Prompt.  Conditions never read [ev_kind], so each policy's condition
   vector is evaluated at most once per check. *)
let decide_both_view (policies : t list) (vw : view) : decision =
  let primary = vw.vw_ev.ev_kind in
  let rec scan p_prompt o_deny o_prompt = function
    | [] -> (
        match (p_prompt, o_deny, o_prompt) with
        | Some p, _, _ -> Prompted p
        | None, Some p, _ -> Denied p
        | None, None, Some p -> Prompted p
        | None, None, None -> Allowed)
    | p :: rest -> (
        match p.p_action with
        | Allow -> scan p_prompt o_deny o_prompt rest
        | Deny | Prompt ->
            if List.for_all (condition_holds_view vw) p.p_conditions then
              match (p.p_event = primary, p.p_action) with
              | true, Deny -> Denied p
              | true, _ ->
                  scan (if p_prompt = None then Some p else p_prompt)
                    o_deny o_prompt rest
              | false, Deny ->
                  scan p_prompt (if o_deny = None then Some p else o_deny)
                    o_prompt rest
              | false, _ ->
                  scan p_prompt o_deny
                    (if o_prompt = None then Some p else o_prompt)
                    rest
            else scan p_prompt o_deny o_prompt rest)
  in
  scan None None None policies

let decide_both (policies : t list) (ev : icc_event) : decision =
  decide_both_view policies (view_of_event ev)

(* --- serialization ------------------------------------------------------- *)

let event_to_string = function
  | Icc_send -> "ICC_send"
  | Icc_receive -> "ICC_received"

let event_of_string = function
  | "ICC_send" -> Icc_send
  | "ICC_received" -> Icc_receive
  | s -> failwith ("Policy.event_of_string: " ^ s)

let action_to_string = function
  | Allow -> "allow"
  | Deny -> "deny"
  | Prompt -> "user_prompt"

let action_of_string = function
  | "allow" -> Allow
  | "deny" -> Deny
  | "user_prompt" -> Prompt
  | s -> failwith ("Policy.action_of_string: " ^ s)

let condition_to_string = function
  | Receiver_is c -> "Intent.receiver=" ^ c
  | Receiver_not_in cs -> "Intent.receiver_not_in=" ^ String.concat "|" cs
  | Sender_is c -> "Intent.sender=" ^ c
  | Sender_app_not_installed -> "Sender.app_not_installed"
  | Action_is a -> "Intent.action=" ^ a
  | Implicit -> "Intent.implicit"
  | Extras_include r -> "Intent.extra=" ^ Resource.to_string r
  | Sender_lacks_permission p -> "Sender.lacks_permission=" ^ p

let condition_of_string s =
  let split_kv s =
    match String.index_opt s '=' with
    | Some i ->
        ( String.sub s 0 i,
          String.sub s (i + 1) (String.length s - i - 1) )
    | None -> (s, "")
  in
  match split_kv s with
  | "Intent.receiver", v -> Receiver_is v
  | "Intent.receiver_not_in", v ->
      Receiver_not_in (String.split_on_char '|' v |> List.filter (( <> ) ""))
  | "Intent.sender", v -> Sender_is v
  | "Sender.app_not_installed", _ -> Sender_app_not_installed
  | "Intent.action", v -> Action_is v
  | "Intent.implicit", _ -> Implicit
  | "Intent.extra", v -> (
      match Resource.of_string v with
      | Some r -> Extras_include r
      | None -> failwith ("Policy.condition_of_string: bad resource " ^ v))
  | "Sender.lacks_permission", v -> Sender_lacks_permission v
  | k, _ -> failwith ("Policy.condition_of_string: " ^ k)

(* One policy per line: id \t event \t action \t reason \t cond;cond;... *)
let to_line p =
  String.concat "\t"
    [
      p.p_id;
      event_to_string p.p_event;
      action_to_string p.p_action;
      p.p_reason;
      String.concat ";" (List.map condition_to_string p.p_conditions);
    ]

let of_line line =
  match String.split_on_char '\t' line with
  | [ id; ev; act; reason; conds ] ->
      {
        p_id = id;
        p_event = event_of_string ev;
        p_action = action_of_string act;
        p_reason = reason;
        p_conditions =
          (if conds = "" then []
           else
             String.split_on_char ';' conds |> List.map condition_of_string);
      }
  | _ -> failwith "Policy.of_line: malformed line"

let to_string policies = String.concat "\n" (List.map to_line policies)

let of_string s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map of_line

(* --- store minimization ---------------------------------------------------- *)

(* [a] subsumes [b] when [a] matches every event [b] matches, with the
   same event kind and an action at least as restrictive: then [b] never
   changes a decision and can be dropped from the store. *)
let restrictiveness = function Allow -> 0 | Prompt -> 1 | Deny -> 2

(* Conservative per-condition implication: [c1] implies [c2]. *)
let condition_implies c1 c2 =
  c1 = c2
  ||
  match (c1, c2) with
  | Receiver_not_in bigger, Receiver_not_in smaller ->
      (* excluding more receivers is implied by excluding fewer *)
      List.for_all (fun x -> List.mem x bigger) smaller
  | Receiver_is r, Receiver_not_in excluded -> not (List.mem r excluded)
  | _ -> false

let subsumes a b =
  a.p_event = b.p_event
  && restrictiveness a.p_action >= restrictiveness b.p_action
  && List.for_all
       (fun ca -> List.exists (fun cb -> condition_implies cb ca) b.p_conditions)
       a.p_conditions

(* Drop policies subsumed by another policy in the store: strictly
   dominated policies always go; of mutually subsuming (equivalent)
   policies the first is kept.

   Candidate pruning: [subsumes a b] needs [a.p_event = b.p_event], and
   every [Action_is x] of [a] must be implied by a condition of [b] —
   [condition_implies] only ever derives [Action_is] from equality, so
   [a]'s pinned action values must all appear among [b]'s.  Policies are
   therefore bucketed by [(event, first pinned action)]; the only
   possible dominators of [p] live in [p]'s own event's action-free
   bucket or in the buckets of actions [p] itself pins.  That shrinks
   the all-pairs scan to a handful of buckets per policy while deciding
   exactly the same survivors: a policy is dropped iff some candidate
   that is still alive (processed-and-kept, or not yet processed)
   strictly subsumes it, or an earlier kept candidate is equivalent —
   the same "kept or later" rule as the quadratic original. *)
let minimize_store policies =
  let arr = Array.of_list policies in
  let n = Array.length arr in
  let alive = Array.make n true in
  let actions_of p =
    List.filter_map
      (function Action_is a -> Some a | _ -> None)
      p.p_conditions
  in
  let key_of p =
    (p.p_event, match actions_of p with [] -> None | a :: _ -> Some a)
  in
  let buckets : (event_kind * string option, int list ref) Hashtbl.t =
    Hashtbl.create (max 16 n)
  in
  Array.iteri
    (fun i p ->
      let key = key_of p in
      match Hashtbl.find_opt buckets key with
      | Some l -> l := i :: !l
      | None -> Hashtbl.add buckets key (ref [ i ]))
    arr;
  let bucket key =
    match Hashtbl.find_opt buckets key with Some l -> !l | None -> []
  in
  for i = 0 to n - 1 do
    let p = arr.(i) in
    let candidates =
      List.concat_map bucket
        ((p.p_event, None)
        :: List.map (fun a -> (p.p_event, Some a)) (actions_of p))
    in
    let dropped =
      List.exists
        (fun j ->
          j <> i && alive.(j) && subsumes arr.(j) p && not (subsumes p arr.(j)))
        candidates
      || List.exists
           (fun j ->
             j < i && alive.(j) && subsumes arr.(j) p && subsumes p arr.(j))
           candidates
    in
    if dropped then alive.(i) <- false
  done;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if alive.(i) then out := arr.(i) :: !out
  done;
  !out

(* The PDP runs as an independent app (the paper's architecture), so the
   PEP's decision request crosses a process boundary.  These functions
   marshal the ICC event for that round trip; the simulated device pays
   this cost on every hooked ICC call. *)
(* Separators are non-printing control characters, so arbitrary payload
   strings (which may contain commas, equals signs, colons) round-trip:
   0x1f between fields, 0x1e between list items, 0x1d inside an extra. *)
let event_to_line (ev : icc_event) =
  Metrics.incr c_serializations;
  String.concat "\x1f"
    [
      event_to_string ev.ev_kind;
      ev.ev_sender_component;
      ev.ev_sender_app;
      string_of_bool ev.ev_sender_installed_at_analysis;
      String.concat "\x1e" ev.ev_sender_permissions;
      Option.value ~default:"" ev.ev_intent.Intent.target;
      Option.value ~default:"" ev.ev_intent.Intent.action;
      String.concat "\x1e" ev.ev_intent.Intent.categories;
      Option.value ~default:"" ev.ev_intent.Intent.data_type;
      Option.value ~default:"" ev.ev_intent.Intent.data_scheme;
      String.concat "\x1e"
        (List.map
           (fun e ->
             String.concat "\x1d"
               (e.Intent.key :: e.Intent.value
               :: List.map Resource.to_string e.Intent.taint))
           ev.ev_intent.Intent.extras);
      string_of_bool ev.ev_intent.Intent.wants_result;
      ev.ev_receiver_component;
      ev.ev_receiver_app;
    ]

let event_of_line line =
  Metrics.incr c_serializations;
  let opt = function "" -> None | s -> Some s in
  let items = function "" -> [] | s -> String.split_on_char '\x1e' s in
  match String.split_on_char '\x1f' line with
  | [ kind; sc; sa; installed; perms; target; action; cats; dt; ds; extras;
      wants; rc; ra ] ->
      {
        ev_kind = event_of_string kind;
        ev_sender_component = sc;
        ev_sender_app = sa;
        ev_sender_installed_at_analysis = bool_of_string installed;
        ev_sender_permissions = items perms;
        ev_intent =
          Intent.make ?target:(opt target) ?action:(opt action)
            ~categories:(items cats) ?data_type:(opt dt) ?data_scheme:(opt ds)
            ~extras:
              (List.filter_map
                 (fun item ->
                   match String.split_on_char '\x1d' item with
                   | key :: value :: taint ->
                       Some
                         Intent.{
                           key;
                           value;
                           taint = List.filter_map Resource.of_string taint;
                         }
                   | _ -> None)
                 (items extras))
            ~wants_result:(bool_of_string wants) ()
        ;
        ev_receiver_component = rc;
        ev_receiver_app = ra;
      }
  | _ -> failwith "Policy.event_of_line: malformed"

(* A PDP decision as seen through the process boundary: the event is
   marshalled to the PDP app once, evaluated there against both the
   receive-side and send-side rules in a single pass over the store, and
   the verdict returned.  The marshalling (counted in
   [policy.serializations]) is the point of this entry: the in-process
   fast path calls [decide_both] directly and pays none of it. *)
let decide_remote policies ev =
  let ev = event_of_line (event_to_line ev) in
  decide_both policies ev

let pp ppf p =
  Fmt.pf ppf "@[<v 2>{ event: %s,@,condition: [%a],@,action: %s }@]"
    (event_to_string p.p_event)
    Fmt.(list ~sep:(any ", ") (fun ppf c -> string ppf (condition_to_string c)))
    p.p_conditions
    (action_to_string p.p_action)
