(** The compiled PDP: a policy store turned once into a decision
    structure — first-level dispatch on [(event kind, intent action)],
    second-level dispatch on the receiver component where [Receiver_is]
    pins one, then residual condition vectors evaluated against a
    precomputed {!Policy.view}.  A check consults at most four entry
    arrays instead of the whole store.

    Identity preservation: the structure returns the same decision
    constructor {e and the same deciding policy} (first match in store
    order, Deny before Prompt) as the reference {!Policy.decide}, so
    enforcement reports are byte-identical.  [Allow] policies never
    decide and are not indexed. *)

(** A compiled store.  Immutable once built — hot swap is "compile a new
    one, then replace the pointer". *)
type t

val compile : Policy.t list -> t

(** Index shape counters, for benchmarks and logs. *)
type stats = {
  st_entries : int;  (** indexed (non-Allow) policies *)
  st_total : int;  (** store size the structure was compiled from *)
  st_action_buckets : int;  (** action-pinned buckets across both kinds *)
  st_receiver_buckets : int;  (** receiver-pinned buckets across all shelves *)
}

val stats : t -> stats

(** Same verdict and same deciding policy as [Policy.decide] on the
    event's own kind. *)
val decide : t -> Policy.icc_event -> Policy.decision

val decide_view : t -> Policy.view -> Policy.decision

(** Same verdict and same deciding policy as {!Policy.decide_both}:
    the event's own kind first (Deny, then Prompt); only if it allows,
    the flipped-kind rules.  One view, no marshalling — the runtime
    hook's fast path. *)
val decide_full : t -> Policy.icc_event -> Policy.decision

val decide_full_view : t -> Policy.view -> Policy.decision
