(* Policy derivation: translate each synthesized attack scenario into a
   fine-grained ECA rule that prevents exactly that exploit class while
   leaving legitimate traffic untouched. *)

open Separ_android
open Separ_ame
open Separ_specs

let counter = ref 0

let fresh_id kind =
  incr counter;
  Printf.sprintf "pol-%s-%d" kind !counter

(* Components of the bundle to which intent [im] legitimately resolves:
   the allow-set for hijack policies. *)
let legitimate_receivers (bundle : Bundle.t) (im : App_model.intent_model) =
  List.filter_map
    (fun (_, c) ->
      if Bundle.resolves_to im c then Some c.App_model.cm_name else None)
    (Bundle.all_components bundle)

let find_intent (bundle : Bundle.t) id =
  List.find_map
    (fun (_, c, i) ->
      if i.App_model.im_id = id then Some (c, i) else None)
    (Bundle.all_intents bundle)

let of_scenario (bundle : Bundle.t) (sc : Scenario.t) : Policy.t list =
  match sc.Scenario.sc_kind with
  | "intent_hijack" -> (
      match Scenario.witness1 sc "hijackedIntent" with
      | None -> []
      | Some intent_id -> (
          match find_intent bundle intent_id with
          | None -> []
          | Some (sender_cmp, im) ->
              let allowed = legitimate_receivers bundle im in
              let conds =
                [
                  Policy.Sender_is sender_cmp.App_model.cm_name;
                  Policy.Implicit;
                  Policy.Receiver_not_in allowed;
                ]
                @ (match im.App_model.im_action with
                  | Some a -> [ Policy.Action_is a ]
                  | None -> [])
                @ List.map
                    (fun r -> Policy.Extras_include r)
                    im.App_model.im_extras
              in
              [
                Policy.{
                  p_id = fresh_id "hijack";
                  p_event = Icc_send;
                  p_conditions = conds;
                  p_action = Prompt;
                  p_reason = sc.Scenario.sc_description;
                };
              ]))
  | "activity_launch" | "service_launch" -> (
      match Scenario.witness1 sc "launchedCmp" with
      | None -> []
      | Some cmp ->
          [
            Policy.{
              p_id = fresh_id "launch";
              p_event = Icc_receive;
              p_conditions =
                [ Policy.Receiver_is cmp; Policy.Sender_app_not_installed ];
              p_action = Prompt;
              p_reason = sc.Scenario.sc_description;
            };
          ])
  | "privilege_escalation" -> (
      match
        (Scenario.witness1 sc "victimCmp", Scenario.witness1 sc "escalatedPerm")
      with
      | Some cmp, Some perm_atom ->
          let perm =
            if String.length perm_atom > 5 && String.sub perm_atom 0 5 = "perm:"
            then String.sub perm_atom 5 (String.length perm_atom - 5)
            else perm_atom
          in
          [
            Policy.{
              p_id = fresh_id "privesc";
              p_event = Icc_receive;
              p_conditions =
                [
                  Policy.Receiver_is cmp;
                  Policy.Sender_lacks_permission perm;
                ];
              p_action = Prompt;
              p_reason = sc.Scenario.sc_description;
            };
          ]
      | _ -> [])
  | "information_leakage" -> (
      match
        ( Scenario.witness1 sc "receiverCmp",
          Scenario.witness1 sc "leakedResource" )
      with
      | Some cmp, Some res_atom ->
          let res =
            let s =
              if String.length res_atom > 4 && String.sub res_atom 0 4 = "res:"
              then String.sub res_atom 4 (String.length res_atom - 4)
              else res_atom
            in
            Resource.of_string s
          in
          (match res with
          | None -> []
          | Some r ->
              [
                Policy.{
                  p_id = fresh_id "leak";
                  p_event = Icc_receive;
                  p_conditions =
                    [ Policy.Extras_include r; Policy.Receiver_is cmp ];
                  p_action = Prompt;
                  p_reason = sc.Scenario.sc_description;
                };
              ])
      | _ -> [])
  | _ -> []

module Trace = Separ_obs.Trace
module Metrics = Separ_obs.Metrics

let c_derived = Metrics.counter "policy.policies_derived"

(* Derive the complete policy set from an analysis report, dropping
   duplicates (identical event/condition/action triples). *)
let of_report (bundle : Bundle.t) (vulns : Scenario.t list) : Policy.t list =
  Trace.with_span "policy.derive"
    ~attrs:[ Trace.attr_int "scenarios" (List.length vulns) ]
    (fun () ->
  let policies = List.concat_map (of_scenario bundle) vulns in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let key =
        ( p.Policy.p_event,
          List.sort compare p.Policy.p_conditions,
          p.Policy.p_action )
      in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    policies
  |> fun unique ->
  Metrics.add c_derived (List.length unique);
  Trace.add_attr "policies" (Trace.Int (List.length unique));
  unique)
