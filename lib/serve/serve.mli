(** The app-store analysis service: a long-lived store of extracted app
    models with a job queue of upload/update/remove events and
    footprint-indexed bundle selection.

    Each app's verdict is the analysis of its {e scope bundle} — the
    app plus its exact ICC partners (index candidates re-checked with
    {!Separ_ame.Bundle.resolves_to}), members sorted by package.  An
    event re-analyzes only the candidate set the {!Index} maps it to;
    {!full_repair} is the brute-force reference the selective path must
    reproduce byte for byte (stripped reports), with strictly fewer
    bundles dispatched on sparse stores.

    Extraction and verdicts read through the persistent [cache];
    multi-bundle events fan out over the persistent worker pool
    ([jobs]); every event is traced ([serve.event]/[serve.analyze]
    spans) and metered ([serve.*] counters, the
    [serve.upload_to_verdict_ms] histogram). *)

open Separ_ame

type event = Upload of Separ_dalvik.Apk.t | Remove of string

type verdict = {
  vd_package : string;
  vd_event : string;  (** ["upload"] or ["remove"] *)
  vd_store_size : int;     (** apps in the store after the event *)
  vd_candidates : string list;  (** sorted packages selected for re-analysis *)
  vd_analyzed : int;       (** scope bundles dispatched (= candidates) *)
  vd_vulnerabilities : int;     (** in the subject app's fresh report *)
  vd_latency_ms : float;   (** event intake → verdict stored *)
}

type t

val create :
  ?k1:bool ->
  ?signatures:Separ_specs.Signatures.t list ->
  ?limit_per_sig:int ->
  ?jobs:int ->
  ?cache:Separ_cache.Store.t ->
  unit ->
  t

val submit : t -> event -> unit
val pending : t -> int

(** Process every queued event in order; one verdict per event. *)
val drain : t -> verdict list

val store_size : t -> int
val packages : t -> string list

val model : t -> string -> App_model.t option
val report : t -> string -> Separ_ase.Ase.report option

(** All per-app reports, sorted by package. *)
val reports : t -> (string * Separ_ase.Ase.report) list

(** Scope-bundle membership of one app (sorted; [[]] if absent). *)
val scope : t -> string -> string list

(** Re-analyze every app's scope bundle; returns the bundle count
    (= store size). *)
val full_repair : t -> int

val index : t -> Index.t

(** The index as rebuilt from the live models — hot updates must keep
    {!index} [Index.equal] to this. *)
val rebuilt_index : t -> Index.t

val pp_verdict : Format.formatter -> verdict -> unit
