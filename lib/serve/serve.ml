(* The app-store analysis service: a long-lived store of extracted app
   models with a job queue of upload/update/remove events.

   One-shot analysis re-pairs the whole store on every change — the
   O(n^2) wall every inter-app ICC analysis hits at store scale.  Here
   each app's verdict is the analysis of its *scope bundle* (the app
   plus its exact ICC partners), and the footprint index turns an
   event into the candidate set of apps whose scope could have
   changed: the uploaded app itself, everyone its old footprint could
   reach, and everyone its new footprint can reach.  Scope membership
   itself is exact (index candidates re-checked with
   [Bundle.resolves_to]), so which apps get re-analyzed is a
   conservative superset of which apps' bundles changed — selective
   processing reproduces full repair byte for byte while dispatching
   strictly fewer bundles on sparse stores.

   Dispatch rides the existing machinery end to end: extraction and
   verdicts read through the persistent cache, each scope bundle gets
   incremental shared-base ASE, and multi-bundle events fan out over
   the persistent worker pool ([jobs]). *)

open Separ_ame
module Ase = Separ_ase.Ase
module Trace = Separ_obs.Trace
module Metrics = Separ_obs.Metrics
module Log = Separ_obs.Log
module Smap = Map.Make (String)
module Pkgs = Index.Pkgs

let c_uploads = Metrics.counter "serve.uploads"
let c_removes = Metrics.counter "serve.removes"
let c_selected = Metrics.counter "serve.bundles_selected"
let c_skipped = Metrics.counter "serve.bundles_skipped"

let h_latency_ms =
  Metrics.histogram
    ~buckets:[| 1.0; 5.0; 10.0; 50.0; 100.0; 500.0; 1000.0; 5000.0 |]
    "serve.upload_to_verdict_ms"

type event = Upload of Separ_dalvik.Apk.t | Remove of string

type verdict = {
  vd_package : string;
  vd_event : string;  (* "upload" or "remove" *)
  vd_store_size : int;
  vd_candidates : string list;
  vd_analyzed : int;
  vd_vulnerabilities : int;
  vd_latency_ms : float;
}

type t = {
  mutable models : App_model.t Smap.t;
  index : Index.t;
  reports : (string, Ase.report) Hashtbl.t;
  queue : event Queue.t;
  k1 : bool;
  signatures : Separ_specs.Signatures.t list option;
  limit_per_sig : int;
  jobs : int;
  cache : Separ_cache.Store.t option;
}

let create ?(k1 = true) ?signatures
    ?(limit_per_sig = Separ_relog.Solve.default_enum_limit) ?(jobs = 1) ?cache
    () =
  {
    models = Smap.empty;
    index = Index.create ();
    reports = Hashtbl.create 64;
    queue = Queue.create ();
    k1;
    signatures;
    limit_per_sig;
    jobs;
    cache;
  }

let store_size t = Smap.cardinal t.models
let packages t = List.map fst (Smap.bindings t.models)
let model t pkg = Smap.find_opt pkg t.models
let report t pkg = Hashtbl.find_opt t.reports pkg

let reports t =
  List.sort
    (fun (a, _) (b, _) -> compare (a : string) b)
    (Hashtbl.fold (fun pkg r acc -> (pkg, r) :: acc) t.reports [])

(* Exact interaction test behind the index's candidates: does either
   app own an intent that resolves to a component of the other? *)
let interacts (a : App_model.t) (b : App_model.t) =
  let sends (src : App_model.t) (dst : App_model.t) =
    List.exists
      (fun (c : App_model.component_model) ->
        List.exists
          (fun im ->
            List.exists
              (fun dc -> Bundle.resolves_to im dc)
              dst.App_model.am_components)
          c.App_model.cm_intents)
      src.App_model.am_components
  in
  sends a b || sends b a

(* The scope bundle of one app: itself plus its exact ICC partners,
   found by re-checking the index's candidate partners.  Members are
   sorted by package, so the bundle (and hence its report) is a pure
   function of the store's model map — full repair and selective
   processing construct byte-identical inputs. *)
let scope t pkg =
  match Smap.find_opt pkg t.models with
  | None -> []
  | Some app ->
      let candidates = Index.affected t.index app in
      let partners =
        Pkgs.fold
          (fun other acc ->
            if other = pkg then acc
            else
              match Smap.find_opt other t.models with
              | Some om when interacts app om -> other :: acc
              | _ -> acc)
          candidates []
      in
      List.sort compare (pkg :: partners)

let scope_bundle t pkg =
  Bundle.of_models
    (List.filter_map (fun p -> Smap.find_opt p t.models) (scope t pkg))

(* Re-analyze the scope bundles of [pkgs] (sorted, deduplicated
   upstream) on the worker pool and install the fresh reports. *)
let analyze_scopes t pkgs =
  let bundles = List.map (scope_bundle t) pkgs in
  let reports =
    Ase.analyze_many ?signatures:t.signatures ~limit_per_sig:t.limit_per_sig
      ~jobs:t.jobs ?cache:t.cache bundles
  in
  List.iter2 (fun pkg r -> Hashtbl.replace t.reports pkg r) pkgs reports

(* Process one event against the live store: update models and index,
   select the candidate set, dispatch only those scope bundles. *)
let process t event =
  let t0 = Unix.gettimeofday () in
  let kind, pkg, affected =
    match event with
    | Upload apk ->
        let pkg = Separ_dalvik.Apk.package apk in
        Trace.with_span "serve.event"
          ~attrs:
            [ Trace.attr_str "kind" "upload"; Trace.attr_str "package" pkg ]
          (fun () ->
            let fresh =
              Extract.extract_cached ?cache:t.cache ~k1:t.k1 apk
            in
            (* everyone the old footprint could touch... *)
            let before =
              match Smap.find_opt pkg t.models with
              | Some old ->
                  let reach = Index.affected t.index old in
                  Index.remove t.index old;
                  reach
              | None -> Pkgs.empty
            in
            t.models <- Smap.add pkg fresh t.models;
            Index.add t.index fresh;
            (* ... plus everyone the new footprint can touch *)
            let after = Index.affected t.index fresh in
            Metrics.incr c_uploads;
            ("upload", pkg, Pkgs.add pkg (Pkgs.union before after)))
    | Remove pkg ->
        Trace.with_span "serve.event"
          ~attrs:
            [ Trace.attr_str "kind" "remove"; Trace.attr_str "package" pkg ]
          (fun () ->
            let affected =
              match Smap.find_opt pkg t.models with
              | Some old ->
                  let reach = Index.affected t.index old in
                  Index.remove t.index old;
                  t.models <- Smap.remove pkg t.models;
                  Hashtbl.remove t.reports pkg;
                  reach
              | None -> Pkgs.empty
            in
            Metrics.incr c_removes;
            ("remove", pkg, affected))
  in
  (* candidates: affected apps still in the store, in sorted order *)
  let candidates =
    List.filter (fun p -> Smap.mem p t.models) (Pkgs.elements affected)
  in
  let store_size = Smap.cardinal t.models in
  Trace.with_span "serve.analyze"
    ~attrs:
      [
        Trace.attr_str "package" pkg;
        Trace.attr_int "candidates" (List.length candidates);
        Trace.attr_int "store_size" store_size;
      ]
    (fun () -> analyze_scopes t candidates);
  Metrics.add c_selected (List.length candidates);
  Metrics.add c_skipped (max 0 (store_size - List.length candidates));
  let latency_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  Metrics.observe h_latency_ms latency_ms;
  let vulnerabilities =
    match Hashtbl.find_opt t.reports pkg with
    | Some r -> List.length r.Ase.r_vulnerabilities
    | None -> 0
  in
  Log.info "serve.verdict"
    ~fields:
      [
        ("package", Trace.Str pkg);
        ("event", Trace.Str kind);
        ("candidates", Trace.Int (List.length candidates));
        ("store_size", Trace.Int store_size);
        ("latency_ms", Trace.Float latency_ms);
      ];
  {
    vd_package = pkg;
    vd_event = kind;
    vd_store_size = store_size;
    vd_candidates = candidates;
    vd_analyzed = List.length candidates;
    vd_vulnerabilities = vulnerabilities;
    vd_latency_ms = latency_ms;
  }

let submit t event = Queue.add event t.queue
let pending t = Queue.length t.queue

let drain t =
  let rec go acc =
    match Queue.take_opt t.queue with
    | None -> List.rev acc
    | Some ev -> go (process t ev :: acc)
  in
  go []

(* The brute-force reference: re-analyze every app's scope bundle.
   Selective processing must agree with this byte for byte (stripped),
   which the [--serve-smoke] gate and test_serve.ml assert. *)
let full_repair t =
  let pkgs = packages t in
  Trace.with_span "serve.full_repair"
    ~attrs:[ Trace.attr_int "store_size" (List.length pkgs) ]
    (fun () -> analyze_scopes t pkgs);
  List.length pkgs

(* Rebuild the footprint index from the live models — a consistency
   escape hatch; hot updates keep [Index.equal] to this (tested). *)
let rebuilt_index t = Index.rebuild (List.map snd (Smap.bindings t.models))
let index t = t.index

let pp_verdict ppf v =
  Fmt.pf ppf
    "%s %s: %d vulnerabilities (%d/%d bundles analyzed, %.1f ms)"
    v.vd_event v.vd_package v.vd_vulnerabilities v.vd_analyzed
    v.vd_store_size v.vd_latency_ms
