(* The intent-filter footprint index: who in the store could talk to
   whom, at app granularity, without pairwise resolution.

   Receive side — for every app, every intent filter of its public
   components contributes its actions, categories, data schemes and
   data MIME types to per-key buckets, plus membership in the
   any-filter bucket (action-less intents pass any filter that lists
   some action) and a no-data bucket (filters constraining neither
   schemes nor types, the only ones a data-less intent can pass).
   Every component name, public or not, is indexed for explicit
   addressing (explicit intents reach private components).

   Send side — every intent contributes its resolved action (or the
   wildcard bucket when the action is missing or statically
   unresolvable) and, for explicit intents, its target class name.

   Lookups intersect receive buckets exactly the way
   [Intent_filter.matches] conjoins its tests, each bucket a
   conservative over-approximation of one test, so the candidate set is
   provably a superset of the exact resolution set (property-tested in
   test_serve.ml): dropping the host refinement and widening unresolved
   actions to the wildcard can only add candidates, never lose one. *)

open Separ_ame
module Pkgs = Set.Make (String)

type bucket = (string, Pkgs.t) Hashtbl.t

type t = {
  rx_action : bucket;
  rx_category : bucket;
  rx_scheme : bucket;
  rx_type : bucket;
  rx_component : bucket;      (* component class name -> owning apps *)
  mutable rx_nodata : Pkgs.t; (* filters with no scheme and no type lists *)
  mutable rx_all : Pkgs.t;    (* apps with at least one public filter *)
  tx_action : bucket;
  tx_component : bucket;      (* explicit target class name -> senders *)
  mutable tx_wildcard : Pkgs.t; (* senders of action-less/unresolved intents *)
}

let create () =
  {
    rx_action = Hashtbl.create 64;
    rx_category = Hashtbl.create 16;
    rx_scheme = Hashtbl.create 16;
    rx_type = Hashtbl.create 16;
    rx_component = Hashtbl.create 64;
    rx_nodata = Pkgs.empty;
    rx_all = Pkgs.empty;
    tx_action = Hashtbl.create 64;
    tx_component = Hashtbl.create 64;
    tx_wildcard = Pkgs.empty;
  }

let bucket_get b key =
  match Hashtbl.find_opt b key with Some s -> s | None -> Pkgs.empty

let bucket_add b key pkg = Hashtbl.replace b key (Pkgs.add pkg (bucket_get b key))

let bucket_remove b key pkg =
  let s = Pkgs.remove pkg (bucket_get b key) in
  if Pkgs.is_empty s then Hashtbl.remove b key else Hashtbl.replace b key s

(* The footprint of one app, as the flat (bucket, key) contribution
   list; [add] and [remove] walk the same list, so removal deletes
   exactly what addition inserted and hot update stays equal to a
   rebuild from scratch. *)
type contribution =
  | Rx_action of string
  | Rx_category of string
  | Rx_scheme of string
  | Rx_type of string
  | Rx_component of string
  | Rx_nodata
  | Rx_all
  | Tx_action of string
  | Tx_component of string
  | Tx_wildcard

let contributions (app : App_model.t) =
  let acc = ref [] in
  let push c = acc := c :: !acc in
  List.iter
    (fun (c : App_model.component_model) ->
      push (Rx_component c.cm_name);
      if c.cm_public then
        List.iter
          (fun (f : Separ_android.Intent_filter.t) ->
            if f.actions <> [] then push Rx_all;
            List.iter (fun a -> push (Rx_action a)) f.actions;
            List.iter (fun cat -> push (Rx_category cat)) f.categories;
            List.iter (fun s -> push (Rx_scheme s)) f.data_schemes;
            List.iter (fun ty -> push (Rx_type ty)) f.data_types;
            if f.data_schemes = [] && f.data_types = [] then push Rx_nodata)
          c.cm_filters;
      List.iter
        (fun (im : App_model.intent_model) ->
          match im.im_target with
          | Some tgt -> push (Tx_component tgt)
          | None ->
              if im.im_passive then ()
                (* passive replies carry no addressing of their own;
                   their targets are the result-requesting senders,
                   whose own intents are indexed *)
              else if im.im_action_unresolved || im.im_action = None then
                push Tx_wildcard
              else push (Tx_action (Option.get im.im_action)))
        c.cm_intents)
    app.App_model.am_components;
  !acc

let apply_contribution t pkg ~add c =
  let on b key = if add then bucket_add b key pkg else bucket_remove b key pkg in
  let on_set get set =
    if add then set (Pkgs.add pkg (get ())) else set (Pkgs.remove pkg (get ()))
  in
  match c with
  | Rx_action a -> on t.rx_action a
  | Rx_category cat -> on t.rx_category cat
  | Rx_scheme s -> on t.rx_scheme s
  | Rx_type ty -> on t.rx_type ty
  | Rx_component n -> on t.rx_component n
  | Rx_nodata -> on_set (fun () -> t.rx_nodata) (fun s -> t.rx_nodata <- s)
  | Rx_all -> on_set (fun () -> t.rx_all) (fun s -> t.rx_all <- s)
  | Tx_action a -> on t.tx_action a
  | Tx_component n -> on t.tx_component n
  | Tx_wildcard -> on_set (fun () -> t.tx_wildcard) (fun s -> t.tx_wildcard <- s)

(* Sets are idempotent, so a duplicated contribution (two filters
   listing the same action) adds once; removal walks the same
   deduplicated view to avoid over-deleting. *)
let dedup cs = List.sort_uniq compare cs

let add t (app : App_model.t) =
  List.iter
    (apply_contribution t app.App_model.am_package ~add:true)
    (dedup (contributions app))

let remove t (app : App_model.t) =
  List.iter
    (apply_contribution t app.App_model.am_package ~add:false)
    (dedup (contributions app))

let rebuild apps =
  let t = create () in
  List.iter (add t) apps;
  t

(* --- lookups ---------------------------------------------------------------- *)

(* Candidate receiving apps of one (extracted) intent: an intersection
   of one conservative bucket per conjunct of the exact match.  [None]
   stands for "unconstrained" (the whole store), so intersections only
   ever narrow from an over-approximation. *)
let receivers t (im : App_model.intent_model) : Pkgs.t =
  match im.App_model.im_target with
  | Some tgt -> bucket_get t.rx_component tgt
  | None ->
      if im.im_passive then Pkgs.empty
        (* implicit passive intents resolve only through Algorithm 1,
           whose edges the send side of the requesting intent covers *)
      else begin
        let meet acc s =
          match acc with
          | None -> Some s
          | Some acc -> Some (Pkgs.inter acc s)
        in
        let acc =
          if im.im_action_unresolved then Some t.rx_all
          else
            match im.im_action with
            | Some a -> Some (bucket_get t.rx_action a)
            | None -> Some t.rx_all
        in
        let acc =
          List.fold_left
            (fun acc cat -> meet acc (bucket_get t.rx_category cat))
            acc im.im_categories
        in
        let data =
          match (im.im_data_scheme, im.im_data_type) with
          | None, None -> [ t.rx_nodata ]
          | Some s, None -> [ bucket_get t.rx_scheme s ]
          | None, Some ty -> [ bucket_get t.rx_type ty ]
          | Some s, Some ty ->
              [ bucket_get t.rx_scheme s; bucket_get t.rx_type ty ]
        in
        let acc = List.fold_left meet acc data in
        match acc with Some s -> s | None -> t.rx_all
      end

(* Candidate apps that could send an intent some component of [app]
   receives: the union (union, not intersection — each of the app's
   filters is an independent entry point) of the send-side buckets its
   filters and component names touch, plus every wildcard sender. *)
let senders_to t (app : App_model.t) : Pkgs.t =
  List.fold_left
    (fun acc (c : App_model.component_model) ->
      let acc = Pkgs.union acc (bucket_get t.tx_component c.cm_name) in
      if c.cm_public then
        List.fold_left
          (fun acc (f : Separ_android.Intent_filter.t) ->
            List.fold_left
              (fun acc a -> Pkgs.union acc (bucket_get t.tx_action a))
              acc f.actions)
          acc c.cm_filters
      else acc)
    t.tx_wildcard app.App_model.am_components

(* Everyone whose inter-app ICC surface [app] can touch: apps it could
   send to, plus apps that could send to it. *)
let affected t (app : App_model.t) : Pkgs.t =
  let rx =
    List.fold_left
      (fun acc (c : App_model.component_model) ->
        List.fold_left
          (fun acc im -> Pkgs.union acc (receivers t im))
          acc c.App_model.cm_intents)
      Pkgs.empty app.App_model.am_components
  in
  Pkgs.union rx (senders_to t app)

(* --- canonical dump (hot-update = rebuild equality) ------------------------- *)

let dump t =
  let of_bucket prefix b =
    Hashtbl.fold
      (fun key pkgs acc -> (prefix ^ ":" ^ key, Pkgs.elements pkgs) :: acc)
      b []
  in
  let of_set name s = [ (name, Pkgs.elements s) ] in
  List.sort compare
    (List.concat
       [
         of_bucket "rx_action" t.rx_action;
         of_bucket "rx_category" t.rx_category;
         of_bucket "rx_scheme" t.rx_scheme;
         of_bucket "rx_type" t.rx_type;
         of_bucket "rx_component" t.rx_component;
         of_set "rx_nodata" t.rx_nodata;
         of_set "rx_all" t.rx_all;
         of_bucket "tx_action" t.tx_action;
         of_bucket "tx_component" t.tx_component;
         of_set "tx_wildcard" t.tx_wildcard;
       ])

let equal a b = dump a = dump b

type stats = {
  st_keys : int;     (* distinct bucket keys across all bucket families *)
  st_entries : int;  (* total (key, app) memberships *)
}

let stats t =
  let d = dump t in
  {
    st_keys = List.length d;
    st_entries = List.fold_left (fun acc (_, ps) -> acc + List.length ps) 0 d;
  }
