(** The intent-filter footprint index: maps ICC surface keys (actions,
    categories, data schemes, data MIME types, component class names)
    to the apps that can receive or send them, so an app upload
    resolves to a small candidate set of interaction partners instead
    of a pairwise scan of the store.

    Soundness contract (property-tested): for every intent [im] and
    every store, {!receivers} returns a {e superset} of the packages
    owning a component [im] exactly resolves to
    ({!Separ_ame.Bundle.resolves_to}), and {!senders_to}[ t app]
    returns a superset of the packages owning an intent that exactly
    resolves to one of [app]'s components.  Hot updates
    ({!add}/{!remove}) leave the index {!equal} to a {!rebuild} from
    scratch. *)

open Separ_ame

module Pkgs : Set.S with type elt = string

type t

val create : unit -> t

(** Insert one app's footprint.  An app must be [remove]d (with the
    model that was added) before a changed model is re-added. *)
val add : t -> App_model.t -> unit

(** Remove exactly the footprint [add] inserted for this model. *)
val remove : t -> App_model.t -> unit

val rebuild : App_model.t list -> t

(** Candidate receiving apps of one intent (superset of exact
    resolution; implicit passive intents return the empty set — their
    delivery edges belong to the requesting sender's intent). *)
val receivers : t -> App_model.intent_model -> Pkgs.t

(** Candidate apps that could send an intent some component of [app]
    receives. *)
val senders_to : t -> App_model.t -> Pkgs.t

(** [receivers] of every intent of [app], union [senders_to] it: the
    apps whose inter-app ICC surface a change to [app] can touch. *)
val affected : t -> App_model.t -> Pkgs.t

(** Canonical sorted dump, for equality checks and inspection. *)
val dump : t -> (string * string list) list

val equal : t -> t -> bool

type stats = {
  st_keys : int;     (** distinct bucket keys *)
  st_entries : int;  (** total (key, app) memberships *)
}

val stats : t -> stats
