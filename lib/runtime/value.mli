(** Runtime values of the IR interpreter.  Strings carry a taint set —
    the sensitive resources their contents derive from — so observable
    effects report what data actually escaped. *)

open Separ_android

type t =
  | Vnull
  | Vint of int
  | Vstr of string * Resource.t list
  | Vintent of intent_obj
  | Varray of t array

and intent_obj = {
  mutable o_target : string option;
  mutable o_action : string option;
  mutable o_categories : string list;
  mutable o_data_type : string option;
  mutable o_data_scheme : string option;
  mutable o_data_host : string option;
  mutable o_extras : (string * (string * Resource.t list)) list;
  mutable o_wants_result : bool;
}

val new_intent_obj : unit -> intent_obj
val to_intent : intent_obj -> Intent.t
val of_intent : Intent.t -> intent_obj
val truthy : t -> bool
val as_string : t -> string
val taint_of : t -> Resource.t list
val pp : Format.formatter -> t -> unit
