(* Runtime values of the IR interpreter.  Strings carry a taint set — the
   sensitive resources their contents derive from — so observable effects
   (an SMS leaving the device, a log line) can report what data actually
   escaped, and tests can assert on real end-to-end flows. *)

open Separ_android

type t =
  | Vnull
  | Vint of int
  | Vstr of string * Resource.t list
  | Vintent of intent_obj
  | Varray of t array

and intent_obj = {
  mutable o_target : string option;
  mutable o_action : string option;
  mutable o_categories : string list;
  mutable o_data_type : string option;
  mutable o_data_scheme : string option;
  mutable o_data_host : string option;
  mutable o_extras : (string * (string * Resource.t list)) list;
  mutable o_wants_result : bool;
}

let new_intent_obj () =
  {
    o_target = None;
    o_action = None;
    o_categories = [];
    o_data_type = None;
    o_data_scheme = None;
    o_data_host = None;
    o_extras = [];
    o_wants_result = false;
  }

let to_intent (o : intent_obj) : Intent.t =
  Intent.make ?target:o.o_target ?action:o.o_action
    ~categories:o.o_categories ?data_type:o.o_data_type
    ?data_scheme:o.o_data_scheme ?data_host:o.o_data_host
    ~extras:
      (List.map
         (fun (k, (v, taint)) -> Intent.{ key = k; value = v; taint })
         o.o_extras)
    ~wants_result:o.o_wants_result ()

let of_intent (i : Intent.t) : intent_obj =
  {
    o_target = i.Intent.target;
    o_action = i.Intent.action;
    o_categories = i.Intent.categories;
    o_data_type = i.Intent.data_type;
    o_data_scheme = i.Intent.data_scheme;
    o_data_host = i.Intent.data_host;
    o_extras =
      List.map
        (fun e -> (e.Intent.key, (e.Intent.value, e.Intent.taint)))
        i.Intent.extras;
    o_wants_result = i.Intent.wants_result;
  }

let rec truthy = function
  | Vnull -> false
  | Vint 0 -> false
  | Vint _ -> true
  | Vstr _ -> true
  | Vintent _ -> true
  | Varray a -> Array.length a > 0 && truthy a.(0)

let rec as_string = function
  | Vstr (s, _) -> s
  | Vint n -> string_of_int n
  | Vnull -> ""
  | Vintent _ -> "<intent>"
  | Varray a ->
      "[" ^ String.concat ";" (Array.to_list (Array.map as_string a)) ^ "]"

let rec taint_of = function
  | Vstr (_, t) -> t
  | Varray a ->
      List.sort_uniq Resource.compare
        (List.concat_map taint_of (Array.to_list a))
  | _ -> []

let rec pp ppf = function
  | Vnull -> Fmt.string ppf "null"
  | Vint n -> Fmt.int ppf n
  | Vstr (s, []) -> Fmt.pf ppf "%S" s
  | Vstr (s, t) ->
      Fmt.pf ppf "%S<%a>" s Fmt.(list ~sep:(any ",") Resource.pp) t
  | Vintent _ -> Fmt.string ppf "<intent>"
  | Varray a -> Fmt.pf ppf "[|%a|]" Fmt.(array ~sep:(any "; ") pp) a
