(** The simulated Android device and APE, the policy enforcer.

    The device installs APKs, resolves and dispatches intents between
    components (including dynamically registered broadcast receivers,
    which the static extractor deliberately does not see), and executes
    component code with an IR interpreter whose API semantics agree with
    the static analyses.

    When enforcement is on, every ICC delivery is routed through a hook
    (the PEP) that marshals an event record across the PDP process
    boundary and applies the verdict: allowed deliveries proceed, denials
    are dropped, prompts go to the user-consent callback.  Refused
    operations are skipped without crashing the caller. *)

open Separ_android
open Separ_dalvik
module Policy = Separ_policy.Policy

type t

val create : ?enforcement:bool -> unit -> t

(** Install an app (appended: later installs win ambiguous implicit
    resolution, the pre-Lollipop behaviour that enables hijack). *)
val install : t -> Apk.t -> unit

val uninstall : t -> string -> unit

(** Load policies and record which packages the analysis covered (the
    [Sender_app_not_installed] condition refers to this set).  The
    store is compiled into the PDP decision structure as part of the
    load. *)
val set_policies : t -> Policy.t list -> string list -> unit

(** Hot policy swap: recompile off to the side, then atomically replace
    the PDP snapshot — no device restart, and no check ever observes a
    half-swapped store (the hook reads the snapshot once per check).
    [?analyzed] defaults to the currently recorded analyzed set.
    Counted in [runtime.policy_swaps]; recompile+replace time observed
    in the [runtime.swap_latency_us] histogram. *)
val swap_policies : ?analyzed:string list -> t -> Policy.t list -> unit

(** How the PEP hook consults the PDP: [Compiled] (default) uses the
    in-process compiled decision structure with single-pass
    send+receive evaluation and zero marshalling; [Reference] is the
    uncompiled single-pass scan (the testing oracle); [Ipc] marshals
    the event across the PDP process boundary both ways (the paper's
    deployed architecture, counted in [policy.serializations]). *)
type pdp_mode = Compiled | Reference | Ipc

val set_pdp_mode : t -> pdp_mode -> unit
val pdp_mode : t -> pdp_mode

(** The currently loaded store. *)
val policies : t -> Policy.t list

val set_enforcement : t -> bool -> unit

(** The user-prompt callback; the default refuses everything. *)
val set_consent : t -> (Policy.t -> Policy.icc_event -> bool) -> unit

(** Observable effects so far, oldest first. *)
val effects : t -> Effect.t list

val clear_effects : t -> unit
val find_app : t -> string -> Apk.t option
val app_permissions : Apk.t -> Permission.t list

(** Launch a component directly (as if the user opened it), running
    [entry] (default ["onCreate"]) with [intent] (default empty).
    Execution is bounded by an instruction budget and call-depth limit.
    @raise Invalid_argument if the app is not installed. *)
val start_component :
  ?entry:string -> ?intent:Intent.t -> t -> pkg:string -> component:string -> unit

(** Simulate a user tap: run every click handler the component has
    registered (via [View#setOnClickListener]).
    @raise Invalid_argument if the app is not installed. *)
val click : t -> pkg:string -> component:string -> unit

(** Inject an intent from outside any installed app (adb-style). *)
val inject_intent :
  ?icc:Api.icc_kind ->
  ?sender_app:string ->
  ?sender_perms:Permission.t list ->
  t ->
  Intent.t ->
  unit
