(** Observable effects of an execution on the simulated device: the
    ground truth that tests and the enforcement experiments assert on. *)

open Separ_android

type t =
  | Source_read of { app : string; resource : Resource.t }
  | Sms_sent of {
      app : string;
      number : string;
      body : string;
      taint : Resource.t list;
    }
  | Network_sent of { app : string; payload : string; taint : Resource.t list }
  | Log_written of { app : string; line : string; taint : Resource.t list }
  | File_written of { app : string; data : string; taint : Resource.t list }
  | Notification_shown of { app : string; text : string }
  | Intent_delivered of {
      sender_app : string;
      sender : string;
      receiver_app : string;
      receiver : string;
      icc : Api.icc_kind;
      intent : Intent.t;
    }
  | Delivery_blocked of {
      policy_id : string;
      sender : string;
      receiver : string;
    }
  | Prompt_shown of { policy_id : string; approved : bool }
  | Permission_refused of { app : string; api : string }
  | No_receiver of { sender : string; action : string option }

val pp : Format.formatter -> t -> unit

(** An SMS left the device carrying data derived from the resource. *)
val is_sms_with_taint : Resource.t -> t -> bool

val is_blocked : t -> bool
