(* Observable effects of an execution on the simulated device: the ground
   truth that tests and the enforcement experiments assert on. *)

open Separ_android

type t =
  | Source_read of { app : string; resource : Resource.t }
  | Sms_sent of {
      app : string;
      number : string;
      body : string;
      taint : Resource.t list;
    }
  | Network_sent of { app : string; payload : string; taint : Resource.t list }
  | Log_written of { app : string; line : string; taint : Resource.t list }
  | File_written of { app : string; data : string; taint : Resource.t list }
  | Notification_shown of { app : string; text : string }
  | Intent_delivered of {
      sender_app : string;
      sender : string;
      receiver_app : string;
      receiver : string;
      icc : Api.icc_kind;
      intent : Intent.t;
    }
  | Delivery_blocked of {
      policy_id : string;
      sender : string;
      receiver : string;
    }
  | Prompt_shown of { policy_id : string; approved : bool }
  | Permission_refused of { app : string; api : string }
  | No_receiver of { sender : string; action : string option }

let pp ppf = function
  | Source_read { app; resource } ->
      Fmt.pf ppf "[%s] read %a" app Resource.pp resource
  | Sms_sent { app; number; body; taint } ->
      Fmt.pf ppf "[%s] SMS to %s: %S taint=[%a]" app number body
        Fmt.(list ~sep:(any ",") Resource.pp)
        taint
  | Network_sent { app; payload; taint } ->
      Fmt.pf ppf "[%s] NET %S taint=[%a]" app payload
        Fmt.(list ~sep:(any ",") Resource.pp)
        taint
  | Log_written { app; line; taint } ->
      Fmt.pf ppf "[%s] LOG %S taint=[%a]" app line
        Fmt.(list ~sep:(any ",") Resource.pp)
        taint
  | File_written { app; data; taint } ->
      Fmt.pf ppf "[%s] FILE %S taint=[%a]" app data
        Fmt.(list ~sep:(any ",") Resource.pp)
        taint
  | Notification_shown { app; text } -> Fmt.pf ppf "[%s] NOTIFY %S" app text
  | Intent_delivered { sender; receiver; icc; _ } ->
      Fmt.pf ppf "%s --%s--> %s" sender (Api.icc_kind_to_string icc) receiver
  | Delivery_blocked { policy_id; sender; receiver } ->
      Fmt.pf ppf "BLOCKED %s -> %s (policy %s)" sender receiver policy_id
  | Prompt_shown { policy_id; approved } ->
      Fmt.pf ppf "PROMPT policy %s: %s" policy_id
        (if approved then "approved" else "refused")
  | Permission_refused { app; api } ->
      Fmt.pf ppf "[%s] permission refused for %s" app api
  | No_receiver { sender; action } ->
      Fmt.pf ppf "%s: no receiver for action %a" sender
        Fmt.(option ~none:(any "<none>") string)
        action

(* Effect queries used by tests. *)
let is_sms_with_taint r = function
  | Sms_sent { taint; _ } -> List.mem r taint
  | _ -> false

let is_blocked = function Delivery_blocked _ -> true | _ -> false
