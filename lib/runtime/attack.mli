(** Concretize a synthesized attack scenario into a runnable malicious
    APK: the solver produces the *signature* of a malicious capability;
    this module manufactures an app with exactly that capability, so the
    exploit can be demonstrated against the unprotected device and shown
    to be blocked under APE.  The generated app requests no permissions. *)

open Separ_dalvik
open Separ_specs

val attacker_package : string
val attacker_component : string

(** Build the malicious app for a scenario: a filter-registering thief
    for hijack scenarios, an intent-crafting launcher for launch and
    privilege-escalation scenarios (filling every extra key the victim's
    entry point reads).  [None] for scenarios with no adversary (pure
    inter-app leaks). *)
val concretize : Separ_ame.Bundle.t -> Scenario.t -> Apk.t option

(** Start the generated attack app's payload component. *)
val trigger : Device.t -> unit
