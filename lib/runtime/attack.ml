(* Concretize a synthesized attack scenario into a runnable malicious
   APK.  This closes the loop the paper describes: the solver produces
   the *signature* of a malicious capability; here we manufacture an app
   with exactly that capability, so the exploit can be demonstrated
   against the unprotected device and shown to be blocked under APE.

   The generated app requests no permissions at all — like the paper's
   postulated adversary, its power comes entirely from the vulnerable
   apps already installed. *)

open Separ_android
open Separ_dalvik
open Separ_specs
open Separ_ame
module B = Builder

let attacker_package = "com.attacker.generated"
let attacker_component = "PayloadComponent"

(* Exfiltrate a value in a register: the adversary has no permissions, so
   it writes to the unprotected log, which any colluding app can read. *)
let exfiltrate b v = B.write_log b ~payload:v

let hijack_component (bundle : Bundle.t) (sc : Scenario.t) =
  let victim_intent =
    Option.bind (Scenario.witness1 sc "hijackedIntent") (fun id ->
        List.find_map
          (fun (_, _, i) -> if i.App_model.im_id = id then Some i else None)
          (Bundle.all_intents bundle))
  in
  let filter =
    match sc.Scenario.sc_mal_filter with
    | Some mf ->
        Intent_filter.make ~actions:mf.Scenario.mf_actions
          ~categories:mf.Scenario.mf_categories
          ~data_types:mf.Scenario.mf_data_types
          ~data_schemes:mf.Scenario.mf_data_schemes
          ~data_hosts:mf.Scenario.mf_data_hosts ()
    | None -> Intent_filter.make ~actions:[ "android.intent.action.ANY" ] ()
  in
  let kind =
    match victim_intent with
    | Some i -> Encode.delivery_kind i.App_model.im_icc
    | None -> Component.Receiver
  in
  let entry =
    match kind with
    | Component.Activity -> "onCreate"
    | Component.Service -> "onStartCommand"
    | Component.Receiver -> "onReceive"
    | Component.Provider -> "query"
  in
  let body =
    B.meth ~name:entry ~params:1 (fun b ->
        let stolen = B.get_all_extras b 0 in
        exfiltrate b stolen)
  in
  ( Component.make ~name:attacker_component ~kind ~intent_filters:[ filter ] (),
    B.cls ~name:attacker_component [ body ] )

(* Craft and fire the malicious intent described by the scenario.  The
   payload for each extra key the victim component reads is attacker-
   controlled. *)
let launcher_component (bundle : Bundle.t) (sc : Scenario.t) =
  let mi = sc.Scenario.sc_mal_intent in
  let victim =
    List.find_map
      (fun name ->
        Option.bind (Scenario.witness1 sc name) (fun atom ->
            Option.map snd (Bundle.find_component bundle atom)))
      [ "launchedCmp"; "victimCmp" ]
  in
  let body =
    B.meth ~name:"onCreate" ~params:1 (fun b ->
        let i = B.new_intent b in
        (match mi with
        | Some m -> (
            (match m.Scenario.mi_target with
            | Some t -> B.set_class_name b i t
            | None -> (
                (* fall back to explicit targeting of the victim *)
                match victim with
                | Some v -> B.set_class_name b i v.App_model.cm_name
                | None -> ()));
            (match m.Scenario.mi_action with
            | Some a -> B.set_action b i a
            | None -> ());
            (match (m.Scenario.mi_data_scheme, m.Scenario.mi_data_host) with
            | Some s, Some h -> B.set_data_uri b i (s ^ "://" ^ h)
            | Some s, None -> B.set_data_uri b i s
            | None, _ -> ());
            (match m.Scenario.mi_data_type with
            | Some ty -> B.set_data_type b i ty
            | None -> ());
            List.iter (fun c -> B.add_category b i c) m.Scenario.mi_categories)
        | None -> (
            match victim with
            | Some v -> B.set_class_name b i v.App_model.cm_name
            | None -> ()));
        (* fill every extra key the victim's entry point reads *)
        (match victim with
        | Some v ->
            List.iter
              (fun key ->
                let payload = B.const_str b ("attacker:" ^ key) in
                B.put_extra b i ~key ~value:payload)
              v.App_model.cm_reads_extras
        | None -> ());
        let send =
          match (mi, victim) with
          | Some m, _ -> (
              match m.Scenario.mi_delivery with
              | Component.Service -> B.start_service
              | Component.Receiver -> B.send_broadcast
              | Component.Provider -> fun b i -> B.provider_op b Api.Provider_query i
              | Component.Activity -> B.start_activity)
          | None, Some v -> (
              match v.App_model.cm_kind with
              | Component.Service -> B.start_service
              | Component.Receiver -> B.send_broadcast
              | Component.Provider -> fun b i -> B.provider_op b Api.Provider_query i
              | Component.Activity -> B.start_activity)
          | None, None -> B.start_service
        in
        send b i)
  in
  ( Component.make ~name:attacker_component ~kind:Component.Activity (),
    B.cls ~name:attacker_component [ body ] )

(* Build the malicious app for a scenario.  Returns [None] for scenarios
   that involve no adversary (pure inter-app leaks). *)
let concretize (bundle : Bundle.t) (sc : Scenario.t) : Apk.t option =
  let make comp cls =
    Some
      (Apk.make
         ~manifest:
           (Manifest.make ~package:attacker_package ~uses_permissions:[]
              ~components:[ comp ] ())
         ~classes:[ cls ])
  in
  match sc.Scenario.sc_kind with
  | "intent_hijack" ->
      let comp, cls = hijack_component bundle sc in
      make comp cls
  | "activity_launch" | "service_launch" | "privilege_escalation" ->
      let comp, cls = launcher_component bundle sc in
      make comp cls
  | _ -> None

(* How to trigger the attack once the app is installed. *)
let trigger device =
  Device.start_component device ~pkg:attacker_package
    ~component:attacker_component
