(* The simulated Android device and APE, the policy enforcer.

   The device installs APKs, resolves and dispatches intents between
   components (including dynamically registered broadcast receivers,
   which the static extractor deliberately does not see), and executes
   component code with a small IR interpreter whose API semantics agree
   with the static analyses.

   Enforcement follows the paper's architecture: every ICC operation is
   routed through a hook (the PEP); when enforcement is on, the hook
   builds an event record and consults the PDP ({!Separ_policy.Policy.decide})
   against the synthesized policies; prompts go to a user-consent
   callback; refused or denied operations are skipped without crashing
   the caller — the asynchronous call simply never completes. *)

open Separ_android
open Separ_dalvik
module Policy = Separ_policy.Policy
module Compile = Separ_policy.Compile
module Metrics = Separ_obs.Metrics

(* PEP telemetry: counts and per-hook PDP latency, the RQ4 breakdown.
   The extra clock reads happen only when metrics are on, so disabled
   telemetry costs one branch per hook. *)
let c_hook_checks = Metrics.counter "runtime.hook_checks"
let c_allowed = Metrics.counter "runtime.allowed"
let c_denied = Metrics.counter "runtime.denied"
let c_prompted = Metrics.counter "runtime.prompted"

let h_hook_latency =
  Metrics.histogram
    ~buckets:[| 0.5; 1.0; 2.0; 5.0; 10.0; 25.0; 50.0; 100.0; 500.0 |]
    "runtime.hook_latency_us"

(* Hot policy swap telemetry: how often the store is replaced under
   traffic, and how long the off-to-the-side recompilation takes. *)
let c_policy_swaps = Metrics.counter "runtime.policy_swaps"

let h_swap_latency =
  Metrics.histogram
    ~buckets:[| 10.0; 50.0; 100.0; 500.0; 1000.0; 5000.0; 25000.0; 100000.0 |]
    "runtime.swap_latency_us"

(* How the hook consults the PDP.
   [Compiled] (default): the in-process compiled decision structure —
   one event view, single-pass send+receive evaluation, no marshalling.
   [Reference]: the uncompiled single-pass scan over the store, same
   view sharing; the oracle the compiled path is tested against.
   [Ipc]: the paper's deployed architecture — the event is marshalled
   across the PDP process boundary and back (counted in
   [policy.serializations]); RQ4's overhead story. *)
type pdp_mode = Compiled | Reference | Ipc

(* The PDP state the hook consults, as ONE immutable snapshot: the hook
   reads [t.pdp] exactly once per check, so a concurrent
   [swap_policies] — which builds a full replacement off to the side
   and then performs a single pointer write — can never expose a
   half-swapped store (policies from one store, compiled form or
   analyzed set from another). *)
type pdp = {
  pd_policies : Policy.t list;
  pd_compiled : Compile.t;
  pd_analyzed : string list; (* packages covered by the last analysis *)
}

let build_pdp policies analyzed =
  {
    pd_policies = policies;
    pd_compiled = Compile.compile policies;
    pd_analyzed = analyzed;
  }

type t = {
  mutable apps : Apk.t list;
  mutable pdp : pdp;
  mutable pdp_mode : pdp_mode;
  mutable enforcement : bool;
  mutable consent : Policy.t -> Policy.icc_event -> bool;
  mutable effects : Effect.t list; (* newest first *)
  mutable dyn_receivers : (string * string * Intent_filter.t) list;
  mutable abort_requested : bool; (* set by abortBroadcast during delivery *)
  mutable callbacks : (string * string * string) list;
      (* (package, component, handler method) registered click handlers *)
  fields : (string * string, Value.t) Hashtbl.t; (* (package, field) heap *)
  mutable fuel : int;
  max_depth : int;
}

let create ?(enforcement = false) () =
  {
    apps = [];
    pdp = build_pdp [] [];
    pdp_mode = Compiled;
    enforcement;
    consent = (fun _ _ -> false);
    effects = [];
    dyn_receivers = [];
    abort_requested = false;
    callbacks = [];
    fields = Hashtbl.create 16;
    fuel = 0;
    max_depth = 24;
  }

let install t apk = t.apps <- t.apps @ [ apk ]

let uninstall t pkg =
  t.apps <- List.filter (fun a -> Apk.package a <> pkg) t.apps;
  t.dyn_receivers <- List.filter (fun (p, _, _) -> p <> pkg) t.dyn_receivers;
  t.callbacks <- List.filter (fun (p, _, _) -> p <> pkg) t.callbacks

let set_policies t policies analyzed_packages =
  t.pdp <- build_pdp policies analyzed_packages

(* Hot swap: recompile off to the side, then replace the snapshot with
   one pointer write.  Checks running before the write see the old
   store in full; checks after see the new one in full. *)
let swap_policies ?analyzed t policies =
  let analyzed =
    match analyzed with Some a -> a | None -> t.pdp.pd_analyzed
  in
  if Metrics.is_enabled () then begin
    let t0 = Separ_obs.Trace.now_us () in
    let next = build_pdp policies analyzed in
    t.pdp <- next;
    Metrics.observe h_swap_latency (Separ_obs.Trace.now_us () -. t0);
    Metrics.incr c_policy_swaps
  end
  else t.pdp <- build_pdp policies analyzed

let set_pdp_mode t mode = t.pdp_mode <- mode
let pdp_mode t = t.pdp_mode
let policies t = t.pdp.pd_policies
let set_enforcement t on = t.enforcement <- on
let set_consent t f = t.consent <- f
let effects t = List.rev t.effects
let clear_effects t = t.effects <- []
let emit t e = t.effects <- e :: t.effects

let app_permissions apk = apk.Apk.manifest.Manifest.uses_permissions

let find_app t pkg = List.find_opt (fun a -> Apk.package a = pkg) t.apps

(* --- interpretation ------------------------------------------------------ *)

type ctx = {
  device : t;
  apk : Apk.t;
  component : string;
  caller_app : string option;
  caller_perms : Permission.t list;
  result_to : (string * string) option; (* app, component *)
  incoming : Value.t;
  depth : int;
}

exception Out_of_fuel

let synthetic_source_value = function
  | Resource.Location -> "37.4220,-122.0841"
  | Resource.Imei -> "356938035643809"
  | Resource.Phone_number -> "+15551234567"
  | Resource.Contacts -> "alice:+15550001111;bob:+15550002222"
  | Resource.Calendar -> "meeting@10am"
  | Resource.Sms_inbox -> "otp:482910"
  | Resource.Call_log -> "+15559998888@12:05"
  | Resource.Camera_data -> "<jpeg>"
  | Resource.Microphone -> "<pcm>"
  | Resource.Accounts -> "user@example.com"
  | Resource.Browser_history -> "bank.example.com"
  | Resource.Sdcard_data -> "<file>"
  | Resource.Device_info -> "serial:9f27a"
  | r -> Resource.to_string r

let rec exec_method (ctx : ctx) (m : Ir.meth) (args : Value.t list) : Value.t =
  if ctx.depth > ctx.device.max_depth then Vnull
  else begin
    let labels = Ir.label_table m in
    let regs = Array.make (max m.Ir.n_regs 1) Value.Vnull in
    List.iteri (fun i v -> if i < m.Ir.n_regs then regs.(i) <- v) args;
    let last_result = ref Value.Vnull in
    let pkg = Apk.package ctx.apk in
    let n = Array.length m.Ir.body in
    let ret = ref Value.Vnull in
    let pc = ref 0 in
    let running = ref true in
    while !running && !pc < n do
      ctx.device.fuel <- ctx.device.fuel - 1;
      if ctx.device.fuel <= 0 then raise Out_of_fuel;
      let next = ref (!pc + 1) in
      (match m.Ir.body.(!pc) with
      | Ir.Const (r, Ir.Cstr s) -> regs.(r) <- Value.Vstr (s, [])
      | Ir.Const (r, Ir.Cint i) -> regs.(r) <- Value.Vint i
      | Ir.Const (r, Ir.Cnull) -> regs.(r) <- Value.Vnull
      | Ir.Move (d, s) -> regs.(d) <- regs.(s)
      | Ir.New_instance (r, cls) ->
          if cls = Api.c_intent then
            regs.(r) <- Value.Vintent (Value.new_intent_obj ())
          else regs.(r) <- Value.Vnull
      | Ir.Invoke (_, mref, arg_regs) ->
          last_result :=
            invoke ctx (List.map (fun r -> regs.(r)) arg_regs) mref
      | Ir.Move_result r -> regs.(r) <- !last_result
      | Ir.Iget (d, _, f) | Ir.Sget (d, f) ->
          regs.(d) <-
            Option.value ~default:Value.Vnull
              (Hashtbl.find_opt ctx.device.fields (pkg, f))
      | Ir.Iput (s, _, f) | Ir.Sput (s, f) ->
          Hashtbl.replace ctx.device.fields (pkg, f) regs.(s)
      | Ir.New_array (d, n) ->
          let size =
            match regs.(n) with Value.Vint k -> max 0 (min k 4096) | _ -> 0
          in
          regs.(d) <- Value.Varray (Array.make size Value.Vnull)
      | Ir.Aput (s, a, i) -> (
          match (regs.(a), regs.(i)) with
          | Value.Varray arr, Value.Vint k when k >= 0 && k < Array.length arr
            ->
              arr.(k) <- regs.(s)
          | _ -> ())
      | Ir.Aget (d, a, i) -> (
          match (regs.(a), regs.(i)) with
          | Value.Varray arr, Value.Vint k when k >= 0 && k < Array.length arr
            ->
              regs.(d) <- arr.(k)
          | _ -> regs.(d) <- Value.Vnull)
      | Ir.If_eqz (r, l) ->
          if not (Value.truthy regs.(r)) then next := Hashtbl.find labels l
      | Ir.If_nez (r, l) ->
          if Value.truthy regs.(r) then next := Hashtbl.find labels l
      | Ir.Goto l -> next := Hashtbl.find labels l
      | Ir.Label _ | Ir.Nop -> ()
      | Ir.Return (Some r) ->
          ret := regs.(r);
          running := false
      | Ir.Return None -> running := false);
      pc := !next
    done;
    !ret
  end

and invoke (ctx : ctx) (args : Value.t list) (mref : Api.method_ref) : Value.t =
  let t = ctx.device in
  let app = Apk.package ctx.apk in
  let perms = app_permissions ctx.apk in
  let arg n = List.nth_opt args n |> Option.value ~default:Value.Vnull in
  match Api.classify mref with
  | Api.Source r ->
      if not (Api.allowed perms mref) then begin
        emit t (Effect.Permission_refused { app; api = mref.Api.mtd });
        Value.Vnull
      end
      else begin
        emit t (Effect.Source_read { app; resource = r });
        Value.Vstr (synthetic_source_value r, [ r ])
      end
  | Api.Sink r ->
      if not (Api.allowed perms mref) then begin
        emit t (Effect.Permission_refused { app; api = mref.Api.mtd });
        Value.Vnull
      end
      else begin
        let taint =
          List.sort_uniq Resource.compare (List.concat_map Value.taint_of args)
        in
        (match r with
        | Resource.Sms ->
            emit t
              (Effect.Sms_sent
                 {
                   app;
                   number = Value.as_string (arg 0);
                   body = Value.as_string (arg 1);
                   taint;
                 })
        | Resource.Network ->
            emit t
              (Effect.Network_sent
                 { app; payload = Value.as_string (arg 0); taint })
        | Resource.Log ->
            emit t
              (Effect.Log_written { app; line = Value.as_string (arg 0); taint })
        | Resource.Sdcard ->
            emit t
              (Effect.File_written { app; data = Value.as_string (arg 0); taint })
        | Resource.Display ->
            emit t
              (Effect.Notification_shown { app; text = Value.as_string (arg 0) })
        | _ -> ());
        Value.Vnull
      end
  | Api.Broadcast_abort ->
      t.abort_requested <- true;
      Value.Vnull
  | Api.Callback_reg ->
      (match arg 0 with
      | Value.Vstr (handler, _) ->
          t.callbacks <- (app, ctx.component, handler) :: t.callbacks
      | _ -> ());
      Value.Vnull
  | Api.Intent_op op -> intent_op ctx op args
  | Api.Permission_check -> (
      match arg 0 with
      | Value.Vstr (p, _) ->
          Value.Vint (if List.mem p ctx.caller_perms then 1 else 0)
      | _ -> Value.Vint 0)
  | Api.Icc Api.Register_receiver -> (
      (* the intent argument describes the receiver registration: its
         explicit target names the receiver class, its action/category
         fields the dynamic filter *)
      match arg 0 with
      | Value.Vintent o ->
          (match o.Value.o_target with
          | Some cls ->
              let filter =
                Intent_filter.make
                  ~actions:(Option.to_list o.Value.o_action)
                  ~categories:o.Value.o_categories ()
              in
              t.dyn_receivers <- (app, cls, filter) :: t.dyn_receivers
          | None -> ());
          Value.Vnull
      | _ -> Value.Vnull)
  | Api.Icc Api.Set_result -> (
      match (arg 0, ctx.result_to) with
      | Value.Vintent o, Some (rapp, rcmp) ->
          deliver_result ctx o rapp rcmp;
          Value.Vnull
      | _ -> Value.Vnull)
  | Api.Icc icc -> (
      match arg 0 with
      | Value.Vintent o ->
          if icc = Api.Start_activity_for_result then
            o.Value.o_wants_result <- true;
          dispatch ctx icc o
      | _ -> Value.Vnull)
  | Api.Other -> (
      match Apk.find_class ctx.apk mref.Api.cls with
      | Some cls -> (
          match Ir.find_method cls mref.Api.mtd with
          | Some m -> exec_method { ctx with depth = ctx.depth + 1 } m args
          | None -> Value.Vnull)
      | None -> Value.Vnull)

and intent_op ctx op args =
  let arg n = List.nth_opt args n |> Option.value ~default:Value.Vnull in
  let with_intent f =
    match arg 0 with Value.Vintent o -> f o | _ -> Value.Vnull
  in
  match op with
  | Api.New_intent -> Value.Vnull (* constructor side effect only *)
  | Api.Get_intent -> ctx.incoming
  | Api.Set_action ->
      with_intent (fun o ->
          o.Value.o_action <- Some (Value.as_string (arg 1));
          Value.Vnull)
  | Api.Add_category ->
      with_intent (fun o ->
          o.Value.o_categories <-
            o.Value.o_categories @ [ Value.as_string (arg 1) ];
          Value.Vnull)
  | Api.Set_data_type ->
      with_intent (fun o ->
          o.Value.o_data_type <- Some (Value.as_string (arg 1));
          Value.Vnull)
  | Api.Set_data_scheme ->
      with_intent (fun o ->
          let scheme, host = Intent.split_uri (Value.as_string (arg 1)) in
          o.Value.o_data_scheme <- Some scheme;
          o.Value.o_data_host <- host;
          Value.Vnull)
  | Api.Set_class_name ->
      with_intent (fun o ->
          o.Value.o_target <- Some (Value.as_string (arg 1));
          Value.Vnull)
  | Api.Put_extra ->
      with_intent (fun o ->
          let key = Value.as_string (arg 1) in
          let v = arg 2 in
          o.Value.o_extras <-
            (key, (Value.as_string v, Value.taint_of v))
            :: List.remove_assoc key o.Value.o_extras;
          Value.Vnull)
  | Api.Get_extra ->
      with_intent (fun o ->
          let key = Value.as_string (arg 1) in
          match List.assoc_opt key o.Value.o_extras with
          | Some (v, taint) -> Value.Vstr (v, taint)
          | None -> Value.Vnull)
  | Api.Get_all_extras ->
      with_intent (fun o ->
          let parts = List.map (fun (k, (v, _)) -> k ^ "=" ^ v) o.Value.o_extras in
          let taint =
            List.sort_uniq Resource.compare
              (List.concat_map (fun (_, (_, t)) -> t) o.Value.o_extras)
          in
          Value.Vstr (String.concat ";" parts, taint))

(* Resolution: candidate (apk, component) receivers for an intent sent
   from [sender_pkg]. *)
and resolve t ~sender_pkg (intent : Intent.t) (icc : Api.icc_kind) :
    (Apk.t * Component.t) list =
  let delivery = Api.delivery_kind icc in
  let kind_ok (c : Component.t) = c.Component.kind = delivery in
  match intent.Intent.target with
  | Some cls ->
      (* explicit addressing reaches private components only within the
         sending app; other apps' components must be exported *)
      List.filter_map
        (fun apk ->
          match Manifest.component apk.Apk.manifest cls with
          | Some c
            when kind_ok c
                 && (Apk.package apk = sender_pkg || Component.is_public c) ->
              Some (apk, c)
          | _ -> None)
        t.apps
  | None ->
      let static =
        List.concat_map
          (fun apk ->
            List.filter_map
              (fun c ->
                if
                  kind_ok c && Component.is_public c
                  && List.exists
                       (fun f -> Intent_filter.matches ~intent f)
                       c.Component.intent_filters
                then Some (apk, c)
                else None)
              apk.Apk.manifest.Manifest.components)
          t.apps
      in
      let dynamic =
        if icc = Api.Send_broadcast then
          List.filter_map
            (fun (pkg, cls, f) ->
              if Intent_filter.matches ~intent f then
                match find_app t pkg with
                | Some apk -> (
                    match Manifest.component apk.Apk.manifest cls with
                    | Some c -> Some (apk, c)
                    | None ->
                        (* dynamically registered handler without manifest
                           entry: synthesize a receiver component *)
                        Some
                          ( apk,
                            Component.make ~name:cls ~kind:Component.Receiver
                              () ))
                | None -> None
              else None)
            t.dyn_receivers
        else []
      in
      static @ dynamic

(* PEP: one delivery attempt, policy-checked. *)
and deliver_one ctx icc (o : Value.intent_obj) (rapk : Apk.t)
    (rcomp : Component.t) =
  let t = ctx.device in
  let sender_app = Apk.package ctx.apk in
  let sender_perms = app_permissions ctx.apk in
  let intent = Value.to_intent o in
  (* system permission gate: component-level required permission *)
  let perm_ok =
    match rcomp.Component.permission with
    | Some p -> List.mem p sender_perms
    | None -> true
  in
  if not perm_ok then begin
    emit t
      (Effect.Permission_refused
         { app = sender_app; api = "delivery:" ^ rcomp.Component.name });
    Value.Vnull
  end
  else begin
    let proceed () =
      emit t
        (Effect.Intent_delivered
           {
             sender_app;
             sender = ctx.component;
             receiver_app = Apk.package rapk;
             receiver = rcomp.Component.name;
             icc;
             intent;
           });
      match Apk.component_class rapk rcomp with
      | None -> Value.Vnull
      | Some cls -> (
          let entry = Apk.entry_for_icc icc in
          match Ir.find_method cls entry with
          | None -> Value.Vnull
          | Some m ->
              let ctx' =
                {
                  ctx with
                  apk = rapk;
                  component = rcomp.Component.name;
                  caller_app = Some sender_app;
                  caller_perms = sender_perms;
                  result_to =
                    (if intent.Intent.wants_result then
                       Some (sender_app, ctx.component)
                     else None);
                  incoming = Value.Vintent o;
                  depth = ctx.depth + 1;
                }
              in
              let result = exec_method ctx' m [ Value.Vintent o ] in
              (* the framework then drives the rest of the lifecycle *)
              List.iter
                (fun cb ->
                  match Ir.find_method cls cb with
                  | Some cbm ->
                      ignore (exec_method ctx' cbm [ Value.Vintent o ])
                  | None -> ())
                (Apk.lifecycle_after entry);
              result)
    in
    if not t.enforcement then proceed ()
    else begin
      (* Read the PDP snapshot once: event construction and the decision
         both use the same store, even if a consent callback (or any
         re-entrant code) swaps policies mid-check. *)
      let pdp = t.pdp in
      let ev =
        Policy.
          {
            ev_kind = Icc_receive;
            ev_sender_component = ctx.component;
            ev_sender_app = sender_app;
            ev_sender_installed_at_analysis =
              List.mem sender_app pdp.pd_analyzed;
            ev_sender_permissions = sender_perms;
            ev_intent = intent;
            ev_receiver_component = rcomp.Component.name;
            ev_receiver_app = Apk.package rapk;
          }
      in
      (* Both send-side and receive-side policies are evaluated here in
         one pass — the hook observes the full delivery.  The fast path
         stays in-process on the compiled decision structure; the
         opt-in [Ipc] mode marshals the event across the PDP process
         boundary and back, preserving RQ4's measurement story. *)
      let consult () =
        match t.pdp_mode with
        | Compiled -> Compile.decide_full pdp.pd_compiled ev
        | Reference -> Policy.decide_both pdp.pd_policies ev
        | Ipc -> Policy.decide_remote pdp.pd_policies ev
      in
      let decision =
        if Metrics.is_enabled () then begin
          let t0 = Separ_obs.Trace.now_us () in
          let d = consult () in
          Metrics.observe h_hook_latency (Separ_obs.Trace.now_us () -. t0);
          Metrics.incr c_hook_checks;
          (match d with
          | Policy.Allowed -> Metrics.incr c_allowed
          | Policy.Denied _ -> Metrics.incr c_denied
          | Policy.Prompted _ -> Metrics.incr c_prompted);
          d
        end
        else consult ()
      in
      match decision with
      | Policy.Allowed -> proceed ()
      | Policy.Denied p ->
          emit t
            (Effect.Delivery_blocked
               {
                 policy_id = p.Policy.p_id;
                 sender = ctx.component;
                 receiver = rcomp.Component.name;
               });
          Value.Vnull
      | Policy.Prompted p ->
          let approved = t.consent p ev in
          emit t
            (Effect.Prompt_shown { policy_id = p.Policy.p_id; approved });
          if approved then proceed ()
          else begin
            emit t
              (Effect.Delivery_blocked
                 {
                   policy_id = p.Policy.p_id;
                   sender = ctx.component;
                   receiver = rcomp.Component.name;
                 });
            Value.Vnull
          end
    end
  end

and dispatch ctx icc (o : Value.intent_obj) : Value.t =
  let t = ctx.device in
  let intent = Value.to_intent o in
  match resolve t ~sender_pkg:(Apk.package ctx.apk) intent icc with
  | [] ->
      emit t
        (Effect.No_receiver
           { sender = ctx.component; action = intent.Intent.action });
      Value.Vnull
  | candidates ->
      (* Broadcasts go to every matching receiver, highest filter priority
         first; a receiver may consume the broadcast (abortBroadcast), in
         which case lower-priority receivers never see it.  Other ICC
         kinds are point-to-point; with several implicit matches the most
         recently installed wins — the pre-Lollipop ambiguity that makes
         intent hijacking by a later-installed app possible. *)
      if icc = Api.Send_broadcast then begin
        let priority_of (_, (rcomp : Component.t)) =
          List.fold_left
            (fun acc f ->
              if Intent_filter.matches ~intent f then
                max acc f.Intent_filter.priority
              else acc)
            min_int rcomp.Component.intent_filters
        in
        let ordered =
          List.stable_sort
            (fun a b -> compare (priority_of b) (priority_of a))
            candidates
        in
        t.abort_requested <- false;
        let rec deliver = function
          | [] -> ()
          | (rapk, rcomp) :: rest ->
              ignore (deliver_one ctx icc o rapk rcomp);
              if not t.abort_requested then deliver rest
        in
        deliver ordered;
        t.abort_requested <- false;
        Value.Vnull
      end
      else
        deliver_one ctx icc o
          (fst (List.nth candidates (List.length candidates - 1)))
          (snd (List.nth candidates (List.length candidates - 1)))

and deliver_result ctx (o : Value.intent_obj) rapp rcmp =
  let t = ctx.device in
  match find_app t rapp with
  | None -> ()
  | Some rapk -> (
      match Manifest.component rapk.Apk.manifest rcmp with
      | None -> ()
      | Some rcomp -> ignore (deliver_one ctx Api.Set_result o rapk rcomp))

(* --- public entry points ------------------------------------------------- *)

let root_ctx t apk component =
  {
    device = t;
    apk;
    component;
    caller_app = None;
    caller_perms = [];
    result_to = None;
    incoming = Value.Vnull;
    depth = 0;
  }

(* Launch a component directly (as if the user opened it), running entry
   method [entry] with an empty intent. *)
let start_component ?(entry = "onCreate") ?(intent = Intent.empty) t ~pkg
    ~component =
  match find_app t pkg with
  | None -> invalid_arg ("Device.start_component: app not installed: " ^ pkg)
  | Some apk -> (
      match Apk.find_class apk component with
      | None -> ()
      | Some cls -> (
          match Ir.find_method cls entry with
          | None -> ()
          | Some m ->
              t.fuel <- 200_000;
              let o = Value.of_intent intent in
              let ctx =
                { (root_ctx t apk component) with incoming = Value.Vintent o }
              in
              (try
                 ignore (exec_method ctx m [ Value.Vintent o ]);
                 List.iter
                   (fun cb ->
                     match Ir.find_method cls cb with
                     | Some cbm ->
                         ignore (exec_method ctx cbm [ Value.Vintent o ])
                     | None -> ())
                   (Apk.lifecycle_after entry)
               with Out_of_fuel -> ())))

(* Simulate a user tap: run every click handler the component has
   registered. *)
let click t ~pkg ~component =
  match find_app t pkg with
  | None -> invalid_arg ("Device.click: app not installed: " ^ pkg)
  | Some apk ->
      List.iter
        (fun (p, c, handler) ->
          if p = pkg && c = component then
            match Apk.find_class apk component with
            | None -> ()
            | Some cls -> (
                match Ir.find_method cls handler with
                | None -> ()
                | Some m ->
                    t.fuel <- 200_000;
                    let ctx = root_ctx t apk component in
                    (try ignore (exec_method ctx m [ Value.Vnull ])
                     with Out_of_fuel -> ())))
        (List.rev t.callbacks)

(* Inject an intent from outside any installed app (adb-style); used by
   tests to probe delivery. *)
let inject_intent ?(icc = Api.Start_service) ?(sender_app = "external")
    ?(sender_perms = []) t (intent : Intent.t) =
  t.fuel <- 200_000;
  let shell_manifest =
    Manifest.make ~package:sender_app ~uses_permissions:sender_perms ()
  in
  let shell = Apk.make ~manifest:shell_manifest ~classes:[] in
  let ctx = root_ctx t shell "shell" in
  try ignore (dispatch ctx icc (Value.of_intent intent)) with Out_of_fuel -> ()
