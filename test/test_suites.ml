(* Tests for the benchmark suites and the Table I experiment.

   The strongest check here is ground-truth validation: every case's
   expected leaks are confirmed by *executing* the apps on the simulated
   device and observing which tainted resources actually reach a sink —
   so the suite's truth labels are facts about behaviour, not opinions.
   Then the three analyzers are checked against their expected capability
   profiles, and the aggregate Table I ordering is asserted. *)

open Separ_runtime
module Finding = Separ_baselines.Finding
module Case = Separ_suites.Case

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let all_cases () = Separ_suites.Table1.all_cases ()

let observed_leaked_resources (c : Case.t) =
  let d = Device.create () in
  List.iter (Device.install d) c.Case.apks;
  c.Case.run d;
  List.sort_uniq compare
    (List.concat_map
       (function
         | Effect.Log_written { taint; _ } -> taint
         | _ -> [])
       (Device.effects d))

(* one alcotest case per benchmark case, for failure isolation *)
let ground_truth_tests =
  List.map
    (fun (c : Case.t) ->
      Alcotest.test_case
        (Printf.sprintf "ground truth at runtime: %s" c.Case.name)
        `Quick
        (fun () ->
          let expected =
            List.sort_uniq compare
              (List.map (fun f -> f.Finding.resource) c.Case.truth)
          in
          let observed = observed_leaked_resources c in
          Alcotest.(check (list string))
            (c.Case.name ^ ": runtime confirms ground truth")
            (List.map Separ_android.Resource.to_string expected)
            (List.map Separ_android.Resource.to_string observed)))
    (all_cases ())

let test_case_counts () =
  let cases = all_cases () in
  check_int "23 DroidBench cases" 23
    (List.length (List.filter (fun c -> c.Case.group = "DroidBench") cases));
  check_int "9 ICC-Bench cases" 9
    (List.length (List.filter (fun c -> c.Case.group = "ICC-Bench") cases));
  check_int "2 extended authority cases" 2
    (List.length (List.filter (fun c -> c.Case.group = "Extended") cases))

let rows = lazy (Separ_suites.Table1.run ())

let score_of tool (row : Separ_suites.Table1.row) =
  List.assoc tool row.Separ_suites.Table1.cells

let find_row name =
  List.find
    (fun r -> r.Separ_suites.Table1.case.Case.name = name)
    (Lazy.force rows)

(* the paper: SEPAR detects everything except the two dynamic-receiver
   cases, with no false positives anywhere — one test per case *)
let separ_cell_tests =
  List.map
    (fun (c : Case.t) ->
      Alcotest.test_case
        (Printf.sprintf "SEPAR cell: %s" c.Case.name)
        `Slow
        (fun () ->
          let row = find_row c.Case.name in
          let s = score_of "SEPAR" row in
          let name = c.Case.name in
          check_int (name ^ ": SEPAR has no false positives") 0 s.Finding.fp;
          if
            name = "DynRegisteredReceiver1" || name = "DynRegisteredReceiver2"
          then check_int (name ^ ": SEPAR misses (documented)") 1 s.Finding.fn
          else check_int (name ^ ": SEPAR finds all") 0 s.Finding.fn))
    (all_cases ())

let test_didfail_profile () =
  (* explicit intents invisible *)
  let s = score_of "DidFail" (find_row "Explicit_Src_Sink") in
  check_int "DidFail misses explicit" 1 s.Finding.fn;
  (* bound services unsupported *)
  let s = score_of "DidFail" (find_row "ICC_bindService1") in
  check_int "DidFail misses bind" 1 s.Finding.fn;
  (* no reachability pruning: false alarm on dead code *)
  let s = score_of "DidFail" (find_row "ICC_startActivity4") in
  check "DidFail false positive on unreachable" true (s.Finding.fp >= 1);
  (* no data test: decoy over-match *)
  let s = score_of "DidFail" (find_row "ICC_startActivity2") in
  check "DidFail decoy false positive" true (s.Finding.fp >= 1);
  (* providers unsupported *)
  let s = score_of "DidFail" (find_row "ICC_query1") in
  check_int "DidFail misses providers" 1 s.Finding.fn;
  (* but plain implicit broadcasts are found *)
  let s = score_of "DidFail" (find_row "IAC_sendBroadcast1") in
  check_int "DidFail finds broadcasts" 1 s.Finding.tp;
  (* authority mismatch: no data test, so a spurious leak *)
  let s = score_of "DidFail" (find_row "Authority_Mismatch") in
  check "DidFail authority false positive" true (s.Finding.fp >= 1)

let test_amandroid_profile () =
  (* explicit intents supported *)
  let s = score_of "AmanDroid" (find_row "Explicit_Src_Sink") in
  check_int "AmanDroid finds explicit" 1 s.Finding.tp;
  (* data tests supported: no decoy FP *)
  let s = score_of "AmanDroid" (find_row "ICC_startActivity2") in
  check_int "AmanDroid respects data test" 0 s.Finding.fp;
  (* bound services unsupported *)
  let s = score_of "AmanDroid" (find_row "ICC_bindService2") in
  check_int "AmanDroid misses bind" 1 s.Finding.fn;
  (* content providers unsupported *)
  let s = score_of "AmanDroid" (find_row "ICC_insert1") in
  check_int "AmanDroid misses providers" 1 s.Finding.fn;
  (* result intents unsupported *)
  let s = score_of "AmanDroid" (find_row "ICC_startActivityForResult1") in
  check_int "AmanDroid misses result intents" 1 s.Finding.fn;
  (* resolvable dynamic receivers supported *)
  let s = score_of "AmanDroid" (find_row "DynRegisteredReceiver1") in
  check_int "AmanDroid finds resolvable dynamic receiver" 1 s.Finding.tp;
  (* unresolvable ones are not *)
  let s = score_of "AmanDroid" (find_row "DynRegisteredReceiver2") in
  check_int "AmanDroid misses unresolvable registration" 1 s.Finding.fn;
  (* the full host test avoids the authority false positive *)
  let s = score_of "AmanDroid" (find_row "Authority_Mismatch") in
  check_int "AmanDroid respects the host test" 0 s.Finding.fp;
  let s = score_of "AmanDroid" (find_row "Implicit_Authority") in
  check_int "AmanDroid resolves authorities" 1 s.Finding.tp

let test_aggregate_ordering () =
  let totals = Separ_suites.Table1.totals (Lazy.force rows) in
  let f tool = Finding.f_measure (List.assoc tool totals) in
  let recall tool = Finding.recall (List.assoc tool totals) in
  let precision tool = Finding.precision (List.assoc tool totals) in
  check "SEPAR precision 100%" true (precision "SEPAR" = 1.0);
  check "SEPAR recall > 90%" true (recall "SEPAR" > 0.9);
  check "F: DidFail < AmanDroid" true (f "DidFail" < f "AmanDroid");
  check "F: AmanDroid < SEPAR" true (f "AmanDroid" < f "SEPAR");
  check "recall ordering" true
    (recall "DidFail" < recall "AmanDroid" && recall "AmanDroid" < recall "SEPAR")

let test_render_nonempty () =
  let out = Separ_suites.Table1.render (Lazy.force rows) in
  check "renders rows" true (String.length out > 500);
  check "mentions precision" true
    (String.split_on_char '\n' out
    |> List.exists (fun l -> String.length l > 9 && String.sub l 0 9 = "Precision"))

let tests =
  [
    Alcotest.test_case "case counts" `Quick test_case_counts;
    Alcotest.test_case "DidFail capability profile" `Slow test_didfail_profile;
    Alcotest.test_case "AmanDroid capability profile" `Slow
      test_amandroid_profile;
    Alcotest.test_case "aggregate ordering" `Slow test_aggregate_ordering;
    Alcotest.test_case "table renders" `Slow test_render_nonempty;
  ]

(* --- FlowBench: the taint-precision suite -------------------------------------- *)

module Flowbench = Separ_suites.Flowbench

let test_flowbench_runtime_truth () =
  List.iter
    (fun (c : Flowbench.case) ->
      check
        (c.Flowbench.fb_name ^ ": runtime matches declared truth")
        true
        (Flowbench.runtime_verdict c = c.Flowbench.fb_truth))
    (Flowbench.all ())

let test_flowbench_analysis_verdicts () =
  List.iter
    (fun (c : Flowbench.case) ->
      check
        (c.Flowbench.fb_name ^ ": analysis verdict as expected")
        true
        (Flowbench.analysis_verdict c = c.Flowbench.fb_expected))
    (Flowbench.all ())

let test_flowbench_sound () =
  (* no real leak is ever missed *)
  List.iter
    (fun (c : Flowbench.case) ->
      if c.Flowbench.fb_truth = Flowbench.Leak then
        check (c.Flowbench.fb_name ^ ": sound") true
          (Flowbench.analysis_verdict c = Flowbench.Leak))
    (Flowbench.all ())

let flowbench_tests =
  [
    Alcotest.test_case "flowbench runtime truth" `Quick
      test_flowbench_runtime_truth;
    Alcotest.test_case "flowbench analysis verdicts" `Quick
      test_flowbench_analysis_verdicts;
    Alcotest.test_case "flowbench soundness" `Quick test_flowbench_sound;
  ]

(* per-case FlowBench tests, for failure isolation *)
let flowbench_case_tests =
  List.concat_map
    (fun (c : Flowbench.case) ->
      [
        Alcotest.test_case
          (Printf.sprintf "flowbench runtime: %s" c.Flowbench.fb_name)
          `Quick
          (fun () ->
            check "runtime matches truth" true
              (Flowbench.runtime_verdict c = c.Flowbench.fb_truth));
        Alcotest.test_case
          (Printf.sprintf "flowbench analysis: %s" c.Flowbench.fb_name)
          `Quick
          (fun () ->
            check "analysis verdict as expected" true
              (Flowbench.analysis_verdict c = c.Flowbench.fb_expected));
      ])
    (Flowbench.all ())

let tests =
  tests @ ground_truth_tests @ separ_cell_tests @ flowbench_tests
  @ flowbench_case_tests
