(* The app-store analysis service: footprint-index soundness (candidate
   sets are supersets of exact resolution), hot-update = rebuild, and
   the serve store's selective re-analysis reproducing full repair byte
   for byte while dispatching strictly fewer bundles. *)

open Separ
module Serve = Separ_serve.Serve
module Index = Separ_serve.Index
module App_model = Separ_ame.App_model
module B = Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let stripped report =
  Separ_report.Report.to_string
    ~report:(Ase.strip_performance report)
    ~policies:[] ()

let stripped_reports serve =
  List.map (fun (pkg, r) -> (pkg, stripped r)) (Serve.reports serve)

(* A store app with no inter-app ICC surface at all: uploads elsewhere
   must never select it. *)
let quiet_app () =
  Apk.make
    ~manifest:
      (Manifest.make ~package:"com.quiet.app"
         ~components:
           [ Component.make ~name:"Quiet" ~kind:Component.Service () ]
         ())
    ~classes:
      [
        B.cls ~name:"Quiet"
          [
            B.meth ~name:"onStartCommand" ~params:1 (fun b ->
                ignore (B.const_str b "idle"));
          ];
      ]

(* --- index over hand-built models ------------------------------------------ *)

let model ~pkg components =
  {
    App_model.am_package = pkg;
    am_declared_permissions = [];
    am_components = components;
    am_extraction_ms = 0.0;
    am_size = 0;
  }

let component ?(public = true) ?(kind = Component.Receiver) ?(filters = [])
    ?(intents = []) name =
  {
    App_model.cm_name = name;
    cm_kind = kind;
    cm_public = public;
    cm_filters = filters;
    cm_required_permissions = [];
    cm_uses_permissions = [];
    cm_paths = [];
    cm_intents = intents;
    cm_reads_extras = [];
    cm_dynamic_filters = [];
  }

let intent ?target ?action ?(unresolved = false) ?(categories = [])
    ?data_type ?data_scheme ?data_host ?(icc = Api.Send_broadcast)
    ?(wants_result = false) ?(passive = false) ~sender id =
  {
    App_model.im_id = id;
    im_sender = sender;
    im_target = target;
    im_action = action;
    im_action_unresolved = unresolved;
    im_categories = categories;
    im_data_type = data_type;
    im_data_scheme = data_scheme;
    im_data_host = data_host;
    im_extras = [];
    im_icc = icc;
    im_wants_result = wants_result;
    im_passive = passive;
    im_resolved_targets = [];
  }

let test_index_basics () =
  let sender =
    model ~pkg:"p.send"
      [
        component ~filters:[] "Src"
          ~intents:[ intent ~action:"x" ~sender:"Src" "i1" ];
      ]
  in
  let receiver =
    model ~pkg:"p.recv"
      [ component ~filters:[ Intent_filter.make ~actions:[ "x" ] () ] "Dst" ]
  in
  let other =
    model ~pkg:"p.other"
      [ component ~filters:[ Intent_filter.make ~actions:[ "y" ] () ] "Oth" ]
  in
  let idx = Index.rebuild [ sender; receiver; other ] in
  let im = intent ~action:"x" ~sender:"Src" "i1" in
  let rx = Index.receivers idx im in
  check "receiver indexed under its action" true
    (Index.Pkgs.mem "p.recv" rx);
  check "unrelated app not a candidate" false (Index.Pkgs.mem "p.other" rx);
  check "sender reaches receiver" true
    (Index.Pkgs.mem "p.recv" (Index.affected idx sender));
  check "receiver's senders include the sender" true
    (Index.Pkgs.mem "p.send" (Index.senders_to idx receiver));
  (* action-less intents are conservative: every filtered app *)
  let blind = intent ~sender:"Src" "i2" in
  check "action-less intent reaches all filtered apps" true
    (Index.Pkgs.mem "p.recv" (Index.receivers idx blind)
     && Index.Pkgs.mem "p.other" (Index.receivers idx blind));
  (* statically unresolvable actions widen the same way *)
  let unres = intent ~action:"x" ~unresolved:true ~sender:"Src" "i3" in
  check "unresolved action is a wildcard" true
    (Index.Pkgs.mem "p.other" (Index.receivers idx unres));
  (* explicit targets hit the component-name bucket, even private ones *)
  let priv =
    model ~pkg:"p.priv" [ component ~public:false ~filters:[] "Hidden" ]
  in
  let idx = Index.rebuild [ sender; receiver; other; priv ] in
  check "explicit intent reaches private component" true
    (Index.Pkgs.mem "p.priv"
       (Index.receivers idx (intent ~target:"Hidden" ~sender:"Src" "i4")))

(* The data-test fix feeding the index: a MIME-type-only intent must
   reach a host-listing (scheme-free) filter both exactly and through
   the index. *)
let test_index_type_only_vs_hosted_filter () =
  let hosted =
    Intent_filter.make ~actions:[ "share" ] ~data_types:[ "text/plain" ]
      ~data_hosts:[ "books.prov" ] ()
  in
  let receiver = model ~pkg:"p.recv" [ component ~filters:[ hosted ] "Dst" ] in
  let idx = Index.rebuild [ receiver ] in
  let im =
    intent ~action:"share" ~data_type:"text/plain" ~sender:"Src" "i1"
  in
  let exact =
    List.exists
      (fun c -> Separ_ame.Bundle.resolves_to im c)
      receiver.App_model.am_components
  in
  check "type-only intent exactly matches host-listing filter" true exact;
  check "index agrees" true (Index.Pkgs.mem "p.recv" (Index.receivers idx im))

let test_index_hot_update_equals_rebuild () =
  let a =
    model ~pkg:"p.a"
      [
        component ~filters:[ Intent_filter.make ~actions:[ "x"; "y" ] () ]
          "A" ~intents:[ intent ~action:"z" ~sender:"A" "i1" ];
      ]
  in
  let b =
    model ~pkg:"p.b"
      [ component ~filters:[ Intent_filter.make ~actions:[ "z" ] () ] "B" ]
  in
  let a2 =
    model ~pkg:"p.a"
      [ component ~filters:[ Intent_filter.make ~actions:[ "w" ] () ] "A" ]
  in
  let idx = Index.create () in
  Index.add idx a;
  Index.add idx b;
  check "add = rebuild" true (Index.equal idx (Index.rebuild [ a; b ]));
  Index.remove idx a;
  Index.add idx a2;
  check "update = rebuild" true (Index.equal idx (Index.rebuild [ a2; b ]));
  Index.remove idx b;
  check "remove = rebuild" true (Index.equal idx (Index.rebuild [ a2 ]));
  Index.remove idx a2;
  check "empty again" true (Index.equal idx (Index.create ()))

(* --- property tests --------------------------------------------------------- *)

(* Small closed alphabets so that generated stores are dense enough for
   genuine cross-app resolution to happen. *)
let actions = [ "a1"; "a2"; "a3" ]
let cats = [ "c1"; "c2" ]
let schemes = [ "s1"; "s2" ]
let mimes = [ "t1"; "t2" ]
let hosts = [ "h1"; "h2" ]
let comp_names = [ "CompA"; "CompB"; "CompC"; "CompD" ]

let gen_sublist pool =
  QCheck.Gen.(
    list_size (int_range 0 (List.length pool)) (oneofl pool)
    >|= List.sort_uniq compare)

let gen_opt pool = QCheck.Gen.(opt (oneofl pool))

let gen_filter =
  QCheck.Gen.(
    gen_sublist actions >>= fun acts ->
    gen_sublist cats >>= fun cs ->
    gen_sublist schemes >>= fun ss ->
    gen_sublist mimes >>= fun ts ->
    gen_sublist hosts >|= fun hs ->
    Intent_filter.make ~actions:acts ~categories:cs ~data_types:ts
      ~data_schemes:ss ~data_hosts:hs ())

let gen_intent ~sender id =
  QCheck.Gen.(
    gen_opt comp_names >>= fun target ->
    gen_opt actions >>= fun action ->
    bool >>= fun unresolved_coin ->
    gen_sublist cats >>= fun categories ->
    gen_opt mimes >>= fun data_type ->
    gen_opt schemes >>= fun data_scheme ->
    gen_opt hosts >>= fun data_host ->
    oneofl [ Api.Send_broadcast; Api.Start_service; Api.Start_activity ]
    >>= fun icc ->
    bool >>= fun wants_result ->
    int_range 0 9 >|= fun passive_die ->
    intent ?target ?action
      ~unresolved:(unresolved_coin && action <> None && passive_die mod 3 = 0)
      ~categories ?data_type ?data_scheme ?data_host ~icc ~wants_result
      ~passive:(passive_die = 0) ~sender id)

let gen_component ~pkg idx =
  QCheck.Gen.(
    oneofl comp_names >>= fun base ->
    oneofl [ Component.Activity; Component.Service; Component.Receiver ]
    >>= fun kind ->
    int_range 0 9 >>= fun pub_die ->
    list_size (int_range 0 2) gen_filter >>= fun filters ->
    let name = base ^ string_of_int idx in
    list_size (int_range 0 3)
      (gen_intent ~sender:name (pkg ^ "." ^ name ^ ".i"))
    >|= fun intents ->
    component ~public:(pub_die < 8) ~kind ~filters ~intents name)

let gen_model pkg =
  QCheck.Gen.(
    int_range 1 3 >>= fun n ->
    let rec comps i acc =
      if i >= n then return (List.rev acc)
      else gen_component ~pkg i >>= fun c -> comps (i + 1) (c :: acc)
    in
    comps 0 [] >|= model ~pkg)

let gen_store =
  QCheck.Gen.(
    int_range 2 6 >>= fun n ->
    let rec go i acc =
      if i >= n then return (List.rev acc)
      else gen_model (Printf.sprintf "p%d" i) >>= fun m -> go (i + 1) (m :: acc)
    in
    go 0 [])

(* Targets in generated intents are bare pool names while component
   names carry an index suffix, so explicit intents rarely resolve —
   exactly the kind of asymmetry the superset property must absorb. *)
let arb_store = QCheck.make gen_store

let prop name count gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

(* Candidate sets are supersets of exact resolution, both directions. *)
let qcheck_index_superset =
  prop "footprint candidates superset of exact resolution" 150 arb_store
    (fun store ->
      let idx = Index.rebuild store in
      List.for_all
        (fun (app : App_model.t) ->
          (* receive direction: every exactly-resolving owner is a
             candidate receiver of the intent *)
          List.for_all
            (fun (c : App_model.component_model) ->
              List.for_all
                (fun im ->
                  let candidates = Index.receivers idx im in
                  List.for_all
                    (fun (owner : App_model.t) ->
                      let resolves =
                        List.exists
                          (fun oc -> Separ_ame.Bundle.resolves_to im oc)
                          owner.App_model.am_components
                      in
                      (not resolves)
                      || Index.Pkgs.mem owner.App_model.am_package candidates)
                    store)
                c.App_model.cm_intents)
            app.App_model.am_components
          (* send direction: every exact sender is a candidate sender *)
          && (let senders = Index.senders_to idx app in
              List.for_all
                (fun (other : App_model.t) ->
                  let sends =
                    List.exists
                      (fun (oc : App_model.component_model) ->
                        List.exists
                          (fun im ->
                            List.exists
                              (fun ac -> Separ_ame.Bundle.resolves_to im ac)
                              app.App_model.am_components)
                          oc.App_model.cm_intents)
                      other.App_model.am_components
                  in
                  (not sends)
                  || Index.Pkgs.mem other.App_model.am_package senders)
                store)
          (* and therefore: everyone the app exactly interacts with is
             in its affected set *)
          &&
          let affected = Index.affected idx app in
          List.for_all
            (fun (other : App_model.t) ->
              let resolves_between x y =
                List.exists
                  (fun (c : App_model.component_model) ->
                    List.exists
                      (fun im ->
                        List.exists
                          (fun yc -> Separ_ame.Bundle.resolves_to im yc)
                          y.App_model.am_components)
                      c.App_model.cm_intents)
                  x.App_model.am_components
              in
              (not (resolves_between app other || resolves_between other app))
              || Index.Pkgs.mem other.App_model.am_package affected)
            store)
        store)

(* Hot update equals rebuild over arbitrary upload/update/remove
   interleavings: add everything, remove a pseudo-random subset,
   re-add modified versions of half of those. *)
let qcheck_index_update_equals_rebuild =
  prop "footprint hot update equals rebuild" 150
    (QCheck.pair arb_store QCheck.small_nat)
    (fun (store, salt) ->
      let idx = Index.create () in
      List.iter (Index.add idx) store;
      let doomed, kept =
        List.partition
          (fun (m : App_model.t) ->
            (Hashtbl.hash (m.App_model.am_package, salt) land 3) = 0)
          store
      in
      List.iter (Index.remove idx) doomed;
      let readded =
        List.filteri (fun i _ -> i mod 2 = 0) doomed
        |> List.map (fun (m : App_model.t) ->
               (* an "update": drop every second component *)
               {
                 m with
                 App_model.am_components =
                   List.filteri
                     (fun i _ -> i mod 2 = 0)
                     m.App_model.am_components;
               })
      in
      List.iter (Index.add idx) readded;
      Index.equal idx (Index.rebuild (kept @ readded)))

(* --- the serve store end to end -------------------------------------------- *)

(* Build the Figure-1 trio plus a quiet bystander, then update the
   messenger: the bystander must never be selected, and the selective
   store must agree with a freshly full-repaired one byte for byte. *)
let test_serve_selective_matches_full_repair () =
  let serve = Serve.create () in
  List.iter
    (fun apk -> Serve.submit serve (Serve.Upload apk))
    [
      Demo.navigation_app ();
      Demo.messenger_app ();
      Demo.relay_malware ();
      quiet_app ();
    ];
  let cold = Serve.drain serve in
  check_int "four verdicts" 4 (List.length cold);
  check_int "four apps in store" 4 (Serve.store_size serve);
  (* the quiet app's scope is itself *)
  Alcotest.(check (list string))
    "quiet scope is singleton" [ "com.quiet.app" ]
    (Serve.scope serve "com.quiet.app");
  check "relay scope sees navigation" true
    (List.mem "com.example.navigation" (Serve.scope serve "com.mal.relay"));
  (* update: the guarded messenger variant *)
  Serve.submit serve (Serve.Upload (Demo.messenger_app ~guarded:true ()));
  (match Serve.drain serve with
  | [ v ] ->
      check "update analyzed strictly fewer bundles than the store" true
        (v.Serve.vd_analyzed < v.Serve.vd_store_size);
      check "update did not select the quiet app" false
        (List.mem "com.quiet.app" v.Serve.vd_candidates);
      check "update re-analyzed the messenger itself" true
        (List.mem "com.example.messenger" v.Serve.vd_candidates)
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs));
  let selective = stripped_reports serve in
  let analyzed = Serve.full_repair serve in
  check_int "full repair analyzes the whole store" 4 analyzed;
  check "selective reports byte-identical to full repair" true
    (selective = stripped_reports serve);
  (* hot-updated index stayed equal to a from-scratch rebuild *)
  check "index hot update = rebuild" true
    (Index.equal (Serve.index serve) (Serve.rebuilt_index serve))

let test_serve_remove () =
  let serve = Serve.create () in
  List.iter
    (fun apk -> Serve.submit serve (Serve.Upload apk))
    [ Demo.navigation_app (); Demo.relay_malware (); quiet_app () ];
  ignore (Serve.drain serve : Serve.verdict list);
  let vulnerable_before =
    match Serve.report serve "com.example.navigation" with
    | Some r -> List.length r.Ase.r_vulnerabilities
    | None -> 0
  in
  check "hijack found while the relay is installed" true
    (vulnerable_before > 0);
  Serve.submit serve (Serve.Remove "com.mal.relay");
  (match Serve.drain serve with
  | [ v ] ->
      check "remove re-analyzed the old partners" true
        (List.mem "com.example.navigation" v.Serve.vd_candidates);
      check "remove did not select the quiet app" false
        (List.mem "com.quiet.app" v.Serve.vd_candidates)
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs));
  check_int "store shrank" 2 (Serve.store_size serve);
  check "removed app's report dropped" true
    (Serve.report serve "com.mal.relay" = None);
  (* with the relay gone the navigation app's scope is itself *)
  Alcotest.(check (list string))
    "navigation scope back to singleton" [ "com.example.navigation" ]
    (Serve.scope serve "com.example.navigation");
  let selective = stripped_reports serve in
  ignore (Serve.full_repair serve : int);
  check "post-remove reports identical to full repair" true
    (selective = stripped_reports serve);
  check "index hot update = rebuild after remove" true
    (Index.equal (Serve.index serve) (Serve.rebuilt_index serve))

(* Upload events drain through the persistent cache: a second store fed
   the same apps through the same cache directory reproduces the same
   reports (and re-extracts nothing). *)
let test_serve_with_cache () =
  let dir = Filename.temp_file "separ_serve_cache" "" in
  Sys.remove dir;
  let apks = [ Demo.navigation_app (); Demo.relay_malware () ] in
  let run () =
    let cache = Cache.open_ ~dir () in
    let serve = Serve.create ~cache () in
    List.iter (fun apk -> Serve.submit serve (Serve.Upload apk)) apks;
    ignore (Serve.drain serve : Serve.verdict list);
    (stripped_reports serve, cache)
  in
  let first, _ = run () in
  let second, cache = run () in
  check "cached second run identical" true (first = second);
  check "second run hit the AME tier" true
    (match List.assoc_opt "ame.hits" (Cache.stats cache) with
    | Some n -> n > 0
    | None -> false)

let tests =
  [
    Alcotest.test_case "index basics" `Quick test_index_basics;
    Alcotest.test_case "index: type-only intent vs hosted filter" `Quick
      test_index_type_only_vs_hosted_filter;
    Alcotest.test_case "index hot update = rebuild" `Quick
      test_index_hot_update_equals_rebuild;
    qcheck_index_superset;
    qcheck_index_update_equals_rebuild;
    Alcotest.test_case "selective = full repair (upload)" `Quick
      test_serve_selective_matches_full_repair;
    Alcotest.test_case "remove event" `Quick test_serve_remove;
    Alcotest.test_case "serve through the persistent cache" `Quick
      test_serve_with_cache;
  ]
