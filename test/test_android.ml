(* Tests for the Android domain substrate: intent resolution tests,
   permissions, resources, API classification. *)

open Separ_android

let check = Alcotest.(check bool)

let filter = Intent_filter.make
let intent = Intent.make

let matches i f = Intent_filter.matches ~intent:i f

(* --- action test ----------------------------------------------------------- *)

let test_action_match () =
  check "listed action matches" true
    (matches (intent ~action:"a.b" ()) (filter ~actions:[ "a.b"; "c" ] ()));
  check "unlisted action fails" false
    (matches (intent ~action:"x" ()) (filter ~actions:[ "a.b" ] ()));
  check "no action passes if filter has actions" true
    (matches (intent ()) (filter ~actions:[ "a.b" ] ()));
  check "no action fails against empty filter" false
    (matches (intent ()) (filter ()))

(* --- category test ----------------------------------------------------------- *)

let test_category_match () =
  let f = filter ~actions:[ "a" ] ~categories:[ "c1"; "c2" ] () in
  check "subset of filter categories passes" true
    (matches (intent ~action:"a" ~categories:[ "c1" ] ()) f);
  check "all categories pass" true
    (matches (intent ~action:"a" ~categories:[ "c1"; "c2" ] ()) f);
  check "extra category fails" false
    (matches (intent ~action:"a" ~categories:[ "c3" ] ()) f);
  check "no categories pass" true (matches (intent ~action:"a" ()) f)

(* --- data test: the four framework cases ----------------------------------- *)

let test_data_case_neither () =
  check "no data vs no data filter" true
    (matches (intent ~action:"a" ()) (filter ~actions:[ "a" ] ()));
  check "no data vs typed filter fails" false
    (matches (intent ~action:"a" ())
       (filter ~actions:[ "a" ] ~data_types:[ "t" ] ()));
  check "no data vs scheme filter fails" false
    (matches (intent ~action:"a" ())
       (filter ~actions:[ "a" ] ~data_schemes:[ "s" ] ()))

let test_data_case_scheme_only () =
  let i = intent ~action:"a" ~data_scheme:"content" () in
  check "scheme listed passes" true
    (matches i (filter ~actions:[ "a" ] ~data_schemes:[ "content" ] ()));
  check "scheme unlisted fails" false
    (matches i (filter ~actions:[ "a" ] ~data_schemes:[ "http" ] ()));
  check "filter with types too fails" false
    (matches i
       (filter ~actions:[ "a" ] ~data_schemes:[ "content" ]
          ~data_types:[ "t" ] ()))

let test_data_case_type_only () =
  let i = intent ~action:"a" ~data_type:"text/plain" () in
  check "type listed passes" true
    (matches i (filter ~actions:[ "a" ] ~data_types:[ "text/plain" ] ()));
  check "type unlisted fails" false
    (matches i (filter ~actions:[ "a" ] ~data_types:[ "image/png" ] ()))

let test_data_host () =
  let i scheme host =
    intent ~action:"a" ~data_scheme:scheme ?data_host:host ()
  in
  let f hosts =
    filter ~actions:[ "a" ] ~data_schemes:[ "content" ] ~data_hosts:hosts ()
  in
  check "host listed passes" true
    (matches (i "content" (Some "books.prov")) (f [ "books.prov" ]));
  check "host unlisted fails" false
    (matches (i "content" (Some "evil.prov")) (f [ "books.prov" ]));
  check "filter without hosts accepts any" true
    (matches (i "content" (Some "whatever")) (f []));
  check "filter with hosts rejects hostless intents" false
    (matches (i "content" None) (f [ "books.prov" ]))

let test_split_uri () =
  Alcotest.(check (pair string (option string)))
    "scheme and host" ("content", Some "books.prov")
    (Intent.split_uri "content://books.prov");
  Alcotest.(check (pair string (option string)))
    "path stripped" ("https", Some "example.com")
    (Intent.split_uri "https://example.com/a/b");
  Alcotest.(check (pair string (option string)))
    "bare scheme" ("content", None)
    (Intent.split_uri "content");
  Alcotest.(check (pair string (option string)))
    "empty host" ("file", None)
    (Intent.split_uri "file://")

let test_data_case_both () =
  let i = intent ~action:"a" ~data_type:"t" ~data_scheme:"s" () in
  check "both listed passes" true
    (matches i
       (filter ~actions:[ "a" ] ~data_types:[ "t" ] ~data_schemes:[ "s" ] ()));
  check "scheme missing fails" false
    (matches i (filter ~actions:[ "a" ] ~data_types:[ "t" ] ()))

(* The framework's data-test table end to end: every (action, category,
   data, host) combination the documentation enumerates, against a
   filter that lists hosts and one that does not.  The authority test
   only refines intents that actually carry a URI — in particular a
   MIME-type-only intent must pass a host-listing filter (the bug the
   footprint index tripped over: such filters silently dropped every
   typed share intent from their candidate sets). *)
let test_data_table () =
  let hosted =
    filter ~actions:[ "a" ] ~categories:[ "c" ] ~data_types:[ "text/plain" ]
      ~data_schemes:[ "content" ] ~data_hosts:[ "books.prov" ] ()
  in
  let unhosted =
    filter ~actions:[ "a" ] ~categories:[ "c" ] ~data_types:[ "text/plain" ]
      ~data_schemes:[ "content" ] ()
  in
  let typed_only = filter ~actions:[ "a" ] ~data_types:[ "text/plain" ] () in
  let hosted_typed =
    (* degenerate but expressible: hosts constrained, no scheme list *)
    filter ~actions:[ "a" ] ~data_types:[ "text/plain" ]
      ~data_hosts:[ "books.prov" ] ()
  in
  let i ?ty ?s ?h () =
    intent ~action:"a" ?data_type:ty ?data_scheme:s ?data_host:h ()
  in
  (* MIME-type-only intents: no URI, so the authority table is never
     consulted; only the scheme-list emptiness check applies. *)
  check "type-only intent passes a type-only filter" true
    (matches (i ~ty:"text/plain" ()) typed_only);
  check "type-only intent passes a host-listing, scheme-free filter" true
    (matches (i ~ty:"text/plain" ()) hosted_typed);
  check "type-only intent still fails a scheme-listing filter" false
    (matches (i ~ty:"text/plain" ()) hosted);
  (* No-data intents: pass only data-free filters, hosts irrelevant. *)
  check "no-data intent fails a data filter regardless of hosts" false
    (matches (i ()) hosted);
  check "no-data intent passes a data-free host-free filter" true
    (matches (i ()) (filter ~actions:[ "a" ] ()));
  (* URI-carrying intents: the authority test applies in full. *)
  check "scheme+type+host all listed passes" true
    (matches (i ~ty:"text/plain" ~s:"content" ~h:"books.prov" ()) hosted);
  check "wrong host fails" false
    (matches (i ~ty:"text/plain" ~s:"content" ~h:"evil.prov" ()) hosted);
  check "hostless URI fails a host-listing filter" false
    (matches (i ~ty:"text/plain" ~s:"content" ()) hosted);
  check "host ignored by a host-free filter" true
    (matches (i ~ty:"text/plain" ~s:"content" ~h:"anything" ()) unhosted);
  (* Category refinement rides on top unchanged. *)
  check "extra category still fails" false
    (matches
       (intent ~action:"a" ~categories:[ "c"; "d" ] ~data_type:"text/plain"
          ~data_scheme:"content" ~data_host:"books.prov" ())
       hosted)

(* --- components --------------------------------------------------------------- *)

let test_component_public () =
  let c = Component.make ~name:"C" ~kind:Component.Service () in
  check "no filter, no attribute: private" false (Component.is_public c);
  let c =
    Component.make ~name:"C" ~kind:Component.Service
      ~intent_filters:[ filter ~actions:[ "a" ] () ]
      ()
  in
  check "filter implies public" true (Component.is_public c);
  let c =
    Component.make ~name:"C" ~kind:Component.Service ~exported:false
      ~intent_filters:[ filter ~actions:[ "a" ] () ]
      ()
  in
  check "explicit exported=false wins" false (Component.is_public c)

let test_provider_no_filters () =
  Alcotest.check_raises "providers cannot declare filters"
    (Invalid_argument "Component.make: content providers cannot declare filters")
    (fun () ->
      ignore
        (Component.make ~name:"P" ~kind:Component.Provider
           ~intent_filters:[ filter ~actions:[ "a" ] () ]
           ()))

let test_manifest () =
  let m =
    Manifest.make ~package:"p"
      ~uses_permissions:[ Permission.send_sms ]
      ~components:[ Component.make ~name:"A" ~kind:Component.Activity () ]
      ()
  in
  check "has perm" true (Manifest.has_permission m Permission.send_sms);
  check "lacks perm" false (Manifest.has_permission m Permission.internet);
  check "find component" true (Manifest.component m "A" <> None);
  Alcotest.check_raises "duplicate components rejected"
    (Invalid_argument "Manifest.make: duplicate component in p") (fun () ->
      ignore
        (Manifest.make ~package:"p"
           ~components:
             [
               Component.make ~name:"A" ~kind:Component.Activity ();
               Component.make ~name:"A" ~kind:Component.Service ();
             ]
           ()))

(* --- permissions and resources ------------------------------------------------ *)

let test_permission_protection () =
  check "SEND_SMS dangerous" true
    (Permission.protection Permission.send_sms = Permission.Dangerous);
  check "INTERNET normal" true
    (Permission.protection Permission.internet = Permission.Normal);
  check "unknown is signature" true
    (Permission.protection "com.custom.PERM" = Permission.Signature)

let test_resources () =
  check "13 non-ICC sources" true
    (List.length (List.filter (fun r -> r <> Resource.Icc) Resource.sources)
    = 13);
  check "5 non-ICC sinks" true
    (List.length (List.filter (fun r -> r <> Resource.Icc) Resource.sinks) = 5);
  check "ICC is both" true (Resource.is_source Resource.Icc && Resource.is_sink Resource.Icc);
  List.iter
    (fun r ->
      Alcotest.(check (option string))
        ("round trip " ^ Resource.to_string r)
        (Some (Resource.to_string r))
        (Option.map Resource.to_string (Resource.of_string (Resource.to_string r))))
    (Resource.sources @ Resource.sinks)

let test_api_classification () =
  check "location is source" true
    (Api.classify (Api.mref Api.c_location "getLastKnownLocation")
    = Api.Source Resource.Location);
  check "sms is sink" true
    (Api.classify (Api.mref Api.c_sms_manager "sendTextMessage")
    = Api.Sink Resource.Sms);
  check "startService is ICC" true
    (Api.classify (Api.mref Api.c_context "startService")
    = Api.Icc Api.Start_service);
  check "setAction is intent op" true
    (Api.classify (Api.mref Api.c_intent "setAction")
    = Api.Intent_op Api.Set_action);
  check "checkCallingPermission" true
    (Api.classify (Api.mref Api.c_context "checkCallingPermission")
    = Api.Permission_check);
  check "unknown is other" true
    (Api.classify (Api.mref "com.app.Helper" "doWork") = Api.Other)

let test_api_permission_map () =
  Alcotest.(check (option string))
    "sendTextMessage needs SEND_SMS" (Some Permission.send_sms)
    (Api.permission_of (Api.mref Api.c_sms_manager "sendTextMessage"));
  Alcotest.(check (option string))
    "log needs nothing" None
    (Api.permission_of (Api.mref Api.c_log "i"));
  check "allowed with perm" true
    (Api.allowed [ Permission.send_sms ]
       (Api.mref Api.c_sms_manager "sendTextMessage"));
  check "refused without perm" false
    (Api.allowed [] (Api.mref Api.c_sms_manager "sendTextMessage"))

let test_intent_taint () =
  let i =
    Intent.make ()
    |> fun i ->
    Intent.put_extra i ~key:"a" ~value:"v" ~taint:[ Resource.Location ]
    |> fun i ->
    Intent.put_extra i ~key:"b" ~value:"w" ~taint:[ Resource.Imei; Resource.Location ]
  in
  Alcotest.(check int)
    "carried resources deduplicated" 2
    (List.length (Intent.carried_resources i))

let qcheck_category_monotone =
  (* shrinking the intent's categories never breaks a match *)
  QCheck.Test.make ~name:"category test is monotone" ~count:200
    QCheck.(pair (small_list (string_of_size (Gen.return 2))) small_nat)
    (fun (cats, k) ->
      let f = filter ~actions:[ "a" ] ~categories:cats () in
      let i = intent ~action:"a" ~categories:cats () in
      let fewer = List.filteri (fun idx _ -> idx <> k) cats in
      let i' = intent ~action:"a" ~categories:fewer () in
      (not (matches i f)) || matches i' f)

let tests =
  [
    Alcotest.test_case "action test" `Quick test_action_match;
    Alcotest.test_case "category test" `Quick test_category_match;
    Alcotest.test_case "data test: neither" `Quick test_data_case_neither;
    Alcotest.test_case "data test: scheme" `Quick test_data_case_scheme_only;
    Alcotest.test_case "data test: type" `Quick test_data_case_type_only;
    Alcotest.test_case "data test: both" `Quick test_data_case_both;
    Alcotest.test_case "data test: host" `Quick test_data_host;
    Alcotest.test_case "data test: framework table" `Quick test_data_table;
    Alcotest.test_case "split_uri" `Quick test_split_uri;
    Alcotest.test_case "component publicity" `Quick test_component_public;
    Alcotest.test_case "provider filters rejected" `Quick test_provider_no_filters;
    Alcotest.test_case "manifest" `Quick test_manifest;
    Alcotest.test_case "permission protection" `Quick test_permission_protection;
    Alcotest.test_case "resources" `Quick test_resources;
    Alcotest.test_case "api classification" `Quick test_api_classification;
    Alcotest.test_case "api permission map" `Quick test_api_permission_map;
    Alcotest.test_case "intent taint" `Quick test_intent_taint;
    QCheck_alcotest.to_alcotest qcheck_category_monotone;
  ]
