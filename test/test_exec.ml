(* The fork-based worker pool: result ordering, exception and crash
   isolation, and worker-telemetry merge (spans, metrics, log
   events). *)

module Pool = Separ_exec.Pool
module Trace = Separ_obs.Trace
module Metrics = Separ_obs.Metrics
module Log = Separ_obs.Log
module Json = Separ_report.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let done_values results =
  List.map
    (function Pool.Done v -> v | Pool.Failed msg -> Alcotest.fail msg)
    results

(* Results come back in task order, inline and forked alike. *)
let test_map_order () =
  let xs = [ 5; 3; 1; 4; 2 ] in
  let inline = Pool.map ~jobs:1 (fun x -> x * 10) xs in
  check_int "inline order" 50 (List.hd (done_values inline));
  Alcotest.(check (list int))
    "inline results" [ 50; 30; 10; 40; 20 ] (done_values inline);
  (* Stagger completion: later tasks finish first, results must still
     come back in task order. *)
  let forked =
    Pool.map ~jobs:3
      (fun x ->
        Unix.sleepf (0.01 *. float_of_int x);
        x * 10)
      xs
  in
  Alcotest.(check (list int))
    "forked results in task order" [ 50; 30; 10; 40; 20 ] (done_values forked)

(* A raising task yields [Failed] with the exception text; neighbours
   are unaffected.  Same containment inline and forked. *)
let test_exception_isolation () =
  let tasks =
    [
      (fun () -> 1);
      (fun () -> failwith "boom");
      (fun () -> 3);
    ]
  in
  List.iter
    (fun jobs ->
      match Pool.run ~jobs tasks with
      | [ Pool.Done 1; Pool.Failed msg; Pool.Done 3 ] ->
          check "exception text carried" true (contains ~affix:"boom" msg)
      | _ -> Alcotest.fail "expected Done/Failed/Done")
    [ 1; 2 ]

(* A worker that dies without reporting (here: [_exit]) is detected by
   its exit status and isolated. *)
let test_crash_isolation () =
  let tasks =
    [
      (fun () -> "ok-a");
      (fun () -> Unix._exit 7);
      (fun () -> "ok-b");
    ]
  in
  match Pool.run ~jobs:2 tasks with
  | [ Pool.Done "ok-a"; Pool.Failed msg; Pool.Done "ok-b" ] ->
      check "exit status reported" true (contains ~affix:"status 7" msg)
  | _ -> Alcotest.fail "expected crash isolated to its own task"

(* The pool is persistent: many more tasks than workers must be served
   by the same forked children, reused across batches — not one fork per
   task. *)
let test_persistent_worker_reuse () =
  let parent = Unix.getpid () in
  let results =
    Pool.map ~jobs:3 ~batch:1 (fun _ -> Unix.getpid ()) (List.init 12 Fun.id)
  in
  let pids = done_values results in
  check_int "all tasks ran" 12 (List.length pids);
  List.iter
    (fun pid -> check "task ran in a worker, not the parent" true (pid <> parent))
    pids;
  let distinct = List.sort_uniq compare pids in
  check "at most 3 distinct worker pids for 12 tasks" true
    (List.length distinct <= 3);
  let stats = Pool.last_run_stats () in
  check_int "forks = pool width, not task count" 3 stats.Pool.rs_forks;
  check_int "one batch per task at batch:1" 12 stats.Pool.rs_batches;
  check_int "no respawns in a crash-free run" 0 stats.Pool.rs_respawns

(* A worker dying mid-batch fails every task of that batch — and only
   that batch; completed and not-yet-assigned batches are unaffected. *)
let test_midbatch_crash_isolation () =
  let tasks =
    List.init 6 (fun i () -> if i = 2 then Unix._exit 9 else i * 10)
  in
  let results = Pool.run ~jobs:2 ~batch:2 tasks in
  (match results with
  | [ Pool.Done 0; Pool.Done 10; Pool.Failed m2; Pool.Failed m3;
      Pool.Done 40; Pool.Done 50 ] ->
      check "in-flight batch reported mid-batch death" true
        (contains ~affix:"mid-batch" m2);
      check "whole in-flight batch failed with the same cause" true
        (contains ~affix:"mid-batch" m3)
  | _ -> Alcotest.fail "expected exactly the crashed batch (tasks 2-3) failed")

(* After a crash the pool respawns a replacement worker: the remaining
   batch still runs, in a freshly forked process.  The first worker is
   parked on a slow task so the crash is detected while work remains
   undispatched, forcing the respawn path.  (jobs:1 would run inline —
   the crash must happen in a forked pool.) *)
let test_respawn_after_crash () =
  let tasks =
    [
      (fun () ->
        Unix.sleepf 0.3;
        Unix.getpid ());
      (fun () -> Unix._exit 5);
      (fun () -> Unix.getpid ());
    ]
  in
  (match Pool.run ~jobs:2 ~batch:1 tasks with
  | [ Pool.Done p1; Pool.Failed _; Pool.Done p2 ] ->
      check "replacement is a fresh process" true (p1 <> p2)
  | _ -> Alcotest.fail "expected Done/Failed/Done around the crash");
  let stats = Pool.last_run_stats () in
  check_int "one respawn recorded" 1 stats.Pool.rs_respawns;
  check_int "two initial forks + one respawn" 3 stats.Pool.rs_forks

(* Worker-side metrics ship back and merge additively into the parent
   registry. *)
let test_worker_metrics_merged () =
  Metrics.enable ();
  Metrics.reset ();
  let c = Metrics.counter "test.pool_work" in
  let results =
    Pool.map ~jobs:2
      (fun n ->
        Metrics.add (Metrics.counter "test.pool_work") n;
        n)
      [ 1; 2; 3 ]
  in
  check_int "all done" 3 (List.length (done_values results));
  check_int "counter merged across workers" 6 (Metrics.counter_value c);
  Metrics.reset ();
  Metrics.disable ()

(* Worker-side spans are grafted into the parent trace, tagged with the
   worker pid. *)
let test_worker_spans_grafted () =
  Trace.enable ();
  Trace.reset ();
  let results =
    Pool.map ~jobs:2
      (fun n -> Trace.with_span "test.pool_span" (fun () -> n))
      [ 1; 2 ]
  in
  check_int "all done" 2 (List.length (done_values results));
  check_int "both worker spans present" 2 (Trace.count "test.pool_span");
  List.iter
    (fun sp ->
      check "grafted span is pid-tagged" true
        (List.mem_assoc "pid" sp.Trace.sp_attrs))
    (Trace.roots ());
  Trace.reset ();
  Trace.disable ()

let read_lines path =
  let ic = open_in path in
  let acc = ref [] in
  (try
     while true do
       let l = String.trim (input_line ic) in
       if l <> "" then acc := l :: !acc
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !acc

(* Worker-side log events buffer per batch (workers must not write to
   the inherited sink fd), ship back in the reply payload, and replay
   through the parent's sink carrying the worker's own pid. *)
let test_worker_logs_shipped () =
  let path = Filename.temp_file "separ_test_pool_log" ".ndjson" in
  Log.to_file path;
  Log.reset ();
  Fun.protect
    ~finally:(fun () ->
      Log.close ();
      Log.reset ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let results =
        Pool.map ~jobs:2
          (fun n ->
            Log.info "test.pool_log" ~fields:[ ("n", Trace.Int n) ];
            n)
          [ 1; 2; 3; 4 ]
      in
      check_int "all done" 4 (List.length (done_values results));
      Log.close ();
      let parent = Unix.getpid () in
      let pids =
        List.filter_map
          (fun l ->
            let j = Json.parse l in
            if
              Option.bind (Json.member "event" j) Json.to_str
              = Some "test.pool_log"
            then Json.member "pid" j
            else None)
          (read_lines path)
      in
      check_int "all four worker events replayed" 4 (List.length pids);
      List.iter
        (fun pid ->
          check "event is pid-tagged with a worker, not the parent" true
            (pid <> Json.Int parent))
        pids)

(* Observability survives a worker dying mid-batch: events and GC
   metrics from every surviving batch still arrive (through the
   respawned replacement included); only the crashed batch's telemetry
   is lost. *)
let test_obs_survives_midbatch_crash () =
  let path = Filename.temp_file "separ_test_crash_log" ".ndjson" in
  Trace.enable ();
  Metrics.enable ();
  Trace.set_profile_gc true;
  Trace.reset ();
  Metrics.reset ();
  Log.to_file path;
  Log.reset ();
  Fun.protect
    ~finally:(fun () ->
      Log.close ();
      Log.reset ();
      Trace.set_profile_gc false;
      Trace.disable ();
      Metrics.disable ();
      Trace.reset ();
      Metrics.reset ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let tasks =
        List.init 5 (fun i () ->
            if i = 1 then Unix._exit 11
            else begin
              Log.info "test.crash_log" ~fields:[ ("i", Trace.Int i) ];
              Trace.with_span "test.crash_span" (fun () ->
                  ignore
                    (Sys.opaque_identity (List.init 5_000 (fun j -> j * i))));
              i
            end)
      in
      let results = Pool.run ~jobs:2 ~batch:1 tasks in
      let failed, completed =
        List.partition (function Pool.Failed _ -> true | _ -> false) results
      in
      check_int "exactly the crashed batch failed" 1 (List.length failed);
      check_int "the other batches completed" 4 (List.length completed);
      check "a replacement worker was respawned" true
        ((Pool.last_run_stats ()).Pool.rs_respawns >= 1);
      Log.close ();
      let parent = Unix.getpid () in
      let pids =
        List.filter_map
          (fun l ->
            let j = Json.parse l in
            if
              Option.bind (Json.member "event" j) Json.to_str
              = Some "test.crash_log"
            then
              match Json.member "pid" j with
              | Some (Json.Int p) -> Some p
              | _ -> None
            else None)
          (read_lines path)
      in
      check_int "surviving batches' events all replayed" 4 (List.length pids);
      List.iter
        (fun p -> check "every event came from a worker" true (p <> parent))
        pids;
      check "worker GC deltas merged into the parent counters" true
        (Metrics.counter_value (Metrics.counter "gc.minor_words") > 0);
      check_int "surviving worker spans grafted despite the crash" 4
        (Trace.count "test.crash_span"))

let tests =
  [
    Alcotest.test_case "map preserves task order" `Quick test_map_order;
    Alcotest.test_case "exception isolation" `Quick test_exception_isolation;
    Alcotest.test_case "worker crash isolation" `Quick test_crash_isolation;
    Alcotest.test_case "persistent workers reused across batches" `Quick
      test_persistent_worker_reuse;
    Alcotest.test_case "mid-batch crash fails only in-flight batch" `Quick
      test_midbatch_crash_isolation;
    Alcotest.test_case "respawn after crash" `Quick test_respawn_after_crash;
    Alcotest.test_case "worker metrics merged" `Quick
      test_worker_metrics_merged;
    Alcotest.test_case "worker spans grafted with pid" `Quick
      test_worker_spans_grafted;
    Alcotest.test_case "worker log events shipped pid-tagged" `Quick
      test_worker_logs_shipped;
    Alcotest.test_case "logs and GC metrics survive mid-batch crash" `Quick
      test_obs_survives_midbatch_crash;
  ]
