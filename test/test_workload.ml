(* Tests for the synthetic workload generator: determinism, corpus
   statistics, well-formedness of every generated app, and bundle
   partitioning. *)

open Separ_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_profiles =
  List.map
    (fun p -> { p with Generator.count = p.Generator.count / 40 })
    Generator.default_profiles

let expected_count =
  List.fold_left (fun acc p -> acc + p.Generator.count) 0 small_profiles

let corpus = lazy (Generator.generate ~profiles:small_profiles ())

let test_determinism () =
  let a = Generator.generate ~profiles:small_profiles () in
  let b = Generator.generate ~profiles:small_profiles () in
  check "same seed, same corpus" true (a = b);
  let c = Generator.generate ~seed:99 ~profiles:small_profiles () in
  check "different seed, different corpus" false (a = c)

let test_counts_and_stores () =
  let corpus = Lazy.force corpus in
  check_int "expected corpus size" expected_count (List.length corpus);
  let stores =
    List.sort_uniq compare (List.map (fun g -> g.Generator.store) corpus)
  in
  Alcotest.(check (list string))
    "all four stores" [ "bazaar"; "fdroid"; "malgenome"; "play" ] stores

let test_all_apps_wellformed () =
  List.iter
    (fun g ->
      let apk = g.Generator.apk in
      Separ_dalvik.Apk.validate apk;
      check "app has components" true
        (apk.Separ_dalvik.Apk.manifest.Separ_android.Manifest.components <> []))
    (Lazy.force corpus)

let test_unique_packages_and_components () =
  let corpus = Lazy.force corpus in
  let pkgs = List.map (fun g -> Separ_dalvik.Apk.package g.Generator.apk) corpus in
  check_int "unique packages" (List.length pkgs)
    (List.length (List.sort_uniq compare pkgs));
  let comps =
    List.concat_map
      (fun g ->
        List.map
          (fun c -> c.Separ_android.Component.name)
          g.Generator.apk.Separ_dalvik.Apk.manifest
            .Separ_android.Manifest.components)
      corpus
  in
  check_int "unique component names across corpus" (List.length comps)
    (List.length (List.sort_uniq compare comps))

let test_sizes_vary () =
  let sizes =
    List.map (fun g -> Separ_dalvik.Apk.size g.Generator.apk) (Lazy.force corpus)
  in
  let lo = List.fold_left min max_int sizes in
  let hi = List.fold_left max 0 sizes in
  check "sizes spread" true (hi > 3 * lo)

let test_injection_detected () =
  (* every injected vulnerability is detectable by the pipeline when the
     app is analyzed alone *)
  let vulnerable =
    List.filter (fun g -> g.Generator.injected <> []) (Lazy.force corpus)
  in
  check "some vulnerable apps in sample" true (List.length vulnerable > 0);
  List.iter
    (fun g ->
      let analysis = Separ.analyze [ g.Generator.apk ] in
      let kinds =
        List.sort_uniq compare
          (List.map
             (fun v -> v.Separ_ase.Ase.v_kind)
             analysis.Separ.report.Separ_ase.Ase.r_vulnerabilities)
      in
      List.iter
        (fun inj ->
          let expected =
            match inj with
            | Generator.Hijack -> "intent_hijack"
            | Generator.Launch -> "service_launch"
            | Generator.Privesc -> "privilege_escalation"
            | Generator.Leak -> "information_leakage"
          in
          check
            (Printf.sprintf "%s: injected %s detected"
               (Separ_dalvik.Apk.package g.Generator.apk)
               expected)
            true (List.mem expected kinds))
        g.Generator.injected)
    vulnerable

let test_clean_apps_mostly_clean () =
  (* apps with no injected vulnerability produce no hijack/leak/privesc
     findings when analyzed alone *)
  let clean =
    List.filteri
      (fun i g -> i < 20 && g.Generator.injected = [])
      (Lazy.force corpus)
  in
  List.iter
    (fun g ->
      let analysis = Separ.analyze [ g.Generator.apk ] in
      let kinds =
        List.map
          (fun v -> v.Separ_ase.Ase.v_kind)
          analysis.Separ.report.Separ_ase.Ase.r_vulnerabilities
      in
      check "clean app has no hijack" false (List.mem "intent_hijack" kinds);
      check "clean app has no leak" false (List.mem "information_leakage" kinds);
      check "clean app has no privesc" false
        (List.mem "privilege_escalation" kinds))
    clean

let test_bundles () =
  let corpus = Lazy.force corpus in
  let n = List.length corpus in
  let bundles = Generator.bundles ~size:30 corpus in
  check_int "partition count" ((n + 29) / 30) (List.length bundles);
  check_int "first bundle full" 30 (List.length (List.hd bundles));
  check_int "total preserved" n
    (List.fold_left (fun acc b -> acc + List.length b) 0 bundles)

let tests =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "counts and stores" `Quick test_counts_and_stores;
    Alcotest.test_case "all apps well-formed" `Quick test_all_apps_wellformed;
    Alcotest.test_case "unique names" `Quick test_unique_packages_and_components;
    Alcotest.test_case "size spread" `Quick test_sizes_vary;
    Alcotest.test_case "injected vulnerabilities detectable" `Slow
      test_injection_detected;
    Alcotest.test_case "clean apps clean" `Slow test_clean_apps_mostly_clean;
    Alcotest.test_case "bundle partitioning" `Quick test_bundles;
  ]
