(* Tests for the relational-logic engine: tuple-set algebra, translation
   to SAT, quantifier and multiplicity semantics, minimal instances, and
   a differential property — solver-found instances always re-check under
   the independent ground evaluator, and satisfiability agrees with
   brute-force enumeration on small bounds. *)

open Separ_relog

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ts arity l = Tuple_set.of_list arity (List.map Array.of_list l)

(* --- tuple-set algebra ---------------------------------------------------- *)

let test_ts_ops () =
  let a = ts 1 [ [ 0 ]; [ 1 ] ] and b = ts 1 [ [ 1 ]; [ 2 ] ] in
  check_int "union" 3 (Tuple_set.size (Tuple_set.union a b));
  check_int "inter" 1 (Tuple_set.size (Tuple_set.inter a b));
  check_int "diff" 1 (Tuple_set.size (Tuple_set.diff a b));
  check "subset" true (Tuple_set.subset (ts 1 [ [ 1 ] ]) a);
  check "not subset" false (Tuple_set.subset b a)

let test_ts_union_merge () =
  (* The linear-merge union must preserve of_list's semantics exactly:
     sorted lexicographic tuple order, duplicates across (and within)
     the operands collapsed, arity mismatches rejected. *)
  let a = ts 2 [ [ 0; 1 ]; [ 2; 0 ]; [ 0; 0 ] ] in
  let b = ts 2 [ [ 0; 1 ]; [ 1; 9 ]; [ 2; 0 ]; [ 0; 2 ] ] in
  let u = Tuple_set.union a b in
  let expected =
    [ [| 0; 0 |]; [| 0; 1 |]; [| 0; 2 |]; [| 1; 9 |]; [| 2; 0 |] ]
  in
  check "merged, deduplicated, in sorted order" true
    (Tuple_set.to_list u = expected);
  check "agrees with of_list on the concatenation" true
    (Tuple_set.equal u
       (Tuple_set.of_list 2 (Tuple_set.to_list a @ Tuple_set.to_list b)));
  check "commutes" true (Tuple_set.equal u (Tuple_set.union b a));
  check "union with empty is identity" true
    (Tuple_set.equal a (Tuple_set.union a (Tuple_set.empty 2))
    && Tuple_set.equal a (Tuple_set.union (Tuple_set.empty 2) a));
  check "idempotent" true (Tuple_set.equal a (Tuple_set.union a a));
  check "arity mismatch rejected" true
    (try
       ignore (Tuple_set.union a (ts 1 [ [ 0 ] ]));
       false
     with Invalid_argument _ -> true)

let test_ts_join () =
  let r = ts 2 [ [ 0; 1 ]; [ 1; 2 ] ] in
  let x = ts 1 [ [ 0 ] ] in
  let j = Tuple_set.join x r in
  check "x.r = {1}" true (Tuple_set.equal j (ts 1 [ [ 1 ] ]));
  let rr = Tuple_set.join r r in
  check "r.r = {(0,2)}" true (Tuple_set.equal rr (ts 2 [ [ 0; 2 ] ]))

let test_ts_product_transpose () =
  let a = ts 1 [ [ 0 ]; [ 1 ] ] and b = ts 1 [ [ 2 ] ] in
  let p = Tuple_set.product a b in
  check "product" true (Tuple_set.equal p (ts 2 [ [ 0; 2 ]; [ 1; 2 ] ]));
  check "transpose" true
    (Tuple_set.equal (Tuple_set.transpose p) (ts 2 [ [ 2; 0 ]; [ 2; 1 ] ]))

let test_ts_closure () =
  let r = ts 2 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] in
  let c = Tuple_set.closure r in
  check_int "closure size" 6 (Tuple_set.size c);
  check "0 reaches 3" true (Tuple_set.mem [| 0; 3 |] c);
  check "3 reaches nothing" false (Tuple_set.mem [| 3; 0 |] c)

(* --- a fixed problem: the paper's Alloy warm-up --------------------------- *)

let paper_problem extra_constraints =
  let u = Universe.of_atoms [ "App0"; "App1"; "Cmp0"; "Cmp1" ] in
  let application = Relation.make "Application" 1 in
  let component = Relation.make "Component" 1 in
  let cmps = Relation.make "cmps" 2 in
  let b = Bounds.create u in
  Bounds.bound b application ~lower:(Tuple_set.empty 1)
    ~upper:(Bounds.tuples b [ [ "App0" ]; [ "App1" ] ]);
  Bounds.bound b component ~lower:(Tuple_set.empty 1)
    ~upper:(Bounds.tuples b [ [ "Cmp0" ]; [ "Cmp1" ] ]);
  Bounds.bound b cmps ~lower:(Tuple_set.empty 2)
    ~upper:
      (Bounds.tuples b
         [
           [ "App0"; "Cmp0" ]; [ "App0"; "Cmp1" ];
           [ "App1"; "Cmp0" ]; [ "App1"; "Cmp1" ];
         ]);
  let open Ast.Dsl in
  let facts =
    [
      rel cmps <: rel application --> rel component;
      all (rel component) (fun c -> one (c |. tilde (rel cmps)));
      some (rel component);
    ]
  in
  ( Solve.{ bounds = b; constraints = facts @ extra_constraints application component cmps },
    (application, component, cmps) )

let no_extra _ _ _ = []

let test_paper_example_sat () =
  let problem, _ = paper_problem no_extra in
  match Solve.solve problem with
  | Solve.Sat inst, _ ->
      check "instance verifies" true (Solve.verify problem inst)
  | (Solve.Unsat | Solve.Unknown), _ -> Alcotest.fail "expected sat"

let test_paper_example_minimal () =
  let problem, (application, component, cmps) = paper_problem no_extra in
  match Solve.solve problem with
  | Solve.Sat inst, _ ->
      (* Aluminum-style minimality: one component, its app, one pair *)
      check_int "one app" 1 (Tuple_set.size (Instance.value inst application));
      check_int "one component" 1 (Tuple_set.size (Instance.value inst component));
      check_int "one cmps pair" 1 (Tuple_set.size (Instance.value inst cmps))
  | (Solve.Unsat | Solve.Unknown), _ -> Alcotest.fail "expected sat"

let test_paper_example_unsat_no_apps () =
  let problem, _ =
    paper_problem (fun application _ _ -> [ Ast.Dsl.no (Ast.Rel application) ])
  in
  match Solve.solve problem with
  | Solve.Unsat, _ -> ()
  | (Solve.Sat _ | Solve.Unknown), _ -> Alcotest.fail "expected unsat"

let test_paper_example_enumeration () =
  let problem, _ = paper_problem no_extra in
  let instances, truncated, _ = Solve.enumerate ~limit:50 problem in
  (* minimal instances: component x app choices = 4 *)
  check_int "four minimal instances" 4 (List.length instances);
  check "exhausted, not truncated" false truncated;
  List.iter
    (fun inst -> check "each verifies" true (Solve.verify problem inst))
    instances

(* --- multiplicity and quantifier semantics --------------------------------- *)

let small_problem ?(n = 3) f =
  let atoms = List.init n (fun i -> "a" ^ string_of_int i) in
  let u = Universe.of_atoms atoms in
  let s = Relation.make "S" 1 in
  let b = Bounds.create u in
  Bounds.bound b s ~lower:(Tuple_set.empty 1)
    ~upper:(Tuple_set.univ n);
  (Solve.{ bounds = b; constraints = f s }, s)

let test_mult_no () =
  let problem, s = small_problem (fun s -> [ Ast.Dsl.no (Ast.Rel s) ]) in
  match Solve.solve problem with
  | Solve.Sat inst, _ ->
      check_int "no S: empty" 0 (Tuple_set.size (Instance.value inst s))
  | _ -> Alcotest.fail "expected sat"

let test_mult_one () =
  let problem, s = small_problem (fun s -> [ Ast.Dsl.one (Ast.Rel s) ]) in
  match Solve.solve problem with
  | Solve.Sat inst, _ ->
      check_int "one S: singleton" 1 (Tuple_set.size (Instance.value inst s))
  | _ -> Alcotest.fail "expected sat"

let test_mult_lone_allows_empty () =
  let problem, _ =
    small_problem (fun s ->
        [ Ast.Dsl.lone (Ast.Rel s); Ast.Dsl.no (Ast.Rel s) ])
  in
  match Solve.solve problem with
  | Solve.Sat _, _ -> ()
  | _ -> Alcotest.fail "lone must allow empty"

let test_quantifier_all () =
  (* all x in univ: x in S  ==> S = univ *)
  let problem, s =
    small_problem (fun s ->
        [ Ast.Dsl.(all Ast.Univ (fun x -> x <: Ast.Rel s)) ])
  in
  match Solve.solve problem with
  | Solve.Sat inst, _ ->
      check_int "S is the universe" 3 (Tuple_set.size (Instance.value inst s))
  | _ -> Alcotest.fail "expected sat"

let test_quantifier_exists_witness () =
  let problem, _ =
    small_problem (fun s ->
        [
          Ast.Dsl.(exists Ast.Univ (fun x -> x <: Ast.Rel s));
          Ast.Dsl.no (Ast.Rel s);
        ])
  in
  match Solve.solve problem with
  | Solve.Unsat, _ -> ()
  | _ -> Alcotest.fail "exists + no is unsat"

(* --- differential: random problems vs ground evaluation ------------------- *)

(* Random formula generator over one unary and one binary relation. *)
let random_formula rand s r =
  let open Ast in
  let rec expr1 depth =
    if depth = 0 then if Random.State.bool rand then Rel s else Univ
    else
      match Random.State.int rand 5 with
      | 0 -> Union (expr1 (depth - 1), expr1 (depth - 1))
      | 1 -> Inter (expr1 (depth - 1), expr1 (depth - 1))
      | 2 -> Diff (expr1 (depth - 1), expr1 (depth - 1))
      | 3 -> Join (expr1 (depth - 1), expr2 (depth - 1))
      | _ -> Rel s
  and expr2 depth =
    if depth = 0 then Rel r
    else
      match Random.State.int rand 4 with
      | 0 -> Transpose (expr2 (depth - 1))
      | 1 -> Closure (expr2 (depth - 1))
      | 2 -> Union (expr2 (depth - 1), expr2 (depth - 1))
      | _ -> Rel r
  in
  let rec formula depth =
    if depth = 0 then
      match Random.State.int rand 4 with
      | 0 -> Subset (expr1 1, expr1 1)
      | 1 -> Mult (Msome, expr1 1)
      | 2 -> Mult (Mno, expr1 1)
      | _ -> Mult (Mlone, expr1 1)
    else
      match Random.State.int rand 6 with
      | 0 -> And_f (formula (depth - 1), formula (depth - 1))
      | 1 -> Or_f (formula (depth - 1), formula (depth - 1))
      | 2 -> Not_f (formula (depth - 1))
      | 3 -> Dsl.all (Rel s) (fun x -> Subset (Join (x, Rel r), Rel s))
      | 4 -> Dsl.exists Univ (fun x -> Subset (x, expr1 1))
      | _ -> formula 0
  in
  formula 2

(* Enumerate all instances by brute force for tiny bounds. *)
let brute_force_sat n s r formula =
  let u = Universe.of_atoms (List.init n (fun i -> "b" ^ string_of_int i)) in
  let unary =
    List.init n (fun i -> [| i |])
  in
  let binary =
    List.concat_map (fun i -> List.init n (fun j -> [| i; j |]))
      (List.init n (fun i -> i))
  in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let rs = subsets rest in
        rs @ List.map (fun set -> x :: set) rs
  in
  List.exists
    (fun s_set ->
      List.exists
        (fun r_set ->
          let inst =
            Instance.make u
              [
                (s, Tuple_set.of_list 1 s_set); (r, Tuple_set.of_list 2 r_set);
              ]
          in
          Eval.check inst formula)
        (subsets binary))
    (subsets unary)

let test_differential_vs_eval () =
  let rand = Random.State.make [| 23 |] in
  for _ = 1 to 60 do
    let n = 2 in
    let s = Relation.make "S" 1 in
    let r = Relation.make "R" 2 in
    let u = Universe.of_atoms (List.init n (fun i -> "b" ^ string_of_int i)) in
    let b = Bounds.create u in
    Bounds.bound b s ~lower:(Tuple_set.empty 1) ~upper:(Tuple_set.univ n);
    Bounds.bound b r ~lower:(Tuple_set.empty 2)
      ~upper:
        (Tuple_set.of_list 2
           (List.concat_map
              (fun i -> List.init n (fun j -> [| i; j |]))
              (List.init n (fun i -> i))));
    let f = random_formula rand s r in
    let problem = Solve.{ bounds = b; constraints = [ f ] } in
    let solver_sat =
      match Solve.solve problem with
      | Solve.Sat inst, _ ->
          check "instance satisfies formula under Eval" true
            (Eval.check inst f);
          true
      | (Solve.Unsat | Solve.Unknown), _ -> false
    in
    let brute = brute_force_sat n s r f in
    check "solver agrees with brute force" brute solver_sat
  done

let test_stats_populated () =
  let problem, _ = paper_problem no_extra in
  let _, session = Solve.solve problem in
  let st = Solve.stats session in
  check "has variables" true (st.Solve.n_vars > 0);
  check "has clauses" true (st.Solve.n_clauses > 0);
  check "translation timed" true (st.Solve.translation_ms >= 0.0)

let test_stats_refresh () =
  (* Regression: n_vars/n_clauses used to be frozen at prepare time;
     enumeration adds blocking clauses and stats must report the live
     formula.  (Variable counts no longer grow here: the canonical
     lexicographic minimization works purely through assumptions,
     allocating no activation variables.) *)
  let problem, _ = paper_problem no_extra in
  let session = Solve.prepare problem in
  let st0 = Solve.stats session in
  (match Solve.next session with
  | Solve.Sat _ -> Solve.block session
  | Solve.Unsat | Solve.Unknown -> Alcotest.fail "expected sat");
  (match Solve.next session with
  | Solve.Sat _ -> ()
  | Solve.Unsat | Solve.Unknown -> Alcotest.fail "expected a second instance");
  let st1 = Solve.stats session in
  check "clause count grew past the prepare-time snapshot" true
    (st1.Solve.n_clauses > st0.Solve.n_clauses);
  check "variable count did not shrink" true
    (st1.Solve.n_vars >= st0.Solve.n_vars)

let test_enumerate_truncated () =
  (* the paper example has exactly 4 minimal instances *)
  let problem, _ = paper_problem no_extra in
  let instances, truncated, _ = Solve.enumerate ~limit:2 problem in
  check_int "cut off at the limit" 2 (List.length instances);
  check "truncated flagged" true truncated;
  let problem, _ = paper_problem no_extra in
  let instances, truncated, _ = Solve.enumerate ~limit:4 problem in
  check_int "limit equal to instance count" 4 (List.length instances);
  check "stopping exactly at the limit counts as truncated" true truncated

let test_budget_unknown_propagates () =
  let problem, _ = paper_problem no_extra in
  let session =
    Solve.prepare
      ~budget:
        { Separ_sat.Solver.b_max_conflicts = Some 0; b_max_time_ms = None }
      problem
  in
  (match Solve.next session with
  | Solve.Unknown -> ()
  | Solve.Sat _ | Solve.Unsat ->
      Alcotest.fail "zero budget must yield Unknown");
  let problem, _ = paper_problem no_extra in
  let instances, truncated, _ =
    Solve.enumerate
      ~budget:
        { Separ_sat.Solver.b_max_conflicts = Some 0; b_max_time_ms = None }
      problem
  in
  check_int "no instances under a zero budget" 0 (List.length instances);
  check "a budget abort is not a truncation" false truncated

let test_universe () =
  let u = Universe.of_atoms [ "x"; "y" ] in
  check_int "size" 2 (Universe.size u);
  check_int "atom index" 1 (Universe.atom u "y");
  check "mem" true (Universe.mem u "x");
  check "not mem" false (Universe.mem u "z");
  Alcotest.check_raises "duplicate atoms rejected"
    (Invalid_argument "Universe.of_atoms: duplicate atom x") (fun () ->
      ignore (Universe.of_atoms [ "x"; "x" ]))

let tests =
  [
    Alcotest.test_case "tuple-set ops" `Quick test_ts_ops;
    Alcotest.test_case "tuple-set union merge semantics" `Quick
      test_ts_union_merge;
    Alcotest.test_case "tuple-set join" `Quick test_ts_join;
    Alcotest.test_case "tuple-set product/transpose" `Quick
      test_ts_product_transpose;
    Alcotest.test_case "tuple-set closure" `Quick test_ts_closure;
    Alcotest.test_case "paper example sat" `Quick test_paper_example_sat;
    Alcotest.test_case "paper example minimal" `Quick test_paper_example_minimal;
    Alcotest.test_case "paper example unsat" `Quick
      test_paper_example_unsat_no_apps;
    Alcotest.test_case "paper example enumeration" `Quick
      test_paper_example_enumeration;
    Alcotest.test_case "mult no" `Quick test_mult_no;
    Alcotest.test_case "mult one" `Quick test_mult_one;
    Alcotest.test_case "mult lone allows empty" `Quick
      test_mult_lone_allows_empty;
    Alcotest.test_case "all quantifier" `Quick test_quantifier_all;
    Alcotest.test_case "exists quantifier" `Quick test_quantifier_exists_witness;
    Alcotest.test_case "differential vs ground eval" `Slow
      test_differential_vs_eval;
    Alcotest.test_case "solver stats" `Quick test_stats_populated;
    Alcotest.test_case "stats refresh as formula grows" `Quick
      test_stats_refresh;
    Alcotest.test_case "enumerate reports truncation" `Quick
      test_enumerate_truncated;
    Alcotest.test_case "budget unknown propagates" `Quick
      test_budget_unknown_propagates;
    Alcotest.test_case "universe" `Quick test_universe;
  ]
