(* The persistent content-addressed cache: store roundtrips, corruption
   tolerance (truncated / garbled / wrong-digest entries degrade to
   recorded misses), LRU eviction under a size cap, read-through AME
   extraction, per-signature ASE fingerprints (stability and delta
   selectivity), warm re-analysis, and the worker wire protocol. *)

open Separ
module Store = Separ_cache.Store
module Pool = Separ_exec.Pool
module Metrics = Separ_obs.Metrics
module B = Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* A fresh, empty directory for one store. *)
let fresh_dir () =
  let d = Filename.temp_file "separ_cache" "" in
  Sys.remove d;
  d

(* Where [Store] keeps the entry for [key] — tests corrupt it in place. *)
let entry_file dir tier key =
  Filename.concat (Filename.concat dir tier) (Digest.to_hex (Digest.string key))

let slurp path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let spit path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* --- store basics --------------------------------------------------------- *)

let test_roundtrip () =
  let t = Store.open_ ~dir:(fresh_dir ()) () in
  check "initial lookup misses" true
    ((Store.find t ~tier:"ame" ~key:"k" : int list option) = None);
  Store.store t ~tier:"ame" ~key:"k" [ 1; 2; 3 ];
  (match (Store.find t ~tier:"ame" ~key:"k" : int list option) with
  | Some v -> Alcotest.(check (list int)) "value roundtrips" [ 1; 2; 3 ] v
  | None -> Alcotest.fail "expected a hit after store");
  let stats = Store.stats t in
  check_int "one hit" 1 (List.assoc "ame.hits" stats);
  check_int "one miss" 1 (List.assoc "ame.misses" stats);
  check_int "one store" 1 (List.assoc "stores" stats);
  check_int "no corruption" 0 (List.assoc "corrupt" stats);
  check_int "one entry on disk" 1 (Store.entry_count t ~tier:"ame")

(* Distinct keys and tiers do not collide. *)
let test_key_and_tier_separation () =
  let t = Store.open_ ~dir:(fresh_dir ()) () in
  Store.store t ~tier:"ame" ~key:"k" "ame-value";
  Store.store t ~tier:"ase" ~key:"k" "ase-value";
  check "same key, different tiers" true
    ((Store.find t ~tier:"ame" ~key:"k" : string option) = Some "ame-value"
    && (Store.find t ~tier:"ase" ~key:"k" : string option) = Some "ase-value");
  check "unknown key misses" true
    ((Store.find t ~tier:"ame" ~key:"other" : string option) = None)

(* --- corruption tolerance ------------------------------------------------- *)

(* Corrupt one stored entry with [mangle], then check the lookup degrades
   to a recorded miss, the bad file is deleted, and a re-store recovers. *)
let corruption_case mangle =
  let dir = fresh_dir () in
  let t = Store.open_ ~dir () in
  Store.store t ~tier:"ase" ~key:"sig" "verdict";
  let path = entry_file dir "ase" "sig" in
  spit path (mangle (slurp path));
  check "corrupt entry is a miss" true
    ((Store.find t ~tier:"ase" ~key:"sig" : string option) = None);
  let stats = Store.stats t in
  check_int "corruption recorded" 1 (List.assoc "corrupt" stats);
  check_int "miss recorded" 1 (List.assoc "ase.misses" stats);
  check "bad entry deleted" false (Sys.file_exists path);
  (* the caller recomputes and rewrites; the store recovers in place *)
  Store.store t ~tier:"ase" ~key:"sig" "verdict";
  check "re-store recovers" true
    ((Store.find t ~tier:"ase" ~key:"sig" : string option) = Some "verdict")

let test_truncated_entry () =
  (* cut mid-payload and mid-header *)
  corruption_case (fun raw -> String.sub raw 0 (String.length raw - 3));
  corruption_case (fun raw -> String.sub raw 0 4)

let test_wrong_digest_entry () =
  corruption_case (fun raw ->
      let b = Bytes.of_string raw in
      let last = Bytes.length b - 1 in
      Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xff));
      Bytes.to_string b)

let test_wrong_magic_entry () =
  corruption_case (fun raw -> "NOTMAGIC" ^ String.sub raw 8 (String.length raw - 8))

(* A writer that died mid-write leaves a temporary file behind; it must
   not shadow the real entry, be served, or break later writes. *)
let test_stale_tmp_file_harmless () =
  let dir = fresh_dir () in
  let t = Store.open_ ~dir () in
  Store.store t ~tier:"ame" ~key:"k" "good";
  let tdir = Filename.concat dir "ame" in
  spit (Filename.concat tdir ".tmp.deadbeef.999") "partial garbage";
  check "real entry still served" true
    ((Store.find t ~tier:"ame" ~key:"k" : string option) = Some "good");
  check_int "tmp file not counted as an entry" 1 (Store.entry_count t ~tier:"ame");
  (* overwriting the same key (the concurrent-writer race resolved by
     atomic rename) just replaces the entry *)
  Store.store t ~tier:"ame" ~key:"k" "newer";
  check "last writer wins" true
    ((Store.find t ~tier:"ame" ~key:"k" : string option) = Some "newer")

(* A process killed mid-publish leaks its ".tmp.*" file; nothing ever
   read or removed it.  Opening the store must sweep tmp files whose
   owning pid (the trailing name component) is dead or unparseable,
   while leaving a live process's in-flight publish alone. *)
let test_orphan_tmp_swept_on_open () =
  let dir = fresh_dir () in
  (* a first handle creates the tier, then "dies" mid-publish *)
  let t0 = Store.open_ ~dir () in
  Store.store t0 ~tier:"ame" ~key:"k" "good";
  let tdir = Filename.concat dir "ame" in
  (* a genuinely dead pid: fork a child that exits immediately *)
  let dead_pid =
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
        ignore (Unix.waitpid [] pid);
        pid
  in
  let orphan_dead =
    Filename.concat tdir (Printf.sprintf ".tmp.deadentry.%d" dead_pid)
  in
  let orphan_junk = Filename.concat tdir ".tmp.noentry.notapid" in
  let live =
    Filename.concat tdir (Printf.sprintf ".tmp.inflight.%d" (Unix.getpid ()))
  in
  List.iter (fun p -> spit p "half-written payload")
    [ orphan_dead; orphan_junk; live ];
  let t = Store.open_ ~dir () in
  check "dead-pid orphan swept" false (Sys.file_exists orphan_dead);
  check "unparseable orphan swept" false (Sys.file_exists orphan_junk);
  check "live in-flight publish kept" true (Sys.file_exists live);
  check_int "two sweeps recorded" 2 (List.assoc "tmp_swept" (Store.stats t));
  (* the surviving tmp file never leaks into the entry accounting *)
  check_int "tmp file not an entry" 1 (Store.entry_count t ~tier:"ame");
  let entry = entry_file dir "ame" "k" in
  check "size counts entries only" true
    (Store.size_bytes t = String.length (slurp entry));
  check "real entry still served" true
    ((Store.find t ~tier:"ame" ~key:"k" : string option) = Some "good");
  Sys.remove live

(* The read-through LRU touch must bump only the access time: the old
   [utimes path 0. 0.] call hit the both-zero special case that resets
   atime AND mtime to now, clobbering the publish time on every hit
   (and making mtime-based external inspection lie). *)
let test_hit_preserves_mtime () =
  let dir = fresh_dir () in
  let t = Store.open_ ~dir () in
  Store.store t ~tier:"ame" ~key:"k" "payload";
  let path = entry_file dir "ame" "k" in
  (* age the entry: both times well in the past *)
  let past = Unix.gettimeofday () -. 1000.0 in
  Unix.utimes path past past;
  (match (Store.find t ~tier:"ame" ~key:"k" : string option) with
  | Some "payload" -> ()
  | _ -> Alcotest.fail "hit expected");
  let st = Unix.stat path in
  check "mtime preserved across the hit" true
    (abs_float (st.Unix.st_mtime -. past) < 2.0);
  check "atime refreshed by the hit" true
    (st.Unix.st_atime > past +. 500.0);
  (* a second hit keeps mtime pinned too *)
  ignore (Store.find t ~tier:"ame" ~key:"k" : string option);
  let st2 = Unix.stat path in
  check "mtime still preserved" true
    (abs_float (st2.Unix.st_mtime -. past) < 2.0)

(* --- eviction ------------------------------------------------------------- *)

let test_eviction_under_tiny_cap () =
  let cap = 400 in
  let t = Store.open_ ~dir:(fresh_dir ()) ~max_bytes:cap () in
  let big = String.make 200 'x' in
  List.iter (fun k -> Store.store t ~tier:"ame" ~key:k big) [ "a"; "b"; "c" ];
  let stats = Store.stats t in
  check "evictions recorded" true (List.assoc "evictions" stats > 0);
  check "size back under cap" true (Store.size_bytes t <= cap);
  check "some entries evicted" true (Store.entry_count t ~tier:"ame" < 3);
  (* an evicted key degrades to a recorded miss and can be recomputed *)
  let missing =
    List.filter
      (fun k -> (Store.find t ~tier:"ame" ~key:k : string option) = None)
      [ "a"; "b"; "c" ]
  in
  check "an evicted key misses" true (missing <> []);
  check "miss recorded for evicted keys" true
    (List.assoc "ame.misses" (Store.stats t) >= List.length missing);
  Store.store t ~tier:"ame" ~key:(List.hd missing) big;
  check "rewrite keeps the cap" true (Store.size_bytes t <= cap)

(* --- AME read-through ----------------------------------------------------- *)

let test_extract_cached () =
  Metrics.enable ();
  Metrics.reset ();
  let t = Store.open_ ~dir:(fresh_dir ()) () in
  let apk = Demo.navigation_app () in
  let extracted () = Metrics.counter_value (Metrics.counter "ame.apps_extracted") in
  let cold = Extract.extract_cached ~cache:t apk in
  check_int "cold run extracts" 1 (extracted ());
  let warm = Extract.extract_cached ~cache:t apk in
  check_int "warm run does not extract" 1 (extracted ());
  check "cached model equals extracted model" true
    ({ warm with App_model.am_extraction_ms = 0. }
    = { cold with App_model.am_extraction_ms = 0. });
  (* a different APK is a different key *)
  ignore (Extract.extract_cached ~cache:t (Demo.messenger_app ()));
  check_int "second app extracts" 2 (extracted ());
  let stats = Store.stats t in
  check_int "one AME hit" 1 (List.assoc "ame.hits" stats);
  check_int "two AME misses" 2 (List.assoc "ame.misses" stats);
  Metrics.reset ();
  Metrics.disable ()

(* --- ASE fingerprints ----------------------------------------------------- *)

(* A one-component app whose two variants differ only in a sensitive
   source-to-sink path (no intents, no filters): the delta is invisible
   to path-blind signatures. *)
let probe_app ~extra_path () =
  let body =
    B.meth ~name:"onStartCommand" ~params:1 (fun b ->
        if extra_path then
          let v = B.get_location b in
          B.write_log b ~payload:v)
  in
  Apk.make
    ~manifest:
      (Manifest.make ~package:"com.cache.probe"
         ~uses_permissions:[ Permission.access_fine_location ]
         ~components:[ Component.make ~name:"Probe" ~kind:Component.Service () ]
         ())
    ~classes:[ B.cls ~name:"Probe" [ body ] ]

let bundle_with ~extra_path () =
  Bundle.of_models
    (List.map Extract.extract
       [ Demo.navigation_app (); Demo.messenger_app (); probe_app ~extra_path () ])

let signature_named name =
  List.find (fun (s : Signatures.t) -> s.Signatures.name = name) (Signatures.all ())

(* Fingerprints must survive re-encoding from scratch: the encoder's
   fresh-variable counter is process-global, so this is what catches a
   non-alpha-invariant rendering. *)
let test_fingerprint_stability () =
  let b1 = bundle_with ~extra_path:false () in
  let b2 = bundle_with ~extra_path:false () in
  List.iter
    (fun (s : Signatures.t) ->
      check (s.Signatures.name ^ " fingerprint stable across re-encoding") true
        (Ase.signature_fingerprint b1 s = Ase.signature_fingerprint b2 s))
    (Signatures.all ())

let test_fingerprint_selectivity () =
  let b0 = bundle_with ~extra_path:false () in
  let b1 = bundle_with ~extra_path:true () in
  let fp name b = Ase.signature_fingerprint b (signature_named name) in
  (* intent_hijack's formula never touches the path relations *)
  check "path-only change invisible to intent_hijack" true
    (fp "intent_hijack" b0 = fp "intent_hijack" b1);
  (* the path-sensitive signatures must see it *)
  List.iter
    (fun name ->
      check (name ^ " sees the new path") false (fp name b0 = fp name b1))
    [ "information_leakage"; "service_launch" ];
  (* different enumeration limits never share verdicts *)
  check "limit is part of the key" false
    (Ase.signature_fingerprint ~limit:1 b0 (signature_named "intent_hijack")
    = Ase.signature_fingerprint ~limit:2 b0 (signature_named "intent_hijack"))

(* --- warm re-analysis ----------------------------------------------------- *)

let stripped report =
  Separ_report.Report.to_string ~report:(Ase.strip_performance report)
    ~policies:[] ()

let test_analyze_warm_rerun () =
  Metrics.enable ();
  Metrics.reset ();
  let t = Store.open_ ~dir:(fresh_dir ()) () in
  let bundle =
    Bundle.of_models
      (List.map Extract.extract [ Demo.navigation_app (); Demo.messenger_app () ])
  in
  let nsigs = List.length (Signatures.all ()) in
  let cold = Ase.analyze ~cache:t bundle in
  check_int "cold run misses every signature" nsigs
    (List.assoc "ase.misses" (Store.stats t));
  check_int "cold run stores every verdict" nsigs
    (List.assoc "stores" (Store.stats t));
  Metrics.reset ();
  let warm = Ase.analyze ~cache:t bundle in
  check_int "warm run hits every signature" nsigs
    (List.assoc "ase.hits" (Store.stats t));
  check_int "warm run runs zero SAT solves" 0
    (Metrics.counter_value (Metrics.counter "sat.solves"));
  check "stripped reports byte-identical cold vs warm" true
    (stripped cold = stripped warm);
  check "cache section reported" true (warm.Ase.r_cache <> []);
  check "cache section stripped from canonical report" true
    ((Ase.strip_performance warm).Ase.r_cache = []);
  Metrics.reset ();
  Metrics.disable ()

(* --- worker wire protocol ------------------------------------------------- *)

let test_check_protocol () =
  (match Pool.check_protocol (Pool.protocol_tag ^ "marshalled bytes") with
  | Ok off ->
      check_int "payload starts after the tag"
        (String.length Pool.protocol_tag)
        off
  | Error msg -> Alcotest.fail ("tagged payload rejected: " ^ msg));
  (match Pool.check_protocol "SEP" with
  | Error msg -> check "short payload reported" true (contains ~affix:"truncated" msg)
  | Ok _ -> Alcotest.fail "truncated payload accepted");
  match Pool.check_protocol "SEPARP0\nstale worker bytes" with
  | Error msg ->
      check "version mismatch reported" true (contains ~affix:"mismatch" msg);
      check "observed tag quoted" true (contains ~affix:"SEPARP0" msg)
  | Ok _ -> Alcotest.fail "mismatched tag accepted"

let tests =
  [
    Alcotest.test_case "store roundtrip and stats" `Quick test_roundtrip;
    Alcotest.test_case "keys and tiers are separate" `Quick
      test_key_and_tier_separation;
    Alcotest.test_case "truncated entry degrades to miss" `Quick
      test_truncated_entry;
    Alcotest.test_case "wrong-digest entry degrades to miss" `Quick
      test_wrong_digest_entry;
    Alcotest.test_case "wrong-magic entry degrades to miss" `Quick
      test_wrong_magic_entry;
    Alcotest.test_case "stale tmp file is harmless" `Quick
      test_stale_tmp_file_harmless;
    Alcotest.test_case "orphan tmp files swept on open" `Quick
      test_orphan_tmp_swept_on_open;
    Alcotest.test_case "hit preserves mtime, bumps atime" `Quick
      test_hit_preserves_mtime;
    Alcotest.test_case "eviction under a tiny cap" `Quick
      test_eviction_under_tiny_cap;
    Alcotest.test_case "extract_cached read-through" `Quick test_extract_cached;
    Alcotest.test_case "signature fingerprints stable" `Quick
      test_fingerprint_stability;
    Alcotest.test_case "signature fingerprints selective" `Quick
      test_fingerprint_selectivity;
    Alcotest.test_case "warm re-analysis: zero solves, identical report" `Quick
      test_analyze_warm_rerun;
    Alcotest.test_case "worker wire protocol validation" `Quick
      test_check_protocol;
  ]
