(* Tests for the separ_obs telemetry kernel: deterministic-clock span
   nesting and ordering, counter/gauge/histogram semantics, the
   disabled-mode no-op path, the structured NDJSON event log (envelope,
   level threshold, rate limiting), the bounded span ring, GC-profiled
   spans, and validity of the exported Chrome-trace and OpenMetrics
   text under the minimal readers. *)

module Trace = Separ_obs.Trace
module Metrics = Separ_obs.Metrics
module Log = Separ_obs.Log
module Json = Separ_report.Json
module Telemetry = Separ_report.Telemetry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let checkf msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

(* Run [f] with telemetry enabled, a deterministic clock driven by
   [tick], and a guaranteed return to the pristine disabled state. *)
let with_deterministic_telemetry f =
  let now = ref 0.0 in
  let tick s = now := !now +. s in
  Trace.set_clock (fun () -> !now);
  Trace.enable ();
  Metrics.enable ();
  Trace.reset ();
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Metrics.disable ();
      Trace.use_default_clock ();
      Trace.reset ();
      Metrics.reset ())
    (fun () -> f tick)

(* --- spans ----------------------------------------------------------------- *)

let test_span_nesting () =
  with_deterministic_telemetry (fun tick ->
      Trace.with_span "outer" (fun () ->
          tick 0.001;
          Trace.with_span "inner_a" (fun () -> tick 0.002);
          Trace.with_span "inner_b" (fun () ->
              tick 0.001;
              Trace.with_span "leaf" (fun () -> tick 0.0005));
          tick 0.001);
      match Trace.roots () with
      | [ outer ] ->
          check_str "root name" "outer" outer.Trace.sp_name;
          checkf "outer start" 0.0 outer.Trace.sp_start_us;
          checkf "outer duration" 5500.0 outer.Trace.sp_dur_us;
          (match outer.Trace.sp_children with
          | [ a; b ] ->
              check_str "first child" "inner_a" a.Trace.sp_name;
              checkf "inner_a start" 1000.0 a.Trace.sp_start_us;
              checkf "inner_a duration" 2000.0 a.Trace.sp_dur_us;
              check_str "second child" "inner_b" b.Trace.sp_name;
              checkf "inner_b start" 3000.0 b.Trace.sp_start_us;
              checkf "inner_b duration" 1500.0 b.Trace.sp_dur_us;
              (match b.Trace.sp_children with
              | [ leaf ] ->
                  check_str "grandchild" "leaf" leaf.Trace.sp_name;
                  checkf "leaf start" 4000.0 leaf.Trace.sp_start_us;
                  checkf "leaf duration" 500.0 leaf.Trace.sp_dur_us
              | kids ->
                  Alcotest.failf "inner_b has %d children" (List.length kids))
          | kids -> Alcotest.failf "outer has %d children" (List.length kids))
      | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots))

let test_span_ordering_and_helpers () =
  with_deterministic_telemetry (fun tick ->
      for _ = 1 to 3 do
        Trace.with_span "phase" (fun () -> tick 0.001)
      done;
      check_int "three roots" 3 (List.length (Trace.roots ()));
      check_int "count" 3 (Trace.count "phase");
      checkf "total_ms" 3.0 (Trace.total_ms "phase");
      (* completion order = start order for sequential spans *)
      let starts =
        List.map (fun s -> s.Trace.sp_start_us) (Trace.roots ())
      in
      check "monotone starts" true (List.sort compare starts = starts))

let test_span_attrs () =
  with_deterministic_telemetry (fun tick ->
      Trace.with_span "work" ~attrs:[ Trace.attr_str "kind" "demo" ] (fun () ->
          tick 0.001;
          Trace.add_attr "items" (Trace.Int 7));
      match Trace.roots () with
      | [ sp ] ->
          check "has kind attr" true
            (List.mem_assoc "kind" sp.Trace.sp_attrs);
          check "has items attr" true
            (List.mem_assoc "items" sp.Trace.sp_attrs)
      | _ -> Alcotest.fail "expected one span")

let test_span_exception_safety () =
  with_deterministic_telemetry (fun tick ->
      (try
         Trace.with_span "outer" (fun () ->
             Trace.with_span "failing" (fun () ->
                 tick 0.002;
                 failwith "boom"))
       with Failure _ -> ());
      (* both spans were finished despite the exception; a new span does
         not end up parented under a stale open span *)
      Trace.with_span "after" (fun () -> tick 0.001);
      let names = List.map (fun s -> s.Trace.sp_name) (Trace.roots ()) in
      check "outer and after are roots" true (names = [ "outer"; "after" ]);
      check_int "failing recorded under outer" 1 (Trace.count "failing"))

let test_timed_measures_when_disabled () =
  let now = ref 0.0 in
  Trace.set_clock (fun () -> !now);
  Trace.disable ();
  Trace.reset ();
  Fun.protect
    ~finally:(fun () -> Trace.use_default_clock ())
    (fun () ->
      let v, ms =
        Trace.timed "untraced" (fun () ->
            now := !now +. 0.25;
            42)
      in
      check_int "thunk result" 42 v;
      checkf "duration still measured" 250.0 ms;
      check_int "but no span recorded" 0 (List.length (Trace.roots ())))

(* --- metrics --------------------------------------------------------------- *)

let test_counter_and_gauge () =
  with_deterministic_telemetry (fun _tick ->
      let c = Metrics.counter "test.counter" in
      Metrics.incr c;
      Metrics.incr c;
      Metrics.add c 5;
      check_int "counter value" 7 (Metrics.counter_value c);
      (* a second lookup returns the same underlying cell *)
      Metrics.incr (Metrics.counter "test.counter");
      check_int "shared handle" 8 (Metrics.counter_value c);
      let g = Metrics.gauge "test.gauge" in
      Metrics.set g 3.5;
      Metrics.add_to g 1.5;
      checkf "gauge value" 5.0 (Metrics.gauge_value g);
      Metrics.reset ();
      check_int "reset zeroes counters" 0 (Metrics.counter_value c);
      checkf "reset zeroes gauges" 0.0 (Metrics.gauge_value g))

let test_histogram_semantics () =
  with_deterministic_telemetry (fun _tick ->
      let h = Metrics.histogram ~buckets:[| 1.0; 5.0; 10.0 |] "test.hist" in
      List.iter (Metrics.observe h) [ 0.5; 1.0; 3.0; 7.0; 100.0 ];
      check_int "count" 5 (Metrics.histogram_count h);
      checkf "sum" 111.5 (Metrics.histogram_sum h);
      checkf "mean" 22.3 (Metrics.histogram_mean h);
      match Metrics.histogram_buckets h with
      | [ (le1, n1); (le5, n2); (le10, n3); (inf_le, n4) ] ->
          checkf "bucket bound 1" 1.0 le1;
          check_int "le 1.0 (boundary inclusive)" 2 n1;
          checkf "bucket bound 5" 5.0 le5;
          check_int "le 5.0" 1 n2;
          checkf "bucket bound 10" 10.0 le10;
          check_int "le 10.0" 1 n3;
          check "last bound is +inf" true (inf_le = infinity);
          check_int "overflow" 1 n4
      | bs -> Alcotest.failf "expected 4 buckets, got %d" (List.length bs))

let test_disabled_is_noop () =
  Trace.disable ();
  Metrics.disable ();
  Trace.reset ();
  let ran = ref false in
  Trace.with_span "ghost" (fun () -> ran := true);
  check "thunk still runs" true !ran;
  check_int "no spans recorded" 0 (List.length (Trace.roots ()));
  Trace.add_attr "ghost" (Trace.Int 1);
  let c = Metrics.counter "test.disabled_counter" in
  Metrics.incr c;
  Metrics.add c 10;
  check_int "counter untouched" 0 (Metrics.counter_value c);
  let h = Metrics.histogram "test.disabled_hist" in
  Metrics.observe h 3.0;
  check_int "histogram untouched" 0 (Metrics.histogram_count h)

(* --- export ---------------------------------------------------------------- *)

(* The exported trace must parse under the minimal JSON reader, every
   event must be a well-formed "X" event, and parent/child relationships
   must be recoverable from interval containment. *)
let test_trace_export_wellformed () =
  with_deterministic_telemetry (fun tick ->
      Trace.with_span "parent" (fun () ->
          tick 0.001;
          Trace.with_span "child" (fun () ->
              tick 0.002;
              Trace.add_attr "n" (Trace.Int 3));
          tick 0.001);
      let s = Json.to_string (Telemetry.trace_json ()) in
      let parsed = Json.parse s in
      let events =
        match Option.bind (Json.member "traceEvents" parsed) Json.to_list with
        | Some evs -> evs
        | None -> Alcotest.fail "no traceEvents array"
      in
      check_int "two events" 2 (List.length events);
      let field ev k = Json.member k ev in
      List.iter
        (fun ev ->
          check "has name" true
            (Option.bind (field ev "name") Json.to_str <> None);
          check_str "ph is X" "X"
            (Option.get (Option.bind (field ev "ph") Json.to_str));
          check "numeric ts" true
            (Option.bind (field ev "ts") Json.to_float <> None);
          check "numeric dur" true
            (Option.bind (field ev "dur") Json.to_float <> None))
        events;
      let find name =
        List.find
          (fun ev ->
            Option.bind (field ev "name") Json.to_str = Some name)
          events
      in
      let ts ev = Option.get (Option.bind (field ev "ts") Json.to_float) in
      let dur ev = Option.get (Option.bind (field ev "dur") Json.to_float) in
      let p = find "parent" and c = find "child" in
      check "child starts after parent" true (ts c >= ts p);
      check "child ends before parent" true
        (ts c +. dur c <= ts p +. dur p);
      check "child strictly inside" true (dur c < dur p);
      (* args carried through *)
      check "child args has n" true
        (match Option.bind (field c "args") (Json.member "n") with
        | Some (Json.Int 3) -> true
        | _ -> false))

let test_metrics_export () =
  with_deterministic_telemetry (fun _tick ->
      Metrics.add (Metrics.counter "test.exported") 4;
      Metrics.set (Metrics.gauge "test.exported_gauge") 2.5;
      Metrics.observe (Metrics.histogram "test.exported_hist") 1.0;
      let parsed = Json.parse (Json.to_string (Telemetry.metrics_json ())) in
      (match Option.bind (Json.member "counters" parsed)
               (Json.member "test.exported") with
      | Some (Json.Int 4) -> ()
      | _ -> Alcotest.fail "counter not exported");
      (match Option.bind (Json.member "gauges" parsed)
               (Json.member "test.exported_gauge") with
      | Some (Json.Float f) -> checkf "gauge exported" 2.5 f
      | _ -> Alcotest.fail "gauge not exported");
      match Option.bind (Json.member "histograms" parsed)
              (Json.member "test.exported_hist") with
      | Some h ->
          check "histogram count exported" true
            (Option.bind (Json.member "count" h) Json.to_float = Some 1.0)
      | None -> Alcotest.fail "histogram not exported")

(* A full pipeline run records the span hierarchy the report advertises:
   translation containing bounds/circuit/tseitin, sat.solve totals that
   equal the reported solving time. *)
let test_pipeline_spans_consistent () =
  with_deterministic_telemetry (fun _tick ->
      (* the deterministic clock never advances: durations are all 0 but
         structure must still be complete and well-nested *)
      Trace.use_default_clock ();
      let analysis =
        Separ.analyze
          [ Separ.Demo.navigation_app (); Separ.Demo.messenger_app () ]
      in
      check "pipeline produced vulnerabilities" true
        (Separ.vulnerabilities analysis <> []);
      check "ame spans" true (Trace.count "ame.extract" = 2);
      check "translate spans" true (Trace.count "relog.translate" > 0);
      (* incremental ASE: shared bases are translated once, signatures
         then attach delta sessions — each of either emits one bounds
         span *)
      check "attach spans" true (Trace.count "relog.attach" > 0);
      check_int "bounds under every translate and attach"
        (Trace.count "relog.translate" + Trace.count "relog.attach")
        (Trace.count "relog.bounds");
      check "sat.solve spans" true (Trace.count "sat.solve" > 0);
      check "policy.derive span" true (Trace.count "policy.derive" = 1);
      let sat_ms = Trace.total_ms "sat.solve" in
      let reported = analysis.Separ.report.Separ_ase.Ase.r_solving_ms in
      check "sat span total = reported solving time" true
        (Float.abs (sat_ms -. reported) <= (0.01 *. reported) +. 1e-6);
      check "sat.solves counter bridged" true
        (Metrics.counter_value (Metrics.counter "sat.solves") > 0))

(* --- structured log --------------------------------------------------------- *)

let read_lines path =
  let ic = open_in path in
  let acc = ref [] in
  (try
     while true do
       let l = String.trim (input_line ic) in
       if l <> "" then acc := l :: !acc
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !acc

(* Run [f] with a temp-file log sink installed, restoring the pristine
   no-sink state (default level, default rate limit) afterwards. *)
let with_log_sink f =
  let path = Filename.temp_file "separ_test_log" ".ndjson" in
  Log.to_file path;
  Log.reset ();
  Fun.protect
    ~finally:(fun () ->
      Log.close ();
      Log.set_level Log.Info;
      Log.set_rate_limit Log.default_rate_limit;
      Log.reset ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_log_ndjson_envelope () =
  with_deterministic_telemetry (fun tick ->
      with_log_sink (fun path ->
          Log.set_level Log.Debug;
          tick 0.001;
          Trace.with_span "phase" (fun () ->
              Log.info "test.event"
                ~fields:
                  [
                    ("answer", Trace.Int 42);
                    ("ratio", Trace.Float 2.5);
                    ("who", Trace.Str "a\"b\nc");
                    ("ok", Trace.Bool true);
                  ]);
          Log.debug "test.low";
          Log.close ();
          match read_lines path with
          | [ l1; l2 ] ->
              let j = Json.parse l1 in
              check "ts_us is the injected clock" true
                (Option.bind (Json.member "ts_us" j) Json.to_float
                = Some 1000.0);
              check "level rendered" true
                (Option.bind (Json.member "level" j) Json.to_str
                = Some "info");
              check "event name rendered" true
                (Option.bind (Json.member "event" j) Json.to_str
                = Some "test.event");
              check "pid is this process" true
                (Json.member "pid" j = Some (Json.Int (Unix.getpid ())));
              check "span id of the open span attached" true
                (match Json.member "span" j with
                | Some (Json.Int _) -> true
                | _ -> false);
              check "int field" true
                (Json.member "answer" j = Some (Json.Int 42));
              check "float field" true
                (Option.bind (Json.member "ratio" j) Json.to_float
                = Some 2.5);
              check "string field survives escaping" true
                (Json.member "who" j = Some (Json.Str "a\"b\nc"));
              check "bool field" true
                (Json.member "ok" j = Some (Json.Bool true));
              let j2 = Json.parse l2 in
              check "debug admitted at debug threshold" true
                (Option.bind (Json.member "level" j2) Json.to_str
                = Some "debug");
              check "no span key outside any span" true
                (Json.member "span" j2 = None)
          | ls -> Alcotest.failf "expected 2 log lines, got %d" (List.length ls)))

let test_log_level_threshold () =
  with_deterministic_telemetry (fun _tick ->
      with_log_sink (fun path ->
          Log.set_level Log.Warn;
          Log.debug "test.d";
          Log.info "test.i";
          Log.warn "test.w";
          Log.error "test.e";
          Log.close ();
          let events =
            List.map
              (fun l ->
                Option.bind (Json.member "event" (Json.parse l)) Json.to_str)
              (read_lines path)
          in
          check "only warn and error pass the threshold" true
            (events = [ Some "test.w"; Some "test.e" ])))

let test_log_rate_limit () =
  with_deterministic_telemetry (fun tick ->
      with_log_sink (fun path ->
          Log.set_rate_limit ~window_s:1.0 3;
          for _ = 1 to 5 do
            Log.info "test.hot"
          done;
          let _, suppressed = Log.stats () in
          check_int "overflow counted, not written" 2 suppressed;
          (* the suppressed count rides out on the next admitted event
             of the same name, in the next window *)
          tick 2.0;
          Log.info "test.hot";
          Log.close ();
          let lines = read_lines path in
          check_int "3 admitted + 1 next-window line" 4 (List.length lines);
          check "suppressed count rides out" true
            (Json.member "suppressed" (Json.parse (List.nth lines 3))
            = Some (Json.Int 2))))

(* --- snapshot merge --------------------------------------------------------- *)

let test_metrics_merge_mismatch () =
  with_deterministic_telemetry (fun _tick ->
      let h = Metrics.histogram ~buckets:[| 1.0; 2.0 |] "test.merge_bounds" in
      Metrics.observe h 0.5;
      let snap_ok =
        [
          Metrics.Snap_histogram
            ("test.merge_bounds", [| 1.0; 2.0 |], [| 1; 0; 0 |], 0.7, 1);
        ]
      in
      check "matching bounds merge clean" true (Metrics.merge snap_ok = []);
      check_int "counts merged additively" 2 (Metrics.histogram_count h);
      let snap_bad =
        [
          Metrics.Snap_histogram
            ("test.merge_bounds", [| 1.0; 3.0 |], [| 1; 0; 0 |], 0.7, 1);
        ]
      in
      check "mismatched bounds reported by name" true
        (Metrics.merge snap_bad = [ "test.merge_bounds" ]);
      check_int "mismatched snapshot left out of the registry" 2
        (Metrics.histogram_count h);
      check "unknown names register fresh and merge clean" true
        (Metrics.merge [ Metrics.Snap_counter ("test.merge_fresh", 3) ] = []);
      check_int "fresh counter carries the merged value" 3
        (Metrics.counter_value (Metrics.counter "test.merge_fresh")))

(* --- bounded span ring ------------------------------------------------------- *)

let test_trace_ring_bounded () =
  with_deterministic_telemetry (fun tick ->
      let cap0 = Trace.root_cap () in
      Fun.protect
        ~finally:(fun () -> Trace.set_root_cap cap0)
        (fun () ->
          Trace.set_root_cap 3;
          check_int "no drops yet" 0 (Trace.dropped_roots ());
          List.iter
            (fun name -> Trace.with_span name (fun () -> tick 0.001))
            [ "r1"; "r2"; "r3"; "r4"; "r5" ];
          let names = List.map (fun s -> s.Trace.sp_name) (Trace.roots ()) in
          check "newest three retained, oldest first" true
            (names = [ "r3"; "r4"; "r5" ]);
          check_int "overwritten roots counted" 2 (Trace.dropped_roots ());
          (* shrinking keeps the newest and counts the evictions *)
          Trace.set_root_cap 1;
          let names = List.map (fun s -> s.Trace.sp_name) (Trace.roots ()) in
          check "newest survives a shrink" true (names = [ "r5" ]);
          check_int "evictions counted as dropped" 4 (Trace.dropped_roots ());
          Trace.reset ();
          check_int "reset empties the ring" 0 (List.length (Trace.roots ()));
          check_int "reset zeroes the dropped counter" 0
            (Trace.dropped_roots ())))

(* --- GC-profiled spans ------------------------------------------------------- *)

let test_gc_profiling_spans () =
  with_deterministic_telemetry (fun _tick ->
      Trace.set_profile_gc true;
      Fun.protect
        ~finally:(fun () -> Trace.set_profile_gc false)
        (fun () ->
          Trace.with_span "gc.outer" (fun () ->
              Trace.with_span "gc.inner" (fun () ->
                  ignore
                    (Sys.opaque_identity
                       (List.init 10_000 (fun i -> string_of_int i)))));
          match Trace.roots () with
          | [ outer ] ->
              let minor sp =
                match List.assoc_opt "gc.minor_words" sp.Trace.sp_attrs with
                | Some (Trace.Float f) -> f
                | _ ->
                    Alcotest.failf "%s has no gc.minor_words attr"
                      sp.Trace.sp_name
              in
              let inner =
                match outer.Trace.sp_children with
                | [ i ] -> i
                | kids ->
                    Alcotest.failf "expected one child, got %d"
                      (List.length kids)
              in
              check "inner span shows its allocations" true
                (minor inner > 0.0);
              check "parent delta includes the child's" true
                (minor outer >= minor inner);
              (* metrics fold only from the top-level span — folding
                 every span would double-count the nested deltas *)
              check "counter folded exactly once, from the root" true
                (Metrics.counter_value (Metrics.counter "gc.minor_words")
                = int_of_float (minor outer))
          | roots ->
              Alcotest.failf "expected 1 root, got %d" (List.length roots)))

(* --- OpenMetrics export ------------------------------------------------------ *)

let test_openmetrics_roundtrip () =
  with_deterministic_telemetry (fun _tick ->
      Metrics.add (Metrics.counter "test.om_counter") 4;
      Metrics.set (Metrics.gauge "test.om_gauge") 2.5;
      let h = Metrics.histogram ~buckets:[| 1.0; 5.0; 10.0 |] "test.om_hist" in
      List.iter (Metrics.observe h) [ 0.5; 1.0; 3.0; 7.0; 100.0 ];
      let text = Telemetry.openmetrics_string () in
      (match Telemetry.openmetrics_check text with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "openmetrics_check rejected: %s" msg);
      let lines = String.split_on_char '\n' text in
      let value_of prefix =
        List.find_map
          (fun l ->
            let n = String.length prefix in
            if String.length l > n && String.sub l 0 n = prefix then
              Some (String.trim (String.sub l n (String.length l - n)))
            else None)
          lines
      in
      check "counter rendered with _total" true
        (value_of "separ_test_om_counter_total " = Some "4");
      check "gauge rendered plain" true
        (value_of "separ_test_om_gauge " = Some "2.5");
      (* the registry stores per-bucket counts; the exporter must fold
         them into OpenMetrics' cumulative le series *)
      check "le 1.0 cumulative" true
        (value_of "separ_test_om_hist_bucket{le=\"1.0\"} " = Some "2");
      check "le 5.0 cumulative" true
        (value_of "separ_test_om_hist_bucket{le=\"5.0\"} " = Some "3");
      check "le 10.0 cumulative" true
        (value_of "separ_test_om_hist_bucket{le=\"10.0\"} " = Some "4");
      check "+Inf bucket equals _count" true
        (value_of "separ_test_om_hist_bucket{le=\"+Inf\"} " = Some "5");
      check "sum rendered" true
        (value_of "separ_test_om_hist_sum " = Some "111.5");
      check "count rendered" true
        (value_of "separ_test_om_hist_count " = Some "5");
      (* round-trip: the cumulative series the text shows is exactly the
         running sum of Metrics.histogram_buckets *)
      let cumulative =
        List.rev
          (snd
             (List.fold_left
                (fun (acc, out) (_, n) -> (acc + n, (acc + n) :: out))
                (0, [])
                (Metrics.histogram_buckets h)))
      in
      check "text agrees with the registry's bucket counts" true
        (cumulative = [ 2; 3; 4; 5 ]))

let tests =
  [
    Alcotest.test_case "span nesting (deterministic clock)" `Quick
      test_span_nesting;
    Alcotest.test_case "span ordering and helpers" `Quick
      test_span_ordering_and_helpers;
    Alcotest.test_case "span attributes" `Quick test_span_attrs;
    Alcotest.test_case "span exception safety" `Quick
      test_span_exception_safety;
    Alcotest.test_case "timed measures when disabled" `Quick
      test_timed_measures_when_disabled;
    Alcotest.test_case "counter and gauge semantics" `Quick
      test_counter_and_gauge;
    Alcotest.test_case "histogram semantics" `Quick test_histogram_semantics;
    Alcotest.test_case "disabled mode is a no-op" `Quick
      test_disabled_is_noop;
    Alcotest.test_case "trace export is well-formed" `Quick
      test_trace_export_wellformed;
    Alcotest.test_case "metrics export" `Quick test_metrics_export;
    Alcotest.test_case "pipeline spans consistent with report" `Quick
      test_pipeline_spans_consistent;
    Alcotest.test_case "log NDJSON envelope" `Quick test_log_ndjson_envelope;
    Alcotest.test_case "log level threshold" `Quick test_log_level_threshold;
    Alcotest.test_case "log rate limiting" `Quick test_log_rate_limit;
    Alcotest.test_case "metrics merge reports bucket mismatches" `Quick
      test_metrics_merge_mismatch;
    Alcotest.test_case "span ring stays bounded" `Quick
      test_trace_ring_bounded;
    Alcotest.test_case "GC-profiled spans" `Quick test_gc_profiling_spans;
    Alcotest.test_case "OpenMetrics round-trip" `Quick
      test_openmetrics_roundtrip;
  ]
