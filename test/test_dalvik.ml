(* Tests for the IR substrate: builder output validity, validation
   errors, assembler round trips (including a property test over random
   programs), and the APK text container. *)

open Separ_android
open Separ_dalvik
module B = Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_builder_valid () =
  let m =
    B.meth ~name:"m" ~params:1 (fun b ->
        let v = B.get_location b in
        let i = B.new_intent b in
        B.set_action b i "a";
        B.put_extra b i ~key:"k" ~value:v;
        B.start_service b i)
  in
  Ir.validate_method m;
  check "params recorded" true (m.Ir.n_params = 1);
  check "has instructions" true (Array.length m.Ir.body > 5)

let test_builder_implicit_return () =
  let m = B.meth ~name:"m" (fun b -> B.nop b) in
  check "implicit return appended" true
    (m.Ir.body.(Array.length m.Ir.body - 1) = Ir.Return None)

let test_validate_bad_register () =
  let m =
    Ir.{ mname = "bad"; n_params = 0; n_regs = 1; body = [| Move (5, 0) |] }
  in
  check "bad register rejected" true
    (try
       Ir.validate_method m;
       false
     with Failure _ -> true)

let test_validate_bad_label () =
  let m =
    Ir.{ mname = "bad"; n_params = 0; n_regs = 1; body = [| Goto "nowhere" |] }
  in
  check "bad label rejected" true
    (try
       Ir.validate_method m;
       false
     with Failure _ -> true)

let test_validate_move_result () =
  let m =
    Ir.{ mname = "bad"; n_params = 0; n_regs = 1; body = [| Move_result 0 |] }
  in
  check "floating move-result rejected" true
    (try
       Ir.validate_method m;
       false
     with Failure _ -> true)

let test_branches () =
  let m =
    B.meth ~name:"m" ~params:1 (fun b ->
        let skip = B.fresh_label b in
        B.if_eqz b 0 skip;
        B.nop b;
        B.place_label b skip)
  in
  let cfg = Separ_static.Cfg.make m in
  check "branch has two successors" true
    (List.length (Separ_static.Cfg.succs cfg 0) = 2)

(* --- assembler round trips -------------------------------------------------- *)

let sample_class () =
  B.cls ~name:"com.x.Sample"
    [
      B.meth ~name:"onCreate" ~params:1 (fun b ->
          let v = B.get_device_id b in
          let i = B.new_intent b in
          B.set_action b i "act.x";
          B.add_category b i "cat.y";
          B.set_class_name b i "Other";
          B.put_extra b i ~key:"k \"quoted\"" ~value:v;
          let skip = B.fresh_label b in
          B.if_nez b v skip;
          B.write_log b ~payload:v;
          B.place_label b skip;
          B.start_activity b i);
      B.meth ~name:"helper" ~params:2 (fun b -> B.return_reg b 1);
    ]

let test_asm_roundtrip () =
  let c = sample_class () in
  let text = Asm.disassemble_class c in
  match Asm.assemble text with
  | [ c' ] ->
      check "class name" true (c'.Ir.cname = c.Ir.cname);
      check "structurally equal" true (c = c')
  | _ -> Alcotest.fail "expected one class"

let random_method rand =
  let n_regs = 2 + Random.State.int rand 6 in
  let b = B.create ~params:1 () in
  let n = 3 + Random.State.int rand 15 in
  let labels = ref [] in
  for k = 0 to n do
    match Random.State.int rand 8 with
    | 0 -> ignore (B.const_str b (Printf.sprintf "s%d" k))
    | 1 -> ignore (B.const_int b k)
    | 2 -> B.move b ~dst:0 ~src:0
    | 3 ->
        let l = B.fresh_label b in
        labels := l :: !labels;
        B.if_eqz b 0 l
    | 4 -> B.sput b ~field:"f" ~src:0
    | 5 -> ignore (B.sget b ~field:"g")
    | 6 -> B.invoke b (Separ_android.Api.mref "com.a.B" "m") [ 0 ]
    | _ -> B.nop b
  done;
  (* place all pending labels so branches resolve *)
  List.iter (B.place_label b) !labels;
  B.return_void b;
  ignore n_regs;
  B.finish b ~name:"r"

let test_asm_random_roundtrip () =
  let rand = Random.State.make [| 99 |] in
  for _ = 1 to 100 do
    let c = Ir.{ cname = "R"; methods = [ random_method rand ] } in
    let text = Asm.disassemble_class c in
    match Asm.assemble text with
    | [ c' ] -> check "random class round trips" true (c = c')
    | _ -> Alcotest.fail "expected one class"
  done

(* --- APK container ----------------------------------------------------------- *)

let sample_apk () =
  Apk.make
    ~manifest:
      (Manifest.make ~package:"com.x"
         ~uses_permissions:[ Permission.read_phone_state ]
         ~components:
           [
             Component.make ~name:"com.x.Sample" ~kind:Component.Activity
               ~intent_filters:
                 [
                   Intent_filter.make ~actions:[ "a1"; "a2" ]
                     ~categories:[ "c" ] ~data_schemes:[ "https" ] ();
                 ]
               ();
             Component.make ~name:"Other" ~kind:Component.Service
               ~exported:true ~permission:Permission.send_sms ();
           ]
         ())
    ~classes:[ sample_class () ]

let test_apk_text_roundtrip () =
  let apk = sample_apk () in
  let text = Apk_text.print apk in
  let apk' = Apk_text.parse text in
  check "package" true (Apk.package apk' = "com.x");
  check "manifest equal" true (apk.Apk.manifest = apk'.Apk.manifest);
  check "classes equal" true (apk.Apk.classes = apk'.Apk.classes)

let test_apk_size () =
  let apk = sample_apk () in
  check "size counts instructions" true (Apk.size apk > 10)

let test_entry_methods () =
  check_int "activity entries" 7
    (List.length (Apk.entry_methods Component.Activity));
  Alcotest.(check (list string))
    "lifecycle after onCreate" [ "onStart"; "onResume" ]
    (Apk.lifecycle_after "onCreate");
  check "service start entry" true
    (Apk.entry_for_icc Separ_android.Api.Start_service = "onStartCommand");
  check "bind entry" true
    (Apk.entry_for_icc Separ_android.Api.Bind_service = "onBind");
  check "broadcast entry" true
    (Apk.entry_for_icc Separ_android.Api.Send_broadcast = "onReceive")

let tests =
  [
    Alcotest.test_case "builder produces valid IR" `Quick test_builder_valid;
    Alcotest.test_case "builder implicit return" `Quick
      test_builder_implicit_return;
    Alcotest.test_case "validate bad register" `Quick test_validate_bad_register;
    Alcotest.test_case "validate bad label" `Quick test_validate_bad_label;
    Alcotest.test_case "validate move-result" `Quick test_validate_move_result;
    Alcotest.test_case "branch successors" `Quick test_branches;
    Alcotest.test_case "assembler round trip" `Quick test_asm_roundtrip;
    Alcotest.test_case "assembler random round trips" `Slow
      test_asm_random_roundtrip;
    Alcotest.test_case "apk text round trip" `Quick test_apk_text_roundtrip;
    Alcotest.test_case "apk size" `Quick test_apk_size;
    Alcotest.test_case "entry methods" `Quick test_entry_methods;
  ]
