(* Tests for the JSON report layer: escaping, printer structure, and the
   analysis report shape. *)

module Json = Separ_report.Json

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_scalars () =
  check_str "null" "null" (Json.to_string Json.Null);
  check_str "bool" "true" (Json.to_string (Json.Bool true));
  check_str "int" "42" (Json.to_string (Json.Int 42));
  check_str "string" "\"hi\"" (Json.to_string (Json.Str "hi"));
  check_str "integral float" "2.0" (Json.to_string (Json.Float 2.0))

let test_escaping () =
  check_str "quotes and backslashes" "\"a\\\"b\\\\c\""
    (Json.to_string (Json.Str "a\"b\\c"));
  check_str "newlines" "\"l1\\nl2\"" (Json.to_string (Json.Str "l1\nl2"));
  check_str "control chars" "\"\\u0001\""
    (Json.to_string (Json.Str "\001"))

let test_compact_structures () =
  check_str "empty list" "[]" (Json.to_string ~indent:false (Json.List []));
  check_str "empty object" "{}" (Json.to_string ~indent:false (Json.Obj []));
  check_str "nested" "{\"a\":[1,2],\"b\":{\"c\":null}}"
    (Json.to_string ~indent:false
       (Json.Obj
          [
            ("a", Json.List [ Json.Int 1; Json.Int 2 ]);
            ("b", Json.Obj [ ("c", Json.Null) ]);
          ]))

let test_analysis_report_shape () =
  let analysis =
    Separ.analyze [ Separ.Demo.navigation_app (); Separ.Demo.messenger_app () ]
  in
  let s =
    Separ_report.Report.to_string ~report:analysis.Separ.report
      ~policies:analysis.Separ.policies ()
  in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check "has bundle stats" true (contains "\"bundle\"");
  check "has vulnerabilities" true (contains "\"intent_hijack\"");
  check "has policies" true (contains "\"user_prompt\"");
  check "policy conditions serialized" true (contains "Intent.extra=LOCATION");
  (* compact output is a single line *)
  let compact =
    Separ_report.Report.to_string ~indent:false ~report:analysis.Separ.report
      ~policies:analysis.Separ.policies ()
  in
  check "compact is one line" false (String.contains compact '\n')

let tests =
  [
    Alcotest.test_case "scalars" `Quick test_scalars;
    Alcotest.test_case "escaping" `Quick test_escaping;
    Alcotest.test_case "compact structures" `Quick test_compact_structures;
    Alcotest.test_case "analysis report shape" `Quick test_analysis_report_shape;
  ]
