(* Tests for the JSON report layer: escaping, printer structure, and the
   analysis report shape. *)

module Json = Separ_report.Json

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_scalars () =
  check_str "null" "null" (Json.to_string Json.Null);
  check_str "bool" "true" (Json.to_string (Json.Bool true));
  check_str "int" "42" (Json.to_string (Json.Int 42));
  check_str "string" "\"hi\"" (Json.to_string (Json.Str "hi"));
  check_str "integral float" "2.0" (Json.to_string (Json.Float 2.0))

let test_escaping () =
  check_str "quotes and backslashes" "\"a\\\"b\\\\c\""
    (Json.to_string (Json.Str "a\"b\\c"));
  check_str "newlines" "\"l1\\nl2\"" (Json.to_string (Json.Str "l1\nl2"));
  check_str "control chars" "\"\\u0001\""
    (Json.to_string (Json.Str "\001"))

let test_compact_structures () =
  check_str "empty list" "[]" (Json.to_string ~indent:false (Json.List []));
  check_str "empty object" "{}" (Json.to_string ~indent:false (Json.Obj []));
  check_str "nested" "{\"a\":[1,2],\"b\":{\"c\":null}}"
    (Json.to_string ~indent:false
       (Json.Obj
          [
            ("a", Json.List [ Json.Int 1; Json.Int 2 ]);
            ("b", Json.Obj [ ("c", Json.Null) ]);
          ]))

(* Regression: Float used to print with %.4f, silently rounding
   sub-0.1ms durations (and mangling large timestamps).  Every float must
   now survive a print/parse round trip exactly. *)
let test_float_roundtrip () =
  let roundtrips f =
    match Json.parse (Json.to_string (Json.Float f)) with
    | Json.Float f' -> f' = f
    | Json.Int i -> float_of_int i = f
    | _ -> false
  in
  List.iter
    (fun f -> check (Printf.sprintf "roundtrip %.17g" f) true (roundtrips f))
    [
      0.0; 2.0; -1.0; 0.1234567890123; 185.55412345678; 1e-7; 1.7e308;
      0.1 +. 0.2; (* 0.30000000000000004: needs 17 significant digits *)
      1234567.8901234567; (* microsecond timestamp scale *)
      -0.000123456789;
    ]

let test_parse () =
  check "null" true (Json.parse "null" = Json.Null);
  check "bools" true
    (Json.parse "true" = Json.Bool true && Json.parse "false" = Json.Bool false);
  check "int" true (Json.parse "-42" = Json.Int (-42));
  check "float" true (Json.parse "2.5" = Json.Float 2.5);
  check "exponent" true (Json.parse "1e3" = Json.Float 1000.0);
  check "string escapes" true
    (Json.parse "\"a\\\"b\\\\c\\n\\u0041\"" = Json.Str "a\"b\\c\nA");
  check "nested" true
    (Json.parse "{ \"a\" : [1, 2.5, null], \"b\": {\"c\": true} }"
    = Json.Obj
        [
          ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]);
          ("b", Json.Obj [ ("c", Json.Bool true) ]);
        ]);
  (* printer output parses back *)
  let v =
    Json.Obj
      [
        ("xs", Json.List [ Json.Int 1; Json.Str "two"; Json.Float 3.25 ]);
        ("flag", Json.Bool false);
      ]
  in
  check "printer/parser round trip (indented)" true
    (Json.parse (Json.to_string v) = v);
  check "printer/parser round trip (compact)" true
    (Json.parse (Json.to_string ~indent:false v) = v);
  let fails s =
    match Json.parse s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  check "trailing garbage rejected" true (fails "1 2");
  check "unterminated string rejected" true (fails "\"abc");
  check "bare word rejected" true (fails "nope")

(* Satellite: the RQ4 confidence intervals must use Student's t on the
   sample standard deviation, not z = 1.96 on the population one. *)
let test_stats_ci () =
  let module Stats = Separ_report.Stats in
  let checkf msg expected actual =
    Alcotest.(check (float 1e-9)) msg expected actual
  in
  let xs = [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  (* population stddev of xs is 2.0; sample (n-1) stddev is larger *)
  checkf "sample stddev" (sqrt (32.0 /. 7.0)) (Stats.sample_stddev xs);
  checkf "t df=1" 12.706 (Stats.t_critical_95 ~df:1);
  checkf "t df=10" 2.228 (Stats.t_critical_95 ~df:10);
  checkf "t df=30" 2.042 (Stats.t_critical_95 ~df:30);
  checkf "t df=32 rounds down to df=40 entry" 2.042 (Stats.t_critical_95 ~df:32);
  checkf "t df=1000 ~ z" 1.980 (Stats.t_critical_95 ~df:1000);
  (* n = 8 => df = 7 => t = 2.365 *)
  checkf "ci95 halfwidth"
    (2.365 *. sqrt (32.0 /. 7.0) /. sqrt 8.0)
    (Stats.ci95_halfwidth xs);
  (* the t interval is strictly wider than the old z interval *)
  check "t interval wider than z" true
    (Stats.ci95_halfwidth xs > 1.96 *. Stats.stddev xs /. sqrt 8.0)

(* --- bench-history diff (separ benchdiff) --------------------------------- *)

let history_entry ?(mode = "full") ?(extra = []) section wall_ms =
  {
    Separ_report.History.e_section = section;
    e_mode = mode;
    e_wall_ms = wall_ms;
    e_provenance = Json.Null;
    e_extra = extra;
  }

let test_history_diff_grouping () =
  let module H = Separ_report.History in
  (* file order: sections interleaved, two modes for one section *)
  let entries =
    [
      history_entry "solver" 100.0;
      history_entry "table1" 50.0;
      history_entry ~mode:"smoke" "solver" 10.0;
      history_entry "solver" 110.0;
      history_entry "table1" 52.0;
      history_entry ~mode:"smoke" "solver" 11.0;
      history_entry "solver" 105.0;
    ]
  in
  let diffs = H.diff entries in
  (* groups come out in first-seen (section, mode) order *)
  Alcotest.(check (list (pair string string)))
    "first-seen group order"
    [ ("solver", "full"); ("table1", "full"); ("solver", "smoke") ]
    (List.map (fun d -> (d.H.sd_section, d.H.sd_mode)) diffs);
  (* the latest entry of each group is diffed against the median of its
     priors; smoke and full never cross-compare *)
  List.iter
    (fun d ->
      match (d.H.sd_section, d.H.sd_mode) with
      | "solver", "full" ->
          Alcotest.(check (float 1e-9)) "solver latest" 105.0 d.H.sd_latest_ms;
          (* median of the two priors [100; 110]: percentile 0.5 takes the
             lower rank *)
          Alcotest.(check (float 1e-9)) "solver baseline" 100.0 d.H.sd_baseline_ms;
          Alcotest.(check int) "solver samples" 2 d.H.sd_samples;
          check "solver ok" true (d.H.sd_status = H.Ok)
      | "solver", "smoke" ->
          Alcotest.(check (float 1e-9)) "smoke latest" 11.0 d.H.sd_latest_ms;
          Alcotest.(check int) "smoke samples" 1 d.H.sd_samples
      | "table1", _ ->
          Alcotest.(check (float 1e-9)) "table1 latest" 52.0 d.H.sd_latest_ms
      | _ -> Alcotest.fail "unexpected group")
    diffs;
  (* a regression is flagged against the median, not the previous run *)
  let regressed = entries @ [ history_entry "solver" 200.0 ] in
  let d =
    List.find
      (fun d -> d.H.sd_section = "solver" && d.H.sd_mode = "full")
      (H.diff regressed)
  in
  check "inflated latest flagged" true (d.H.sd_status = H.Regression);
  (* single-entry group has no baseline *)
  let d =
    List.find
      (fun d -> d.H.sd_section = "fresh")
      (H.diff (entries @ [ history_entry "fresh" 1.0 ]))
  in
  check "no baseline on first run" true (d.H.sd_status = H.No_baseline)

let test_history_diff_linear () =
  (* Regression guard: [diff] used to re-filter the whole history per
     (section, mode) pair — O(n^2) on the ever-growing NDJSON store.
     A few thousand entries must group and diff well under a second. *)
  let module H = Separ_report.History in
  let sections = [| "table1"; "solver"; "parallel"; "incremental"; "cache" |] in
  let entries =
    List.init 6000 (fun i ->
        history_entry
          ~mode:(if i mod 3 = 0 then "smoke" else "full")
          sections.(i mod Array.length sections)
          (50.0 +. float_of_int (i mod 17)))
  in
  let t0 = Unix.gettimeofday () in
  let diffs = H.diff entries in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  Alcotest.(check int) "all groups present" 10 (List.length diffs);
  List.iter
    (fun d -> check "every group has a baseline" true (d.H.sd_samples > 0))
    diffs;
  check
    (Printf.sprintf "diff over 6000 entries stays linear (%.1fms)" elapsed_ms)
    true (elapsed_ms < 1000.0)

let test_analysis_report_shape () =
  let analysis =
    Separ.analyze [ Separ.Demo.navigation_app (); Separ.Demo.messenger_app () ]
  in
  let s =
    Separ_report.Report.to_string ~report:analysis.Separ.report
      ~policies:analysis.Separ.policies ()
  in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check "has bundle stats" true (contains "\"bundle\"");
  check "has vulnerabilities" true (contains "\"intent_hijack\"");
  check "has policies" true (contains "\"user_prompt\"");
  check "policy conditions serialized" true (contains "Intent.extra=LOCATION");
  (* compact output is a single line *)
  let compact =
    Separ_report.Report.to_string ~indent:false ~report:analysis.Separ.report
      ~policies:analysis.Separ.policies ()
  in
  check "compact is one line" false (String.contains compact '\n')

let tests =
  [
    Alcotest.test_case "scalars" `Quick test_scalars;
    Alcotest.test_case "escaping" `Quick test_escaping;
    Alcotest.test_case "compact structures" `Quick test_compact_structures;
    Alcotest.test_case "float round trip" `Quick test_float_roundtrip;
    Alcotest.test_case "json parser" `Quick test_parse;
    Alcotest.test_case "t-based confidence intervals" `Quick test_stats_ci;
    Alcotest.test_case "history diff grouping" `Quick test_history_diff_grouping;
    Alcotest.test_case "history diff linear time" `Quick test_history_diff_linear;
    Alcotest.test_case "analysis report shape" `Quick test_analysis_report_shape;
  ]
