(* Tests for the ECA policy layer: condition evaluation, PDP decision
   precedence, serialization round trips (unit + property), and policy
   derivation from each scenario kind. *)

open Separ_android
module Policy = Separ_policy.Policy
module Compile = Separ_policy.Compile
module Metrics = Separ_obs.Metrics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let base_event =
  Policy.
    {
      ev_kind = Icc_receive;
      ev_sender_component = "Sender";
      ev_sender_app = "com.s";
      ev_sender_installed_at_analysis = true;
      ev_sender_permissions = [ Permission.internet ];
      ev_intent =
        Intent.make ~action:"go"
          ~extras:
            [ Intent.{ key = "k"; value = "v"; taint = [ Resource.Location ] } ]
          ();
      ev_receiver_component = "Receiver";
      ev_receiver_app = "com.r";
    }

let test_conditions () =
  let holds c = Policy.condition_holds base_event c in
  check "receiver is" true (holds (Policy.Receiver_is "Receiver"));
  check "receiver is not" false (holds (Policy.Receiver_is "Other"));
  check "receiver not in" true (holds (Policy.Receiver_not_in [ "A"; "B" ]));
  check "receiver in allow set" false
    (holds (Policy.Receiver_not_in [ "Receiver" ]));
  check "sender is" true (holds (Policy.Sender_is "Sender"));
  check "installed" false (holds Policy.Sender_app_not_installed);
  check "action is" true (holds (Policy.Action_is "go"));
  check "action is not" false (holds (Policy.Action_is "stop"));
  check "implicit" true (holds Policy.Implicit);
  check "extras include" true (holds (Policy.Extras_include Resource.Location));
  check "extras exclude" false (holds (Policy.Extras_include Resource.Imei));
  check "lacks permission" true
    (holds (Policy.Sender_lacks_permission Permission.send_sms));
  check "has permission" false
    (holds (Policy.Sender_lacks_permission Permission.internet))

let policy ?(event = Policy.Icc_receive) ?(conds = []) ?(action = Policy.Prompt)
    id =
  Policy.
    {
      p_id = id;
      p_event = event;
      p_conditions = conds;
      p_action = action;
      p_reason = "test";
    }

let test_decide_precedence () =
  let allow = policy ~action:Policy.Allow "a" in
  let prompt = policy ~action:Policy.Prompt "p" in
  let deny = policy ~action:Policy.Deny "d" in
  (match Policy.decide [ allow; prompt; deny ] base_event with
  | Policy.Denied p -> check "deny wins" true (p.Policy.p_id = "d")
  | _ -> Alcotest.fail "expected deny");
  (match Policy.decide [ allow; prompt ] base_event with
  | Policy.Prompted p -> check "prompt beats allow" true (p.Policy.p_id = "p")
  | _ -> Alcotest.fail "expected prompt");
  check "no match allows" true (Policy.decide [] base_event = Policy.Allowed)

let test_decide_event_kind () =
  let send_policy = policy ~event:Policy.Icc_send "s" in
  check "send policy ignores receive events" true
    (Policy.decide [ send_policy ] base_event = Policy.Allowed)

let test_decide_conjunction () =
  let p =
    policy
      ~conds:[ Policy.Receiver_is "Receiver"; Policy.Action_is "stop" ]
      "conj"
  in
  check "all conditions must hold" true
    (Policy.decide [ p ] base_event = Policy.Allowed)

let test_roundtrip_unit () =
  let policies =
    [
      policy
        ~conds:
          [
            Policy.Receiver_is "MessageSender";
            Policy.Extras_include Resource.Location;
            Policy.Receiver_not_in [ "A"; "B" ];
            Policy.Sender_lacks_permission Permission.send_sms;
            Policy.Implicit;
            Policy.Sender_app_not_installed;
            Policy.Action_is "showLoc";
            Policy.Sender_is "LocationFinder";
          ]
        "p1";
      policy ~event:Policy.Icc_send ~action:Policy.Deny "p2";
    ]
  in
  let restored = Policy.of_string (Policy.to_string policies) in
  check "round trip" true (restored = policies)

let qcheck_roundtrip =
  let cond_gen =
    QCheck.Gen.oneof
      [
        QCheck.Gen.map (fun s -> Policy.Receiver_is s) (QCheck.Gen.string_size ~gen:QCheck.Gen.(char_range 'a' 'z') (QCheck.Gen.return 5));
        QCheck.Gen.map (fun s -> Policy.Sender_is s) (QCheck.Gen.string_size ~gen:QCheck.Gen.(char_range 'a' 'z') (QCheck.Gen.return 4));
        QCheck.Gen.return Policy.Implicit;
        QCheck.Gen.return Policy.Sender_app_not_installed;
        QCheck.Gen.map
          (fun r -> Policy.Extras_include r)
          (QCheck.Gen.oneofl (Resource.sources @ Resource.sinks));
        QCheck.Gen.map
          (fun p -> Policy.Sender_lacks_permission p)
          (QCheck.Gen.oneofl Permission.all);
      ]
  in
  let policy_gen =
    QCheck.Gen.map
      (fun (conds, deny) ->
        policy ~conds ~action:(if deny then Policy.Deny else Policy.Prompt) "q")
      (QCheck.Gen.pair (QCheck.Gen.list_size (QCheck.Gen.int_range 0 5) cond_gen) QCheck.Gen.bool)
  in
  QCheck.Test.make ~name:"policy serialization round trips" ~count:200
    (QCheck.make policy_gen) (fun p ->
      Policy.of_line (Policy.to_line p) = p)

let test_event_marshalling_roundtrip () =
  (* payload values may contain the printable separators of naive
     encodings (regression: a comma in a GPS string used to drop taint) *)
  let ev =
    Policy.
      {
        base_event with
        ev_intent =
          Intent.make ~action:"a,b=c:d"
            ~categories:[ "x"; "y,z" ]
            ~extras:
              [
                Intent.{
                  key = "locationInfo";
                  value = "37.4220,-122.0841";
                  taint = [ Resource.Location; Resource.Imei ];
                };
                Intent.{ key = "k=v"; value = "p|q:r"; taint = [] };
              ]
            ();
        ev_sender_permissions =
          [ Permission.send_sms; Permission.access_fine_location ];
      }
  in
  let ev' = Policy.event_of_line (Policy.event_to_line ev) in
  check "marshalling round trips" true (ev' = ev);
  (* and the remote PDP therefore decides identically *)
  let p =
    policy ~conds:[ Policy.Extras_include Resource.Location ] "loc"
  in
  check "remote decision matches local" true
    (match (Policy.decide [ p ] ev, Policy.decide_remote [ p ] ev) with
    | Policy.Prompted a, Policy.Prompted b -> a = b
    | _ -> false)

(* --- derivation ---------------------------------------------------------------- *)

let analysis () =
  Separ.analyze [ Separ.Demo.navigation_app (); Separ.Demo.messenger_app () ]

let test_derivation_kinds () =
  let a = analysis () in
  let ids = List.map (fun p -> p.Policy.p_id) a.Separ.policies in
  let has prefix =
    List.exists
      (fun id ->
        String.length id > String.length prefix
        && String.sub id 0 (String.length prefix) = prefix)
      ids
  in
  check "hijack policy" true (has "pol-hijack");
  check "launch policy" true (has "pol-launch");
  check "privesc policy" true (has "pol-privesc");
  check "leak policy" true (has "pol-leak")

let test_derivation_dedup () =
  let a = analysis () in
  let keys =
    List.map
      (fun p ->
        (p.Policy.p_event, List.sort compare p.Policy.p_conditions, p.Policy.p_action))
      a.Separ.policies
  in
  check_int "no duplicate policies" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_hijack_policy_allows_legit_receiver () =
  let a = analysis () in
  let hijack =
    List.find
      (fun p ->
        String.length p.Policy.p_id > 10
        && String.sub p.Policy.p_id 0 10 = "pol-hijack")
      a.Separ.policies
  in
  check "legitimate receiver in allow set" true
    (List.exists
       (function
         | Policy.Receiver_not_in allowed -> List.mem "RouteFinder" allowed
         | _ -> false)
       hijack.Policy.p_conditions)

let tests =
  [
    Alcotest.test_case "condition evaluation" `Quick test_conditions;
    Alcotest.test_case "decision precedence" `Quick test_decide_precedence;
    Alcotest.test_case "decision event kind" `Quick test_decide_event_kind;
    Alcotest.test_case "conjunction semantics" `Quick test_decide_conjunction;
    Alcotest.test_case "serialization round trip" `Quick test_roundtrip_unit;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    Alcotest.test_case "event marshalling round trip" `Quick
      test_event_marshalling_roundtrip;
    Alcotest.test_case "derivation kinds" `Quick test_derivation_kinds;
    Alcotest.test_case "derivation dedup" `Quick test_derivation_dedup;
    Alcotest.test_case "hijack allow-set" `Quick
      test_hijack_policy_allows_legit_receiver;
  ]

(* --- store minimization ---------------------------------------------------------- *)

let test_subsumption () =
  let general = policy ~conds:[ Policy.Receiver_is "R" ] ~action:Policy.Deny "g" in
  let specific =
    policy
      ~conds:[ Policy.Receiver_is "R"; Policy.Action_is "a" ]
      ~action:Policy.Prompt "s"
  in
  check "fewer conditions + stronger action subsumes" true
    (Policy.subsumes general specific);
  check "not vice versa" false (Policy.subsumes specific general);
  let weaker = { general with Policy.p_action = Policy.Prompt } in
  check "weaker action does not subsume deny" false
    (Policy.subsumes weaker { specific with Policy.p_action = Policy.Deny });
  (* allow-set widening *)
  let narrow = policy ~conds:[ Policy.Receiver_not_in [ "A" ] ] "n" in
  let wide = policy ~conds:[ Policy.Receiver_not_in [ "A"; "B" ] ] "w" in
  check "smaller exclusion set subsumes larger" true (Policy.subsumes narrow wide)

let test_minimize_store () =
  let general = policy ~conds:[ Policy.Receiver_is "R" ] ~action:Policy.Deny "g" in
  let specific =
    policy ~conds:[ Policy.Receiver_is "R"; Policy.Action_is "a" ] "s"
  in
  let unrelated = policy ~conds:[ Policy.Receiver_is "Q" ] "u" in
  let dup = { general with Policy.p_id = "g2" } in
  let minimized = Policy.minimize_store [ general; specific; unrelated; dup ] in
  Alcotest.(check (list string))
    "dominated and duplicate dropped" [ "g"; "u" ]
    (List.map (fun p -> p.Policy.p_id) minimized);
  (* semantics preserved on a probe event *)
  let probe = { base_event with Policy.ev_receiver_component = "R" } in
  check "same decision after minimization" true
    (Policy.decide [ general; specific; unrelated; dup ] probe
    = Policy.decide minimized probe)

let qcheck_minimize_preserves_decisions =
  let policies_gen =
    QCheck.Gen.list_size (QCheck.Gen.int_range 0 6)
      (QCheck.Gen.map
         (fun (recv, act, deny) ->
           policy
             ~conds:
               ((if recv then [ Policy.Receiver_is "Receiver" ] else [])
               @ if act then [ Policy.Action_is "go" ] else [])
             ~action:(if deny then Policy.Deny else Policy.Prompt)
             "q")
         (QCheck.Gen.triple QCheck.Gen.bool QCheck.Gen.bool QCheck.Gen.bool))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"minimize_store preserves every decision"
       ~count:300 (QCheck.make policies_gen) (fun policies ->
         let minimized = Policy.minimize_store policies in
         List.for_all
           (fun ev ->
             let d1 = Policy.decide policies ev in
             let d2 = Policy.decide minimized ev in
             (match (d1, d2) with
             | Policy.Allowed, Policy.Allowed -> true
             | Policy.Prompted _, Policy.Prompted _ -> true
             | Policy.Denied _, Policy.Denied _ -> true
             | _ -> false))
           [
             base_event;
             { base_event with Policy.ev_receiver_component = "X" };
             {
               base_event with
               Policy.ev_intent = Intent.make ~action:"other" ();
             };
           ]))

let minimization_tests =
  [
    Alcotest.test_case "subsumption" `Quick test_subsumption;
    Alcotest.test_case "minimize store" `Quick test_minimize_store;
    qcheck_minimize_preserves_decisions;
  ]

(* --- event views, single-pass decide, compiled PDP -------------------------- *)

let all_base_conditions =
  [
    Policy.Receiver_is "Receiver";
    Policy.Receiver_is "Other";
    Policy.Receiver_not_in [ "A"; "B" ];
    Policy.Receiver_not_in [ "Receiver" ];
    Policy.Sender_is "Sender";
    Policy.Sender_is "Nobody";
    Policy.Sender_app_not_installed;
    Policy.Action_is "go";
    Policy.Action_is "stop";
    Policy.Implicit;
    Policy.Extras_include Resource.Location;
    Policy.Extras_include Resource.Imei;
    Policy.Sender_lacks_permission Permission.send_sms;
    Policy.Sender_lacks_permission Permission.internet;
  ]

let test_view_agrees_with_reference () =
  let vw = Policy.view_of_event base_event in
  List.iter
    (fun c ->
      check (Policy.condition_to_string c)
        (Policy.condition_holds base_event c)
        (Policy.condition_holds_view vw c))
    all_base_conditions

(* The old decide-then-flip protocol, as the oracle for decide_both. *)
let sequential_both store ev =
  match Policy.decide store ev with
  | Policy.Allowed ->
      Policy.decide store
        {
          ev with
          Policy.ev_kind =
            (match ev.Policy.ev_kind with
            | Policy.Icc_receive -> Policy.Icc_send
            | Policy.Icc_send -> Policy.Icc_receive);
        }
  | d -> d

let fingerprint = function
  | Policy.Allowed -> "allow"
  | Policy.Prompted p -> "prompt:" ^ p.Policy.p_id
  | Policy.Denied p -> "deny:" ^ p.Policy.p_id

let test_decide_both_resolution_order () =
  (* primary-kind Prompt beats flipped-kind Deny (the sequential
     protocol never reaches the flipped scan when the primary prompts) *)
  let recv_prompt = policy ~event:Policy.Icc_receive "rp" in
  let send_deny = policy ~event:Policy.Icc_send ~action:Policy.Deny "sd" in
  check "primary prompt beats flipped deny" true
    (fingerprint (Policy.decide_both [ send_deny; recv_prompt ] base_event)
    = "prompt:rp");
  (* flipped-kind rules apply when the primary side allows *)
  check "flipped deny applies when primary allows" true
    (fingerprint (Policy.decide_both [ send_deny ] base_event) = "deny:sd");
  check "agrees with the sequential protocol" true
    (fingerprint (sequential_both [ send_deny; recv_prompt ] base_event)
    = fingerprint (Policy.decide_both [ send_deny; recv_prompt ] base_event))

(* Generators for the differential fuzzer: small component/action pools
   so random stores and random events actually collide. *)
let gen_name prefix n =
  QCheck.Gen.map (fun i -> prefix ^ string_of_int i) (QCheck.Gen.int_range 0 (n - 1))

let fuzz_cond_gen =
  let open QCheck.Gen in
  oneof
    [
      map (fun r -> Policy.Receiver_is r) (gen_name "R" 4);
      map
        (fun rs -> Policy.Receiver_not_in rs)
        (list_size (int_range 0 3) (gen_name "R" 4));
      map (fun s -> Policy.Sender_is s) (gen_name "S" 4);
      return Policy.Sender_app_not_installed;
      map (fun a -> Policy.Action_is a) (gen_name "act" 4);
      return Policy.Implicit;
      map (fun r -> Policy.Extras_include r) (oneofl Resource.all);
      map (fun p -> Policy.Sender_lacks_permission p) (oneofl Permission.all);
    ]

let fuzz_store_gen =
  let open QCheck.Gen in
  map
    (fun ps ->
      (* distinct ids so identity mismatches are visible *)
      List.mapi (fun i p -> { p with Policy.p_id = "f" ^ string_of_int i }) ps)
    (list_size (int_range 0 40)
       (map
          (fun ((send, conds), act) ->
            policy
              ~event:(if send then Policy.Icc_send else Policy.Icc_receive)
              ~conds
              ~action:
                (match act with
                | 0 -> Policy.Allow
                | 1 -> Policy.Prompt
                | _ -> Policy.Deny)
              "x")
          (pair
             (pair bool (list_size (int_range 0 4) fuzz_cond_gen))
             (int_range 0 2))))

let fuzz_event_gen =
  let open QCheck.Gen in
  map
    (fun (((recv, sc), (rc, installed)), ((action, implicit), (res, perms))) ->
      Policy.
        {
          ev_kind = (if recv then Icc_receive else Icc_send);
          ev_sender_component = sc;
          ev_sender_app = "app." ^ sc;
          ev_sender_installed_at_analysis = installed;
          ev_sender_permissions = perms;
          ev_intent =
            Intent.make
              ?target:(if implicit then None else Some rc)
              ?action
              ~extras:
                (List.map
                   (fun r -> Intent.{ key = "k"; value = "v"; taint = [ r ] })
                   res)
              ();
          ev_receiver_component = rc;
          ev_receiver_app = "app." ^ rc;
        })
    (pair
       (pair (pair bool (gen_name "S" 4)) (pair (gen_name "R" 4) bool))
       (pair
          (pair (opt (gen_name "act" 4)) bool)
          (pair
             (list_size (int_range 0 2) (oneofl Resource.all))
             (list_size (int_range 0 3) (oneofl Permission.all)))))

(* The tentpole's differential fuzzer: random stores x random events,
   compiled matcher vs reference decide — verdict AND deciding-policy
   id, on both the single-kind and the send+receive entries. *)
let qcheck_compiled_identical_to_reference =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"compiled PDP identical to reference decide (verdict + id)"
       ~count:500
       (QCheck.make
          (QCheck.Gen.pair fuzz_store_gen
             (QCheck.Gen.list_size (QCheck.Gen.int_range 1 5) fuzz_event_gen)))
       (fun (store, evs) ->
         let compiled = Compile.compile store in
         List.for_all
           (fun ev ->
             fingerprint (Compile.decide compiled ev)
             = fingerprint (Policy.decide store ev)
             && fingerprint (Compile.decide_full compiled ev)
                = fingerprint (Policy.decide_both store ev)
             && fingerprint (Policy.decide_both store ev)
                = fingerprint (sequential_both store ev))
           evs))

(* Richer randomized decide-identity for the grouped minimize_store:
   arbitrary condition mixes, both event kinds, random probe events. *)
let qcheck_minimize_identity_randomized =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"minimized stores decide identically on randomized events"
       ~count:300
       (QCheck.make
          (QCheck.Gen.pair fuzz_store_gen
             (QCheck.Gen.list_size (QCheck.Gen.int_range 1 6) fuzz_event_gen)))
       (fun (store, evs) ->
         let minimized = Policy.minimize_store store in
         List.for_all
           (fun ev ->
             match (Policy.decide store ev, Policy.decide minimized ev) with
             | Policy.Allowed, Policy.Allowed -> true
             | Policy.Prompted _, Policy.Prompted _ -> true
             | Policy.Denied _, Policy.Denied _ -> true
             | _ -> false)
           evs))

let test_serialization_metric () =
  Metrics.enable ();
  Metrics.reset ();
  let c = Metrics.counter "policy.serializations" in
  let store = [ policy "p" ] in
  ignore (Policy.decide_both store base_event);
  ignore (Compile.decide_full (Compile.compile store) base_event);
  check_int "in-process paths serialize nothing" 0 (Metrics.counter_value c);
  ignore (Policy.decide_remote store base_event);
  check_int "the IPC round trip serializes twice" 2 (Metrics.counter_value c);
  Metrics.reset ();
  Metrics.disable ()

let test_compile_stats () =
  let store =
    [
      policy ~conds:[ Policy.Receiver_is "A" ] ~action:Policy.Deny "d0";
      policy ~conds:[ Policy.Action_is "go" ] "p1";
      policy ~action:Policy.Allow "a2";
      policy ~event:Policy.Icc_send ~conds:[ Policy.Receiver_is "B" ] "p3";
    ]
  in
  let st = Compile.stats (Compile.compile store) in
  check_int "allow policies are not indexed" 3 st.Compile.st_entries;
  check_int "store size recorded" 4 st.Compile.st_total;
  check_int "one action bucket" 1 st.Compile.st_action_buckets;
  check_int "two receiver buckets" 2 st.Compile.st_receiver_buckets

let compiled_pdp_tests =
  [
    Alcotest.test_case "event view agrees with reference conditions" `Quick
      test_view_agrees_with_reference;
    Alcotest.test_case "decide_both resolution order" `Quick
      test_decide_both_resolution_order;
    qcheck_compiled_identical_to_reference;
    qcheck_minimize_identity_randomized;
    Alcotest.test_case "serialization metric ledger" `Quick
      test_serialization_metric;
    Alcotest.test_case "compiled index shape" `Quick test_compile_stats;
  ]

let tests = tests @ minimization_tests @ compiled_pdp_tests
