(* Tests for the static analysis framework: CFG reachability with cuts,
   the dataflow engine, and the combined abstract interpreter — string
   resolution, intent-site properties, taint (flow, field, and context
   sensitivity), permission guards, reachability pruning, and the
   dynamic-registration facts. *)

open Separ_android
open Separ_dalvik
module B = Builder
module Interp = Separ_static.Interp

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let service_apk ?(perms = []) ?(extra_components = []) ~name methods =
  Apk.make
    ~manifest:
      (Manifest.make ~package:("test." ^ name) ~uses_permissions:perms
         ~components:
           (Component.make ~name ~kind:Component.Service ()
           :: extra_components)
         ())
    ~classes:[ B.cls ~name methods ]

let facts_of ?(k1 = true) ?(kind = Component.Service) apk name =
  Interp.analyze_component ~k1 apk (Component.make ~name ~kind ())

let has_path facts src snk =
  List.exists
    (fun p -> p.Interp.pf_source = src && p.Interp.pf_sink = snk)
    facts.Interp.paths

(* --- CFG --------------------------------------------------------------------- *)

let test_cfg_reachability_cut () =
  let m =
    B.meth ~name:"m" ~params:1 (fun b ->
        let l = B.fresh_label b in
        B.if_eqz b 0 l;
        B.nop b;
        B.place_label b l;
        B.nop b)
  in
  let cfg = Separ_static.Cfg.make m in
  let all = Separ_static.Cfg.reachable cfg in
  check "everything reachable" true (Array.for_all (fun x -> x) all);
  (* cut the fall-through edge of the branch: instr 1 dies *)
  let cut i j = i = 0 && j = 1 in
  let r = Separ_static.Cfg.reachable ~cut cfg in
  check "fall-through dead" false r.(1);
  check "target alive" true r.(2)

let test_dataflow_constants () =
  (* x = "a"; loop back; state stabilizes *)
  let m =
    B.meth ~name:"m" ~params:1 (fun b ->
        let top = B.fresh_label b in
        B.place_label b top;
        let _ = B.const_str b "a" in
        B.if_eqz b 0 top)
  in
  let cfg = Separ_static.Cfg.make m in
  let lat =
    Separ_static.Dataflow.
      { bot = 0; join = max; equal = Int.equal }
  in
  let states =
    Separ_static.Dataflow.forward lat ~entry:1
      ~transfer:(fun _ _ s -> min (s + 1) 5)
      cfg
  in
  check "fixpoint reached" true (Array.length states > 0)

(* --- intent extraction -------------------------------------------------------- *)

let test_intent_properties () =
  let apk =
    service_apk ~name:"S" ~perms:[ Permission.access_fine_location ]
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let v = B.get_location b in
            let i = B.new_intent b in
            B.set_action b i "go";
            B.add_category b i "cat";
            B.set_data_type b i "t/x";
            B.set_data_scheme b i "https";
            B.put_extra b i ~key:"k" ~value:v;
            B.start_service b i);
      ]
  in
  let facts = facts_of apk "S" in
  match facts.Interp.intents with
  | [ f ] ->
      Alcotest.(check (option (list string))) "action" (Some [ "go" ]) f.Interp.if_actions;
      Alcotest.(check (list string)) "categories" [ "cat" ] f.Interp.if_categories;
      Alcotest.(check (list string)) "types" [ "t/x" ] f.Interp.if_data_types;
      Alcotest.(check (list string)) "schemes" [ "https" ] f.Interp.if_data_schemes;
      check "tainted extra" true (f.Interp.if_extra_taints = [ Resource.Location ]);
      check "icc kind" true (f.Interp.if_icc = Api.Start_service)
  | l -> Alcotest.failf "expected 1 intent fact, got %d" (List.length l)

let test_multivalue_action () =
  let apk =
    service_apk ~name:"S"
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let i = B.new_intent b in
            let cond = B.get_string_extra b 0 ~key:"w" in
            let els = B.fresh_label b in
            let fin = B.fresh_label b in
            B.if_eqz b cond els;
            B.set_action b i "a1";
            B.goto b fin;
            B.place_label b els;
            B.set_action b i "a2";
            B.place_label b fin;
            let v = B.const_str b "x" in
            B.put_extra b i ~key:"k" ~value:v;
            B.start_service b i);
      ]
  in
  let facts = facts_of apk "S" in
  match facts.Interp.intents with
  | [ f ] ->
      Alcotest.(check (option (list string)))
        "both actions resolved"
        (Some [ "a1"; "a2" ])
        (Option.map (List.sort compare) f.Interp.if_actions)
  | _ -> Alcotest.fail "expected one intent fact"

let test_unresolvable_action_is_top () =
  let apk =
    service_apk ~name:"S"
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let i = B.new_intent b in
            let a = B.get_string_extra b 0 ~key:"which" in
            B.invoke b (Api.mref Api.c_intent "setAction") [ i; a ];
            B.start_service b i);
      ]
  in
  let facts = facts_of apk "S" in
  match facts.Interp.intents with
  | [ f ] ->
      Alcotest.(check (option (list string)))
        "action unresolved" None f.Interp.if_actions
  | _ -> Alcotest.fail "expected one intent fact"

let test_explicit_target () =
  let apk =
    service_apk ~name:"S"
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let i = B.new_intent b in
            B.set_class_name b i "Other";
            let v = B.const_str b "x" in
            B.put_extra b i ~key:"k" ~value:v;
            B.start_activity b i);
      ]
  in
  let facts = facts_of apk "S" in
  match facts.Interp.intents with
  | [ f ] ->
      Alcotest.(check (list string)) "target" [ "Other" ] f.Interp.if_targets
  | _ -> Alcotest.fail "expected one intent fact"

(* --- taint --------------------------------------------------------------------- *)

let test_taint_direct () =
  let apk =
    service_apk ~name:"S" ~perms:[ Permission.read_phone_state ]
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let v = B.get_device_id b in
            B.write_log b ~payload:v);
      ]
  in
  check "IMEI -> LOG" true (has_path (facts_of apk "S") Resource.Imei Resource.Log)

let test_taint_through_helper () =
  let apk =
    service_apk ~name:"S" ~perms:[ Permission.read_phone_state ]
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let v = B.get_device_id b in
            B.call b ~cls:"S" ~name:"log1" [ v ]);
        B.meth ~name:"log1" ~params:1 (fun b ->
            B.call b ~cls:"S" ~name:"log2" [ 0 ]);
        B.meth ~name:"log2" ~params:1 (fun b -> B.write_log b ~payload:0);
      ]
  in
  check "taint flows through two calls" true
    (has_path (facts_of apk "S") Resource.Imei Resource.Log)

let test_taint_through_field () =
  let apk =
    service_apk ~name:"S" ~perms:[ Permission.read_phone_state ]
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let v = B.get_device_id b in
            B.sput b ~field:"stash" ~src:v;
            let w = B.sget b ~field:"stash" in
            B.write_log b ~payload:w);
      ]
  in
  check "taint flows through field" true
    (has_path (facts_of apk "S") Resource.Imei Resource.Log)

let test_taint_through_return () =
  let apk =
    service_apk ~name:"S" ~perms:[ Permission.read_phone_state ]
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let v = B.call_result b ~cls:"S" ~name:"fetch" [] in
            B.write_log b ~payload:v);
        B.meth ~name:"fetch" ~params:0 (fun b ->
            let v = B.get_device_id b in
            B.return_reg b v);
      ]
  in
  check "taint flows through return value" true
    (has_path (facts_of apk "S") Resource.Imei Resource.Log)

let test_icc_source () =
  let apk =
    service_apk ~name:"S"
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let v = B.get_string_extra b 0 ~key:"in" in
            B.write_log b ~payload:v);
      ]
  in
  let facts = facts_of apk "S" in
  check "ICC -> LOG" true (has_path facts Resource.Icc Resource.Log);
  Alcotest.(check (list string)) "read keys" [ "in" ] facts.Interp.reads_extra_keys

let test_icc_sink () =
  let apk =
    service_apk ~name:"S" ~perms:[ Permission.read_phone_state ]
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let v = B.get_device_id b in
            let i = B.new_intent b in
            B.set_action b i "out";
            B.put_extra b i ~key:"k" ~value:v;
            B.send_broadcast b i);
      ]
  in
  check "IMEI -> ICC" true (has_path (facts_of apk "S") Resource.Imei Resource.Icc)

let test_no_false_taint () =
  let apk =
    service_apk ~name:"S" ~perms:[ Permission.read_phone_state ]
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let _sensitive = B.get_device_id b in
            let clean = B.const_str b "hello" in
            B.write_log b ~payload:clean);
      ]
  in
  check "clean value produces no path" false
    (has_path (facts_of apk "S") Resource.Imei Resource.Log)

(* --- reachability pruning ------------------------------------------------------- *)

let test_dead_method_not_analyzed () =
  let apk =
    service_apk ~name:"S" ~perms:[ Permission.read_phone_state ]
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b -> B.nop b);
        B.meth ~name:"deadCode" ~params:1 (fun b ->
            let v = B.get_device_id b in
            B.write_log b ~payload:v);
      ]
  in
  check "dead method produces no facts" false
    (has_path (facts_of apk "S") Resource.Imei Resource.Log);
  (* the all-methods mode (baseline behaviour) does see it *)
  let facts =
    Interp.analyze_component ~all_methods:true apk
      (Component.make ~name:"S" ~kind:Component.Service ())
  in
  check "all-methods mode reports it" true
    (has_path facts Resource.Imei Resource.Log)

let test_dead_branch_not_reported () =
  let apk =
    service_apk ~name:"S" ~perms:[ Permission.read_phone_state ]
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            B.return_void b;
            (* dead code after return *)
            let v = B.get_device_id b in
            B.write_log b ~payload:v);
      ]
  in
  check "code after return ignored" false
    (has_path (facts_of apk "S") Resource.Imei Resource.Log)

(* --- permission guards ------------------------------------------------------------ *)

let guarded_apk ~invert =
  service_apk ~name:"S" ~perms:[ Permission.send_sms ]
    [
      B.meth ~name:"onStartCommand" ~params:1 (fun b ->
          let num = B.get_string_extra b 0 ~key:"n" in
          let res = B.check_calling_permission b Permission.send_sms in
          if invert then begin
            (* if-nez jumps to the granted branch *)
            let granted = B.fresh_label b in
            let fin = B.fresh_label b in
            B.if_nez b res granted;
            B.goto b fin;
            B.place_label b granted;
            B.send_text_message b ~number:num ~body:num;
            B.place_label b fin
          end
          else begin
            let deny = B.fresh_label b in
            B.if_eqz b res deny;
            B.send_text_message b ~number:num ~body:num;
            B.place_label b deny
          end);
    ]

let guards_of facts =
  List.concat_map
    (fun p -> if p.Interp.pf_sink = Resource.Sms then p.Interp.pf_guards else [])
    facts.Interp.paths

let test_guard_if_eqz () =
  let facts = facts_of (guarded_apk ~invert:false) "S" in
  check "guard detected (if-eqz form)" true
    (List.mem Permission.send_sms (guards_of facts))

let test_guard_if_nez () =
  let facts = facts_of (guarded_apk ~invert:true) "S" in
  check "guard detected (if-nez form)" true
    (List.mem Permission.send_sms (guards_of facts))

let test_unguarded () =
  let apk =
    service_apk ~name:"S" ~perms:[ Permission.send_sms ]
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let num = B.get_string_extra b 0 ~key:"n" in
            B.send_text_message b ~number:num ~body:num);
      ]
  in
  let facts = facts_of apk "S" in
  check "no guard without check" true (guards_of facts = [])

let test_guard_across_call_k1 () =
  let apk guard =
    service_apk ~name:"S" ~perms:[ Permission.send_sms ]
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let num = B.get_string_extra b 0 ~key:"n" in
            if guard then begin
              let res = B.check_calling_permission b Permission.send_sms in
              let deny = B.fresh_label b in
              B.if_eqz b res deny;
              B.call b ~cls:"S" ~name:"doSend" [ num ];
              B.place_label b deny
            end
            else B.call b ~cls:"S" ~name:"doSend" [ num ]);
        B.meth ~name:"doSend" ~params:1 (fun b ->
            B.send_text_message b ~number:0 ~body:0);
      ]
  in
  let guarded = facts_of (apk true) "S" in
  check "guard propagates into callee (k=1)" true
    (List.mem Permission.send_sms (guards_of guarded));
  let unguarded = facts_of (apk false) "S" in
  check "no spurious guard" true (guards_of unguarded = [])

(* --- context sensitivity ----------------------------------------------------------- *)

let context_apk () =
  (* an identity helper is called with a sensitive and a clean argument;
     only the clean result reaches the log.  With k = 1 the two calls
     keep separate summaries; with k = 0 the returns blur and the clean
     call inherits the sensitive taint — a false positive. *)
  service_apk ~name:"S" ~perms:[ Permission.read_phone_state ]
    [
      B.meth ~name:"onStartCommand" ~params:1 (fun b ->
          let v = B.get_device_id b in
          let v' = B.call_result b ~cls:"S" ~name:"id" [ v ] in
          B.sput b ~field:"keep" ~src:v';
          let clean = B.const_str b "ok" in
          let w = B.call_result b ~cls:"S" ~name:"id" [ clean ] in
          B.write_log b ~payload:w);
      B.meth ~name:"id" ~params:1 (fun b -> B.return_reg b 0);
    ]

let test_context_sensitivity () =
  let apk = context_apk () in
  let k1 = facts_of ~k1:true apk "S" in
  check "k=1 keeps calls apart" false
    (has_path k1 Resource.Imei Resource.Log);
  let k0 = facts_of ~k1:false apk "S" in
  check "k=0 merges calls (imprecise)" true
    (has_path k0 Resource.Imei Resource.Log)

(* --- dynamic registration ----------------------------------------------------------- *)

let test_dynamic_filter_fact () =
  let apk =
    service_apk ~name:"S"
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let i = B.new_intent b in
            B.set_class_name b i "R";
            B.set_action b i "evt";
            B.register_receiver b i);
      ]
  in
  let facts = facts_of apk "S" in
  check "registers flag" true facts.Interp.registers_dynamic_receiver;
  match facts.Interp.dynamic_filters with
  | [ (Some "R", [ "evt" ]) ] -> ()
  | _ -> Alcotest.fail "expected one resolvable dynamic filter"

let test_uses_permissions () =
  let apk =
    service_apk ~name:"S"
      ~perms:[ Permission.access_fine_location; Permission.send_sms ]
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let v = B.get_location b in
            B.write_log b ~payload:v);
      ]
  in
  let facts = facts_of apk "S" in
  check "uses location" true
    (List.mem Permission.access_fine_location facts.Interp.uses_permissions);
  check "does not use sms" false
    (List.mem Permission.send_sms facts.Interp.uses_permissions)

let tests =
  [
    Alcotest.test_case "cfg reachability with cuts" `Quick
      test_cfg_reachability_cut;
    Alcotest.test_case "dataflow fixpoint" `Quick test_dataflow_constants;
    Alcotest.test_case "intent properties" `Quick test_intent_properties;
    Alcotest.test_case "multi-value action" `Quick test_multivalue_action;
    Alcotest.test_case "unresolvable action" `Quick
      test_unresolvable_action_is_top;
    Alcotest.test_case "explicit target" `Quick test_explicit_target;
    Alcotest.test_case "taint direct" `Quick test_taint_direct;
    Alcotest.test_case "taint through helpers" `Quick test_taint_through_helper;
    Alcotest.test_case "taint through field" `Quick test_taint_through_field;
    Alcotest.test_case "taint through return" `Quick test_taint_through_return;
    Alcotest.test_case "ICC as source" `Quick test_icc_source;
    Alcotest.test_case "ICC as sink" `Quick test_icc_sink;
    Alcotest.test_case "no false taint" `Quick test_no_false_taint;
    Alcotest.test_case "dead method pruned" `Quick test_dead_method_not_analyzed;
    Alcotest.test_case "dead branch pruned" `Quick test_dead_branch_not_reported;
    Alcotest.test_case "guard if-eqz" `Quick test_guard_if_eqz;
    Alcotest.test_case "guard if-nez" `Quick test_guard_if_nez;
    Alcotest.test_case "unguarded sink" `Quick test_unguarded;
    Alcotest.test_case "guard across call (k=1)" `Quick
      test_guard_across_call_k1;
    Alcotest.test_case "context sensitivity k1 vs k0" `Quick
      test_context_sensitivity;
    Alcotest.test_case "dynamic filter fact" `Quick test_dynamic_filter_fact;
    Alcotest.test_case "uses permissions" `Quick test_uses_permissions;
  ]

let test_recursive_program_terminates () =
  (* a recursive helper must not explode the context space; the analysis
     converges quickly and still finds the leak *)
  let apk =
    service_apk ~name:"S" ~perms:[ Permission.read_phone_state ]
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let v = B.get_device_id b in
            B.call b ~cls:"S" ~name:"walk" [ v ]);
        B.meth ~name:"walk" ~params:1 (fun b ->
            let fin = B.fresh_label b in
            B.if_eqz b 0 fin;
            B.call b ~cls:"S" ~name:"walk" [ 0 ];
            B.place_label b fin;
            B.write_log b ~payload:0);
      ]
  in
  let t0 = Unix.gettimeofday () in
  let facts = facts_of apk "S" in
  let elapsed = Unix.gettimeofday () -. t0 in
  check "recursive leak found" true
    (has_path facts Resource.Imei Resource.Log);
  check "converges quickly" true (elapsed < 1.0)

let test_guard_intersection_across_callers () =
  (* a helper guarded at one call site but not another is NOT enforced *)
  let apk =
    service_apk ~name:"S" ~perms:[ Permission.send_sms ]
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let n = B.get_string_extra b 0 ~key:"n" in
            let res = B.check_calling_permission b Permission.send_sms in
            let deny = B.fresh_label b in
            B.if_eqz b res deny;
            B.call b ~cls:"S" ~name:"doSend" [ n ];
            B.place_label b deny;
            (* second, unguarded route to the same helper *)
            B.call b ~cls:"S" ~name:"doSendAlias" [ n ]);
        B.meth ~name:"doSendAlias" ~params:1 (fun b ->
            B.call b ~cls:"S" ~name:"doSend" [ 0 ]);
        B.meth ~name:"doSend" ~params:1 (fun b ->
            B.send_text_message b ~number:0 ~body:0);
      ]
  in
  let facts = facts_of apk "S" in
  (* the unguarded route must surface as an open (unguarded) path *)
  check "open path survives" true
    (List.exists
       (fun p ->
         p.Interp.pf_sink = Resource.Sms && p.Interp.pf_guards = [])
       facts.Interp.paths)

let extra_tests =
  [
    Alcotest.test_case "recursion terminates" `Quick
      test_recursive_program_terminates;
    Alcotest.test_case "guard intersection across callers" `Quick
      test_guard_intersection_across_callers;
  ]

let tests = tests @ extra_tests
