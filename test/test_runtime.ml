(* Tests for the simulated runtime and APE: the interpreter, intent
   dispatch (explicit / implicit / broadcast / dynamic receivers /
   result round trips), permission gates, enforcement decisions, and the
   attack concretizer. *)

open Separ_android
open Separ_dalvik
open Separ_runtime
module B = Builder
module Policy = Separ_policy.Policy

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let one_class_apk ~pkg ?(perms = []) ?(components = []) classes =
  Apk.make
    ~manifest:(Manifest.make ~package:pkg ~uses_permissions:perms ~components ())
    ~classes

let logs effects =
  List.filter_map
    (function Effect.Log_written { line; taint; _ } -> Some (line, taint) | _ -> None)
    effects

(* --- interpreter --------------------------------------------------------------- *)

let test_interp_basics () =
  let apk =
    one_class_apk ~pkg:"p"
      ~components:[ Component.make ~name:"C" ~kind:Component.Activity () ]
      [
        B.cls ~name:"C"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                (* branch on a null: else path taken *)
                let v = B.const_str b "x" in
                let els = B.fresh_label b in
                let fin = B.fresh_label b in
                B.if_eqz b v els;
                let a = B.const_str b "truthy" in
                B.write_log b ~payload:a;
                B.goto b fin;
                B.place_label b els;
                let c = B.const_str b "falsy" in
                B.write_log b ~payload:c;
                B.place_label b fin);
          ];
      ]
  in
  let d = Device.create () in
  Device.install d apk;
  Device.start_component d ~pkg:"p" ~component:"C";
  match logs (Device.effects d) with
  | [ ("truthy", []) ] -> ()
  | l -> Alcotest.failf "unexpected logs (%d)" (List.length l)

let test_interp_fields_and_calls () =
  let apk =
    one_class_apk ~pkg:"p" ~perms:[ Permission.read_phone_state ]
      ~components:[ Component.make ~name:"C" ~kind:Component.Activity () ]
      [
        B.cls ~name:"C"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                let v = B.get_device_id b in
                B.sput b ~field:"f" ~src:v;
                B.call b ~cls:"C" ~name:"flush" []);
            B.meth ~name:"flush" ~params:0 (fun b ->
                let v = B.sget b ~field:"f" in
                B.write_log b ~payload:v);
          ];
      ]
  in
  let d = Device.create () in
  Device.install d apk;
  Device.start_component d ~pkg:"p" ~component:"C";
  match logs (Device.effects d) with
  | [ (_, taint) ] -> check "field+call taint" true (taint = [ Resource.Imei ])
  | _ -> Alcotest.fail "expected one log"

let test_interp_infinite_loop_bounded () =
  let apk =
    one_class_apk ~pkg:"p"
      ~components:[ Component.make ~name:"C" ~kind:Component.Activity () ]
      [
        B.cls ~name:"C"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                let top = B.fresh_label b in
                B.place_label b top;
                B.goto b top);
          ];
      ]
  in
  let d = Device.create () in
  Device.install d apk;
  (* must terminate via fuel exhaustion *)
  Device.start_component d ~pkg:"p" ~component:"C";
  check "survived infinite loop" true true

let test_permission_refused () =
  let apk =
    one_class_apk ~pkg:"p" (* no permissions *)
      ~components:[ Component.make ~name:"C" ~kind:Component.Activity () ]
      [
        B.cls ~name:"C"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                let v = B.get_location b in
                B.write_log b ~payload:v);
          ];
      ]
  in
  let d = Device.create () in
  Device.install d apk;
  Device.start_component d ~pkg:"p" ~component:"C";
  check "source refused" true
    (List.exists
       (function Effect.Permission_refused _ -> true | _ -> false)
       (Device.effects d))

(* --- dispatch ------------------------------------------------------------------- *)

let sender_receiver_apks ~explicit ~receiver_perm =
  let sender =
    one_class_apk ~pkg:"s" ~perms:[ Permission.read_phone_state ]
      ~components:[ Component.make ~name:"Snd" ~kind:Component.Activity () ]
      [
        B.cls ~name:"Snd"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                let v = B.get_device_id b in
                let i = B.new_intent b in
                if explicit then B.set_class_name b i "Rcv"
                else B.set_action b i "evt";
                B.put_extra b i ~key:"k" ~value:v;
                B.start_service b i);
          ];
      ]
  in
  let receiver =
    one_class_apk ~pkg:"r"
      ~components:
        [
          Component.make ~name:"Rcv" ~kind:Component.Service
            ?permission:receiver_perm
            ~intent_filters:
              (if explicit then [] else [ Intent_filter.make ~actions:[ "evt" ] () ])
            ~exported:true ();
        ]
      [
        B.cls ~name:"Rcv"
          [
            B.meth ~name:"onStartCommand" ~params:1 (fun b ->
                let v = B.get_string_extra b 0 ~key:"k" in
                B.write_log b ~payload:v);
          ];
      ]
  in
  (sender, receiver)

let run_pair ?(enforce = None) (sender, receiver) =
  let d = Device.create () in
  Device.install d sender;
  Device.install d receiver;
  (match enforce with
  | Some policies ->
      Device.set_policies d policies [ "s"; "r" ];
      Device.set_enforcement d true
  | None -> ());
  Device.start_component d ~pkg:"s" ~component:"Snd";
  Device.effects d

let test_dispatch_implicit () =
  let effects = run_pair (sender_receiver_apks ~explicit:false ~receiver_perm:None) in
  check "delivered and leaked" true
    (List.exists (fun (_, t) -> t = [ Resource.Imei ]) (logs effects))

let test_dispatch_explicit () =
  let effects = run_pair (sender_receiver_apks ~explicit:true ~receiver_perm:None) in
  check "explicit delivery" true
    (List.exists (fun (_, t) -> t = [ Resource.Imei ]) (logs effects))

let test_dispatch_permission_gate () =
  let effects =
    run_pair
      (sender_receiver_apks ~explicit:false
         ~receiver_perm:(Some Permission.send_sms))
  in
  check "delivery refused by component permission" true
    (List.exists
       (function Effect.Permission_refused _ -> true | _ -> false)
       effects);
  check "no leak" true (logs effects = [])

let test_no_receiver () =
  let sender, _ = sender_receiver_apks ~explicit:false ~receiver_perm:None in
  let d = Device.create () in
  Device.install d sender;
  Device.start_component d ~pkg:"s" ~component:"Snd";
  check "no-receiver effect" true
    (List.exists
       (function Effect.No_receiver _ -> true | _ -> false)
       (Device.effects d))

let test_broadcast_fanout () =
  let sender =
    one_class_apk ~pkg:"s"
      ~components:[ Component.make ~name:"Snd" ~kind:Component.Activity () ]
      [
        B.cls ~name:"Snd"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                let i = B.new_intent b in
                B.set_action b i "evt";
                let v = B.const_str b "x" in
                B.put_extra b i ~key:"k" ~value:v;
                B.send_broadcast b i);
          ];
      ]
  in
  let receiver pkg name =
    one_class_apk ~pkg
      ~components:
        [
          Component.make ~name ~kind:Component.Receiver
            ~intent_filters:[ Intent_filter.make ~actions:[ "evt" ] () ]
            ();
        ]
      [
        B.cls ~name
          [
            B.meth ~name:"onReceive" ~params:1 (fun b ->
                let v = B.get_string_extra b 0 ~key:"k" in
                B.write_log b ~payload:v);
          ];
      ]
  in
  let d = Device.create () in
  Device.install d sender;
  Device.install d (receiver "r1" "R1");
  Device.install d (receiver "r2" "R2");
  Device.start_component d ~pkg:"s" ~component:"Snd";
  check_int "both receivers got it" 2 (List.length (logs (Device.effects d)))

let test_newest_wins_hijack_order () =
  (* two matching services: the most recently installed receives *)
  let sender, legit = sender_receiver_apks ~explicit:false ~receiver_perm:None in
  let thief =
    one_class_apk ~pkg:"thief"
      ~components:
        [
          Component.make ~name:"Thief" ~kind:Component.Service
            ~intent_filters:[ Intent_filter.make ~actions:[ "evt" ] () ]
            ();
        ]
      [
        B.cls ~name:"Thief"
          [
            B.meth ~name:"onStartCommand" ~params:1 (fun b ->
                let v = B.get_all_extras b 0 in
                B.write_log b ~payload:v);
          ];
      ]
  in
  let d = Device.create () in
  Device.install d sender;
  Device.install d legit;
  Device.install d thief;
  Device.start_component d ~pkg:"s" ~component:"Snd";
  check "thief (installed last) received" true
    (List.exists
       (function
         | Effect.Intent_delivered { receiver = "Thief"; _ } -> true
         | _ -> false)
       (Device.effects d))

let test_dynamic_receiver_dispatch () =
  let registrar =
    one_class_apk ~pkg:"dyn"
      ~components:
        [
          Component.make ~name:"Reg" ~kind:Component.Activity ();
          Component.make ~name:"DynR" ~kind:Component.Receiver ~exported:false ();
        ]
      [
        B.cls ~name:"Reg"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                let i = B.new_intent b in
                B.set_class_name b i "DynR";
                B.set_action b i "evt";
                B.register_receiver b i);
          ];
        B.cls ~name:"DynR"
          [
            B.meth ~name:"onReceive" ~params:1 (fun b ->
                let v = B.get_string_extra b 0 ~key:"k" in
                B.write_log b ~payload:v);
          ];
      ]
  in
  let sender =
    one_class_apk ~pkg:"s2"
      ~components:[ Component.make ~name:"Snd2" ~kind:Component.Activity () ]
      [
        B.cls ~name:"Snd2"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                let i = B.new_intent b in
                B.set_action b i "evt";
                let v = B.const_str b "payload" in
                B.put_extra b i ~key:"k" ~value:v;
                B.send_broadcast b i);
          ];
      ]
  in
  let d = Device.create () in
  Device.install d registrar;
  Device.install d sender;
  (* before registration: nothing receives *)
  Device.start_component d ~pkg:"s2" ~component:"Snd2";
  check "unregistered: no delivery" true (logs (Device.effects d) = []);
  Device.clear_effects d;
  Device.start_component d ~pkg:"dyn" ~component:"Reg";
  Device.start_component d ~pkg:"s2" ~component:"Snd2";
  check "registered: delivered" true
    (List.exists (fun (l, _) -> l = "payload") (logs (Device.effects d)))

let test_set_result_roundtrip () =
  let apk =
    one_class_apk ~pkg:"fr" ~perms:[ Permission.read_phone_state ]
      ~components:
        [
          Component.make ~name:"Origin" ~kind:Component.Activity ();
          Component.make ~name:"Resp" ~kind:Component.Activity
            ~intent_filters:[ Intent_filter.make ~actions:[ "req" ] () ]
            ();
        ]
      [
        B.cls ~name:"Origin"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                let i = B.new_intent b in
                B.set_action b i "req";
                B.start_activity_for_result b i);
            B.meth ~name:"onActivityResult" ~params:1 (fun b ->
                let v = B.get_string_extra b 0 ~key:"out" in
                B.write_log b ~payload:v);
          ];
        B.cls ~name:"Resp"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                let v = B.get_device_id b in
                let i = B.new_intent b in
                B.put_extra b i ~key:"out" ~value:v;
                B.set_result b i);
          ];
      ]
  in
  let d = Device.create () in
  Device.install d apk;
  Device.start_component d ~pkg:"fr" ~component:"Origin";
  check "result leaked back" true
    (List.exists (fun (_, t) -> t = [ Resource.Imei ]) (logs (Device.effects d)))

(* --- enforcement ----------------------------------------------------------------- *)

let block_policy =
  Policy.
    {
      p_id = "block-rcv";
      p_event = Icc_receive;
      p_conditions = [ Receiver_is "Rcv" ];
      p_action = Deny;
      p_reason = "test";
    }

let test_enforcement_deny () =
  let effects =
    run_pair ~enforce:(Some [ block_policy ])
      (sender_receiver_apks ~explicit:false ~receiver_perm:None)
  in
  check "blocked" true (List.exists Effect.is_blocked effects);
  check "no leak" true (logs effects = [])

let test_enforcement_prompt_consent () =
  let prompt = { block_policy with Policy.p_action = Policy.Prompt } in
  let pair = sender_receiver_apks ~explicit:false ~receiver_perm:None in
  (* default consent refuses *)
  let refused = run_pair ~enforce:(Some [ prompt ]) pair in
  check "refused blocks" true (List.exists Effect.is_blocked refused);
  (* approving lets it through *)
  let d = Device.create () in
  let sender, receiver = pair in
  Device.install d sender;
  Device.install d receiver;
  Device.set_policies d [ prompt ] [ "s"; "r" ];
  Device.set_enforcement d true;
  Device.set_consent d (fun _ _ -> true);
  Device.start_component d ~pkg:"s" ~component:"Snd";
  check "approved delivers" true (logs (Device.effects d) <> [])

let test_enforcement_off_by_default () =
  let d = Device.create () in
  let sender, receiver = sender_receiver_apks ~explicit:false ~receiver_perm:None in
  Device.install d sender;
  Device.install d receiver;
  Device.set_policies d [ block_policy ] [ "s"; "r" ];
  (* enforcement not enabled: policy ignored *)
  Device.start_component d ~pkg:"s" ~component:"Snd";
  check "not blocked" false (List.exists Effect.is_blocked (Device.effects d))

let test_inject_intent () =
  let _, receiver = sender_receiver_apks ~explicit:false ~receiver_perm:None in
  let d = Device.create () in
  Device.install d receiver;
  Device.inject_intent d
    (Intent.make ~action:"evt"
       ~extras:[ Intent.{ key = "k"; value = "boo"; taint = [] } ]
       ());
  check "injected intent delivered" true
    (List.exists (fun (l, _) -> l = "boo") (logs (Device.effects d)))

(* --- attack concretizer ------------------------------------------------------------ *)

let test_concretize_and_block () =
  let apks = [ Separ.Demo.navigation_app (); Separ.Demo.messenger_app () ] in
  let analysis = Separ.analyze apks in
  let privesc =
    List.find
      (fun v -> v.Separ_ase.Ase.v_kind = "privilege_escalation")
      analysis.Separ.report.Separ_ase.Ase.r_vulnerabilities
  in
  let bundle = Separ.Bundle.update_passive_targets analysis.Separ.bundle in
  match Attack.concretize bundle privesc.Separ_ase.Ase.v_scenario with
  | None -> Alcotest.fail "expected an attack app"
  | Some mal ->
      (* undefended: the victim sends the SMS on the attacker's behalf *)
      let d = Device.create () in
      List.iter (Device.install d) apks;
      Device.install d mal;
      Attack.trigger d;
      check "sms sent by victim app" true
        (List.exists
           (function
             | Effect.Sms_sent { app = "com.example.messenger"; _ } -> true
             | _ -> false)
           (Device.effects d));
      (* defended: blocked *)
      let d2 = Device.create () in
      List.iter (Device.install d2) apks;
      Device.install d2 mal;
      Separ.protect d2 analysis;
      Attack.trigger d2;
      check "attack blocked" true
        (List.exists Effect.is_blocked (Device.effects d2));
      check "no sms" false
        (List.exists
           (function Effect.Sms_sent _ -> true | _ -> false)
           (Device.effects d2))

let tests =
  [
    Alcotest.test_case "interpreter basics" `Quick test_interp_basics;
    Alcotest.test_case "fields and calls" `Quick test_interp_fields_and_calls;
    Alcotest.test_case "infinite loop bounded" `Quick
      test_interp_infinite_loop_bounded;
    Alcotest.test_case "source permission refused" `Quick test_permission_refused;
    Alcotest.test_case "dispatch implicit" `Quick test_dispatch_implicit;
    Alcotest.test_case "dispatch explicit" `Quick test_dispatch_explicit;
    Alcotest.test_case "component permission gate" `Quick
      test_dispatch_permission_gate;
    Alcotest.test_case "no receiver" `Quick test_no_receiver;
    Alcotest.test_case "broadcast fan-out" `Quick test_broadcast_fanout;
    Alcotest.test_case "newest install wins" `Quick test_newest_wins_hijack_order;
    Alcotest.test_case "dynamic receiver dispatch" `Quick
      test_dynamic_receiver_dispatch;
    Alcotest.test_case "setResult round trip" `Quick test_set_result_roundtrip;
    Alcotest.test_case "enforcement deny" `Quick test_enforcement_deny;
    Alcotest.test_case "enforcement prompt/consent" `Quick
      test_enforcement_prompt_consent;
    Alcotest.test_case "enforcement off by default" `Quick
      test_enforcement_off_by_default;
    Alcotest.test_case "inject intent" `Quick test_inject_intent;
    Alcotest.test_case "concretized attack blocked" `Quick
      test_concretize_and_block;
  ]

(* --- ordered broadcasts: priority and abort ----------------------------------- *)

let sms_broadcast_apps ~thief_priority ~thief_aborts =
  let system =
    one_class_apk ~pkg:"sys" ~perms:[ Permission.read_sms ]
      ~components:[ Component.make ~name:"SmsDeliverer" ~kind:Component.Activity () ]
      [
        B.cls ~name:"SmsDeliverer"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                let v = B.invoke_result b (Api.mref Api.c_sms_reader "getInbox") [] in
                let i = B.new_intent b in
                B.set_action b i "android.provider.SMS_RECEIVED";
                B.put_extra b i ~key:"pdu" ~value:v;
                B.send_broadcast b i);
          ];
      ]
  in
  let inbox =
    one_class_apk ~pkg:"inbox"
      ~components:
        [
          Component.make ~name:"Inbox" ~kind:Component.Receiver
            ~intent_filters:
              [
                Intent_filter.make
                  ~actions:[ "android.provider.SMS_RECEIVED" ]
                  ~priority:0 ();
              ]
            ();
        ]
      [
        B.cls ~name:"Inbox"
          [
            B.meth ~name:"onReceive" ~params:1 (fun b ->
                let v = B.get_string_extra b 0 ~key:"pdu" in
                B.invoke b (Api.mref Api.c_notification "notify") [ v ]);
          ];
      ]
  in
  let thief =
    one_class_apk ~pkg:"thief"
      ~components:
        [
          Component.make ~name:"SmsThief" ~kind:Component.Receiver
            ~intent_filters:
              [
                Intent_filter.make
                  ~actions:[ "android.provider.SMS_RECEIVED" ]
                  ~priority:thief_priority ();
              ]
            ();
        ]
      [
        B.cls ~name:"SmsThief"
          [
            B.meth ~name:"onReceive" ~params:1 (fun b ->
                let v = B.get_string_extra b 0 ~key:"pdu" in
                B.write_log b ~payload:v;
                if thief_aborts then B.abort_broadcast b);
          ];
      ]
  in
  (system, inbox, thief)

let run_sms_scenario ~thief_priority ~thief_aborts =
  let system, inbox, thief = sms_broadcast_apps ~thief_priority ~thief_aborts in
  let d = Device.create () in
  Device.install d system;
  Device.install d inbox;
  Device.install d thief;
  Device.start_component d ~pkg:"sys" ~component:"SmsDeliverer";
  Device.effects d

let inbox_got effects =
  List.exists
    (function
      | Effect.Notification_shown { app = "inbox"; _ } -> true
      | _ -> false)
    effects

let thief_got effects =
  List.exists
    (function
      | Effect.Log_written { app = "thief"; taint; _ } ->
          List.mem Resource.Sms_inbox taint
      | _ -> false)
    effects

let test_ordered_broadcast_fanout () =
  (* without abort, both receivers see the SMS *)
  let effects = run_sms_scenario ~thief_priority:999 ~thief_aborts:false in
  check "thief sniffed" true (thief_got effects);
  check "inbox still delivered" true (inbox_got effects)

let test_ordered_broadcast_interception () =
  (* the classic SMS-stealing malware: high priority + abortBroadcast *)
  let effects = run_sms_scenario ~thief_priority:999 ~thief_aborts:true in
  check "thief intercepted the SMS" true (thief_got effects);
  check "inbox never saw it" false (inbox_got effects)

let test_ordered_broadcast_low_priority_abort_is_late () =
  (* a low-priority abort cannot hide the SMS from the real inbox *)
  let effects = run_sms_scenario ~thief_priority:(-10) ~thief_aborts:true in
  check "inbox delivered first" true (inbox_got effects)

let ordered_tests =
  [
    Alcotest.test_case "ordered broadcast fan-out" `Quick
      test_ordered_broadcast_fanout;
    Alcotest.test_case "SMS interception (priority + abort)" `Quick
      test_ordered_broadcast_interception;
    Alcotest.test_case "low-priority abort is late" `Quick
      test_ordered_broadcast_low_priority_abort_is_late;
  ]

let tests = tests @ ordered_tests

(* --- explicit addressing respects export across apps --------------------------- *)

let test_explicit_private_cross_app () =
  let sender =
    one_class_apk ~pkg:"xs"
      ~components:[ Component.make ~name:"XSnd" ~kind:Component.Activity () ]
      [
        B.cls ~name:"XSnd"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                let i = B.new_intent b in
                B.set_class_name b i "Hidden";
                let v = B.const_str b "probe" in
                B.put_extra b i ~key:"k" ~value:v;
                B.start_service b i);
          ];
      ]
  in
  let victim ~exported =
    one_class_apk ~pkg:"xv"
      ~components:
        [ Component.make ~name:"Hidden" ~kind:Component.Service ~exported () ]
      [
        B.cls ~name:"Hidden"
          [
            B.meth ~name:"onStartCommand" ~params:1 (fun b ->
                let v = B.get_string_extra b 0 ~key:"k" in
                B.write_log b ~payload:v);
          ];
      ]
  in
  let run ~exported =
    let d = Device.create () in
    Device.install d sender;
    Device.install d (victim ~exported);
    Device.start_component d ~pkg:"xs" ~component:"XSnd";
    logs (Device.effects d) <> []
  in
  check "private component unreachable from another app" false
    (run ~exported:false);
  check "exported component reachable" true (run ~exported:true)

let test_explicit_private_same_app () =
  (* within one app, explicit intents reach private components *)
  let apk =
    one_class_apk ~pkg:"same"
      ~components:
        [
          Component.make ~name:"SSnd" ~kind:Component.Activity ();
          Component.make ~name:"SPriv" ~kind:Component.Service ~exported:false ();
        ]
      [
        B.cls ~name:"SSnd"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                let i = B.new_intent b in
                B.set_class_name b i "SPriv";
                let v = B.const_str b "internal" in
                B.put_extra b i ~key:"k" ~value:v;
                B.start_service b i);
          ];
        B.cls ~name:"SPriv"
          [
            B.meth ~name:"onStartCommand" ~params:1 (fun b ->
                let v = B.get_string_extra b 0 ~key:"k" in
                B.write_log b ~payload:v);
          ];
      ]
  in
  let d = Device.create () in
  Device.install d apk;
  Device.start_component d ~pkg:"same" ~component:"SSnd";
  check "intra-app explicit delivery to private component" true
    (logs (Device.effects d) <> [])

let export_tests =
  [
    Alcotest.test_case "explicit cross-app respects export" `Quick
      test_explicit_private_cross_app;
    Alcotest.test_case "explicit intra-app reaches private" `Quick
      test_explicit_private_same_app;
  ]

let tests = tests @ export_tests

(* --- concretized attacks satisfy data-constrained filters ------------------------ *)

let test_concretize_data_constrained () =
  let module B = Builder in
  let victim =
    one_class_apk ~pkg:"dc" ~perms:[]
      ~components:
        [
          Component.make ~name:"DataGate" ~kind:Component.Service
            ~intent_filters:
              [
                Intent_filter.make ~actions:[ "dc.open" ]
                  ~data_schemes:[ "content" ] ~data_hosts:[ "dc.store" ] ();
              ]
            ();
        ]
      [
        B.cls ~name:"DataGate"
          [
            B.meth ~name:"onStartCommand" ~params:1 (fun b ->
                let v = B.get_string_extra b 0 ~key:"cmd" in
                B.write_log b ~payload:v);
          ];
      ]
  in
  let analysis = Separ.analyze [ victim ] in
  let launch =
    List.find
      (fun v -> v.Separ_ase.Ase.v_kind = "service_launch")
      analysis.Separ.report.Separ_ase.Ase.r_vulnerabilities
  in
  let bundle = Separ.Bundle.update_passive_targets analysis.Separ.bundle in
  match Attack.concretize bundle launch.Separ_ase.Ase.v_scenario with
  | None -> Alcotest.fail "expected an attack app"
  | Some mal ->
      let d = Device.create () in
      Device.install d victim;
      Device.install d mal;
      Attack.trigger d;
      (* the crafted intent must pass the scheme+host data test *)
      check "attack reaches the data-gated victim" true
        (List.exists
           (function
             | Effect.Intent_delivered { receiver = "DataGate"; _ } -> true
             | _ -> false)
           (Device.effects d))

let concretize_tests =
  [
    Alcotest.test_case "concretized attack passes data test" `Quick
      test_concretize_data_constrained;
  ]

let tests = tests @ concretize_tests

(* --- compiled PDP: hook modes, hot swap, zero-copy fast path -------------------- *)

module Metrics = Separ_obs.Metrics

let blocked_by effects =
  List.filter_map
    (function
      | Effect.Delivery_blocked { policy_id; _ } -> Some policy_id | _ -> None)
    effects

(* The same traffic must produce identical enforcement effects whether
   the hook consults the compiled matcher, the uncompiled reference
   scan, or the marshalling IPC path. *)
let test_pdp_modes_equivalent () =
  let pair = sender_receiver_apks ~explicit:false ~receiver_perm:None in
  let run mode =
    let d = Device.create () in
    let sender, receiver = pair in
    Device.install d sender;
    Device.install d receiver;
    Device.set_policies d [ block_policy ] [ "s"; "r" ];
    Device.set_enforcement d true;
    Device.set_pdp_mode d mode;
    Device.start_component d ~pkg:"s" ~component:"Snd";
    String.concat "\n"
      (List.map (Fmt.str "%a" Effect.pp) (Device.effects d))
  in
  let compiled = run Device.Compiled in
  check "reference mode matches compiled" true
    (String.equal compiled (run Device.Reference));
  check "IPC mode matches compiled" true
    (String.equal compiled (run Device.Ipc));
  check "the decision fired" true
    (compiled <> "" && String.length compiled > 0)

(* Swap the store from inside the consent callback — i.e. while a hook
   check is in flight.  The in-flight check must be decided entirely by
   the pre-swap snapshot; the next send sees only the new store. *)
let test_hot_swap_under_traffic () =
  Metrics.enable ();
  Metrics.reset ();
  let prompt = { block_policy with Policy.p_action = Policy.Prompt } in
  let swapped_deny = { block_policy with Policy.p_id = "swapped-deny" } in
  let sender, receiver =
    sender_receiver_apks ~explicit:false ~receiver_perm:None
  in
  let d = Device.create () in
  Device.install d sender;
  Device.install d receiver;
  Device.set_policies d [ prompt ] [ "s"; "r" ];
  Device.set_enforcement d true;
  Device.set_consent d (fun _ _ ->
      (* hot swap while this very check is being decided *)
      Device.swap_policies d [ swapped_deny ];
      false);
  Device.start_component d ~pkg:"s" ~component:"Snd";
  (* the in-flight check was decided by the pre-swap prompt policy *)
  check "in-flight check used the pre-swap store" true
    (blocked_by (Device.effects d) = [ "block-rcv" ]);
  check "prompt was shown" true
    (List.exists
       (function Effect.Prompt_shown _ -> true | _ -> false)
       (Device.effects d));
  (* subsequent traffic sees only the new store: a deny, no prompt *)
  Device.clear_effects d;
  Device.start_component d ~pkg:"s" ~component:"Snd";
  check "post-swap traffic hits the new store" true
    (blocked_by (Device.effects d) = [ "swapped-deny" ]);
  check "no prompt after swap" false
    (List.exists
       (function Effect.Prompt_shown _ -> true | _ -> false)
       (Device.effects d));
  check "swap visible through the accessor" true
    (Device.policies d = [ swapped_deny ]);
  (* swap telemetry: counter bumped, latency observed *)
  check_int "one swap counted" 1
    (Metrics.counter_value (Metrics.counter "runtime.policy_swaps"));
  let swap_obs =
    List.fold_left
      (fun acc (_, n) -> acc + n)
      0
      (Metrics.histogram_buckets
         (Metrics.histogram "runtime.swap_latency_us"))
  in
  check_int "swap latency observed" 1 swap_obs;
  Metrics.reset ();
  Metrics.disable ()

(* The in-process hook never marshals events; only the opt-in IPC mode
   pays serialization. *)
let test_hook_serialization_ledger () =
  Metrics.enable ();
  Metrics.reset ();
  let pair = sender_receiver_apks ~explicit:false ~receiver_perm:None in
  let run mode =
    let d = Device.create () in
    let sender, receiver = pair in
    Device.install d sender;
    Device.install d receiver;
    Device.set_policies d [ block_policy ] [ "s"; "r" ];
    Device.set_enforcement d true;
    Device.set_pdp_mode d mode;
    Device.start_component d ~pkg:"s" ~component:"Snd"
  in
  let ser = Metrics.counter "policy.serializations" in
  run Device.Compiled;
  check_int "compiled hook marshals nothing" 0 (Metrics.counter_value ser);
  run Device.Reference;
  check_int "reference hook marshals nothing" 0 (Metrics.counter_value ser);
  run Device.Ipc;
  check "IPC hook pays marshalling" true (Metrics.counter_value ser > 0);
  check "hook checks were counted" true
    (Metrics.counter_value (Metrics.counter "runtime.hook_checks") > 0);
  Metrics.reset ();
  Metrics.disable ()

let compiled_pdp_tests =
  [
    Alcotest.test_case "PDP modes produce identical effects" `Quick
      test_pdp_modes_equivalent;
    Alcotest.test_case "hot swap under traffic" `Quick
      test_hot_swap_under_traffic;
    Alcotest.test_case "hook serialization ledger" `Quick
      test_hook_serialization_ledger;
  ]

let tests = tests @ compiled_pdp_tests
