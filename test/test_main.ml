(* Aggregates all test suites. *)
let () =
  Alcotest.run "separ"
    [
      ("sat", Test_sat.tests);
      ("exec", Test_exec.tests);
      ("relog", Test_relog.tests);
      ("android", Test_android.tests);
      ("dalvik", Test_dalvik.tests);
      ("static", Test_static.tests);
      ("ame", Test_ame.tests);
      ("specs", Test_specs.tests);
      ("policy", Test_policy.tests);
      ("runtime", Test_runtime.tests);
      ("suites", Test_suites.tests);
      ("workload", Test_workload.tests);
      ("integration", Test_integration.tests);
      ("errors", Test_errors.tests);
      ("properties", Test_properties.tests);
      ("report", Test_report.tests);
      ("cache", Test_cache.tests);
      ("serve", Test_serve.tests);
      ("obs", Test_obs.tests);
    ]
