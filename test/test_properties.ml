(* Property-based tests of core algebraic laws, via qcheck: the tuple-set
   algebra (the semantic foundation of the relational engine), intent
   matching monotonicity, and the abstract-value lattice. *)

open Separ_relog

let ts_gen n arity =
  let tuple_gen =
    QCheck.Gen.array_size (QCheck.Gen.return arity) (QCheck.Gen.int_range 0 (n - 1))
  in
  QCheck.Gen.map
    (fun tuples -> Tuple_set.of_list arity tuples)
    (QCheck.Gen.list_size (QCheck.Gen.int_range 0 8) tuple_gen)

let binary = QCheck.make (ts_gen 4 2)
let unary = QCheck.make (ts_gen 4 1)

let t name gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:200 gen f)

let transpose_involution =
  t "transpose is an involution" binary (fun r ->
      Tuple_set.equal (Tuple_set.transpose (Tuple_set.transpose r)) r)

let closure_idempotent =
  t "closure is idempotent" binary (fun r ->
      let c = Tuple_set.closure r in
      Tuple_set.equal (Tuple_set.closure c) c)

let closure_contains =
  t "closure contains the relation" binary (fun r ->
      Tuple_set.subset r (Tuple_set.closure r))

let join_iden_identity =
  t "join with identity is identity" binary (fun r ->
      Tuple_set.equal (Tuple_set.join r (Tuple_set.iden 4)) r)

let union_commutative =
  t "union commutes" (QCheck.pair binary binary) (fun (a, b) ->
      Tuple_set.equal (Tuple_set.union a b) (Tuple_set.union b a))

let inter_absorption =
  t "a & (a + b) = a" (QCheck.pair binary binary) (fun (a, b) ->
      Tuple_set.equal (Tuple_set.inter a (Tuple_set.union a b)) a)

let diff_disjoint =
  t "(a - b) & b = empty" (QCheck.pair binary binary) (fun (a, b) ->
      Tuple_set.is_empty (Tuple_set.inter (Tuple_set.diff a b) b))

let join_distributes_union =
  t "x.(a + b) = x.a + x.b" (QCheck.triple unary binary binary)
    (fun (x, a, b) ->
      Tuple_set.equal
        (Tuple_set.join x (Tuple_set.union a b))
        (Tuple_set.union (Tuple_set.join x a) (Tuple_set.join x b)))

let product_size =
  t "|a -> b| = |a| * |b|" (QCheck.pair unary unary) (fun (a, b) ->
      Tuple_set.size (Tuple_set.product a b) = Tuple_set.size a * Tuple_set.size b)

(* --- ground evaluator vs tuple-set algebra ------------------------------------- *)

let eval_consistent_with_algebra =
  t "Eval agrees with tuple-set algebra on closures"
    binary
    (fun r ->
      let u = Universe.of_atoms [ "a0"; "a1"; "a2"; "a3" ] in
      let rel = Relation.make "R" 2 in
      let inst = Instance.make u [ (rel, r) ] in
      let via_eval = Eval.expr inst [] (Ast.Closure (Ast.Rel rel)) in
      Tuple_set.equal via_eval (Tuple_set.closure r))

(* --- intent matching monotonicity ------------------------------------------------ *)

open Separ_android

let action_gen = QCheck.Gen.oneofl [ "a1"; "a2"; "a3" ]
let actions_gen = QCheck.Gen.list_size (QCheck.Gen.int_range 0 3) action_gen

let filter_monotone_in_actions =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"adding filter actions never breaks a match"
       ~count:300
       (QCheck.make
          (QCheck.Gen.triple action_gen actions_gen action_gen))
       (fun (action, filter_actions, extra_action) ->
         let i = Intent.make ~action () in
         let f = Intent_filter.make ~actions:filter_actions () in
         let f' = Intent_filter.make ~actions:(extra_action :: filter_actions) () in
         (not (Intent_filter.matches ~intent:i f))
         || Intent_filter.matches ~intent:i f'))

let filter_antitone_in_categories =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"adding intent categories never creates a match" ~count:300
       (QCheck.make (QCheck.Gen.pair actions_gen actions_gen))
       (fun (cats, filter_cats) ->
         let f = Intent_filter.make ~actions:[ "a" ] ~categories:filter_cats () in
         let i = Intent.make ~action:"a" ~categories:cats () in
         let i' = Intent.make ~action:"a" ~categories:("extra" :: cats) () in
         (not (Intent_filter.matches ~intent:i' f))
         || Intent_filter.matches ~intent:i f))

(* --- abstract-value lattice -------------------------------------------------------- *)

module Absval = Separ_static.Absval

let absval_gen =
  QCheck.Gen.map
    (fun (strs, sites, taints) ->
      List.fold_left
        (fun acc v -> Absval.join acc v)
        Absval.bot
        (List.map Absval.of_string strs
        @ List.map Absval.of_site sites
        @ [ Absval.of_taints taints ]))
    (QCheck.Gen.triple
       (QCheck.Gen.list_size (QCheck.Gen.int_range 0 3)
          (QCheck.Gen.oneofl [ "x"; "y"; "z" ]))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 0 3) (QCheck.Gen.int_range 0 5))
       (QCheck.Gen.oneofl
          [ []; [ Resource.Imei ]; [ Resource.Location; Resource.Sms ] ]))

let absval = QCheck.make absval_gen

let absval_join_idempotent =
  t "absval join idempotent" absval (fun v -> Absval.equal (Absval.join v v) v)

let absval_join_commutative =
  t "absval join commutes" (QCheck.pair absval absval) (fun (a, b) ->
      Absval.equal (Absval.join a b) (Absval.join b a))

let absval_join_associative =
  t "absval join associates" (QCheck.triple absval absval absval)
    (fun (a, b, c) ->
      Absval.equal
        (Absval.join a (Absval.join b c))
        (Absval.join (Absval.join a b) c))

let absval_bot_identity =
  t "absval bot is identity" absval (fun v ->
      Absval.equal (Absval.join Absval.bot v) v)

let tests =
  [
    transpose_involution;
    closure_idempotent;
    closure_contains;
    join_iden_identity;
    union_commutative;
    inter_absorption;
    diff_disjoint;
    join_distributes_union;
    product_size;
    eval_consistent_with_algebra;
    filter_monotone_in_actions;
    filter_antitone_in_categories;
    absval_join_idempotent;
    absval_join_commutative;
    absval_join_associative;
    absval_bot_identity;
  ]
